# Empty compiler generated dependencies file for test_mfix.
# This may be replaced when dependencies are built.
