file(REMOVE_RECURSE
  "CMakeFiles/test_mfix.dir/mfix/assembly_test.cpp.o"
  "CMakeFiles/test_mfix.dir/mfix/assembly_test.cpp.o.d"
  "CMakeFiles/test_mfix.dir/mfix/conservation_test.cpp.o"
  "CMakeFiles/test_mfix.dir/mfix/conservation_test.cpp.o.d"
  "CMakeFiles/test_mfix.dir/mfix/scalar_transport_test.cpp.o"
  "CMakeFiles/test_mfix.dir/mfix/scalar_transport_test.cpp.o.d"
  "CMakeFiles/test_mfix.dir/mfix/simple_test.cpp.o"
  "CMakeFiles/test_mfix.dir/mfix/simple_test.cpp.o.d"
  "test_mfix"
  "test_mfix.pdb"
  "test_mfix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
