# Empty compiler generated dependencies file for test_wsekernels.
# This may be replaced when dependencies are built.
