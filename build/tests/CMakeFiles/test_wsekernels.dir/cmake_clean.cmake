file(REMOVE_RECURSE
  "CMakeFiles/test_wsekernels.dir/wsekernels/allreduce_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/allreduce_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/bicgstab_program_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/bicgstab_program_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/fused_reduction_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/fused_reduction_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/memory_model_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/memory_model_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/spmv2d_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/spmv2d_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/spmv3d_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/spmv3d_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/wafer_solver_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/wafer_solver_test.cpp.o.d"
  "CMakeFiles/test_wsekernels.dir/wsekernels/wse_bicgstab_test.cpp.o"
  "CMakeFiles/test_wsekernels.dir/wsekernels/wse_bicgstab_test.cpp.o.d"
  "test_wsekernels"
  "test_wsekernels.pdb"
  "test_wsekernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wsekernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
