file(REMOVE_RECURSE
  "CMakeFiles/test_wse.dir/wse/core_test.cpp.o"
  "CMakeFiles/test_wse.dir/wse/core_test.cpp.o.d"
  "CMakeFiles/test_wse.dir/wse/fabric_test.cpp.o"
  "CMakeFiles/test_wse.dir/wse/fabric_test.cpp.o.d"
  "CMakeFiles/test_wse.dir/wse/fp_route_test.cpp.o"
  "CMakeFiles/test_wse.dir/wse/fp_route_test.cpp.o.d"
  "CMakeFiles/test_wse.dir/wse/fuzz_test.cpp.o"
  "CMakeFiles/test_wse.dir/wse/fuzz_test.cpp.o.d"
  "CMakeFiles/test_wse.dir/wse/trace_test.cpp.o"
  "CMakeFiles/test_wse.dir/wse/trace_test.cpp.o.d"
  "test_wse"
  "test_wse.pdb"
  "test_wse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
