# Empty compiler generated dependencies file for test_wse.
# This may be replaced when dependencies are built.
