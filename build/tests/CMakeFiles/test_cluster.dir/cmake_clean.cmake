file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/comm_test.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/comm_test.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/dist_bicgstab_test.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/dist_bicgstab_test.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/fuzz_test.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/fuzz_test.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
