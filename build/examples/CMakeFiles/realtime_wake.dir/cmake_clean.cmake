file(REMOVE_RECURSE
  "CMakeFiles/realtime_wake.dir/realtime_wake.cpp.o"
  "CMakeFiles/realtime_wake.dir/realtime_wake.cpp.o.d"
  "realtime_wake"
  "realtime_wake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_wake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
