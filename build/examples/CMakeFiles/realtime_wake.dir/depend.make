# Empty dependencies file for realtime_wake.
# This may be replaced when dependencies are built.
