file(REMOVE_RECURSE
  "CMakeFiles/lid_driven_cavity.dir/lid_driven_cavity.cpp.o"
  "CMakeFiles/lid_driven_cavity.dir/lid_driven_cavity.cpp.o.d"
  "lid_driven_cavity"
  "lid_driven_cavity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lid_driven_cavity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
