
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wse/core.cpp" "src/wse/CMakeFiles/wss_wse.dir/core.cpp.o" "gcc" "src/wse/CMakeFiles/wss_wse.dir/core.cpp.o.d"
  "/root/repo/src/wse/fabric.cpp" "src/wse/CMakeFiles/wss_wse.dir/fabric.cpp.o" "gcc" "src/wse/CMakeFiles/wss_wse.dir/fabric.cpp.o.d"
  "/root/repo/src/wse/route_compiler.cpp" "src/wse/CMakeFiles/wss_wse.dir/route_compiler.cpp.o" "gcc" "src/wse/CMakeFiles/wss_wse.dir/route_compiler.cpp.o.d"
  "/root/repo/src/wse/trace.cpp" "src/wse/CMakeFiles/wss_wse.dir/trace.cpp.o" "gcc" "src/wse/CMakeFiles/wss_wse.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
