# Empty dependencies file for wss_wse.
# This may be replaced when dependencies are built.
