file(REMOVE_RECURSE
  "libwss_wse.a"
)
