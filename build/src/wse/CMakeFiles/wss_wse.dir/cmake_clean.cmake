file(REMOVE_RECURSE
  "CMakeFiles/wss_wse.dir/core.cpp.o"
  "CMakeFiles/wss_wse.dir/core.cpp.o.d"
  "CMakeFiles/wss_wse.dir/fabric.cpp.o"
  "CMakeFiles/wss_wse.dir/fabric.cpp.o.d"
  "CMakeFiles/wss_wse.dir/route_compiler.cpp.o"
  "CMakeFiles/wss_wse.dir/route_compiler.cpp.o.d"
  "CMakeFiles/wss_wse.dir/trace.cpp.o"
  "CMakeFiles/wss_wse.dir/trace.cpp.o.d"
  "libwss_wse.a"
  "libwss_wse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_wse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
