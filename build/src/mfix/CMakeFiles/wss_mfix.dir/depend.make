# Empty dependencies file for wss_mfix.
# This may be replaced when dependencies are built.
