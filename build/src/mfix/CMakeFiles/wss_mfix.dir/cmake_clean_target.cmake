file(REMOVE_RECURSE
  "libwss_mfix.a"
)
