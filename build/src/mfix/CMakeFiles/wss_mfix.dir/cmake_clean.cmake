file(REMOVE_RECURSE
  "CMakeFiles/wss_mfix.dir/assembly.cpp.o"
  "CMakeFiles/wss_mfix.dir/assembly.cpp.o.d"
  "CMakeFiles/wss_mfix.dir/momentum_system.cpp.o"
  "CMakeFiles/wss_mfix.dir/momentum_system.cpp.o.d"
  "CMakeFiles/wss_mfix.dir/scalar_transport.cpp.o"
  "CMakeFiles/wss_mfix.dir/scalar_transport.cpp.o.d"
  "CMakeFiles/wss_mfix.dir/simple.cpp.o"
  "CMakeFiles/wss_mfix.dir/simple.cpp.o.d"
  "libwss_mfix.a"
  "libwss_mfix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_mfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
