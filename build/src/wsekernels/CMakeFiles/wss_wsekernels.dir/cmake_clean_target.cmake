file(REMOVE_RECURSE
  "libwss_wsekernels.a"
)
