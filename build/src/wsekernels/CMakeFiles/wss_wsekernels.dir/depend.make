# Empty dependencies file for wss_wsekernels.
# This may be replaced when dependencies are built.
