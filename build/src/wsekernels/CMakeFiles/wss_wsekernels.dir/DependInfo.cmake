
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsekernels/allreduce_program.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/allreduce_program.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/allreduce_program.cpp.o.d"
  "/root/repo/src/wsekernels/allreduce_steps.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/allreduce_steps.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/allreduce_steps.cpp.o.d"
  "/root/repo/src/wsekernels/axpy_dot_program.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/axpy_dot_program.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/axpy_dot_program.cpp.o.d"
  "/root/repo/src/wsekernels/bicgstab_program.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/bicgstab_program.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/bicgstab_program.cpp.o.d"
  "/root/repo/src/wsekernels/memory_model.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/memory_model.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/memory_model.cpp.o.d"
  "/root/repo/src/wsekernels/spmv2d.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv2d.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv2d.cpp.o.d"
  "/root/repo/src/wsekernels/spmv3d_program.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv3d_program.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv3d_program.cpp.o.d"
  "/root/repo/src/wsekernels/spmv_instance.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv_instance.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/spmv_instance.cpp.o.d"
  "/root/repo/src/wsekernels/wafer_solver.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/wafer_solver.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/wafer_solver.cpp.o.d"
  "/root/repo/src/wsekernels/wse_bicgstab.cpp" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/wse_bicgstab.cpp.o" "gcc" "src/wsekernels/CMakeFiles/wss_wsekernels.dir/wse_bicgstab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wss_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/wss_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/wss_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/wss_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
