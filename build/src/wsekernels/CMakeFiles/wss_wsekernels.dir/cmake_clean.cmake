file(REMOVE_RECURSE
  "CMakeFiles/wss_wsekernels.dir/allreduce_program.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/allreduce_program.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/allreduce_steps.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/allreduce_steps.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/axpy_dot_program.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/axpy_dot_program.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/bicgstab_program.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/bicgstab_program.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/memory_model.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/memory_model.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/spmv2d.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/spmv2d.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/spmv3d_program.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/spmv3d_program.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/spmv_instance.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/spmv_instance.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/wafer_solver.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/wafer_solver.cpp.o.d"
  "CMakeFiles/wss_wsekernels.dir/wse_bicgstab.cpp.o"
  "CMakeFiles/wss_wsekernels.dir/wse_bicgstab.cpp.o.d"
  "libwss_wsekernels.a"
  "libwss_wsekernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_wsekernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
