file(REMOVE_RECURSE
  "libwss_common.a"
)
