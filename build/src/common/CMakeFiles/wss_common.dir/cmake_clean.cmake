file(REMOVE_RECURSE
  "CMakeFiles/wss_common.dir/fp16.cpp.o"
  "CMakeFiles/wss_common.dir/fp16.cpp.o.d"
  "libwss_common.a"
  "libwss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
