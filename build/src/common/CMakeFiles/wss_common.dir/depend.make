# Empty dependencies file for wss_common.
# This may be replaced when dependencies are built.
