# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("mesh")
subdirs("stencil")
subdirs("solver")
subdirs("wse")
subdirs("wsekernels")
subdirs("cluster")
subdirs("mfix")
subdirs("perfmodel")
