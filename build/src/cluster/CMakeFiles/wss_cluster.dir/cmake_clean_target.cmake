file(REMOVE_RECURSE
  "libwss_cluster.a"
)
