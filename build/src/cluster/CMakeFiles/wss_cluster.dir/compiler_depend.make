# Empty compiler generated dependencies file for wss_cluster.
# This may be replaced when dependencies are built.
