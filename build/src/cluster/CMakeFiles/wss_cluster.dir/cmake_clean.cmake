file(REMOVE_RECURSE
  "CMakeFiles/wss_cluster.dir/comm.cpp.o"
  "CMakeFiles/wss_cluster.dir/comm.cpp.o.d"
  "CMakeFiles/wss_cluster.dir/dist_bicgstab.cpp.o"
  "CMakeFiles/wss_cluster.dir/dist_bicgstab.cpp.o.d"
  "libwss_cluster.a"
  "libwss_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
