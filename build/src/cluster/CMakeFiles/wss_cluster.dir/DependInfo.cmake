
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/comm.cpp" "src/cluster/CMakeFiles/wss_cluster.dir/comm.cpp.o" "gcc" "src/cluster/CMakeFiles/wss_cluster.dir/comm.cpp.o.d"
  "/root/repo/src/cluster/dist_bicgstab.cpp" "src/cluster/CMakeFiles/wss_cluster.dir/dist_bicgstab.cpp.o" "gcc" "src/cluster/CMakeFiles/wss_cluster.dir/dist_bicgstab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wss_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/wss_stencil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
