# Empty dependencies file for wss_perfmodel.
# This may be replaced when dependencies are built.
