
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/balance.cpp" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/balance.cpp.o" "gcc" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/balance.cpp.o.d"
  "/root/repo/src/perfmodel/cluster_model.cpp" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/cluster_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/cluster_model.cpp.o.d"
  "/root/repo/src/perfmodel/cs1_model.cpp" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/cs1_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/cs1_model.cpp.o.d"
  "/root/repo/src/perfmodel/multiwafer.cpp" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/multiwafer.cpp.o" "gcc" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/multiwafer.cpp.o.d"
  "/root/repo/src/perfmodel/simple_model.cpp" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/simple_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/wss_perfmodel.dir/simple_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wss_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/wss_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/wss_stencil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
