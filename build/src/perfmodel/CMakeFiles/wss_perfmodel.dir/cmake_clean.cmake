file(REMOVE_RECURSE
  "CMakeFiles/wss_perfmodel.dir/balance.cpp.o"
  "CMakeFiles/wss_perfmodel.dir/balance.cpp.o.d"
  "CMakeFiles/wss_perfmodel.dir/cluster_model.cpp.o"
  "CMakeFiles/wss_perfmodel.dir/cluster_model.cpp.o.d"
  "CMakeFiles/wss_perfmodel.dir/cs1_model.cpp.o"
  "CMakeFiles/wss_perfmodel.dir/cs1_model.cpp.o.d"
  "CMakeFiles/wss_perfmodel.dir/multiwafer.cpp.o"
  "CMakeFiles/wss_perfmodel.dir/multiwafer.cpp.o.d"
  "CMakeFiles/wss_perfmodel.dir/simple_model.cpp.o"
  "CMakeFiles/wss_perfmodel.dir/simple_model.cpp.o.d"
  "libwss_perfmodel.a"
  "libwss_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
