file(REMOVE_RECURSE
  "libwss_perfmodel.a"
)
