# Empty dependencies file for wss_stencil.
# This may be replaced when dependencies are built.
