file(REMOVE_RECURSE
  "CMakeFiles/wss_stencil.dir/generators.cpp.o"
  "CMakeFiles/wss_stencil.dir/generators.cpp.o.d"
  "libwss_stencil.a"
  "libwss_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
