file(REMOVE_RECURSE
  "libwss_stencil.a"
)
