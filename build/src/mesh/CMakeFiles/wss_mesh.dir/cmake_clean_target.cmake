file(REMOVE_RECURSE
  "libwss_mesh.a"
)
