# Empty compiler generated dependencies file for wss_mesh.
# This may be replaced when dependencies are built.
