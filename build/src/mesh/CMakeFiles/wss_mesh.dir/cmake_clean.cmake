file(REMOVE_RECURSE
  "CMakeFiles/wss_mesh.dir/partition.cpp.o"
  "CMakeFiles/wss_mesh.dir/partition.cpp.o.d"
  "libwss_mesh.a"
  "libwss_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wss_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
