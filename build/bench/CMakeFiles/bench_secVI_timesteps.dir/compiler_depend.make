# Empty compiler generated dependencies file for bench_secVI_timesteps.
# This may be replaced when dependencies are built.
