file(REMOVE_RECURSE
  "CMakeFiles/bench_secVI_timesteps.dir/secVI_timesteps.cpp.o"
  "CMakeFiles/bench_secVI_timesteps.dir/secVI_timesteps.cpp.o.d"
  "bench_secVI_timesteps"
  "bench_secVI_timesteps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secVI_timesteps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
