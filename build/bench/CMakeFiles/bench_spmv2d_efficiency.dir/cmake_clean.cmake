file(REMOVE_RECURSE
  "CMakeFiles/bench_spmv2d_efficiency.dir/spmv2d_efficiency.cpp.o"
  "CMakeFiles/bench_spmv2d_efficiency.dir/spmv2d_efficiency.cpp.o.d"
  "bench_spmv2d_efficiency"
  "bench_spmv2d_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmv2d_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
