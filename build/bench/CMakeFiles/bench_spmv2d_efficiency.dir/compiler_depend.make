# Empty compiler generated dependencies file for bench_spmv2d_efficiency.
# This may be replaced when dependencies are built.
