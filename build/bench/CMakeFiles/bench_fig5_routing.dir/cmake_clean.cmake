file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_routing.dir/fig5_routing.cpp.o"
  "CMakeFiles/bench_fig5_routing.dir/fig5_routing.cpp.o.d"
  "bench_fig5_routing"
  "bench_fig5_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
