# Empty dependencies file for bench_fig7_cluster370.
# This may be replaced when dependencies are built.
