file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cluster370.dir/fig7_cluster370.cpp.o"
  "CMakeFiles/bench_fig7_cluster370.dir/fig7_cluster370.cpp.o.d"
  "bench_fig7_cluster370"
  "bench_fig7_cluster370.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cluster370.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
