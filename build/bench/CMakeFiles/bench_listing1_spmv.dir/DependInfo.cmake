
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/listing1_spmv.cpp" "bench/CMakeFiles/bench_listing1_spmv.dir/listing1_spmv.cpp.o" "gcc" "bench/CMakeFiles/bench_listing1_spmv.dir/listing1_spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wss_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/wss_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/wse/CMakeFiles/wss_wse.dir/DependInfo.cmake"
  "/root/repo/build/src/wsekernels/CMakeFiles/wss_wsekernels.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mfix/CMakeFiles/wss_mfix.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/wss_perfmodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
