file(REMOVE_RECURSE
  "CMakeFiles/bench_listing1_spmv.dir/listing1_spmv.cpp.o"
  "CMakeFiles/bench_listing1_spmv.dir/listing1_spmv.cpp.o.d"
  "bench_listing1_spmv"
  "bench_listing1_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_listing1_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
