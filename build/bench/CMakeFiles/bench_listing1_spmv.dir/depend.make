# Empty dependencies file for bench_listing1_spmv.
# This may be replaced when dependencies are built.
