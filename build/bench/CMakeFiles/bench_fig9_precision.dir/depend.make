# Empty dependencies file for bench_fig9_precision.
# This may be replaced when dependencies are built.
