# Empty dependencies file for bench_secV_cs1_iteration.
# This may be replaced when dependencies are built.
