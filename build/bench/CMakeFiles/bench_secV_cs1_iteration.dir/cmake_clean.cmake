file(REMOVE_RECURSE
  "CMakeFiles/bench_secV_cs1_iteration.dir/secV_cs1_iteration.cpp.o"
  "CMakeFiles/bench_secV_cs1_iteration.dir/secV_cs1_iteration.cpp.o.d"
  "bench_secV_cs1_iteration"
  "bench_secV_cs1_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secV_cs1_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
