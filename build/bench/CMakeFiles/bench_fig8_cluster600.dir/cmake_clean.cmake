file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cluster600.dir/fig8_cluster600.cpp.o"
  "CMakeFiles/bench_fig8_cluster600.dir/fig8_cluster600.cpp.o.d"
  "bench_fig8_cluster600"
  "bench_fig8_cluster600.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cluster600.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
