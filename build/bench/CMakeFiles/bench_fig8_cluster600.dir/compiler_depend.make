# Empty compiler generated dependencies file for bench_fig8_cluster600.
# This may be replaced when dependencies are built.
