# Empty compiler generated dependencies file for bench_fig1_balance.
# This may be replaced when dependencies are built.
