file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_balance.dir/fig1_balance.cpp.o"
  "CMakeFiles/bench_fig1_balance.dir/fig1_balance.cpp.o.d"
  "bench_fig1_balance"
  "bench_fig1_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
