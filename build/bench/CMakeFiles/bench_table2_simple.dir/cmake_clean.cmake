file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_simple.dir/table2_simple.cpp.o"
  "CMakeFiles/bench_table2_simple.dir/table2_simple.cpp.o.d"
  "bench_table2_simple"
  "bench_table2_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
