file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_allreduce.dir/fig6_allreduce.cpp.o"
  "CMakeFiles/bench_fig6_allreduce.dir/fig6_allreduce.cpp.o.d"
  "bench_fig6_allreduce"
  "bench_fig6_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
