// Paper-anchored performance regression gate (docs/PROFILING.md).
//
// Every bench binary writes a machine-readable report to
// $WSS_JSON_OUT/<bench>.json (telemetry/bench_report.hpp). This tool
// compares those reports against checked-in baselines in
// bench/baselines/<bench>.json and fails (exit 1) when any gated metric
// drifts outside its tolerance — so a change that silently slows the
// simulated iteration, breaks a model table, or changes solver behaviour
// turns CI red instead of rotting EXPERIMENTS.md.
//
//   check_regression --baselines bench/baselines --reports out/
//       check every baseline against the matching report
//   check_regression ... --write
//       (re)generate baselines from the current reports, preserving
//       per-metric tolerances where a baseline already exists
//   check_regression ... --report out/regression_report.json
//       additionally write a machine-readable verdict (CI artifact)
//   check_regression ... --history-dir bench/history [--sha <gitsha>]
//       append this gate run — run ID, git sha (or $WSS_GIT_SHA), verdict,
//       every measured metric, and the per-bench health-engine alert
//       count (docs/HEALTH.md) — as one `wss.benchhistory/1` JSONL line
//       to <dir>/history.jsonl (the bench trajectory ledger)
//   check_regression ... --trajectory out/BENCH_trajectory.json
//       emit a `wss.benchtrajectory/1` trend report (per metric: points
//       across history, min/max/mean/latest; health alert counts trend
//       as a synthetic "health alerts" metric) from the history ledger
//
// Baseline format (insertion-ordered, human-editable):
//   { "bench": "bench_fig6_allreduce",
//     "metrics": [ { "label": "...", "unit": "us",
//                    "expect": 1.23, "rel_tol": 1e-6, "abs_tol": 0 } ] }
//
// A metric passes when |measured - expect| <= abs_tol + rel_tol*|expect|.
// The fabric simulator and the Section V model are deterministic, so the
// default tolerance is tight (1e-6 relative); loosen per metric in the
// baseline file when a metric is legitimately environment-dependent.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/timeseries.hpp"

namespace fs = std::filesystem;
namespace jp = wss::telemetry::jsonparse;

namespace {

constexpr double kDefaultRelTol = 1e-6;

struct MetricBaseline {
  std::string label;
  std::string unit;
  double expect = 0.0;
  double rel_tol = kDefaultRelTol;
  double abs_tol = 0.0;
};

struct Baseline {
  std::string bench;
  std::vector<MetricBaseline> metrics;
};

struct ReportRow {
  std::string label;
  std::string unit;
  double measured = 0.0;
};

/// Everything check_regression consumes from one bench report: the gated
/// rows plus the health-engine alert count the run's forensics recorded
/// (metrics.counters["health.alerts"], docs/HEALTH.md; 0 when the bench
/// ran without a ledger or predates the health engine).
struct ParsedReport {
  std::vector<ReportRow> rows;
  std::uint64_t alerts = 0;
  /// Per-flow word totals the run's network observatory recorded
  /// (metrics.counters["netflow.<flow>.words"], docs/NETWORK.md), in
  /// report order; empty when the bench ran without a NetMonitor.
  std::vector<std::pair<std::string, double>> netflow_words;
};

struct MetricVerdict {
  MetricBaseline baseline;
  std::optional<double> measured; ///< nullopt: row missing from report
  bool ok = false;
  std::string detail;
};

struct BenchVerdict {
  std::string bench;
  bool report_found = false;
  std::uint64_t alerts = 0; ///< health alerts recorded during the bench run
  /// Per-flow word totals the run recorded (docs/NETWORK.md).
  std::vector<std::pair<std::string, double>> netflow_words;
  std::vector<MetricVerdict> metrics;
  [[nodiscard]] bool ok() const {
    if (!report_found) return false;
    return std::all_of(metrics.begin(), metrics.end(),
                       [](const MetricVerdict& m) { return m.ok; });
  }
};

std::optional<std::string> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return os.str();
}

double num_or(const jp::Value* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string str_or(const jp::Value* v, std::string fallback) {
  return (v != nullptr && v->is_string()) ? v->string : std::move(fallback);
}

std::optional<Baseline> parse_baseline(const fs::path& path,
                                       std::string* error) {
  const auto text = slurp(path);
  if (!text) {
    *error = "could not read " + path.string();
    return std::nullopt;
  }
  const jp::ParseResult r = jp::parse(*text);
  if (!r.ok()) {
    *error = path.string() + ": " + r.error;
    return std::nullopt;
  }
  Baseline b;
  b.bench = str_or(r.value->find("bench"), path.stem().string());
  const jp::Value* metrics = r.value->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    *error = path.string() + ": missing \"metrics\" array";
    return std::nullopt;
  }
  for (const jp::Value& m : *metrics->array) {
    MetricBaseline mb;
    mb.label = str_or(m.find("label"), "");
    if (mb.label.empty()) {
      *error = path.string() + ": metric without a \"label\"";
      return std::nullopt;
    }
    mb.unit = str_or(m.find("unit"), "");
    const jp::Value* expect = m.find("expect");
    if (expect == nullptr || !expect->is_number()) {
      *error = path.string() + ": metric \"" + mb.label +
               "\" missing numeric \"expect\"";
      return std::nullopt;
    }
    mb.expect = expect->number;
    mb.rel_tol = num_or(m.find("rel_tol"), kDefaultRelTol);
    mb.abs_tol = num_or(m.find("abs_tol"), 0.0);
    b.metrics.push_back(std::move(mb));
  }
  return b;
}

std::optional<ParsedReport> parse_report(const fs::path& path,
                                         std::string* error) {
  const auto text = slurp(path);
  if (!text) {
    *error = "could not read " + path.string();
    return std::nullopt;
  }
  const jp::ParseResult r = jp::parse(*text);
  if (!r.ok()) {
    *error = path.string() + ": " + r.error;
    return std::nullopt;
  }
  const jp::Value* rows = r.value->find("rows");
  if (rows == nullptr || !rows->is_array()) {
    *error = path.string() + ": missing \"rows\" array";
    return std::nullopt;
  }
  ParsedReport out;
  for (const jp::Value& row : *rows->array) {
    ReportRow rr;
    rr.label = str_or(row.find("label"), "");
    rr.unit = str_or(row.find("unit"), "");
    const jp::Value* measured = row.find("measured");
    if (rr.label.empty() || measured == nullptr || !measured->is_number()) {
      continue; // tolerate benches adding free-form rows
    }
    rr.measured = measured->number;
    out.rows.push_back(std::move(rr));
  }
  const jp::Value* metrics = r.value->find("metrics");
  const jp::Value* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  const jp::Value* alerts =
      counters != nullptr ? counters->find("health.alerts") : nullptr;
  if (alerts != nullptr && alerts->is_number() && alerts->number > 0.0) {
    out.alerts = static_cast<std::uint64_t>(alerts->number);
  }
  if (counters != nullptr && counters->is_object()) {
    constexpr const char* kPrefix = "netflow.";
    constexpr const char* kSuffix = ".words";
    for (const auto& [name, value] : *counters->object) {
      if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) continue;
      if (name.compare(0, std::strlen(kPrefix), kPrefix) != 0) continue;
      if (name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                       kSuffix) != 0) {
        continue;
      }
      if (!value.is_number()) continue;
      const std::string flow = name.substr(
          std::strlen(kPrefix),
          name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
      out.netflow_words.emplace_back(flow, value.number);
    }
  }
  return out;
}

const ReportRow* find_row(const std::vector<ReportRow>& rows,
                          const std::string& label) {
  for (const ReportRow& r : rows) {
    if (r.label == label) return &r;
  }
  return nullptr;
}

BenchVerdict check_bench(const Baseline& baseline, const fs::path& report) {
  BenchVerdict v;
  v.bench = baseline.bench;
  std::string error;
  const auto parsed = parse_report(report, &error);
  if (!parsed) {
    v.report_found = false;
    MetricVerdict mv;
    mv.detail = error;
    v.metrics.push_back(std::move(mv));
    return v;
  }
  v.report_found = true;
  v.alerts = parsed->alerts;
  v.netflow_words = parsed->netflow_words;
  for (const MetricBaseline& mb : baseline.metrics) {
    MetricVerdict mv;
    mv.baseline = mb;
    const ReportRow* row = find_row(parsed->rows, mb.label);
    if (row == nullptr) {
      mv.ok = false;
      mv.detail = "row not found in report";
      v.metrics.push_back(std::move(mv));
      continue;
    }
    mv.measured = row->measured;
    const double tol = mb.abs_tol + mb.rel_tol * std::fabs(mb.expect);
    const double delta = row->measured - mb.expect;
    mv.ok = std::isfinite(row->measured) && std::fabs(delta) <= tol;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "measured %.9g expect %.9g (tol %.3g)",
                  row->measured, mb.expect, tol);
    mv.detail = buf;
    if (!mb.unit.empty() && row->unit != mb.unit) {
      mv.ok = false;
      mv.detail += " [unit changed: '" + row->unit + "' vs baseline '" +
                   mb.unit + "']";
    }
    v.metrics.push_back(std::move(mv));
  }
  return v;
}

/// --write: regenerate `<baselines>/<bench>.json` from the report,
/// preserving per-metric tolerances (and metric selection!) when a
/// baseline already exists. A fresh baseline gates every report row.
bool write_baseline(const fs::path& baseline_path, const fs::path& report,
                    std::string* error) {
  const auto parsed = parse_report(report, error);
  if (!parsed) return false;
  const std::vector<ReportRow>* rows = &parsed->rows;
  std::optional<Baseline> existing;
  if (fs::exists(baseline_path)) {
    std::string ignored;
    existing = parse_baseline(baseline_path, &ignored);
  }
  Baseline out;
  out.bench = report.stem().string();
  if (existing) {
    // Keep the existing metric list and tolerances, refresh expects.
    for (MetricBaseline mb : existing->metrics) {
      const ReportRow* row = find_row(*rows, mb.label);
      if (row == nullptr) {
        *error = "baseline metric \"" + mb.label +
                 "\" no longer present in " + report.string();
        return false;
      }
      mb.expect = row->measured;
      mb.unit = row->unit;
      out.metrics.push_back(std::move(mb));
    }
  } else {
    for (const ReportRow& row : *rows) {
      MetricBaseline mb;
      mb.label = row.label;
      mb.unit = row.unit;
      mb.expect = row.measured;
      out.metrics.push_back(std::move(mb));
    }
  }
  wss::telemetry::json::Writer w;
  w.begin_object();
  w.key("bench").value(out.bench);
  w.key("metrics").begin_array();
  for (const MetricBaseline& mb : out.metrics) {
    w.begin_object();
    w.key("label").value(mb.label);
    w.key("unit").value(mb.unit);
    w.key("expect").value(mb.expect);
    w.key("rel_tol").value(mb.rel_tol);
    w.key("abs_tol").value(mb.abs_tol);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream outf(baseline_path, std::ios::binary | std::ios::trunc);
  if (!outf) {
    *error = "could not open " + baseline_path.string();
    return false;
  }
  outf << w.str() << "\n";
  outf.flush();
  if (!outf) {
    *error = "short write to " + baseline_path.string();
    return false;
  }
  return true;
}

std::string verdicts_json(const std::vector<BenchVerdict>& verdicts) {
  wss::telemetry::json::Writer w;
  w.begin_object();
  bool all_ok = true;
  for (const BenchVerdict& v : verdicts) all_ok = all_ok && v.ok();
  w.key("ok").value(all_ok);
  w.key("benches").begin_array();
  for (const BenchVerdict& v : verdicts) {
    w.begin_object();
    w.key("bench").value(v.bench);
    w.key("report_found").value(v.report_found);
    w.key("ok").value(v.ok());
    w.key("alerts").value(v.alerts);
    w.key("metrics").begin_array();
    for (const MetricVerdict& m : v.metrics) {
      w.begin_object();
      w.key("label").value(m.baseline.label);
      w.key("unit").value(m.baseline.unit);
      w.key("expect").value(m.baseline.expect);
      if (m.measured) {
        w.key("measured").value(*m.measured);
      } else {
        w.key("measured").null();
      }
      w.key("rel_tol").value(m.baseline.rel_tol);
      w.key("abs_tol").value(m.baseline.abs_tol);
      w.key("ok").value(m.ok);
      w.key("detail").value(m.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

// --- bench trajectory (docs/TIMESERIES.md) ------------------------------
//
// Every gate run can be appended, with a run ID and git sha, to an
// append-only `wss.benchhistory/1` JSONL ledger; the trajectory report
// trends each gated metric across that history so CI exposes drift as a
// curve, not just the latest pass/fail bit.

constexpr const char* kBenchHistorySchema = "wss.benchhistory/1";
constexpr const char* kBenchTrajectorySchema = "wss.benchtrajectory/1";

std::string resolve_sha(const std::string& cli_sha) {
  if (!cli_sha.empty()) return cli_sha;
  const std::string env_sha = wss::env::parse_string("WSS_GIT_SHA");
  return env_sha.empty() ? "unknown" : env_sha;
}

std::string history_line(const std::string& run_id, const std::string& sha,
                         const std::vector<BenchVerdict>& verdicts) {
  wss::telemetry::json::Writer w;
  w.begin_object();
  w.key("schema").value(kBenchHistorySchema);
  w.key("run_id").value(run_id);
  w.key("sha").value(sha);
  bool all_ok = true;
  for (const BenchVerdict& v : verdicts) all_ok = all_ok && v.ok();
  w.key("ok").value(all_ok);
  w.key("benches").begin_array();
  for (const BenchVerdict& v : verdicts) {
    w.begin_object();
    w.key("bench").value(v.bench);
    w.key("ok").value(v.ok());
    w.key("alerts").value(v.alerts);
    if (!v.netflow_words.empty()) {
      // Per-flow traffic the bench's network observatory recorded rides
      // in the history line so the trajectory report trends link words
      // next to cycles (docs/NETWORK.md).
      w.key("netflows").begin_object();
      for (const auto& [flow, words] : v.netflow_words) {
        w.key(flow).value(words);
      }
      w.end_object();
    }
    w.key("metrics").begin_array();
    for (const MetricVerdict& m : v.metrics) {
      if (!m.measured) continue; // missing rows carry no trend point
      w.begin_object();
      w.key("label").value(m.baseline.label);
      w.key("unit").value(m.baseline.unit);
      w.key("measured").value(*m.measured);
      w.key("ok").value(m.ok);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool append_history(const std::string& dir, const std::string& run_id,
                    const std::string& sha,
                    const std::vector<BenchVerdict>& verdicts,
                    std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path path = fs::path(dir) / "history.jsonl";
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    *error = "could not open " + path.string();
    return false;
  }
  out << history_line(run_id, sha, verdicts) << "\n";
  out.flush();
  if (!out) {
    *error = "short write to " + path.string();
    return false;
  }
  return true;
}

/// One history entry, flattened to (bench/label, unit, measured) triples.
struct HistoryEntry {
  std::string run_id;
  std::string sha;
  bool ok = false;
  struct Point {
    std::string bench;
    std::string label;
    std::string unit;
    double measured = 0.0;
  };
  std::vector<Point> points;
};

std::optional<std::vector<HistoryEntry>> load_history(const std::string& dir,
                                                      std::string* error) {
  const fs::path path = fs::path(dir) / "history.jsonl";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "could not read " + path.string();
    return std::nullopt;
  }
  std::vector<HistoryEntry> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const jp::ParseResult r = jp::parse(line);
    if (!r.ok()) continue; // torn/partial trailing line: skip, keep history
    if (str_or(r.value->find("schema"), "") != kBenchHistorySchema) continue;
    HistoryEntry e;
    e.run_id = str_or(r.value->find("run_id"), "");
    e.sha = str_or(r.value->find("sha"), "unknown");
    const jp::Value* ok = r.value->find("ok");
    e.ok = ok != nullptr && ok->kind == jp::Kind::Bool && ok->boolean;
    const jp::Value* benches = r.value->find("benches");
    if (benches != nullptr && benches->is_array()) {
      for (const jp::Value& bench : *benches->array) {
        const std::string bench_name = str_or(bench.find("bench"), "");
        // Health-alert counts trend alongside the perf metrics: synthesize
        // a (bench, "health alerts") point per history entry that carries
        // the field (older `wss.benchhistory/1` lines simply predate it).
        const jp::Value* alerts = bench.find("alerts");
        if (alerts != nullptr && alerts->is_number()) {
          e.points.push_back({bench_name, "health alerts", "alerts",
                              alerts->number});
        }
        // Per-flow word totals trend like any gated metric (entries
        // without the field predate the network observatory).
        const jp::Value* netflows = bench.find("netflows");
        if (netflows != nullptr && netflows->is_object()) {
          for (const auto& [flow, words] : *netflows->object) {
            if (!words.is_number()) continue;
            e.points.push_back({bench_name, "netflow " + flow + " words",
                                "words", words.number});
          }
        }
        const jp::Value* metrics = bench.find("metrics");
        if (metrics == nullptr || !metrics->is_array()) continue;
        for (const jp::Value& m : *metrics->array) {
          HistoryEntry::Point p;
          p.bench = bench_name;
          p.label = str_or(m.find("label"), "");
          p.unit = str_or(m.find("unit"), "");
          const jp::Value* measured = m.find("measured");
          if (p.label.empty() || measured == nullptr ||
              !measured->is_number()) {
            continue;
          }
          p.measured = measured->number;
          e.points.push_back(std::move(p));
        }
      }
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string trajectory_json(const std::vector<HistoryEntry>& history) {
  // Metric identity = (bench, label), in first-seen order across history.
  struct Series {
    std::string bench;
    std::string label;
    std::string unit;
    std::vector<double> points;
  };
  std::vector<Series> series;
  auto find_series = [&](const std::string& bench,
                         const std::string& label) -> Series* {
    for (Series& s : series) {
      if (s.bench == bench && s.label == label) return &s;
    }
    return nullptr;
  };
  for (const HistoryEntry& e : history) {
    for (const HistoryEntry::Point& p : e.points) {
      Series* s = find_series(p.bench, p.label);
      if (s == nullptr) {
        series.push_back({p.bench, p.label, p.unit, {}});
        s = &series.back();
      }
      s->points.push_back(p.measured);
    }
  }
  wss::telemetry::json::Writer w;
  w.begin_object();
  w.key("schema").value(kBenchTrajectorySchema);
  w.key("entries").value(static_cast<std::uint64_t>(history.size()));
  if (!history.empty()) {
    w.key("latest_run").value(history.back().run_id);
    w.key("latest_sha").value(history.back().sha);
    w.key("latest_ok").value(history.back().ok);
  }
  w.key("metrics").begin_array();
  for (const Series& s : series) {
    double lo = s.points.front();
    double hi = s.points.front();
    double sum = 0.0;
    for (const double v : s.points) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    w.begin_object();
    w.key("bench").value(s.bench);
    w.key("label").value(s.label);
    w.key("unit").value(s.unit);
    w.key("min").value(lo);
    w.key("max").value(hi);
    w.key("mean").value(sum / static_cast<double>(s.points.size()));
    w.key("latest").value(s.points.back());
    w.key("spark").value(
        wss::telemetry::sparkline(s.points, std::min<std::size_t>(
                                                s.points.size(), 60)));
    w.key("points").begin_array();
    for (const double v : s.points) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baselines <dir> --reports <dir> [--write] "
      "[--report <path>]\n"
      "          [--history-dir <dir>] [--sha <gitsha>] "
      "[--trajectory <path>]\n"
      "  compares $WSS_JSON_OUT bench reports against checked-in "
      "baselines;\n"
      "  exit 0 = all gated metrics within tolerance, 1 = regression,\n"
      "  2 = usage/io error. --write regenerates baselines from the "
      "reports.\n"
      "  --history-dir appends this run to <dir>/history.jsonl "
      "(wss.benchhistory/1);\n"
      "  --trajectory emits a trend report over that history "
      "(wss.benchtrajectory/1).\n",
      argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  std::string baselines_dir;
  std::string reports_dir;
  std::string report_out;
  std::string history_dir;
  std::string trajectory_out;
  std::string sha;
  bool write = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baselines") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      baselines_dir = v;
    } else if (arg == "--reports") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      reports_dir = v;
    } else if (arg == "--report") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      report_out = v;
    } else if (arg == "--history-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      history_dir = v;
    } else if (arg == "--trajectory") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trajectory_out = v;
    } else if (arg == "--sha") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sha = v;
    } else if (arg == "--write") {
      write = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (baselines_dir.empty() || reports_dir.empty()) return usage(argv[0]);

  std::error_code ec;
  if (write) {
    fs::create_directories(baselines_dir, ec);
    int written = 0;
    for (const auto& entry : fs::directory_iterator(reports_dir, ec)) {
      if (entry.path().extension() != ".json") continue;
      const fs::path baseline =
          fs::path(baselines_dir) / entry.path().filename();
      std::string error;
      if (!write_baseline(baseline, entry.path(), &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      std::printf("wrote %s\n", baseline.string().c_str());
      ++written;
    }
    if (ec) {
      std::fprintf(stderr, "error: cannot list %s: %s\n",
                   reports_dir.c_str(), ec.message().c_str());
      return 2;
    }
    if (written == 0) {
      std::fprintf(stderr, "error: no *.json reports in %s\n",
                   reports_dir.c_str());
      return 2;
    }
    return 0;
  }

  std::vector<fs::path> baseline_files;
  for (const auto& entry : fs::directory_iterator(baselines_dir, ec)) {
    if (entry.path().extension() == ".json") {
      baseline_files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot list %s: %s\n", baselines_dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  std::sort(baseline_files.begin(), baseline_files.end());
  if (baseline_files.empty()) {
    std::fprintf(stderr, "error: no baselines in %s\n", baselines_dir.c_str());
    return 2;
  }

  std::vector<BenchVerdict> verdicts;
  for (const fs::path& bf : baseline_files) {
    std::string error;
    const auto baseline = parse_baseline(bf, &error);
    if (!baseline) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    const fs::path report = fs::path(reports_dir) / bf.filename();
    verdicts.push_back(check_bench(*baseline, report));
  }

  int failures = 0;
  for (const BenchVerdict& v : verdicts) {
    std::printf("%s %s\n", v.ok() ? "PASS" : "FAIL", v.bench.c_str());
    if (!v.report_found) {
      std::printf("  missing report: %s\n",
                  v.metrics.empty() ? "?" : v.metrics.front().detail.c_str());
      ++failures;
      continue;
    }
    for (const MetricVerdict& m : v.metrics) {
      std::printf("  %s %-34s %s\n", m.ok ? "ok  " : "FAIL",
                  m.baseline.label.c_str(), m.detail.c_str());
      if (!m.ok) ++failures;
    }
    if (v.alerts > 0) {
      std::printf("  note health engine recorded %llu alert(s) during this "
                  "bench run\n",
                  static_cast<unsigned long long>(v.alerts));
    }
  }

  if (!report_out.empty()) {
    std::ofstream out(report_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: could not open %s\n", report_out.c_str());
      return 2;
    }
    out << verdicts_json(verdicts) << "\n";
  }

  if (!history_dir.empty()) {
    const std::string run_id = wss::telemetry::next_run_id("bench-gate");
    std::string error;
    if (!append_history(history_dir, run_id, resolve_sha(sha), verdicts,
                        &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("appended %s to %s/history.jsonl\n", run_id.c_str(),
                history_dir.c_str());
  }

  if (!trajectory_out.empty()) {
    if (history_dir.empty()) {
      std::fprintf(stderr, "error: --trajectory needs --history-dir\n");
      return 2;
    }
    std::string error;
    const auto history = load_history(history_dir, &error);
    if (!history) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::ofstream out(trajectory_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: could not open %s\n",
                   trajectory_out.c_str());
      return 2;
    }
    out << trajectory_json(*history) << "\n";
    std::printf("wrote %s (%zu history entr%s)\n", trajectory_out.c_str(),
                history->size(), history->size() == 1 ? "y" : "ies");
  }

  if (failures > 0) {
    std::printf("regression gate: %d metric(s) out of tolerance\n", failures);
    return 1;
  }
  std::printf("regression gate: all %zu bench(es) within tolerance\n",
              verdicts.size());
  return 0;
}
