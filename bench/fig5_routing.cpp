// E4 — Fig. 5: the tessellation routing pattern. Verifies the five-color
// property (outgoing color distinct from all four incoming, incoming
// pairwise distinct) across fabric sizes including the paper's full
// 602x595, and prints a sample of the pattern.

#include <cstdio>

#include "bench_util.hpp"
#include "wse/route_compiler.hpp"

int main() {
  using namespace wss;
  using namespace wss::wse;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E4: tessellation routing pattern", "Fig. 5",
      "single outgoing channel per tile fans to 4 neighbors; all "
      "five channels distinct at every tile");

  std::printf("sample of the color tessellation (8x8 corner):\n  ");
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      std::printf("%d ", static_cast<int>(tessellation_color(x, y)));
    }
    std::printf("\n  ");
  }
  std::printf("\n");

  std::printf("%-14s %12s\n", "fabric", "violations");
  for (const auto& [w, h] : {std::pair{8, 8}, std::pair{51, 89},
                            std::pair{357, 595}, std::pair{602, 595}}) {
    std::printf("%5dx%-8d %12d\n", w, h, verify_tessellation(w, h));
  }
  bench::row("violations on the full fabric", 0.0,
             static_cast<double>(verify_tessellation(602, 595)), "");
  bench::note("0 violations == the Fig. 5 property holds everywhere");
  return 0;
}
