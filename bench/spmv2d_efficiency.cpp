// E12 — Section IV-2: the 2D 9-point mapping. Sweeps the per-tile block
// size: memory capacity bounds the block at 38x38 (22800^2 meshes on the
// full fabric), and even 8x8 blocks (4800^2 meshes) keep the overhead
// under 20%. Also validates the block kernel against the reference SpMV.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/spmv2d.hpp"

int main() {
  using namespace wss;
  using namespace wss::wsekernels;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E12: 2D 9-point mapping efficiency", "Section IV-2",
      "blocks up to 38x38 fit; <20% overhead at 8x8");

  std::printf("%8s %14s %12s %12s %8s\n", "block", "memory KB", "overhead",
              "useful ops", "fits");
  for (const int b : {4, 8, 12, 16, 24, 32, 38, 39, 48}) {
    const auto m = model_spmv2d_block(b);
    std::printf("%8d %14.1f %11.1f%% %12lld %8s\n", b,
                m.memory_bytes / 1024.0, 100.0 * m.overhead,
                static_cast<long long>(m.useful_ops), m.fits ? "yes" : "NO");
  }

  std::printf("\n");
  bench::row("largest block that fits", 38.0,
             static_cast<double>(max_block_2d()), "");
  bench::row("mesh edge at 600 tiles", 22800.0,
             static_cast<double>(max_block_2d() * 600), "");
  bench::row("overhead at 8x8 block", 0.20, model_spmv2d_block(8).overhead,
             "");

  // Functional validation of the block kernel.
  const Grid2 g(64, 48);
  auto ad = make_random_dominant9(g, 0.4, 3);
  Field2<double> bb(g, 1.0);
  (void)precondition_jacobi(ad, bb);
  Stencil9<fp16_t> a(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(ad.coeff[static_cast<std::size_t>(k)][i]);
    }
  }
  a.unit_diagonal = true;
  Field2<fp16_t> v(g);
  Rng rng(5);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

  Field2<double> vd(g), ud(g);
  for (std::size_t i = 0; i < v.size(); ++i) vd[i] = v[i].to_double();
  Stencil9<double> adv(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      adv.coeff[static_cast<std::size_t>(k)][i] =
          a.coeff[static_cast<std::size_t>(k)][i].to_double();
    }
  }
  spmv9(adv, vd, ud);

  std::printf("\nblock kernel vs reference (64x48 mesh):\n");
  for (const int block : {8, 16, 38}) {
    Field2<fp16_t> u(g);
    wse_spmv2d(a, v, u, block, block);
    double worst = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) {
      worst = std::max(worst, std::abs(u[i].to_double() - ud[i]));
    }
    std::printf("  block %2dx%-2d: max |err| = %.2e (fp16 noise)\n", block,
                block, worst);
  }
  return 0;
}
