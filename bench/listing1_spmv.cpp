// E3 — Listing 1 / Fig. 4: the dataflow SpMV on the cycle-level fabric
// simulator. Verifies values against the fp64 reference, reports cycles
// per Z point, and runs the two ablations the paper mentions: FIFO depth
// (20 in the paper) and one vs two summation tasks ("the production code
// used two distinct summation tasks to improve performance").

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "perfmodel/cs1_model.hpp"
#include "stencil/generators.hpp"
#include "telemetry/global.hpp"
#include "telemetry/heatmap.hpp"
#include "wse/trace.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

struct Case {
  wss::Stencil7<wss::fp16_t> a;
  wss::Field3<wss::fp16_t> v;
};

Case make_case(wss::Grid3 g, std::uint64_t seed) {
  auto ad = wss::make_random_dominant7(g, 0.5, seed);
  wss::Field3<double> b(g, 1.0);
  (void)wss::precondition_jacobi(ad, b);
  Case c{wss::convert_stencil<wss::fp16_t>(ad), wss::Field3<wss::fp16_t>(g)};
  wss::Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = wss::fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

double max_err(const Case& c, const wss::Field3<wss::fp16_t>& u) {
  auto ad = wss::convert_stencil<double>(c.a);
  auto vd = wss::convert_field<double>(c.v);
  wss::Field3<double> ud(c.a.grid);
  wss::spmv7(ad, vd, ud);
  double worst = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    worst = std::max(worst, std::abs(u[i].to_double() - ud[i]));
  }
  return worst;
}

} // namespace

int main() {
  using namespace wss;

  const bench::BenchEnv env = bench::bench_env(
      "E3: Listing 1 SpMV on the fabric simulator", "Listing 1, Fig. 4",
      "streamed 7-point SpMV via FIFOs + summation task; "
      "validated values and cycles",
      /*simulated=*/true);

  const wse::CS1Params arch;
  const wse::SimParams sim;
  const perfmodel::CS1Model model;

  std::printf("%-10s %10s %12s %12s %10s\n", "fabric", "Z", "cycles",
              "cycles/Z", "max |err|");
  for (const int z : {32, 64, 128, 256, 512}) {
    auto span = env.spans->scope("spmv_z" + std::to_string(z), "bench");
    Case c = make_case(Grid3(6, 6, z), 7);
    wsekernels::SpMV3DSimulation s(c.a, arch, sim);
    if (z == 512) {
      if (env.trace) {
        wse::Tracer& fabric_trace = telemetry::exit_scoped_fabric_tracer(
            1 << 20, arch.clock_hz, "cs1-sim");
        s.fabric().set_tracer(&fabric_trace);
      }
      const auto u = s.run(c.v);
      s.fabric().set_tracer(nullptr);
      std::printf("%-10s %10d %12llu %12.2f %10.2e\n", "6x6", z,
                  static_cast<unsigned long long>(s.last_run_cycles()),
                  static_cast<double>(s.last_run_cycles()) / z,
                  max_err(c, u));

      // Per-tile activity of the deepest run: ASCII triage map here,
      // full CSV grids under WSS_CSV_DIR for plotting.
      const auto maps = telemetry::collect_heatmaps(s.fabric());
      std::printf("\n%s\n", maps.instr_cycles.ascii().c_str());
      std::printf("%s\n", maps.stall_cycles.ascii().c_str());
      if (env.csv_dir != nullptr) {
        std::string error;
        std::string used_prefix;
        if (telemetry::write_heatmap_csvs(maps, env.csv_dir, "spmv_6x6_z512",
                                          &error, &used_prefix)) {
          std::printf("  [heatmaps: wrote %s/%s_*.csv]\n", env.csv_dir,
                      used_prefix.c_str());
        } else {
          std::printf("  [heatmaps: %s]\n", error.c_str());
        }
      }
    } else {
      const auto u = s.run(c.v);
      std::printf("%-10s %10d %12llu %12.2f %10.2e\n", "6x6", z,
                  static_cast<unsigned long long>(s.last_run_cycles()),
                  static_cast<double>(s.last_run_cycles()) / z,
                  max_err(c, u));
    }
  }
  bench::row("model cycles/Z (mixed)", 0.0, model.spmv_cycles(512) / 512.0,
             "cyc/Z");

  // Ablation 1: FIFO depth.
  std::printf("\nFIFO depth ablation (6x6 fabric, Z=256; paper depth = 20):\n");
  std::printf("%-10s %12s %12s\n", "depth", "cycles", "max |err|");
  for (const int depth : {2, 4, 8, 20, 64}) {
    Case c = make_case(Grid3(6, 6, 256), 9);
    wsekernels::SpMV3DOptions opt;
    opt.fifo_depth = depth;
    wsekernels::SpMV3DSimulation s(c.a, arch, sim, opt);
    const auto u = s.run(c.v);
    std::printf("%-10d %12llu %12.2e\n", depth,
                static_cast<unsigned long long>(s.last_run_cycles()),
                max_err(c, u));
  }

  // Ablation 2: one vs two summation tasks.
  std::printf("\nsummation-task ablation (6x6 fabric, Z=256):\n");
  for (const int tasks : {1, 2}) {
    Case c = make_case(Grid3(6, 6, 256), 11);
    wsekernels::SpMV3DOptions opt;
    opt.num_sum_tasks = tasks;
    wsekernels::SpMV3DSimulation s(c.a, arch, sim, opt);
    (void)s.run(c.v);
    std::printf("  %d summation task(s): %llu cycles\n", tasks,
                static_cast<unsigned long long>(s.last_run_cycles()));
  }
  bench::note("correctness is FIFO-depth independent; shallow FIFOs "
              "throttle the multiply threads");
  return 0;
}
