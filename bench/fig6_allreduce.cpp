// E5 — Fig. 6 / Section IV-3: the scalar AllReduce. Runs the reduction +
// broadcast tree on the cycle simulator across fabric sizes, shows the
// cycle count tracking the fabric diameter, and extrapolates (with the
// validated model) to the full 602x595 wafer: under 1.5 microseconds.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "perfmodel/cs1_model.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/bicgstab_program.hpp"

int main() {
  using namespace wss;

  const bench::BenchEnv env = bench::bench_env(
      "E5: AllReduce latency", "Fig. 6, Section IV-3",
      "cycle count ~10% over the fabric diameter; < 1.5 us for "
      "~380k cores",
      /*simulated=*/true);

  const wse::CS1Params arch;
  const wse::SimParams sim;
  const perfmodel::CS1Model model;

  std::printf("%-10s %10s %10s %10s %12s\n", "fabric", "cycles", "diameter",
              "ratio", "model cyc");
  std::vector<std::vector<double>> csv_rows;
  for (const int n : {4, 8, 16, 32, 48, 64}) {
    wsekernels::AllReduceSimulation ar(n, n, arch, sim);
    Rng rng(3);
    std::vector<float> contrib(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (auto& v : contrib) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto result = ar.run(contrib);
    const int diameter = 2 * (n - 1);
    std::printf("%3dx%-6d %10llu %10d %10.2f %12.1f\n", n, n,
                static_cast<unsigned long long>(result.cycles), diameter,
                static_cast<double>(result.cycles) / diameter,
                model.allreduce_cycles(n, n));
    csv_rows.push_back({static_cast<double>(n),
                        static_cast<double>(result.cycles),
                        static_cast<double>(diameter),
                        model.allreduce_cycles(n, n)});
  }
  bench::write_csv(env, "fig6_allreduce",
                   "fabric_n,cycles,diameter,model_cycles", csv_rows);

  const double us_full = model.allreduce_seconds(602, 595) * 1e6;
  std::printf("\n");
  bench::row("full-wafer AllReduce (model)", 1.5, us_full, "us");
  bench::row("cycles vs diameter (full wafer)", 1.1,
             model.allreduce_cycles(602, 595) / (602 + 595 - 2), "x");
  bench::note("paper: 'under 1.5 microseconds for a system of about "
              "380,000 ... processors'");

  // Ablation: the paper notes it did NOT use a communication-hiding
  // BiCGStab ("this collective operation is blocking"). Fusing the
  // back-to-back (q,y)/(y,y) reductions onto two concurrent trees:
  std::printf("\nfused-reduction ablation (full BiCGStab iterations on the "
              "simulator):\n");
  std::printf("%-12s %16s %16s %12s\n", "fabric,Z", "blocking cyc/it",
              "fused cyc/it", "saved");
  {
    for (const auto& [n, z] : {std::pair{8, 32}, std::pair{16, 16},
                              std::pair{24, 8}, std::pair{32, 8}}) {
      const Grid3 g(n, n, z);
      auto ad = make_momentum_like7(g, 0.5, 7);
      auto bd = make_rhs(ad, make_smooth_solution(g));
      const auto bp = precondition_jacobi(ad, bd);
      const auto a16 = convert_stencil<fp16_t>(ad);
      const auto b16 = convert_field<fp16_t>(bp);
      wsekernels::BicgstabSimulation blocking(a16, 3, arch, sim);
      wsekernels::BicgstabSimOptions opt;
      opt.fuse_qy_yy = true;
      wsekernels::BicgstabSimulation fused(a16, 3, arch, sim, opt);
      const double c1 = static_cast<double>(blocking.run(b16).cycles) / 3.0;
      const double c2 = static_cast<double>(fused.run(b16).cycles) / 3.0;
      char label[24];
      std::snprintf(label, sizeof label, "%dx%d,%d", n, n, z);
      std::printf("%-12s %16.0f %16.0f %12.0f\n", label, c1, c2, c1 - c2);
    }
  }
  bench::note("savings stay modest: back-to-back blocking reductions "
              "already pipeline through the staggered broadcast — "
              "consistent with the paper's choice to keep them blocking");
  return 0;
}
