// Host-side simulator throughput: tile·cycles per wall-clock second for
// the banded parallel Fabric::step() (docs/SIMULATOR.md, "Parallel
// simulation") against the serial baseline, on a paper-scale fabric slab.
// The parallel path is bit-identical to serial by contract, so this bench
// also cross-checks the SpMV result vector bit for bit at every thread
// count before reporting any timing — a wrong fast simulator is worthless.
//
// Machine-readable output: with WSS_JSON_OUT=<dir> the rows below land in
// bench_sim_throughput.json ("tile-cycles/s @ N threads" and
// "speedup @ N threads"); CI prints and archives them.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wse/sim_pool.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

struct Case {
  wss::Stencil7<wss::fp16_t> a;
  wss::Field3<wss::fp16_t> v;
};

Case make_case(wss::Grid3 g, std::uint64_t seed) {
  auto ad = wss::make_random_dominant7(g, 0.5, seed);
  wss::Field3<double> b(g, 1.0);
  (void)wss::precondition_jacobi(ad, b);
  Case c{wss::convert_stencil<wss::fp16_t>(ad), wss::Field3<wss::fp16_t>(g)};
  wss::Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = wss::fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

struct Measured {
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  wss::Field3<wss::fp16_t> u;
};

Measured run_once(const Case& c, const wss::wse::CS1Params& arch,
                  int threads) {
  wss::wse::SimParams sim;
  sim.sim_threads = threads;
  wss::wsekernels::SpMV3DSimulation s(c.a, arch, sim);
  const auto t0 = std::chrono::steady_clock::now();
  Measured m;
  m.u = s.run(c.v);
  const auto t1 = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.cycles = s.last_run_cycles();
  return m;
}

} // namespace

int main(int argc, char** argv) {
  using namespace wss;

  // Fabric edge (paper-scale slab by default; --quick for CI smoke).
  int n = 64;
  int z = 24;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      n = 16;
      z = 12;
    }
  }

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E12: simulator throughput (banded parallel stepping)",
      "host-side, not a paper figure",
      "parallel Fabric::step() is bit-identical to serial and "
      "scales tile-cycles/sec with host threads",
      /*simulated=*/true);
  std::printf("  [hardware threads available: %u]\n",
              wse::SimThreadPool::hardware_threads());

  const wse::CS1Params arch;
  const Case c = make_case(Grid3(n, n, z), 42);
  const double tiles = static_cast<double>(n) * static_cast<double>(n);

  const Measured serial = run_once(c, arch, 1);
  const double serial_tc =
      tiles * static_cast<double>(serial.cycles) / serial.seconds;
  std::printf("%-10s %8s %12s %14s %10s\n", "threads", "cycles", "seconds",
              "tile-cyc/s", "speedup");
  std::printf("%-10d %8llu %12.4f %14.4g %10s\n", 1,
              static_cast<unsigned long long>(serial.cycles), serial.seconds,
              serial_tc, "1.00x");
  bench::row("tile-cycles/s @ 1 threads", 0.0, serial_tc, "tc/s");

  bool bit_exact = true;
  for (const int threads : {2, 4, 8}) {
    const Measured par = run_once(c, arch, threads);
    for (std::size_t i = 0; i < par.u.size(); ++i) {
      if (par.u[i].bits() != serial.u[i].bits()) {
        bit_exact = false;
        std::printf("  MISMATCH: element %zu differs at %d threads\n", i,
                    threads);
        break;
      }
    }
    if (par.cycles != serial.cycles) {
      bit_exact = false;
      std::printf("  MISMATCH: cycle count differs at %d threads\n", threads);
    }
    const double tc = tiles * static_cast<double>(par.cycles) / par.seconds;
    const double speedup = serial.seconds / par.seconds;
    std::printf("%-10d %8llu %12.4f %14.4g %9.2fx\n", threads,
                static_cast<unsigned long long>(par.cycles), par.seconds, tc,
                speedup);
    char label[64];
    std::snprintf(label, sizeof label, "tile-cycles/s @ %d threads", threads);
    bench::row(label, 0.0, tc, "tc/s");
    std::snprintf(label, sizeof label, "speedup @ %d threads", threads);
    bench::row(label, 0.0, speedup, "x");
  }

  bench::row("bit-exact vs serial", 0.0, bit_exact ? 1.0 : 0.0, "bool");
  bench::note(bit_exact
                  ? "all thread counts reproduced the serial result bit for "
                    "bit (determinism contract held)"
                  : "DETERMINISM VIOLATION: parallel run diverged from serial");
  bench::note("speedup is bounded by physical cores; single-core hosts "
              "report ~1x by construction");
  return bit_exact ? 0 : 1;
}
