// Host-side simulator throughput: tile·cycles per wall-clock second for
// the banded parallel Fabric::step() (docs/SIMULATOR.md, "Parallel
// simulation") against the serial baseline, on a paper-scale fabric slab —
// and for the turbo execution backend (docs/BACKENDS.md) against the
// reference interpreter. Both fast paths are bit-identical to serial
// reference by contract, so this bench cross-checks result bits and cycle
// counts before reporting any timing — a wrong fast simulator is worthless.
//
// Two workload shapes, because they bound the turbo win:
//   * busy SpMV slab — every tile computes almost every cycle, so turbo
//     can only win on router-phase indexing (the core interpreter is
//     untouched);
//   * steady-state AllReduce on a large fabric — a traveling wavefront
//     with the rest of the wafer provably idle, the shape the paper's
//     static-routed steady state actually has. Parking makes the idle
//     ocean nearly free; this section carries the CI-enforced >= 10x gate.
//
// Machine-readable output: with WSS_JSON_OUT=<dir> the rows below land in
// bench_sim_throughput.json; CI prints, gates on, and archives them
// (bench/baselines/bench_sim_throughput.json tracks the gate rows).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wse/sim_pool.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

struct Case {
  wss::Stencil7<wss::fp16_t> a;
  wss::Field3<wss::fp16_t> v;
};

Case make_case(wss::Grid3 g, std::uint64_t seed) {
  auto ad = wss::make_random_dominant7(g, 0.5, seed);
  wss::Field3<double> b(g, 1.0);
  (void)wss::precondition_jacobi(ad, b);
  Case c{wss::convert_stencil<wss::fp16_t>(ad), wss::Field3<wss::fp16_t>(g)};
  wss::Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = wss::fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

struct Measured {
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  wss::Field3<wss::fp16_t> u;
};

Measured run_once(const Case& c, const wss::wse::CS1Params& arch, int threads,
                  wss::wse::Backend backend) {
  wss::wse::SimParams sim;
  sim.sim_threads = threads;
  // Pin the backend and disable the watchdog explicitly: this bench
  // measures both backends side by side, so ambient WSS_SIM_BACKEND /
  // WSS_WATCHDOG_CYCLES must not silently re-route (a nonzero watchdog is
  // a turbo demotion trigger).
  sim.backend = backend;
  wss::wsekernels::SpMV3DSimulation s(c.a, arch, sim);
  s.fabric().set_watchdog(0);
  const auto t0 = std::chrono::steady_clock::now();
  Measured m;
  m.u = s.run(c.v);
  const auto t1 = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.cycles = s.last_run_cycles();
  return m;
}

struct MeasuredReduce {
  double seconds = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t link_transfers = 0;
  std::uint64_t flits_forwarded = 0;
  std::vector<float> values;
};

MeasuredReduce run_allreduce(int n, const wss::wse::CS1Params& arch,
                             wss::wse::Backend backend) {
  wss::wse::SimParams sim;
  sim.sim_threads = 1;
  sim.backend = backend;
  wss::wsekernels::AllReduceSimulation s(n, n, arch, sim);
  s.fabric().set_watchdog(0);
  std::vector<float> contrib(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n));
  wss::Rng rng(7);
  for (auto& v : contrib) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto t0 = std::chrono::steady_clock::now();
  MeasuredReduce m;
  auto r = s.run(contrib);
  const auto t1 = std::chrono::steady_clock::now();
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.cycles = r.cycles;
  m.values = std::move(r.values);
  m.link_transfers = s.fabric().stats().link_transfers;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      m.flits_forwarded += s.fabric().router_stats(x, y).flits_forwarded;
    }
  }
  return m;
}

bool same_bits(float a, float b) {
  std::uint32_t ab = 0;
  std::uint32_t bb = 0;
  static_assert(sizeof ab == sizeof a);
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  return ab == bb;
}

} // namespace

int main(int argc, char** argv) {
  using namespace wss;
  using wse::Backend;

  // Fabric edges (paper-scale slabs by default; --quick for CI smoke).
  int n = 64;       // busy SpMV slab edge (x = y; z layers below)
  int z = 24;
  int nsteady = 96; // steady-state AllReduce fabric edge
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
      n = 16;
      z = 12;
      nsteady = 32;
    }
  }

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E12: simulator throughput (banded parallel stepping, turbo backend)",
      "host-side, not a paper figure",
      "parallel Fabric::step() and the turbo backend are bit-identical to "
      "serial reference; turbo is >= 10x on the steady-state slab",
      /*simulated=*/true);
  std::printf("  [hardware threads available: %u]\n",
              wse::SimThreadPool::hardware_threads());

  const wse::CS1Params arch;
  const Case c = make_case(Grid3(n, n, z), 42);
  const double tiles = static_cast<double>(n) * static_cast<double>(n);

  // --- section 1: banded parallel stepping (reference backend) ---------
  const Measured serial = run_once(c, arch, 1, Backend::Reference);
  const double serial_tc =
      tiles * static_cast<double>(serial.cycles) / serial.seconds;
  std::printf("%-10s %8s %12s %14s %10s\n", "threads", "cycles", "seconds",
              "tile-cyc/s", "speedup");
  std::printf("%-10d %8llu %12.4f %14.4g %10s\n", 1,
              static_cast<unsigned long long>(serial.cycles), serial.seconds,
              serial_tc, "1.00x");
  bench::row("tile-cycles/s @ 1 threads", 0.0, serial_tc, "tc/s");

  bool bit_exact = true;
  for (const int threads : {2, 4, 8}) {
    const Measured par = run_once(c, arch, threads, Backend::Reference);
    for (std::size_t i = 0; i < par.u.size(); ++i) {
      if (par.u[i].bits() != serial.u[i].bits()) {
        bit_exact = false;
        std::printf("  MISMATCH: element %zu differs at %d threads\n", i,
                    threads);
        break;
      }
    }
    if (par.cycles != serial.cycles) {
      bit_exact = false;
      std::printf("  MISMATCH: cycle count differs at %d threads\n", threads);
    }
    const double tc = tiles * static_cast<double>(par.cycles) / par.seconds;
    const double speedup = serial.seconds / par.seconds;
    std::printf("%-10d %8llu %12.4f %14.4g %9.2fx\n", threads,
                static_cast<unsigned long long>(par.cycles), par.seconds, tc,
                speedup);
    char label[64];
    std::snprintf(label, sizeof label, "tile-cycles/s @ %d threads", threads);
    bench::row(label, 0.0, tc, "tc/s");
    std::snprintf(label, sizeof label, "speedup @ %d threads", threads);
    bench::row(label, 0.0, speedup, "x");
  }

  bench::row("bit-exact vs serial", 0.0, bit_exact ? 1.0 : 0.0, "bool");

  // --- section 2: turbo backend, busy SpMV slab ------------------------
  // Every tile computes nearly every cycle here, so this is turbo's
  // worst case: the win is router-phase indexing only.
  bool turbo_exact = true;
  const Measured turbo1 = run_once(c, arch, 1, Backend::Turbo);
  for (std::size_t i = 0; i < turbo1.u.size(); ++i) {
    if (turbo1.u[i].bits() != serial.u[i].bits()) {
      turbo_exact = false;
      std::printf("  MISMATCH: turbo element %zu differs (busy spmv)\n", i);
      break;
    }
  }
  if (turbo1.cycles != serial.cycles) {
    turbo_exact = false;
    std::printf("  MISMATCH: turbo cycle count differs (busy spmv)\n");
  }
  const Measured turbo8 = run_once(c, arch, 8, Backend::Turbo);
  for (std::size_t i = 0; i < turbo8.u.size(); ++i) {
    if (turbo8.u[i].bits() != serial.u[i].bits()) {
      turbo_exact = false;
      std::printf("  MISMATCH: turbo@8 element %zu differs (busy spmv)\n", i);
      break;
    }
  }
  if (turbo8.cycles != serial.cycles) turbo_exact = false;
  const double turbo_tc =
      tiles * static_cast<double>(turbo1.cycles) / turbo1.seconds;
  const double busy_speedup = serial.seconds / turbo1.seconds;
  std::printf("turbo      %8llu %12.4f %14.4g %9.2fx   (busy spmv)\n",
              static_cast<unsigned long long>(turbo1.cycles), turbo1.seconds,
              turbo_tc, busy_speedup);
  bench::row("tile-cycles/s turbo @ 1 threads", 0.0, turbo_tc, "tc/s");
  bench::row("turbo speedup (busy spmv)", 0.0, busy_speedup, "x");

  // --- section 3: turbo backend, steady-state slab (the >= 10x gate) ---
  const MeasuredReduce ref_r = run_allreduce(nsteady, arch, Backend::Reference);
  const MeasuredReduce tur_r = run_allreduce(nsteady, arch, Backend::Turbo);
  if (tur_r.cycles != ref_r.cycles ||
      tur_r.link_transfers != ref_r.link_transfers ||
      tur_r.flits_forwarded != ref_r.flits_forwarded ||
      tur_r.values.size() != ref_r.values.size()) {
    turbo_exact = false;
    std::printf("  MISMATCH: turbo counters differ (steady allreduce)\n");
  } else {
    for (std::size_t i = 0; i < ref_r.values.size(); ++i) {
      if (!same_bits(ref_r.values[i], tur_r.values[i])) {
        turbo_exact = false;
        std::printf("  MISMATCH: turbo value %zu differs (steady allreduce)\n",
                    i);
        break;
      }
    }
  }
  const double stiles =
      static_cast<double>(nsteady) * static_cast<double>(nsteady);
  const double ref_stc =
      stiles * static_cast<double>(ref_r.cycles) / ref_r.seconds;
  const double tur_stc =
      stiles * static_cast<double>(tur_r.cycles) / tur_r.seconds;
  const double steady_speedup = ref_r.seconds / tur_r.seconds;
  std::printf("steady-state allreduce %dx%d, %llu cycles:\n", nsteady, nsteady,
              static_cast<unsigned long long>(ref_r.cycles));
  std::printf("  reference %12.4f s %14.4g tc/s\n", ref_r.seconds, ref_stc);
  std::printf("  turbo     %12.4f s %14.4g tc/s %9.2fx\n", tur_r.seconds,
              tur_stc, steady_speedup);
  bench::row("tile-cycles/s reference (steady)", 0.0, ref_stc, "tc/s");
  bench::row("tile-cycles/s turbo (steady)", 0.0, tur_stc, "tc/s");
  bench::row("turbo speedup (steady)", 0.0, steady_speedup, "x");

  // The 10x target assumes a paper-scale slab: parking pays off in the
  // idle ocean around the wavefront, and the --quick 32x32 fabric barely
  // has one. Quick mode still reports the speedup but only gates on
  // correctness.
  const bool turbo_10x = quick || steady_speedup >= 10.0;
  bench::row("turbo bit-exact vs reference", 0.0, turbo_exact ? 1.0 : 0.0,
             "bool");
  bench::row("turbo >= 10x (steady)", 0.0, turbo_10x ? 1.0 : 0.0, "bool");

  bench::note(bit_exact
                  ? "all thread counts reproduced the serial result bit for "
                    "bit (determinism contract held)"
                  : "DETERMINISM VIOLATION: parallel run diverged from serial");
  bench::note(turbo_exact
                  ? "turbo backend reproduced reference bit for bit "
                    "(results, cycles, link transfers, flits forwarded)"
                  : "CONFORMANCE VIOLATION: turbo diverged from reference");
  bench::note("speedup is bounded by physical cores; single-core hosts "
              "report ~1x by construction");
  if (!turbo_10x) {
    bench::note("turbo fell below the 10x steady-state target "
                "(docs/BACKENDS.md)");
  }
  return (bit_exact && turbo_exact && turbo_10x) ? 0 : 1;
}
