// E1 — Fig. 1: machine balance (flops per word of memory and interconnect
// bandwidth). The paper's point: wafer-scale integration puts the CS-1 at
// the bottom of the flops-per-word scale — it can move 3 bytes to and from
// memory per flop, while conventional nodes sit orders of magnitude higher.

#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/balance.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E1: machine balance survey", "Fig. 1 (after McCalpin)",
      "CS-1 moves ~3 bytes/flop; CPU/GPU nodes sit at hundreds of "
      "flops per memory word");

  std::printf("%-28s %14s %14s %14s\n", "machine", "flops/mem word",
              "flops/net word", "bytes/flop mem");
  for (const MachineBalance& m : balance_survey()) {
    std::printf("%-28s %14.2f %14.1f %14.3f\n", m.name.c_str(),
                m.flops_per_memory_word(), m.flops_per_network_word(),
                m.bytes_per_flop_memory());
  }

  const auto cs1 = cs1_balance();
  const auto survey = balance_survey();
  std::printf("\n");
  bench::row("CS-1 bytes per flop (memory)", 3.0, cs1.bytes_per_flop_memory(),
             "B/flop");
  bench::row("Xeon node / CS-1 balance gap", 0.0,
             survey[0].flops_per_memory_word() / cs1.flops_per_memory_word(),
             "x");
  bench::note("gap of two to three orders of magnitude reproduces the "
              "Fig. 1 separation between conventional nodes and the wafer");
  return 0;
}
