// E10 — Section VI-A: projected CFD throughput on the CS-1: 600^3 mesh,
// 15 SIMPLE iterations per time step, solver caps 5 (transport) / 20
// (continuity) -> 80-125 timesteps/s, more than 200x a 16,384-core Joule
// partition.

#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/simple_model.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E10: CFD timestep throughput projection", "Section VI-A",
      "80-125 timesteps/s at 600^3; >200x faster than Joule@16k");

  const SimpleModel model{CS1Model{}, JouleModel{}};
  const Grid3 mesh(600, 600, 600);
  const auto p = model.project(mesh);

  std::printf("cycles per core per timestep: %.2fM - %.2fM\n",
              p.cycles_per_core_lo / 1e6, p.cycles_per_core_hi / 1e6);
  std::printf("wall time per timestep      : %.2f - %.2f ms\n",
              p.seconds_lo * 1e3, p.seconds_hi * 1e3);
  bench::row("timesteps/s (low)", 80.0, p.steps_per_second_lo, "steps/s");
  bench::row("timesteps/s (high)", 125.0, p.steps_per_second_hi, "steps/s");
  bench::row("speedup vs Joule @16k cores", 200.0, p.speedup_vs_joule_16k,
             "x");

  std::printf("\nsensitivity to SIMPLE iterations per step (paper: 5-20):\n");
  std::printf("%8s %16s %16s\n", "iters", "steps/s (lo)", "steps/s (hi)");
  for (const int iters : {5, 10, 15, 20}) {
    SimpleRunParams run;
    run.simple_iterations = iters;
    const auto q = model.project(mesh, run);
    std::printf("%8d %16.1f %16.1f\n", iters, q.steps_per_second_lo,
                q.steps_per_second_hi);
  }

  std::printf("\nreal-time window (helicopter/ship use case, ~1M cells):\n");
  const auto heli = model.project(Grid3(100, 100, 100));
  std::printf("  100^3 mesh: %.0f - %.0f timesteps/s\n",
              heli.steps_per_second_lo, heli.steps_per_second_hi);
  bench::note("'faster-than real-time simulation of millions of cells' "
              "(Section VIII-A)");
  return 0;
}
