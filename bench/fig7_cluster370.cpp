// E7 — Fig. 7: strong scaling of BiCGStab (inside MFIX) on the Joule
// cluster, 370^3 mesh. The figure's message: scaling fails beyond 8k
// cores. We regenerate the series with the calibrated cost model, and
// functionally validate the distributed solver on the thread runtime.

#include <cstdio>

#include <vector>

#include "bench_util.hpp"
#include "cluster/dist_bicgstab.hpp"
#include "perfmodel/cluster_model.hpp"
#include "stencil/generators.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  const bench::BenchEnv env = bench::bench_env(
      "E7: cluster strong scaling, 370^3 mesh", "Fig. 7",
      "failure to scale beyond 8K cores on the smaller mesh");

  const JouleModel model;
  const Grid3 mesh(370, 370, 370);

  std::printf("%8s %14s %12s %12s %12s %10s\n", "cores", "ms/iteration",
              "compute ms", "halo ms", "allreduce ms", "efficiency");
  std::vector<std::vector<double>> csv_rows;
  double prev = 0.0;
  for (const int cores : {1024, 2048, 4096, 8192, 16384}) {
    const auto t = model.iteration_time(mesh, cores);
    std::printf("%8d %14.2f %12.2f %12.3f %12.3f %10.2f\n", cores,
                t.total() * 1e3, t.compute_s * 1e3, t.halo_s * 1e3,
                t.allreduce_s * 1e3, model.efficiency(mesh, cores));
    csv_rows.push_back({static_cast<double>(cores), t.total() * 1e3,
                        t.compute_s * 1e3, t.halo_s * 1e3,
                        t.allreduce_s * 1e3, model.efficiency(mesh, cores)});
    prev = t.total();
  }
  (void)prev;

  bench::write_csv(env, "fig7_cluster370",
                   "cores,ms_per_iter,compute_ms,halo_ms,allreduce_ms,efficiency",
                   csv_rows);

  const double t8k = model.iteration_seconds(mesh, 8192);
  const double t16k = model.iteration_seconds(mesh, 16384);
  bench::row("speedup 8k->16k cores", 1.0, t8k / t16k, "x");
  bench::note("~1.0x: doubling cores stops helping (the Fig. 7 flattening)");

  // Functional validation of the distributed algorithm at small scale.
  std::printf("\nfunctional check (thread-backed runtime, 8 ranks, 48^3):\n");
  const Grid3 small(48, 48, 48);
  auto a = make_convection_diffusion7(small, 1.0, -0.5, 0.5);
  const auto xref = make_smooth_solution(small);
  const auto b = make_rhs(a, xref);
  cluster::World world(8);
  Field3<double> x(small, 0.0);
  SolveControls c;
  c.max_iterations = 100;
  c.tolerance = 1e-9;
  const auto result = cluster::distributed_bicgstab(world, a, b, x, c);
  std::printf("  converged in %d iterations; %llu halo messages, %.1f MB\n",
              result.solve.iterations,
              static_cast<unsigned long long>(result.comm.messages_sent),
              static_cast<double>(result.comm.bytes_sent) / 1e6);
  return 0;
}
