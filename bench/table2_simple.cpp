// E9 — Table II: cycles per meshpoint for the SIMPLE steps outside the
// linear solver. We print the published ranges next to the operation
// census of our own (incompressible, single-phase) assembly, which must
// land within/below the compressible MFIX budget.

#include <cstdio>

#include "bench_util.hpp"
#include "mfix/simple.hpp"
#include "perfmodel/simple_model.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E9: SIMPLE cycle census", "Table II",
      "cycles/meshpoint for matrix formation, excluding the "
      "solver");

  const SimpleCycleTable table;
  std::printf("%-16s %10s %10s %6s %6s %6s %12s\n", "step", "merge", "flop",
              "sqrt", "div", "xport", "total");
  auto print_row = [](const SimpleStepCost& row) {
    std::printf("%-16s %4d-%-5d %4d-%-5d %2d-%-3d %2d-%-3d %2d-%-3d %4d-%d\n",
                row.name, row.merge_lo, row.merge_hi, row.flop_lo, row.flop_hi,
                row.sqrt_lo, row.sqrt_hi, row.div_lo, row.div_hi,
                row.transport_lo, row.transport_hi, row.published_total_lo,
                row.published_total_hi);
  };
  print_row(table.initialization);
  print_row(table.momentum);
  print_row(table.continuity);
  print_row(table.field_update);

  // Our instrumented assembly.
  const mfix::StaggeredGrid g{16, 16, 16, 1.0 / 16.0};
  mfix::SimpleSolver solver(g, mfix::FluidProps{1.0, 0.02},
                            mfix::WallMotion{1.0});
  mfix::FlowState state = mfix::make_cavity_state(g, mfix::WallMotion{1.0});
  const auto stats = solver.iterate(state);
  const auto& c = stats.formation_census;

  std::printf("\nour incompressible assembly census (per meshpoint, all "
              "four systems of one SIMPLE iteration):\n");
  std::printf("  merges %.1f  flops %.1f  sqrt %.1f  div %.1f  transport "
              "%.1f  -> total %.1f\n",
              c.per_point(c.merges), c.per_point(c.flops),
              c.per_point(c.sqrts), c.per_point(c.divides),
              c.per_point(c.transports), c.total_per_point());
  const double paper_lo = 3 * table.momentum.published_total_lo +
                          table.continuity.published_total_lo +
                          table.field_update.published_total_lo;
  const double paper_hi = 3 * table.momentum.published_total_hi +
                          table.continuity.published_total_hi +
                          table.field_update.published_total_hi;
  std::printf("  paper per-SIMPLE-iteration budget: %.0f - %.0f "
              "cycles/point (3x momentum + continuity + update)\n",
              paper_lo, paper_hi);
  bench::note("our single-phase incompressible slice lands below the "
              "compressible MFIX budget, as expected (no energy/species, "
              "no sqrt-bearing friction terms)");
  return 0;
}
