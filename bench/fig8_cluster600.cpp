// E8 — Fig. 8: strong scaling on the 600^3 mesh: 75 ms/iteration at 1024
// cores scaling to ~6 ms at 16K — which is ~214x the CS-1's 28.1 us on a
// mesh with more than twice the points.

#include <cstdio>

#include <vector>

#include "bench_util.hpp"
#include "perfmodel/cluster_model.hpp"
#include "perfmodel/cs1_model.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  const bench::BenchEnv env = bench::bench_env(
      "E8: cluster strong scaling, 600^3 mesh", "Fig. 8, Sec. V-A",
      "75 ms @1024 cores -> ~6 ms @16K; CS-1 is ~214x faster");

  const JouleModel model;
  const Grid3 mesh(600, 600, 600);

  std::printf("%8s %14s %12s %12s %12s %10s\n", "cores", "ms/iteration",
              "compute ms", "halo ms", "allreduce ms", "efficiency");
  std::vector<std::vector<double>> csv_rows;
  for (const int cores : {1024, 2048, 4096, 8192, 16384}) {
    const auto t = model.iteration_time(mesh, cores);
    std::printf("%8d %14.2f %12.2f %12.3f %12.3f %10.2f\n", cores,
                t.total() * 1e3, t.compute_s * 1e3, t.halo_s * 1e3,
                t.allreduce_s * 1e3, model.efficiency(mesh, cores));
    csv_rows.push_back({static_cast<double>(cores), t.total() * 1e3,
                        t.compute_s * 1e3, t.halo_s * 1e3,
                        t.allreduce_s * 1e3, model.efficiency(mesh, cores)});
  }

  bench::write_csv(env, "fig8_cluster600",
                   "cores,ms_per_iter,compute_ms,halo_ms,allreduce_ms,efficiency",
                   csv_rows);

  std::printf("\n");
  bench::row("1024-core iteration", 75.0,
             model.iteration_seconds(mesh, 1024) * 1e3, "ms");
  bench::row("16384-core iteration", 6.0,
             model.iteration_seconds(mesh, 16384) * 1e3, "ms");

  const CS1Model cs1;
  const double cs1_iter = cs1.iteration_seconds(Grid3(600, 595, 1536));
  bench::row("Joule/CS-1 iteration ratio", 214.0,
             model.iteration_seconds(mesh, 16384) / cs1_iter, "x");

  // The intro's framing: HPCG-class kernels reach only 0.5-3.1% of peak on
  // the top supercomputers. Our modeled cluster BiCGStab lands in the same
  // memory-bound regime.
  {
    const double fp64_ops_per_point = 48.0; // 2 matvecs(7x2) + 4 dots + 6 axpys
    const double achieved = fp64_ops_per_point *
                            static_cast<double>(mesh.size()) /
                            model.iteration_seconds(mesh, 1024);
    const double peak = 1024.0 * 32.0 * 2.4e9; // AVX-512 FMA fp64
    bench::row("cluster fraction of peak (1024c)", 0.02, achieved / peak, "");
    bench::note("paper intro: 'the top 20 performing supercomputers achieve "
                "only 0.5% - 3.1% of their peak' on HPCG");
  }

  // Performance per Watt (Section I's efficiency claim): the wafer's
  // mixed-precision GF/W against the cluster's fp64 GF/W.
  {
    const CS1Model cs1w;
    const double wafer = cs1w.flops_per_watt(Grid3(600, 595, 1536)) / 1e9;
    const double joule_gfw = model.flops_per_watt(mesh, 16384) / 1e9;
    bench::row("CS-1 GF/W (mixed, 20 kW)", 0.0, wafer, "GF/W");
    bench::row("Joule GF/W (fp64, 16k cores)", 0.0, joule_gfw, "GF/W");
    bench::note("an order of magnitude apart even before precision "
                "normalization — the Section I per-Watt claim");
  }
  bench::note("the CS-1 mesh (600x595x1536) has >2x the meshpoints of the "
              "600^3 cluster run, as in the paper");
  bench::note("(on the other hand, Joule arithmetic is fp64 — four times "
              "wider, as the paper notes)");
  return 0;
}
