// E2 — Table I: operations per meshpoint per BiCGStab iteration, counted
// from an instrumented run of the actual solver (not hand-derived): two
// matvecs (12+12), four dots (4+4), six AXPYs (6+6), 44 ops total; in the
// mixed mode 40 ops are fp16 and the 4 dot-accumulates are fp32.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "perfmodel/cs1_model.hpp"
#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

int main() {
  using namespace wss;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E2: BiCGStab operation census", "Table I",
      "44 ops/meshpoint/iteration; mixed mode: 40 hp + 4 sp");

  const Grid3 g(12, 12, 16);
  auto a = make_random_dominant7(g, 0.4, 5);
  Field3<double> b0(g, 1.0);
  auto bp = precondition_jacobi(a, b0);
  auto ah = convert_stencil<fp16_t>(a);
  const auto bh = convert_field<fp16_t>(bp);
  Stencil7Operator<fp16_t> op(ah);

  const int iters = 10;
  std::vector<fp16_t> x(g.size(), fp16_t(0.0));
  std::vector<fp16_t> bvec(bh.begin(), bh.end());
  SolveControls c;
  c.max_iterations = iters;
  c.tolerance = 0.0;
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bvec), std::span<fp16_t>(x), c);

  const double n = static_cast<double>(g.size());
  // Setup (initial residual + ||b|| dot + initial (r0, r) dot) measured
  // separately: 8 hp_mul, 7 hp_add, 2 sp_add per point.
  const double hp_mul =
      (static_cast<double>(result.flops.hp_mul) - 8 * n) / (n * iters);
  const double hp_add =
      (static_cast<double>(result.flops.hp_add) - 7 * n) / (n * iters);
  const double sp_add =
      (static_cast<double>(result.flops.sp_add) - 2 * n) / (n * iters);

  std::printf("%-22s %8s %8s %8s\n", "operation class", "paper", "ours", "");
  std::printf("%-22s %8d %8.1f\n", "hp multiplies", 22, hp_mul);
  std::printf("%-22s %8d %8.1f\n", "hp adds", 18, hp_add);
  std::printf("%-22s %8d %8.1f\n", "sp adds (dots)", 4, sp_add);
  bench::row("total ops/point/iteration", 44.0, hp_mul + hp_add + sp_add, "");

  const perfmodel::OpsPerPoint table;
  bench::row("Table I matvec ops (x2)", 24.0,
             static_cast<double>(table.matvec_add + table.matvec_mul), "");
  bench::row("Table I dot ops (x4)", 8.0,
             static_cast<double>(table.dot_add + table.dot_mul), "");
  bench::row("Table I axpy ops (x6)", 12.0,
             static_cast<double>(table.axpy_add + table.axpy_mul), "");
  return 0;
}
