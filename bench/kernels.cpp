// Google-benchmark microbenchmarks of the library's kernels: the fp16
// software arithmetic, reference and wafer-order SpMV, AXPY/dot in each
// precision policy, the AllReduce tree, full BiCGStab iterations, and the
// fabric simulator's cycle rate (host seconds per simulated cycle).

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/spmv3d_program.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace {

using namespace wss;

void BM_Fp16RoundTrip(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> values(1024);
  for (auto& v : values) v = rng.uniform(-100.0, 100.0);
  for (auto _ : state) {
    for (const double v : values) {
      benchmark::DoNotOptimize(fp16_t(v).to_double());
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Fp16RoundTrip);

void BM_Fp16Fmac(benchmark::State& state) {
  Rng rng(2);
  std::vector<fp16_t> a(1024), b(1024), c(1024);
  for (int i = 0; i < 1024; ++i) {
    a[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-1.0, 1.0));
    b[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-1.0, 1.0));
    c[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(fmac(a[static_cast<std::size_t>(i)],
                                    b[static_cast<std::size_t>(i)],
                                    c[static_cast<std::size_t>(i)]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Fp16Fmac);

template <typename T>
Stencil7<T> prepared_stencil(Grid3 g) {
  auto ad = make_random_dominant7(g, 0.5, 7);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  return convert_stencil<T>(ad);
}

void BM_SpmvReferenceFp64(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Grid3 g(n, n, n);
  const auto a = prepared_stencil<double>(g);
  Field3<double> v(g, 1.0), u(g);
  for (auto _ : state) {
    spmv7(a, v, u);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_SpmvReferenceFp64)->Arg(16)->Arg(32)->Arg(48);

void BM_SpmvWaferOrderFp16(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Grid3 g(n, n, n);
  const auto a = prepared_stencil<fp16_t>(g);
  Field3<fp16_t> v(g, fp16_t(1.0)), u(g);
  for (auto _ : state) {
    wsekernels::wse_spmv(a, v, u);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_SpmvWaferOrderFp16)->Arg(16)->Arg(32);

void BM_DotMixed(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  Rng rng(5);
  std::vector<fp16_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = fp16_t(rng.uniform(-1.0, 1.0));
    b[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dot<MixedPrecision>(std::span<const fp16_t>(a), std::span<const fp16_t>(b)));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DotMixed);

void BM_AxpyFp16(benchmark::State& state) {
  const std::size_t n = 1 << 16;
  std::vector<fp16_t> x(n, fp16_t(0.5)), y(n, fp16_t(1.0));
  for (auto _ : state) {
    axpy(fp16_t(0.25), std::span<const fp16_t>(x), std::span<fp16_t>(y));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AxpyFp16);

void BM_AllReduceTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> partials(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wsekernels::wse_allreduce_tree(partials, n, n));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_AllReduceTree)->Arg(64)->Arg(256)->Arg(600);

void BM_BicgstabIterationFp64(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Grid3 g(n, n, n);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);
  std::vector<double> bv(b.begin(), b.end());
  SolveControls c;
  c.max_iterations = 5;
  c.tolerance = 0.0;
  for (auto _ : state) {
    std::vector<double> x(g.size(), 0.0);
    benchmark::DoNotOptimize(bicgstab<DoublePrecision>(
        [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
          op(v, y, fc);
        },
        std::span<const double>(bv), std::span<double>(x), c));
  }
  state.SetItemsProcessed(state.iterations() * 5 * static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_BicgstabIterationFp64)->Arg(16)->Arg(32);

void BM_FabricSimulatorCycleRate(benchmark::State& state) {
  // Host cost per simulated tile-cycle of the SpMV program.
  const wse::CS1Params arch;
  const wse::SimParams sim;
  const Grid3 g(6, 6, 64);
  const auto a = prepared_stencil<fp16_t>(g);
  Field3<fp16_t> v(g, fp16_t(1.0));
  wsekernels::SpMV3DSimulation simulation(a, arch, sim);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulation.run(v));
    cycles += simulation.last_run_cycles();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles) * 36); // tile-cycles
}
BENCHMARK(BM_FabricSimulatorCycleRate);

} // namespace
