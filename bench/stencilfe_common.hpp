#pragma once

// Shared harness for the generic stencil front-end benches
// (docs/STENCILFE.md). Each workload bench runs its transition function
// on both execution backends at several thread counts, gates
// bit-equality against the host golden and the reference run in-binary
// (nonzero exit on violation — the sim_throughput pattern), and prints
// the analytic perfmodel projection next to the measured cycles. The
// emitted rows are re-checked by the bench/baselines regression gate in
// CI, so a change that shifts a generation's cycle count or breaks the
// projection turns CI red.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "perfmodel/flow_expectations.hpp"
#include "perfmodel/stencilfe_model.hpp"
#include "stencilfe/executor.hpp"
#include "stencilfe/golden.hpp"
#include "stencilfe/workloads.hpp"
#include "telemetry/global.hpp"
#include "telemetry/netmon.hpp"

namespace wss::bench {

struct StencilFeRun {
  double seconds = 0.0;
  std::uint64_t cycles = 0; ///< last generation's cycles
  std::uint64_t link_transfers = 0; ///< whole-run fabric link flits
  std::vector<fp16_t> state;
};

inline StencilFeRun run_stencilfe(const stencilfe::TransitionFn& fn, int nx,
                                  int ny, const std::vector<fp16_t>& init,
                                  int generations, const wse::CS1Params& arch,
                                  wse::Backend backend, int threads,
                                  telemetry::NetMonitor* netmon = nullptr) {
  wse::SimParams sim;
  sim.sim_threads = threads;
  // Pin the backend and disable the watchdog: these benches compare
  // reference and turbo side by side, so ambient WSS_SIM_BACKEND /
  // WSS_WATCHDOG_CYCLES must not silently re-route (a nonzero watchdog
  // is a turbo demotion trigger).
  sim.backend = backend;
  stencilfe::StencilExecutor ex(fn, nx, ny, arch, sim);
  ex.fabric().set_watchdog(0);
  if (netmon != nullptr) {
    netmon->set_flow_table(ex.flow_table());
    ex.fabric().set_net_monitor(netmon);
  }
  ex.load(init);
  const auto t0 = std::chrono::steady_clock::now();
  ex.step(generations);
  const auto t1 = std::chrono::steady_clock::now();
  if (netmon != nullptr) ex.fabric().set_net_monitor(nullptr);
  StencilFeRun r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.cycles = ex.last_generation_cycles();
  r.state = ex.read_state();
  r.link_transfers = ex.fabric().stats().link_transfers;
  return r;
}

inline bool same_f16_bits(const std::vector<fp16_t>& a,
                          const std::vector<fp16_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits() != b[i].bits()) return false;
  }
  return true;
}

/// One workload section: reference@1 is the anchor; the host golden,
/// reference@8, turbo@1 and turbo@8 must all reproduce its state bits
/// (and the fabric runs its cycle count); the perfmodel projection must
/// equal the measured cycles exactly. Emits the table rows and returns
/// false if any gate failed.
inline bool stencilfe_section(const char* tag,
                              const stencilfe::TransitionFn& fn, int nx,
                              int ny, const std::vector<fp16_t>& init,
                              int generations, const wse::CS1Params& arch) {
  using wse::Backend;
  // The network observatory rides the reference anchor: per-flow word
  // accounting over the whole run, folded into `netflow.<flow>.words`
  // registry counters (the benchhistory regression gate trends them) and
  // held to exact conservation against the fabric's link-transfer count
  // and the analytic per-generation projection.
  telemetry::NetMonitor netmon;
  const StencilFeRun base = run_stencilfe(fn, nx, ny, init, generations, arch,
                                          Backend::Reference, 1, &netmon);
  bool bits_ok = true;
  {
    const telemetry::NetFlowsFile nf = telemetry::build_netflows(
        netmon, tag, /*run_id=*/"", /*cycles_now=*/0, base.link_transfers,
        static_cast<std::uint64_t>(generations),
        perfmodel::stencilfe_flow_expectations(fn, nx, ny),
        telemetry::netflows_topk());
    std::uint64_t flow_words = 0;
    for (const telemetry::NetFlowTotals& f : nf.flows) {
      flow_words += f.words;
      telemetry::global_registry()
          .counter("netflow." + f.flow + ".words")
          .add(f.words);
      if (f.exact && f.expected_words_per_iteration > 0.0) {
        const double expected =
            f.expected_words_per_iteration * static_cast<double>(generations);
        if (static_cast<double>(f.words) != expected) {
          bits_ok = false;
          std::printf("  MISMATCH: %s flow %s moved %llu words, projection "
                      "says %.0f\n",
                      tag, f.flow.c_str(),
                      static_cast<unsigned long long>(f.words), expected);
        }
      }
    }
    if (flow_words != base.link_transfers) {
      bits_ok = false;
      std::printf("  MISMATCH: %s flow words %llu != link transfers %llu\n",
                  tag, static_cast<unsigned long long>(flow_words),
                  static_cast<unsigned long long>(base.link_transfers));
    }
    char label[96];
    std::snprintf(label, sizeof label, "netflow words conserved (%s)", tag);
    row(label, 0.0, flow_words == base.link_transfers ? 1.0 : 0.0, "bool");
  }
  if (!same_f16_bits(base.state,
                     stencilfe::golden_run(fn, nx, ny, init, generations))) {
    bits_ok = false;
    std::printf("  MISMATCH: %s reference diverged from host golden\n", tag);
  }
  struct Variant {
    Backend backend;
    int threads;
    const char* name;
  };
  for (const Variant v : {Variant{Backend::Reference, 8, "reference@8"},
                          Variant{Backend::Turbo, 1, "turbo@1"},
                          Variant{Backend::Turbo, 8, "turbo@8"}}) {
    const StencilFeRun r = run_stencilfe(fn, nx, ny, init, generations, arch,
                                         v.backend, v.threads);
    if (!same_f16_bits(r.state, base.state) || r.cycles != base.cycles) {
      bits_ok = false;
      std::printf("  MISMATCH: %s %s diverged from reference@1\n", tag,
                  v.name);
    }
  }
  const perfmodel::StencilFeProjection projection =
      perfmodel::project_stencilfe_generation(fn, nx, ny);
  const bool projection_exact =
      static_cast<std::uint64_t>(projection.total()) == base.cycles;
  if (!projection_exact) {
    std::printf("  MISMATCH: %s projection %.0f != measured %llu cycles\n",
                tag, projection.total(),
                static_cast<unsigned long long>(base.cycles));
  }
  std::printf("%-14s %3dx%-3d gen %2d  measured %6llu cyc/gen  projected "
              "%6.0f (exchange %.0f + compute %.0f)  %8.4f s host\n",
              tag, nx, ny, generations,
              static_cast<unsigned long long>(base.cycles),
              projection.total(), projection.exchange_cycles,
              projection.compute_cycles, base.seconds);
  char label[96];
  std::snprintf(label, sizeof label, "cycles/generation (%s)", tag);
  row(label, 0.0, static_cast<double>(base.cycles), "cycles");
  std::snprintf(label, sizeof label, "projected cycles/generation (%s)", tag);
  row(label, 0.0, projection.total(), "cycles");
  std::snprintf(label, sizeof label, "projection exact (%s)", tag);
  row(label, 0.0, projection_exact ? 1.0 : 0.0, "bool");
  std::snprintf(label, sizeof label, "bit-exact backends+threads (%s)", tag);
  row(label, 0.0, bits_ok ? 1.0 : 0.0, "bool");
  return bits_ok && projection_exact;
}

} // namespace wss::bench
