// Heat/hotspot diffusion through the generic stencil front-end
// (docs/STENCILFE.md): u' = (1-4a)*u + a*(n+s+w+e), the classic hotspot
// kernel and the first of the three non-paper workloads. Two boundary
// policies run side by side — Dirichlet-zero (the paper's halo closure)
// and Periodic (exercising the wrap lanes the route compiler adds) — so
// the wrap-lane cycle cost is visible as the gap between the two
// measured generation times, and the analytic perfmodel projection is
// gated against both.
//
// Machine-readable output: with WSS_JSON_OUT=<dir> the rows land in
// bench_stencilfe_heat.json; bench/baselines/bench_stencilfe_heat.json
// re-checks the cycle counts and the bool gates in CI.

#include <cstdio>

#include "stencilfe_common.hpp"

int main() {
  using namespace wss;
  using namespace wss::stencilfe;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "W1: heat/hotspot diffusion (generic stencil front-end)",
      "non-paper workload, docs/STENCILFE.md",
      "compiled heat transition is bit-identical to the host golden on "
      "both backends at 1/8 threads; the perfmodel projection equals the "
      "measured cycles exactly",
      /*simulated=*/true);

  const wse::CS1Params arch;
  const int nx = 24;
  const int ny = 16;
  const int generations = 8;

  const TransitionFn dirichlet = heat_fn();
  const TransitionFn periodic =
      heat_fn(/*alpha=*/0.125, BoundaryPolicy::Periodic);
  const std::vector<fp16_t> init = random_state(dirichlet, nx, ny, 2026);

  bool ok = true;
  ok &= bench::stencilfe_section("heat-dirichlet", dirichlet, nx, ny, init,
                                 generations, arch);
  ok &= bench::stencilfe_section("heat-periodic", periodic, nx, ny, init,
                                 generations, arch);

  bench::note(ok ? "heat transition reproduced the host golden bit for bit "
                   "on both backends; projection matched measurement exactly"
                 : "GATE FAILURE: heat workload diverged (see MISMATCH lines)");
  bench::note("the periodic-vs-dirichlet cycle gap is the wrap-lane "
              "latency the projection models as max(0,nx-3)+max(0,ny-3)");
  return ok ? 0 : 1;
}
