// 2D wave propagation (FDTD-style leapfrog) through the generic stencil
// front-end (docs/STENCILFE.md): two fields per cell (u, u_prev),
//   u'      = (2-4c2)*u + c2*(n+s+w+e) - u_prev
//   u_prev' = u
// with reflective boundaries. This is the two-field workload: the halo
// exchange ships both fields per neighbor, so the measured generation
// time exposes the per-extra-field exchange cost the perfmodel carries
// as its 4*(F-1) term.
//
// Machine-readable output: with WSS_JSON_OUT=<dir> the rows land in
// bench_stencilfe_wave.json; bench/baselines/bench_stencilfe_wave.json
// re-checks the cycle counts and the bool gates in CI.

#include <cstdio>

#include "stencilfe_common.hpp"

int main() {
  using namespace wss;
  using namespace wss::stencilfe;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "W2: 2D wave propagation, two-field leapfrog (generic stencil "
      "front-end)",
      "non-paper workload, docs/STENCILFE.md",
      "compiled two-field wave transition is bit-identical to the host "
      "golden on both backends at 1/8 threads; the perfmodel projection "
      "equals the measured cycles exactly",
      /*simulated=*/true);

  const wse::CS1Params arch;
  const int nx = 20;
  const int ny = 12;
  const int generations = 6;

  const TransitionFn fn = wave_fn();
  const std::vector<fp16_t> init = random_state(fn, nx, ny, 2027);

  const bool ok =
      bench::stencilfe_section("wave-reflective", fn, nx, ny, init,
                               generations, arch);

  bench::note(ok ? "wave transition reproduced the host golden bit for bit "
                   "on both backends; projection matched measurement exactly"
                 : "GATE FAILURE: wave workload diverged (see MISMATCH lines)");
  bench::note("two fields per cell: the exchange stage ships 4*(F-1) extra "
              "cycles over the single-field workloads (docs/STENCILFE.md)");
  return ok ? 0 : 1;
}
