// E13 — Section V-A synthesis: where does the wafer win, by how much, and
// where do the machines cross over? Sweeps mesh size: the CS-1 advantage
// is largest for meshes that fit on-wafer; the cluster catches up only by
// throwing cores at meshes too large for the wafer's 18 GB.

#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/cluster_model.hpp"
#include "perfmodel/cs1_model.hpp"
#include "perfmodel/multiwafer.hpp"
#include "wsekernels/memory_model.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "E13: CS-1 vs cluster crossover", "Section V-A",
      "~214x at the paper's configurations; the advantage holds "
      "wherever the problem fits on-wafer");

  const CS1Model cs1;
  const JouleModel joule;

  std::printf("%-16s %14s %16s %16s %10s %8s\n", "mesh", "CS-1 us/iter",
              "Joule@4k ms", "Joule@16k ms", "ratio@16k", "fits");
  for (const auto& [x, y, z] :
       {std::tuple{128, 128, 128}, std::tuple{256, 256, 256},
        std::tuple{370, 370, 370}, std::tuple{512, 512, 512},
        std::tuple{600, 595, 1536}, std::tuple{600, 600, 2400},
        std::tuple{602, 595, 4000}}) {
    const Grid3 mesh(x, y, z);
    const auto fit = wsekernels::check_mesh_fit(mesh, cs1.arch());
    const double t_cs1 = cs1.iteration_seconds(mesh);
    const double t_j4 = joule.iteration_seconds(mesh, 4096);
    const double t_j16 = joule.iteration_seconds(mesh, 16384);
    char label[32];
    std::snprintf(label, sizeof label, "%dx%dx%d", x, y, z);
    std::printf("%-16s %14.2f %16.2f %16.2f %10.0f %8s\n", label,
                t_cs1 * 1e6, t_j4 * 1e3, t_j16 * 1e3, t_j16 / t_cs1,
                fit.fits() ? "yes" : "NO");
  }
  bench::note("meshes marked NO exceed the wafer (fabric extent or the "
              "48 KB/tile working set) — the Section VIII memory-capacity "
              "limit; the time shown is the model's hypothetical");

  std::printf("\ncluster cores needed to match one CS-1 on 600x595x1536:\n");
  const Grid3 headline(600, 595, 1536);
  const double target = cs1.iteration_seconds(headline);
  for (const int cores : {16384, 65536, 262144, 1048576}) {
    const double t = joule.iteration_seconds(headline, cores);
    std::printf("  %8d cores: %10.3f ms/iter (%6.0fx the CS-1 time)\n",
                cores, t * 1e3, t / target);
  }
  bench::note("even unbounded strong scaling cannot reach 28.1 us: the "
              "collective latency floor alone exceeds it (the paper's "
              "'little more performance can be gained' point)");

  // Section VIII-B: the capacity wall recedes with technology shrinks.
  std::printf("\ntechnology roadmap (Section VIII-B):\n");
  std::printf("%-14s %12s %18s\n", "node", "wafer SRAM", "max meshpoints");
  for (const auto& node : wsekernels::technology_roadmap()) {
    std::printf("%-14s %9.0f GB %18.2e\n", node.name, node.wafer_sram_gb,
                static_cast<double>(node.max_points(cs1.arch())));
  }
  bench::note("'40 GB of SRAM ... at 7 nm and further increases (to 50 GB "
              "at 5 nm) will follow'");

  // Section VIII-B's other direction: clustering several wafers.
  std::printf("\nmulti-wafer clustering (Z split across wafers; 150 GB/s "
              "links):\n");
  std::printf("%8s %12s %16s %16s\n", "wafers", "max Z", "weak us/iter",
              "strong us/iter");
  for (const int n : {1, 2, 4, 8, 16}) {
    MultiWaferParams mp;
    mp.wafers = n;
    const MultiWaferModel mw{cs1, mp};
    const double weak =
        mw.iteration_time(Grid3(600, 595, 1536 * n)).total() * 1e6;
    const double strong =
        mw.iteration_time(Grid3(600, 595, 1536)).total() * 1e6;
    std::printf("%8d %12d %16.2f %16.2f\n", n, mw.max_total_z(), weak,
                strong);
  }
  bench::note("weak scaling stays near-flat (capacity grows ~linearly); "
              "strong scaling saturates at the AllReduce floor");
  return 0;
}
