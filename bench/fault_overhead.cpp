// Fault-injection overhead: the docs/ROBUSTNESS.md promise is that with
// no FaultPlan attached the fault hooks cost a single null-pointer test
// per phase band — i.e. simulator throughput is unchanged — and that an
// attached plan perturbs only the faulted links. This bench measures the
// Listing-1 SpMV program on a fabric slab in three configurations:
//
//   1. detached       — no plan (the PR-2 baseline path),
//   2. attached-empty — a FaultPlan with no faults,
//   3. active         — identity-mask (corrupt_mask = 0) corruption on
//                       every eastbound link, p = 0.5: the full roll +
//                       logging machinery runs, payloads are unchanged,
//   4. stalled-router — router (6,6) forwards nothing for a window twice
//                       the healthy run length: wavelets queue upstream
//                       (backpressure, nothing lost) and the links
//                       feeding the tile saturate. The Listing-1 adds
//                       fold into u in arrival order, so the delayed
//                       schedule may round differently — the gate here
//                       is determinism (two stalled runs bit-identical),
//                       not equality with the healthy run. With
//                       WSS_NETFLOWS=1 + WSS_SAMPLE_CYCLES set this run
//                       is the network-observatory fault acceptance: the
//                       health engine must raise a link_congestion alert
//                       naming the choked link (docs/NETWORK.md,
//                       .github/workflows/ci.yml).
//
// Before any timing is reported, the result vectors of the first three
// configurations are compared bit for bit (identity corruption must not
// change the answer) and the stalled run is replayed for determinism; a
// mismatch is a hard failure (exit 1). A wrong fast simulator is
// worthless.
//
// Machine-readable output: WSS_JSON_OUT=<dir> drops the rows below in
// bench_fault_overhead.json; CI archives them.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

struct Case {
  wss::Stencil7<wss::fp16_t> a;
  wss::Field3<wss::fp16_t> v;
};

Case make_case(wss::Grid3 g, std::uint64_t seed) {
  auto ad = wss::make_random_dominant7(g, 0.5, seed);
  wss::Field3<double> b(g, 1.0);
  (void)wss::precondition_jacobi(ad, b);
  Case c{wss::convert_stencil<wss::fp16_t>(ad), wss::Field3<wss::fp16_t>(g)};
  wss::Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = wss::fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

struct Measured {
  double best_seconds = 1e30;
  std::uint64_t cycles = 0; ///< last rep's fabric cycles
  wss::Field3<wss::fp16_t> u;
  wss::wse::FaultStats stats;
};

Measured run_config(const Case& c, const wss::wse::CS1Params& arch,
                    const wss::wse::FaultPlan* plan, int reps) {
  wss::wse::SimParams sim;
  sim.sim_threads = wss::bench::sim_threads();
  wss::wsekernels::SpMV3DSimulation s(c.a, arch, sim);
  if (plan != nullptr) s.fabric().set_fault_plan(plan);
  Measured m;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    m.u = s.run(c.v);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    if (dt < m.best_seconds) m.best_seconds = dt;
  }
  m.stats = s.fabric().fault_stats();
  m.cycles = s.last_run_cycles();
  return m;
}

bool bits_equal(const wss::Field3<wss::fp16_t>& a,
                const wss::Field3<wss::fp16_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits() != b[i].bits()) return false;
  }
  return true;
}

} // namespace

int main() {
  using namespace wss;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "Fault-injection overhead", "docs/ROBUSTNESS.md",
      "no plan attached => fault hooks are free; identity-mask "
      "injection leaves results bit-identical",
      /*simulated=*/true);

  const Grid3 g(12, 12, 24);
  const wse::CS1Params arch;
  const Case c = make_case(g, 2026);
  const int reps = 5;

  const Measured detached = run_config(c, arch, nullptr, reps);

  wse::FaultPlan empty;
  const Measured attached_empty = run_config(c, arch, &empty, reps);

  wse::FaultPlan active;
  active.seed = 7;
  for (int y = 0; y < g.ny; ++y) {
    for (int x = 0; x < g.nx; ++x) {
      active.link_faults.push_back({.x = x,
                                    .y = y,
                                    .dir = wse::Dir::East,
                                    .kind = wse::FaultKind::CorruptWavelet,
                                    .probability = 0.5,
                                    .corrupt_mask = 0x0000u});
    }
  }
  const Measured with_faults = run_config(c, arch, &active, reps);

  // Stalled-router scenario: choke the router at (6,6) for twice the
  // healthy run length. A single rep keeps the stall window in absolute
  // fabric cycles aligned with the one run the forensics observe.
  wse::FaultPlan stalled;
  stalled.router_stalls.push_back(
      {.x = 6, .y = 6, .from_cycle = 0, .until_cycle = 2 * detached.cycles});
  const Measured with_stall = run_config(c, arch, &stalled, 1);
  const Measured with_stall_replay = run_config(c, arch, &stalled, 1);

  // Correctness gate before any timing is believed.
  if (!bits_equal(detached.u, attached_empty.u) ||
      !bits_equal(detached.u, with_faults.u)) {
    std::printf("FAIL: results differ across fault configurations\n");
    return 1;
  }
  // Backpressure loses nothing but does reorder the arrival-order fp16
  // folds, so the stalled gate is replay determinism, not equality.
  if (!bits_equal(with_stall.u, with_stall_replay.u) ||
      with_stall.cycles != with_stall_replay.cycles) {
    std::printf("FAIL: stalled-router run is not deterministic\n");
    return 1;
  }
  if (with_stall.stats.router_stall_cycles == 0) {
    std::printf("FAIL: stalled-router plan stalled nothing\n");
    return 1;
  }
  if (attached_empty.stats.total() != 0) {
    std::printf("FAIL: attached empty plan injected faults\n");
    return 1;
  }
  if (with_faults.stats.wavelets_corrupted == 0) {
    std::printf("FAIL: active plan injected nothing\n");
    return 1;
  }
  bench::note("bit-equality gate passed: detached == attached-empty == "
              "identity-mask-active");

  const double base = detached.best_seconds;
  bench::row("SpMV wall time, detached", 0.0, base * 1e3, "ms");
  bench::row("SpMV wall time, attached empty", 0.0,
             attached_empty.best_seconds * 1e3, "ms");
  bench::row("SpMV wall time, active plan", 0.0,
             with_faults.best_seconds * 1e3, "ms");
  bench::row("attached-empty overhead", 0.0,
             100.0 * (attached_empty.best_seconds - base) / base, "%");
  bench::row("active-plan overhead", 0.0,
             100.0 * (with_faults.best_seconds - base) / base, "%");
  bench::row("injections (active plan run)", 0.0,
             static_cast<double>(with_faults.stats.wavelets_corrupted), "");
  bench::row("stalled-router run cycles", 0.0,
             static_cast<double>(with_stall.cycles), "cycles");
  bench::row("stalled-router slowdown", 0.0,
             static_cast<double>(with_stall.cycles) /
                 static_cast<double>(detached.cycles),
             "x");
  bench::row("router stall tile-cycles", 0.0,
             static_cast<double>(with_stall.stats.router_stall_cycles),
             "cycles");
  bench::note("overhead rows are best-of-5 wall times; the contract "
              "'detached == free' is structural (a null-pointer test per "
              "phase band), the timing row is the evidence");
  return 0;
}
