// Fault-injection overhead: the docs/ROBUSTNESS.md promise is that with
// no FaultPlan attached the fault hooks cost a single null-pointer test
// per phase band — i.e. simulator throughput is unchanged — and that an
// attached plan perturbs only the faulted links. This bench measures the
// Listing-1 SpMV program on a fabric slab in three configurations:
//
//   1. detached       — no plan (the PR-2 baseline path),
//   2. attached-empty — a FaultPlan with no faults,
//   3. active         — identity-mask (corrupt_mask = 0) corruption on
//                       every eastbound link, p = 0.5: the full roll +
//                       logging machinery runs, payloads are unchanged.
//
// Before any timing is reported, the result vectors of all three
// configurations are compared bit for bit (identity corruption must not
// change the answer); a mismatch is a hard failure (exit 1). A wrong
// fast simulator is worthless.
//
// Machine-readable output: WSS_JSON_OUT=<dir> drops the rows below in
// bench_fault_overhead.json; CI archives them.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

struct Case {
  wss::Stencil7<wss::fp16_t> a;
  wss::Field3<wss::fp16_t> v;
};

Case make_case(wss::Grid3 g, std::uint64_t seed) {
  auto ad = wss::make_random_dominant7(g, 0.5, seed);
  wss::Field3<double> b(g, 1.0);
  (void)wss::precondition_jacobi(ad, b);
  Case c{wss::convert_stencil<wss::fp16_t>(ad), wss::Field3<wss::fp16_t>(g)};
  wss::Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = wss::fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

struct Measured {
  double best_seconds = 1e30;
  wss::Field3<wss::fp16_t> u;
  wss::wse::FaultStats stats;
};

Measured run_config(const Case& c, const wss::wse::CS1Params& arch,
                    const wss::wse::FaultPlan* plan, int reps) {
  wss::wse::SimParams sim;
  sim.sim_threads = wss::bench::sim_threads();
  wss::wsekernels::SpMV3DSimulation s(c.a, arch, sim);
  if (plan != nullptr) s.fabric().set_fault_plan(plan);
  Measured m;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    m.u = s.run(c.v);
    const auto t1 = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(t1 - t0).count();
    if (dt < m.best_seconds) m.best_seconds = dt;
  }
  m.stats = s.fabric().fault_stats();
  return m;
}

bool bits_equal(const wss::Field3<wss::fp16_t>& a,
                const wss::Field3<wss::fp16_t>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits() != b[i].bits()) return false;
  }
  return true;
}

} // namespace

int main() {
  using namespace wss;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "Fault-injection overhead", "docs/ROBUSTNESS.md",
      "no plan attached => fault hooks are free; identity-mask "
      "injection leaves results bit-identical",
      /*simulated=*/true);

  const Grid3 g(12, 12, 24);
  const wse::CS1Params arch;
  const Case c = make_case(g, 2026);
  const int reps = 5;

  const Measured detached = run_config(c, arch, nullptr, reps);

  wse::FaultPlan empty;
  const Measured attached_empty = run_config(c, arch, &empty, reps);

  wse::FaultPlan active;
  active.seed = 7;
  for (int y = 0; y < g.ny; ++y) {
    for (int x = 0; x < g.nx; ++x) {
      active.link_faults.push_back({.x = x,
                                    .y = y,
                                    .dir = wse::Dir::East,
                                    .kind = wse::FaultKind::CorruptWavelet,
                                    .probability = 0.5,
                                    .corrupt_mask = 0x0000u});
    }
  }
  const Measured with_faults = run_config(c, arch, &active, reps);

  // Correctness gate before any timing is believed.
  if (!bits_equal(detached.u, attached_empty.u) ||
      !bits_equal(detached.u, with_faults.u)) {
    std::printf("FAIL: results differ across fault configurations\n");
    return 1;
  }
  if (attached_empty.stats.total() != 0) {
    std::printf("FAIL: attached empty plan injected faults\n");
    return 1;
  }
  if (with_faults.stats.wavelets_corrupted == 0) {
    std::printf("FAIL: active plan injected nothing\n");
    return 1;
  }
  bench::note("bit-equality gate passed: detached == attached-empty == "
              "identity-mask-active");

  const double base = detached.best_seconds;
  bench::row("SpMV wall time, detached", 0.0, base * 1e3, "ms");
  bench::row("SpMV wall time, attached empty", 0.0,
             attached_empty.best_seconds * 1e3, "ms");
  bench::row("SpMV wall time, active plan", 0.0,
             with_faults.best_seconds * 1e3, "ms");
  bench::row("attached-empty overhead", 0.0,
             100.0 * (attached_empty.best_seconds - base) / base, "%");
  bench::row("active-plan overhead", 0.0,
             100.0 * (with_faults.best_seconds - base) / base, "%");
  bench::row("injections (active plan run)", 0.0,
             static_cast<double>(with_faults.stats.wavelets_corrupted), "");
  bench::note("overhead rows are best-of-5 wall times; the contract "
              "'detached == free' is structural (a null-pointer test per "
              "phase band), the timing row is the evidence");
  return 0;
}
