// E6 — Section V headline: BiCGStab on a 600 x 595 x 1536 mesh at mixed
// precision. The paper measures 28.1 us per iteration (std-dev ~0.2%),
// 44 ops/meshpoint -> 0.86 PFLOPS, about one third of peak. We reproduce
// this with the cycle-validated performance model, cross-checked against
// the fabric simulator at small scale, and sweep mesh shape.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "perfmodel/cs1_model.hpp"
#include "perfmodel/flow_expectations.hpp"
#include "perfmodel/perf_report.hpp"
#include "stencil/generators.hpp"
#include "telemetry/global.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/profiler.hpp"
#include "wse/flow_table.hpp"
#include "wse/trace.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/memory_model.hpp"
#include "wsekernels/wse_bicgstab.hpp"

int main() {
  using namespace wss;
  using namespace wss::perfmodel;

  const bench::BenchEnv env = bench::bench_env(
      "E6: CS-1 BiCGStab headline", "Section V",
      "28.1 us/iteration on 600x595x1536 -> 0.86 PFLOPS (~1/3 of "
      "peak)",
      /*simulated=*/true);

  // WSS_TRACE_JSON=<file> records the phases of this bench (and, below,
  // the fabric simulator's task stream) as a Perfetto-loadable trace.
  telemetry::SpanTracer& spans = *env.spans;

  const CS1Model model;
  const Grid3 mesh(600, 595, 1536);

  {
    auto span = spans.scope("model_tables", "bench");
    const auto fit = wsekernels::check_mesh_fit(mesh, model.arch());
    bench::row("meshpoints", 548352000.0,
               static_cast<double>(fit.total_points), "");
    bench::row("tile memory used", 31.0,
               static_cast<double>(fit.tile_bytes_used) / 1024.0, "KB");

    bench::row("iteration time", 28.1, model.iteration_seconds(mesh) * 1e6,
               "us");
    bench::row("achieved", 0.86, model.achieved_flops(mesh) / 1e15, "PFLOPS");
    bench::row("fraction of fp16 peak", 0.333, model.peak_fraction(mesh), "");
    bench::row("ops per meshpoint per iter", 44.0,
               static_cast<double>(OpsPerPoint{}.total()), "");
    bench::row("performance per Watt (20 kW)", 0.0,
               model.flops_per_watt(mesh) / 1e9, "GF/W");
  }

  std::printf("\nper-iteration cycle budget (model, per core):\n");
  std::printf("  2 x SpMV        : %8.0f cycles\n",
              2.0 * model.spmv_cycles(mesh.nz));
  std::printf("  4 x local dot   : %8.0f cycles\n",
              4.0 * model.dot_local_cycles(mesh.nz));
  std::printf("  6 x AXPY        : %8.0f cycles\n",
              6.0 * model.axpy_cycles(mesh.nz));
  std::printf("  4 x AllReduce   : %8.0f cycles\n",
              4.0 * model.allreduce_cycles(mesh.nx, mesh.ny));
  std::printf("  total           : %8.0f cycles @ %.3f GHz\n",
              model.iteration_cycles(mesh), model.arch().clock_hz / 1e9);

  std::printf("\nmesh shape sweep (fixed 600x595 fabric):\n");
  std::printf("%8s %14s %12s %12s\n", "Z", "us/iteration", "PFLOPS",
              "peak frac");
  {
    auto span = spans.scope("mesh_sweep", "bench");
    for (const int z : {256, 512, 1024, 1536, 2048, 2447}) {
      const Grid3 m(600, 595, z);
      std::printf("%8d %14.2f %12.3f %12.3f\n", z,
                  model.iteration_seconds(m) * 1e6,
                  model.achieved_flops(m) / 1e15, model.peak_fraction(m));
    }
  }

  std::printf("\nfp32 mode comparison (same mesh):\n");
  bench::row("fp32 iteration time", 0.0,
             model.iteration_seconds(mesh, Mode::Fp32) * 1e6, "us");
  bench::note("Z=2447 is the deepest pencil that fits 48 KB (10 Z words)");

  // End-to-end validation: full BiCGStab iterations executed on the
  // cycle-level fabric simulator vs the model's per-iteration budget.
  std::printf("\nmodel validation: full iterations on the fabric simulator "
              "(6x6 fabric):\n");
  std::printf("%8s %18s %14s %8s\n", "Z", "measured cyc/iter", "model",
              "ratio");
  const wse::SimParams sim;
  // The cycle-attribution profiler rides along on the Z=64 run: every
  // tile-cycle lands in a (phase, category) bin, and the perf report
  // below joins the measurement against the Section V model.
  telemetry::Profiler profiler(6, 6);
  constexpr int kProfiledZ = 64;
  constexpr int kIterations = 3;
  // With WSS_TRACE_JSON set, record the smallest run's per-tile task
  // stream and merge it (cycles -> us at the CS-1 clock) into the trace.
  std::string netflows_render;
  for (const int z : {32, 64, 128, 256}) {
    auto span = spans.scope("simulate_z" + std::to_string(z), "bench");
    const Grid3 g(6, 6, z);
    auto ad = make_momentum_like7(g, 0.5, 7);
    auto bd = make_rhs(ad, make_smooth_solution(g));
    const auto bp = precondition_jacobi(ad, bd);
    const auto a16 = convert_stencil<fp16_t>(ad);
    const auto b16 = convert_field<fp16_t>(bp);
    wsekernels::BicgstabSimulation simulation(a16, kIterations, model.arch(),
                                              sim);
    if (z == 32 && env.trace) {
      wse::Tracer& fabric_trace = telemetry::exit_scoped_fabric_tracer(
          1 << 20, model.arch().clock_hz, "cs1-sim");
      simulation.fabric().set_tracer(&fabric_trace);
    }
    if (z == kProfiledZ) simulation.fabric().set_profiler(&profiler);
    // Network observatory on the profiled run: every link word attributed
    // to its logical flow, with conservation held against the fabric's
    // own transfer count and totals folded into `netflow.<flow>.words`
    // registry counters (trended by the benchhistory gate).
    telemetry::NetMonitor netmon;
    if (z == kProfiledZ) {
      netmon.set_flow_table(wse::bicgstab_flow_table());
      simulation.fabric().set_net_monitor(&netmon);
    }
    const auto r = simulation.run(b16);
    simulation.fabric().set_tracer(nullptr);
    simulation.fabric().set_profiler(nullptr);
    if (z == kProfiledZ) {
      simulation.fabric().set_net_monitor(nullptr);
      const telemetry::NetFlowsFile nf = telemetry::build_netflows(
          netmon, "secV_cs1_iteration", /*run_id=*/"",
          simulation.fabric().stats().cycles,
          simulation.fabric().stats().link_transfers,
          static_cast<std::uint64_t>(kIterations),
          perfmodel::bicgstab_flow_expectations(z, g.nx, g.ny),
          telemetry::netflows_topk());
      std::uint64_t flow_words = 0;
      for (const telemetry::NetFlowTotals& f : nf.flows) {
        flow_words += f.words;
        telemetry::global_registry()
            .counter("netflow." + f.flow + ".words")
            .add(f.words);
      }
      if (flow_words != nf.link_transfers) {
        std::printf("  MISMATCH: flow words %llu != link transfers %llu\n",
                    static_cast<unsigned long long>(flow_words),
                    static_cast<unsigned long long>(nf.link_transfers));
      }
      bench::row("netflow words conserved (6x6, Z=64)", 0.0,
                 flow_words == nf.link_transfers ? 1.0 : 0.0, "bool");
      netflows_render = telemetry::pretty_netflows(nf);
    }
    const double measured =
        static_cast<double>(r.cycles) / static_cast<double>(kIterations);
    const double predicted = model.iteration_cycles(g);
    std::printf("%8d %18.1f %14.1f %8.3f\n", z, measured, predicted,
                measured / predicted);
  }
  bench::note("agreement within ~4% validates extrapolating the model to "
              "the full wafer");
  if (!netflows_render.empty()) {
    std::printf("\nper-flow link words (6x6, Z=%d, %d iterations):\n%s",
                kProfiledZ, kIterations, netflows_render.c_str());
  }

  // Where the cycles went: per-phase measured-vs-model deltas and the
  // paper-anchored wafer projection (docs/PROFILING.md).
  {
    const PerfReport report =
        make_perf_report(profiler, kProfiledZ, kIterations, model);
    std::printf("\n%s", report.pretty().c_str());
    bench::row("profiled cycles/iter (6x6, Z=64)", 0.0,
               report.measured_cycles_per_iter, "cyc");
    bench::row("profiled model cycles/iter", 0.0,
               report.model_cycles_per_iter, "cyc");
    bench::row("wafer projection", 28.1, report.wafer_us_per_iter, "us");
    bench::row("wafer projection PFLOPS", 0.86, report.wafer_pflops,
               "PFLOPS");
    std::string prof_path;
    std::string prof_error;
    if (maybe_write_prof_json(profiler, &report, &prof_path, &prof_error)) {
      std::printf("  [profiler: wrote %s]\n", prof_path.c_str());
    } else if (!prof_error.empty()) {
      std::printf("  [profiler: %s]\n", prof_error.c_str());
    }
    // Per-category attribution maps next to the fabric-counter heatmaps.
    if (env.csv_dir != nullptr) {
      const auto cat_maps = telemetry::profiler_heatmaps(profiler);
      std::string error;
      std::string used_prefix;
      if (telemetry::write_heatmap_csvs(cat_maps, env.csv_dir,
                                        "secV_prof_6x6_z64", &error,
                                        &used_prefix)) {
        std::printf("  [profiler heatmaps: wrote %s/%s_*.csv]\n",
                    env.csv_dir, used_prefix.c_str());
      } else {
        std::printf("  [profiler heatmaps: %s]\n", error.c_str());
      }
    }
  }

  // Functional mixed-precision BiCGStab with solver probes attached: the
  // per-phase spans (spmv / dot+allreduce / axpy) and iteration metrics
  // land in the same trace / report as everything above.
  {
    auto span = spans.scope("host_validation_solve", "bench");
    const Grid3 g(6, 6, 64);
    auto ad = make_momentum_like7(g, 0.5, 7);
    auto bd = make_rhs(ad, make_smooth_solution(g));
    const auto bp = precondition_jacobi(ad, bd);
    const auto a16 = convert_stencil<fp16_t>(ad);
    const auto b16 = convert_field<fp16_t>(bp);
    wsekernels::WseBicgstabSolver solver(a16);
    Field3<fp16_t> x(g);
    SolveControls controls;
    controls.max_iterations = 20;
    controls.tolerance = 1e-4;
    controls.metrics = &telemetry::global_registry();
    controls.spans = &spans;
    controls.probe_name = "wse_bicgstab";
    const auto r = solver.solve(b16, x, controls);
    bench::row("validation solve iterations", 0.0,
               static_cast<double>(r.iterations), "");
    bench::row("validation final residual", 0.0, r.final_residual(), "");
  }
  return 0;
}
