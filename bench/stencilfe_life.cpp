// Conway's Game of Life on a torus through the generic stencil front-end
// (docs/STENCILFE.md): eight unit neighbor terms count the live
// neighbors, the LifeV pointwise op applies the birth/survival rule, and
// the periodic boundary exercises the wrap lanes on both axes. This is
// the non-linear workload: the transition is not an affine stencil, so
// it proves the front-end's pointwise-rule hook end to end.
//
// Machine-readable output: with WSS_JSON_OUT=<dir> the rows land in
// bench_stencilfe_life.json; bench/baselines/bench_stencilfe_life.json
// re-checks the cycle counts and the bool gates in CI.

#include <cstdio>

#include "stencilfe_common.hpp"

int main() {
  using namespace wss;
  using namespace wss::stencilfe;

  [[maybe_unused]] const bench::BenchEnv env = bench::bench_env(
      "W3: Conway's Game of Life on a torus (generic stencil front-end)",
      "non-paper workload, docs/STENCILFE.md",
      "compiled life transition is bit-identical to the host golden on "
      "both backends at 1/8 threads; the perfmodel projection equals the "
      "measured cycles exactly",
      /*simulated=*/true);

  const wse::CS1Params arch;
  const int nx = 16;
  const int ny = 16;
  const int generations = 8;

  const TransitionFn fn = life_fn();
  const std::vector<fp16_t> init = random_life_state(nx, ny, 2028);

  const bool ok =
      bench::stencilfe_section("life-torus", fn, nx, ny, init, generations,
                               arch);

  bench::note(ok ? "life transition reproduced the host golden bit for bit "
                   "on both backends; projection matched measurement exactly"
                 : "GATE FAILURE: life workload diverged (see MISMATCH lines)");
  bench::note("periodic on both axes: wrap lanes carry the torus edges, "
              "costing max(0,nx-3)+max(0,ny-3) extra exchange cycles");
  return ok ? 0 : 1;
}
