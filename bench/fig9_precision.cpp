// E11 — Fig. 9: normwise relative residual in mixed (hp multiply / sp
// accumulate) vs 32-bit arithmetic, on a momentum linear system from an
// MFIX-style timestep discretization on a 100 x 400 x 100 mesh. The paper:
// mixed tracks fp32 up to ~iteration 7, then plateaus near 1e-2 (a factor
// ~10 above the ~1e-3 fp16 machine precision, due to roundoff growth).
// We add the two extensions the paper discusses: the all-fp16 ablation
// (plateaus earlier/higher) and iterative refinement (recovers accuracy).
//
// Pass a smaller mesh as argv[1..3] to run quickly, e.g.
//   bench_fig9_precision 40 160 40

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.hpp"
#include "mfix/momentum_system.hpp"
#include "solver/bicgstab.hpp"
#include "solver/refinement.hpp"
#include "solver/stencil_operator.hpp"

namespace {

using namespace wss;

/// Per-iteration true fp64 relative residuals of a solve in policy P.
template <typename P>
std::vector<double> residual_curve(const Stencil7<double>& a_pre,
                                   const Field3<double>& b_pre,
                                   int iterations) {
  using T = typename P::storage_t;
  const auto a = convert_stencil<T>(a_pre);
  const std::vector<T> b =
      convert<T>(std::span<const double>(b_pre.data(), b_pre.size()));
  Stencil7Operator<T> op(a);
  Stencil7Operator<double> op64(a_pre);

  std::vector<double> bv(b_pre.begin(), b_pre.end());
  std::vector<T> x(b.size(), T{});
  std::vector<double> curve;

  IterationObserver<T> observer = [&](int, std::span<const T> xi) {
    std::vector<double> xd(xi.size());
    for (std::size_t i = 0; i < xi.size(); ++i) xd[i] = to_double(xi[i]);
    curve.push_back(true_relative_residual<double>(
        op64, std::span<const double>(bv), std::span<const double>(xd)));
  };

  SolveControls c;
  c.max_iterations = iterations;
  c.tolerance = 0.0;
  (void)bicgstab<P>(
      [&](std::span<const T> v, std::span<T> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const T>(b), std::span<T>(x), c, &observer);
  return curve;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchEnv env = bench::bench_env(
      "E11: mixed-precision residual study", "Fig. 9",
      "mixed sp/hp tracks fp32 until ~iteration 7, then plateaus "
      "near 1e-2");

  int nx = 100, ny = 400, nz = 100;
  double dt = 0.008;
  if (argc >= 4) {
    nx = std::atoi(argv[1]);
    ny = std::atoi(argv[2]);
    nz = std::atoi(argv[3]);
  }
  if (argc >= 5) dt = std::atof(argv[4]);
  std::printf("momentum system on a %d x %d x %d mesh, dt = %g\n", nx, ny,
              nz, dt);

  const mfix::StaggeredGrid g{nx, ny, nz, 0.01};
  auto sys = mfix::make_momentum_system(g, dt, 42);
  Field3<double> b_pre = precondition_jacobi(sys.a, sys.rhs);

  const int iterations = 15;
  const auto single =
      residual_curve<SinglePrecision>(sys.a, b_pre, iterations);
  const auto mixed = residual_curve<MixedPrecision>(sys.a, b_pre, iterations);
  const auto half = residual_curve<HalfPrecision>(sys.a, b_pre, iterations);

  std::printf("\n%6s %16s %16s %16s\n", "iter", "fp32", "mixed hp/sp",
              "all-fp16 (abl.)");
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t i = 0; i < single.size(); ++i) {
    std::printf("%6zu %16.3e %16.3e %16.3e\n", i + 1, single[i],
                i < mixed.size() ? mixed[i] : 0.0,
                i < half.size() ? half[i] : 0.0);
    csv_rows.push_back({static_cast<double>(i + 1), single[i],
                        i < mixed.size() ? mixed[i] : 0.0,
                        i < half.size() ? half[i] : 0.0});
  }
  bench::write_csv(env, "fig9_precision", "iteration,fp32,mixed,half",
                   csv_rows);

  // Plateau metrics.
  const double mixed_floor = *std::min_element(mixed.begin(), mixed.end());
  const double single_floor = *std::min_element(single.begin(), single.end());
  std::printf("\n");
  bench::row("mixed-precision plateau", 1e-2, mixed_floor, "rel.res");
  bench::row("fp32 floor (14 iters)", 3e-4, single_floor, "rel.res");
  bench::note("paper: 'machine precision is about 1e-3 ... growth of "
              "rounding errors ... leading to a plateau at a relative "
              "residual of 1e-2'");

  // Extension: iterative refinement recovers fp64-level accuracy from the
  // same mixed inner solver (Section VI-B's suggested correction scheme).
  {
    const auto a16 = convert_stencil<fp16_t>(sys.a);
    Stencil7Operator<fp16_t> op_lo(a16);
    Stencil7Operator<double> op_hi(sys.a);
    std::vector<double> bv(b_pre.begin(), b_pre.end());
    std::vector<double> x(bv.size(), 0.0);
    SolveControls inner;
    inner.max_iterations = 10;
    inner.tolerance = 1e-3;
    const auto r = iterative_refinement<MixedPrecision>(
        [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
          op_lo(v, y, fc);
        },
        [&](std::span<const double> v, std::span<double> y) {
          op_hi(v, y, nullptr);
        },
        std::span<const double>(bv), std::span<double>(x), 1e-8, 12, inner);
    std::printf("\niterative refinement (mixed inner solver):\n");
    for (std::size_t i = 0; i < r.outer_residuals.size(); ++i) {
      std::printf("  outer %zu: true residual %.3e\n", i, r.outer_residuals[i]);
    }
    std::printf("  -> %s after %d outer rounds (%d inner iterations)\n",
                r.converged ? "recovered 1e-8" : "did not converge",
                r.outer_iterations, r.total_inner_iterations);
  }
  return 0;
}
