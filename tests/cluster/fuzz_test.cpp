// Concurrency fuzz of the message-passing runtime: randomized
// deterministic traffic patterns (all-pairs rings, random tagged sends,
// interleaved collectives) across repeated runs must always deliver and
// never deadlock.

#include <gtest/gtest.h>

#include "cluster/comm.hpp"
#include "common/rng.hpp"

namespace wss::cluster {
namespace {

TEST(CommFuzz, RingAllToAllWithCollectives) {
  for (const int ranks : {2, 3, 5, 8}) {
    World world(ranks);
    world.run([ranks](Comm& comm) {
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 99);
      for (int round = 0; round < 20; ++round) {
        // Ring exchange: send to the right, receive from the left.
        const int right = (comm.rank() + 1) % ranks;
        const int left = (comm.rank() + ranks - 1) % ranks;
        std::vector<double> out(8);
        for (auto& v : out) v = rng.uniform(0.0, 1.0) + comm.rank();
        comm.send(right, round, std::span<const double>(out));
        std::vector<double> in(8);
        comm.recv(left, round, std::span<double>(in));
        for (const double v : in) {
          EXPECT_GE(v, left);
          EXPECT_LT(v, left + 1.0);
        }
        // Interleaved collective keeps everyone in lockstep.
        const double sum = comm.allreduce_sum(1.0);
        EXPECT_EQ(sum, static_cast<double>(ranks));
      }
    });
  }
}

TEST(CommFuzz, OutOfOrderTagsAcrossManyMessages) {
  World world(2);
  world.run([](Comm& comm) {
    const int n = 50;
    if (comm.rank() == 0) {
      // Send tags in one order...
      for (int t = 0; t < n; ++t) {
        const std::vector<double> v = {static_cast<double>(t)};
        comm.send(1, t, std::span<const double>(v));
      }
    } else {
      // ...receive them in reverse.
      std::vector<double> buf(1);
      for (int t = n - 1; t >= 0; --t) {
        comm.recv(0, t, std::span<double>(buf));
        EXPECT_EQ(buf[0], static_cast<double>(t));
      }
    }
  });
}

TEST(CommFuzz, ManyRanksManyBarriers) {
  World world(12);
  world.run([](Comm& comm) {
    for (int i = 0; i < 30; ++i) {
      comm.barrier();
      const double v = comm.allreduce_sum(static_cast<double>(comm.rank()));
      EXPECT_EQ(v, 66.0); // 0+..+11
    }
  });
}

TEST(CommFuzz, RepeatedWorldRunsAreIndependent) {
  World world(4);
  for (int run = 0; run < 5; ++run) {
    world.run([run](Comm& comm) {
      const double v = comm.allreduce_sum(static_cast<double>(run));
      EXPECT_EQ(v, 4.0 * run);
    });
    EXPECT_EQ(world.total_stats().allreduces, 4u);
  }
}

} // namespace
} // namespace wss::cluster
