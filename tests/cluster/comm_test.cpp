#include "cluster/comm.hpp"

#include <gtest/gtest.h>

namespace wss::cluster {
namespace {

TEST(Comm, SendRecvPair) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> data = {1.0, 2.0, 3.0};
      comm.send(1, 7, std::span<const double>(data));
    } else {
      std::vector<double> data(3);
      comm.recv(0, 7, std::span<double>(data));
      EXPECT_EQ(data[0], 1.0);
      EXPECT_EQ(data[1], 2.0);
      EXPECT_EQ(data[2], 3.0);
    }
  });
}

TEST(Comm, TagMatching) {
  // Messages with different tags are matched by tag, not arrival order.
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> a = {10.0};
      const std::vector<double> b = {20.0};
      comm.send(1, 1, std::span<const double>(a));
      comm.send(1, 2, std::span<const double>(b));
    } else {
      std::vector<double> buf(1);
      comm.recv(0, 2, std::span<double>(buf));
      EXPECT_EQ(buf[0], 20.0);
      comm.recv(0, 1, std::span<double>(buf));
      EXPECT_EQ(buf[0], 10.0);
    }
  });
}

TEST(Comm, FifoOrderWithinTag) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::vector<double> v = {static_cast<double>(i)};
        comm.send(1, 0, std::span<const double>(v));
      }
    } else {
      std::vector<double> buf(1);
      for (int i = 0; i < 10; ++i) {
        comm.recv(0, 0, std::span<double>(buf));
        EXPECT_EQ(buf[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Comm, AllReduceSum) {
  for (const int n : {1, 2, 3, 8}) {
    World world(n);
    world.run([n](Comm& comm) {
      const double mine = static_cast<double>(comm.rank() + 1);
      const double total = comm.allreduce_sum(mine);
      EXPECT_EQ(total, n * (n + 1) / 2.0);
    });
  }
}

TEST(Comm, RepeatedAllReducesStayInSync) {
  World world(4);
  world.run([](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const double total =
          comm.allreduce_sum(static_cast<double>(comm.rank() + round));
      EXPECT_EQ(total, 6.0 + 4.0 * round);
    }
  });
}

TEST(Comm, StatsCountTraffic) {
  World world(2);
  world.run([](Comm& comm) {
    const std::vector<double> v(16, 1.0);
    if (comm.rank() == 0) {
      comm.send(1, 0, std::span<const double>(v));
    } else {
      std::vector<double> buf(16);
      comm.recv(0, 0, std::span<double>(buf));
    }
    (void)comm.allreduce_sum(1.0);
  });
  const CommStats total = world.total_stats();
  EXPECT_EQ(total.messages_sent, 1u);
  EXPECT_EQ(total.bytes_sent, 16u * 8u);
  EXPECT_EQ(total.allreduces, 2u);
}

TEST(Comm, ExceptionsPropagate) {
  World world(2);
  EXPECT_THROW(world.run([](Comm& comm) {
                 if (comm.rank() == 1) {
                   throw std::runtime_error("rank failure");
                 }
               }),
               std::runtime_error);
}

} // namespace
} // namespace wss::cluster
