#include "cluster/dist_bicgstab.hpp"

#include <gtest/gtest.h>

#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss::cluster {
namespace {

TEST(DistBicgstab, MatchesSequentialSolution) {
  const Grid3 g(12, 10, 8);
  auto a = make_convection_diffusion7(g, 1.5, -0.5, 1.0);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);

  SolveControls c;
  c.max_iterations = 200;
  c.tolerance = 1e-10;

  for (const int ranks : {1, 2, 4, 8}) {
    World world(ranks);
    Field3<double> x(g, 0.0);
    const auto result = distributed_bicgstab(world, a, b, x, c);
    EXPECT_EQ(result.solve.reason, StopReason::Converged) << ranks;

    Stencil7Operator<double> op(a);
    std::vector<double> xv(x.begin(), x.end());
    std::vector<double> bv(b.begin(), b.end());
    EXPECT_LT(true_relative_residual<double>(op, std::span<const double>(bv),
                                             std::span<const double>(xv)),
              1e-9)
        << ranks << " ranks";
  }
}

TEST(DistBicgstab, RankCountDoesNotChangeIterationCount) {
  // fp64 reductions via a deterministic shared accumulator: rank counts
  // produce very similar (often identical) convergence paths.
  const Grid3 g(8, 8, 8);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  SolveControls c;
  c.max_iterations = 300;
  c.tolerance = 1e-9;

  World w1(1), w4(4);
  Field3<double> x1(g, 0.0), x4(g, 0.0);
  const auto r1 = distributed_bicgstab(w1, a, b, x1, c);
  const auto r4 = distributed_bicgstab(w4, a, b, x4, c);
  EXPECT_NEAR(r1.solve.iterations, r4.solve.iterations, 3);
}

TEST(DistBicgstab, CommStatsScaleWithRanks) {
  const Grid3 g(16, 16, 16);
  auto a = make_poisson7(g);
  Field3<double> b(g, 1.0);
  SolveControls c;
  c.max_iterations = 5;
  c.tolerance = 0.0;

  World w2(2), w8(8);
  Field3<double> x2(g, 0.0), x8(g, 0.0);
  const auto r2 = distributed_bicgstab(w2, a, b, x2, c);
  const auto r8 = distributed_bicgstab(w8, a, b, x8, c);
  // More ranks, more halo messages.
  EXPECT_GT(r8.comm.messages_sent, r2.comm.messages_sent);
  EXPECT_GT(r8.comm.bytes_sent, 0u);
  // Allreduces per rank are rank-count independent: totals scale by 4.
  EXPECT_EQ(r8.comm.allreduces % r2.comm.allreduces, 0u);
}

TEST(IterationCommVolume, SurfaceToVolumeShrinks) {
  const Grid3 g(600, 600, 600);
  const auto v1k = iteration_comm_volume(g, 1024);
  const auto v16k = iteration_comm_volume(g, 16384);
  // Per-rank halo bytes shrink with more ranks...
  EXPECT_LT(v16k.halo_bytes_per_rank, v1k.halo_bytes_per_rank);
  // ...but total halo traffic grows.
  EXPECT_GT(v16k.halo_bytes_per_rank * 16384, v1k.halo_bytes_per_rank * 1024);
  EXPECT_EQ(v1k.allreduces, 4);
}

TEST(IterationCommVolume, SingleRankHasNoHalo) {
  const auto v = iteration_comm_volume(Grid3(64, 64, 64), 1);
  EXPECT_EQ(v.halo_bytes_per_rank, 0.0);
  EXPECT_EQ(v.halo_messages_per_rank, 0);
}

} // namespace
} // namespace wss::cluster
