#include "perfmodel/cs1_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/axpy_dot_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::perfmodel {
namespace {

TEST(CS1Model, TableIOpsPerPoint) {
  const OpsPerPoint ops;
  EXPECT_EQ(ops.total(), 44);
  EXPECT_EQ(ops.fp16_ops(Mode::Mixed), 40);
  EXPECT_EQ(ops.fp32_ops(Mode::Mixed), 4);
  EXPECT_EQ(ops.fp32_ops(Mode::Fp32), 44);
}

TEST(CS1Model, HeadlineIterationTime) {
  // Section V: 28.1 us per iteration, std-dev ~0.2%. The model should land
  // within a few percent.
  const CS1Model model;
  const Grid3 mesh(600, 595, 1536);
  const double us = model.iteration_seconds(mesh) * 1e6;
  EXPECT_NEAR(us, 28.1, 1.0);
}

TEST(CS1Model, HeadlinePetaflops) {
  const CS1Model model;
  const Grid3 mesh(600, 595, 1536);
  const double pflops = model.achieved_flops(mesh) / 1e15;
  EXPECT_NEAR(pflops, 0.86, 0.04);
}

TEST(CS1Model, AboutOneThirdOfPeak) {
  const CS1Model model;
  const double frac = model.peak_fraction(Grid3(600, 595, 1536));
  EXPECT_GT(frac, 0.28);
  EXPECT_LT(frac, 0.40);
}

TEST(CS1Model, AllReduceUnderOnePointFiveMicroseconds) {
  // Section IV-3: "under 1.5 microseconds" across ~380k cores.
  const CS1Model model;
  const double us = model.allreduce_seconds(602, 595) * 1e6;
  EXPECT_LT(us, 1.75);
  EXPECT_GT(us, 1.0); // it is diameter-bound, not free
}

TEST(CS1Model, Fp32ModeSlower) {
  const CS1Model model;
  const Grid3 mesh(600, 595, 1536);
  EXPECT_GT(model.iteration_seconds(mesh, Mode::Fp32),
            1.5 * model.iteration_seconds(mesh, Mode::Mixed));
}

TEST(CS1Model, MeshShapeSweepFavorsShallowZ) {
  // For a fixed fabric, iteration time grows linearly in Z on top of the
  // Z-independent AllReduce term (which is why deep pencils amortize the
  // reductions well: 3x the Z costs only ~2.2x the time).
  const CS1Model model;
  const double t512 = model.iteration_seconds(Grid3(600, 595, 512));
  const double t1536 = model.iteration_seconds(Grid3(600, 595, 1536));
  EXPECT_GT(t1536, 1.9 * t512);
  EXPECT_LT(t1536, 2.8 * t512);
}

// --- validation against the cycle-level simulator -------------------------

TEST(CS1ModelValidation, SpmvCyclesWithin25Percent) {
  const wse::CS1Params arch;
  const wse::SimParams sim;
  const CS1Model model;
  for (const int z : {32, 64, 128}) {
    const Grid3 g(6, 6, z);
    auto ad = make_random_dominant7(g, 0.5, 7);
    Field3<double> b(g, 1.0);
    (void)precondition_jacobi(ad, b);
    const auto a = convert_stencil<fp16_t>(ad);
    Field3<fp16_t> v(g);
    Rng rng(3);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

    wsekernels::SpMV3DSimulation simulation(a, arch, sim);
    (void)simulation.run(v);
    const double measured = static_cast<double>(simulation.last_run_cycles());
    const double predicted = model.spmv_cycles(z);
    EXPECT_NEAR(measured, predicted, 0.25 * predicted) << "Z=" << z;
  }
}

TEST(CS1ModelValidation, AllReduceCyclesWithin35Percent) {
  const wse::CS1Params arch;
  const wse::SimParams sim;
  const CS1Model model;
  for (const int n : {8, 16, 32}) {
    wsekernels::AllReduceSimulation ar(n, n, arch, sim);
    const auto result = ar.run(
        std::vector<float>(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 1.0f));
    const double measured = static_cast<double>(result.cycles);
    const double predicted = model.allreduce_cycles(n, n);
    EXPECT_NEAR(measured, predicted, 0.15 * predicted) << n << "x" << n;
  }
}

TEST(CS1ModelValidation, AxpyAndDotCycles) {
  const wse::CS1Params arch;
  const wse::SimParams sim;
  const CS1Model model;
  const int z = 256;
  const auto axpy = wsekernels::time_axpy(4, 4, z, arch, sim);
  EXPECT_NEAR(static_cast<double>(axpy.cycles), model.axpy_cycles(z),
              0.25 * model.axpy_cycles(z) + 8.0);
  const auto dot = wsekernels::time_dot_local(4, 4, z, arch, sim);
  EXPECT_NEAR(static_cast<double>(dot.cycles), model.dot_local_cycles(z),
              0.25 * model.dot_local_cycles(z) + 8.0);
}

} // namespace
} // namespace wss::perfmodel
