#include "perfmodel/multiwafer.hpp"

#include <gtest/gtest.h>

namespace wss::perfmodel {
namespace {

MultiWaferModel make(int wafers) {
  MultiWaferParams p;
  p.wafers = wafers;
  return MultiWaferModel{CS1Model{}, p};
}

TEST(MultiWafer, CapacityScalesLinearly) {
  EXPECT_EQ(make(4).max_total_z(), 4 * make(1).max_total_z());
  // 600x595x4000 does not fit one wafer but fits two.
  const Grid3 big(600, 595, 4000);
  EXPECT_FALSE(make(1).fits(big));
  EXPECT_TRUE(make(2).fits(big));
}

TEST(MultiWafer, WeakScalingNearlyFlat) {
  // Growing Z with the wafer count keeps the slab per wafer fixed; the
  // inter-wafer overhead must stay a small fraction of the iteration.
  const auto t1 = make(1).iteration_time(Grid3(600, 595, 1536));
  const auto t4 = make(4).iteration_time(Grid3(600, 595, 4 * 1536));
  EXPECT_NEAR(t4.compute_s, t1.compute_s, 1e-9);
  EXPECT_LT(t4.total(), 1.35 * t1.total());
  EXPECT_GT(t4.total(), t1.total()); // overhead exists, it isn't free
}

TEST(MultiWafer, StrongScalingShrinksCompute) {
  // Fixed headline mesh split over more wafers: compute shrinks with Z/N,
  // overheads grow slowly; 4 wafers should still win end to end.
  const Grid3 mesh(600, 595, 1536);
  const double t1 = make(1).iteration_time(mesh).total();
  const double t4 = make(4).iteration_time(mesh).total();
  EXPECT_LT(t4, t1);
  // But far from perfectly: the Z-independent AllReduce floor remains.
  EXPECT_GT(t4, t1 / 4.0);
}

TEST(MultiWafer, SingleWaferMatchesBaseModel) {
  const Grid3 mesh(600, 595, 1536);
  const CS1Model base;
  EXPECT_NEAR(make(1).iteration_time(mesh).total(),
              base.iteration_seconds(mesh), 1e-12);
  EXPECT_EQ(make(1).iteration_time(mesh).halo_s, 0.0);
}

TEST(MultiWafer, HaloCostMatchesPlaneOverLink) {
  MultiWaferParams p;
  p.wafers = 2;
  p.link_bandwidth = 100e9;
  p.link_latency = 2e-6;
  const MultiWaferModel m{CS1Model{}, p};
  const auto t = m.iteration_time(Grid3(600, 595, 1536));
  const double plane = 2.0 * 600 * 595;
  EXPECT_NEAR(t.halo_s, 2.0 * (plane / 100e9 + 2e-6), 1e-12);
}

} // namespace
} // namespace wss::perfmodel
