#include "perfmodel/cluster_model.hpp"

#include <gtest/gtest.h>

#include "perfmodel/balance.hpp"
#include "perfmodel/cs1_model.hpp"

namespace wss::perfmodel {
namespace {

TEST(JouleModel, Fig8AnchorPoints) {
  // 600^3 mesh: ~75 ms/iter at 1024 cores, ~6 ms at 16384 (Section V-A).
  const JouleModel model;
  const Grid3 mesh(600, 600, 600);
  const double t1k = model.iteration_seconds(mesh, 1024) * 1e3;
  const double t16k = model.iteration_seconds(mesh, 16384) * 1e3;
  EXPECT_NEAR(t1k, 75.0, 15.0);
  EXPECT_NEAR(t16k, 6.0, 2.0);
}

TEST(JouleModel, CS1RatioAbout214x) {
  // "about 214 times more than the 28.1 microseconds per iteration that we
  // measured on the CS-1."
  const JouleModel joule;
  const CS1Model cs1;
  const double t_joule = joule.iteration_seconds(Grid3(600, 600, 600), 16384);
  const double t_cs1 = cs1.iteration_seconds(Grid3(600, 595, 1536));
  const double ratio = t_joule / t_cs1;
  EXPECT_GT(ratio, 150.0);
  EXPECT_LT(ratio, 280.0);
}

TEST(JouleModel, Fig7SmallMeshStopsScaling) {
  // 370^3: scaling fails beyond ~8k cores — time stops improving.
  const JouleModel model;
  const Grid3 mesh(370, 370, 370);
  const double t8k = model.iteration_seconds(mesh, 8192);
  const double t16k = model.iteration_seconds(mesh, 16384);
  // Less than 15% improvement for doubling the cores.
  EXPECT_GT(t16k, 0.85 * t8k);
}

TEST(JouleModel, LargeMeshKeepsScalingFurther) {
  const JouleModel model;
  const Grid3 mesh(600, 600, 600);
  const double t4k = model.iteration_seconds(mesh, 4096);
  const double t8k = model.iteration_seconds(mesh, 8192);
  // Still a real speedup at this size.
  EXPECT_LT(t8k, 0.7 * t4k);
}

TEST(JouleModel, EfficiencyDegradesMonotonically) {
  const JouleModel model;
  const Grid3 mesh(370, 370, 370);
  double prev = 1.1;
  for (const int cores : {1024, 2048, 4096, 8192, 16384}) {
    const double eff = model.efficiency(mesh, cores);
    EXPECT_LT(eff, prev) << cores;
    prev = eff;
  }
}

TEST(JouleModel, ComputeTermDominatesAtLowCoreCounts) {
  const JouleModel model;
  const auto t = model.iteration_time(Grid3(600, 600, 600), 1024);
  EXPECT_GT(t.compute_s, 10.0 * t.allreduce_s);
  EXPECT_GT(t.compute_s, 10.0 * t.halo_s);
}

TEST(JouleModel, CollectivesDominateAtScaleOnSmallMesh) {
  const JouleModel model;
  const auto t = model.iteration_time(Grid3(370, 370, 370), 16384);
  EXPECT_GT(t.allreduce_s, t.compute_s * 0.5);
}

TEST(PerWatt, WaferBeatsClusterByAboutAnOrderOfMagnitude) {
  // Section I: "The achieved performance per Watt ... beyond what has been
  // reported for conventional machines on comparable problems."
  const CS1Model cs1;
  const JouleModel joule;
  const double wafer = cs1.flops_per_watt(Grid3(600, 595, 1536));
  const double cluster = joule.flops_per_watt(Grid3(600, 600, 600), 16384);
  EXPECT_GT(wafer, 30e9);  // ~43 GF/W mixed
  EXPECT_LT(cluster, 15e9); // fp64 memory-bound
  EXPECT_GT(wafer / cluster, 3.0);
}

TEST(Balance, CS1MovesBytesPerFlop) {
  // "can move three bytes to and from memory for every flop"
  const auto cs1 = cs1_balance();
  EXPECT_NEAR(cs1.bytes_per_flop_memory(), 3.0, 0.5);
}

TEST(Balance, ConventionalSystemsOrdersOfMagnitudeWorse) {
  const auto survey = balance_survey();
  ASSERT_EQ(survey.size(), 3u);
  const auto& xeon = survey[0];
  const auto& cs1 = survey[2];
  EXPECT_GT(xeon.flops_per_memory_word(),
            50.0 * cs1.flops_per_memory_word());
  EXPECT_GT(xeon.flops_per_network_word(),
            100.0 * cs1.flops_per_network_word());
}

} // namespace
} // namespace wss::perfmodel
