// Tests for the paper-anchored performance report (docs/PROFILING.md):
// make_perf_report joins a profiled BiCGStab simulation against the
// Section V CS1Model per-phase predictions and projects to the paper's
// 600x595x1536 / 28.1 us / 0.86 PFLOPS headline. Also covers the
// WSS_PROF_JSON escape hatch (maybe_write_prof_json).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "perfmodel/cs1_model.hpp"
#include "perfmodel/perf_report.hpp"
#include "stencil/generators.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/profiler.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/bicgstab_program.hpp"

namespace wss::perfmodel {
namespace {

namespace jp = telemetry::jsonparse;

struct ProfiledRun {
  telemetry::Profiler prof;
  int z = 0;
  int iterations = 0;
};

ProfiledRun run_profiled(int nx, int ny, int z, int iterations) {
  const Grid3 g(nx, ny, z);
  auto ad = make_momentum_like7(g, 0.5, 7);
  auto bd = make_rhs(ad, make_smooth_solution(g));
  const auto bp = precondition_jacobi(ad, bd);
  const auto a16 = convert_stencil<fp16_t>(ad);
  const auto b16 = convert_field<fp16_t>(bp);
  const wse::CS1Params arch;
  const wse::SimParams sim;
  ProfiledRun run{telemetry::Profiler(nx, ny), z, iterations};
  wsekernels::BicgstabSimulation s(a16, iterations, arch, sim);
  s.fabric().set_profiler(&run.prof);
  (void)s.run(b16);
  s.fabric().set_profiler(nullptr);
  return run;
}

TEST(PerfReport, JoinsMeasuredAgainstModelPhases) {
  const ProfiledRun run = run_profiled(4, 4, 16, 2);
  const CS1Model model;
  const PerfReport r =
      make_perf_report(run.prof, run.z, run.iterations, model);

  EXPECT_EQ(r.fabric_x, 4);
  EXPECT_EQ(r.fabric_y, 4);
  EXPECT_EQ(r.z, 16);
  EXPECT_EQ(r.iterations, 2);

  // One row per program phase, with the documented model mapping.
  ASSERT_EQ(r.phases.size(),
            static_cast<std::size_t>(wse::kNumProgPhases));
  double measured_sum = 0.0;
  double model_sum = 0.0;
  for (const PhaseRow& p : r.phases) {
    EXPECT_GE(p.measured_cycles, 0.0) << p.phase;
    measured_sum += p.measured_cycles;
    model_sum += p.model_cycles;
    if (p.phase == "spmv") {
      EXPECT_DOUBLE_EQ(p.model_cycles, 2.0 * model.spmv_cycles(run.z));
    } else if (p.phase == "dot") {
      EXPECT_DOUBLE_EQ(p.model_cycles, 4.0 * model.dot_local_cycles(run.z));
    } else if (p.phase == "axpy") {
      EXPECT_DOUBLE_EQ(p.model_cycles, 6.0 * model.axpy_cycles(run.z));
    } else if (p.phase == "allreduce") {
      EXPECT_DOUBLE_EQ(p.model_cycles, 4.0 * model.allreduce_cycles(4, 4));
    }
  }
  EXPECT_DOUBLE_EQ(r.measured_cycles_per_iter, measured_sum);
  EXPECT_DOUBLE_EQ(r.model_cycles_per_iter, model_sum);

  // Totals tie back to the profiler: every attributed tile-cycle lands in
  // some phase row (measured rows partition observed cycles).
  const double attributed =
      r.measured_cycles_per_iter *
      static_cast<double>(run.prof.configured_tiles()) *
      static_cast<double>(run.iterations);
  const double observed =
      static_cast<double>(run.prof.observed_cycles()) *
      static_cast<double>(run.prof.configured_tiles());
  EXPECT_NEAR(attributed, observed, 1e-6 * observed);

  // Derived rates are consistent with the modeled clock and Table I.
  EXPECT_NEAR(r.us_per_iter,
              r.measured_cycles_per_iter / model.arch().clock_hz * 1e6,
              1e-12);
  EXPECT_GT(r.achieved_flops, 0.0);
}

TEST(PerfReport, WaferProjectionScalesTheSectionVModel) {
  const ProfiledRun run = run_profiled(4, 4, 16, 2);
  const CS1Model model;
  const PerfReport r =
      make_perf_report(run.prof, run.z, run.iterations, model);

  const double ratio = r.measured_cycles_per_iter / r.model_cycles_per_iter;
  EXPECT_NEAR(r.wafer_us_per_iter,
              model.iteration_seconds(r.paper_mesh) * 1e6 * ratio, 1e-9);
  // The anchors carried on every report are the paper's headline numbers.
  EXPECT_DOUBLE_EQ(r.paper_us_per_iter, 28.1);
  EXPECT_DOUBLE_EQ(r.paper_pflops, 0.86);
  EXPECT_GT(r.wafer_pflops, 0.0);
  // A faithful simulation should land within 2x of the paper's headline
  // (the bench itself asserts ~4% agreement; this is a sanity floor).
  EXPECT_GT(r.wafer_us_per_iter, r.paper_us_per_iter / 2.0);
  EXPECT_LT(r.wafer_us_per_iter, r.paper_us_per_iter * 2.0);

  // One critical-path summary per completed iteration window.
  EXPECT_GE(r.critical_paths.size(),
            static_cast<std::size_t>(run.iterations));
}

TEST(PerfReport, PrettyAndJsonCarryTheAnchors) {
  const ProfiledRun run = run_profiled(3, 3, 12, 1);
  const PerfReport r = make_perf_report(run.prof, run.z, run.iterations);

  const std::string text = r.pretty();
  EXPECT_NE(text.find("perf report: 3x3 fabric, Z=12"), std::string::npos);
  EXPECT_NE(text.find("wafer projection (600x595x1536)"), std::string::npos);
  EXPECT_NE(text.find("paper: 28.1 us, 0.86 PFLOPS"), std::string::npos);

  const jp::ParseResult parsed = jp::parse(r.to_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const jp::Value& v = *parsed.value;
  EXPECT_DOUBLE_EQ(v.find("paper_us_per_iter")->number, 28.1);
  EXPECT_DOUBLE_EQ(v.find("paper_pflops")->number, 0.86);
  ASSERT_NE(v.find("phases"), nullptr);
  EXPECT_EQ(v.find("phases")->array->size(),
            static_cast<std::size_t>(wse::kNumProgPhases));
  ASSERT_NE(v.find("critical_paths"), nullptr);
  EXPECT_EQ(v.find("critical_paths")->array->size(),
            r.critical_paths.size());
}

TEST(PerfReport, MaybeWriteProfJsonHonorsTheEnvVar) {
  const ProfiledRun run = run_profiled(3, 3, 8, 1);
  const PerfReport r = make_perf_report(run.prof, run.z, run.iterations);

  // Unset: a no-op that reports false without touching the filesystem.
  ::unsetenv("WSS_PROF_JSON");
  std::string path_out;
  std::string error;
  EXPECT_FALSE(maybe_write_prof_json(run.prof, &r, &path_out, &error));
  EXPECT_TRUE(error.empty());

  // Set: writes {"profile": ..., "perf_report": ...} to the named file.
  const std::string path =
      ::testing::TempDir() + "/wss_perf_report_test_prof.json";
  ASSERT_EQ(::setenv("WSS_PROF_JSON", path.c_str(), 1), 0);
  EXPECT_TRUE(maybe_write_prof_json(run.prof, &r, &path_out, &error))
      << error;
  EXPECT_EQ(path_out, path);
  ::unsetenv("WSS_PROF_JSON");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const jp::ParseResult parsed = jp::parse(ss.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_NE(parsed.value->find("profile"), nullptr);
  ASSERT_NE(parsed.value->find("perf_report"), nullptr);
  EXPECT_DOUBLE_EQ(
      parsed.value->find("profile")->find("observed_cycles")->number,
      static_cast<double>(run.prof.observed_cycles()));
  std::remove(path.c_str());

  // Report pointer may be null: profile-only document.
  ASSERT_EQ(::setenv("WSS_PROF_JSON", path.c_str(), 1), 0);
  EXPECT_TRUE(maybe_write_prof_json(run.prof, nullptr, &path_out, &error))
      << error;
  ::unsetenv("WSS_PROF_JSON");
  std::ifstream in2(path);
  ASSERT_TRUE(in2.good());
  std::ostringstream ss2;
  ss2 << in2.rdbuf();
  const jp::ParseResult parsed2 = jp::parse(ss2.str());
  ASSERT_TRUE(parsed2.ok()) << parsed2.error;
  ASSERT_NE(parsed2.value->find("profile"), nullptr);
  EXPECT_EQ(parsed2.value->find("perf_report"), nullptr);
  std::remove(path.c_str());
}

} // namespace
} // namespace wss::perfmodel
