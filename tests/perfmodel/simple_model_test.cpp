#include "perfmodel/simple_model.hpp"

#include <gtest/gtest.h>

namespace wss::perfmodel {
namespace {

TEST(SimpleModel, TableIIRowTotals) {
  const SimpleCycleTable t;
  // Component sums vs the published Total column (the paper's own table is
  // internally inconsistent by +-2 in two rows; we track both).
  EXPECT_EQ(t.initialization.total_lo(), 45);
  EXPECT_EQ(t.initialization.total_hi(), 64);
  EXPECT_EQ(t.momentum.total_hi(), 213);
  EXPECT_NEAR(t.momentum.total_lo(), t.momentum.published_total_lo, 2);
  EXPECT_EQ(t.continuity.total_hi(), 81);
  EXPECT_NEAR(t.continuity.total_lo(), t.continuity.published_total_lo, 2);
  EXPECT_EQ(t.field_update.total_lo(), 4);
  EXPECT_EQ(t.field_update.total_hi(), 6);
}

TEST(SimpleModel, Projects80To125StepsPerSecond) {
  // Section VI-A: 600^3, 15 SIMPLE iterations per step -> 80-125 steps/s.
  const SimpleModel model{CS1Model{}, JouleModel{}};
  const auto p = model.project(Grid3(600, 600, 600));
  // Our range must overlap the paper's [80, 125].
  EXPECT_LT(p.steps_per_second_lo, 125.0);
  EXPECT_GT(p.steps_per_second_hi, 80.0);
  // And be in the same ballpark (tens to ~150 steps/s).
  EXPECT_GT(p.steps_per_second_lo, 40.0);
  EXPECT_LT(p.steps_per_second_hi, 200.0);
}

TEST(SimpleModel, Above200xFasterThanJoule16k) {
  const SimpleModel model{CS1Model{}, JouleModel{}};
  const auto p = model.project(Grid3(600, 600, 600));
  EXPECT_GT(p.speedup_vs_joule_16k, 200.0);
}

TEST(SimpleModel, FewerSimpleIterationsRunFaster) {
  const SimpleModel model{CS1Model{}, JouleModel{}};
  SimpleRunParams five;
  five.simple_iterations = 5;
  SimpleRunParams twenty;
  twenty.simple_iterations = 20;
  const auto p5 = model.project(Grid3(600, 600, 600), five);
  const auto p20 = model.project(Grid3(600, 600, 600), twenty);
  EXPECT_GT(p5.steps_per_second_lo, 2.0 * p20.steps_per_second_lo);
}

TEST(SimpleModel, DeeperMeshScalesLinearly) {
  const SimpleModel model{CS1Model{}, JouleModel{}};
  const auto p300 = model.project(Grid3(600, 600, 300));
  const auto p600 = model.project(Grid3(600, 600, 600));
  EXPECT_NEAR(p300.seconds_hi / p600.seconds_hi, 0.5, 0.05);
}

} // namespace
} // namespace wss::perfmodel
