#include "wsekernels/allreduce_program.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace wss::wsekernels {
namespace {

std::vector<float> random_contributions(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

TEST(AllReduceSim, SumsAndBroadcasts) {
  const int w = 8;
  const int h = 8;
  wse::CS1Params arch;
  wse::SimParams sim;
  AllReduceSimulation ar(w, h, arch, sim);
  const auto contrib = random_contributions(w, h, 3);
  const auto result = ar.run(contrib);

  // Every tile holds the same value.
  for (const float v : result.values) {
    EXPECT_EQ(v, result.values[0]);
  }
  // And it is the sum, up to fp32 reassociation differences.
  double exact = 0.0;
  for (const float v : contrib) exact += static_cast<double>(v);
  EXPECT_NEAR(result.values[0], exact, 1e-4);
}

TEST(AllReduceSim, MatchesTreeOrderExactly) {
  // The simulated reduction and the tier-2 tree helper apply fp32 adds in
  // the same order, so they agree bit-for-bit.
  const int w = 6;
  const int h = 4;
  wse::CS1Params arch;
  wse::SimParams sim;
  AllReduceSimulation ar(w, h, arch, sim);
  const auto contrib = random_contributions(w, h, 7);
  const auto result = ar.run(contrib);
  const float expected = wse_allreduce_tree(contrib, w, h);
  EXPECT_EQ(result.values[0], expected);
}

TEST(AllReduceSim, LatencyTracksDiameter) {
  // The paper: cycle count about 10% more than the fabric diameter. Allow
  // our simulator some constant task-start overhead on top.
  wse::CS1Params arch;
  wse::SimParams sim;
  for (const int n : {8, 16, 32}) {
    AllReduceSimulation ar(n, n, arch, sim);
    const auto result =
        ar.run(std::vector<float>(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 1.0f));
    EXPECT_EQ(result.values[0], static_cast<float>(n * n));
    const double diameter = 2.0 * (n - 1);
    EXPECT_LT(static_cast<double>(result.cycles), 1.6 * diameter + 60.0)
        << "fabric " << n << "x" << n;
    EXPECT_GE(static_cast<double>(result.cycles), diameter);
  }
}

TEST(AllReduceSim, RectangularFabrics) {
  wse::CS1Params arch;
  wse::SimParams sim;
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 2}, std::pair{9, 5},
                            std::pair{16, 4}}) {
    AllReduceSimulation ar(w, h, arch, sim);
    std::vector<float> contrib(
        static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
    for (std::size_t i = 0; i < contrib.size(); ++i) {
      contrib[i] = static_cast<float>(i % 5) - 2.0f;
    }
    const auto result = ar.run(contrib);
    double exact = 0.0;
    for (const float v : contrib) exact += static_cast<double>(v);
    for (const float v : result.values) {
      EXPECT_NEAR(v, exact, 1e-3) << w << "x" << h;
    }
  }
}

TEST(AllReduceSim, RepeatedRunsIndependent) {
  wse::CS1Params arch;
  wse::SimParams sim;
  AllReduceSimulation ar(4, 4, arch, sim);
  const auto r1 = ar.run(std::vector<float>(16, 2.0f));
  EXPECT_EQ(r1.values[0], 32.0f);
  const auto r2 = ar.run(std::vector<float>(16, -1.0f));
  EXPECT_EQ(r2.values[0], -16.0f);
}

TEST(AllReduceTree, DegenerateAndExactCases) {
  // Powers of two sum exactly in any order.
  std::vector<float> v(64, 1.0f);
  EXPECT_EQ(wse_allreduce_tree(v, 8, 8), 64.0f);
  std::vector<float> w(12);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i);
  EXPECT_EQ(wse_allreduce_tree(w, 4, 3), 66.0f);
}

} // namespace
} // namespace wss::wsekernels
