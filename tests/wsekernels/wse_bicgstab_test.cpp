#include "wsekernels/wse_bicgstab.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss::wsekernels {
namespace {

struct System {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
  Stencil7<double> ad; ///< the same (post-preconditioning) matrix in fp64
  Field3<double> bd;
};

System make_system(Grid3 g, std::uint64_t seed, double dominance = 0.6) {
  auto ad = make_momentum_like7(g, dominance, seed);
  const auto xref = make_smooth_solution(g);
  auto bd = make_rhs(ad, xref);
  bd = [&] {
    auto copy = bd;
    return copy;
  }();
  Field3<double> b_pre = precondition_jacobi(ad, bd);
  System s;
  s.a = convert_stencil<fp16_t>(ad);
  s.b = convert_field<fp16_t>(b_pre);
  s.ad = ad;
  s.bd = b_pre;
  return s;
}

TEST(WseSpmv, MatchesFp64ReferenceWithinFp16Noise) {
  const Grid3 g(6, 5, 7);
  System s = make_system(g, 5);
  Field3<fp16_t> v(g);
  Rng rng(6);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  Field3<fp16_t> u(g);
  wse_spmv(s.a, v, u);

  auto acc = convert_stencil<double>(s.a);
  auto vd = convert_field<double>(v);
  Field3<double> ud(g);
  spmv7(acc, vd, ud);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(u[i].to_double(), ud[i], 3e-2);
  }
}

TEST(WseSpmv, RequiresUnitDiagonal) {
  auto ad = make_poisson7(Grid3(2, 2, 2));
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(a.grid), u(a.grid);
  EXPECT_THROW(wse_spmv(a, v, u), std::invalid_argument);
}

TEST(WseDot, CloseToFp64Dot) {
  const Grid3 g(8, 8, 16);
  Rng rng(11);
  Field3<fp16_t> a(g), b(g);
  double exact = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = fp16_t(rng.uniform(-1.0, 1.0));
    b[i] = fp16_t(rng.uniform(-1.0, 1.0));
    exact += a[i].to_double() * b[i].to_double();
  }
  EXPECT_NEAR(static_cast<double>(wse_dot(a, b)), exact, 5e-3 * std::sqrt(static_cast<double>(g.size())));
}

TEST(WseBicgstab, ConvergesToFp16Floor) {
  const Grid3 g(8, 8, 10);
  System s = make_system(g, 21);
  WseBicgstabSolver solver(s.a);
  Field3<fp16_t> x(g, fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 30;
  c.tolerance = 5e-3;
  const auto result = solver.solve(s.b, x, c);
  EXPECT_EQ(result.reason, StopReason::Converged);

  // True fp64 residual lands near the mixed-precision floor (~1e-2), the
  // Fig. 9 plateau.
  Stencil7Operator<double> op(s.ad);
  std::vector<double> xv(x.size()), bv(s.bd.begin(), s.bd.end());
  for (std::size_t i = 0; i < x.size(); ++i) xv[i] = x[i].to_double();
  const double res = true_relative_residual<double>(
      op, std::span<const double>(bv), std::span<const double>(xv));
  EXPECT_LT(res, 5e-2);
}

TEST(WseBicgstab, MatchesGenericMixedSolverBehaviour) {
  // The WSE-mapped solver and the generic mixed-precision BiCGStab follow
  // the same algorithm; their residual histories agree in the early
  // iterations to within fp16 reassociation noise.
  const Grid3 g(6, 6, 8);
  System s = make_system(g, 33);
  WseBicgstabSolver solver(s.a);
  Field3<fp16_t> x1(g, fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 4;
  c.tolerance = 0.0;
  const auto r1 = solver.solve(s.b, x1, c);

  Stencil7Operator<fp16_t> op(s.a);
  std::vector<fp16_t> x2(g.size(), fp16_t(0.0));
  std::vector<fp16_t> bv(s.b.begin(), s.b.end());
  const auto r2 = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bv), std::span<fp16_t>(x2), c);

  ASSERT_EQ(r1.iterations, r2.iterations);
  for (int i = 0; i < r1.iterations; ++i) {
    const double a = r1.relative_residuals[static_cast<std::size_t>(i)];
    const double b = r2.relative_residuals[static_cast<std::size_t>(i)];
    EXPECT_NEAR(std::log10(a + 1e-12), std::log10(b + 1e-12), 0.5) << i;
  }
}

TEST(WseBicgstab, OperationCensusMatchesTableI) {
  const Grid3 g(5, 5, 6);
  System s = make_system(g, 44);
  WseBicgstabSolver solver(s.a);
  Field3<fp16_t> x(g, fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 2;
  c.tolerance = 0.0;
  const auto result = solver.solve(s.b, x, c);
  ASSERT_EQ(result.iterations, 2);
  const double n = static_cast<double>(g.size());
  // Setup: one matvec (6 mul + 6 add) + subtract (1 add) + the ||b|| and
  // initial (r0, r) dots (the census gap this PR closed: ||b|| rides the
  // same AllReduce as every other dot and is now counted).
  const double hp_mul =
      (static_cast<double>(result.flops.hp_mul) - 8 * n) / (2 * n);
  const double hp_add =
      (static_cast<double>(result.flops.hp_add) - 7 * n) / (2 * n);
  const double sp_add =
      (static_cast<double>(result.flops.sp_add) - 2 * n) / (2 * n);
  EXPECT_DOUBLE_EQ(hp_mul, 22.0);
  EXPECT_DOUBLE_EQ(hp_add, 18.0);
  EXPECT_DOUBLE_EQ(sp_add, 4.0);
}

TEST(TileMemory, PaperAccountingAtHeadlineZ) {
  // Z = 1536: 10 Z fp16 words = 30720 bytes ~ "about 31 KB out of 48 KB".
  const auto m = bicgstab_tile_memory(1536);
  EXPECT_EQ(m.matrix_bytes + m.vector_bytes, 10 * 1536 * 2);
  EXPECT_GT(m.total_bytes, 30000);
  EXPECT_LT(m.total_bytes, 32000);
  EXPECT_TRUE(m.fits);
}

TEST(TileMemory, CapacityWall) {
  EXPECT_TRUE(bicgstab_tile_memory(2400).fits);
  EXPECT_FALSE(bicgstab_tile_memory(2500).fits);
}

} // namespace
} // namespace wss::wsekernels
