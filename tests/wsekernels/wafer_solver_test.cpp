#include "wsekernels/wafer_solver.hpp"

#include <gtest/gtest.h>

#include "stencil/generators.hpp"

namespace wss::wsekernels {
namespace {

TEST(WaferSolver, SolvesAndReports) {
  const Grid3 g(16, 16, 32);
  const auto a = make_momentum_like7(g, 0.3, 5);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);

  WaferSolver solver(a);
  const auto report = solver.solve(b);

  EXPECT_EQ(report.solve.reason, StopReason::Converged);
  EXPECT_LT(report.true_relative_residual, 2e-2);
  EXPECT_TRUE(report.fit.fits());

  double max_err = 0.0;
  for (std::size_t i = 0; i < report.x.size(); ++i) {
    max_err = std::max(max_err, std::abs(report.x[i] - xref[i]));
  }
  EXPECT_LT(max_err, 5e-2); // mixed-precision class accuracy

  // Model projections are populated and self-consistent.
  EXPECT_GT(report.modeled_iteration_seconds, 0.0);
  EXPECT_NEAR(report.modeled_wall_seconds,
              report.modeled_iteration_seconds * report.solve.iterations,
              1e-12);
  EXPECT_GT(report.modeled_flops, 0.0);
}

TEST(WaferSolver, CallerDataUntouched) {
  const Grid3 g(6, 6, 8);
  const auto a = make_momentum_like7(g, 0.5, 9);
  const double diag_before = a.diag(2, 2, 2);
  const auto b = make_rhs(a, make_smooth_solution(g));
  WaferSolver solver(a);
  (void)solver.solve(b);
  EXPECT_EQ(a.diag(2, 2, 2), diag_before);
  EXPECT_FALSE(a.unit_diagonal);
}

TEST(WaferSolver, RejectsOversizedMeshes) {
  const Grid3 too_wide(700, 10, 8);
  const auto a = make_poisson7(too_wide);
  EXPECT_THROW(WaferSolver{a}, std::invalid_argument);

  WaferSolveOptions relaxed;
  relaxed.enforce_capacity = false;
  EXPECT_NO_THROW(WaferSolver(a, relaxed));
}

TEST(WaferSolver, RejectsMismatchedRhs) {
  const auto a = make_poisson7(Grid3(4, 4, 4));
  WaferSolver solver(a);
  Field3<double> wrong(Grid3(4, 4, 5), 1.0);
  EXPECT_THROW((void)solver.solve(wrong), std::invalid_argument);
}

TEST(WaferSolver, HeadlineMeshProjection) {
  // The facade reproduces the paper's numbers for the headline shape
  // without running the (infeasible) full-size solve: capacity + model.
  WaferSolveOptions opt;
  opt.enforce_capacity = true;
  const Grid3 g(600, 595, 1536);
  // Constructing the full matrix (3.8 GB in fp64 fields) is excessive for
  // a unit test; check the capacity/model path through a slab instead and
  // the fit logic directly.
  const auto fit = check_mesh_fit(g, opt.arch);
  EXPECT_TRUE(fit.fits());
  const perfmodel::CS1Model model(opt.arch);
  EXPECT_NEAR(model.iteration_seconds(g) * 1e6, 28.1, 1.0);
}

} // namespace
} // namespace wss::wsekernels
