#include <cmath>
#include <gtest/gtest.h>

#include "stencil/generators.hpp"
#include "wsekernels/bicgstab_program.hpp"

namespace wss::wsekernels {
namespace {

struct System {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
};

System make_system(Grid3 g, std::uint64_t seed) {
  auto ad = make_momentum_like7(g, 0.5, seed);
  auto bd = make_rhs(ad, make_smooth_solution(g));
  Field3<double> bp = precondition_jacobi(ad, bd);
  return {convert_stencil<fp16_t>(ad), convert_field<fp16_t>(bp)};
}

TEST(FusedReduction, BitIdenticalResults) {
  // Fusing the (q,y)/(y,y) reductions onto concurrent trees changes only
  // the schedule, not any arithmetic order: results must be bit-identical
  // to the blocking schedule.
  const Grid3 g(6, 6, 16);
  System s = make_system(g, 3);
  wse::CS1Params arch;
  wse::SimParams sim;
  BicgstabSimulation blocking(s.a, 3, arch, sim);
  BicgstabSimOptions opt;
  opt.fuse_qy_yy = true;
  BicgstabSimulation fused(s.a, 3, arch, sim, opt);

  const auto r1 = blocking.run(s.b);
  const auto r2 = fused.run(s.b);
  for (std::size_t i = 0; i < r1.x.size(); ++i) {
    EXPECT_EQ(r1.x[i].bits(), r2.x[i].bits());
    EXPECT_EQ(r1.r[i].bits(), r2.r[i].bits());
  }
}

TEST(FusedReduction, NeverSlower) {
  wse::CS1Params arch;
  wse::SimParams sim;
  for (const auto& [n, z] : {std::pair{8, 32}, std::pair{16, 16}}) {
    System s = make_system(Grid3(n, n, z), 7);
    BicgstabSimulation blocking(s.a, 2, arch, sim);
    BicgstabSimOptions opt;
    opt.fuse_qy_yy = true;
    BicgstabSimulation fused(s.a, 2, arch, sim, opt);
    const auto r1 = blocking.run(s.b);
    const auto r2 = fused.run(s.b);
    EXPECT_LE(r2.cycles, r1.cycles) << n << "x" << n << " z=" << z;
  }
}

TEST(FusedReduction, SavingGrowsWithFabricDiameter) {
  // The larger the fabric relative to the pencil, the more of one tree's
  // latency the fusion can hide. (The saving stays modest because
  // back-to-back blocking reductions already pipeline through the
  // staggered broadcast — an honest negative result worth keeping.)
  wse::CS1Params arch;
  wse::SimParams sim;
  auto saving = [&](int n, int z) {
    System s = make_system(Grid3(n, n, z), 11);
    BicgstabSimulation blocking(s.a, 2, arch, sim);
    BicgstabSimOptions opt;
    opt.fuse_qy_yy = true;
    BicgstabSimulation fused(s.a, 2, arch, sim, opt);
    const auto r1 = blocking.run(s.b);
    const auto r2 = fused.run(s.b);
    return static_cast<double>(r1.cycles) - static_cast<double>(r2.cycles);
  };
  EXPECT_GT(saving(24, 8), saving(8, 8));
}

} // namespace
} // namespace wss::wsekernels
