#include "wsekernels/spmv3d_program.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace wss::wsekernels {
namespace {

/// Preconditioned fp16 stencil + iterate for a given mesh.
struct Case {
  Stencil7<fp16_t> a;
  Field3<fp16_t> v;
};

Case make_case(Grid3 g, std::uint64_t seed) {
  auto ad = make_random_dominant7(g, 0.5, seed);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  Case c;
  c.a = convert_stencil<fp16_t>(ad);
  c.v = Field3<fp16_t>(g);
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

/// Max elementwise |simulated - reference| where reference is the fp64
/// SpMV of the (fp16-held) coefficients. fp16 rounding noise only.
double max_error_vs_fp64(const Stencil7<fp16_t>& a, const Field3<fp16_t>& v,
                         const Field3<fp16_t>& u) {
  auto ad = convert_stencil<double>(a);
  auto vd = convert_field<double>(v);
  Field3<double> ud(a.grid);
  spmv7(ad, vd, ud);
  double worst = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    worst = std::max(worst, std::abs(u[i].to_double() - ud[i]));
  }
  return worst;
}

TEST(SpMV3DSim, MatchesReferenceOnSmallFabric) {
  const Grid3 g(4, 4, 8);
  Case c = make_case(g, 11);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  const auto u = simulation.run(c.v);
  // fp16 epsilon ~1e-3; row sums of ~7 O(1) terms: tolerance a few e-2.
  EXPECT_LT(max_error_vs_fp64(c.a, c.v, u), 3e-2);
  EXPECT_GT(simulation.last_run_cycles(), 0u);
}

TEST(SpMV3DSim, MatchesTier2WaferOrderClosely) {
  // The cycle simulator and the tier-2 kernel use the same per-term
  // rounding; only the interleaving of FIFO drains differs, so results
  // agree to within a couple of fp16 ulps.
  const Grid3 g(3, 5, 6);
  Case c = make_case(g, 23);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  const auto u_sim = simulation.run(c.v);
  Field3<fp16_t> u_t2(g);
  wse_spmv(c.a, c.v, u_t2);
  for (std::size_t i = 0; i < u_sim.size(); ++i) {
    EXPECT_LE(fp16_ulp_distance(u_sim[i], u_t2[i]), 8u) << i;
  }
}

TEST(SpMV3DSim, SingleTileFabric) {
  // 1x1 fabric: no neighbors, only z coupling and the diagonal.
  const Grid3 g(1, 1, 16);
  Case c = make_case(g, 31);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  const auto u = simulation.run(c.v);
  EXPECT_LT(max_error_vs_fp64(c.a, c.v, u), 1e-2);
}

TEST(SpMV3DSim, SingleRowFabric) {
  const Grid3 g(5, 1, 8);
  Case c = make_case(g, 37);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  const auto u = simulation.run(c.v);
  EXPECT_LT(max_error_vs_fp64(c.a, c.v, u), 3e-2);
}

TEST(SpMV3DSim, RepeatedRunsAreConsistent) {
  const Grid3 g(3, 3, 8);
  Case c = make_case(g, 41);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  const auto u1 = simulation.run(c.v);
  const auto u2 = simulation.run(c.v);
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_EQ(u1[i].bits(), u2[i].bits());
  }
}

TEST(SpMV3DSim, CyclesScaleLinearlyInZ) {
  const wse::CS1Params arch;
  const wse::SimParams sim;
  std::uint64_t cycles_z16 = 0;
  std::uint64_t cycles_z64 = 0;
  {
    Case c = make_case(Grid3(4, 4, 16), 51);
    SpMV3DSimulation s(c.a, arch, sim);
    (void)s.run(c.v);
    cycles_z16 = s.last_run_cycles();
  }
  {
    Case c = make_case(Grid3(4, 4, 64), 52);
    SpMV3DSimulation s(c.a, arch, sim);
    (void)s.run(c.v);
    cycles_z64 = s.last_run_cycles();
  }
  const double ratio = static_cast<double>(cycles_z64) /
                       static_cast<double>(cycles_z16);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 5.5);
}

TEST(SpMV3DSim, ShallowFifoStillCorrect) {
  const Grid3 g(3, 3, 12);
  Case c = make_case(g, 61);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DOptions opt;
  opt.fifo_depth = 2; // pathological depth: correctness must not depend on it
  SpMV3DSimulation simulation(c.a, arch, sim, opt);
  const auto u = simulation.run(c.v);
  EXPECT_LT(max_error_vs_fp64(c.a, c.v, u), 3e-2);
}

TEST(SpMV3DSim, TwoSumTasksMatchOne) {
  const Grid3 g(4, 3, 8);
  Case c = make_case(g, 71);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DOptions one;
  SpMV3DOptions two;
  two.num_sum_tasks = 2;
  SpMV3DSimulation s1(c.a, arch, sim, one);
  SpMV3DSimulation s2(c.a, arch, sim, two);
  const auto u1 = s1.run(c.v);
  const auto u2 = s2.run(c.v);
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_LE(fp16_ulp_distance(u1[i], u2[i]), 8u);
  }
}

TEST(SpMV3DSim, MemoryAccountingWithinSram) {
  const Grid3 g(2, 2, 1536); // the paper's Z
  Case c = make_case(g, 81);
  wse::CS1Params arch;
  wse::SimParams sim;
  SpMV3DSimulation simulation(c.a, arch, sim);
  EXPECT_LE(simulation.tile_memory_bytes(), arch.tile_memory_bytes);
  // The SpMV working set alone (8 Z-vectors + FIFOs) is about 25 KB at
  // Z=1536, consistent with the paper's 31 KB for the full solver set.
  EXPECT_GT(simulation.tile_memory_bytes(), 20 * 1024);
}

} // namespace
} // namespace wss::wsekernels
