#include "wsekernels/spmv2d.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "solver/bicgstab.hpp"
#include "stencil/generators.hpp"

namespace wss::wsekernels {
namespace {

TEST(WseSpmv2D, MatchesReferenceAcrossBlockSizes) {
  const Grid2 g(20, 17);
  auto ad = make_random_dominant9(g, 0.4, 3);
  Field2<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  Stencil9<fp16_t> a(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(ad.coeff[static_cast<std::size_t>(k)][i]);
    }
  }
  a.unit_diagonal = true;

  Field2<fp16_t> v(g);
  Rng rng(4);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

  Field2<double> vd(g), ud(g);
  for (std::size_t i = 0; i < v.size(); ++i) vd[i] = v[i].to_double();
  Stencil9<double> adv(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      adv.coeff[static_cast<std::size_t>(k)][i] =
          a.coeff[static_cast<std::size_t>(k)][i].to_double();
    }
  }
  spmv9(adv, vd, ud);

  for (const auto& [bx, by] : {std::pair{4, 4}, std::pair{8, 8},
                              std::pair{7, 5}, std::pair{20, 17}}) {
    Field2<fp16_t> u(g);
    wse_spmv2d(a, v, u, bx, by);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(u[i].to_double(), ud[i], 5e-2)
          << "block " << bx << "x" << by;
    }
  }
}

TEST(Spmv2DModel, MaxBlockIs38) {
  // Section IV-2: "local memory ... sufficient to ... hold a sub-block
  // up-to 38x38 in size, corresponding to geometries of 22800x22800".
  EXPECT_EQ(max_block_2d(), 38);
  // 38 tiles * 600-wide fabric edge ~ 22800.
  EXPECT_EQ(38 * 600, 22800);
}

TEST(Spmv2DModel, OverheadUnder20PercentAt8x8) {
  const auto m = model_spmv2d_block(8);
  EXPECT_LT(m.overhead, 0.20);
  EXPECT_GT(m.overhead, 0.10); // nontrivial, as the paper notes
}

TEST(Spmv2DModel, OverheadShrinksWithBlockSize) {
  double prev = 1e9;
  for (const int b : {4, 8, 16, 32, 38}) {
    const auto m = model_spmv2d_block(b);
    EXPECT_LT(m.overhead, prev);
    prev = m.overhead;
  }
}

TEST(WseSpmv2D, EndToEndMixedPrecisionSolve) {
  // Section IV-2 end to end: a 2D 9-point system solved by BiCGStab in
  // mixed precision through the block-mapped SpMV, converging to the same
  // ~1e-2 class floor as the 3D mapping.
  const Grid2 g(24, 20);
  auto ad = make_random_dominant9(g, 0.6, 17);
  const auto xref = make_smooth_solution(g);
  auto b = make_rhs(ad, xref);
  const Field2<double> bp = precondition_jacobi(ad, b);

  Stencil9<fp16_t> a(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(ad.coeff[static_cast<std::size_t>(k)][i]);
    }
  }
  a.unit_diagonal = true;
  Field2<fp16_t> bh(g);
  for (std::size_t i = 0; i < bp.size(); ++i) bh[i] = fp16_t(bp[i]);

  // BiCGStab over the block-mapped 2D SpMV (8x8 blocks per tile).
  std::vector<fp16_t> bv(bh.begin(), bh.end());
  std::vector<fp16_t> x(g.size(), fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 40;
  c.tolerance = 8e-3;
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter*) {
        Field2<fp16_t> vf(g), uf(g);
        for (std::size_t i = 0; i < v.size(); ++i) vf[i] = v[i];
        wse_spmv2d(a, vf, uf, 8, 8);
        for (std::size_t i = 0; i < y.size(); ++i) y[i] = uf[i];
      },
      std::span<const fp16_t>(bv), std::span<fp16_t>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);

  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i].to_double() - xref[i]));
  }
  EXPECT_LT(worst, 5e-2);
}

TEST(Spmv2DModel, MemoryGrowsQuadratically) {
  const auto m8 = model_spmv2d_block(8);
  const auto m16 = model_spmv2d_block(16);
  EXPECT_GT(m16.memory_bytes, 3 * m8.memory_bytes);
  EXPECT_LT(m16.memory_bytes, 5 * m8.memory_bytes);
}

} // namespace
} // namespace wss::wsekernels
