#include "wsekernels/spmv2d.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/rng.hpp"
#include "mesh/partition.hpp"
#include "solver/bicgstab.hpp"
#include "stencil/generators.hpp"

namespace wss::wsekernels {
namespace {

TEST(WseSpmv2D, MatchesReferenceAcrossBlockSizes) {
  const Grid2 g(20, 17);
  auto ad = make_random_dominant9(g, 0.4, 3);
  Field2<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  Stencil9<fp16_t> a(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(ad.coeff[static_cast<std::size_t>(k)][i]);
    }
  }
  a.unit_diagonal = true;

  Field2<fp16_t> v(g);
  Rng rng(4);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

  Field2<double> vd(g), ud(g);
  for (std::size_t i = 0; i < v.size(); ++i) vd[i] = v[i].to_double();
  Stencil9<double> adv(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      adv.coeff[static_cast<std::size_t>(k)][i] =
          a.coeff[static_cast<std::size_t>(k)][i].to_double();
    }
  }
  spmv9(adv, vd, ud);

  for (const auto& [bx, by] : {std::pair{4, 4}, std::pair{8, 8},
                              std::pair{7, 5}, std::pair{20, 17}}) {
    Field2<fp16_t> u(g);
    wse_spmv2d(a, v, u, bx, by);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(u[i].to_double(), ud[i], 5e-2)
          << "block " << bx << "x" << by;
    }
  }
}

// Independent per-target mirror of the wafer's documented accumulation
// order. Where wse_spmv2d scatters per-source FMACs into per-tile planes
// and then bulk-exchanges ring columns/rows, this derivation walks each
// target and replays the order its value is built in: local FMACs in the
// owning tile's source-traversal order, then one add per received halo
// value — from west, from east (x round), then from north, from south
// (y round), with diagonal contributions pre-folded into the ring rows by
// the x round. Bit-equality between the two is the exact-bits anchor the
// stencil front-end's Dirichlet-zero policy inherits.
Field2<fp16_t> mirror_spmv2d(const Stencil9<fp16_t>& a,
                             const Field2<fp16_t>& v, int tiles_x,
                             int tiles_y) {
  const Grid2 g = a.grid;
  const auto coeff = [&](int k, int x, int y) {
    return a.coeff[static_cast<std::size_t>(k)](x, y);
  };
  const auto k_of = [](int dx, int dy) { return (dx + 1) * 3 + (dy + 1); };
  Field2<fp16_t> out(g);
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const Span1 sx = split1(g.nx, tiles_x, tx);
      const Span1 sy = split1(g.ny, tiles_y, ty);
      for (int x = sx.begin; x < sx.end; ++x) {
        for (int y = sy.begin; y < sy.end; ++y) {
          // Local sources, in the tile's x-outer / y-inner traversal.
          fp16_t acc(0.0);
          for (int xs = std::max(x - 1, sx.begin);
               xs <= std::min(x + 1, sx.end - 1); ++xs) {
            for (int ys = std::max(y - 1, sy.begin);
                 ys <= std::min(y + 1, sy.end - 1); ++ys) {
              acc = fmac(coeff(k_of(xs - x, ys - y), x, y), v(xs, ys), acc);
            }
          }
          // X round: the facing ring column of the west then east tile,
          // each a single pre-summed add.
          if (tx > 0 && x == sx.begin) {
            fp16_t w(0.0);
            for (int ys = std::max(y - 1, sy.begin);
                 ys <= std::min(y + 1, sy.end - 1); ++ys) {
              w = fmac(coeff(k_of(-1, ys - y), x, y), v(x - 1, ys), w);
            }
            acc = acc + w;
          }
          if (tx + 1 < tiles_x && x == sx.end - 1) {
            fp16_t e(0.0);
            for (int ys = std::max(y - 1, sy.begin);
                 ys <= std::min(y + 1, sy.end - 1); ++ys) {
              e = fmac(coeff(k_of(1, ys - y), x, y), v(x + 1, ys), e);
            }
            acc = acc + e;
          }
          // Y round: the facing ring row of the north then south tile.
          // Corner contributions were folded into those ring rows by the
          // neighbors' own x rounds (west before east), so they arrive
          // here having travelled two one-hop legs.
          if (ty > 0 && y == sy.begin) {
            fp16_t n(0.0);
            for (int xs = std::max(x - 1, sx.begin);
                 xs <= std::min(x + 1, sx.end - 1); ++xs) {
              n = fmac(coeff(k_of(xs - x, -1), x, y), v(xs, y - 1), n);
            }
            if (tx > 0 && x == sx.begin) {
              n = n + fmac(coeff(0, x, y), v(x - 1, y - 1), fp16_t(0.0));
            }
            if (tx + 1 < tiles_x && x == sx.end - 1) {
              n = n + fmac(coeff(6, x, y), v(x + 1, y - 1), fp16_t(0.0));
            }
            acc = acc + n;
          }
          if (ty + 1 < tiles_y && y == sy.end - 1) {
            fp16_t s(0.0);
            for (int xs = std::max(x - 1, sx.begin);
                 xs <= std::min(x + 1, sx.end - 1); ++xs) {
              s = fmac(coeff(k_of(xs - x, 1), x, y), v(xs, y + 1), s);
            }
            if (tx > 0 && x == sx.begin) {
              s = s + fmac(coeff(2, x, y), v(x - 1, y + 1), fp16_t(0.0));
            }
            if (tx + 1 < tiles_x && x == sx.end - 1) {
              s = s + fmac(coeff(8, x, y), v(x + 1, y + 1), fp16_t(0.0));
            }
            acc = acc + s;
          }
          out(x, y) = acc;
        }
      }
    }
  }
  return out;
}

Stencil9<fp16_t> random_fp16_stencil(const Grid2& g, std::uint64_t seed) {
  Stencil9<fp16_t> a(g);
  Rng rng(seed);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(rng.uniform(-0.25, 0.25));
    }
  }
  return a;
}

TEST(WseSpmv2D, WaferOrderMatchesHostMirrorExactBits) {
  const Grid2 g(20, 17);
  const Stencil9<fp16_t> a = random_fp16_stencil(g, 11);
  Field2<fp16_t> v(g);
  Rng rng(12);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }

  for (const auto& [bx, by] : {std::pair{4, 4}, std::pair{8, 8},
                              std::pair{7, 5}, std::pair{20, 17},
                              std::pair{1, 1}}) {
    const int tiles_x = (g.nx + bx - 1) / bx;
    const int tiles_y = (g.ny + by - 1) / by;
    const Field2<fp16_t> want = mirror_spmv2d(a, v, tiles_x, tiles_y);
    Field2<fp16_t> u(g);
    wse_spmv2d(a, v, u, bx, by);
    for (int x = 0; x < g.nx; ++x) {
      for (int y = 0; y < g.ny; ++y) {
        ASSERT_EQ(u(x, y).bits(), want(x, y).bits())
            << "block " << bx << "x" << by << " at (" << x << "," << y << ")";
      }
    }
  }
}

TEST(WseSpmv2D, PowerOfTwoClosureMatchesRowReferenceExactBits) {
  // Coefficients in {±0.25..±2} and v in {0.5, 1, 2}: every product is a
  // power of two in [2^-3, 4] and every partial sum a multiple of 2^-3
  // bounded by 36, so fp16 FMAC arithmetic is exact and the accumulation
  // order cannot matter. Any bit difference from the row-order spmv9
  // reference is therefore a boundary-closure bug (a halo contribution
  // dropped, duplicated, or mis-clipped at a mesh edge), not rounding.
  // Tile-edge-heavy blockings make boundary rows and corners the common
  // case rather than the exception.
  const Grid2 g(20, 17);
  Stencil9<fp16_t> a(g);
  Field2<fp16_t> v(g);
  Rng rng(21);
  const double mags[] = {0.25, 0.5, 1.0, 2.0};
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double m = mags[rng.below(4)];
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(rng.below(2) != 0 ? m : -m);
    }
  }
  const double vals[] = {0.5, 1.0, 2.0};
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(vals[rng.below(3)]);
  }

  Field2<double> vd(g), ud(g);
  for (std::size_t i = 0; i < v.size(); ++i) vd[i] = v[i].to_double();
  Stencil9<double> ad(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      ad.coeff[static_cast<std::size_t>(k)][i] =
          a.coeff[static_cast<std::size_t>(k)][i].to_double();
    }
  }
  spmv9(ad, vd, ud);

  for (const auto& [bx, by] : {std::pair{4, 4}, std::pair{7, 5},
                              std::pair{1, 1}}) {
    Field2<fp16_t> u(g);
    wse_spmv2d(a, v, u, bx, by);
    for (int x = 0; x < g.nx; ++x) {
      for (int y = 0; y < g.ny; ++y) {
        ASSERT_EQ(u(x, y).bits(), fp16_t(ud(x, y)).bits())
            << "block " << bx << "x" << by << " at (" << x << "," << y << ")"
            << " wse=" << u(x, y).to_double() << " ref=" << ud(x, y);
      }
    }
  }
}

TEST(Spmv2DModel, MaxBlockIs38) {
  // Section IV-2: "local memory ... sufficient to ... hold a sub-block
  // up-to 38x38 in size, corresponding to geometries of 22800x22800".
  EXPECT_EQ(max_block_2d(), 38);
  // 38 tiles * 600-wide fabric edge ~ 22800.
  EXPECT_EQ(38 * 600, 22800);
}

TEST(Spmv2DModel, OverheadUnder20PercentAt8x8) {
  const auto m = model_spmv2d_block(8);
  EXPECT_LT(m.overhead, 0.20);
  EXPECT_GT(m.overhead, 0.10); // nontrivial, as the paper notes
}

TEST(Spmv2DModel, OverheadShrinksWithBlockSize) {
  double prev = 1e9;
  for (const int b : {4, 8, 16, 32, 38}) {
    const auto m = model_spmv2d_block(b);
    EXPECT_LT(m.overhead, prev);
    prev = m.overhead;
  }
}

TEST(WseSpmv2D, EndToEndMixedPrecisionSolve) {
  // Section IV-2 end to end: a 2D 9-point system solved by BiCGStab in
  // mixed precision through the block-mapped SpMV, converging to the same
  // ~1e-2 class floor as the 3D mapping.
  const Grid2 g(24, 20);
  auto ad = make_random_dominant9(g, 0.6, 17);
  const auto xref = make_smooth_solution(g);
  auto b = make_rhs(ad, xref);
  const Field2<double> bp = precondition_jacobi(ad, b);

  Stencil9<fp16_t> a(g);
  for (int k = 0; k < 9; ++k) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      a.coeff[static_cast<std::size_t>(k)][i] =
          fp16_t(ad.coeff[static_cast<std::size_t>(k)][i]);
    }
  }
  a.unit_diagonal = true;
  Field2<fp16_t> bh(g);
  for (std::size_t i = 0; i < bp.size(); ++i) bh[i] = fp16_t(bp[i]);

  // BiCGStab over the block-mapped 2D SpMV (8x8 blocks per tile).
  std::vector<fp16_t> bv(bh.begin(), bh.end());
  std::vector<fp16_t> x(g.size(), fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 40;
  c.tolerance = 8e-3;
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter*) {
        Field2<fp16_t> vf(g), uf(g);
        for (std::size_t i = 0; i < v.size(); ++i) vf[i] = v[i];
        wse_spmv2d(a, vf, uf, 8, 8);
        for (std::size_t i = 0; i < y.size(); ++i) y[i] = uf[i];
      },
      std::span<const fp16_t>(bv), std::span<fp16_t>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);

  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(x[i].to_double() - xref[i]));
  }
  EXPECT_LT(worst, 5e-2);
}

TEST(Spmv2DModel, MemoryGrowsQuadratically) {
  const auto m8 = model_spmv2d_block(8);
  const auto m16 = model_spmv2d_block(16);
  EXPECT_GT(m16.memory_bytes, 3 * m8.memory_bytes);
  EXPECT_LT(m16.memory_bytes, 5 * m8.memory_bytes);
}

} // namespace
} // namespace wss::wsekernels
