#include "wsekernels/memory_model.hpp"

#include <gtest/gtest.h>

namespace wss::wsekernels {
namespace {

TEST(MemoryModel, HeadlineMeshFits) {
  const wse::CS1Params arch;
  const auto fit = check_mesh_fit(Grid3(600, 595, 1536), arch);
  EXPECT_TRUE(fit.fits_fabric);
  EXPECT_TRUE(fit.fits_memory);
  EXPECT_TRUE(fit.fits());
  // "about 31KB out of 48KB": utilization near 64%.
  EXPECT_NEAR(fit.tile_utilization, 0.64, 0.03);
  EXPECT_EQ(fit.total_points, 548352000);
}

TEST(MemoryModel, FabricBoundRejectsWideMeshes) {
  const wse::CS1Params arch;
  EXPECT_FALSE(check_mesh_fit(Grid3(700, 595, 64), arch).fits_fabric);
  EXPECT_FALSE(check_mesh_fit(Grid3(600, 700, 64), arch).fits_fabric);
  EXPECT_TRUE(check_mesh_fit(Grid3(602, 595, 64), arch).fits_fabric);
}

TEST(MemoryModel, PencilDepthLimit) {
  const wse::CS1Params arch;
  const int zmax = max_pencil_z(arch);
  EXPECT_GT(zmax, 1536); // the paper's mesh leaves headroom
  EXPECT_LT(zmax, 2600);
  EXPECT_TRUE(check_mesh_fit(Grid3(10, 10, zmax), arch).fits_memory);
  EXPECT_FALSE(check_mesh_fit(Grid3(10, 10, zmax + 40), arch).fits_memory);
}

TEST(MemoryModel, TotalCapacityIsWaferScale) {
  const wse::CS1Params arch;
  // ~600x600 fabric x ~2400 deep: close to a billion points.
  EXPECT_GT(max_mesh_points(arch), 800'000'000);
  EXPECT_LT(max_mesh_points(arch), 1'000'000'000);
}

} // namespace
} // namespace wss::wsekernels
