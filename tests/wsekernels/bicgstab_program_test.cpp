#include "wsekernels/bicgstab_program.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "perfmodel/cs1_model.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace wss::wsekernels {
namespace {

struct System {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
};

System make_system(Grid3 g, std::uint64_t seed) {
  auto ad = make_momentum_like7(g, 0.5, seed);
  const auto xref = make_smooth_solution(g);
  auto bd = make_rhs(ad, xref);
  Field3<double> bp = precondition_jacobi(ad, bd);
  return {convert_stencil<fp16_t>(ad), convert_field<fp16_t>(bp)};
}

double rms_diff(const Field3<fp16_t>& a, const Field3<fp16_t>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i].to_double() - b[i].to_double();
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

TEST(BicgstabSim, MatchesTier2SolverIterates) {
  // Run 3 fixed iterations on the cycle simulator and on the
  // numerics-faithful tier-2 solver: the iterates agree to within fp16
  // reassociation noise (the interleaving of FIFO drains differs).
  const Grid3 g(4, 4, 12);
  System s = make_system(g, 7);

  wse::CS1Params arch;
  wse::SimParams sim;
  BicgstabSimulation simulation(s.a, 3, arch, sim);
  const auto sim_result = simulation.run(s.b);

  WseBicgstabSolver tier2(s.a);
  Field3<fp16_t> x2(g, fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 3;
  c.tolerance = 0.0;
  const auto t2_result = tier2.solve(s.b, x2, c);
  ASSERT_EQ(t2_result.iterations, 3);

  // Solution scale is O(1); require agreement well below the fp16 floor
  // times the accumulated-roundoff growth.
  EXPECT_LT(rms_diff(sim_result.x, x2), 2e-2);

  // Residual norms agree as well.
  double sim_rnorm = 0.0;
  for (const auto& v : sim_result.r) {
    sim_rnorm += v.to_double() * v.to_double();
  }
  sim_rnorm = std::sqrt(sim_rnorm);
  double bnorm = 0.0;
  for (const auto& v : s.b) bnorm += v.to_double() * v.to_double();
  bnorm = std::sqrt(bnorm);
  const double sim_rel = sim_rnorm / bnorm;
  const double t2_rel = t2_result.relative_residuals.back();
  EXPECT_NEAR(std::log10(sim_rel + 1e-12), std::log10(t2_rel + 1e-12), 0.4);
}

TEST(BicgstabSim, ReducesResidual) {
  const Grid3 g(4, 4, 16);
  System s = make_system(g, 21);
  wse::CS1Params arch;
  wse::SimParams sim;
  BicgstabSimulation simulation(s.a, 4, arch, sim);
  const auto result = simulation.run(s.b);

  double rnorm = 0.0, bnorm = 0.0;
  for (std::size_t i = 0; i < s.b.size(); ++i) {
    rnorm += result.r[i].to_double() * result.r[i].to_double();
    bnorm += s.b[i].to_double() * s.b[i].to_double();
  }
  EXPECT_LT(std::sqrt(rnorm / bnorm), 0.1);
  EXPECT_EQ(result.iterations, 4);
}

TEST(BicgstabSim, CyclesPerIterationMatchModel) {
  // The end-to-end validation of the Section V model: a full iteration on
  // the simulator lands within 25% of 2*spmv + 4*(dot + allreduce) +
  // 6*axpy + overhead.
  const Grid3 g(6, 6, 64);
  System s = make_system(g, 33);
  wse::CS1Params arch;
  wse::SimParams sim;

  const int iters = 3;
  BicgstabSimulation simulation(s.a, iters, arch, sim);
  const auto result = simulation.run(s.b);
  const double measured =
      static_cast<double>(result.cycles) / iters;

  const perfmodel::CS1Model model;
  const double predicted = model.iteration_cycles(g);
  EXPECT_NEAR(measured, predicted, 0.25 * predicted)
      << "measured " << measured << " vs model " << predicted;
}

TEST(BicgstabSim, RepeatedRunsBitIdentical) {
  const Grid3 g(3, 4, 8);
  System s = make_system(g, 44);
  wse::CS1Params arch;
  wse::SimParams sim;
  BicgstabSimulation simulation(s.a, 2, arch, sim);
  const auto r1 = simulation.run(s.b);
  const auto r2 = simulation.run(s.b);
  for (std::size_t i = 0; i < r1.x.size(); ++i) {
    EXPECT_EQ(r1.x[i].bits(), r2.x[i].bits());
    EXPECT_EQ(r1.r[i].bits(), r2.r[i].bits());
  }
  EXPECT_EQ(r1.cycles, r2.cycles);
}

TEST(BicgstabSim, TileMemoryFitsAtHeadlineDepth) {
  // The full working set (7 vectors + 6 diagonals + per-iteration FIFO
  // buffers) on a tiny fabric at the paper's Z: must fit in 48 KB. The
  // paper's own accounting (10 Z words) assumes the q->s and r->y storage
  // overlays; our program keeps them separate for clarity and still fits.
  const Grid3 g(2, 2, 1536);
  System s = make_system(g, 55);
  wse::CS1Params arch;
  wse::SimParams sim;
  BicgstabSimulation simulation(s.a, 3, arch, sim);
  EXPECT_LE(simulation.tile_memory_bytes(), arch.tile_memory_bytes);
  EXPECT_GT(simulation.tile_memory_bytes(), 35 * 1024);
}

} // namespace
} // namespace wss::wsekernels
