// Tests for the scalar (energy/species) transport extension: global
// conservation in a closed adiabatic box, the discrete maximum principle
// of the upwind scheme, diffusion-driven homogenization, and advection by
// the cavity flow.

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "mfix/scalar_transport.hpp"
#include "mfix/simple.hpp"

namespace wss::mfix {
namespace {

StaggeredGrid grid8() { return {8, 8, 8, 0.125}; }

Field3<double> hot_corner(const StaggeredGrid& g) {
  Field3<double> theta(g.cells(), 0.0);
  for (int i = 0; i < g.nx / 2; ++i)
    for (int j = 0; j < g.ny / 2; ++j)
      for (int k = 0; k < g.nz / 2; ++k) theta(i, j, k) = 1.0;
  return theta;
}

TEST(ScalarTransport, ConservedInClosedBox) {
  const StaggeredGrid g = grid8();
  const FluidProps props{1.0, 0.05};
  // A developed cavity flow as the carrier field.
  SimpleSolver solver(g, props, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  (void)solver.run(state, 6);

  Field3<double> theta = hot_corner(g);
  const double before = scalar_content(g, props, theta);
  ScalarTransportOptions opt;
  opt.solver_iters = 50; // converge tightly so conservation is exact
  opt.solver_tolerance = 1e-12;
  for (int step = 0; step < 10; ++step) {
    (void)advance_scalar(g, state, props, theta, nullptr, opt);
    EXPECT_NEAR(scalar_content(g, props, theta), before, 1e-9 * std::abs(before) + 1e-12)
        << "step " << step;
  }
}

TEST(ScalarTransport, MaximumPrinciple) {
  // First-order upwind + implicit Euler is bounded: theta stays inside its
  // initial range without sources.
  const StaggeredGrid g = grid8();
  const FluidProps props{1.0, 0.05};
  SimpleSolver solver(g, props, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  (void)solver.run(state, 6);

  Field3<double> theta = hot_corner(g);
  ScalarTransportOptions opt;
  opt.solver_iters = 50;
  opt.solver_tolerance = 1e-12;
  for (int step = 0; step < 10; ++step) {
    (void)advance_scalar(g, state, props, theta, nullptr, opt);
    const auto [lo, hi] = std::minmax_element(theta.begin(), theta.end());
    EXPECT_GE(*lo, -1e-9);
    EXPECT_LE(*hi, 1.0 + 1e-9);
  }
}

TEST(ScalarTransport, DiffusionHomogenizes) {
  // No flow, strong diffusion: the hot corner spreads toward the uniform
  // mean.
  const StaggeredGrid g = grid8();
  const FluidProps props{1.0, 0.05};
  const FlowState state = make_cavity_state(g, WallMotion{0.0});

  Field3<double> theta = hot_corner(g);
  const double mean = scalar_content(g, props, theta) /
                      (props.rho * g.h * g.h * g.h *
                       static_cast<double>(g.cells().size()));
  auto spread = [&] {
    double v = 0.0;
    for (const double t : theta) v += (t - mean) * (t - mean);
    return v;
  };
  const double before = spread();
  ScalarTransportOptions opt;
  opt.gamma = 0.2;
  opt.dt = 0.2;
  opt.solver_iters = 60;
  opt.solver_tolerance = 1e-12;
  for (int step = 0; step < 8; ++step) {
    (void)advance_scalar(g, state, props, theta, nullptr, opt);
  }
  EXPECT_LT(spread(), 0.25 * before);
}

TEST(ScalarTransport, AdvectionFollowsTheLid) {
  // With the lid driving +x flow under the top wall, a scalar blob under
  // the lid drifts in +x: its center of mass moves right.
  const StaggeredGrid g{12, 6, 8, 1.0 / 12.0};
  const FluidProps props{1.0, 0.05};
  SimpleSolver solver(g, props, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  (void)solver.run(state, 10);

  Field3<double> theta(g.cells(), 0.0);
  for (int j = 0; j < g.ny; ++j) theta(2, j, g.nz - 1) = 1.0; // blob at left top
  auto center_x = [&] {
    double num = 0.0;
    double den = 1e-300;
    for (int i = 0; i < g.nx; ++i)
      for (int j = 0; j < g.ny; ++j)
        for (int k = 0; k < g.nz; ++k) {
          num += i * theta(i, j, k);
          den += theta(i, j, k);
        }
    return num / den;
  };
  const double x0 = center_x();
  ScalarTransportOptions opt;
  opt.gamma = 1e-4;
  opt.dt = 0.05;
  opt.solver_iters = 40;
  opt.solver_tolerance = 1e-12;
  for (int step = 0; step < 12; ++step) {
    (void)advance_scalar(g, state, props, theta, nullptr, opt);
  }
  EXPECT_GT(center_x(), x0 + 0.5);
}

TEST(ScalarTransport, SourceAddsContent) {
  const StaggeredGrid g = grid8();
  const FluidProps props{1.0, 0.05};
  const FlowState state = make_cavity_state(g, WallMotion{0.0});
  Field3<double> theta(g.cells(), 0.0);
  Field3<double> source(g.cells(), 1.0); // uniform heating
  ScalarTransportOptions opt;
  opt.solver_iters = 50;
  opt.solver_tolerance = 1e-12;
  const double before = scalar_content(g, props, theta);
  (void)advance_scalar(g, state, props, theta, &source, opt);
  // d(content)/dt = integral of source = volume * 1.
  const double volume = g.h * g.h * g.h * static_cast<double>(g.cells().size());
  EXPECT_NEAR(scalar_content(g, props, theta) - before, volume * opt.dt,
              1e-8);
}

TEST(ScalarTransport, CensusCountsTransportOps) {
  const StaggeredGrid g{6, 6, 6, 1.0 / 6.0};
  const FluidProps props{1.0, 0.05};
  const FlowState state = make_cavity_state(g, WallMotion{0.0});
  Field3<double> theta(g.cells(), 0.0);
  const auto sys = assemble_scalar_transport(g, state, props, theta, nullptr,
                                             ScalarTransportOptions{});
  EXPECT_GT(sys.census.per_point(sys.census.merges), 5.0);
  EXPECT_GT(sys.census.per_point(sys.census.transports), 5.0);
  EXPECT_EQ(sys.census.points, g.cells().size());
}

} // namespace
} // namespace wss::mfix
