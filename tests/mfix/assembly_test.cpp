#include "mfix/assembly.hpp"

#include <gtest/gtest.h>

#include "mfix/momentum_system.hpp"
#include "mfix/simple.hpp"

namespace wss::mfix {
namespace {

StaggeredGrid small_grid() { return {6, 6, 6, 1.0 / 6.0}; }

TEST(MomentumAssembly, DiagonallyDominant) {
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const FluidProps props{1.0, 0.01};
  for (const Component comp : {Component::U, Component::V, Component::W}) {
    const auto sys =
        assemble_momentum(g, state, props, comp, 0.1, 0.7, WallMotion{1.0});
    for (std::size_t i = 0; i < sys.a.num_points(); ++i) {
      const double off = std::abs(sys.a.xp[i]) + std::abs(sys.a.xm[i]) +
                         std::abs(sys.a.yp[i]) + std::abs(sys.a.ym[i]) +
                         std::abs(sys.a.zp[i]) + std::abs(sys.a.zm[i]);
      EXPECT_GE(sys.a.diag[i], off) << "row " << i;
      EXPECT_GT(sys.a.diag[i], 0.0);
    }
  }
}

TEST(MomentumAssembly, LidDrivesRhs) {
  // At rest, the only nonzero forcing of the u equation is the lid shear
  // on the top layer of u unknowns.
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const FluidProps props{1.0, 0.01};
  const auto sys =
      assemble_momentum(g, state, props, Component::U, 0.1, 0.7, WallMotion{1.0});
  for (int a = 0; a < sys.grid.nx; ++a) {
    for (int b = 0; b < sys.grid.ny; ++b) {
      for (int c = 0; c < sys.grid.nz; ++c) {
        if (c == sys.grid.nz - 1) {
          EXPECT_GT(sys.rhs(a, b, c), 0.0);
        } else {
          EXPECT_EQ(sys.rhs(a, b, c), 0.0);
        }
      }
    }
  }
  // v momentum sees no lid forcing at rest.
  const auto sv =
      assemble_momentum(g, state, props, Component::V, 0.1, 0.7, WallMotion{1.0});
  for (std::size_t i = 0; i < sv.rhs.size(); ++i) {
    EXPECT_EQ(sv.rhs[i], 0.0);
  }
}

TEST(MomentumAssembly, UpwindSwitchesWithFlowDirection) {
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{0.0});
  // Uniform positive u: upstream (xm) coefficients get the convective load.
  state.u.fill(1.0);
  const FluidProps props{1.0, 0.001};
  const auto sys =
      assemble_momentum(g, state, props, Component::U, 0.1, 1.0, WallMotion{0.0});
  const auto idx = sys.grid.index(2, 3, 3);
  EXPECT_LT(sys.a.xm[idx], sys.a.xp[idx]); // xm more negative
}

TEST(MomentumAssembly, CensusWithinTableIIEnvelope) {
  // Our incompressible assembly must not exceed the compressible MFIX
  // budget of Table II (Momentum row: 79-213 total cycles/point), and
  // should land in a sensible band below it.
  const StaggeredGrid g = small_grid();
  const auto sys = make_momentum_system(g, 0.1, 3);
  const double total = sys.census.total_per_point();
  EXPECT_GT(total, 20.0);
  EXPECT_LT(total, 213.0);
  EXPECT_GT(sys.census.per_point(sys.census.merges), 1.0);
  EXPECT_GT(sys.census.per_point(sys.census.divides), 0.5);
  EXPECT_GT(sys.census.per_point(sys.census.transports), 4.0);
}

TEST(PressureCorrection, ZeroDivergenceGivesZeroRhs) {
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{0.0});
  const FluidProps props{1.0, 0.01};
  Field3<double> du(g.u_faces(), 0.1), dv(g.v_faces(), 0.1),
      dw(g.w_faces(), 0.1);
  const auto sys = assemble_pressure_correction(g, state, props, du, dv, dw);
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) {
    EXPECT_EQ(sys.rhs[i], 0.0);
  }
}

TEST(PressureCorrection, RowSumsVanishExceptPin) {
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{0.0});
  const FluidProps props{1.0, 0.01};
  // Interior-face d coefficients only (boundary zero), like SIMPLE uses.
  Field3<double> du(g.u_faces(), 0.0), dv(g.v_faces(), 0.0),
      dw(g.w_faces(), 0.0);
  for (int i = 1; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k) du(i, j, k) = 0.2;
  for (int i = 0; i < g.nx; ++i)
    for (int j = 1; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k) dv(i, j, k) = 0.2;
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 1; k < g.nz; ++k) dw(i, j, k) = 0.2;
  const auto sys = assemble_pressure_correction(g, state, props, du, dv, dw);
  for (int i = 0; i < g.nx; ++i) {
    for (int j = 0; j < g.ny; ++j) {
      for (int k = 0; k < g.nz; ++k) {
        const std::size_t idx = sys.grid.index(i, j, k);
        const double row_sum = sys.a.diag[idx] + sys.a.xp[idx] +
                               sys.a.xm[idx] + sys.a.yp[idx] + sys.a.ym[idx] +
                               sys.a.zp[idx] + sys.a.zm[idx];
        if (i == 0 && j == 0 && k == 0) {
          EXPECT_GT(row_sum, 0.0); // the pinned reference cell
        } else {
          EXPECT_NEAR(row_sum, 0.0, 1e-12);
        }
      }
    }
  }
}

TEST(MassImbalance, DetectsDivergence) {
  const StaggeredGrid g = small_grid();
  FlowState state = make_cavity_state(g, WallMotion{0.0});
  const FluidProps props{1.0, 0.01};
  EXPECT_EQ(mass_imbalance(g, state, props), 0.0);
  state.u(3, 2, 2) = 1.0; // a single divergent face
  EXPECT_GT(mass_imbalance(g, state, props), 0.0);
}

TEST(Fig9System, HeadlineMeshShapeAssembles) {
  // The Fig. 9 mesh scaled down 1:10 per axis, to keep the test quick; the
  // bench runs the full 100x400x100.
  const StaggeredGrid g{10, 40, 10, 0.01};
  const auto sys = make_momentum_system(g, 0.01, 7);
  EXPECT_EQ(sys.grid.nx, 9);
  EXPECT_EQ(sys.grid.ny, 40);
  EXPECT_EQ(sys.grid.nz, 10);
  for (std::size_t i = 0; i < sys.a.num_points(); ++i) {
    const double off = std::abs(sys.a.xp[i]) + std::abs(sys.a.xm[i]) +
                       std::abs(sys.a.yp[i]) + std::abs(sys.a.ym[i]) +
                       std::abs(sys.a.zp[i]) + std::abs(sys.a.zm[i]);
    EXPECT_GT(sys.a.diag[i], off); // dt-driven dominance
  }
}

} // namespace
} // namespace wss::mfix
