// Physics property tests for the SIMPLE solver: global mass conservation
// in the closed cavity (the pressure-correction rhs sums to the net
// boundary flux, which is zero for impermeable walls), Galilean sanity of
// the upwinding, and grid-size parameterized convergence behaviour.

#include <cmath>
#include <gtest/gtest.h>

#include "mfix/simple.hpp"

namespace wss::mfix {
namespace {

TEST(Conservation, PressureCorrectionRhsSumsToZeroInClosedBox) {
  // For any interior velocity field with impermeable walls, the summed
  // cell divergences telescope to the boundary flux = 0, so the
  // continuity rhs is globally compatible.
  const StaggeredGrid g{7, 6, 5, 0.1};
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  // Arbitrary interior velocities; boundary faces stay zero.
  for (int i = 1; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k)
        state.u(i, j, k) = std::sin(0.3 * i) * std::cos(0.5 * j + 0.2 * k);
  for (int i = 0; i < g.nx; ++i)
    for (int j = 1; j < g.ny; ++j)
      for (int k = 0; k < g.nz; ++k)
        state.v(i, j, k) = std::cos(0.4 * i) * std::sin(0.6 * k);
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 1; k < g.nz; ++k)
        state.w(i, j, k) = std::sin(0.2 * i + 0.7 * j);

  const FluidProps props{1.0, 0.01};
  Field3<double> du(g.u_faces(), 0.1), dv(g.v_faces(), 0.1),
      dw(g.w_faces(), 0.1);
  const auto sys = assemble_pressure_correction(g, state, props, du, dv, dw);
  double total = 0.0;
  for (std::size_t i = 0; i < sys.rhs.size(); ++i) total += sys.rhs[i];
  EXPECT_NEAR(total, 0.0, 1e-10);
}

TEST(Conservation, CavityStaysGloballyMassConserving) {
  // After every SIMPLE iteration the corrected field's total divergence
  // stays at machine-zero (the correction enforces it cellwise up to the
  // inner-solve tolerance; globally it telescopes).
  const StaggeredGrid g{8, 8, 8, 0.125};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const FluidProps props{1.0, 0.05};
  for (int it = 0; it < 8; ++it) {
    (void)solver.iterate(state);
    double total = 0.0;
    const double rA = props.rho * g.h * g.h;
    for (int i = 0; i < g.nx; ++i)
      for (int j = 0; j < g.ny; ++j)
        for (int k = 0; k < g.nz; ++k)
          total += rA * (state.u(i + 1, j, k) - state.u(i, j, k) +
                         state.v(i, j + 1, k) - state.v(i, j, k) +
                         state.w(i, j, k + 1) - state.w(i, j, k));
    EXPECT_NEAR(total, 0.0, 1e-9) << "iteration " << it;
  }
}

TEST(Conservation, BoundaryFacesNeverMove) {
  // No-penetration: normal boundary faces stay exactly zero through the
  // whole solve (they are data, not unknowns).
  const StaggeredGrid g{6, 6, 6, 1.0 / 6.0};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  (void)solver.run(state, 5);
  for (int j = 0; j < g.ny; ++j)
    for (int k = 0; k < g.nz; ++k) {
      EXPECT_EQ(state.u(0, j, k), 0.0);
      EXPECT_EQ(state.u(g.nx, j, k), 0.0);
    }
  for (int i = 0; i < g.nx; ++i)
    for (int k = 0; k < g.nz; ++k) {
      EXPECT_EQ(state.v(i, 0, k), 0.0);
      EXPECT_EQ(state.v(i, g.ny, k), 0.0);
    }
  for (int i = 0; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j) {
      EXPECT_EQ(state.w(i, j, 0), 0.0);
      EXPECT_EQ(state.w(i, j, g.nz), 0.0);
    }
}

class CavitySizes : public ::testing::TestWithParam<int> {};

TEST_P(CavitySizes, MassResidualDropsAtAnyResolution) {
  const int n = GetParam();
  const StaggeredGrid g{n, n, n, 1.0 / n};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const auto stats = solver.run(state, 10);
  EXPECT_LT(stats.back().mass_residual, stats[1].mass_residual);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, CavitySizes,
                         ::testing::Values(4, 6, 8, 12),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

} // namespace
} // namespace wss::mfix
