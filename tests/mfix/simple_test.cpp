#include "mfix/simple.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace wss::mfix {
namespace {

TEST(Simple, CavityFlowDevelopsAndConserves) {
  const StaggeredGrid g{8, 8, 8, 1.0 / 8.0};
  const FluidProps props{1.0, 0.05};
  const WallMotion walls{1.0};
  SimpleSolver solver(g, props, walls);
  FlowState state = make_cavity_state(g, walls);

  const auto stats = solver.run(state, 12);

  // The lid drags fluid: the top interior u layer moves in +x.
  double top_u = 0.0;
  for (int i = 1; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j) top_u += state.u(i, j, g.nz - 1);
  EXPECT_GT(top_u, 0.0);

  // Recirculation: somewhere below, the flow returns (-x).
  double min_u = 0.0;
  for (int i = 1; i < g.nx; ++i)
    for (int j = 0; j < g.ny; ++j)
      for (int k = 0; k < g.nz / 2; ++k) min_u = std::min(min_u, state.u(i, j, k));
  EXPECT_LT(min_u, 0.0);

  // Mass residual falls as SIMPLE converges within the time step.
  EXPECT_LT(stats.back().mass_residual, stats.front().mass_residual);
  // Momentum residual decreases too (not necessarily monotonically).
  EXPECT_LT(stats.back().momentum_residual,
            stats[1].momentum_residual * 1.5);
}

TEST(Simple, StatsCountSolverIterations) {
  const StaggeredGrid g{6, 6, 6, 1.0 / 6.0};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const auto s = solver.iterate(state);
  // At most 3 momentum solves x 5 + 1 continuity x 20 = 35 (Algorithm 2
  // with the paper's caps).
  EXPECT_LE(s.solver_iterations, 35);
  EXPECT_GT(s.solver_iterations, 0);
}

TEST(Simple, ZeroLidStaysAtRest) {
  const StaggeredGrid g{5, 5, 5, 0.2};
  SimpleSolver solver(g, FluidProps{1.0, 0.02}, WallMotion{0.0});
  FlowState state = make_cavity_state(g, WallMotion{0.0});
  (void)solver.run(state, 3);
  for (const double u : state.u) EXPECT_EQ(u, 0.0);
  for (const double v : state.v) EXPECT_EQ(v, 0.0);
  for (const double w : state.w) EXPECT_EQ(w, 0.0);
}

TEST(Simple, FormationCensusIsStable) {
  const StaggeredGrid g{6, 6, 6, 1.0 / 6.0};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  const auto s1 = solver.iterate(state);
  const auto s2 = solver.iterate(state);
  // Per-point formation cost does not depend on the flow state.
  EXPECT_EQ(s1.formation_census.merges, s2.formation_census.merges);
  EXPECT_EQ(s1.formation_census.flops, s2.formation_census.flops);
  EXPECT_EQ(s1.formation_census.divides, s2.formation_census.divides);
}

TEST(Simple, SymmetryAcrossY) {
  // The cavity problem is symmetric in y: the u field must be too.
  const StaggeredGrid g{6, 6, 6, 1.0 / 6.0};
  SimpleSolver solver(g, FluidProps{1.0, 0.05}, WallMotion{1.0});
  FlowState state = make_cavity_state(g, WallMotion{1.0});
  (void)solver.run(state, 6);
  for (int i = 1; i < g.nx; ++i) {
    for (int j = 0; j < g.ny / 2; ++j) {
      for (int k = 0; k < g.nz; ++k) {
        // fp64 roundoff (non-reflection-invariant summation orders inside
        // BiCGStab) amplifies over SIMPLE iterations; the flow itself is
        // symmetric to much tighter than the O(0.1) velocity scale.
        EXPECT_NEAR(state.u(i, j, k), state.u(i, g.ny - 1 - j, k), 1e-3);
      }
    }
  }
}

} // namespace
} // namespace wss::mfix
