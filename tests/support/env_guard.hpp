#pragma once

// Scoped environment-variable save/unset/restore for tests whose behaviour
// is env-sensitive (observer auto-attachment, backend selection, thread
// counts). Constructing a guard unsets the variable; the destructor
// restores whatever was there. The backend-conformance suite leans on this
// hard: CI exports WSS_WATCHDOG_CYCLES / WSS_POSTMORTEM_DIR for the main
// test run, and both auto-attach observers that demote the turbo backend —
// a conformance test that didn't scrub them would silently compare
// reference against reference.

#include <cstdlib>
#include <string>

namespace wss::testsupport {

class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) {
      had_ = true;
      saved_ = cur;
    }
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }

private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

/// Scrub every variable that can attach an observer to (or re-route) a
/// fabric mid-test: with any of these live, the turbo backend demotes and
/// a backend differential would vacuously pass.
struct CleanSimEnv {
  EnvGuard watchdog{"WSS_WATCHDOG_CYCLES"};
  EnvGuard postmortem{"WSS_POSTMORTEM_DIR"};
  EnvGuard sample{"WSS_SAMPLE_CYCLES"};
  EnvGuard ledger{"WSS_LEDGER_DIR"};
  EnvGuard timeseries{"WSS_TIMESERIES_OUT"};
  EnvGuard backend{"WSS_SIM_BACKEND"};
  EnvGuard threads{"WSS_SIM_THREADS"};
  EnvGuard netflows{"WSS_NETFLOWS"};
  EnvGuard netflows_out{"WSS_NETFLOWS_OUT"};
  EnvGuard netflows_topk{"WSS_NETFLOWS_TOPK"};
};

} // namespace wss::testsupport
