#pragma once

// Shared differential assertions over two fabrics that are claimed to be
// observably identical — the common currency of the parallel-conformance
// suite (serial vs banded-parallel stepping) and the backend-conformance
// suite (reference vs turbo execution backend). "Identical" is strict:
// fabric stats, per-tile core counters, per-tile router counters, done
// flags, the telemetry heatmap grids harvested from them, and (for runs)
// the StopInfo and the fault-injection record.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/heatmap.hpp"
#include "wse/fabric.hpp"

namespace wss::testsupport {

/// Assert every observable counter of `got` matches `want`: fabric stats,
/// per-tile core stats, per-tile router stats, and the telemetry heatmaps
/// harvested from them. `label` names the differential configuration.
inline void expect_fabric_state_identical(const wse::Fabric& want,
                                          const wse::Fabric& got,
                                          const std::string& label) {
  ASSERT_EQ(want.width(), got.width());
  ASSERT_EQ(want.height(), got.height());
  EXPECT_EQ(want.stats().cycles, got.stats().cycles) << label;
  EXPECT_EQ(want.stats().link_transfers, got.stats().link_transfers) << label;

  for (int y = 0; y < want.height(); ++y) {
    for (int x = 0; x < want.width(); ++x) {
      ASSERT_EQ(want.has_core(x, y), got.has_core(x, y)) << label;
      if (!want.has_core(x, y)) continue;
      const std::string at =
          label + " tile (" + std::to_string(x) + "," + std::to_string(y) + ")";
      const wse::CoreStats& a = want.core(x, y).stats();
      const wse::CoreStats& b = got.core(x, y).stats();
      EXPECT_EQ(a.instr_cycles, b.instr_cycles) << at;
      EXPECT_EQ(a.stall_cycles, b.stall_cycles) << at;
      EXPECT_EQ(a.idle_cycles, b.idle_cycles) << at;
      EXPECT_EQ(a.elements_processed, b.elements_processed) << at;
      EXPECT_EQ(a.words_sent, b.words_sent) << at;
      EXPECT_EQ(a.words_received, b.words_received) << at;
      EXPECT_EQ(a.task_invocations, b.task_invocations) << at;
      EXPECT_EQ(a.fifo_highwater, b.fifo_highwater) << at;
      EXPECT_EQ(a.ramp_highwater, b.ramp_highwater) << at;
      const wse::RouterStats& ra = want.router_stats(x, y);
      const wse::RouterStats& rb = got.router_stats(x, y);
      EXPECT_EQ(ra.flits_forwarded, rb.flits_forwarded) << at;
      EXPECT_EQ(ra.queue_highwater, rb.queue_highwater) << at;
      EXPECT_EQ(want.core(x, y).done(), got.core(x, y).done()) << at;
    }
  }

  // The telemetry layer must see the same world: heatmap grids are the
  // collection path every downstream consumer (CSV export, postmortem
  // diffing) reads.
  const auto maps_want = telemetry::collect_heatmaps(want);
  const auto maps_got = telemetry::collect_heatmaps(got);
  const auto all_want = maps_want.all();
  const auto all_got = maps_got.all();
  ASSERT_EQ(all_want.size(), all_got.size());
  for (std::size_t m = 0; m < all_want.size(); ++m) {
    EXPECT_EQ(all_want[m]->cells, all_got[m]->cells)
        << label << " heatmap " << all_want[m]->name;
  }
}

/// Assert two Fabric::run() outcomes match field for field, deadlock
/// forensics included.
inline void expect_stop_identical(const wse::StopInfo& want,
                                  const wse::StopInfo& got,
                                  const std::string& label) {
  EXPECT_EQ(static_cast<int>(want.reason), static_cast<int>(got.reason))
      << label << " (want " << wse::StopInfo::to_string(want.reason)
      << ", got " << wse::StopInfo::to_string(got.reason) << ")";
  EXPECT_EQ(want.cycles, got.cycles) << label;
  EXPECT_EQ(want.deadlock, got.deadlock) << label;
  EXPECT_EQ(want.stalled_cycles, got.stalled_cycles) << label;
  EXPECT_EQ(want.blocked_tiles, got.blocked_tiles) << label;
  EXPECT_EQ(want.report, got.report) << label;
}

/// Assert the fault-injection record of two runs matches: aggregate stats,
/// the bounded event log, its overflow count, and the per-tile injection
/// heatmap source.
inline void expect_faults_identical(const wse::Fabric& want,
                                    const wse::Fabric& got,
                                    const std::string& label) {
  EXPECT_EQ(want.fault_stats(), got.fault_stats()) << label;
  EXPECT_EQ(want.fault_log_dropped(), got.fault_log_dropped()) << label;
  const auto& lw = want.fault_log();
  const auto& lg = got.fault_log();
  ASSERT_EQ(lw.size(), lg.size()) << label;
  for (std::size_t i = 0; i < lw.size(); ++i) {
    EXPECT_EQ(lw[i], lg[i]) << label << " fault event " << i;
  }
  for (int y = 0; y < want.height(); ++y) {
    for (int x = 0; x < want.width(); ++x) {
      EXPECT_EQ(want.fault_injections(x, y), got.fault_injections(x, y))
          << label << " tile (" << x << "," << y << ")";
    }
  }
}

} // namespace wss::testsupport
