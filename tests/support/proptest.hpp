#pragma once

// Minimal seeded property-testing support for the repository's fuzz-style
// tests. Promotes the ad-hoc "Rng rng(2026); for (trial...)" loops into a
// harness that:
//
//   * derives an independent, reproducible seed per case from a base seed,
//   * exposes a `scale` in [1, 100] that Case::size() uses to shrink sized
//     choices (fabric extents, vector lengths, stream counts),
//   * on the first failing case, replays the same seed at smaller scales
//     and reports the smallest (seed, scale) pair that still fails, plus
//     the WSS_PROPTEST_SEED / WSS_PROPTEST_SCALE environment variables
//     that replay exactly that case in isolation.
//
// Usage:
//
//   proptest::check("routes deliver in order", [](proptest::Case& c) {
//     const int w = c.size(3, 8);          // shrinks with the case scale
//     const int len = c.size(4, 31);
//     Rng& rng = c.rng();                  // reproducible per-case stream
//     ... EXPECT_*/ASSERT_* as usual ...
//   }, {.cases = 6, .seed = 2026});
//
// Reproduce a reported failure with:
//   WSS_PROPTEST_SEED=<seed> [WSS_PROPTEST_SCALE=<scale>] ./test_binary ...

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>

#include "common/env.hpp"
#include "common/rng.hpp"

namespace wss::proptest {

struct Params {
  int cases = 8;            ///< random cases to run when no seed is pinned
  std::uint64_t seed = 1;   ///< base seed; per-case seeds derive from it
};

/// One property-test case: a deterministic RNG stream plus a shrink scale.
class Case {
public:
  Case(std::uint64_t seed, int scale)
      : rng_(seed), seed_(seed), scale_(std::clamp(scale, 1, 100)) {}

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] int scale() const { return scale_; }

  /// Random integer in [lo, hi], with the upper end shrunk toward `lo` as
  /// the scale decreases (scale 100 = full range, scale 1 ~ lo). Use for
  /// every "how big" decision so failing cases minimize automatically.
  [[nodiscard]] int size(int lo, int hi) {
    const int span = std::max(0, hi - lo);
    const int scaled = span * scale_ / 100;
    return lo + static_cast<int>(rng_.below(static_cast<std::uint64_t>(scaled) + 1));
  }

  /// Uniform double in [lo, hi) (not scale-dependent).
  [[nodiscard]] double uniform(double lo, double hi) {
    return rng_.uniform(lo, hi);
  }

private:
  Rng rng_;
  std::uint64_t seed_;
  int scale_;
};

namespace detail {

/// SplitMix64 — decorrelates per-case seeds from consecutive indices.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Run `body` capturing gtest failures instead of reporting them.
/// Returns true if the case failed.
inline bool failed_quietly(const std::function<void(Case&)>& body,
                           std::uint64_t seed, int scale,
                           std::string* first_message) {
  ::testing::TestPartResultArray results;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ALL_THREADS,
        &results);
    Case c(seed, scale);
    body(c);
  }
  for (int i = 0; i < results.size(); ++i) {
    if (results.GetTestPartResult(i).failed()) {
      if (first_message != nullptr) {
        *first_message = results.GetTestPartResult(i).message();
      }
      return true;
    }
  }
  return false;
}

} // namespace detail

/// Run `body` over `p.cases` derived seeds. On the first failure, shrink
/// (replay the same seed at decreasing scales), then re-run the minimal
/// failing case with normal gtest reporting and emit a reproduction line.
/// If WSS_PROPTEST_SEED is set, run exactly that case instead (scale from
/// WSS_PROPTEST_SCALE, default 100).
inline void check(const std::string& name,
                  const std::function<void(Case&)>& body, Params p = {}) {
  if (wss::env::is_set("WSS_PROPTEST_SEED")) {
    const std::uint64_t seed = wss::env::parse_u64("WSS_PROPTEST_SEED", 0);
    const int scale =
        static_cast<int>(wss::env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100));
    SCOPED_TRACE("property '" + name + "' pinned case: seed=" +
                 std::to_string(seed) + " scale=" + std::to_string(scale));
    Case c(seed, scale);
    body(c);
    return;
  }

  for (int i = 0; i < p.cases; ++i) {
    const std::uint64_t seed = detail::mix(p.seed + static_cast<std::uint64_t>(i));
    std::string message;
    if (!detail::failed_quietly(body, seed, 100, &message)) continue;

    // Shrink: same seed, smaller sized choices. Keep the smallest scale
    // that still fails.
    int failing_scale = 100;
    for (const int scale : {50, 25, 12, 6, 3, 1}) {
      if (detail::failed_quietly(body, seed, scale, nullptr)) {
        failing_scale = scale;
      }
    }

    // Replay the minimal case with real reporting so the underlying
    // EXPECT/ASSERT failures land in the test output.
    {
      SCOPED_TRACE("property '" + name + "' minimal failing case: seed=" +
                   std::to_string(seed) +
                   " scale=" + std::to_string(failing_scale));
      Case c(seed, failing_scale);
      body(c);
    }
    ADD_FAILURE() << "property '" << name << "' failed (case " << i + 1
                  << " of " << p.cases << ").\n  reproduce with: "
                  << "WSS_PROPTEST_SEED=" << seed
                  << " WSS_PROPTEST_SCALE=" << failing_scale
                  << "\n  first failure at full scale was:\n"
                  << message;
    return; // stop at the first failing case
  }
}

} // namespace wss::proptest
