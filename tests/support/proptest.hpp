#pragma once

// Minimal seeded property-testing support for the repository's fuzz-style
// tests. Promotes the ad-hoc "Rng rng(2026); for (trial...)" loops into a
// harness that:
//
//   * derives an independent, reproducible seed per case from a base seed,
//   * exposes a `scale` in [1, 100] that Case::size() uses to shrink sized
//     choices (fabric extents, vector lengths, stream counts),
//   * on the first failing case, replays the same seed at smaller scales
//     and reports the smallest (seed, scale) pair that still fails, plus
//     the WSS_PROPTEST_SEED / WSS_PROPTEST_SCALE environment variables
//     that replay exactly that case in isolation.
//
// Usage:
//
//   proptest::check("routes deliver in order", [](proptest::Case& c) {
//     const int w = c.size(3, 8);          // shrinks with the case scale
//     const int len = c.size(4, 31);
//     Rng& rng = c.rng();                  // reproducible per-case stream
//     ... EXPECT_*/ASSERT_* as usual ...
//   }, {.cases = 6, .seed = 2026});
//
// Reproduce a reported failure with:
//   WSS_PROPTEST_SEED=<seed> [WSS_PROPTEST_SCALE=<scale>] ./test_binary ...

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "wse/fabric.hpp"

namespace wss::proptest {

struct Params {
  int cases = 8;            ///< random cases to run when no seed is pinned
  std::uint64_t seed = 1;   ///< base seed; per-case seeds derive from it
};

/// One property-test case: a deterministic RNG stream plus a shrink scale.
class Case {
public:
  Case(std::uint64_t seed, int scale)
      : rng_(seed), seed_(seed), scale_(std::clamp(scale, 1, 100)) {}

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] int scale() const { return scale_; }

  /// Random integer in [lo, hi], with the upper end shrunk toward `lo` as
  /// the scale decreases (scale 100 = full range, scale 1 ~ lo). Use for
  /// every "how big" decision so failing cases minimize automatically.
  [[nodiscard]] int size(int lo, int hi) {
    const int span = std::max(0, hi - lo);
    const int scaled = span * scale_ / 100;
    return lo + static_cast<int>(rng_.below(static_cast<std::uint64_t>(scaled) + 1));
  }

  /// Uniform double in [lo, hi) (not scale-dependent).
  [[nodiscard]] double uniform(double lo, double hi) {
    return rng_.uniform(lo, hi);
  }

private:
  Rng rng_;
  std::uint64_t seed_;
  int scale_;
};

namespace detail {

/// SplitMix64 — decorrelates per-case seeds from consecutive indices.
inline std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Run `body` capturing gtest failures instead of reporting them.
/// Returns true if the case failed.
inline bool failed_quietly(const std::function<void(Case&)>& body,
                           std::uint64_t seed, int scale,
                           std::string* first_message) {
  ::testing::TestPartResultArray results;
  {
    ::testing::ScopedFakeTestPartResultReporter reporter(
        ::testing::ScopedFakeTestPartResultReporter::
            INTERCEPT_ALL_THREADS,
        &results);
    Case c(seed, scale);
    body(c);
  }
  for (int i = 0; i < results.size(); ++i) {
    if (results.GetTestPartResult(i).failed()) {
      if (first_message != nullptr) {
        *first_message = results.GetTestPartResult(i).message();
      }
      return true;
    }
  }
  return false;
}

} // namespace detail

/// Run `body` over `p.cases` derived seeds. On the first failure, shrink
/// (replay the same seed at decreasing scales), then re-run the minimal
/// failing case with normal gtest reporting and emit a reproduction line.
/// If WSS_PROPTEST_SEED is set, run exactly that case instead (scale from
/// WSS_PROPTEST_SCALE, default 100).
inline void check(const std::string& name,
                  const std::function<void(Case&)>& body, Params p = {}) {
  if (wss::env::is_set("WSS_PROPTEST_SEED")) {
    const std::uint64_t seed = wss::env::parse_u64("WSS_PROPTEST_SEED", 0);
    const int scale =
        static_cast<int>(wss::env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100));
    SCOPED_TRACE("property '" + name + "' pinned case: seed=" +
                 std::to_string(seed) + " scale=" + std::to_string(scale));
    Case c(seed, scale);
    body(c);
    return;
  }

  for (int i = 0; i < p.cases; ++i) {
    const std::uint64_t seed = detail::mix(p.seed + static_cast<std::uint64_t>(i));
    std::string message;
    if (!detail::failed_quietly(body, seed, 100, &message)) continue;

    // Shrink: same seed, smaller sized choices. Keep the smallest scale
    // that still fails.
    int failing_scale = 100;
    for (const int scale : {50, 25, 12, 6, 3, 1}) {
      if (detail::failed_quietly(body, seed, scale, nullptr)) {
        failing_scale = scale;
      }
    }

    // Replay the minimal case with real reporting so the underlying
    // EXPECT/ASSERT failures land in the test output.
    {
      SCOPED_TRACE("property '" + name + "' minimal failing case: seed=" +
                   std::to_string(seed) +
                   " scale=" + std::to_string(failing_scale));
      Case c(seed, failing_scale);
      body(c);
    }
    ADD_FAILURE() << "property '" << name << "' failed (case " << i + 1
                  << " of " << p.cases << ").\n  reproduce with: "
                  << "WSS_PROPTEST_SEED=" << seed
                  << " WSS_PROPTEST_SCALE=" << failing_scale
                  << "\n  first failure at full scale was:\n"
                  << message;
    return; // stop at the first failing case
  }
}

// --- seeded fabric-workload generation (backend/thread differentials) ----
//
// A Scenario is a pure value: random fabric extents, random point-to-point
// streams on disjoint colors over dimension-ordered routes, unconfigured
// hole tiles off the route paths, and an optional random fault plan.
// instantiate() is deterministic (all randomness happens in
// make_scenario), so a differential test can build N identical fabrics
// from one Scenario — one per backend or thread count — run them
// independently, and demand bit-identical observables. Sizes flow through
// Case::size, so a diverging scenario shrinks with the proptest harness.

namespace fabricgen {

/// Single-stream source: Send `len` fp16 words from host-written memory on
/// `color`, then done. (Shared by the fuzz and backend-conformance
/// suites.)
inline wse::TileProgram sender(wse::Color color, int len) {
  wse::TileProgram prog;
  wse::MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, wse::DType::F16);
  const int t_src = prog.add_tensor({buf, len, 1, wse::DType::F16, 0});
  const int f_tx = prog.add_fabric(
      {color, len, wse::DType::F16, 0, wse::kNoTask, wse::TrigAction::None});
  wse::Task t{"send", false, false, false, {}};
  wse::Instr s{};
  s.op = wse::OpKind::Send;
  s.src1 = t_src;
  s.fabric = f_tx;
  t.steps.push_back({wse::TaskStep::Kind::Sync, -1, s, wse::kNoTask});
  t.steps.push_back({wse::TaskStep::Kind::SetDone, -1, {}, wse::kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

/// Single-stream sink: receive `len` fp16 words on `channel` into memory
/// offset 0, then done.
inline wse::TileProgram receiver(int channel, int len) {
  wse::TileProgram prog;
  wse::MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, wse::DType::F16);
  const int t_dst = prog.add_tensor({buf, len, 1, wse::DType::F16, 0});
  const int f_rx = prog.add_fabric(
      {channel, len, wse::DType::F16, 0, wse::kNoTask, wse::TrigAction::None});
  wse::Task t{"recv", false, false, false, {}};
  wse::Instr r{};
  r.op = wse::OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({wse::TaskStep::Kind::Sync, -1, r, wse::kNoTask});
  t.steps.push_back({wse::TaskStep::Kind::SetDone, -1, {}, wse::kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

/// A tile that immediately raises done (pure router duty).
inline wse::TileProgram idle() {
  wse::TileProgram prog;
  wse::Task t{"idle", false, false, false, {}};
  t.steps.push_back({wse::TaskStep::Kind::SetDone, -1, {}, wse::kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  return prog;
}

/// Visit every tile on the X-then-Y dimension-ordered path from (sx, sy)
/// to (dx, dy), endpoints included.
template <typename Fn>
void walk_xy(int sx, int sy, int dx, int dy, Fn&& visit) {
  int x = sx;
  int y = sy;
  visit(x, y);
  while (x != dx) {
    x += dx > x ? 1 : -1;
    visit(x, y);
  }
  while (y != dy) {
    y += dy > y ? 1 : -1;
    visit(x, y);
  }
}

/// Add an X-then-Y dimension-ordered route for `color` from src to dst.
inline void add_xy_route(std::vector<std::vector<wse::RoutingTable>>& tables,
                         int sx, int sy, int dx, int dy, wse::Color color) {
  int x = sx;
  int y = sy;
  while (x != dx) {
    const wse::Dir dir = dx > x ? wse::Dir::East : wse::Dir::West;
    tables[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]
        .rule(color)
        .add_forward(dir);
    x += dx > x ? 1 : -1;
  }
  while (y != dy) {
    const wse::Dir dir = dy > y ? wse::Dir::South : wse::Dir::North;
    tables[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]
        .rule(color)
        .add_forward(dir);
    y += dy > y ? 1 : -1;
  }
  tables[static_cast<std::size_t>(dx)][static_cast<std::size_t>(dy)]
      .rule(color)
      .deliver_channels.push_back(color);
}

/// One point-to-point stream: `payload` is host-written at the source and
/// expected verbatim at memory offset 0 of the destination.
struct Stream {
  int sx = 0, sy = 0;
  int dx = 0, dy = 0;
  wse::Color color = 0;
  std::vector<fp16_t> payload;
};

/// A reproducible random fabric workload (see the section comment).
struct Scenario {
  int width = 0;
  int height = 0;
  std::vector<Stream> streams;
  /// Row-major (y * width + x); 0 marks an unconfigured hole tile. Holes
  /// never sit on a stream path, so they change the fabric shape without
  /// wedging a route.
  std::vector<std::uint8_t> configured;
  /// Attach to every instantiation when has_faults (the plan outlives the
  /// fabrics because the Scenario does).
  wse::FaultPlan faults;
  bool has_faults = false;
  /// run() budget: fault plans may starve a receiver, so faulted
  /// scenarios get a budget small enough to keep a wedged run cheap.
  std::uint64_t budget = 20000;

  /// Fabric::all_done() demands a done flag from EVERY tile, which an
  /// unconfigured hole can never raise — a clean run over a holed fabric
  /// therefore ends Quiescent (streams drained, nothing in flight), not
  /// AllDone. Tests pick their expected stop reason with this.
  [[nodiscard]] bool has_holes() const {
    for (const std::uint8_t c : configured) {
      if (c == 0) return true;
    }
    return false;
  }

  /// Deterministically build one fabric running this workload. Callers
  /// pick backend/threads via `sim`; payloads are already host-written.
  [[nodiscard]] wse::Fabric instantiate(const wse::CS1Params& arch,
                                        const wse::SimParams& sim) const {
    std::vector<std::vector<wse::RoutingTable>> tables(
        static_cast<std::size_t>(width),
        std::vector<wse::RoutingTable>(static_cast<std::size_t>(height)));
    for (const Stream& st : streams) {
      add_xy_route(tables, st.sx, st.sy, st.dx, st.dy, st.color);
    }
    wse::Fabric fabric(width, height, arch, sim);
    for (int x = 0; x < width; ++x) {
      for (int y = 0; y < height; ++y) {
        if (configured[static_cast<std::size_t>(y * width + x)] == 0) {
          continue;
        }
        wse::TileProgram prog = idle();
        for (const Stream& st : streams) {
          if (st.sx == x && st.sy == y) {
            prog = sender(st.color, static_cast<int>(st.payload.size()));
          }
          if (st.dx == x && st.dy == y) {
            prog = receiver(st.color, static_cast<int>(st.payload.size()));
          }
        }
        fabric.configure_tile(
            x, y, std::move(prog),
            tables[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]);
      }
    }
    for (const Stream& st : streams) {
      for (std::size_t i = 0; i < st.payload.size(); ++i) {
        fabric.core(st.sx, st.sy)
            .host_write_f16(static_cast<int>(i), st.payload[i]);
      }
    }
    return fabric;
  }
};

/// Draw a random Scenario from the case's RNG stream. One stream endpoint
/// per tile (clashing draws are skipped, the fuzz-suite rule); holes with
/// probability 1/3 among tiles no stream touches. With `with_faults`,
/// sprinkle probabilistic link drop/corrupt faults plus (sometimes) a
/// router-stall window and a dead tile — anywhere, any window, because the
/// differential contract must hold for wedged runs too.
inline Scenario make_scenario(Case& c, bool with_faults) {
  Rng& rng = c.rng();
  Scenario sc;
  sc.width = c.size(3, 8);
  sc.height = c.size(3, 8);
  const int nstreams = c.size(2, 7);
  const int len = c.size(4, 31);
  sc.budget = with_faults ? 4000 : 20000;
  const auto w64 = static_cast<std::uint64_t>(sc.width);
  const auto h64 = static_cast<std::uint64_t>(sc.height);
  const std::size_t ntiles =
      static_cast<std::size_t>(sc.width) * static_cast<std::size_t>(sc.height);
  std::vector<std::uint8_t> endpoint(ntiles, 0);
  std::vector<std::uint8_t> used(ntiles, 0);
  const auto idx = [&sc](int x, int y) {
    return static_cast<std::size_t>(y * sc.width + x);
  };
  for (int s = 0; s < nstreams; ++s) {
    Stream st;
    st.color = static_cast<wse::Color>(s);
    st.sx = static_cast<int>(rng.below(w64));
    st.sy = static_cast<int>(rng.below(h64));
    do {
      st.dx = static_cast<int>(rng.below(w64));
      st.dy = static_cast<int>(rng.below(h64));
    } while (st.dx == st.sx && st.dy == st.sy);
    if (endpoint[idx(st.sx, st.sy)] != 0 || endpoint[idx(st.dx, st.dy)] != 0) {
      continue;
    }
    endpoint[idx(st.sx, st.sy)] = 1;
    endpoint[idx(st.dx, st.dy)] = 1;
    walk_xy(st.sx, st.sy, st.dx, st.dy,
            [&](int x, int y) { used[idx(x, y)] = 1; });
    st.payload.resize(static_cast<std::size_t>(len));
    for (auto& v : st.payload) v = fp16_t(rng.uniform(-8.0, 8.0));
    sc.streams.push_back(std::move(st));
  }
  sc.configured.assign(ntiles, 1);
  for (std::size_t i = 0; i < ntiles; ++i) {
    if (used[i] == 0 && rng.below(3) == 0) sc.configured[i] = 0;
  }
  if (with_faults) {
    sc.has_faults = true;
    sc.faults.seed = c.seed();
    const int nlinks = c.size(1, 3);
    for (int i = 0; i < nlinks; ++i) {
      wse::LinkFault lf;
      lf.x = static_cast<int>(rng.below(w64));
      lf.y = static_cast<int>(rng.below(h64));
      lf.dir = static_cast<wse::Dir>(rng.below(4));
      lf.kind = rng.below(2) == 0 ? wse::FaultKind::DropWavelet
                                  : wse::FaultKind::CorruptWavelet;
      lf.probability = c.uniform(0.1, 0.9);
      lf.from_cycle = rng.below(100);
      lf.until_cycle = lf.from_cycle + 100 + rng.below(800);
      sc.faults.link_faults.push_back(lf);
    }
    if (rng.below(2) == 0) {
      wse::RouterStallFault rs;
      rs.x = static_cast<int>(rng.below(w64));
      rs.y = static_cast<int>(rng.below(h64));
      rs.from_cycle = rng.below(200);
      rs.until_cycle = rs.from_cycle + 50 + rng.below(200);
      sc.faults.router_stalls.push_back(rs);
    }
    if (rng.below(4) == 0) {
      wse::DeadTileFault dt;
      dt.x = static_cast<int>(rng.below(w64));
      dt.y = static_cast<int>(rng.below(h64));
      dt.from_cycle = 200 + rng.below(600);
      sc.faults.dead_tiles.push_back(dt);
    }
  }
  return sc;
}

} // namespace fabricgen

} // namespace wss::proptest
