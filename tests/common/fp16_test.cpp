#include "common/fp16.hpp"

#include <bit>
#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace wss {
namespace {

TEST(Fp16, KnownBitPatterns) {
  EXPECT_EQ(fp16_t(0.0).bits(), 0x0000u);
  EXPECT_EQ(fp16_t(-0.0).bits(), 0x8000u);
  EXPECT_EQ(fp16_t(1.0).bits(), 0x3C00u);
  EXPECT_EQ(fp16_t(-1.0).bits(), 0xBC00u);
  EXPECT_EQ(fp16_t(2.0).bits(), 0x4000u);
  EXPECT_EQ(fp16_t(0.5).bits(), 0x3800u);
  EXPECT_EQ(fp16_t(65504.0).bits(), 0x7BFFu); // max finite
  EXPECT_EQ(fp16_t(std::ldexp(1.0, -14)).bits(), 0x0400u); // min normal
  EXPECT_EQ(fp16_t(std::ldexp(1.0, -24)).bits(), 0x0001u); // denorm min
}

TEST(Fp16, RoundTripAllFiniteBitPatterns) {
  // Every finite binary16 value widens to double and narrows back exactly.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    if (!h.is_finite()) continue;
    const fp16_t back(h.to_double());
    if (h.is_zero()) {
      EXPECT_TRUE(back.is_zero());
      EXPECT_EQ(back.sign_bit(), h.sign_bit());
    } else {
      EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
    }
  }
}

TEST(Fp16, RoundToNearestEvenTies) {
  // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10: ties to even
  // (1.0, whose last significand bit is 0).
  EXPECT_EQ(fp16_t(1.0 + std::ldexp(1.0, -11)).bits(), 0x3C00u);
  // (1.0 + 2^-10) + 2^-11 is halfway between two values whose lower one is
  // odd: rounds up.
  EXPECT_EQ(fp16_t(1.0 + std::ldexp(1.0, -10) + std::ldexp(1.0, -11)).bits(),
            0x3C02u);
  // Just above the halfway point rounds up.
  EXPECT_EQ(fp16_t(1.0 + std::ldexp(1.0, -11) + std::ldexp(1.0, -20)).bits(),
            0x3C01u);
  // Just below rounds down.
  EXPECT_EQ(fp16_t(1.0 + std::ldexp(1.0, -11) - std::ldexp(1.0, -20)).bits(),
            0x3C00u);
}

TEST(Fp16, OverflowToInfinity) {
  EXPECT_TRUE(fp16_t(65536.0).is_inf());
  EXPECT_TRUE(fp16_t(1e30).is_inf());
  EXPECT_TRUE(fp16_t(-1e30).is_inf());
  EXPECT_TRUE(fp16_t(-1e30).sign_bit());
  // 65504 + 15.99 still rounds down to max finite; + 16 rounds to infinity.
  EXPECT_EQ(fp16_t(65519.0).bits(), 0x7BFFu);
  EXPECT_TRUE(fp16_t(65520.0).is_inf());
}

TEST(Fp16, UnderflowAndSubnormals) {
  // Below denorm_min/2 rounds to zero.
  EXPECT_TRUE(fp16_t(std::ldexp(1.0, -26)).is_zero());
  // Exactly denorm_min/2 ties to even (zero).
  EXPECT_TRUE(fp16_t(std::ldexp(1.0, -25)).is_zero());
  // 1.5 * denorm_min rounds to even (2 * 2^-24).
  EXPECT_EQ(fp16_t(1.5 * std::ldexp(1.0, -24)).bits(), 0x0002u);
  // Largest subnormal.
  const double max_sub = std::ldexp(1023.0, -24);
  EXPECT_EQ(fp16_t(max_sub).bits(), 0x03FFu);
  EXPECT_TRUE(fp16_t(max_sub).is_subnormal());
}

TEST(Fp16, NanPropagation) {
  const fp16_t nan = fp16_limits::quiet_nan();
  EXPECT_TRUE(nan.is_nan());
  EXPECT_TRUE(fp16_t(std::nan("")).is_nan());
  EXPECT_TRUE((nan + fp16_t(1.0)).is_nan());
  EXPECT_TRUE((nan * fp16_t(0.0)).is_nan());
  EXPECT_FALSE(nan == nan); // IEEE semantics
}

TEST(Fp16, ArithmeticRoundsPerOperation) {
  // 2048 + 1 = 2049 is not representable (spacing is 2 there): rounds to
  // 2048 (ties-to-even).
  EXPECT_EQ((fp16_t(2048.0) + fp16_t(1.0)).to_double(), 2048.0);
  // 2048 + 2 is exact.
  EXPECT_EQ((fp16_t(2048.0) + fp16_t(2.0)).to_double(), 2050.0);
  // Multiplication rounding: 0.1 is inexact in fp16; product rounds once.
  const fp16_t a(0.1);
  const fp16_t product = a * a;
  EXPECT_EQ(product.bits(), fp16_t(a.to_double() * a.to_double()).bits());
}

TEST(Fp16, FmacSingleRounding) {
  // Choose a, b, c so that rounding the product before the add would give a
  // different answer: a*b = 1 + 2^-11 (needs 12 bits), c = 2^-11.
  const fp16_t a(1.0 + std::ldexp(1.0, -10)); // 1 + 2^-10, exact
  const fp16_t b(1.0);
  // product exact = a; now pick c tiny so sum needs the unrounded product.
  const fp16_t c(std::ldexp(1.0, -24));
  const fp16_t fused = fmac(a, b, c);
  const double exact = a.to_double() * b.to_double() + c.to_double();
  EXPECT_EQ(fused.bits(), fp16_t(exact).bits());

  // A case distinguishing fused from separate rounding:
  // a = 1+2^-10, b2 = 1-2^-11: a*b2 = 1 + 2^-11 - 2^-21, just below the
  // rounding halfway point, so the rounded product is exactly 1.0 and the
  // separate path yields 1.0 - 1.0 = 0; the fused path keeps
  // 2^-11 - 2^-21, which is far from zero.
  const fp16_t x(1.0 + std::ldexp(1.0, -10));
  const fp16_t b2(1.0 - std::ldexp(1.0, -11));
  const fp16_t minus_one(-1.0);
  const fp16_t fused2 = fmac(x, b2, minus_one);
  const double exact2 = x.to_double() * b2.to_double() - 1.0;
  EXPECT_EQ(fused2.bits(), fp16_t(exact2).bits());
  EXPECT_GT(fused2.to_double(), 0.0);
  const fp16_t separate = (x * b2) + minus_one;
  EXPECT_EQ(separate.to_double(), 0.0);
  EXPECT_NE(separate.bits(), fused2.bits());
}

TEST(Fp16, MixedFmaMatchesFloatAccumulation) {
  const fp16_t a(0.333251953125); // representable
  const fp16_t b(1.5);
  float acc = 10.0f;
  const float expected = acc + a.to_float() * b.to_float();
  EXPECT_EQ(mixed_fma(a, b, acc), expected);
}

TEST(Fp16, UlpDistance) {
  EXPECT_EQ(fp16_ulp_distance(fp16_t(1.0), fp16_t(1.0)), 0u);
  EXPECT_EQ(fp16_ulp_distance(fp16_t::from_bits(0x3C00),
                              fp16_t::from_bits(0x3C01)),
            1u);
  // Across zero: -denorm_min to +denorm_min is 2 ulps.
  EXPECT_EQ(fp16_ulp_distance(fp16_t::from_bits(0x8001),
                              fp16_t::from_bits(0x0001)),
            2u);
  EXPECT_EQ(fp16_ulp_distance(fp16_limits::quiet_nan(), fp16_t(1.0)),
            0xFFFFFFFFu);
}

#if defined(__FLT16_MANT_DIG__)
TEST(Fp16, MatchesHardwareFloat16Conversion) {
  // Golden check against the compiler's _Float16 (binary16 with RNE).
  Rng rng(42);
  for (int i = 0; i < 200000; ++i) {
    double v = 0.0;
    switch (i % 4) {
      case 0: v = rng.uniform(-70000.0, 70000.0); break;
      case 1: v = rng.uniform(-2.0, 2.0); break;
      case 2: v = rng.uniform(-1e-4, 1e-4); break;
      default: v = std::ldexp(rng.uniform(-1.0, 1.0), static_cast<int>(rng.below(60)) - 30);
    }
    const _Float16 hw = static_cast<_Float16>(v);
    const std::uint16_t hw_bits = std::bit_cast<std::uint16_t>(hw);
    EXPECT_EQ(fp16_t(v).bits(), hw_bits) << "v=" << v;
  }
}

TEST(Fp16, ArithmeticMatchesHardwareFloat16) {
  Rng rng(43);
  for (int i = 0; i < 100000; ++i) {
    const fp16_t a(rng.uniform(-100.0, 100.0));
    const fp16_t b(rng.uniform(-100.0, 100.0));
    const _Float16 ha = std::bit_cast<_Float16>(a.bits());
    const _Float16 hb = std::bit_cast<_Float16>(b.bits());
    EXPECT_EQ((a + b).bits(), std::bit_cast<std::uint16_t>(
                                  static_cast<_Float16>(ha + hb)));
    EXPECT_EQ((a * b).bits(), std::bit_cast<std::uint16_t>(
                                  static_cast<_Float16>(ha * hb)));
    EXPECT_EQ((a - b).bits(), std::bit_cast<std::uint16_t>(
                                  static_cast<_Float16>(ha - hb)));
  }
}
#endif

TEST(Fp16, SqrtAndAbs) {
  EXPECT_EQ(sqrt(fp16_t(4.0)).to_double(), 2.0);
  EXPECT_EQ(sqrt(fp16_t(2.0)).bits(), fp16_t(std::sqrt(2.0)).bits());
  EXPECT_EQ(abs(fp16_t(-3.5)).to_double(), 3.5);
  EXPECT_EQ(abs(fp16_t(3.5)).to_double(), 3.5);
}

TEST(Fp16, Comparisons) {
  EXPECT_LT(fp16_t(1.0), fp16_t(2.0));
  EXPECT_GT(fp16_t(-1.0), fp16_t(-2.0));
  EXPECT_LE(fp16_t(1.0), fp16_t(1.0));
  EXPECT_EQ(fp16_t(0.0), fp16_t(-0.0)); // +0 == -0
}

TEST(Fp16, MachineEpsilonScale) {
  // The paper: "With this precision, machine precision is about 1e-3."
  EXPECT_NEAR(fp16_limits::epsilon().to_double(), 9.77e-4, 1e-5);
}

} // namespace
} // namespace wss
