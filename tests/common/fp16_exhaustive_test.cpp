// Exhaustive and property-based checks of the binary16 emulation: these
// sweep the full 16-bit pattern space (cheap) and large random operand
// sets, pinning down round-to-nearest-even at every boundary. The paper's
// numerics rest entirely on this layer being bit-exact.

#include <bit>
#include <cmath>
#include <gtest/gtest.h>

#include "common/fp16.hpp"
#include "common/rng.hpp"

namespace wss {
namespace {

TEST(Fp16Exhaustive, NegationIsBitExactForAllPatterns) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    const fp16_t n = -h;
    EXPECT_EQ(n.bits(), static_cast<std::uint16_t>(bits ^ 0x8000u));
  }
}

TEST(Fp16Exhaustive, AbsClearsOnlySignBit) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    EXPECT_EQ(abs(h).bits(), static_cast<std::uint16_t>(bits & 0x7FFFu));
  }
}

TEST(Fp16Exhaustive, ConversionIsMonotoneOnPositives) {
  // Widening all positive finite patterns gives a strictly increasing
  // sequence of doubles (the bit ordering is the value ordering).
  double prev = -1.0;
  for (std::uint32_t bits = 0; bits < 0x7C00u; ++bits) {
    const double v =
        fp16_t::from_bits(static_cast<std::uint16_t>(bits)).to_double();
    EXPECT_GT(v, prev) << "bits=" << bits;
    prev = v;
  }
}

TEST(Fp16Exhaustive, RoundingIsIdempotent) {
  // Rounding an already-representable value changes nothing: narrowing the
  // widened value of every finite pattern is the identity.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    if (!h.is_finite() || h.is_zero()) continue;
    EXPECT_EQ(fp16_t(h.to_double()).bits(), h.bits());
  }
}

TEST(Fp16Exhaustive, AdditionCommutesBitwise) {
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    const fp16_t a(rng.uniform(-1000.0, 1000.0));
    const fp16_t b(rng.uniform(-1000.0, 1000.0));
    EXPECT_EQ((a + b).bits(), (b + a).bits());
    EXPECT_EQ((a * b).bits(), (b * a).bits());
  }
}

TEST(Fp16Exhaustive, RoundingNeverSkipsNeighbors) {
  // For random doubles, the rounded fp16 value is one of the two
  // representable neighbors: |v - rounded| <= ulp and the other neighbor
  // is at least as far away.
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.uniform(-60000.0, 60000.0);
    const fp16_t r(v);
    const double rv = r.to_double();
    // Neighbors via bit stepping on the magnitude line.
    const std::uint16_t bits = r.bits();
    const bool positive = (bits & 0x8000u) == 0;
    const std::uint16_t mag = bits & 0x7FFFu;
    const double up = positive
                          ? fp16_t::from_bits(static_cast<std::uint16_t>(mag + 1)).to_double()
                          : fp16_t::from_bits(static_cast<std::uint16_t>(
                                                  mag == 0 ? 0 : (0x8000u | (mag - 1))))
                                .to_double();
    const double down =
        positive
            ? (mag == 0 ? -fp16_t::from_bits(1).to_double()
                        : fp16_t::from_bits(static_cast<std::uint16_t>(mag - 1)).to_double())
            : fp16_t::from_bits(static_cast<std::uint16_t>(0x8000u | (mag + 1)))
                  .to_double();
    EXPECT_LE(std::abs(v - rv), std::abs(v - up) + 1e-300) << v;
    EXPECT_LE(std::abs(v - rv), std::abs(v - down) + 1e-300) << v;
  }
}

TEST(Fp16Exhaustive, SubtractionOfEqualsIsExactZero) {
  // Sterbenz-like: a - a == +0 exactly for every finite a.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    if (!h.is_finite()) continue;
    EXPECT_TRUE((h - h).is_zero());
  }
}

TEST(Fp16Exhaustive, MultiplyByOneIsIdentity) {
  const fp16_t one(1.0);
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const fp16_t h = fp16_t::from_bits(static_cast<std::uint16_t>(bits));
    if (!h.is_finite()) continue;
    if (h.is_zero()) {
      EXPECT_TRUE((h * one).is_zero());
    } else {
      EXPECT_EQ((h * one).bits(), h.bits());
    }
  }
}

#if defined(__FLT16_MANT_DIG__)
TEST(Fp16Exhaustive, DivisionMatchesHardware) {
  Rng rng(21);
  for (int i = 0; i < 50000; ++i) {
    const fp16_t a(rng.uniform(-100.0, 100.0));
    fp16_t b(rng.uniform(-100.0, 100.0));
    if (b.is_zero()) b = fp16_t(1.0);
    const _Float16 ha = std::bit_cast<_Float16>(a.bits());
    const _Float16 hb = std::bit_cast<_Float16>(b.bits());
    EXPECT_EQ((a / b).bits(),
              std::bit_cast<std::uint16_t>(static_cast<_Float16>(ha / hb)))
        << a << " / " << b;
  }
}
#endif

} // namespace
} // namespace wss
