#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace wss {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng r(123);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowBound) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

} // namespace
} // namespace wss
