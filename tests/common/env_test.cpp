// Strict WSS_* environment parsing (common/env.hpp). Historically a typo
// like WSS_SIM_THREADS=fast was silently ignored — the run quietly went
// serial. These tests pin the new contract for every knob: unset falls
// back, garbage fails loudly naming the variable, below-minimum errors,
// above-maximum clamps.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/env.hpp"
#include "telemetry/flightrec.hpp"
#include "telemetry/postmortem.hpp"
#include "wse/fabric.hpp"
#include "wse/sim_pool.hpp"

namespace wss {
namespace {

/// Restores one environment variable on scope exit.
class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) {
      had_ = true;
      saved_ = cur;
    }
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

/// The thrown message must name the variable and echo the bad value, so a
/// failing ten-hour run says *which* knob was mistyped.
template <typename Fn>
void expect_strict_failure(const char* name, const char* value, Fn fn) {
  try {
    fn();
    FAIL() << name << "='" << value << "' should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(name), std::string::npos) << what;
    EXPECT_NE(what.find(value), std::string::npos) << what;
  }
}

// --- the primitives ------------------------------------------------------

TEST(EnvParse, IntFallbackJunkMinAndClamp) {
  EnvGuard g("WSS_TEST_INT");
  EXPECT_EQ(env::parse_int("WSS_TEST_INT", 42, 1, 100), 42); // unset
  g.set("7");
  EXPECT_EQ(env::parse_int("WSS_TEST_INT", 42, 1, 100), 7);
  g.set("100");
  EXPECT_EQ(env::parse_int("WSS_TEST_INT", 42, 1, 100), 100);
  g.set("101"); // above max: clamped, not an error
  EXPECT_EQ(env::parse_int("WSS_TEST_INT", 42, 1, 100), 100);
  for (const char* bad : {"fast", "7x", "", "0", "-3", "1e3"}) {
    g.set(bad);
    expect_strict_failure("WSS_TEST_INT", bad, [] {
      (void)env::parse_int("WSS_TEST_INT", 42, 1, 100);
    });
  }
}

TEST(EnvParse, U64RejectsNegativeAndJunk) {
  EnvGuard g("WSS_TEST_U64");
  EXPECT_EQ(env::parse_u64("WSS_TEST_U64", 9), 9u); // unset
  g.set("18446744073709551615");
  EXPECT_EQ(env::parse_u64("WSS_TEST_U64", 9),
            18446744073709551615ull);
  for (const char* bad : {"-1", "nope", "", "12 "}) {
    g.set(bad);
    expect_strict_failure("WSS_TEST_U64", bad,
                          [] { (void)env::parse_u64("WSS_TEST_U64", 9); });
  }
}

TEST(EnvParse, StringAndCstrRejectEmpty) {
  EnvGuard g("WSS_TEST_STR");
  EXPECT_EQ(env::parse_string("WSS_TEST_STR"), "");
  EXPECT_EQ(env::parse_cstr("WSS_TEST_STR"), nullptr);
  g.set("/tmp/out");
  EXPECT_EQ(env::parse_string("WSS_TEST_STR"), "/tmp/out");
  EXPECT_STREQ(env::parse_cstr("WSS_TEST_STR"), "/tmp/out");
  g.set("");
  EXPECT_THROW((void)env::parse_string("WSS_TEST_STR"), std::runtime_error);
  EXPECT_THROW((void)env::parse_cstr("WSS_TEST_STR"), std::runtime_error);
}

// --- one test per consumer-facing WSS_* variable -------------------------

TEST(EnvKnobs, SimThreads) {
  EnvGuard g("WSS_SIM_THREADS");
  EXPECT_EQ(wse::resolve_sim_threads(0), 1); // unset -> serial
  g.set("4");
  EXPECT_EQ(wse::resolve_sim_threads(0), 4);
  EXPECT_EQ(wse::resolve_sim_threads(2), 2); // explicit request wins
  g.set("9999");
  EXPECT_EQ(wse::resolve_sim_threads(0), 256); // clamp
  for (const char* bad : {"fast", "0", "-2", ""}) {
    g.set(bad);
    expect_strict_failure("WSS_SIM_THREADS", bad,
                          [] { (void)wse::resolve_sim_threads(0); });
  }
}

TEST(EnvKnobs, WatchdogCycles) {
  EnvGuard g("WSS_WATCHDOG_CYCLES");
  const wse::CS1Params arch;
  {
    wse::Fabric f(1, 1, arch, wse::SimParams{});
    EXPECT_EQ(f.watchdog(), 0u); // unset -> disabled
  }
  g.set("5000");
  {
    wse::Fabric f(1, 1, arch, wse::SimParams{});
    EXPECT_EQ(f.watchdog(), 5000u);
  }
  {
    wse::SimParams sim;
    sim.watchdog_cycles = 77; // explicit request wins over the env
    wse::Fabric f(1, 1, arch, sim);
    EXPECT_EQ(f.watchdog(), 77u);
  }
  for (const char* bad : {"soon", "-1", ""}) {
    g.set(bad);
    expect_strict_failure("WSS_WATCHDOG_CYCLES", bad, [&arch] {
      wse::Fabric f(1, 1, arch, wse::SimParams{});
    });
  }
}

TEST(EnvKnobs, FlightrecDepth) {
  EnvGuard g("WSS_FLIGHTREC_DEPTH");
  EXPECT_EQ(telemetry::flightrec_depth(),
            telemetry::FlightRecorder::kDefaultDepth);
  g.set("64");
  EXPECT_EQ(telemetry::flightrec_depth(), 64u);
  g.set("999999999");
  EXPECT_EQ(telemetry::flightrec_depth(),
            telemetry::FlightRecorder::kMaxDepth); // clamp
  for (const char* bad : {"deep", "0", "-8", ""}) {
    g.set(bad);
    expect_strict_failure("WSS_FLIGHTREC_DEPTH", bad,
                          [] { (void)telemetry::flightrec_depth(); });
  }
}

TEST(EnvKnobs, FaultStorm) {
  EnvGuard g("WSS_FAULT_STORM");
  EXPECT_EQ(telemetry::fault_storm_threshold(), 0u); // unset -> disabled
  g.set("250");
  EXPECT_EQ(telemetry::fault_storm_threshold(), 250u);
  for (const char* bad : {"lots", "-5", ""}) {
    g.set(bad);
    expect_strict_failure("WSS_FAULT_STORM", bad, [] {
      (void)telemetry::fault_storm_threshold();
    });
  }
}

TEST(EnvKnobs, PostmortemDir) {
  EnvGuard g("WSS_POSTMORTEM_DIR");
  EXPECT_EQ(telemetry::postmortem_dir(), "");
  g.set("/tmp/pm");
  EXPECT_EQ(telemetry::postmortem_dir(), "/tmp/pm");
  g.set("");
  expect_strict_failure("WSS_POSTMORTEM_DIR", "",
                        [] { (void)telemetry::postmortem_dir(); });
}

// WSS_TRACE_JSON / WSS_JSON_OUT / WSS_CSV_DIR / WSS_PROF_JSON are
// path-valued knobs whose consumers (telemetry/global.cpp,
// telemetry/bench_report.cpp, bench/bench_util.hpp, perfmodel/
// perf_report.cpp) all route through env::parse_cstr; pin the contract
// per variable name so a rename or a parser regression is caught here.
TEST(EnvKnobs, PathKnobsRejectEmptyValues) {
  for (const char* name :
       {"WSS_TRACE_JSON", "WSS_JSON_OUT", "WSS_CSV_DIR", "WSS_PROF_JSON"}) {
    EnvGuard g(name);
    EXPECT_EQ(env::parse_cstr(name), nullptr) << name;
    g.set("out.json");
    EXPECT_STREQ(env::parse_cstr(name), "out.json") << name;
    g.set("");
    expect_strict_failure(name, "", [name] { (void)env::parse_cstr(name); });
  }
}

TEST(EnvKnobs, ProptestSeedAndScale) {
  EnvGuard seed("WSS_PROPTEST_SEED");
  EnvGuard scale("WSS_PROPTEST_SCALE");
  EXPECT_FALSE(env::is_set("WSS_PROPTEST_SEED"));
  seed.set("12345");
  EXPECT_TRUE(env::is_set("WSS_PROPTEST_SEED"));
  EXPECT_EQ(env::parse_u64("WSS_PROPTEST_SEED", 0), 12345u);
  seed.set("0xbeef"); // hex was never documented; now it fails loudly
  expect_strict_failure("WSS_PROPTEST_SEED", "0xbeef", [] {
    (void)env::parse_u64("WSS_PROPTEST_SEED", 0);
  });

  EXPECT_EQ(env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100), 100);
  scale.set("25");
  EXPECT_EQ(env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100), 25);
  scale.set("400");
  EXPECT_EQ(env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100), 100); // clamp
  scale.set("0");
  expect_strict_failure("WSS_PROPTEST_SCALE", "0", [] {
    (void)env::parse_int("WSS_PROPTEST_SCALE", 100, 1, 100);
  });
}

} // namespace
} // namespace wss
