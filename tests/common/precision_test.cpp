#include "common/precision.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace wss {
namespace {

TEST(Precision, ConversionsRoundTrip) {
  EXPECT_EQ(to_double(from_double<double>(1.25)), 1.25);
  EXPECT_EQ(to_double(from_double<float>(1.25)), 1.25);
  EXPECT_EQ(to_double(from_double<fp16_t>(1.25)), 1.25);
  // Inexact value rounds on narrowing.
  EXPECT_NE(to_double(from_double<fp16_t>(0.1)), 0.1);
  EXPECT_NEAR(to_double(from_double<fp16_t>(0.1)), 0.1, 1e-4);
}

TEST(Precision, MixedDotAccumulatesInFp32) {
  // Summing N copies of a tiny value: fp16 accumulation loses them once the
  // sum grows, fp32 accumulation keeps them. This is exactly why the paper
  // uses the mixed inner product.
  const fp16_t v(0.001);
  const fp16_t one(1.0);

  MixedPrecision::dot_acc_t mixed_acc{};
  HalfPrecision::dot_acc_t half_acc{};
  // Seed both with a large value, then accumulate small products.
  mixed_acc = 8.0f;
  half_acc = fp16_t(8.0);
  for (int i = 0; i < 1000; ++i) {
    MixedPrecision::dot_step(mixed_acc, v, one);
    HalfPrecision::dot_step(half_acc, v, one);
  }
  const double mixed_err = std::abs(to_double(mixed_acc) - 9.0);
  const double half_err = std::abs(to_double(half_acc) - 9.0);
  EXPECT_LT(mixed_err, 0.05);
  EXPECT_GT(half_err, 0.5); // fp16 accumulator absorbs almost nothing
}

TEST(Precision, FmaUpdateSemantics) {
  // fp16: single rounding (FMAC).
  fp16_t y(1.0);
  const fp16_t a(1.0 + std::ldexp(1.0, -10));
  fma_update(y, a, a);
  EXPECT_EQ(y.bits(), fmac(a, a, fp16_t(1.0)).bits());

  // float: product formed exactly in double, one rounding on the update.
  float yf = 1.0f;
  fma_update(yf, 0.1f, 0.1f);
  EXPECT_EQ(yf, static_cast<float>(1.0 + static_cast<double>(0.1f) * 0.1f));

  double yd = 1.0;
  fma_update(yd, 0.5, 0.25);
  EXPECT_EQ(yd, 1.125);
}

TEST(Precision, PolicyNames) {
  EXPECT_EQ(MixedPrecision::name, "mixed-hp/sp");
  EXPECT_EQ(HalfPrecision::name, "half");
  EXPECT_EQ(SinglePrecision::name, "single");
  EXPECT_EQ(DoublePrecision::name, "double");
}

} // namespace
} // namespace wss
