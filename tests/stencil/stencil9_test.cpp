#include "stencil/stencil9.hpp"

#include <gtest/gtest.h>

#include "stencil/generators.hpp"

namespace wss {
namespace {

TEST(Stencil9, Poisson9RowSums) {
  const Grid2 g(5, 5);
  const auto a = make_poisson9(g);
  Field2<double> ones(g, 1.0);
  Field2<double> rowsum(g);
  spmv9(a, ones, rowsum);
  EXPECT_NEAR(rowsum(2, 2), 0.0, 1e-14);
  EXPECT_GT(rowsum(0, 0), 0.0);
}

TEST(Stencil9, SpmvManualExpansion) {
  const Grid2 g(3, 3);
  auto a = make_random_dominant9(g, 0.1, 7);
  Field2<double> v(g);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.5 * static_cast<double>(i) - 2.0;
  Field2<double> u(g);
  spmv9(a, v, u);
  double expected = 0.0;
  for (int k = 0; k < 9; ++k) {
    const auto [dx, dy] = kStencil9Offsets[static_cast<std::size_t>(k)];
    expected += a.coeff[static_cast<std::size_t>(k)](1, 1) * v(1 + dx, 1 + dy);
  }
  EXPECT_DOUBLE_EQ(u(1, 1), expected);
}

TEST(Stencil9, JacobiPreconditioning) {
  const Grid2 g(6, 4);
  auto a = make_random_dominant9(g, 0.5, 21);
  Field2<double> x = make_smooth_solution(g);
  Field2<double> b = make_rhs(a, x);
  Field2<double> bp = precondition_jacobi(a, b);
  EXPECT_TRUE(a.unit_diagonal);
  Field2<double> r(g);
  spmv9(a, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], bp[i], 1e-12);
  }
}

TEST(Stencil9, OffsetTableCenterIsIndex4) {
  EXPECT_EQ(kStencil9Offsets[4][0], 0);
  EXPECT_EQ(kStencil9Offsets[4][1], 0);
  // All 9 offsets distinct and within the 3x3 neighborhood.
  for (const auto& o : kStencil9Offsets) {
    EXPECT_LE(std::abs(o[0]), 1);
    EXPECT_LE(std::abs(o[1]), 1);
  }
}

} // namespace
} // namespace wss
