#include "stencil/stencil7.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "stencil/generators.hpp"

namespace wss {
namespace {

TEST(Stencil7, PoissonRowSums) {
  // Interior rows of the Laplacian sum to zero; boundary rows are positive
  // (Dirichlet dominance).
  const Grid3 g(4, 4, 4);
  const auto a = make_poisson7(g);
  Field3<double> ones(g, 1.0);
  Field3<double> rowsum(g);
  spmv7(a, ones, rowsum);
  EXPECT_EQ(rowsum(1, 1, 1), 0.0);
  EXPECT_EQ(rowsum(2, 2, 2), 0.0);
  EXPECT_GT(rowsum(0, 0, 0), 0.0);
  EXPECT_GT(rowsum(3, 3, 3), 0.0);
}

TEST(Stencil7, SpmvMatchesManualExpansion) {
  const Grid3 g(3, 3, 3);
  auto a = make_random_dominant7(g, 0.2, 11);
  Field3<double> v(g);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.1 * static_cast<double>(i) - 1.0;
  Field3<double> u(g);
  spmv7(a, v, u);
  // Expand row (1,1,1) by hand.
  const double expected = a.diag(1, 1, 1) * v(1, 1, 1) +
                          a.xp(1, 1, 1) * v(2, 1, 1) +
                          a.xm(1, 1, 1) * v(0, 1, 1) +
                          a.yp(1, 1, 1) * v(1, 2, 1) +
                          a.ym(1, 1, 1) * v(1, 0, 1) +
                          a.zp(1, 1, 1) * v(1, 1, 2) +
                          a.zm(1, 1, 1) * v(1, 1, 0);
  EXPECT_DOUBLE_EQ(u(1, 1, 1), expected);
}

TEST(Stencil7, JacobiPreconditioningUnitDiagonal) {
  const Grid3 g(4, 3, 5);
  auto a = make_random_dominant7(g, 0.3, 3);
  Field3<double> x(g);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(0.3 * static_cast<double>(i));
  Field3<double> b = make_rhs(a, x);

  // Preconditioned system has the same solution.
  auto ap = a;
  Field3<double> bp = precondition_jacobi(ap, b);
  EXPECT_TRUE(ap.unit_diagonal);
  for (std::size_t i = 0; i < ap.num_points(); ++i) {
    EXPECT_EQ(ap.diag[i], 1.0);
  }
  Field3<double> r(g);
  spmv7(ap, x, r);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(r[i], bp[i], 1e-12);
  }
  EXPECT_EQ(ap.stored_diagonals(), 6);
  EXPECT_EQ(a.stored_diagonals(), 7);
}

TEST(Stencil7, ConvertToFp16RoundsCoefficients) {
  const Grid3 g(2, 2, 2);
  auto a = make_poisson7(g);
  const auto h = convert_stencil<fp16_t>(a);
  EXPECT_EQ(h.diag(0, 0, 0).to_double(), 6.0);
  EXPECT_EQ(h.xp(1, 1, 1).to_double(), -1.0);
}

TEST(Stencil7, DirichletClosure) {
  // A vector supported only at a corner: SpMV spreads to face neighbors
  // only, never wraps around.
  const Grid3 g(3, 3, 3);
  const auto a = make_poisson7(g);
  Field3<double> v(g, 0.0);
  v(0, 0, 0) = 1.0;
  Field3<double> u(g);
  spmv7(a, v, u);
  EXPECT_EQ(u(0, 0, 0), 6.0);
  EXPECT_EQ(u(1, 0, 0), -1.0);
  EXPECT_EQ(u(0, 1, 0), -1.0);
  EXPECT_EQ(u(0, 0, 1), -1.0);
  EXPECT_EQ(u(2, 0, 0), 0.0);
  EXPECT_EQ(u(2, 2, 2), 0.0);
}

} // namespace
} // namespace wss
