#include "stencil/generators.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace wss {
namespace {

/// Diagonal dominance factor: min over rows of |diag| / sum |offdiag|.
double dominance_factor(const Stencil7<double>& a) {
  double worst = 1e300;
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    const double off = std::abs(a.xp[i]) + std::abs(a.xm[i]) +
                       std::abs(a.yp[i]) + std::abs(a.ym[i]) +
                       std::abs(a.zp[i]) + std::abs(a.zm[i]);
    worst = std::min(worst, std::abs(a.diag[i]) / off);
  }
  return worst;
}

TEST(Generators, ConvectionDiffusionIsNonsymmetric) {
  const Grid3 g(4, 4, 4);
  const auto a = make_convection_diffusion7(g, 2.0, 0.0, 0.0);
  // Upwinding loads the upstream coefficient: xm gets the convective flux.
  EXPECT_LT(a.xm(1, 1, 1), a.xp(1, 1, 1)); // more negative upstream
  EXPECT_NE(a.xp(1, 1, 1), a.xm(1, 1, 1));
  // y and z untouched by this velocity.
  EXPECT_EQ(a.yp(1, 1, 1), a.ym(1, 1, 1));
}

TEST(Generators, ConvectionDiffusionDominant) {
  const auto a = make_convection_diffusion7(Grid3(3, 3, 3), 1.0, -2.0, 0.5);
  EXPECT_GE(dominance_factor(a), 1.0);
}

TEST(Generators, MomentumLikeDominance) {
  const auto a = make_momentum_like7(Grid3(5, 5, 5), 0.5, 42);
  EXPECT_GE(dominance_factor(a), 1.49);
}

TEST(Generators, MomentumLikeDeterministic) {
  const auto a = make_momentum_like7(Grid3(3, 3, 3), 0.2, 9);
  const auto b = make_momentum_like7(Grid3(3, 3, 3), 0.2, 9);
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    EXPECT_EQ(a.diag[i], b.diag[i]);
    EXPECT_EQ(a.xp[i], b.xp[i]);
  }
}

TEST(Generators, RandomDominantRespectsFactor) {
  const auto a = make_random_dominant7(Grid3(4, 4, 4), 0.25, 17);
  EXPECT_GE(dominance_factor(a), 1.249);
  EXPECT_LE(dominance_factor(a), 1.251);
}

TEST(Generators, SmoothSolutionVanishesNowhereInside) {
  const auto u = make_smooth_solution(Grid3(5, 5, 5));
  for (const double v : u) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Generators, RhsConsistentWithSolution) {
  const Grid3 g(4, 4, 4);
  const auto a = make_poisson7(g);
  const auto x = make_smooth_solution(g);
  const auto b = make_rhs(a, x);
  Field3<double> ax(g);
  spmv7(a, x, ax);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], ax[i]);
  }
}

} // namespace
} // namespace wss
