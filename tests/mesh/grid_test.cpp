#include "mesh/grid.hpp"

#include <gtest/gtest.h>

namespace wss {
namespace {

TEST(Grid3, SizeAndIndexing) {
  const Grid3 g(4, 5, 6);
  EXPECT_EQ(g.size(), 120u);
  EXPECT_EQ(g.index(0, 0, 0), 0u);
  EXPECT_EQ(g.index(0, 0, 1), 1u); // z fastest
  EXPECT_EQ(g.index(0, 1, 0), 6u);
  EXPECT_EQ(g.index(1, 0, 0), 30u);
  EXPECT_EQ(g.index(3, 4, 5), 119u);
}

TEST(Grid3, IndexIsBijective) {
  const Grid3 g(3, 4, 5);
  std::vector<bool> seen(g.size(), false);
  for (int x = 0; x < g.nx; ++x) {
    for (int y = 0; y < g.ny; ++y) {
      for (int z = 0; z < g.nz; ++z) {
        const std::size_t i = g.index(x, y, z);
        ASSERT_LT(i, g.size());
        EXPECT_FALSE(seen[i]);
        seen[i] = true;
      }
    }
  }
}

TEST(Grid3, Contains) {
  const Grid3 g(2, 3, 4);
  EXPECT_TRUE(g.contains(0, 0, 0));
  EXPECT_TRUE(g.contains(1, 2, 3));
  EXPECT_FALSE(g.contains(-1, 0, 0));
  EXPECT_FALSE(g.contains(2, 0, 0));
  EXPECT_FALSE(g.contains(0, 3, 0));
  EXPECT_FALSE(g.contains(0, 0, 4));
}

TEST(Grid3, PaperHeadlineMesh) {
  const Grid3 g(600, 595, 1536);
  EXPECT_EQ(g.size(), 600ull * 595 * 1536);
  EXPECT_EQ(g.size(), 548352000u); // ~548M meshpoints
}

TEST(Grid2, SizeAndIndexing) {
  const Grid2 g(3, 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.index(0, 0), 0u);
  EXPECT_EQ(g.index(0, 1), 1u); // y fastest
  EXPECT_EQ(g.index(1, 0), 4u);
  EXPECT_EQ(g.index(2, 3), 11u);
}

TEST(Grid2, Contains) {
  const Grid2 g(2, 2);
  EXPECT_TRUE(g.contains(1, 1));
  EXPECT_FALSE(g.contains(2, 1));
  EXPECT_FALSE(g.contains(-1, 0));
}

} // namespace
} // namespace wss
