#include "mesh/partition.hpp"

#include <gtest/gtest.h>

namespace wss {
namespace {

TEST(Split1, CoversWithoutOverlap) {
  for (int n : {1, 7, 100, 601}) {
    for (int p : {1, 2, 3, 8, 17}) {
      if (p > n) continue;
      int covered = 0;
      int prev_end = 0;
      for (int r = 0; r < p; ++r) {
        const Span1 s = split1(n, p, r);
        EXPECT_EQ(s.begin, prev_end);
        EXPECT_GE(s.count(), n / p);
        EXPECT_LE(s.count(), n / p + 1);
        covered += s.count();
        prev_end = s.end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Block3, CountsMatchMesh) {
  const Grid3 g(10, 11, 12);
  std::size_t total = 0;
  for (int rx = 0; rx < 2; ++rx) {
    for (int ry = 0; ry < 3; ++ry) {
      for (int rz = 0; rz < 2; ++rz) {
        total += block3(g, 2, 3, 2, rx, ry, rz).count();
      }
    }
  }
  EXPECT_EQ(total, g.size());
}

TEST(ProcessGrid, ExactFactorization) {
  const auto pg = choose_process_grid(Grid3(600, 600, 600), 1024);
  EXPECT_EQ(pg[0] * pg[1] * pg[2], 1024);
}

TEST(ProcessGrid, PrefersBalancedDecomposition) {
  // For a cubic mesh and a cube-number process count the best halo area is
  // the cubic decomposition.
  const auto pg = choose_process_grid(Grid3(512, 512, 512), 512);
  EXPECT_EQ(pg[0], 8);
  EXPECT_EQ(pg[1], 8);
  EXPECT_EQ(pg[2], 8);
}

TEST(ProcessGrid, RespectsMeshLimits) {
  // Mesh too thin in z: no rank may exceed mesh extent.
  const auto pg = choose_process_grid(Grid3(1000, 1000, 2), 64);
  EXPECT_LE(pg[2], 2);
  EXPECT_EQ(pg[0] * pg[1] * pg[2], 64);
}

} // namespace
} // namespace wss
