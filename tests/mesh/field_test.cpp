#include "mesh/field.hpp"

#include <gtest/gtest.h>

#include "common/fp16.hpp"

namespace wss {
namespace {

TEST(Field3, FillAndAccess) {
  Field3<double> f(Grid3(2, 3, 4), 1.5);
  EXPECT_EQ(f.size(), 24u);
  for (const double v : f) EXPECT_EQ(v, 1.5);
  f(1, 2, 3) = 9.0;
  EXPECT_EQ(f(1, 2, 3), 9.0);
  EXPECT_EQ(f[f.grid().index(1, 2, 3)], 9.0);
}

TEST(Field3, ConvertRoundsOnce) {
  Field3<double> f(Grid3(1, 1, 3));
  f(0, 0, 0) = 0.1;
  f(0, 0, 1) = 1.0;
  f(0, 0, 2) = -2048.5;
  const auto h = convert_field<fp16_t>(f);
  EXPECT_EQ(h(0, 0, 0).bits(), fp16_t(0.1).bits());
  EXPECT_EQ(h(0, 0, 1).to_double(), 1.0);
  EXPECT_EQ(h(0, 0, 2).bits(), fp16_t(-2048.5).bits());
}

TEST(Field3, ConvertBackWidens) {
  Field3<fp16_t> h(Grid3(2, 2, 2), fp16_t(3.5));
  const auto d = convert_field<double>(h);
  for (const double v : d) EXPECT_EQ(v, 3.5);
}

TEST(Field2, FillAndAccess) {
  Field2<float> f(Grid2(3, 2), 0.25f);
  EXPECT_EQ(f.size(), 6u);
  f(2, 1) = -1.0f;
  EXPECT_EQ(f(2, 1), -1.0f);
  f.fill(2.0f);
  for (const float v : f) EXPECT_EQ(v, 2.0f);
}

} // namespace
} // namespace wss
