// Fallback-trigger matrix for the turbo backend (docs/BACKENDS.md): every
// observer that needs the reference phases' hooks — tracer, profiler,
// flight recorder, time-series sampler, watchdog, fault plan — must demote
// a turbo fabric to reference stepping while attached, re-promote after
// detachment, and leave every observable (cycles, counters, results,
// trace streams) exactly where a pure reference run puts them. Contention
// is deliberately NOT a trigger: backpressure runs natively on the fast
// path with reference semantics and is only counted. Backend selection via
// WSS_SIM_BACKEND / SimParams::backend / set_backend is covered here too.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/env_guard.hpp"
#include "support/fabric_compare.hpp"
#include "support/proptest.hpp"
#include "telemetry/flightrec.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/fabric.hpp"
#include "wse/trace.hpp"

namespace wss::wse {
namespace {

namespace fabricgen = proptest::fabricgen;
using testsupport::expect_fabric_state_identical;

std::vector<fp16_t> make_payload(int len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fp16_t> payload(static_cast<std::size_t>(len));
  for (auto& v : payload) v = fp16_t(rng.uniform(-4.0, 4.0));
  return payload;
}

/// 2x1 fabric, one east stream on color 0: sender (0,0) -> receiver (1,0).
Fabric make_stream_fabric(const std::vector<fp16_t>& payload, Backend backend,
                          int threads = 1) {
  static const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  sim.backend = backend;
  const int len = static_cast<int>(payload.size());
  std::vector<std::vector<RoutingTable>> tables(2,
                                                std::vector<RoutingTable>(1));
  fabricgen::add_xy_route(tables, 0, 0, 1, 0, 0);
  Fabric f(2, 1, arch, sim);
  f.set_watchdog(0);
  f.configure_tile(0, 0, fabricgen::sender(0, len), tables[0][0]);
  f.configure_tile(1, 0, fabricgen::receiver(0, len), tables[1][0]);
  for (int i = 0; i < len; ++i) {
    f.core(0, 0).host_write_f16(i, payload[static_cast<std::size_t>(i)]);
  }
  return f;
}

void expect_payload_delivered(const Fabric& f,
                              const std::vector<fp16_t>& payload,
                              const std::string& label) {
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(f.core(1, 0).host_read_f16(static_cast<int>(i)).bits(),
              payload[i].bits())
        << label << " word " << i;
  }
}

/// The canonical demote/re-promote experiment: 3 turbo cycles, attach the
/// trigger, 2 demoted cycles, detach, finish the run — then replay the
/// identical schedule on a reference-backend twin (attachment included,
/// when the trigger is attachable there) and demand identical observables.
template <typename Attach, typename Detach>
void check_demote_repromote(const std::string& label, Attach attach,
                            Detach detach) {
  testsupport::CleanSimEnv env;
  const std::vector<fp16_t> payload = make_payload(8, 3);

  Fabric turbo = make_stream_fabric(payload, Backend::Turbo);
  for (int i = 0; i < 3; ++i) turbo.step();
  ASSERT_TRUE(turbo.turbo_active()) << label;
  EXPECT_EQ(turbo.turbo_stats().promotions, 1u) << label;
  EXPECT_EQ(turbo.turbo_stats().turbo_cycles, 3u) << label;

  attach(turbo);
  EXPECT_FALSE(turbo.turbo_active()) << label << " (attached)";
  turbo.step();
  turbo.step();
  // Demoted cycles step the reference phases: the turbo cycle counter
  // froze, the demotion was counted once.
  EXPECT_EQ(turbo.turbo_stats().turbo_cycles, 3u) << label;
  EXPECT_EQ(turbo.turbo_stats().demotions, 1u) << label;
  EXPECT_EQ(turbo.stats().cycles, 5u) << label;

  detach(turbo);
  EXPECT_TRUE(turbo.turbo_active()) << label << " (detached)";
  (void)turbo.run(1000);
  EXPECT_TRUE(turbo.all_done()) << label;
  EXPECT_EQ(turbo.turbo_stats().promotions, 2u) << label;
  EXPECT_EQ(turbo.turbo_stats().turbo_cycles, turbo.stats().cycles - 2)
      << label;

  // Reference twin, same cycle schedule, no trigger: observers only
  // observe, so the mid-run attach/detach must be invisible in the state.
  Fabric ref = make_stream_fabric(payload, Backend::Reference);
  for (int i = 0; i < 5; ++i) ref.step();
  (void)ref.run(1000);
  EXPECT_TRUE(ref.all_done()) << label;
  expect_fabric_state_identical(ref, turbo, label);
  expect_payload_delivered(turbo, payload, label);
}

TEST(TurboFallback, TracerAttachDemotesAndRepromotes) {
  Tracer tracer(1 << 14);
  check_demote_repromote(
      "tracer", [&](Fabric& f) { f.set_tracer(&tracer); },
      [&](Fabric& f) { f.set_tracer(nullptr); });
}

TEST(TurboFallback, ProfilerAttachDemotesAndRepromotes) {
  telemetry::Profiler profiler(2, 1);
  check_demote_repromote(
      "profiler", [&](Fabric& f) { f.set_profiler(&profiler); },
      [&](Fabric& f) { f.set_profiler(nullptr); });
}

TEST(TurboFallback, FlightRecorderAttachDemotesAndRepromotes) {
  telemetry::FlightRecorder rec(2, 1, 8);
  check_demote_repromote(
      "flightrec", [&](Fabric& f) { f.set_flight_recorder(&rec); },
      [&](Fabric& f) { f.set_flight_recorder(nullptr); });
}

TEST(TurboFallback, SamplerAttachDemotesAndRepromotes) {
  telemetry::TimeSeriesSampler sampler(16);
  check_demote_repromote(
      "sampler", [&](Fabric& f) { f.set_sampler(&sampler); },
      [&](Fabric& f) { f.set_sampler(nullptr); });
}

TEST(TurboFallback, WatchdogDemotesAndClearingRepromotes) {
  check_demote_repromote(
      "watchdog", [](Fabric& f) { f.set_watchdog(100000); },
      [](Fabric& f) { f.set_watchdog(0); });
}

TEST(TurboFallback, FaultPlanAttachDemotesEvenWhenEmpty) {
  // An attached EMPTY plan changes nothing about simulated behaviour
  // (docs/ROBUSTNESS.md) — but the hooks are live, so turbo must still
  // stand down while it is attached.
  FaultPlan plan;
  check_demote_repromote(
      "empty fault plan", [&](Fabric& f) { f.set_fault_plan(&plan); },
      [](Fabric& f) { f.set_fault_plan(nullptr); });
}

TEST(TurboFallback, TracerStreamMatchesReferenceAroundDemotion) {
  // The tracer attached to a turbo-selected fabric records during the
  // demoted window; a reference fabric with the identical attach schedule
  // must record the identical stream.
  testsupport::CleanSimEnv env;
  const std::vector<fp16_t> payload = make_payload(8, 7);

  Tracer t_turbo(1 << 14);
  Fabric turbo = make_stream_fabric(payload, Backend::Turbo);
  for (int i = 0; i < 3; ++i) turbo.step();
  turbo.set_tracer(&t_turbo);
  turbo.step();
  turbo.step();
  turbo.set_tracer(nullptr);
  (void)turbo.run(1000);

  Tracer t_ref(1 << 14);
  Fabric ref = make_stream_fabric(payload, Backend::Reference);
  for (int i = 0; i < 3; ++i) ref.step();
  ref.set_tracer(&t_ref);
  ref.step();
  ref.step();
  ref.set_tracer(nullptr);
  (void)ref.run(1000);

  EXPECT_EQ(t_turbo.dropped(), t_ref.dropped());
  ASSERT_EQ(t_turbo.events().size(), t_ref.events().size());
  for (std::size_t i = 0; i < t_ref.events().size(); ++i) {
    const TraceEvent& a = t_ref.events()[i];
    const TraceEvent& b = t_turbo.events()[i];
    EXPECT_EQ(a.cycle, b.cycle) << "event " << i;
    EXPECT_EQ(a.tile_x, b.tile_x) << "event " << i;
    EXPECT_EQ(a.tile_y, b.tile_y) << "event " << i;
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind))
        << "event " << i;
    EXPECT_EQ(a.label, b.label) << "event " << i;
  }
  expect_fabric_state_identical(ref, turbo, "tracer stream");
}

// --- contention: a native fast-path event, not a demotion ---------------

/// Receiver that copies a scratch vector first (a deliberate delay), so
/// the sender's stream backs up through ramp, input latch, and output
/// queue while the receiver is busy — guaranteed route-phase backpressure.
TileProgram delayed_receiver(int channel, int len, int delay_elems) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  // Receive buffer first: the payload checks read from halfword offset 0.
  const int buf = mem.allocate(len, DType::F16);
  const int scratch_a = mem.allocate(delay_elems, DType::F16);
  const int scratch_b = mem.allocate(delay_elems, DType::F16);
  const int t_sa = prog.add_tensor({scratch_a, delay_elems, 1, DType::F16, 0});
  const int t_sb = prog.add_tensor({scratch_b, delay_elems, 1, DType::F16, 0});
  const int t_dst = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_rx = prog.add_fabric(
      {channel, len, DType::F16, 0, kNoTask, TrigAction::None});
  Task t{"delayed_recv", false, false, false, {}};
  Instr cp{};
  cp.op = OpKind::CopyV;
  cp.dst = t_sb;
  cp.src1 = t_sa;
  t.steps.push_back({TaskStep::Kind::Sync, -1, cp, kNoTask});
  Instr r{};
  r.op = OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, r, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

TEST(TurboFallback, ContentionStaysOnTheFastPath) {
  testsupport::CleanSimEnv env;
  static const CS1Params arch;
  const std::vector<fp16_t> payload = make_payload(31, 13);
  const int len = static_cast<int>(payload.size());

  const auto build = [&](Backend backend) {
    SimParams sim;
    sim.sim_threads = 1;
    sim.backend = backend;
    std::vector<std::vector<RoutingTable>> tables(
        2, std::vector<RoutingTable>(1));
    fabricgen::add_xy_route(tables, 0, 0, 1, 0, 0);
    Fabric f(2, 1, arch, sim);
    f.set_watchdog(0);
    f.configure_tile(0, 0, fabricgen::sender(0, len), tables[0][0]);
    f.configure_tile(1, 0, delayed_receiver(0, len, /*delay_elems=*/256),
                     tables[1][0]);
    for (int i = 0; i < len; ++i) {
      f.core(0, 0).host_write_f16(i, payload[static_cast<std::size_t>(i)]);
    }
    return f;
  };

  Fabric turbo = build(Backend::Turbo);
  (void)turbo.run(5000);
  ASSERT_TRUE(turbo.all_done());
  // Backpressure happened, was counted — and never left the fast path.
  EXPECT_GT(turbo.turbo_stats().contended_tile_cycles, 0u);
  EXPECT_EQ(turbo.turbo_stats().demotions, 0u);
  EXPECT_EQ(turbo.turbo_stats().turbo_cycles, turbo.stats().cycles);

  Fabric ref = build(Backend::Reference);
  (void)ref.run(5000);
  ASSERT_TRUE(ref.all_done());
  expect_fabric_state_identical(ref, turbo, "contention");
  expect_payload_delivered(turbo, payload, "contention");
}

TEST(TurboFallback, ParkedOceanIsCountedAndBitExact) {
  // One corner-to-corner stream on a 6x6 fabric: the other 34 tiles raise
  // done immediately and must spend the rest of the run parked.
  testsupport::CleanSimEnv env;
  fabricgen::Scenario sc;
  sc.width = 6;
  sc.height = 6;
  sc.configured.assign(36, 1);
  fabricgen::Stream st;
  st.sx = 0;
  st.sy = 0;
  st.dx = 5;
  st.dy = 5;
  st.color = 0;
  st.payload = make_payload(8, 17);
  sc.streams.push_back(st);

  static const CS1Params arch;
  SimParams tur_sim;
  tur_sim.sim_threads = 1;
  tur_sim.backend = Backend::Turbo;
  Fabric turbo = sc.instantiate(arch, tur_sim);
  turbo.set_watchdog(0);
  (void)turbo.run(5000);
  ASSERT_TRUE(turbo.all_done());
  EXPECT_GT(turbo.turbo_stats().parked_tile_cycles, 0u);
  EXPECT_EQ(turbo.turbo_stats().turbo_cycles, turbo.stats().cycles);

  SimParams ref_sim;
  ref_sim.sim_threads = 1;
  ref_sim.backend = Backend::Reference;
  Fabric ref = sc.instantiate(arch, ref_sim);
  ref.set_watchdog(0);
  (void)ref.run(5000);
  expect_fabric_state_identical(ref, turbo, "parked ocean");
}

// --- backend selection --------------------------------------------------

TEST(TurboFallback, BackendResolvesFromParamsAndEnv) {
  testsupport::CleanSimEnv env;
  static const CS1Params arch;
  SimParams sim; // backend = Auto

  {
    Fabric f(2, 1, arch, sim);
    EXPECT_EQ(f.backend(), Backend::Reference); // Auto, env unset
  }
  env.backend.set("turbo");
  {
    Fabric f(2, 1, arch, sim);
    EXPECT_EQ(f.backend(), Backend::Turbo);
  }
  env.backend.set("reference");
  {
    Fabric f(2, 1, arch, sim);
    EXPECT_EQ(f.backend(), Backend::Reference);
  }
  // Empty and unknown values are hard configuration errors, not silent
  // fallbacks to the reference backend. Empty-but-set is rejected by the
  // strict env parser, unknown names by the backend resolver.
  env.backend.set("");
  EXPECT_THROW(Fabric(2, 1, arch, sim), std::runtime_error);
  env.backend.set("warp");
  EXPECT_THROW(Fabric(2, 1, arch, sim), std::invalid_argument);

  // An explicit SimParams::backend beats the environment.
  env.backend.set("reference");
  SimParams pinned = sim;
  pinned.backend = Backend::Turbo;
  {
    Fabric f(2, 1, arch, pinned);
    EXPECT_EQ(f.backend(), Backend::Turbo);
  }

  // set_backend(Auto) re-resolves against the env at call time.
  env.backend.set("turbo");
  {
    SimParams ref_params = sim;
    ref_params.backend = Backend::Reference;
    Fabric f(2, 1, arch, ref_params);
    EXPECT_EQ(f.backend(), Backend::Reference);
    f.set_backend(Backend::Auto);
    EXPECT_EQ(f.backend(), Backend::Turbo);
  }
}

TEST(TurboFallback, SetBackendMidRunIsSilentAndBitExact) {
  // Voluntary backend switches are not demotions: only observer-forced
  // fallbacks count in the stats.
  testsupport::CleanSimEnv env;
  const std::vector<fp16_t> payload = make_payload(8, 23);

  Fabric f = make_stream_fabric(payload, Backend::Turbo);
  f.step();
  f.step();
  f.set_backend(Backend::Reference);
  f.step();
  f.step();
  f.set_backend(Backend::Turbo);
  (void)f.run(1000);
  ASSERT_TRUE(f.all_done());
  EXPECT_EQ(f.turbo_stats().demotions, 0u);
  EXPECT_EQ(f.turbo_stats().promotions, 2u);

  Fabric ref = make_stream_fabric(payload, Backend::Reference);
  for (int i = 0; i < 4; ++i) ref.step();
  (void)ref.run(1000);
  expect_fabric_state_identical(ref, f, "mid-run switch");
  expect_payload_delivered(f, payload, "mid-run switch");
}

TEST(TurboFallback, ResetControlRebuildsTheMirror) {
  testsupport::CleanSimEnv env;
  const std::vector<fp16_t> payload = make_payload(8, 29);

  Fabric turbo = make_stream_fabric(payload, Backend::Turbo);
  (void)turbo.run(1000);
  ASSERT_TRUE(turbo.all_done());
  EXPECT_EQ(turbo.turbo_stats().promotions, 1u);

  // Second run over the same loaded data: reset_control drops the mirror
  // (structural mutation), the next step re-promotes.
  turbo.reset_control();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    turbo.core(0, 0).host_write_f16(static_cast<int>(i), payload[i]);
  }
  (void)turbo.run(1000);
  ASSERT_TRUE(turbo.all_done());
  EXPECT_EQ(turbo.turbo_stats().promotions, 2u);
  EXPECT_EQ(turbo.turbo_stats().demotions, 0u);

  Fabric ref = make_stream_fabric(payload, Backend::Reference);
  (void)ref.run(1000);
  ref.reset_control();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    ref.core(0, 0).host_write_f16(static_cast<int>(i), payload[i]);
  }
  (void)ref.run(1000);
  expect_fabric_state_identical(ref, turbo, "reset_control rerun");
  expect_payload_delivered(turbo, payload, "reset_control rerun");
}

} // namespace
} // namespace wss::wse
