#include "wse/trace.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

TEST(Trace, RecordsAndRenders) {
  Tracer t(16);
  t.record(3, 1, 2, TraceEventKind::TaskStart, "spmv");
  t.record(9, 1, 2, TraceEventKind::InstrComplete, "MulVV");
  t.record(9, 1, 2, TraceEventKind::TaskEnd, "spmv");
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.count(TraceEventKind::TaskStart), 1u);
  const std::string s = t.render();
  EXPECT_NE(s.find("cycle 3 (1,2) task-start spmv"), std::string::npos);
  EXPECT_NE(s.find("instr-done MulVV"), std::string::npos);
}

TEST(Trace, BoundedCapacityDrops) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(static_cast<std::uint64_t>(i), 0, 0, TraceEventKind::Stall, "");
  }
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_NE(t.render().find("6 events dropped"), std::string::npos);
}

TEST(Trace, CapturesSpmvExecution) {
  const Grid3 g(3, 3, 8);
  auto ad = make_random_dominant7(g, 0.5, 7);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(3);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

  CS1Params arch;
  SimParams sim;
  wsekernels::SpMV3DSimulation s(a, arch, sim);

  Tracer tracer(1 << 14);
  tracer.focus(1, 1); // the center tile only
  s.fabric().set_tracer(&tracer);
  (void)s.run(v);
  s.fabric().set_tracer(nullptr);

  // The center tile ran spmv, the summation task (possibly repeatedly),
  // and the completion tree; all recorded events belong to tile (1,1).
  EXPECT_GT(tracer.count(TraceEventKind::TaskStart), 3u);
  EXPECT_GT(tracer.count(TraceEventKind::InstrComplete), 5u);
  bool saw_spmv = false;
  bool saw_sum = false;
  for (const auto& e : tracer.events()) {
    EXPECT_EQ(e.tile_x, 1);
    EXPECT_EQ(e.tile_y, 1);
    if (e.kind == TraceEventKind::TaskStart && e.label == "spmv") saw_spmv = true;
    if (e.kind == TraceEventKind::TaskStart && e.label == "sumtask") saw_sum = true;
  }
  EXPECT_TRUE(saw_spmv);
  EXPECT_TRUE(saw_sum);
}

TEST(Trace, RenderHonorsLineLimit) {
  Tracer t(1 << 10);
  for (int i = 0; i < 50; ++i) {
    t.record(static_cast<std::uint64_t>(i), 0, 0,
             TraceEventKind::InstrComplete, "FmacV");
  }
  const std::string s = t.render(/*max_lines=*/10);
  std::size_t lines = 0;
  for (const char c : s) {
    if (c == '\n') ++lines;
  }
  // 10 event lines plus (at most) a truncation/summary footer.
  EXPECT_LE(lines, 12u) << s;
  EXPECT_NE(s.find("cycle 0"), std::string::npos);
  // The 11th event must not be rendered.
  EXPECT_EQ(s.find("cycle 10 "), std::string::npos) << s;
}

TEST(Trace, CountsEveryKindIndependently) {
  Tracer t;
  t.record(0, 0, 0, TraceEventKind::TaskStart, "a");
  t.record(1, 0, 0, TraceEventKind::InstrComplete, "MulVV");
  t.record(2, 0, 0, TraceEventKind::InstrComplete, "AddV");
  t.record(3, 0, 0, TraceEventKind::Stall, "");
  t.record(4, 0, 0, TraceEventKind::Stall, "");
  t.record(5, 0, 0, TraceEventKind::Stall, "");
  t.record(6, 0, 0, TraceEventKind::TaskEnd, "a");
  EXPECT_EQ(t.count(TraceEventKind::TaskStart), 1u);
  EXPECT_EQ(t.count(TraceEventKind::TaskEnd), 1u);
  EXPECT_EQ(t.count(TraceEventKind::InstrComplete), 2u);
  EXPECT_EQ(t.count(TraceEventKind::Stall), 3u);
  t.clear();
  EXPECT_EQ(t.count(TraceEventKind::Stall), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Trace, FocusFiltersOtherTiles) {
  Tracer t;
  t.focus(2, 3);
  EXPECT_TRUE(t.wants(2, 3));
  EXPECT_FALSE(t.wants(2, 4));
  EXPECT_FALSE(t.wants(0, 3));
  t.focus(-1, -1);
  EXPECT_TRUE(t.wants(5, 5));
}

} // namespace
} // namespace wss::wse
