// Flow-table invariant suite (wse/flow_table.hpp, docs/NETWORK.md). The
// observatory's attribution is only as truthful as the declaration, so
// these tests hold the builders to the route compiler's color plan:
// every (dir, color) pair carries at most one logical flow across all
// compiled route families, the stencil wrap lanes stay confined to their
// dedicated colors 18..21, and the JSON embedding of a table round-trips
// bit-for-bit (the form the wss.netflows/1 artifact carries).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/netmon.hpp"
#include "wse/flow_table.hpp"
#include "wse/route_compiler.hpp"
#include "wse/types.hpp"

namespace wss::wse {
namespace {

/// Every (dir, color) pair a table claims for a non-control flow.
std::map<std::pair<int, int>, std::string> claims(const FlowTable& t) {
  std::map<std::pair<int, int>, std::string> out;
  for (const Dir d : kMeshDirs) {
    for (int c = 0; c < kNumColors; ++c) {
      const int f = t.flow_at(d, static_cast<Color>(c));
      if (f != kFlowControl) {
        out[{static_cast<int>(d), c}] = t.flow_name(f);
      }
    }
  }
  return out;
}

TEST(FlowTable, DefaultsToControlEverywhere) {
  const FlowTable t;
  EXPECT_EQ(t.flow_count(), 1);
  EXPECT_EQ(t.flow_name(kFlowControl), "control");
  EXPECT_TRUE(claims(t).empty());
}

TEST(FlowTable, BindRefusesDoubleBooking) {
  FlowTable t;
  EXPECT_TRUE(t.bind(Dir::East, Color{3}, "a"));
  // Re-binding the same pair to the same flow is an idempotent success.
  EXPECT_TRUE(t.bind(Dir::East, Color{3}, "a"));
  // A different flow on a claimed pair is refused and changes nothing.
  EXPECT_FALSE(t.bind(Dir::East, Color{3}, "b"));
  EXPECT_EQ(t.flow_name(t.flow_at(Dir::East, Color{3})), "a");
  // The refused name was still interned, but the map is untouched.
  EXPECT_TRUE(claims(t).size() == 1);
}

TEST(FlowTable, BuildersNeverReuseAPairForTwoFlows) {
  // Build each compiled route family's declaration in isolation, then
  // check the claimed (dir, color) sets are pairwise disjoint — the
  // property that makes the fabric-global (non-per-tile) map truthful.
  FlowTable ar1;
  add_allreduce_flows(ar1, kAllReduceBase, "");
  FlowTable ar2;
  add_allreduce_flows(ar2, kAllReduceBase2, "2");
  const std::vector<std::map<std::pair<int, int>, std::string>> families = {
      claims(spmv_flow_table()), claims(ar1), claims(ar2)};
  for (std::size_t i = 0; i < families.size(); ++i) {
    for (std::size_t j = i + 1; j < families.size(); ++j) {
      for (const auto& [pair, name] : families[i]) {
        const auto hit = families[j].find(pair);
        EXPECT_TRUE(hit == families[j].end())
            << "pair (dir " << pair.first << ", color " << pair.second
            << ") claimed by both '" << name << "' and '" << hit->second
            << "'";
      }
    }
  }
  // The combined BiCGStab palette is exactly the union: composing the
  // builders loses no binding to the double-booking guard.
  const FlowTable combined = bicgstab_flow_table();
  std::size_t total = 0;
  for (const auto& fam : families) total += fam.size();
  EXPECT_EQ(claims(combined).size(), total);
  for (const auto& fam : families) {
    for (const auto& [pair, name] : fam) {
      const auto c = claims(combined);
      const auto hit = c.find(pair);
      ASSERT_TRUE(hit != c.end());
      EXPECT_EQ(hit->second, name);
    }
  }
}

TEST(FlowTable, SpmvRoundsSplitByAxis) {
  const FlowTable t = spmv_flow_table();
  for (int c = 0; c < kTessellationColors; ++c) {
    EXPECT_EQ(t.flow_name(t.flow_at(Dir::East, static_cast<Color>(c))),
              "spmv.x");
    EXPECT_EQ(t.flow_name(t.flow_at(Dir::West, static_cast<Color>(c))),
              "spmv.x");
    EXPECT_EQ(t.flow_name(t.flow_at(Dir::North, static_cast<Color>(c))),
              "spmv.y");
    EXPECT_EQ(t.flow_name(t.flow_at(Dir::South, static_cast<Color>(c))),
              "spmv.y");
  }
}

TEST(FlowTable, WrapLanesConfinedToDedicatedColors) {
  const FlowTable t = stencilfe_flow_table(/*periodic=*/true);
  const std::set<int> wrap_colors = {
      static_cast<int>(kStencilWrapEast), static_cast<int>(kStencilWrapWest),
      static_cast<int>(kStencilWrapSouth),
      static_cast<int>(kStencilWrapNorth)};
  for (const Dir d : kMeshDirs) {
    for (int c = 0; c < kNumColors; ++c) {
      const std::string& name = t.flow_name(t.flow_at(d, static_cast<Color>(c)));
      if (name.rfind("wrap.", 0) == 0) {
        EXPECT_TRUE(wrap_colors.count(c) != 0)
            << "wrap flow '" << name << "' escaped onto color " << c;
      }
      if (wrap_colors.count(c) != 0 &&
          t.flow_at(d, static_cast<Color>(c)) != kFlowControl) {
        EXPECT_EQ(name.rfind("wrap.", 0), 0u)
            << "non-wrap flow '" << name << "' squatting on wrap color " << c;
      }
    }
  }
  // A Dirichlet program declares no wrap lanes at all.
  const FlowTable dirichlet = stencilfe_flow_table(/*periodic=*/false);
  for (const std::string& name : dirichlet.flows()) {
    EXPECT_NE(name.rfind("wrap.", 0), 0u);
  }
}

TEST(FlowTable, JsonRoundTripIsExact) {
  for (const FlowTable& t :
       {bicgstab_flow_table(), stencilfe_flow_table(true),
        stencilfe_flow_table(false), spmv_flow_table(), FlowTable{}}) {
    telemetry::json::Writer w;
    telemetry::emit_flow_table(w, t);
    const auto parsed = telemetry::jsonparse::parse(w.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    FlowTable back;
    ASSERT_TRUE(telemetry::parse_flow_table(*parsed.value, &back));
    EXPECT_TRUE(back == t);
  }
}

TEST(FlowTable, ParseRejectsMalformedTables) {
  for (const char* bad : {
           "{}",                                  // missing both keys
           R"({"flows": ["control"]})",           // missing map
           R"({"flows": ["control"], "map": 3})", // map not an array
           R"({"flows": ["control"], "map": [[0],[0],[0]]})", // 3 dirs
       }) {
    const auto parsed = telemetry::jsonparse::parse(bad);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    FlowTable out;
    EXPECT_FALSE(telemetry::parse_flow_table(*parsed.value, &out)) << bad;
  }
}

} // namespace
} // namespace wss::wse
