// Backend-differential conformance suite (docs/BACKENDS.md): the turbo
// execution backend is a host-side fast path only — for any program, any
// fabric shape, any thread count, and any fault plan, a turbo run must be
// bit-identical to the reference interpreter in every observable: result
// memory, cycle counts, StopInfo, per-tile core/router counters, telemetry
// heatmaps, and the fault-injection record. This suite generates seeded
// random fabrics/programs/fault plans (support/proptest.hpp, fabricgen)
// and runs the real kernel programs — SpMV, AllReduce, BiCGStab, and a
// hand-built 9-point stencil halo exchange — on both backends at 1, 2, and
// 8 threads, with and without fault plans, asserting exact equality. Each
// differential also asserts the fast path actually engaged (or, with a
// fault plan attached, that it correctly never did): without that, an
// accidental demotion would make every comparison vacuously green.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "support/env_guard.hpp"
#include "support/fabric_compare.hpp"
#include "support/proptest.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

namespace fabricgen = proptest::fabricgen;
using testsupport::expect_fabric_state_identical;
using testsupport::expect_faults_identical;
using testsupport::expect_stop_identical;

constexpr int kThreadCounts[] = {1, 2, 8};

bool same_bits(float a, float b) {
  std::uint32_t ab = 0;
  std::uint32_t bb = 0;
  static_assert(sizeof ab == sizeof a);
  std::memcpy(&ab, &a, sizeof ab);
  std::memcpy(&bb, &b, sizeof bb);
  return ab == bb;
}

/// Assert the run really used the turbo fast path for every cycle: no
/// observer crept in and demoted it.
void expect_turbo_engaged(const Fabric& f, const std::string& label) {
  EXPECT_EQ(f.turbo_stats().turbo_cycles, f.stats().cycles) << label;
  EXPECT_GE(f.turbo_stats().promotions, 1u) << label;
  EXPECT_EQ(f.turbo_stats().demotions, 0u) << label;
}

// --- random generated scenarios -----------------------------------------

struct ScenarioRun {
  Fabric fabric;
  StopInfo stop;
};

ScenarioRun run_scenario(const fabricgen::Scenario& sc, Backend backend,
                         int threads) {
  // Static: the fabric keeps a pointer to the arch params beyond return.
  static const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  sim.backend = backend;
  Fabric f = sc.instantiate(arch, sim);
  f.set_watchdog(0);
  if (sc.has_faults) f.set_fault_plan(&sc.faults);
  StopInfo stop = f.run(sc.budget);
  return ScenarioRun{std::move(f), std::move(stop)};
}

/// Receiver memory (offset 0, payload length) must match bit for bit.
void expect_streams_identical(const fabricgen::Scenario& sc,
                              const Fabric& want, const Fabric& got,
                              const std::string& label) {
  for (std::size_t s = 0; s < sc.streams.size(); ++s) {
    const auto& st = sc.streams[s];
    for (std::size_t i = 0; i < st.payload.size(); ++i) {
      EXPECT_EQ(want.core(st.dx, st.dy).host_read_f16(static_cast<int>(i)).bits(),
                got.core(st.dx, st.dy).host_read_f16(static_cast<int>(i)).bits())
          << label << " stream " << s << " word " << i;
    }
  }
}

TEST(BackendConformance, RandomScenariosBitExact) {
  testsupport::CleanSimEnv env;
  proptest::check(
      "turbo == reference on random fabrics/programs",
      [](proptest::Case& pc) {
        const fabricgen::Scenario sc = fabricgen::make_scenario(pc, false);
        const ScenarioRun ref = run_scenario(sc, Backend::Reference, 1);
        // Clean scenarios always finish: holes never block a route and
        // colors are disjoint. A holed fabric can't raise all_done (holes
        // have no core), so it settles Quiescent instead.
        const StopInfo::Reason want_reason = sc.has_holes()
                                                 ? StopInfo::Reason::Quiescent
                                                 : StopInfo::Reason::AllDone;
        ASSERT_EQ(ref.stop.reason, want_reason)
            << StopInfo::to_string(ref.stop.reason);
        // Both backends must also agree with the generated ground truth.
        for (std::size_t s = 0; s < sc.streams.size(); ++s) {
          const auto& st = sc.streams[s];
          for (std::size_t i = 0; i < st.payload.size(); ++i) {
            ASSERT_EQ(
                ref.fabric.core(st.dx, st.dy)
                    .host_read_f16(static_cast<int>(i))
                    .bits(),
                st.payload[i].bits())
                << "stream " << s << " word " << i;
          }
        }
        for (const int threads : kThreadCounts) {
          const ScenarioRun tur = run_scenario(sc, Backend::Turbo, threads);
          const std::string label =
              "turbo threads=" + std::to_string(threads) + " fabric " +
              std::to_string(sc.width) + "x" + std::to_string(sc.height);
          expect_stop_identical(ref.stop, tur.stop, label);
          expect_fabric_state_identical(ref.fabric, tur.fabric, label);
          expect_streams_identical(sc, ref.fabric, tur.fabric, label);
          expect_turbo_engaged(tur.fabric, label);
        }
      },
      {.cases = 5, .seed = 20260807});
}

TEST(BackendConformance, RandomFaultPlansBitExact) {
  testsupport::CleanSimEnv env;
  proptest::check(
      "turbo == reference under random fault plans",
      [](proptest::Case& pc) {
        const fabricgen::Scenario sc = fabricgen::make_scenario(pc, true);
        const ScenarioRun ref = run_scenario(sc, Backend::Reference, 1);
        for (const int threads : {1, 8}) {
          const ScenarioRun tur = run_scenario(sc, Backend::Turbo, threads);
          const std::string label =
              "turbo+faults threads=" + std::to_string(threads) + " fabric " +
              std::to_string(sc.width) + "x" + std::to_string(sc.height);
          expect_stop_identical(ref.stop, tur.stop, label);
          expect_fabric_state_identical(ref.fabric, tur.fabric, label);
          expect_streams_identical(sc, ref.fabric, tur.fabric, label);
          expect_faults_identical(ref.fabric, tur.fabric, label);
          // A fault plan is a demotion trigger: the whole run must have
          // stepped the reference phases (that IS the conformance story
          // for faulted runs).
          EXPECT_FALSE(tur.fabric.turbo_active()) << label;
          EXPECT_EQ(tur.fabric.turbo_stats().turbo_cycles, 0u) << label;
        }
      },
      {.cases = 5, .seed = 977});
}

// --- kernel programs: SpMV ----------------------------------------------

struct SpmvCase {
  Stencil7<fp16_t> a;
  Field3<fp16_t> v;
};

SpmvCase make_spmv_case(const Grid3& g, std::uint64_t seed) {
  auto ad = make_random_dominant7(g, 0.5, seed);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  SpmvCase c{convert_stencil<fp16_t>(ad), Field3<fp16_t>(g)};
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

/// Deterministic corrupt-only plan: every wavelet crossing the marked
/// links gets a mantissa bit flipped. Corruption preserves delivery, so
/// kernel programs still finish — with wrong values that must be wrong
/// IDENTICALLY on both backends.
FaultPlan corrupt_everything_plan(int w, int h) {
  FaultPlan plan;
  plan.seed = 99;
  LinkFault east;
  east.x = w / 2;
  east.y = h / 2;
  east.dir = Dir::East;
  east.kind = FaultKind::CorruptWavelet;
  east.probability = 1.0;
  plan.link_faults.push_back(east);
  LinkFault south = east;
  south.dir = Dir::South;
  plan.link_faults.push_back(south);
  return plan;
}

TEST(BackendConformance, SpmvBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  proptest::check(
      "SpMV turbo == reference",
      [&](proptest::Case& pc) {
        const int w = pc.size(2, 7);
        const int h = pc.size(2, 7);
        const int z = pc.size(4, 20);
        const SpmvCase c = make_spmv_case(Grid3(w, h, z), pc.seed());

        SimParams ref_sim;
        ref_sim.sim_threads = 1;
        ref_sim.backend = Backend::Reference;
        wsekernels::SpMV3DSimulation ref(c.a, arch, ref_sim);
        ref.fabric().set_watchdog(0);
        const auto u_ref = ref.run(c.v);

        for (const int threads : kThreadCounts) {
          SimParams sim;
          sim.sim_threads = threads;
          sim.backend = Backend::Turbo;
          wsekernels::SpMV3DSimulation s(c.a, arch, sim);
          s.fabric().set_watchdog(0);
          const auto u = s.run(c.v);
          const std::string label = "spmv turbo threads=" +
                                    std::to_string(threads) + " fabric " +
                                    std::to_string(w) + "x" +
                                    std::to_string(h) + " z=" +
                                    std::to_string(z);
          ASSERT_EQ(u.size(), u_ref.size());
          for (std::size_t i = 0; i < u.size(); ++i) {
            ASSERT_EQ(u[i].bits(), u_ref[i].bits()) << label << " element "
                                                    << i;
          }
          EXPECT_EQ(s.last_run_cycles(), ref.last_run_cycles()) << label;
          expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
          expect_turbo_engaged(s.fabric(), label);
        }
      },
      {.cases = 3, .seed = 0xC0FFEE});
}

TEST(BackendConformance, SpmvWithFaultPlanBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  const int w = 4, h = 4, z = 12;
  const SpmvCase c = make_spmv_case(Grid3(w, h, z), 5);
  const FaultPlan plan = corrupt_everything_plan(w, h);

  SimParams ref_sim;
  ref_sim.sim_threads = 1;
  ref_sim.backend = Backend::Reference;
  wsekernels::SpMV3DSimulation ref(c.a, arch, ref_sim);
  ref.fabric().set_watchdog(0);
  ref.fabric().set_fault_plan(&plan);
  const auto u_ref = ref.run(c.v);
  // The plan must have actually fired, or this test compares nothing.
  ASSERT_GT(ref.fabric().fault_stats().wavelets_corrupted, 0u);

  for (const int threads : {1, 8}) {
    SimParams sim;
    sim.sim_threads = threads;
    sim.backend = Backend::Turbo;
    wsekernels::SpMV3DSimulation s(c.a, arch, sim);
    s.fabric().set_watchdog(0);
    s.fabric().set_fault_plan(&plan);
    const auto u = s.run(c.v);
    const std::string label =
        "spmv turbo+corrupt threads=" + std::to_string(threads);
    ASSERT_EQ(u.size(), u_ref.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      ASSERT_EQ(u[i].bits(), u_ref[i].bits()) << label << " element " << i;
    }
    expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
    expect_faults_identical(ref.fabric(), s.fabric(), label);
    EXPECT_EQ(s.fabric().turbo_stats().turbo_cycles, 0u) << label;
  }
}

// --- kernel programs: AllReduce -----------------------------------------

TEST(BackendConformance, AllReduceBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  proptest::check(
      "AllReduce turbo == reference",
      [&](proptest::Case& pc) {
        const int w = pc.size(2, 11);
        const int h = pc.size(2, 11);
        std::vector<float> contrib(static_cast<std::size_t>(w) *
                                   static_cast<std::size_t>(h));
        for (auto& v : contrib) {
          v = static_cast<float>(pc.uniform(-4.0, 4.0));
        }

        SimParams ref_sim;
        ref_sim.sim_threads = 1;
        ref_sim.backend = Backend::Reference;
        wsekernels::AllReduceSimulation ref(w, h, arch, ref_sim);
        ref.fabric().set_watchdog(0);
        const auto r_ref = ref.run(contrib);

        for (const int threads : kThreadCounts) {
          SimParams sim;
          sim.sim_threads = threads;
          sim.backend = Backend::Turbo;
          wsekernels::AllReduceSimulation s(w, h, arch, sim);
          s.fabric().set_watchdog(0);
          const auto r = s.run(contrib);
          const std::string label = "allreduce turbo threads=" +
                                    std::to_string(threads) + " fabric " +
                                    std::to_string(w) + "x" +
                                    std::to_string(h);
          EXPECT_EQ(r.cycles, r_ref.cycles) << label;
          ASSERT_EQ(r.values.size(), r_ref.values.size());
          for (std::size_t i = 0; i < r.values.size(); ++i) {
            ASSERT_TRUE(same_bits(r.values[i], r_ref.values[i]))
                << label << " value " << i;
          }
          expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
          expect_turbo_engaged(s.fabric(), label);
        }
      },
      {.cases = 3, .seed = 4242});
}

TEST(BackendConformance, AllReduceWithFaultPlanBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  const int w = 6, h = 5;
  const FaultPlan plan = corrupt_everything_plan(w, h);
  std::vector<float> contrib(static_cast<std::size_t>(w) *
                             static_cast<std::size_t>(h));
  Rng rng(11);
  for (auto& v : contrib) v = static_cast<float>(rng.uniform(-2.0, 2.0));

  SimParams ref_sim;
  ref_sim.sim_threads = 1;
  ref_sim.backend = Backend::Reference;
  wsekernels::AllReduceSimulation ref(w, h, arch, ref_sim);
  ref.fabric().set_watchdog(0);
  ref.fabric().set_fault_plan(&plan);
  const auto r_ref = ref.run(contrib);
  ASSERT_GT(ref.fabric().fault_stats().wavelets_corrupted, 0u);

  for (const int threads : {1, 8}) {
    SimParams sim;
    sim.sim_threads = threads;
    sim.backend = Backend::Turbo;
    wsekernels::AllReduceSimulation s(w, h, arch, sim);
    s.fabric().set_watchdog(0);
    s.fabric().set_fault_plan(&plan);
    const auto r = s.run(contrib);
    const std::string label =
        "allreduce turbo+corrupt threads=" + std::to_string(threads);
    EXPECT_EQ(r.cycles, r_ref.cycles) << label;
    ASSERT_EQ(r.values.size(), r_ref.values.size());
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      ASSERT_TRUE(same_bits(r.values[i], r_ref.values[i]))
          << label << " value " << i;
    }
    expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
    expect_faults_identical(ref.fabric(), s.fabric(), label);
  }
}

// --- kernel programs: BiCGStab ------------------------------------------

TEST(BackendConformance, BicgstabBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  const Grid3 g(4, 3, 8);
  auto ad = make_random_dominant7(g, 0.5, 31);
  Field3<double> bd(g, 1.0);
  (void)precondition_jacobi(ad, bd);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> b(g);
  Rng rng(32);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }

  SimParams ref_sim;
  ref_sim.sim_threads = 1;
  ref_sim.backend = Backend::Reference;
  wsekernels::BicgstabSimulation ref(a, /*iterations=*/2, arch, ref_sim);
  ref.fabric().set_watchdog(0);
  const auto r_ref = ref.run(b);

  for (const int threads : kThreadCounts) {
    SimParams sim;
    sim.sim_threads = threads;
    sim.backend = Backend::Turbo;
    wsekernels::BicgstabSimulation s(a, /*iterations=*/2, arch, sim);
    s.fabric().set_watchdog(0);
    const auto r = s.run(b);
    const std::string label =
        "bicgstab turbo threads=" + std::to_string(threads);
    EXPECT_EQ(r.cycles, r_ref.cycles) << label;
    EXPECT_EQ(r.iterations, r_ref.iterations) << label;
    ASSERT_EQ(r.x.size(), r_ref.x.size());
    for (std::size_t i = 0; i < r.x.size(); ++i) {
      ASSERT_EQ(r.x[i].bits(), r_ref.x[i].bits()) << label << " x " << i;
      ASSERT_EQ(r.r[i].bits(), r_ref.r[i].bits()) << label << " r " << i;
    }
    ASSERT_EQ(r.rho_history.size(), r_ref.rho_history.size());
    for (std::size_t i = 0; i < r.rho_history.size(); ++i) {
      ASSERT_TRUE(same_bits(r.rho_history[i], r_ref.rho_history[i]))
          << label << " rho " << i;
    }
    expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
    expect_turbo_engaged(s.fabric(), label);
  }
}

// --- kernel programs: 9-point stencil halo exchange ---------------------
//
// The paper's spmv2d works a 2D domain with a separable halo exchange:
// corner neighbors travel two one-hop legs (east/west first, then the
// row-summed values north/south). This program reproduces that shape as a
// pure fabric workload: each tile holds L fp16 values, exchanges with its
// row neighbors, accumulates a row sum, exchanges that with its column
// neighbors, and finishes with the full 9-point neighborhood sum. Colors
// are parity-split per direction so a forwarding rule and a delivery rule
// for the same color never land on one tile:
//   east sends:  color x%2       west sends:  color 2 + x%2
//   south sends: color 4 + y%2   north sends: color 6 + y%2
// Delivery channel == color. L <= 4 keeps every Send within the output
// queue depth, so sends complete without the receiver draining (no
// send-chain deadlock by construction).

TileProgram stencil9_program(int x, int y, int w, int h, int len) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int own = mem.allocate(len, DType::F16);
  const int acc = mem.allocate(len, DType::F16);
  const int res = mem.allocate(len, DType::F16);

  // Every instruction gets its own tensor descriptor: descriptors are
  // stateful (pos advances as elements stream), so reuse would leave a
  // later instruction with an exhausted view.
  const auto tensor = [&](int base) {
    return prog.add_tensor({base, len, 1, DType::F16, 0});
  };
  Task t{"stencil9", false, false, false, {}};
  const auto sync = [&](Instr in) {
    t.steps.push_back({TaskStep::Kind::Sync, -1, in, kNoTask});
  };
  const auto copy = [&](int dst_base, int src_base) {
    Instr cp{};
    cp.op = OpKind::CopyV;
    cp.dst = tensor(dst_base);
    cp.src1 = tensor(src_base);
    sync(cp);
  };
  const auto send = [&](int src_base, int color) {
    Instr s{};
    s.op = OpKind::Send;
    s.src1 = tensor(src_base);
    s.fabric = prog.add_fabric({static_cast<Color>(color), len, DType::F16, 0,
                                kNoTask, TrigAction::None});
    sync(s);
  };
  const auto recv_add = [&](int dst_base, int channel) {
    Instr r{};
    r.op = OpKind::RecvAddTo;
    r.dst = tensor(dst_base);
    r.fabric = prog.add_fabric(
        {channel, len, DType::F16, 0, kNoTask, TrigAction::None});
    sync(r);
  };

  copy(acc, own);                               // acc = own
  if (x + 1 < w) send(own, x % 2);              // own -> east neighbor
  if (x > 0) send(own, 2 + x % 2);              // own -> west neighbor
  if (x > 0) recv_add(acc, (x - 1) % 2);        // acc += west own
  if (x + 1 < w) recv_add(acc, 2 + (x + 1) % 2);  // acc += east own
  copy(res, acc);                               // res = row sum
  if (y + 1 < h) send(acc, 4 + y % 2);          // row sum -> south
  if (y > 0) send(acc, 6 + y % 2);              // row sum -> north
  if (y > 0) recv_add(res, 4 + (y - 1) % 2);    // res += north row sum
  if (y + 1 < h) recv_add(res, 6 + (y + 1) % 2);  // res += south row sum
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

RoutingTable stencil9_routes(int x, int y, int w, int h) {
  RoutingTable rt;
  if (x + 1 < w) rt.rule(static_cast<Color>(x % 2)).add_forward(Dir::East);
  if (x > 0) {
    rt.rule(static_cast<Color>(2 + x % 2)).add_forward(Dir::West);
    rt.rule(static_cast<Color>((x - 1) % 2))
        .deliver_channels.push_back((x - 1) % 2);
  }
  if (x + 1 < w) {
    rt.rule(static_cast<Color>(2 + (x + 1) % 2))
        .deliver_channels.push_back(2 + (x + 1) % 2);
  }
  if (y + 1 < h) rt.rule(static_cast<Color>(4 + y % 2)).add_forward(Dir::South);
  if (y > 0) {
    rt.rule(static_cast<Color>(6 + y % 2)).add_forward(Dir::North);
    rt.rule(static_cast<Color>(4 + (y - 1) % 2))
        .deliver_channels.push_back(4 + (y - 1) % 2);
  }
  if (y + 1 < h) {
    rt.rule(static_cast<Color>(6 + (y + 1) % 2))
        .deliver_channels.push_back(6 + (y + 1) % 2);
  }
  return rt;
}

Fabric stencil9_fabric(int w, int h, int len,
                       const std::vector<fp16_t>& values, Backend backend,
                       int threads, const CS1Params& arch) {
  SimParams sim;
  sim.sim_threads = threads;
  sim.backend = backend;
  Fabric f(w, h, arch, sim);
  f.set_watchdog(0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      f.configure_tile(x, y, stencil9_program(x, y, w, h, len),
                       stencil9_routes(x, y, w, h));
      for (int i = 0; i < len; ++i) {
        f.core(x, y).host_write_f16(
            i, values[static_cast<std::size_t>((y * w + x) * len + i)]);
      }
    }
  }
  return f;
}

/// Host mirror of the program's exact fp16 accumulation order:
/// rowsum = (own + west) + east; result = (rowsum + north) + south.
std::vector<fp16_t> stencil9_expected(int w, int h, int len,
                                      const std::vector<fp16_t>& values) {
  const auto at = [&](int x, int y, int i) {
    return values[static_cast<std::size_t>((y * w + x) * len + i)];
  };
  std::vector<fp16_t> rowsum(values.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int i = 0; i < len; ++i) {
        fp16_t s = at(x, y, i);
        if (x > 0) s = s + at(x - 1, y, i);
        if (x + 1 < w) s = s + at(x + 1, y, i);
        rowsum[static_cast<std::size_t>((y * w + x) * len + i)] = s;
      }
    }
  }
  std::vector<fp16_t> result(values.size());
  const auto rs = [&](int x, int y, int i) {
    return rowsum[static_cast<std::size_t>((y * w + x) * len + i)];
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int i = 0; i < len; ++i) {
        fp16_t s = rs(x, y, i);
        if (y > 0) s = s + rs(x, y - 1, i);
        if (y + 1 < h) s = s + rs(x, y + 1, i);
        result[static_cast<std::size_t>((y * w + x) * len + i)] = s;
      }
    }
  }
  return result;
}

TEST(BackendConformance, Stencil9ExchangeBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  proptest::check(
      "9-point stencil exchange turbo == reference",
      [&](proptest::Case& pc) {
        const int w = pc.size(2, 6);
        const int h = pc.size(2, 6);
        const int len = pc.size(1, 4);
        std::vector<fp16_t> values(
            static_cast<std::size_t>(w * h * len));
        for (auto& v : values) v = fp16_t(pc.uniform(-1.0, 1.0));
        const std::vector<fp16_t> expected =
            stencil9_expected(w, h, len, values);
        // res sits after own and acc in tile memory.
        const int res_base = 2 * len;

        Fabric ref =
            stencil9_fabric(w, h, len, values, Backend::Reference, 1, arch);
        const StopInfo ref_stop = ref.run(20000);
        ASSERT_EQ(ref_stop.reason, StopInfo::Reason::AllDone)
            << StopInfo::to_string(ref_stop.reason);
        // The program itself must compute the 9-point neighborhood sum in
        // the documented fp16 order — anchors the differential to ground
        // truth, not just to itself.
        for (int y = 0; y < h; ++y) {
          for (int x = 0; x < w; ++x) {
            for (int i = 0; i < len; ++i) {
              ASSERT_EQ(
                  ref.core(x, y).host_read_f16(res_base + i).bits(),
                  expected[static_cast<std::size_t>((y * w + x) * len + i)]
                      .bits())
                  << "tile (" << x << "," << y << ") elem " << i;
            }
          }
        }

        for (const int threads : kThreadCounts) {
          Fabric tur =
              stencil9_fabric(w, h, len, values, Backend::Turbo, threads, arch);
          const StopInfo tur_stop = tur.run(20000);
          const std::string label = "stencil9 turbo threads=" +
                                    std::to_string(threads) + " fabric " +
                                    std::to_string(w) + "x" +
                                    std::to_string(h);
          expect_stop_identical(ref_stop, tur_stop, label);
          expect_fabric_state_identical(ref, tur, label);
          for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
              for (int i = 0; i < len; ++i) {
                ASSERT_EQ(tur.core(x, y).host_read_f16(res_base + i).bits(),
                          ref.core(x, y).host_read_f16(res_base + i).bits())
                    << label << " tile (" << x << "," << y << ") elem " << i;
              }
            }
          }
          expect_turbo_engaged(tur, label);
        }
      },
      {.cases = 4, .seed = 1859});
}

TEST(BackendConformance, Stencil9WithFaultPlanBitExactAcrossBackends) {
  testsupport::CleanSimEnv env;
  const CS1Params arch;
  const int w = 5, h = 4, len = 3;
  const FaultPlan plan = corrupt_everything_plan(w, h);
  std::vector<fp16_t> values(static_cast<std::size_t>(w * h * len));
  Rng rng(21);
  for (auto& v : values) v = fp16_t(rng.uniform(-1.0, 1.0));
  const int res_base = 2 * len;

  Fabric ref = stencil9_fabric(w, h, len, values, Backend::Reference, 1, arch);
  ref.set_fault_plan(&plan);
  const StopInfo ref_stop = ref.run(20000);
  ASSERT_EQ(ref_stop.reason, StopInfo::Reason::AllDone)
      << StopInfo::to_string(ref_stop.reason);
  ASSERT_GT(ref.fault_stats().wavelets_corrupted, 0u);

  for (const int threads : {1, 8}) {
    Fabric tur = stencil9_fabric(w, h, len, values, Backend::Turbo, threads,
                                 arch);
    tur.set_fault_plan(&plan);
    const StopInfo tur_stop = tur.run(20000);
    const std::string label =
        "stencil9 turbo+corrupt threads=" + std::to_string(threads);
    expect_stop_identical(ref_stop, tur_stop, label);
    expect_fabric_state_identical(ref, tur, label);
    expect_faults_identical(ref, tur, label);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        for (int i = 0; i < len; ++i) {
          ASSERT_EQ(tur.core(x, y).host_read_f16(res_base + i).bits(),
                    ref.core(x, y).host_read_f16(res_base + i).bits())
              << label << " tile (" << x << "," << y << ") elem " << i;
        }
      }
    }
  }
}

} // namespace
} // namespace wss::wse
