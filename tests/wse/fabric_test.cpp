#include "wse/fabric.hpp"

#include <gtest/gtest.h>

namespace wss::wse {
namespace {

CS1Params small_arch() {
  CS1Params a;
  a.fabric_x = 4;
  a.fabric_y = 4;
  return a;
}

/// Build a minimal program that sends `len` fp16 words from memory on
/// `color` and completes.
TileProgram sender_program(Color color, int len) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  const int t_src = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_tx = prog.add_fabric({color, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"send", false, false, false, {}};
  Instr s{};
  s.op = OpKind::Send;
  s.src1 = t_src;
  s.fabric = f_tx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, s, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

/// Program that receives `len` fp16 words on `channel` into memory.
TileProgram receiver_program(int channel, int len, int* buf_out) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  *buf_out = buf;
  const int t_dst = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_rx = prog.add_fabric({channel, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"recv", false, false, false, {}};
  Instr r{};
  r.op = OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, r, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

TileProgram idle_program() {
  TileProgram prog;
  Task t{"idle", false, false, false, {}};
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  return prog;
}

TEST(Fabric, PointToPointEastward) {
  const CS1Params arch = small_arch();
  const SimParams sim;
  Fabric fabric(2, 1, arch, sim);

  const Color color = 3;
  const int len = 10;

  // Sender at (0,0): its routing forwards color 3 east.
  RoutingTable send_routes;
  send_routes.rule(color).add_forward(Dir::East);
  fabric.configure_tile(0, 0, sender_program(color, len), send_routes);

  // Receiver at (1,0): deliver color 3 to channel 3.
  RoutingTable recv_routes;
  recv_routes.rule(color).deliver_channels.push_back(color);
  int buf = 0;
  fabric.configure_tile(1, 0, receiver_program(color, len, &buf), recv_routes);

  for (int i = 0; i < len; ++i) {
    fabric.core(0, 0).host_write_f16(i, fp16_t(static_cast<double>(i) * 0.5));
  }
  fabric.run(1000);
  ASSERT_TRUE(fabric.all_done());
  for (int i = 0; i < len; ++i) {
    EXPECT_EQ(fabric.core(1, 0).host_read_f16(buf + i).to_double(), i * 0.5);
  }
}

TEST(Fabric, MultiHopLatencyIsAboutOneCyclePerHop) {
  const CS1Params arch = small_arch();
  const SimParams sim;
  // A 1 x N line: one word travels from the west end to the east end.
  const int n = 12;
  Fabric fabric(n, 1, arch, sim);
  const Color color = 1;

  RoutingTable send_routes;
  send_routes.rule(color).add_forward(Dir::East);
  fabric.configure_tile(0, 0, sender_program(color, 1), send_routes);
  for (int x = 1; x < n - 1; ++x) {
    RoutingTable fwd;
    fwd.rule(color).add_forward(Dir::East);
    fabric.configure_tile(x, 0, idle_program(), fwd);
  }
  RoutingTable recv_routes;
  recv_routes.rule(color).deliver_channels.push_back(color);
  int buf = 0;
  fabric.configure_tile(n - 1, 0, receiver_program(color, 1, &buf),
                        recv_routes);
  fabric.core(0, 0).host_write_f16(0, fp16_t(7.0));

  const std::uint64_t cycles = fabric.run(1000).cycles;
  ASSERT_TRUE(fabric.all_done());
  EXPECT_EQ(fabric.core(n - 1, 0).host_read_f16(buf).to_double(), 7.0);
  // n-1 hops; allow a small constant for task start and ramp traversal.
  EXPECT_LE(cycles, static_cast<std::uint64_t>(3 * (n - 1) + 16));
  EXPECT_GE(cycles, static_cast<std::uint64_t>(n - 1));
}

TEST(Fabric, MulticastFanout) {
  // Center tile broadcasts to all four neighbors at once.
  const CS1Params arch = small_arch();
  const SimParams sim;
  Fabric fabric(3, 3, arch, sim);
  const Color color = 2;
  const int len = 5;

  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      if (x == 1 && y == 1) continue;
      RoutingTable routes;
      routes.rule(color).deliver_channels.push_back(color);
      if (x == 1 || y == 1) {
        int buf = 0;
        fabric.configure_tile(x, y, receiver_program(color, len, &buf),
                              routes);
      } else {
        fabric.configure_tile(x, y, idle_program(), routes);
      }
    }
  }
  RoutingTable bcast;
  bcast.rule(color).add_forward(Dir::North);
  bcast.rule(color).add_forward(Dir::South);
  bcast.rule(color).add_forward(Dir::East);
  bcast.rule(color).add_forward(Dir::West);
  fabric.configure_tile(1, 1, sender_program(color, len), bcast);
  for (int i = 0; i < len; ++i) {
    fabric.core(1, 1).host_write_f16(i, fp16_t(static_cast<double>(i + 1)));
  }

  fabric.run(1000);
  ASSERT_TRUE(fabric.all_done());
  // All four face neighbors received identical copies (buffer offset 0 in
  // receiver_program's allocator).
  for (const auto& [x, y] :
       {std::pair{1, 0}, std::pair{1, 2}, std::pair{0, 1}, std::pair{2, 1}}) {
    for (int i = 0; i < len; ++i) {
      EXPECT_EQ(fabric.core(x, y).host_read_f16(i).to_double(), i + 1.0)
          << "neighbor (" << x << "," << y << ")";
    }
  }
}

TEST(Fabric, BackpressureDoesNotLoseWords) {
  // Small queues, long stream: every word still arrives, in order.
  const CS1Params arch = small_arch();
  SimParams sim;
  sim.router_queue_depth = 1;
  sim.ramp_queue_depth = 1;
  Fabric fabric(2, 1, arch, sim);
  const Color color = 4;
  const int len = 64;

  RoutingTable send_routes;
  send_routes.rule(color).add_forward(Dir::East);
  fabric.configure_tile(0, 0, sender_program(color, len), send_routes);
  RoutingTable recv_routes;
  recv_routes.rule(color).deliver_channels.push_back(color);
  int buf = 0;
  fabric.configure_tile(1, 0, receiver_program(color, len, &buf), recv_routes);
  for (int i = 0; i < len; ++i) {
    fabric.core(0, 0).host_write_f16(i, fp16_t(static_cast<double>(i % 31)));
  }
  fabric.run(10000);
  ASSERT_TRUE(fabric.all_done());
  for (int i = 0; i < len; ++i) {
    EXPECT_EQ(fabric.core(1, 0).host_read_f16(buf + i).to_double(),
              static_cast<double>(i % 31));
  }
}

} // namespace
} // namespace wss::wse
