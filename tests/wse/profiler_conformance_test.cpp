// Determinism contract for the cycle-attribution profiler
// (docs/PROFILING.md): a profile recorded while stepping a fabric with ANY
// host thread count is bit-identical to the serial profile — phase x
// category matrices, compute intervals, wavelet-edge logs, iteration
// marks, and the derived critical paths and JSON. Runs the full BiCGStab
// dataflow on randomized fabric shapes under tests/support/proptest.hpp
// with 1, 2, and 8 threads. This file is part of test_wse so the TSan CI
// job races the recording surface as well.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "stencil/generators.hpp"
#include "support/proptest.hpp"
#include "telemetry/profiler.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/bicgstab_program.hpp"

namespace wss::wse {
namespace {

constexpr int kThreadCounts[] = {2, 8};

struct Problem {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
  int iterations = 2;
};

Problem make_problem(int nx, int ny, int z, std::uint64_t seed,
                     int iterations) {
  const Grid3 g(nx, ny, z);
  auto ad = make_momentum_like7(g, 0.5, seed);
  auto bd = make_rhs(ad, make_smooth_solution(g));
  const auto bp = precondition_jacobi(ad, bd);
  return Problem{convert_stencil<fp16_t>(ad), convert_field<fp16_t>(bp),
                 iterations};
}

/// Run the problem with `threads` host threads and a profiler attached.
std::unique_ptr<telemetry::Profiler> run_profiled(const Problem& p,
                                                  int threads) {
  const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  auto prof = std::make_unique<telemetry::Profiler>(p.a.grid.nx, p.a.grid.ny);
  wsekernels::BicgstabSimulation s(p.a, p.iterations, arch, sim);
  s.fabric().set_profiler(prof.get());
  (void)s.run(p.b);
  s.fabric().set_profiler(nullptr);
  return prof;
}

void expect_profiles_identical(const telemetry::Profiler& want,
                               const telemetry::Profiler& got,
                               const std::string& label) {
  ASSERT_EQ(want.width(), got.width()) << label;
  ASSERT_EQ(want.height(), got.height()) << label;
  EXPECT_EQ(want.observed_cycles(), got.observed_cycles()) << label;
  for (int y = 0; y < want.height(); ++y) {
    for (int x = 0; x < want.width(); ++x) {
      const telemetry::TileProfile& a = want.tile(x, y);
      const telemetry::TileProfile& b = got.tile(x, y);
      const std::string at =
          label + " tile (" + std::to_string(x) + "," + std::to_string(y) +
          ")";
      ASSERT_EQ(a.configured, b.configured) << at;
      EXPECT_EQ(a.cycles, b.cycles) << at;
      EXPECT_EQ(a.compute_intervals, b.compute_intervals) << at;
      ASSERT_EQ(a.recvs.size(), b.recvs.size()) << at;
      for (std::size_t i = 0; i < a.recvs.size(); ++i) {
        EXPECT_EQ(a.recvs[i].recv_cycle, b.recvs[i].recv_cycle) << at;
        EXPECT_EQ(a.recvs[i].send_cycle, b.recvs[i].send_cycle) << at;
        EXPECT_EQ(a.recvs[i].src_x, b.recvs[i].src_x) << at;
        EXPECT_EQ(a.recvs[i].src_y, b.recvs[i].src_y) << at;
      }
      ASSERT_EQ(a.iter_marks.size(), b.iter_marks.size()) << at;
      for (std::size_t i = 0; i < a.iter_marks.size(); ++i) {
        EXPECT_EQ(a.iter_marks[i].iteration, b.iter_marks[i].iteration) << at;
        EXPECT_EQ(a.iter_marks[i].cycle, b.iter_marks[i].cycle) << at;
      }
      EXPECT_EQ(a.recvs_dropped, b.recvs_dropped) << at;
    }
  }
  // Byte-identical reports and identical derived analyses.
  EXPECT_EQ(want.to_json(), got.to_json()) << label;
  EXPECT_EQ(want.iteration_windows(), got.iteration_windows()) << label;
  const auto pa = telemetry::per_iteration_critical_paths(want);
  const auto pb = telemetry::per_iteration_critical_paths(got);
  ASSERT_EQ(pa.size(), pb.size()) << label;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].pretty(), pb[i].pretty()) << label;
  }
}

TEST(ProfilerConformance, BitIdenticalAcrossThreadCounts) {
  proptest::check(
      "profile(threads) == profile(serial)",
      [](proptest::Case& c) {
        const int nx = c.size(3, 7);
        const int ny = c.size(3, 7);
        const int z = 4 * c.size(1, 5);
        const int iterations = c.size(1, 3);
        const Problem p =
            make_problem(nx, ny, z, c.rng().next_u64(), iterations);
        const auto serial = run_profiled(p, 1);
        ASSERT_GT(serial->observed_cycles(), 0u);
        for (const int threads : kThreadCounts) {
          const auto par = run_profiled(p, threads);
          expect_profiles_identical(
              *serial, *par,
              std::to_string(threads) + " threads, " + std::to_string(nx) +
                  "x" + std::to_string(ny) + "x" + std::to_string(z));
        }
      },
      {.cases = 4, .seed = 2026});
}

TEST(ProfilerConformance, FixedShapeEightThreadsByteIdenticalJson) {
  // A deterministic (non-random) anchor so failures reproduce without
  // proptest replay: the exact configuration the secV bench profiles.
  const Problem p = make_problem(6, 6, 16, 7, 3);
  const auto serial = run_profiled(p, 1);
  const auto par = run_profiled(p, 8);
  EXPECT_EQ(serial->to_json(), par->to_json());
}

} // namespace
} // namespace wss::wse
