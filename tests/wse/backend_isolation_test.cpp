// Cross-backend state-leak isolation: two fabrics on different execution
// backends in one process must not contaminate each other — not in
// per-tile counters or heatmaps (the turbo SoA mirror is per-fabric, not
// global), and not in telemetry outputs (ledger entries and time-series
// artifacts stay distinct via the claim_output_stem pattern even when a
// turbo run and a reference run finish back to back).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "support/env_guard.hpp"
#include "support/fabric_compare.hpp"
#include "support/proptest.hpp"
#include "telemetry/io.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/allreduce_program.hpp"

namespace wss::wse {
namespace {

namespace fabricgen = proptest::fabricgen;
using testsupport::expect_fabric_state_identical;

std::string temp_dir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + "wss_backend_iso_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

SimParams params_for(Backend backend) {
  SimParams sim;
  sim.sim_threads = 1;
  sim.backend = backend;
  return sim;
}

TEST(BackendIsolation, InterleavedFabricsMatchTheirSoloGoldens) {
  testsupport::CleanSimEnv env;
  static const CS1Params arch;

  // Two distinct random workloads, one per backend. Holes are filled in
  // (idle tiles) so the runs end AllDone — hole semantics get their own
  // coverage in the conformance suite.
  proptest::Case case_a(1111, 100);
  proptest::Case case_b(2222, 100);
  fabricgen::Scenario sc_a =
      fabricgen::make_scenario(case_a, /*with_faults=*/false);
  fabricgen::Scenario sc_b =
      fabricgen::make_scenario(case_b, /*with_faults=*/false);
  sc_a.configured.assign(sc_a.configured.size(), 1);
  sc_b.configured.assign(sc_b.configured.size(), 1);

  // Solo goldens: each scenario run alone on its own backend.
  Fabric gold_a = sc_a.instantiate(arch, params_for(Backend::Turbo));
  gold_a.set_watchdog(0);
  (void)gold_a.run(sc_a.budget);
  ASSERT_TRUE(gold_a.all_done());
  Fabric gold_b = sc_b.instantiate(arch, params_for(Backend::Reference));
  gold_b.set_watchdog(0);
  (void)gold_b.run(sc_b.budget);
  ASSERT_TRUE(gold_b.all_done());

  // Interleaved: one cycle of A (turbo), one cycle of B (reference),
  // repeat. Any shared mutable state between the two execution backends
  // would show up as a divergence from the solo goldens.
  Fabric a = sc_a.instantiate(arch, params_for(Backend::Turbo));
  a.set_watchdog(0);
  Fabric b = sc_b.instantiate(arch, params_for(Backend::Reference));
  b.set_watchdog(0);
  for (std::uint64_t i = 0; i < sc_a.budget + sc_b.budget; ++i) {
    if (!a.all_done()) a.step();
    if (!b.all_done()) b.step();
    if (a.all_done() && b.all_done()) break;
  }
  ASSERT_TRUE(a.all_done());
  ASSERT_TRUE(b.all_done());

  expect_fabric_state_identical(gold_a, a, "interleaved turbo fabric");
  expect_fabric_state_identical(gold_b, b, "interleaved reference fabric");

  // A ran on the fast path the whole way; B never touched it.
  EXPECT_GE(a.turbo_stats().promotions, 1u);
  EXPECT_EQ(a.turbo_stats().turbo_cycles, a.stats().cycles);
  EXPECT_EQ(b.turbo_stats().promotions, 0u);
  EXPECT_EQ(b.turbo_stats().turbo_cycles, 0u);
  EXPECT_EQ(b.turbo_stats().parked_tile_cycles, 0u);
}

TEST(BackendIsolation, LedgerAndTimeseriesStayDistinctAcrossBackends) {
  // Two kernel runs in one process, one per backend, with run forensics
  // live: two ledger entries, two distinct time-series artifacts, and —
  // because the backends are conformant — identical cycle counts.
  testsupport::CleanSimEnv env;
  const std::string dir = temp_dir("ledger");
  env.sample.set("64");
  env.ledger.set(dir.c_str());
  telemetry::reset_output_stem_claims();

  static const CS1Params arch;
  std::vector<float> contributions(9, 1.0f);
  wsekernels::AllReduceSimulation turbo_sim(3, 3, arch,
                                            params_for(Backend::Turbo));
  const auto turbo_result = turbo_sim.run(contributions);
  wsekernels::AllReduceSimulation ref_sim(3, 3, arch,
                                          params_for(Backend::Reference));
  const auto ref_result = ref_sim.run(contributions);
  EXPECT_EQ(turbo_result.cycles, ref_result.cycles);

  telemetry::Ledger ledger;
  std::string error;
  ASSERT_TRUE(telemetry::load_ledger(dir, &ledger, &error)) << error;
  EXPECT_EQ(ledger.skipped_lines, 0u);
  ASSERT_EQ(ledger.runs.size(), 2u);
  EXPECT_NE(ledger.runs[0].run_id, ledger.runs[1].run_id);
  EXPECT_EQ(ledger.runs[0].cycles, ledger.runs[1].cycles);

  std::vector<std::string> series_paths;
  for (const telemetry::RunManifest& run : ledger.runs) {
    EXPECT_EQ(run.outcome, "all_done");
    EXPECT_EQ(run.width, 3);
    EXPECT_EQ(run.height, 3);
    for (const telemetry::RunArtifact& artifact : run.artifacts) {
      if (artifact.kind == "timeseries") series_paths.push_back(artifact.path);
    }
  }
  ASSERT_EQ(series_paths.size(), 2u);
  EXPECT_NE(series_paths[0], series_paths[1]);
  for (const std::string& path : series_paths) {
    telemetry::TimeSeries ts;
    ASSERT_TRUE(telemetry::load_timeseries(path, &ts, &error)) << error;
    EXPECT_TRUE(telemetry::self_check_timeseries(ts, &error)) << error;
    EXPECT_GT(ts.frames.size(), 0u);
  }
}

} // namespace
} // namespace wss::wse
