#include "wse/route_compiler.hpp"

#include <gtest/gtest.h>

namespace wss::wse {
namespace {

TEST(Tessellation, FiveColorPropertyHolds) {
  // Fig. 5: at every tile the outgoing color differs from all four incoming
  // colors and the incoming colors are pairwise distinct.
  EXPECT_EQ(verify_tessellation(8, 8), 0);
  EXPECT_EQ(verify_tessellation(5, 5), 0);
  EXPECT_EQ(verify_tessellation(13, 7), 0);
  EXPECT_EQ(verify_tessellation(602, 595), 0); // the paper's full fabric
}

TEST(Tessellation, UsesExactlyFiveColors) {
  bool used[8] = {};
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      const Color c = tessellation_color(x, y);
      ASSERT_LT(c, kTessellationColors);
      used[c] = true;
    }
  }
  for (int c = 0; c < kTessellationColors; ++c) EXPECT_TRUE(used[c]);
}

TEST(SpmvRoutes, InteriorTileForwardsToAllNeighbors) {
  const auto table = compile_spmv_routes(3, 3, 8, 8);
  const auto& own = table.rule(tessellation_color(3, 3));
  EXPECT_TRUE(own.forwards_to(Dir::North));
  EXPECT_TRUE(own.forwards_to(Dir::South));
  EXPECT_TRUE(own.forwards_to(Dir::East));
  EXPECT_TRUE(own.forwards_to(Dir::West));
  // Loopback into the z-plus and main-diagonal channels.
  ASSERT_EQ(own.deliver_channels.size(), 2u);
  EXPECT_EQ(own.deliver_channels[0], kChanLoopZp);
  EXPECT_EQ(own.deliver_channels[1], kChanLoopC);
}

TEST(SpmvRoutes, CornerTileOnlyForwardsInbounds) {
  const auto table = compile_spmv_routes(0, 0, 8, 8);
  const auto& own = table.rule(tessellation_color(0, 0));
  EXPECT_FALSE(own.forwards_to(Dir::North));
  EXPECT_FALSE(own.forwards_to(Dir::West));
  EXPECT_TRUE(own.forwards_to(Dir::South));
  EXPECT_TRUE(own.forwards_to(Dir::East));
}

TEST(SpmvRoutes, NeighborColorsDeliverLocally) {
  const auto table = compile_spmv_routes(4, 4, 9, 9);
  for (const auto& [nx, ny] :
       {std::pair{5, 4}, std::pair{3, 4}, std::pair{4, 5}, std::pair{4, 3}}) {
    const Color c = tessellation_color(nx, ny);
    const auto& rule = table.rule(c);
    EXPECT_EQ(rule.forward_mask, 0);
    ASSERT_EQ(rule.deliver_channels.size(), 1u);
    EXPECT_EQ(rule.deliver_channels[0], static_cast<int>(c));
  }
}

TEST(AllReduceGeometry, CenterPairAndCounts) {
  const auto g = allreduce_geometry(8, 8);
  EXPECT_EQ(g.cxl, 3);
  EXPECT_EQ(g.cxr, 4);
  EXPECT_EQ(g.cyt, 3);
  EXPECT_EQ(g.cyb, 4);
  EXPECT_EQ(g.west_count(), 4);
  EXPECT_EQ(g.east_count(8), 4);
  EXPECT_EQ(g.north_count(), 4);
  EXPECT_EQ(g.south_count(8), 4);
}

TEST(AllReduceGeometry, OddSizes) {
  const auto g = allreduce_geometry(7, 5);
  EXPECT_EQ(g.cxr, g.cxl + 1);
  EXPECT_EQ(g.west_count() + g.east_count(7), 7);
  EXPECT_EQ(g.north_count() + g.south_count(5), 5);
}

TEST(AllReduceRoutes, RowFlowsTowardCenter) {
  RoutingTable t0;
  add_allreduce_routes(t0, 0, 2, 8, 8);
  EXPECT_TRUE(t0.rule(kColorRowReduce).forwards_to(Dir::East));

  RoutingTable t7;
  add_allreduce_routes(t7, 7, 2, 8, 8);
  EXPECT_TRUE(t7.rule(kColorRowReduce).forwards_to(Dir::West));

  RoutingTable tc;
  add_allreduce_routes(tc, 3, 2, 8, 8);
  EXPECT_EQ(tc.rule(kColorRowReduce).forward_mask, 0);
  ASSERT_EQ(tc.rule(kColorRowReduce).deliver_channels.size(), 1u);
}

TEST(AllReduceRoutes, BroadcastReachesEveryTileOnce) {
  // Walk the broadcast routing as a graph from the root and check each tile
  // is delivered exactly one copy.
  // Each tile that processes a copy delivers locally and forwards per its
  // rule; in a correct tree every tile processes exactly one copy. Walk
  // copies from the root with a hop cap to catch accidental cycles.
  const int w = 9;
  const int h = 6;
  const auto g = allreduce_geometry(w, h);
  std::vector<int> delivered(static_cast<std::size_t>(w * h), 0);
  std::vector<std::pair<int, int>> work = {{g.cxr, g.cyb}};
  int hops = 0;
  while (!work.empty()) {
    ASSERT_LT(++hops, 10 * w * h) << "broadcast routing has a cycle";
    const auto [x, y] = work.back();
    work.pop_back();
    RoutingTable t;
    add_allreduce_routes(t, x, y, w, h);
    const auto& rule = t.rule(kColorBcast);
    delivered[static_cast<std::size_t>(y * w + x)] +=
        static_cast<int>(rule.deliver_channels.size());
    for (const Dir d : kMeshDirs) {
      if (!rule.forwards_to(d)) continue;
      const auto [dx, dy] = step(d);
      const int nx = x + dx;
      const int ny = y + dy;
      ASSERT_TRUE(nx >= 0 && nx < w && ny >= 0 && ny < h)
          << "broadcast forwards off-fabric at (" << x << "," << y << ")";
      work.push_back({nx, ny});
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_EQ(delivered[static_cast<std::size_t>(y * w + x)], 1)
          << "tile (" << x << "," << y << ")";
    }
  }
}

} // namespace
} // namespace wss::wse
