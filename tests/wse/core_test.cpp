#include "wse/core.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "wse/fabric.hpp"

namespace wss::wse {
namespace {

CS1Params arch() { return CS1Params{}; }

/// One-tile fabric running a single local program.
struct SingleTile {
  explicit SingleTile(TileProgram prog)
      : params(arch()), fabric(1, 1, params, SimParams{}) {
    fabric.configure_tile(0, 0, std::move(prog), RoutingTable{});
  }
  TileCore& core() { return fabric.core(0, 0); }
  std::uint64_t run() {
    const auto cycles = fabric.run(100000).cycles;
    EXPECT_TRUE(fabric.all_done());
    return cycles;
  }
  CS1Params params;
  Fabric fabric;
};

TEST(TileCore, MulVVElementwise) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int n = 17;
  const int a = mem.allocate(n, DType::F16);
  const int b = mem.allocate(n, DType::F16);
  const int c = mem.allocate(n, DType::F16);
  const int ta = prog.add_tensor({a, n, 1, DType::F16, 0});
  const int tb = prog.add_tensor({b, n, 1, DType::F16, 0});
  const int tc = prog.add_tensor({c, n, 1, DType::F16, 0});
  Task t{"mul", false, false, false, {}};
  Instr m{};
  m.op = OpKind::MulVV;
  m.dst = tc;
  m.src1 = ta;
  m.src2 = tb;
  t.steps.push_back({TaskStep::Kind::Sync, -1, m, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();

  SingleTile tile(std::move(prog));
  Rng rng(5);
  std::vector<fp16_t> va(static_cast<std::size_t>(n)), vb(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    va[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-2.0, 2.0));
    vb[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-2.0, 2.0));
    tile.core().host_write_f16(a + i, va[static_cast<std::size_t>(i)]);
    tile.core().host_write_f16(b + i, vb[static_cast<std::size_t>(i)]);
  }
  tile.run();
  for (int i = 0; i < n; ++i) {
    const fp16_t expected =
        va[static_cast<std::size_t>(i)] * vb[static_cast<std::size_t>(i)];
    EXPECT_EQ(tile.core().host_read_f16(c + i).bits(), expected.bits());
  }
}

TEST(TileCore, Fp16SimdThroughputIsFourPerCycle) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int n = 256;
  const int a = mem.allocate(n, DType::F16);
  const int b = mem.allocate(n, DType::F16);
  const int ta = prog.add_tensor({a, n, 1, DType::F16, 0});
  const int tb = prog.add_tensor({b, n, 1, DType::F16, 0});
  Task t{"axpy", false, false, false, {}};
  Instr m{};
  m.op = OpKind::AxpyV;
  m.dst = tb;
  m.src1 = ta;
  m.scalar = 0;
  t.steps.push_back({TaskStep::Kind::Sync, -1, m, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.num_scalars = 1;
  prog.memory_halfwords = mem.used_halfwords();

  SingleTile tile(std::move(prog));
  tile.core().host_write_scalar(0, 2.0f);
  for (int i = 0; i < n; ++i) {
    tile.core().host_write_f16(a + i, fp16_t(1.0));
    tile.core().host_write_f16(b + i, fp16_t(0.5));
  }
  const auto cycles = tile.run();
  // n/4 datapath cycles plus small scheduling constants.
  EXPECT_LE(cycles, static_cast<std::uint64_t>(n / 4 + 10));
  EXPECT_GE(cycles, static_cast<std::uint64_t>(n / 4));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(tile.core().host_read_f16(b + i).to_double(), 2.5);
  }
}

TEST(TileCore, DotMixedAccumulatesInFp32) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int n = 100;
  const int a = mem.allocate(n, DType::F16);
  const int b = mem.allocate(n, DType::F16);
  const int ta = prog.add_tensor({a, n, 1, DType::F16, 0});
  const int tb = prog.add_tensor({b, n, 1, DType::F16, 0});
  Task t{"dot", false, false, false, {}};
  Instr m{};
  m.op = OpKind::DotMixed;
  m.src1 = ta;
  m.src2 = tb;
  m.scalar = 0;
  t.steps.push_back({TaskStep::Kind::Sync, -1, m, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.num_scalars = 1;
  prog.memory_halfwords = mem.used_halfwords();

  SingleTile tile(std::move(prog));
  Rng rng(6);
  float expected = 0.0f;
  for (int i = 0; i < n; ++i) {
    const fp16_t va(rng.uniform(0.0, 1.0));
    const fp16_t vb(rng.uniform(0.0, 1.0));
    tile.core().host_write_f16(a + i, va);
    tile.core().host_write_f16(b + i, vb);
    expected = mixed_fma(va, vb, expected);
  }
  const auto cycles = tile.run();
  EXPECT_EQ(tile.core().host_read_scalar(0), expected);
  // 2 elements per cycle.
  EXPECT_LE(cycles, static_cast<std::uint64_t>(n / 2 + 10));
}

TEST(TileCore, FifoPushActivatesTask) {
  // A multiply thread pushes into a FIFO whose on_push activates a drain
  // task; the drain accumulates into memory. Feed the fabric stream via
  // loopback routing.
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int n = 32;
  const int src = mem.allocate(n, DType::F16);
  const int coef = mem.allocate(n, DType::F16);
  const int dst = mem.allocate(n, DType::F16);
  const int fifo_buf = mem.allocate(8, DType::F16);

  const int t_src = prog.add_tensor({src, n, 1, DType::F16, 0});
  const int t_coef = prog.add_tensor({coef, n, 1, DType::F16, 0});
  const int t_dst = prog.add_tensor({dst, n, 1, DType::F16, 0});
  const TaskId id_drain = 1;
  const TaskId id_done = 2;
  const int fifo = prog.add_fifo({fifo_buf, 8, 0, 0, 0, id_drain});
  const Color color = 7;
  const int f_tx =
      prog.add_fabric({color, n, DType::F16, 0, kNoTask, TrigAction::None});
  const int f_rx =
      prog.add_fabric({color, n, DType::F16, 0, id_done, TrigAction::Activate});

  Task main{"main", false, false, false, {}};
  Instr send{};
  send.op = OpKind::Send;
  send.src1 = t_src;
  send.fabric = f_tx;
  main.steps.push_back({TaskStep::Kind::Launch, 0, send, kNoTask});
  Instr mulrecv{};
  mulrecv.op = OpKind::RecvMulToFifo;
  mulrecv.fabric = f_rx;
  mulrecv.src1 = t_coef;
  mulrecv.fifo = fifo;
  main.steps.push_back({TaskStep::Kind::Launch, 1, mulrecv, kNoTask});
  prog.add_task(std::move(main));

  Task drain{"drain", true, false, false, {}};
  Instr d{};
  d.op = OpKind::FifoAddTo;
  d.fifo = fifo;
  d.dst = t_dst;
  drain.steps.push_back({TaskStep::Kind::Sync, -1, d, kNoTask});
  prog.add_task(std::move(drain));

  Task done{"done", false, false, false, {}};
  done.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(done));

  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();

  CS1Params params;
  Fabric fabric(1, 1, params, SimParams{});
  RoutingTable routes;
  routes.rule(color).deliver_channels.push_back(color); // loopback
  fabric.configure_tile(0, 0, std::move(prog), routes);

  TileCore& core = fabric.core(0, 0);
  Rng rng(9);
  std::vector<fp16_t> vs(static_cast<std::size_t>(n)), vc(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    vs[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-1.0, 1.0));
    vc[static_cast<std::size_t>(i)] = fp16_t(rng.uniform(-1.0, 1.0));
    core.host_write_f16(src + i, vs[static_cast<std::size_t>(i)]);
    core.host_write_f16(coef + i, vc[static_cast<std::size_t>(i)]);
    core.host_write_f16(dst + i, fp16_t(0.0));
  }
  fabric.run(100000);
  ASSERT_TRUE(fabric.all_done());
  // The drain may run many times, but each element is added exactly once.
  for (int i = 0; i < n; ++i) {
    const fp16_t expected = fp16_t(0.0) + vs[static_cast<std::size_t>(i)] *
                                              vc[static_cast<std::size_t>(i)];
    EXPECT_EQ(core.host_read_f16(dst + i).bits(), expected.bits()) << i;
  }
}

TEST(TileCore, MemoryAllocatorEnforcesCapacity) {
  MemAllocator mem(48 * 1024);
  (void)mem.allocate(20000, DType::F16);
  EXPECT_THROW((void)mem.allocate(5000, DType::F16), std::runtime_error);
}

TEST(TileCore, ProgramLargerThanSramRejected) {
  TileProgram prog;
  prog.memory_halfwords = 48 * 1024; // halfwords, i.e. 96 KB: too big
  CS1Params params;
  Fabric fabric(1, 1, params, SimParams{});
  EXPECT_THROW(fabric.configure_tile(0, 0, std::move(prog), RoutingTable{}),
               std::runtime_error);
}

} // namespace
} // namespace wss::wse
