// Differential conformance suite for the parallel fabric simulator: the
// determinism contract (docs/SIMULATOR.md, "Parallel simulation") says a
// fabric stepped with ANY host thread count is bit-identical to serial —
// result vectors, cycle counts, router stats, per-tile core counters, and
// heatmap grids. This suite runs the SpMV, AllReduce, and full BiCGStab
// dataflow programs on randomized fabric shapes/seeds with 1, 2, and 8
// threads and asserts exact equality, plus the Fabric::run() edge cases
// the parallel path must preserve (max_cycles == 0, deadlocked programs
// returning instead of hanging, reset_control between back-to-back runs).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "support/fabric_compare.hpp"
#include "support/proptest.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

constexpr int kThreadCounts[] = {2, 8};

// Shared with the backend-conformance suite (support/fabric_compare.hpp):
// heatmap grids are the race-prone collection path here (merged per-thread
// in the parallel run).
using testsupport::expect_fabric_state_identical;

struct SpmvCase {
  Stencil7<fp16_t> a;
  Field3<fp16_t> v;
};

SpmvCase make_spmv_case(const Grid3& g, std::uint64_t seed) {
  auto ad = make_random_dominant7(g, 0.5, seed);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  SpmvCase c{convert_stencil<fp16_t>(ad), Field3<fp16_t>(g)};
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

TEST(ParallelConformance, SpmvBitExactAcrossThreadCounts) {
  const CS1Params arch;
  proptest::check("SpMV parallel == serial", [&](proptest::Case& pc) {
    const int w = pc.size(2, 7);
    const int h = pc.size(2, 7);
    const int z = pc.size(4, 20);
    const SpmvCase c = make_spmv_case(Grid3(w, h, z), pc.seed());

    SimParams serial;
    serial.sim_threads = 1;
    wsekernels::SpMV3DSimulation ref(c.a, arch, serial);
    const auto u_ref = ref.run(c.v);

    for (const int threads : kThreadCounts) {
      SimParams par;
      par.sim_threads = threads;
      wsekernels::SpMV3DSimulation s(c.a, arch, par);
      const auto u = s.run(c.v);
      const std::string label = "threads=" + std::to_string(threads) +
                                " fabric " + std::to_string(w) + "x" +
                                std::to_string(h) + " z=" + std::to_string(z);
      ASSERT_EQ(u.size(), u_ref.size());
      for (std::size_t i = 0; i < u.size(); ++i) {
        ASSERT_EQ(u[i].bits(), u_ref[i].bits()) << label << " element " << i;
      }
      EXPECT_EQ(s.last_run_cycles(), ref.last_run_cycles()) << label;
      expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
    }
  }, {.cases = 4, .seed = 20260806});
}

TEST(ParallelConformance, AllReduceBitExactAcrossThreadCounts) {
  const CS1Params arch;
  proptest::check("AllReduce parallel == serial", [&](proptest::Case& pc) {
    const int w = pc.size(2, 11);
    const int h = pc.size(2, 11);
    std::vector<float> contrib(static_cast<std::size_t>(w) *
                               static_cast<std::size_t>(h));
    for (auto& v : contrib) {
      v = static_cast<float>(pc.uniform(-4.0, 4.0));
    }

    SimParams serial;
    serial.sim_threads = 1;
    wsekernels::AllReduceSimulation ref(w, h, arch, serial);
    const auto r_ref = ref.run(contrib);

    for (const int threads : kThreadCounts) {
      SimParams par;
      par.sim_threads = threads;
      wsekernels::AllReduceSimulation ar(w, h, arch, par);
      const auto r = ar.run(contrib);
      const std::string label = "threads=" + std::to_string(threads) +
                                " fabric " + std::to_string(w) + "x" +
                                std::to_string(h);
      EXPECT_EQ(r.cycles, r_ref.cycles) << label;
      ASSERT_EQ(r.values.size(), r_ref.values.size());
      for (std::size_t i = 0; i < r.values.size(); ++i) {
        // Bit-exact fp32: compare the representation, not a tolerance.
        ASSERT_EQ(std::bit_cast<std::uint32_t>(r.values[i]),
                  std::bit_cast<std::uint32_t>(r_ref.values[i]))
            << label << " tile " << i;
      }
      expect_fabric_state_identical(ref.fabric(), ar.fabric(), label);
    }
  }, {.cases = 4, .seed = 424242});
}

TEST(ParallelConformance, BicgstabBitExactAcrossThreadCounts) {
  const CS1Params arch;
  proptest::check("BiCGStab parallel == serial", [&](proptest::Case& pc) {
    const int w = pc.size(2, 4);
    const int h = pc.size(2, 4);
    const int z = pc.size(4, 10);
    const int iterations = pc.size(1, 2);
    const Grid3 g(w, h, z);
    auto ad = make_random_dominant7(g, 0.5, pc.seed());
    Field3<double> bd(g, 1.0);
    (void)precondition_jacobi(ad, bd);
    const auto a = convert_stencil<fp16_t>(ad);
    const auto b = convert_field<fp16_t>(bd);

    SimParams serial;
    serial.sim_threads = 1;
    wsekernels::BicgstabSimulation ref(a, iterations, arch, serial);
    const auto r_ref = ref.run(b);

    for (const int threads : kThreadCounts) {
      SimParams par;
      par.sim_threads = threads;
      wsekernels::BicgstabSimulation s(a, iterations, arch, par);
      const auto r = s.run(b);
      const std::string label = "threads=" + std::to_string(threads) +
                                " fabric " + std::to_string(w) + "x" +
                                std::to_string(h) + " z=" + std::to_string(z);
      EXPECT_EQ(r.cycles, r_ref.cycles) << label;
      EXPECT_EQ(r.iterations, r_ref.iterations) << label;
      ASSERT_EQ(r.x.size(), r_ref.x.size());
      for (std::size_t i = 0; i < r.x.size(); ++i) {
        ASSERT_EQ(r.x[i].bits(), r_ref.x[i].bits()) << label << " x[" << i << "]";
        ASSERT_EQ(r.r[i].bits(), r_ref.r[i].bits()) << label << " r[" << i << "]";
      }
      ASSERT_EQ(r.rho_history.size(), r_ref.rho_history.size()) << label;
      for (std::size_t i = 0; i < r.rho_history.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(r.rho_history[i]),
                  std::bit_cast<std::uint32_t>(r_ref.rho_history[i]))
            << label << " rho[" << i << "]";
      }
      expect_fabric_state_identical(ref.fabric(), s.fabric(), label);
    }
  }, {.cases = 3, .seed = 911});
}

// --- Fabric::run() edge cases the parallel path must preserve ---

TileProgram never_done_receiver() {
  // A task synchronously waiting on a fabric word that never arrives:
  // neither done nor quiescent -> run() must hit max_cycles, not hang.
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(4, DType::F16);
  const int t_dst = prog.add_tensor({buf, 4, 1, DType::F16, 0});
  const int f_rx =
      prog.add_fabric({0, 4, DType::F16, 0, kNoTask, TrigAction::None});
  Task t{"starve", false, false, false, {}};
  Instr r{};
  r.op = OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, r, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

Fabric make_starving_fabric(int threads) {
  SimParams sim;
  sim.sim_threads = threads;
  static const CS1Params arch;
  Fabric fabric(3, 3, arch, sim);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      fabric.configure_tile(x, y, never_done_receiver(), RoutingTable{});
    }
  }
  return fabric;
}

TEST(ParallelConformance, RunWithZeroMaxCyclesIsANoOp) {
  for (const int threads : {1, 2, 8}) {
    Fabric fabric = make_starving_fabric(threads);
    EXPECT_EQ(fabric.run(0).cycles, 0u) << "threads=" << threads;
    EXPECT_EQ(fabric.stats().cycles, 0u) << "threads=" << threads;
    EXPECT_EQ(fabric.stats().link_transfers, 0u) << "threads=" << threads;
  }
}

TEST(ParallelConformance, DeadlockedProgramReturnsAtMaxCycles) {
  std::vector<std::uint64_t> stall_cycles;
  for (const int threads : {1, 2, 8}) {
    Fabric fabric = make_starving_fabric(threads);
    // Must return (not hang) after exactly max_cycles.
    EXPECT_EQ(fabric.run(500).cycles, 500u) << "threads=" << threads;
    EXPECT_FALSE(fabric.all_done()) << "threads=" << threads;
    EXPECT_FALSE(fabric.quiescent()) << "threads=" << threads;
    stall_cycles.push_back(fabric.core(1, 1).stats().stall_cycles);
  }
  // The deadlocked state must also be identical across thread counts.
  EXPECT_EQ(stall_cycles[1], stall_cycles[0]);
  EXPECT_EQ(stall_cycles[2], stall_cycles[0]);
}

TEST(ParallelConformance, ResetControlBetweenBackToBackRunsIsReproducible) {
  const CS1Params arch;
  const SpmvCase c = make_spmv_case(Grid3(3, 3, 8), 5);
  for (const int threads : {1, 2, 8}) {
    SimParams sim;
    sim.sim_threads = threads;
    wsekernels::SpMV3DSimulation s(c.a, arch, sim);
    // SpMV3DSimulation::run() calls Fabric::reset_control() before each
    // invocation — back-to-back runs on the same fabric must agree bit
    // for bit and cycle for cycle.
    const auto u1 = s.run(c.v);
    const std::uint64_t cycles1 = s.last_run_cycles();
    const auto u2 = s.run(c.v);
    EXPECT_EQ(s.last_run_cycles(), cycles1) << "threads=" << threads;
    ASSERT_EQ(u1.size(), u2.size());
    for (std::size_t i = 0; i < u1.size(); ++i) {
      ASSERT_EQ(u1[i].bits(), u2[i].bits())
          << "threads=" << threads << " element " << i;
    }
  }
}

TEST(ParallelConformance, UnconfiguredTilesAreSkippedNotDereferenced) {
  // A fabric with holes (only one configured tile) must step without
  // touching the null cores — serial and parallel alike.
  static const CS1Params arch;
  for (const int threads : {1, 4}) {
    SimParams sim;
    sim.sim_threads = threads;
    Fabric fabric(4, 4, arch, sim);
    fabric.configure_tile(1, 2, never_done_receiver(), RoutingTable{});
    EXPECT_EQ(fabric.run(50).cycles, 50u) << "threads=" << threads;
    EXPECT_FALSE(fabric.all_done());
  }
}

TEST(ParallelConformance, SetThreadsMidRunKeepsDeterminism) {
  // Switching the thread count between runs (or mid-run) must not change
  // results: the banding is a host-side execution detail only.
  const CS1Params arch;
  const SpmvCase c = make_spmv_case(Grid3(4, 4, 8), 17);
  SimParams serial;
  serial.sim_threads = 1;
  wsekernels::SpMV3DSimulation ref(c.a, arch, serial);
  const auto u_ref = ref.run(c.v);

  SimParams par;
  par.sim_threads = 3; // odd band split on a 4-row fabric
  wsekernels::SpMV3DSimulation s(c.a, arch, par);
  const auto u1 = s.run(c.v);
  s.fabric().set_threads(8);
  const auto u2 = s.run(c.v);
  s.fabric().set_threads(1);
  const auto u3 = s.run(c.v);
  for (std::size_t i = 0; i < u_ref.size(); ++i) {
    ASSERT_EQ(u1[i].bits(), u_ref[i].bits()) << i;
    ASSERT_EQ(u2[i].bits(), u_ref[i].bits()) << i;
    ASSERT_EQ(u3[i].bits(), u_ref[i].bits()) << i;
  }
}

TEST(ParallelConformance, TracerStreamMatchesSerialOrder) {
  // The per-band staged tracer must reproduce the serial event stream —
  // same events, same order, same capacity-drop accounting.
  const CS1Params arch;
  const SpmvCase c = make_spmv_case(Grid3(3, 3, 6), 23);

  auto traced_run = [&](int threads, std::size_t capacity) {
    SimParams sim;
    sim.sim_threads = threads;
    wsekernels::SpMV3DSimulation s(c.a, arch, sim);
    auto tracer = std::make_unique<Tracer>(capacity);
    s.fabric().set_tracer(tracer.get());
    (void)s.run(c.v);
    s.fabric().set_tracer(nullptr);
    return tracer;
  };

  for (const std::size_t capacity : {std::size_t{1} << 16, std::size_t{64}}) {
    const auto serial = traced_run(1, capacity);
    for (const int threads : {2, 8}) {
      const auto parallel = traced_run(threads, capacity);
      ASSERT_EQ(parallel->events().size(), serial->events().size())
          << "threads=" << threads << " capacity=" << capacity;
      EXPECT_EQ(parallel->dropped(), serial->dropped())
          << "threads=" << threads << " capacity=" << capacity;
      for (std::size_t i = 0; i < serial->events().size(); ++i) {
        const TraceEvent& a = serial->events()[i];
        const TraceEvent& b = parallel->events()[i];
        ASSERT_EQ(a.cycle, b.cycle) << "event " << i;
        ASSERT_EQ(a.tile_x, b.tile_x) << "event " << i;
        ASSERT_EQ(a.tile_y, b.tile_y) << "event " << i;
        ASSERT_EQ(a.kind, b.kind) << "event " << i;
        ASSERT_EQ(a.label, b.label) << "event " << i;
      }
    }
  }
}

} // namespace
} // namespace wss::wse
