// Unit tests for the seeded fault-injection subsystem (wse/fault.hpp,
// Fabric::set_fault_plan): plan validation, the per-fault-kind observable
// behaviours on the Listing-1 SpMV dataflow program, telemetry (stats,
// bounded log, per-tile injection counts, heatmap and tracer surfaces),
// and the determinism contract — an injected run is bit-identical at any
// host thread count, including its fault log.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "support/proptest.hpp"
#include "telemetry/heatmap.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wse/trace.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

struct SpmvCase {
  Stencil7<fp16_t> a;
  Field3<fp16_t> v;
};

SpmvCase make_spmv_case(const Grid3& g, std::uint64_t seed) {
  auto ad = make_random_dominant7(g, 0.5, seed);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  SpmvCase c{convert_stencil<fp16_t>(ad), Field3<fp16_t>(g)};
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

wsekernels::SpMV3DSimulation make_sim(const SpmvCase& c, int threads = 1) {
  // The fabric keeps a pointer to the architecture params; give them
  // static storage so returned simulations stay valid.
  static const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  return wsekernels::SpMV3DSimulation(c.a, arch, sim);
}

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  const CS1Params arch;
  Fabric f(3, 3, arch, SimParams{});

  FaultPlan oob;
  oob.link_faults.push_back({.x = 3, .y = 0});
  EXPECT_THROW(f.set_fault_plan(&oob), std::invalid_argument);

  FaultPlan ramp;
  ramp.link_faults.push_back({.x = 0, .y = 0, .dir = Dir::Ramp});
  EXPECT_THROW(f.set_fault_plan(&ramp), std::invalid_argument);

  FaultPlan wrong_kind;
  wrong_kind.link_faults.push_back(
      {.x = 0, .y = 0, .dir = Dir::East, .kind = FaultKind::StallRouter});
  EXPECT_THROW(f.set_fault_plan(&wrong_kind), std::invalid_argument);

  FaultPlan oob_stall;
  oob_stall.router_stalls.push_back({.x = -1, .y = 0});
  EXPECT_THROW(f.set_fault_plan(&oob_stall), std::invalid_argument);

  FaultPlan oob_dead;
  oob_dead.dead_tiles.push_back({.x = 0, .y = 7});
  EXPECT_THROW(f.set_fault_plan(&oob_dead), std::invalid_argument);

  // A failed attach leaves the fabric plan-free.
  EXPECT_FALSE(f.has_fault_plan());
}

TEST(FaultRoll, DeterministicAndUniformish) {
  // Same arguments, same roll; distinct ordinals decorrelate.
  EXPECT_EQ(fault_roll(7, 1, 2, Dir::East, 5),
            fault_roll(7, 1, 2, Dir::East, 5));
  double sum = 0.0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const double r = fault_roll(42, 3, 4, Dir::South, i);
    ASSERT_GE(r, 0.0);
    ASSERT_LT(r, 1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(FaultInjection, AttachedEmptyPlanChangesNothing) {
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 11);

  auto ref = make_sim(c);
  const auto u_ref = ref.run(c.v);

  auto sim = make_sim(c);
  FaultPlan empty;
  sim.fabric().set_fault_plan(&empty);
  EXPECT_TRUE(sim.fabric().has_fault_plan());
  const auto u = sim.run(c.v);

  ASSERT_EQ(u.size(), u_ref.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_EQ(u[i].bits(), u_ref[i].bits()) << i;
  }
  EXPECT_EQ(sim.last_run_cycles(), ref.last_run_cycles());
  EXPECT_EQ(sim.fabric().fault_stats().total(), 0u);
  EXPECT_TRUE(sim.fabric().fault_log().empty());
}

TEST(FaultInjection, DroppedWaveletsDeadlockInsteadOfWrongAnswer) {
  // Dropping every eastbound wavelet out of (0,0) starves (1,0)'s west
  // stream: the dataflow program can never complete, and the simulation
  // must report that (budget exhausted) rather than return a result.
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 12);
  auto sim = make_sim(c);
  FaultPlan plan;
  plan.link_faults.push_back({.x = 0,
                              .y = 0,
                              .dir = Dir::East,
                              .kind = FaultKind::DropWavelet,
                              .probability = 1.0});
  sim.fabric().set_fault_plan(&plan);
  EXPECT_THROW(sim.run(c.v), std::runtime_error);

  const FaultStats& s = sim.fabric().fault_stats();
  EXPECT_GT(s.wavelets_dropped, 0u);
  EXPECT_EQ(s.wavelets_corrupted, 0u);
  // Every injection happened at the source tile and was logged there.
  EXPECT_EQ(sim.fabric().fault_injections(0, 0), s.wavelets_dropped);
  for (const FaultEvent& ev : sim.fabric().fault_log()) {
    EXPECT_EQ(ev.kind, FaultKind::DropWavelet);
    EXPECT_EQ(ev.x, 0);
    EXPECT_EQ(ev.y, 0);
    EXPECT_EQ(ev.dir, Dir::East);
  }
}

TEST(FaultInjection, CorruptedWaveletsPerturbExactlyTheTargetStream) {
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 13);

  auto ref = make_sim(c);
  const auto u_ref = ref.run(c.v);

  auto sim = make_sim(c);
  FaultPlan plan;
  plan.link_faults.push_back({.x = 1,
                              .y = 1,
                              .dir = Dir::East,
                              .kind = FaultKind::CorruptWavelet,
                              .probability = 1.0,
                              .corrupt_mask = 0x0200u});
  sim.fabric().set_fault_plan(&plan);
  const auto u = sim.run(c.v);

  // Still completes (payloads were delivered, just wrong), differs from
  // the fault-free run, and the log records before/after payloads related
  // by exactly the XOR mask.
  const FaultStats& s = sim.fabric().fault_stats();
  EXPECT_GT(s.wavelets_corrupted, 0u);
  EXPECT_EQ(s.wavelets_dropped, 0u);
  bool differs = false;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (u[i].bits() != u_ref[i].bits()) differs = true;
  }
  EXPECT_TRUE(differs);
  ASSERT_FALSE(sim.fabric().fault_log().empty());
  for (const FaultEvent& ev : sim.fabric().fault_log()) {
    EXPECT_EQ(ev.kind, FaultKind::CorruptWavelet);
    EXPECT_EQ(ev.payload_after, ev.payload_before ^ 0x0200u);
  }
  // Heatmap surface: the injection counter shows up at the source tile.
  const auto maps = telemetry::collect_heatmaps(sim.fabric());
  EXPECT_EQ(maps.fault_events.at(1, 1),
            static_cast<double>(s.wavelets_corrupted));
  EXPECT_EQ(maps.fault_events.at(0, 0), 0.0);
}

TEST(FaultInjection, RouterStallDelaysButPreservesTheAnswer) {
  // A transient stall reorders nothing and loses nothing (wavelets queue
  // under backpressure): the program takes longer but computes the same
  // bits — the recoverable-fault scenario the solver harness builds on.
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 14);

  auto ref = make_sim(c);
  const auto u_ref = ref.run(c.v);

  auto sim = make_sim(c);
  FaultPlan plan;
  plan.router_stalls.push_back(
      {.x = 1, .y = 1, .from_cycle = 0, .until_cycle = 200});
  sim.fabric().set_fault_plan(&plan);
  const auto u = sim.run(c.v);

  ASSERT_EQ(u.size(), u_ref.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_EQ(u[i].bits(), u_ref[i].bits()) << i;
  }
  EXPECT_GT(sim.last_run_cycles(), ref.last_run_cycles());
  EXPECT_EQ(sim.fabric().fault_stats().router_stall_cycles, 200u);
  // One log entry at window start, not one per stalled cycle.
  ASSERT_EQ(sim.fabric().fault_log().size(), 1u);
  EXPECT_EQ(sim.fabric().fault_log()[0].kind, FaultKind::StallRouter);
  EXPECT_EQ(sim.fabric().fault_log()[0].cycle, 0u);
}

TEST(FaultInjection, DeadTileNeverYieldsASilentResult) {
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 15);
  auto sim = make_sim(c);
  FaultPlan plan;
  plan.dead_tiles.push_back({.x = 2, .y = 1, .from_cycle = 0});
  sim.fabric().set_fault_plan(&plan);
  EXPECT_THROW(sim.run(c.v), std::runtime_error);
  EXPECT_GT(sim.fabric().fault_stats().dead_tile_cycles, 0u);
  EXPECT_GT(sim.fabric().fault_injections(2, 1), 0u);
}

TEST(FaultInjection, StatsAndLogSurviveDetachAndStopAccumulating) {
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 16);
  auto sim = make_sim(c);
  FaultPlan plan;
  plan.link_faults.push_back({.x = 0,
                              .y = 1,
                              .dir = Dir::East,
                              .kind = FaultKind::CorruptWavelet,
                              .probability = 1.0,
                              .corrupt_mask = 0x0001u});
  sim.fabric().set_fault_plan(&plan);
  (void)sim.run(c.v);
  const FaultStats after_run = sim.fabric().fault_stats();
  const std::size_t log_size = sim.fabric().fault_log().size();
  EXPECT_GT(after_run.wavelets_corrupted, 0u);

  sim.fabric().set_fault_plan(nullptr);
  EXPECT_FALSE(sim.fabric().has_fault_plan());
  (void)sim.run(c.v);  // fault-free second run
  EXPECT_EQ(sim.fabric().fault_stats(), after_run);
  EXPECT_EQ(sim.fabric().fault_log().size(), log_size);
  EXPECT_EQ(sim.fabric().fault_injections(0, 1),
            after_run.wavelets_corrupted);
}

TEST(FaultInjection, EventLogIsBoundedWithDroppedCount) {
  // corrupt_mask = 0 is the observability trick: every wavelet on every
  // link "corrupts" (logged + counted) without changing any payload, so
  // the program still completes while generating thousands of events.
  const Grid3 g(4, 4, 8);
  const SpmvCase c = make_spmv_case(g, 17);
  auto sim = make_sim(c);
  FaultPlan plan;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      for (const Dir d : {Dir::East, Dir::West, Dir::North, Dir::South}) {
        plan.link_faults.push_back({.x = x,
                                    .y = y,
                                    .dir = d,
                                    .kind = FaultKind::CorruptWavelet,
                                    .probability = 1.0,
                                    .corrupt_mask = 0x0000u});
      }
    }
  }
  sim.fabric().set_fault_plan(&plan);
  Field3<fp16_t> u(g);
  for (int rep = 0; rep < 16 && sim.fabric().fault_log_dropped() == 0;
       ++rep) {
    u = sim.run(c.v);
  }
  // Identity corruption: the answer is still the fault-free answer.
  auto ref = make_sim(c);
  const auto u_ref = ref.run(c.v);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_EQ(u[i].bits(), u_ref[i].bits()) << i;
  }

  const std::size_t capacity = sim.fabric().fault_log().size();
  EXPECT_EQ(capacity, 4096u);  // full, bounded
  EXPECT_GT(sim.fabric().fault_log_dropped(), 0u);
  EXPECT_EQ(sim.fabric().fault_stats().wavelets_corrupted,
            capacity + sim.fabric().fault_log_dropped());
}

TEST(FaultInjection, TracerReceivesFaultEvents) {
  const Grid3 g(3, 3, 6);
  const SpmvCase c = make_spmv_case(g, 18);
  auto sim = make_sim(c);
  Tracer tracer(1 << 16);
  tracer.focus(1, 0);
  sim.fabric().set_tracer(&tracer);
  FaultPlan plan;
  plan.link_faults.push_back({.x = 1,
                              .y = 0,
                              .dir = Dir::South,
                              .kind = FaultKind::CorruptWavelet,
                              .probability = 1.0,
                              .corrupt_mask = 0x0100u});
  sim.fabric().set_fault_plan(&plan);
  (void)sim.run(c.v);
  EXPECT_EQ(tracer.count(TraceEventKind::Fault),
            sim.fabric().fault_stats().wavelets_corrupted);
}

TEST(FaultInjection, InjectedRunsBitIdenticalAcrossThreadCounts) {
  // The acceptance gate: a faulted run — result bits, cycle counts,
  // fault stats, the entire event log, and the heatmap surface — is
  // bit-identical between serial and 8-thread stepping.
  proptest::check(
      "fault injection parallel == serial",
      [](proptest::Case& pc) {
        const int w = pc.size(2, 5);
        const int h = pc.size(2, 5);
        const int z = pc.size(4, 12);
        const Grid3 g(w, h, z);
        const SpmvCase c = make_spmv_case(g, pc.seed());

        FaultPlan plan;
        plan.seed = pc.seed() ^ 0x9e37u;
        // Probabilistic identity-mask corruption on every link plus a
        // transient stall: heavy logging traffic, guaranteed completion.
        for (int y = 0; y < h; ++y) {
          for (int x = 0; x < w; ++x) {
            plan.link_faults.push_back(
                {.x = x,
                 .y = y,
                 .dir = Dir::East,
                 .kind = FaultKind::CorruptWavelet,
                 .probability = pc.uniform(0.2, 0.9),
                 .corrupt_mask = 0x0000u});
          }
        }
        plan.router_stalls.push_back(
            {.x = w / 2,
             .y = h / 2,
             .from_cycle = 0,
             .until_cycle = static_cast<std::uint64_t>(pc.size(10, 120))});

        auto ref = make_sim(c, 1);
        ref.fabric().set_fault_plan(&plan);
        const auto u_ref = ref.run(c.v);

        auto par = make_sim(c, 8);
        par.fabric().set_fault_plan(&plan);
        const auto u = par.run(c.v);

        ASSERT_EQ(u.size(), u_ref.size());
        for (std::size_t i = 0; i < u.size(); ++i) {
          EXPECT_EQ(u[i].bits(), u_ref[i].bits()) << i;
        }
        EXPECT_EQ(par.last_run_cycles(), ref.last_run_cycles());
        EXPECT_EQ(par.fabric().fault_stats(), ref.fabric().fault_stats());
        const auto& log_ref = ref.fabric().fault_log();
        const auto& log_par = par.fabric().fault_log();
        ASSERT_EQ(log_par.size(), log_ref.size());
        for (std::size_t i = 0; i < log_ref.size(); ++i) {
          EXPECT_EQ(log_par[i], log_ref[i]) << "fault log entry " << i;
        }
        EXPECT_EQ(par.fabric().fault_log_dropped(),
                  ref.fabric().fault_log_dropped());
        for (int y = 0; y < h; ++y) {
          for (int x = 0; x < w; ++x) {
            EXPECT_EQ(par.fabric().fault_injections(x, y),
                      ref.fabric().fault_injections(x, y))
                << "(" << x << "," << y << ")";
          }
        }
      },
      {.cases = 6, .seed = 2027});
}

} // namespace
} // namespace wss::wse
