// Property/fuzz tests of the fabric: randomized point-to-point routes with
// dimension-ordered paths deliver every word in order; the SpMV and
// AllReduce programs stay correct under pathologically small queue depths
// (failure injection for the backpressure machinery); kernel programs are
// deadlock-free across random fabric shapes.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "support/proptest.hpp"
#include "wse/fabric.hpp"
#include "wse/route_compiler.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

// Tile-program builders and dimension-ordered routing shared with the
// backend-conformance suite (which generates whole fabrics from them).
using proptest::fabricgen::add_xy_route;
using proptest::fabricgen::idle;
using proptest::fabricgen::receiver;
using proptest::fabricgen::sender;

TEST(FabricFuzz, RandomPointToPointRoutesDeliverInOrder) {
  // Up to kNumColors concurrent random streams on disjoint colors across a
  // random fabric; every stream must arrive complete and in order.
  proptest::check("random point-to-point routes deliver in order",
                  [](proptest::Case& pc) {
    Rng& rng = pc.rng();
    const int w = pc.size(3, 8);
    const int h = pc.size(3, 8);
    const int streams = pc.size(2, 7);
    const int len = pc.size(4, 31);

    std::vector<std::vector<RoutingTable>> tables(
        static_cast<std::size_t>(w),
        std::vector<RoutingTable>(static_cast<std::size_t>(h)));
    struct Stream {
      int sx, sy, dx, dy;
      Color color;
    };
    std::vector<Stream> plan;
    for (int s = 0; s < streams; ++s) {
      Stream st;
      st.color = static_cast<Color>(s);
      st.sx = static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
      st.sy = static_cast<int>(rng.below(static_cast<std::uint64_t>(h)));
      do {
        st.dx = static_cast<int>(rng.below(static_cast<std::uint64_t>(w)));
        st.dy = static_cast<int>(rng.below(static_cast<std::uint64_t>(h)));
      } while (st.dx == st.sx && st.dy == st.sy);
      add_xy_route(tables, st.sx, st.sy, st.dx, st.dy, st.color);
      plan.push_back(st);
    }

    CS1Params arch;
    SimParams sim;
    Fabric fabric(w, h, arch, sim);
    // Compose per-tile programs: a tile may be the source of several
    // streams only if colors differ; keep it simple — one stream per
    // source tile (skip clashing sources).
    std::vector<std::vector<int>> role(
        static_cast<std::size_t>(w),
        std::vector<int>(static_cast<std::size_t>(h), -1));
    std::vector<Stream> active;
    for (const Stream& st : plan) {
      if (role[static_cast<std::size_t>(st.sx)][static_cast<std::size_t>(st.sy)] != -1 ||
          role[static_cast<std::size_t>(st.dx)][static_cast<std::size_t>(st.dy)] != -1) {
        continue;
      }
      role[static_cast<std::size_t>(st.sx)][static_cast<std::size_t>(st.sy)] = 0;
      role[static_cast<std::size_t>(st.dx)][static_cast<std::size_t>(st.dy)] = 1;
      active.push_back(st);
    }
    for (int x = 0; x < w; ++x) {
      for (int y = 0; y < h; ++y) {
        const int r = role[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
        TileProgram prog = idle();
        for (const Stream& st : active) {
          if (st.sx == x && st.sy == y && r == 0) prog = sender(st.color, len);
          if (st.dx == x && st.dy == y && r == 1) {
            prog = receiver(st.color, len);
          }
        }
        fabric.configure_tile(
            x, y, std::move(prog),
            tables[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)]);
      }
    }
    std::vector<std::vector<fp16_t>> payloads;
    for (const Stream& st : active) {
      std::vector<fp16_t> data(static_cast<std::size_t>(len));
      for (auto& v : data) v = fp16_t(rng.uniform(-8.0, 8.0));
      for (int i = 0; i < len; ++i) {
        fabric.core(st.sx, st.sy).host_write_f16(i, data[static_cast<std::size_t>(i)]);
      }
      payloads.push_back(std::move(data));
    }

    fabric.run(20000);
    ASSERT_TRUE(fabric.all_done());
    for (std::size_t s = 0; s < active.size(); ++s) {
      const Stream& st = active[s];
      for (int i = 0; i < len; ++i) {
        EXPECT_EQ(fabric.core(st.dx, st.dy).host_read_f16(i).bits(),
                  payloads[s][static_cast<std::size_t>(i)].bits())
            << "stream " << s << " word " << i;
      }
    }
  }, {.cases = 6, .seed = 2026});
}

TEST(FabricFuzz, SpmvCorrectUnderMinimalQueues) {
  // Failure injection: queue depths of 1 everywhere. Only throughput may
  // suffer; values must stay exact and the program must not deadlock.
  const Grid3 g(4, 4, 12);
  auto ad = make_random_dominant7(g, 0.5, 9);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(4);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

  CS1Params arch;
  SimParams tight;
  tight.router_queue_depth = 1;
  tight.ramp_queue_depth = 1;
  SimParams loose;

  wsekernels::SpMV3DSimulation s_tight(a, arch, tight);
  wsekernels::SpMV3DSimulation s_loose(a, arch, loose);
  const auto u_tight = s_tight.run(v);
  const auto u_loose = s_loose.run(v);
  // Queue depth changes the FIFO-drain interleaving, i.e. the fp16
  // summation order: allow reassociation noise, nothing more.
  for (std::size_t i = 0; i < u_tight.size(); ++i) {
    EXPECT_NEAR(u_tight[i].to_double(), u_loose[i].to_double(), 1e-2) << i;
  }
  EXPECT_GE(s_tight.last_run_cycles(), s_loose.last_run_cycles());
}

TEST(FabricFuzz, AllReduceCorrectUnderMinimalQueues) {
  CS1Params arch;
  SimParams tight;
  tight.router_queue_depth = 1;
  tight.ramp_queue_depth = 1;
  wsekernels::AllReduceSimulation ar(9, 7, arch, tight);
  std::vector<float> contrib(63);
  for (std::size_t i = 0; i < contrib.size(); ++i) {
    contrib[i] = static_cast<float>(i) * 0.5f - 7.0f;
  }
  const auto result = ar.run(contrib);
  double exact = 0.0;
  for (const float c : contrib) exact += static_cast<double>(c);
  for (const float vv : result.values) EXPECT_NEAR(vv, exact, 1e-3);
}

TEST(FabricFuzz, SpmvAcrossRandomFabricShapes) {
  CS1Params arch;
  SimParams sim;
  proptest::check("SpMV stays correct across random fabric shapes",
                  [&](proptest::Case& pc) {
    Rng& rng = pc.rng();
    const int w = pc.size(1, 7);
    const int h = pc.size(1, 7);
    const int z = pc.size(4, 23);
    const Grid3 g(w, h, z);
    auto ad = make_random_dominant7(g, 0.5, 100 + pc.seed());
    Field3<double> b(g, 1.0);
    (void)precondition_jacobi(ad, b);
    const auto a = convert_stencil<fp16_t>(ad);
    Field3<fp16_t> v(g);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = fp16_t(rng.uniform(-1.0, 1.0));

    wsekernels::SpMV3DSimulation s(a, arch, sim);
    const auto u = s.run(v);

    auto avd = convert_stencil<double>(a);
    auto vd = convert_field<double>(v);
    Field3<double> ud(g);
    spmv7(avd, vd, ud);
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_NEAR(u[i].to_double(), ud[i], 3e-2)
          << "fabric " << w << "x" << h << " z=" << z;
    }
  }, {.cases = 5, .seed = 77});
}

} // namespace
} // namespace wss::wse
