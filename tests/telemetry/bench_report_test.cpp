#include "telemetry/bench_report.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "json_check.hpp"
#include "telemetry/io.hpp"
#include "telemetry/metrics.hpp"

namespace wss::telemetry {
namespace {

TEST(BenchReport, JsonParsesBackWithDeviation) {
  BenchReport r;
  r.set_name("fig7");
  r.set_experiment("cluster scaling");
  r.set_paper_ref("Fig. 7");
  r.set_claim("strong scaling to 370 nodes");
  r.add_row("cycles/iter", 100.0, 110.0, "cycles");
  r.add_row("no-baseline", 0.0, 3.5, "s");
  r.add_note("simulated, not measured on hardware");

  bool ok = false;
  const auto doc = testjson::parse(r.to_json(nullptr), &ok);
  ASSERT_TRUE(ok) << r.to_json(nullptr);
  EXPECT_EQ(doc.at("bench").str(), "fig7");
  EXPECT_EQ(doc.at("experiment").str(), "cluster scaling");
  EXPECT_EQ(doc.at("paper_ref").str(), "Fig. 7");
  EXPECT_TRUE(doc.has("generated_unix_ms"));

  const auto& rows = doc.at("rows").array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("label").str(), "cycles/iter");
  EXPECT_DOUBLE_EQ(rows[0].at("paper").number(), 100.0);
  EXPECT_DOUBLE_EQ(rows[0].at("measured").number(), 110.0);
  EXPECT_NEAR(rows[0].at("deviation_pct").number(), 10.0, 1e-12);
  // Rows without a paper value carry an explicit null and no deviation.
  EXPECT_TRUE(rows[1].at("paper").is_null());
  EXPECT_FALSE(rows[1].has("deviation_pct"));

  ASSERT_EQ(doc.at("notes").array().size(), 1u);
  // No registry attached: no metrics section.
  EXPECT_FALSE(doc.has("metrics"));
}

TEST(BenchReport, AttachesMetricsSnapshot) {
  BenchReport r;
  r.set_name("x");
  r.add_row("t", 0.0, 1.0, "s");
  MetricsRegistry reg;
  reg.counter("solver.iterations").add(12);

  bool ok = false;
  const auto doc = testjson::parse(r.to_json(&reg), &ok);
  ASSERT_TRUE(ok) << r.to_json(&reg);
  EXPECT_DOUBLE_EQ(
      doc.at("metrics").at("counters").at("solver.iterations").number(), 12.0);

  // An empty registry is omitted rather than serialized as clutter.
  MetricsRegistry empty;
  ok = false;
  const auto doc2 = testjson::parse(r.to_json(&empty), &ok);
  ASSERT_TRUE(ok);
  EXPECT_FALSE(doc2.has("metrics"));
}

TEST(BenchReport, WriteCreatesDirectoryAndFile) {
  BenchReport r;
  r.set_name("unit_test_report");
  r.add_row("a", 1.0, 1.0, "x");

  const std::string dir = ::testing::TempDir() + "wss_bench_report_" +
                          std::to_string(static_cast<unsigned>(::getpid())) +
                          "/nested";
  std::string error;
  ASSERT_TRUE(r.write(dir, nullptr, &error)) << error;

  const std::string path = dir + "/unit_test_report.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  bool ok = false;
  const auto doc = testjson::parse(text, &ok);
  ASSERT_TRUE(ok) << text;
  EXPECT_EQ(doc.at("bench").str(), "unit_test_report");
  std::remove(path.c_str());
}

TEST(BenchReport, WriteReportsWhyItFailed) {
  BenchReport r;
  r.set_name("x");
  r.add_row("a", 0.0, 1.0, "x");
  std::string error;
  EXPECT_FALSE(r.write("/proc/not/a/real/dir", nullptr, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("/proc"), std::string::npos) << error;
}

TEST(BenchReport, DefaultNameIsSanitized) {
  // On Linux this resolves to this test binary's basename; either way the
  // result must be filesystem-safe.
  const std::string name = default_report_name("fig 7: cluster/370");
  EXPECT_FALSE(name.empty());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    EXPECT_TRUE(std::isalnum(u) || c == '_' || c == '-' || c == '.')
        << "bad char in " << name;
  }
  EXPECT_EQ(name.find('/'), std::string::npos);
  EXPECT_EQ(name.find(' '), std::string::npos);
}

TEST(BenchReport, EmptyReportIsEmpty) {
  BenchReport r;
  EXPECT_TRUE(r.empty());
  r.set_experiment("warming up");
  EXPECT_FALSE(r.empty());
}

TEST(IoHelpers, EnsureDirectoryIsIdempotent) {
  const std::string dir = ::testing::TempDir() + "wss_io_test_" +
                          std::to_string(static_cast<unsigned>(::getpid()));
  std::string error;
  EXPECT_TRUE(ensure_directory(dir, &error)) << error;
  EXPECT_TRUE(ensure_directory(dir, &error)) << error; // already exists: ok
  EXPECT_TRUE(write_text_file(dir + "/f.txt", "hello", &error)) << error;
  std::ifstream in(dir + "/f.txt");
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text, "hello");
  std::remove((dir + "/f.txt").c_str());
}

TEST(IoHelpers, WriteTextFileExplainsFailure) {
  std::string error;
  EXPECT_FALSE(write_text_file("/proc/no_such_dir/f.txt", "x", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("f.txt"), std::string::npos) << error;
}

} // namespace
} // namespace wss::telemetry
