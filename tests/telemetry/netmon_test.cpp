// Network-observatory acceptance suite (telemetry/netmon.hpp,
// docs/NETWORK.md). The contract under test, in order of importance:
// attaching a NetMonitor perturbs nothing (result bits, cycle counts and
// every per-tile heatmap are identical with the monitor on or off); the
// wss.netflows/1 stream is bit-identical on both execution backends at
// WSS_SIM_THREADS 1/2/8; conservation is exact at every granularity
// (Σ per-flow words == Σ per-link words == the fabric's link-transfer
// delta); the exact stencilfe traffic projections equal the measured
// words; a stalled router raises link_congestion naming the choked
// upstream link while a clean run stays silent; and the committed golden
// artifact pins the schema byte-for-byte.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "perfmodel/flow_expectations.hpp"
#include "stencil/generators.hpp"
#include "stencilfe/executor.hpp"
#include "stencilfe/workloads.hpp"
#include "support/env_guard.hpp"
#include "telemetry/health.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wse/flow_table.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::telemetry {
namespace {

using testsupport::CleanSimEnv;
using wse::Backend;
using wse::Dir;

/// Fabric keeps a pointer to the architecture parameters, so the object
/// must outlive every simulation constructed here.
const wse::CS1Params kArch;

struct StencilRun {
  std::vector<fp16_t> state;
  std::uint64_t cycles = 0;         ///< last generation
  std::uint64_t total_cycles = 0;   ///< whole run
  std::uint64_t link_transfers = 0; ///< whole run
  FabricHeatmaps maps;
};

/// Heat diffusion on an nx*ny fabric slab, optionally observed.
StencilRun run_heat(stencilfe::BoundaryPolicy boundary, int nx, int ny,
                    int generations, Backend backend, int threads,
                    NetMonitor* mon) {
  const stencilfe::TransitionFn fn = stencilfe::heat_fn(0.125, boundary);
  wse::SimParams sim;
  sim.backend = backend;
  sim.sim_threads = threads;
  stencilfe::StencilExecutor ex(fn, nx, ny, kArch, sim);
  if (mon != nullptr) {
    mon->set_flow_table(ex.flow_table());
    ex.fabric().set_net_monitor(mon);
  }
  ex.load(stencilfe::random_state(fn, nx, ny, 2026));
  ex.step(generations);
  if (mon != nullptr) ex.fabric().set_net_monitor(nullptr);
  StencilRun r;
  r.state = ex.read_state();
  r.cycles = ex.last_generation_cycles();
  r.total_cycles = ex.fabric().stats().cycles;
  r.link_transfers = ex.fabric().stats().link_transfers;
  r.maps = collect_heatmaps(ex.fabric());
  return r;
}

NetFlowsFile heat_netflows(stencilfe::BoundaryPolicy boundary, int nx, int ny,
                           int generations, Backend backend, int threads) {
  const stencilfe::TransitionFn fn = stencilfe::heat_fn(0.125, boundary);
  NetMonitor mon;
  const StencilRun r =
      run_heat(boundary, nx, ny, generations, backend, threads, &mon);
  return build_netflows(mon, "netmon-test", "", r.total_cycles,
                        r.link_transfers,
                        static_cast<std::uint64_t>(generations),
                        perfmodel::stencilfe_flow_expectations(fn, nx, ny),
                        /*top_k=*/4);
}

TEST(NetMonitor, AttachIsNonPerturbingForStencilRuns) {
  CleanSimEnv env;
  const StencilRun bare = run_heat(stencilfe::BoundaryPolicy::Periodic, 6, 5,
                                   3, Backend::Reference, 1, nullptr);
  NetMonitor mon;
  const StencilRun watched = run_heat(stencilfe::BoundaryPolicy::Periodic, 6,
                                      5, 3, Backend::Reference, 1, &mon);
  ASSERT_EQ(bare.state.size(), watched.state.size());
  for (std::size_t i = 0; i < bare.state.size(); ++i) {
    EXPECT_EQ(bare.state[i].bits(), watched.state[i].bits()) << i;
  }
  EXPECT_EQ(bare.cycles, watched.cycles);
  EXPECT_EQ(bare.link_transfers, watched.link_transfers);
  const auto bare_maps = bare.maps.all();
  const auto watched_maps = watched.maps.all();
  ASSERT_EQ(bare_maps.size(), watched_maps.size());
  for (std::size_t m = 0; m < bare_maps.size(); ++m) {
    EXPECT_EQ(bare_maps[m]->cells, watched_maps[m]->cells)
        << bare_maps[m]->name;
  }
}

TEST(NetMonitor, AttachIsNonPerturbingForSpmvRuns) {
  CleanSimEnv env;
  const Grid3 g(6, 6, 8);
  auto ad = make_random_dominant7(g, 0.5, 11);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(12);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  wsekernels::SpMV3DSimulation bare(a, kArch, wse::SimParams{});
  const auto u0 = bare.run(v);
  wsekernels::SpMV3DSimulation watched(a, kArch, wse::SimParams{});
  NetMonitor mon;
  mon.set_flow_table(wse::spmv_flow_table());
  watched.fabric().set_net_monitor(&mon);
  const auto u1 = watched.run(v);
  ASSERT_EQ(u0.size(), u1.size());
  for (std::size_t i = 0; i < u0.size(); ++i) {
    EXPECT_EQ(u0[i].bits(), u1[i].bits()) << i;
  }
  EXPECT_EQ(bare.last_run_cycles(), watched.last_run_cycles());
  EXPECT_TRUE(mon.attached_once());
}

TEST(NetMonitor, StreamsBitIdenticalAcrossBackendsAndThreads) {
  CleanSimEnv env;
  const std::string anchor =
      build_netflows_json(heat_netflows(stencilfe::BoundaryPolicy::Periodic,
                                        6, 5, 2, Backend::Reference, 1));
  struct Cfg {
    Backend backend;
    int threads;
    const char* name;
  };
  for (const Cfg cfg : {Cfg{Backend::Reference, 2, "reference@2"},
                        Cfg{Backend::Reference, 8, "reference@8"},
                        Cfg{Backend::Turbo, 1, "turbo@1"},
                        Cfg{Backend::Turbo, 8, "turbo@8"}}) {
    const std::string got = build_netflows_json(
        heat_netflows(stencilfe::BoundaryPolicy::Periodic, 6, 5, 2,
                      cfg.backend, cfg.threads));
    EXPECT_EQ(got, anchor) << cfg.name;
  }
}

TEST(NetMonitor, ConservationHoldsAtEveryGranularity) {
  CleanSimEnv env;
  const stencilfe::TransitionFn fn =
      stencilfe::heat_fn(0.125, stencilfe::BoundaryPolicy::Periodic);
  NetMonitor mon;
  const StencilRun r = run_heat(stencilfe::BoundaryPolicy::Periodic, 6, 5, 2,
                                Backend::Reference, 1, &mon);
  // Per-link: the color cells sum to the link total, and the link totals
  // match the per-direction heatmap layers harvested from the fabric.
  std::uint64_t all_links = 0;
  const Heatmap* dir_maps[4] = {&r.maps.link_words_n, &r.maps.link_words_s,
                                &r.maps.link_words_e, &r.maps.link_words_w};
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 6; ++x) {
      for (int d = 0; d < 4; ++d) {
        const Dir dir = static_cast<Dir>(d);
        std::uint64_t colors = 0;
        for (int c = 0; c < wse::kNumColors; ++c) {
          colors += mon.words_at(x, y, dir, c);
        }
        EXPECT_EQ(colors, mon.link_words(x, y, dir)) << x << "," << y;
        EXPECT_EQ(static_cast<double>(colors), dir_maps[d]->at(x, y))
            << dir_maps[d]->name << " " << x << "," << y;
        all_links += colors;
      }
    }
  }
  // Per-flow: the rollup conserves the fabric's own transfer count.
  const NetFlowsFile nf = build_netflows(
      mon, "netmon-test", "", r.total_cycles, r.link_transfers, 2,
      perfmodel::stencilfe_flow_expectations(fn, 6, 5), 4);
  std::uint64_t flow_words = 0;
  for (const NetFlowTotals& f : nf.flows) flow_words += f.words;
  EXPECT_EQ(flow_words, r.link_transfers);
  EXPECT_EQ(all_links, r.link_transfers);
  std::string error;
  EXPECT_TRUE(self_check_netflows(nf, &error)) << error;
}

TEST(NetMonitor, ExactProjectionsMatchMeasuredWords) {
  CleanSimEnv env;
  for (const auto boundary : {stencilfe::BoundaryPolicy::Periodic,
                              stencilfe::BoundaryPolicy::DirichletZero}) {
    const NetFlowsFile nf = heat_netflows(boundary, 6, 5, 3,
                                          Backend::Reference, 1);
    bool any_wrap = false;
    for (const NetFlowTotals& f : nf.flows) {
      if (f.flow.rfind("wrap.", 0) == 0) {
        any_wrap = true;
        EXPECT_GT(f.words, 0u) << f.flow;
      }
      if (f.exact && f.expected_words_per_iteration > 0.0) {
        EXPECT_EQ(static_cast<double>(f.words),
                  f.expected_words_per_iteration * 3.0)
            << f.flow;
      }
    }
    EXPECT_EQ(any_wrap, boundary == stencilfe::BoundaryPolicy::Periodic);
  }
}

TEST(NetMonitor, SelfCheckCatchesConservationAndSchemaDrift) {
  CleanSimEnv env;
  NetFlowsFile nf = heat_netflows(stencilfe::BoundaryPolicy::Periodic, 6, 5,
                                  2, Backend::Reference, 1);
  std::string error;
  ASSERT_TRUE(self_check_netflows(nf, &error)) << error;
  NetFlowsFile broken = nf;
  broken.flows[1].words += 1;
  EXPECT_FALSE(self_check_netflows(broken, &error));
  EXPECT_NE(error.find("conserv"), std::string::npos) << error;
  NetFlowsFile wrong_schema = nf;
  wrong_schema.schema = "wss.netflows/999";
  EXPECT_FALSE(self_check_netflows(wrong_schema, &error));
}

TEST(NetMonitor, ArtifactRoundTripsThroughDisk) {
  CleanSimEnv env;
  const NetFlowsFile nf = heat_netflows(stencilfe::BoundaryPolicy::Periodic,
                                        6, 5, 2, Backend::Reference, 1);
  const std::string path = ::testing::TempDir() + "/netmon_roundtrip.json";
  std::string error;
  ASSERT_TRUE(write_netflows(path, nf, &error)) << error;
  NetFlowsFile back;
  ASSERT_TRUE(load_netflows(path, &back, &error)) << error;
  EXPECT_EQ(build_netflows_json(back), build_netflows_json(nf));
  EXPECT_TRUE(back.flow_table == nf.flow_table);
  EXPECT_FALSE(first_netflows_divergence(nf, back).found);
  NetFlowsFile drifted = back;
  drifted.flows[2].blocked += 7;
  const NetFlowsDivergence d = first_netflows_divergence(nf, drifted);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 2u);
  EXPECT_FALSE(pretty_netflows_divergence(d).empty());
  EXPECT_FALSE(pretty_netflows(nf).empty());
}

TEST(NetMonitor, GoldenArtifactPinsTheSchemaByteForByte) {
  CleanSimEnv env;
  std::ifstream in(WSS_NETFLOWS_GOLDEN, std::ios::binary);
  ASSERT_TRUE(in.good()) << WSS_NETFLOWS_GOLDEN;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string committed = buf.str();
  NetFlowsFile golden;
  std::string error;
  ASSERT_TRUE(load_netflows(WSS_NETFLOWS_GOLDEN, &golden, &error)) << error;
  EXPECT_TRUE(self_check_netflows(golden, &error)) << error;
  // The golden is the exact stream of this deterministic run: heat
  // diffusion, periodic, 6x5, 2 generations, reference@1. Regenerating
  // it must reproduce the committed bytes — schema drift, counter drift
  // and expectation drift all fail here.
  const NetFlowsFile fresh = heat_netflows(
      stencilfe::BoundaryPolicy::Periodic, 6, 5, 2, Backend::Reference, 1);
  EXPECT_EQ(build_netflows_json(fresh), committed);
}

TEST(NetMonitor, StalledRouterRaisesLinkCongestionAndCleanRunIsSilent) {
  CleanSimEnv env;
  const Grid3 g(8, 8, 12);
  auto ad = make_random_dominant7(g, 0.5, 21);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(22);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  const auto observed_run = [&](const wse::FaultPlan* plan) {
    wsekernels::SpMV3DSimulation s(a, kArch, wse::SimParams{});
    TimeSeriesSampler sampler(16);
    NetMonitor mon;
    mon.set_flow_table(wse::spmv_flow_table());
    s.fabric().set_sampler(&sampler);
    s.fabric().set_net_monitor(&mon);
    if (plan != nullptr) s.fabric().set_fault_plan(plan);
    (void)s.run(v);
    TimeSeries ts = snapshot_timeseries(sampler, nullptr);
    return std::make_pair(std::move(ts), s.last_run_cycles());
  };
  HealthConfig cfg;
  cfg.congestion_floor = 0.3;
  const auto [clean_ts, clean_cycles] = observed_run(nullptr);
  for (const HealthAlert& alert : evaluate_health(clean_ts, cfg)) {
    EXPECT_NE(alert.rule, "link_congestion") << alert.detail;
  }
  wse::FaultPlan plan;
  plan.router_stalls.push_back(
      {.x = 3, .y = 3, .from_cycle = 0, .until_cycle = 2 * clean_cycles});
  const auto [stalled_ts, stalled_cycles] = observed_run(&plan);
  EXPECT_GT(stalled_cycles, clean_cycles);
  bool congestion = false;
  for (const HealthAlert& alert : evaluate_health(stalled_ts, cfg)) {
    if (alert.rule != "link_congestion") continue;
    congestion = true;
    // The named link must be one of the four feeding the stalled router
    // at (3,3): (2,3)->E, (4,3)->W, (3,2)->S or (3,4)->N.
    const bool upstream = alert.detail.find("(2,3)->E") != std::string::npos ||
                          alert.detail.find("(4,3)->W") != std::string::npos ||
                          alert.detail.find("(3,2)->S") != std::string::npos ||
                          alert.detail.find("(3,4)->N") != std::string::npos;
    EXPECT_TRUE(upstream) << alert.detail;
  }
  EXPECT_TRUE(congestion);
}

TEST(NetMonitor, FlowBandwidthDriftFiresOnlyOnUnderDelivery) {
  TimeSeries ts;
  ts.schema = kTimeseriesSchema;
  ts.program = "drift-test";
  ts.width = 2;
  ts.height = 2;
  ts.sample_cycles = 10;
  ts.net_flows = {"control", "x"};
  ts.net_expectations.push_back({"x", 100.0, true});
  for (std::uint64_t i = 1; i <= 3; ++i) {
    TimeSeriesFrame f;
    f.cycle = 10 * i;
    f.window_cycles = 10;
    f.max_iteration = i;
    f.has_net = true;
    f.net_cycles = 10 * i;
    f.flow_words = {0, 50}; // 150 words over 3 iterations: 50% short
    f.flow_blocked = {0, 0};
    ts.frames.push_back(f);
  }
  HealthConfig cfg;
  cfg.tol_pct = 25.0;
  bool drift = false;
  for (const HealthAlert& a : evaluate_health(ts, cfg)) {
    if (a.rule == "flow_bandwidth_drift") {
      drift = true;
      EXPECT_NE(a.detail.find("'x'"), std::string::npos) << a.detail;
      EXPECT_EQ(a.severity, AlertSeverity::Warn);
    }
  }
  EXPECT_TRUE(drift);
  // Over-delivery (and exact delivery) stay silent: the gate is one-sided.
  for (const double words : {100.0, 240.0}) {
    TimeSeries quiet = ts;
    for (TimeSeriesFrame& f : quiet.frames) {
      f.flow_words[1] = static_cast<std::uint64_t>(words);
    }
    for (const HealthAlert& a : evaluate_health(quiet, cfg)) {
      EXPECT_NE(a.rule, "flow_bandwidth_drift") << a.detail;
    }
  }
}

} // namespace
} // namespace wss::telemetry
