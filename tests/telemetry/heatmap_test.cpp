#include "telemetry/heatmap.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

int commas_in(const std::string& line) {
  int n = 0;
  for (const char c : line) {
    if (c == ',') ++n;
  }
  return n;
}

TEST(Heatmap, CsvShapeMatchesDimensions) {
  Heatmap h("busy", 3, 2);
  h.at(0, 0) = 1.0;
  h.at(2, 0) = 4.0;
  h.at(1, 1) = 2.5;
  const auto lines = lines_of(h.to_csv());
  // One comment line + `height` data rows.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# busy,3,2");
  // Each data row carries `width` comma-separated values.
  EXPECT_EQ(commas_in(lines[1]), 2);
  EXPECT_EQ(commas_in(lines[2]), 2);
  // Integral values print without a decimal point; 2.5 keeps one.
  EXPECT_EQ(lines[1], "1,0,4");
  EXPECT_NE(lines[2].find("2.5"), std::string::npos);
  EXPECT_DOUBLE_EQ(h.max_value(), 4.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
}

TEST(Heatmap, AsciiRenderHasNameAndLegend) {
  Heatmap h("stall", 4, 2);
  h.at(3, 1) = 10.0;
  const std::string art = h.ascii();
  EXPECT_NE(art.find("stall"), std::string::npos);
  EXPECT_NE(art.find("max"), std::string::npos);
  // The hottest cell renders as the top of the ramp.
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(Heatmap, AsciiSubsamplesWideFabrics) {
  Heatmap h("wide", 400, 1);
  for (int x = 0; x < 400; ++x) h.at(x, 0) = 1.0;
  const auto lines = lines_of(h.ascii(/*max_cols=*/50));
  for (const auto& line : lines) {
    EXPECT_LE(line.size(), 120u) << line;
  }
}

TEST(FabricHeatmaps, CollectMatchesFabricDims) {
  const Grid3 g(3, 3, 8);
  auto ad = make_random_dominant7(g, 0.5, 11);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }

  wse::CS1Params arch;
  wse::SimParams sim;
  wsekernels::SpMV3DSimulation s(a, arch, sim);
  (void)s.run(v);

  const FabricHeatmaps maps = collect_heatmaps(s.fabric());
  const auto all = maps.all();
  ASSERT_EQ(all.size(), 11u);
  for (const Heatmap* m : all) {
    EXPECT_EQ(m->width, 3) << m->name;
    EXPECT_EQ(m->height, 3) << m->name;
    EXPECT_EQ(m->cells.size(), 9u) << m->name;
    EXPECT_FALSE(m->name.empty());
  }
  // A real run leaves footprints: every tile retired instructions and
  // invoked tasks, and the FIFO-based SpMV exercised the software FIFOs.
  EXPECT_GT(maps.instr_cycles.min_value(), 0.0);
  EXPECT_GT(maps.task_invocations.min_value(), 0.0);
  EXPECT_GT(maps.fifo_highwater.max_value(), 0.0);
  EXPECT_GT(maps.words_sent.max_value(), 0.0);
  EXPECT_GT(maps.words_received.max_value(), 0.0);
}

TEST(FabricHeatmaps, WriteCsvsCreatesOneFilePerMap) {
  const Grid3 g(2, 2, 4);
  auto ad = make_random_dominant7(g, 0.5, 3);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g, fp16_t(1.0F));

  wse::CS1Params arch;
  wse::SimParams sim;
  wsekernels::SpMV3DSimulation s(a, arch, sim);
  (void)s.run(v);
  const FabricHeatmaps maps = collect_heatmaps(s.fabric());

  const std::string dir =
      ::testing::TempDir() + "wss_heatmap_test_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::string error;
  ASSERT_TRUE(write_heatmap_csvs(maps, dir, "spmv", &error)) << error;
  for (const Heatmap* m : maps.all()) {
    const std::string path = dir + "/spmv_" + m->name + ".csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    const auto lines = lines_of(std::string(
        std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()));
    ASSERT_EQ(lines.size(), 3u) << path; // header + 2 fabric rows
    EXPECT_EQ(commas_in(lines[1]), 1) << path;
    std::remove(path.c_str());
  }
}

TEST(FabricHeatmaps, WriteCsvsReportsUnwritableDirectory) {
  FabricHeatmaps maps;
  maps.instr_cycles = Heatmap("instr_cycles", 1, 1);
  std::string error;
  EXPECT_FALSE(write_heatmap_csvs(maps, "/proc/definitely/not/writable",
                                  "x", &error));
  EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace wss::telemetry
