#include "telemetry/heatmap.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "telemetry/io.hpp"
#include "stencil/generators.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

int commas_in(const std::string& line) {
  int n = 0;
  for (const char c : line) {
    if (c == ',') ++n;
  }
  return n;
}

TEST(Heatmap, CsvShapeMatchesDimensions) {
  Heatmap h("busy", 3, 2);
  h.at(0, 0) = 1.0;
  h.at(2, 0) = 4.0;
  h.at(1, 1) = 2.5;
  const auto lines = lines_of(h.to_csv());
  // One comment line + `height` data rows.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "# busy,3,2");
  // Each data row carries `width` comma-separated values.
  EXPECT_EQ(commas_in(lines[1]), 2);
  EXPECT_EQ(commas_in(lines[2]), 2);
  // Integral values print without a decimal point; 2.5 keeps one.
  EXPECT_EQ(lines[1], "1,0,4");
  EXPECT_NE(lines[2].find("2.5"), std::string::npos);
  EXPECT_DOUBLE_EQ(h.max_value(), 4.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
}

TEST(Heatmap, AsciiRenderHasNameAndLegend) {
  Heatmap h("stall", 4, 2);
  h.at(3, 1) = 10.0;
  const std::string art = h.ascii();
  EXPECT_NE(art.find("stall"), std::string::npos);
  EXPECT_NE(art.find("max"), std::string::npos);
  // The hottest cell renders as the top of the ramp.
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(Heatmap, AsciiSubsamplesWideFabrics) {
  Heatmap h("wide", 400, 1);
  for (int x = 0; x < 400; ++x) h.at(x, 0) = 1.0;
  const auto lines = lines_of(h.ascii(/*max_cols=*/50));
  for (const auto& line : lines) {
    EXPECT_LE(line.size(), 120u) << line;
  }
}

TEST(FabricHeatmaps, CollectMatchesFabricDims) {
  const Grid3 g(3, 3, 8);
  auto ad = make_random_dominant7(g, 0.5, 11);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }

  wse::CS1Params arch;
  wse::SimParams sim;
  wsekernels::SpMV3DSimulation s(a, arch, sim);
  (void)s.run(v);

  const FabricHeatmaps maps = collect_heatmaps(s.fabric());
  const auto all = maps.all();
  ASSERT_EQ(all.size(), 16u);
  for (const Heatmap* m : all) {
    EXPECT_EQ(m->width, 3) << m->name;
    EXPECT_EQ(m->height, 3) << m->name;
    EXPECT_EQ(m->cells.size(), 9u) << m->name;
    EXPECT_FALSE(m->name.empty());
  }
  // A real run leaves footprints: every tile retired instructions and
  // invoked tasks, and the FIFO-based SpMV exercised the software FIFOs.
  EXPECT_GT(maps.instr_cycles.min_value(), 0.0);
  EXPECT_GT(maps.task_invocations.min_value(), 0.0);
  EXPECT_GT(maps.fifo_highwater.max_value(), 0.0);
  EXPECT_GT(maps.words_sent.max_value(), 0.0);
  EXPECT_GT(maps.words_received.max_value(), 0.0);
  // The four per-direction link layers partition the fabric-wide transfer
  // count: every flit the link phase moved left exactly one tile in
  // exactly one direction.
  double moved = 0.0;
  for (const Heatmap* m : {&maps.link_words_n, &maps.link_words_s,
                           &maps.link_words_e, &maps.link_words_w}) {
    for (const double v : m->cells) moved += v;
  }
  EXPECT_EQ(moved, static_cast<double>(s.fabric().stats().link_transfers));
}

TEST(FabricHeatmaps, WriteCsvsCreatesOneFilePerMap) {
  const Grid3 g(2, 2, 4);
  auto ad = make_random_dominant7(g, 0.5, 3);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g, fp16_t(1.0F));

  wse::CS1Params arch;
  wse::SimParams sim;
  wsekernels::SpMV3DSimulation s(a, arch, sim);
  (void)s.run(v);
  const FabricHeatmaps maps = collect_heatmaps(s.fabric());

  const std::string dir =
      ::testing::TempDir() + "wss_heatmap_test_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::string error;
  ASSERT_TRUE(write_heatmap_csvs(maps, dir, "spmv", &error)) << error;
  for (const Heatmap* m : maps.all()) {
    const std::string path = dir + "/spmv_" + m->name + ".csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    const auto lines = lines_of(std::string(
        std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()));
    ASSERT_EQ(lines.size(), 3u) << path; // header + 2 fabric rows
    EXPECT_EQ(commas_in(lines[1]), 1) << path;
    std::remove(path.c_str());
  }
}

// Regression: two fabrics simulated in one process and exported with the
// same prefix used to silently clobber each other's CSV grids. The second
// writer must now land on a disambiguated prefix and the first fabric's
// files must be byte-identical to what it wrote.
TEST(FabricHeatmaps, TwoFabricsSamePrefixDoNotCrossContaminate) {
  reset_output_stem_claims();
  auto run_spmv = [](int n, std::uint64_t seed) {
    const Grid3 g(n, n, 4);
    auto ad = make_random_dominant7(g, 0.5, seed);
    Field3<double> b(g, 1.0);
    (void)precondition_jacobi(ad, b);
    const auto a = convert_stencil<fp16_t>(ad);
    Field3<fp16_t> v(g, fp16_t(1.0F));
    wse::CS1Params arch;
    wse::SimParams sim;
    auto s = std::make_unique<wsekernels::SpMV3DSimulation>(a, arch, sim);
    (void)s->run(v);
    return s;
  };

  // Two different fabrics (2x2 and 3x3) — their heatmaps cannot agree.
  auto s1 = run_spmv(2, 21);
  auto s2 = run_spmv(3, 22);
  const FabricHeatmaps maps1 = collect_heatmaps(s1->fabric());
  const FabricHeatmaps maps2 = collect_heatmaps(s2->fabric());

  const std::string dir =
      ::testing::TempDir() + "wss_heatmap_collision_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  std::string error;
  std::string prefix1;
  std::string prefix2;
  ASSERT_TRUE(write_heatmap_csvs(maps1, dir, "fab", &error, &prefix1))
      << error;
  ASSERT_TRUE(write_heatmap_csvs(maps2, dir, "fab", &error, &prefix2))
      << error;
  EXPECT_EQ(prefix1, "fab");
  EXPECT_NE(prefix2, prefix1);

  auto read_file = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  for (const Heatmap* m : maps1.all()) {
    const std::string p1 = dir + "/" + prefix1 + "_" + m->name + ".csv";
    const std::string p2 = dir + "/" + prefix2 + "_" + m->name + ".csv";
    // First fabric's file still holds the first fabric's data (2x2 grid),
    // second writer's file holds the 3x3 grid.
    EXPECT_EQ(read_file(p1), m->to_csv()) << p1;
    EXPECT_NE(read_file(p2), read_file(p1)) << p2;
    std::remove(p1.c_str());
    std::remove(p2.c_str());
  }
  reset_output_stem_claims();
}

TEST(FabricHeatmaps, ClaimOutputStemDisambiguatesAndAvoidsChains) {
  reset_output_stem_claims();
  EXPECT_EQ(claim_output_stem("/tmp/x/run"), "/tmp/x/run");
  EXPECT_EQ(claim_output_stem("/tmp/x/run"), "/tmp/x/run_2");
  // An explicit claim of the already-expanded name must not collide.
  EXPECT_EQ(claim_output_stem("/tmp/x/run_2"), "/tmp/x/run_2_2");
  EXPECT_EQ(claim_output_stem("/tmp/x/run"), "/tmp/x/run_3");
  reset_output_stem_claims();
  EXPECT_EQ(claim_output_stem("/tmp/x/run"), "/tmp/x/run");
  reset_output_stem_claims();
}

TEST(FabricHeatmaps, WriteCsvsReportsUnwritableDirectory) {
  FabricHeatmaps maps;
  maps.instr_cycles = Heatmap("instr_cycles", 1, 1);
  std::string error;
  EXPECT_FALSE(write_heatmap_csvs(maps, "/proc/definitely/not/writable",
                                  "x", &error));
  EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace wss::telemetry
