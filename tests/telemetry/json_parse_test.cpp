// Tests for the strict JSON parser behind the regression gate
// (telemetry/json_parse.hpp): round-trips of the document shapes the gate
// actually reads (bench reports, baselines), escape and \uXXXX decoding,
// number grammar, insertion-ordered objects, and the error contract —
// malformed input must fail with a byte offset, never "succeed loosely".

#include <gtest/gtest.h>

#include <string>

#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"

namespace wss::telemetry::jsonparse {
namespace {

Value parse_ok(const std::string& text) {
  const ParseResult r = parse(text);
  EXPECT_TRUE(r.ok()) << "input: " << text << "\nerror: " << r.error;
  return r.value.value_or(Value{});
}

std::string parse_err(const std::string& text) {
  const ParseResult r = parse(text);
  EXPECT_FALSE(r.ok()) << "input unexpectedly parsed: " << text;
  EXPECT_FALSE(r.error.empty());
  return r.error;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("0").number, 0.0);
  EXPECT_DOUBLE_EQ(parse_ok("-42").number, -42.0);
  EXPECT_DOUBLE_EQ(parse_ok("3.5e2").number, 350.0);
  EXPECT_DOUBLE_EQ(parse_ok("1e-3").number, 1e-3);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
  EXPECT_EQ(parse_ok("  \"pad\"  ").string, "pad");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b")").string, "a\"b");
  EXPECT_EQ(parse_ok(R"("a\\b")").string, "a\\b");
  EXPECT_EQ(parse_ok(R"("a\/b")").string, "a/b");
  EXPECT_EQ(parse_ok(R"("\b\f\n\r\t")").string, "\b\f\n\r\t");
  // \uXXXX decodes to UTF-8: micro sign U+00B5 and a 3-byte CJK point.
  EXPECT_EQ(parse_ok("\"\\u00b5s\"").string, "\xc2\xb5s");
  EXPECT_EQ(parse_ok("\"\\u4e16\"").string, "\xe4\xb8\x96");
  EXPECT_EQ(parse_ok("\"\\u0041\"").string, "A");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok("\"\xc2\xb5s\"").string, "\xc2\xb5s");
}

TEST(JsonParse, ArraysAndNesting) {
  const Value v = parse_ok("[1, [2, 3], []]");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.array->size(), 3u);
  EXPECT_DOUBLE_EQ((*v.array)[0].number, 1.0);
  ASSERT_TRUE((*v.array)[1].is_array());
  EXPECT_EQ((*v.array)[1].array->size(), 2u);
  EXPECT_TRUE((*v.array)[2].array->empty());
}

TEST(JsonParse, ObjectsPreserveInsertionOrderAndFind) {
  const Value v = parse_ok(R"({"z": 1, "a": 2, "z2": {"k": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.object->size(), 3u);
  EXPECT_EQ((*v.object)[0].first, "z");
  EXPECT_EQ((*v.object)[1].first, "a");
  EXPECT_EQ((*v.object)[2].first, "z2");
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->number, 2.0);
  const Value* k = v.find("z2");
  ASSERT_NE(k, nullptr);
  ASSERT_NE(k->find("k"), nullptr);
  EXPECT_TRUE(k->find("k")->boolean);
  EXPECT_EQ(v.find("missing"), nullptr);
  // find() on a non-object is a graceful nullptr, not UB.
  EXPECT_EQ(a->find("x"), nullptr);
}

TEST(JsonParse, BenchReportShapeRoundTrip) {
  // The exact shape emitted by telemetry/bench_report.cpp and consumed by
  // bench/check_regression.cpp.
  json::Writer w;
  w.begin_object();
  w.key("bench").value("secV_cs1_iteration");
  w.key("rows").begin_array();
  w.begin_object();
  w.key("label").value("iteration time");
  w.key("paper").value(28.1);
  w.key("measured").value(28.086742);
  w.key("unit").value("us");
  w.end_object();
  w.end_array();
  w.end_object();
  const Value v = parse_ok(w.str());
  ASSERT_NE(v.find("rows"), nullptr);
  const Values& rows = *v.find("rows")->array;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].find("label")->string, "iteration time");
  // Writer doubles are emitted round-trippably.
  EXPECT_DOUBLE_EQ(rows[0].find("measured")->number, 28.086742);
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  EXPECT_NE(parse_err("").find("at byte"), std::string::npos);
  EXPECT_NE(parse_err("{\"a\": }").find("at byte"), std::string::npos);
  EXPECT_NE(parse_err("[1, 2").find("at byte"), std::string::npos);
  EXPECT_NE(parse_err("\"unterminated").find("at byte"), std::string::npos);
  EXPECT_NE(parse_err("{\"a\" 1}").find("at byte"), std::string::npos);
}

TEST(JsonParse, StrictnessRejectsExtensions) {
  parse_err("NaN");           // not a JSON token
  parse_err("Infinity");      // not a JSON token
  parse_err("[1,]");          // trailing comma
  parse_err("{'a': 1}");      // single quotes
  parse_err("// comment\n1"); // comments
  parse_err("1 2");           // trailing garbage
  parse_err("{\"a\": 1} x");  // trailing garbage after a document
  parse_err(R"("\q")");       // unknown escape
  parse_err(R"("\u12")");     // truncated \uXXXX
}

} // namespace
} // namespace wss::telemetry::jsonparse
