// Flight-recorder unit + conformance tests (telemetry/flightrec.hpp):
// ring-buffer semantics, event formatting, the recording taps on a live
// fabric, and the two contracts the post-mortem layer depends on —
//  * non-perturbation: attaching a recorder changes no simulated bit
//    (result payloads, cycle counts, heatmap counters all identical),
//  * determinism: the recorded rings are bit-identical at any
//    WSS_SIM_THREADS (1 / 2 / 8), like every other telemetry surface.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "telemetry/flightrec.hpp"
#include "telemetry/heatmap.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::wse {
namespace {

using telemetry::FlightEvent;
using telemetry::FlightEventKind;
using telemetry::FlightRecorder;

// --- ring-buffer semantics ----------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  FlightRecorder rec(2, 2, /*depth=*/4);
  for (std::uint64_t c = 0; c < 6; ++c) {
    rec.record(1, 1, c, FlightEventKind::TaskStart,
               static_cast<std::int32_t>(c));
  }
  EXPECT_EQ(rec.total_events(1, 1), 6u);
  EXPECT_EQ(rec.dropped_events(1, 1), 2u);
  const std::vector<FlightEvent> ev = rec.events(1, 1);
  ASSERT_EQ(ev.size(), 4u);
  // Oldest two (cycles 0, 1) fell off the back; the rest are in order.
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].cycle, i + 2);
    EXPECT_EQ(ev[i].a, static_cast<std::int32_t>(i + 2));
  }
  // Untouched tiles stay empty.
  EXPECT_EQ(rec.total_events(0, 0), 0u);
  EXPECT_TRUE(rec.events(0, 0).empty());
}

TEST(FlightRecorder, DepthIsClampedToValidRange) {
  FlightRecorder tiny(1, 1, 0);
  EXPECT_EQ(tiny.depth(), 1u);
  FlightRecorder huge(1, 1, FlightRecorder::kMaxDepth * 4);
  EXPECT_EQ(huge.depth(), FlightRecorder::kMaxDepth);
}

TEST(FlightRecorder, ClearResetsRingsButKeepsConfiguration) {
  FlightRecorder rec(2, 1, 8);
  rec.mark_configured(0, 0);
  rec.record(0, 0, 7, FlightEventKind::PhaseMark, 1);
  EXPECT_EQ(rec.total_events(), 1u);
  rec.clear();
  EXPECT_EQ(rec.total_events(), 0u);
  EXPECT_TRUE(rec.events(0, 0).empty());
  EXPECT_EQ(rec.configured_tiles(), 1);
}

TEST(FlightRecorder, PackedTileFieldRoundTrips) {
  using telemetry::pack_tile;
  using telemetry::packed_tile_x;
  using telemetry::packed_tile_y;
  for (const auto& [x, y] :
       std::vector<std::pair<int, int>>{{0, 0}, {1, 0}, {0, 1}, {300, 200},
                                        {757, 996}}) {
    const std::int32_t p = pack_tile(x, y);
    EXPECT_EQ(packed_tile_x(p), x);
    EXPECT_EQ(packed_tile_y(p), y);
  }
}

TEST(FlightRecorder, EventKindNamesRoundTrip) {
  for (int k = 0; k < telemetry::kNumFlightEventKinds; ++k) {
    const auto kind = static_cast<FlightEventKind>(k);
    FlightEventKind parsed{};
    ASSERT_TRUE(telemetry::flight_event_kind_from_string(
        telemetry::to_string(kind), &parsed))
        << telemetry::to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  FlightEventKind parsed{};
  EXPECT_FALSE(telemetry::flight_event_kind_from_string("warp_core", &parsed));
}

TEST(FlightRecorder, FormatsEventsForHumans) {
  FlightEvent wavelet{/*cycle=*/123, FlightEventKind::WaveletDelivered,
                      /*a=*/2, /*b=*/0x1234, telemetry::pack_tile(0, 1),
                      /*d=*/98};
  const std::string w = telemetry::format_flight_event(wavelet);
  EXPECT_NE(w.find("c123"), std::string::npos) << w;
  EXPECT_NE(w.find("wavelet"), std::string::npos) << w;
  EXPECT_NE(w.find("(0,1)"), std::string::npos) << w;

  FlightEvent start{/*cycle=*/5, FlightEventKind::TaskStart, /*a=*/3, 0, 0, 0};
  const std::string s = telemetry::format_flight_event(start);
  EXPECT_NE(s.find("task_start"), std::string::npos) << s;
}

// --- recording taps on a live fabric ------------------------------------

TileProgram sender_program(Color color, int len) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  const int t_src = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_tx = prog.add_fabric({color, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"send", false, false, false, {}};
  Instr s{};
  s.op = OpKind::Send;
  s.src1 = t_src;
  s.fabric = f_tx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, s, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

TileProgram receiver_program(int channel, int len, int* buf_out) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  *buf_out = buf;
  const int t_dst = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_rx = prog.add_fabric({channel, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"recv", false, false, false, {}};
  Instr r{};
  r.op = OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, r, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

TEST(FlightRecorderTaps, CapturesDeliveriesAndTaskLifecycle) {
  const CS1Params arch;
  const SimParams sim;
  Fabric fabric(2, 1, arch, sim);
  FlightRecorder rec(2, 1, 64);
  fabric.set_flight_recorder(&rec);

  const Color color = 3;
  const int len = 10;
  RoutingTable send_routes;
  send_routes.rule(color).add_forward(Dir::East);
  fabric.configure_tile(0, 0, sender_program(color, len), send_routes);
  RoutingTable recv_routes;
  recv_routes.rule(color).deliver_channels.push_back(color);
  int buf = 0;
  fabric.configure_tile(1, 0, receiver_program(color, len, &buf), recv_routes);
  for (int i = 0; i < len; ++i) {
    fabric.core(0, 0).host_write_f16(i, fp16_t(static_cast<double>(i)));
  }
  fabric.run(1000);
  ASSERT_TRUE(fabric.all_done());

  EXPECT_EQ(rec.configured_tiles(), 2);
  // The receiver saw exactly `len` wavelet deliveries on `color`.
  int deliveries = 0;
  for (const FlightEvent& ev : rec.events(1, 0)) {
    if (ev.kind == FlightEventKind::WaveletDelivered) {
      ++deliveries;
      EXPECT_EQ(ev.a, static_cast<std::int32_t>(color));
    }
  }
  EXPECT_EQ(deliveries, len);
  // Both tiles ran their single task start-to-end.
  for (const auto& [x, y] : std::vector<std::pair<int, int>>{{0, 0}, {1, 0}}) {
    bool started = false;
    bool ended = false;
    for (const FlightEvent& ev : rec.events(x, y)) {
      started |= ev.kind == FlightEventKind::TaskStart;
      ended |= ev.kind == FlightEventKind::TaskEnd;
    }
    EXPECT_TRUE(started) << "(" << x << "," << y << ")";
    EXPECT_TRUE(ended) << "(" << x << "," << y << ")";
  }
  // Rings are chronological.
  std::uint64_t last = 0;
  for (const FlightEvent& ev : rec.events(1, 0)) {
    EXPECT_GE(ev.cycle, last);
    last = ev.cycle;
  }
}

TEST(FlightRecorderTaps, DimensionMismatchIsRejected) {
  const CS1Params arch;
  Fabric fabric(2, 2, arch, SimParams{});
  FlightRecorder wrong(3, 2, 16);
  EXPECT_THROW(fabric.set_flight_recorder(&wrong), std::invalid_argument);
}

// --- non-perturbation + thread-count determinism ------------------------

struct SpmvCase {
  Stencil7<fp16_t> a;
  Field3<fp16_t> v;
};

SpmvCase make_spmv_case(const Grid3& g, std::uint64_t seed) {
  auto ad = make_random_dominant7(g, 0.5, seed);
  Field3<double> b(g, 1.0);
  (void)precondition_jacobi(ad, b);
  SpmvCase c{convert_stencil<fp16_t>(ad), Field3<fp16_t>(g)};
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < c.v.size(); ++i) {
    c.v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  return c;
}

wsekernels::SpMV3DSimulation make_sim(const SpmvCase& c, int threads) {
  static const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  return wsekernels::SpMV3DSimulation(c.a, arch, sim);
}

std::vector<std::vector<double>> heatmap_cells(const Fabric& fabric) {
  std::vector<std::vector<double>> out;
  const telemetry::FabricHeatmaps maps = telemetry::collect_heatmaps(fabric);
  for (const telemetry::Heatmap* m : maps.all()) out.push_back(m->cells);
  return out;
}

TEST(FlightRecorderConformance, RecorderIsNonPerturbingAndThreadIdentical) {
  const Grid3 g(4, 3, 6);
  const SpmvCase c = make_spmv_case(g, 2026);

  // Baseline: serial, no recorder.
  auto ref = make_sim(c, 1);
  const Field3<fp16_t> u_ref = ref.run(c.v);
  const std::uint64_t cycles_ref = ref.last_run_cycles();
  const auto heat_ref = heatmap_cells(ref.fabric());

  std::vector<FlightRecorder> recorders;
  recorders.reserve(3);
  for (const int threads : {1, 2, 8}) {
    auto sim = make_sim(c, threads);
    FlightRecorder& rec =
        recorders.emplace_back(g.nx, g.ny, FlightRecorder::kDefaultDepth);
    sim.fabric().set_flight_recorder(&rec);
    const Field3<fp16_t> u = sim.run(c.v);

    // Non-perturbation: result bits, cycle count, heatmap counters all
    // identical to the recorder-free serial baseline.
    ASSERT_EQ(u.size(), u_ref.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      EXPECT_EQ(u[i].bits(), u_ref[i].bits()) << "threads=" << threads;
    }
    EXPECT_EQ(sim.last_run_cycles(), cycles_ref) << "threads=" << threads;
    EXPECT_EQ(heatmap_cells(sim.fabric()), heat_ref) << "threads=" << threads;
    EXPECT_GT(rec.total_events(), 0u);
  }

  // Determinism: the rings themselves are bit-identical across thread
  // counts — every tile, every retained event, every payload field.
  for (std::size_t r = 1; r < recorders.size(); ++r) {
    for (int y = 0; y < g.ny; ++y) {
      for (int x = 0; x < g.nx; ++x) {
        EXPECT_EQ(recorders[r].total_events(x, y),
                  recorders[0].total_events(x, y))
            << "recorder " << r << " tile (" << x << "," << y << ")";
        EXPECT_EQ(recorders[r].events(x, y), recorders[0].events(x, y))
            << "recorder " << r << " tile (" << x << "," << y << ")";
      }
    }
  }
}

} // namespace
} // namespace wss::wse
