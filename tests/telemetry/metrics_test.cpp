#include "telemetry/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "json_check.hpp"

namespace wss::telemetry {
namespace {

TEST(Counter, AccumulatesAndSnapshots) {
  MetricsRegistry reg;
  Counter& c = reg.counter("solver.iterations");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.counter("solver.iterations").value, 42u);
  // Reference stability: resolving again yields the same object.
  EXPECT_EQ(&c, &reg.counter("solver.iterations"));

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("solver.iterations"), 42u);
}

TEST(Gauge, LastWriteWins) {
  MetricsRegistry reg;
  reg.gauge("residual").set(1.0);
  reg.gauge("residual").set(1e-3);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("residual"), 1e-3);
}

TEST(Histogram, BucketEdgesArePowersOfTwo) {
  // An exact power of two lands in the bucket whose LOWER edge it is.
  const int i1 = Histogram::bucket_index(1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_edge(i1), 1.0);
  const int i2 = Histogram::bucket_index(2.0);
  EXPECT_EQ(i2, i1 + 1);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_edge(i2), 2.0);
  // Just below the edge stays in the lower bucket.
  EXPECT_EQ(Histogram::bucket_index(std::nextafter(2.0, 0.0)), i1);
  // Half-open: 1.999... and 1.0 share a bucket; 3.9 sits with 2.0.
  EXPECT_EQ(Histogram::bucket_index(1.5), i1);
  EXPECT_EQ(Histogram::bucket_index(3.9), i2);
}

TEST(Histogram, UnderflowOverflowAndNonPositive) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0);
  // Below 2^kMinExp underflows into bucket 0.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp - 3)),
            0);
  // Huge values clamp into the top bucket.
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kNumBuckets - 1);

  Histogram h;
  h.observe(0.0);
  h.observe(1e300);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, StatsAndQuantiles) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(1.0); // all in one bucket
  h.observe(1024.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1024.0);
  EXPECT_NEAR(h.mean(), (100.0 + 1024.0) / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
}

TEST(Registry, DiffIsolatesAWindow) {
  MetricsRegistry reg;
  reg.counter("spmv.calls").add(10);
  reg.histogram("res").observe(0.5);
  const auto before = reg.snapshot();

  reg.counter("spmv.calls").add(7);
  reg.counter("new.counter").add(3);
  reg.gauge("g").set(9.0);
  reg.histogram("res").observe(0.25);
  const auto after = reg.snapshot();

  const auto d = MetricsRegistry::diff(before, after);
  EXPECT_EQ(d.counters.at("spmv.calls"), 7u);
  EXPECT_EQ(d.counters.at("new.counter"), 3u);
  EXPECT_DOUBLE_EQ(d.gauges.at("g"), 9.0);
  EXPECT_EQ(d.histograms.at("res").count(), 1u);
  EXPECT_EQ(d.histograms.at("res").bucket(Histogram::bucket_index(0.25)), 1u);
}

TEST(Registry, JsonExportParsesBack) {
  MetricsRegistry reg;
  reg.counter("a.count").add(5);
  reg.gauge("b \"quoted\"\n").set(-2.5);
  reg.histogram("c").observe(4.0);
  reg.histogram("c").observe(4.5);

  bool ok = false;
  const auto doc = testjson::parse(reg.to_json(), &ok);
  ASSERT_TRUE(ok) << reg.to_json();
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("b \"quoted\"\n").number(), -2.5);
  const auto& hist = doc.at("histograms").at("c");
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number(), 4.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 4.5);
  // Sparse bucket encoding: one [lower_edge, count] pair at edge 4.
  ASSERT_EQ(hist.at("buckets").array().size(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").at(0).at(0).number(), 4.0);
  EXPECT_DOUBLE_EQ(hist.at("buckets").at(0).at(1).number(), 2.0);
}

TEST(Registry, PrettyMentionsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("iterations").add(3);
  reg.gauge("residual").set(0.125);
  reg.histogram("spmv_us").observe(10.0);
  const std::string text = reg.pretty();
  EXPECT_NE(text.find("iterations"), std::string::npos);
  EXPECT_NE(text.find("residual"), std::string::npos);
  EXPECT_NE(text.find("spmv_us"), std::string::npos);
}

} // namespace
} // namespace wss::telemetry
