#include "telemetry/span_tracer.hpp"

#include <gtest/gtest.h>

#include "json_check.hpp"
#include "telemetry/trace_adapter.hpp"
#include "wse/trace.hpp"

namespace wss::telemetry {
namespace {

TEST(SpanTracer, SpansNestAndClose) {
  SpanTracer t;
  t.begin("solve");
  t.begin("spmv");
  t.end();
  t.begin("dot");
  t.end();
  t.end();
  ASSERT_EQ(t.spans().size(), 3u);
  EXPECT_EQ(t.open_depth(), 0u);
  // Inner spans close first and carry depth 1; the outer carries depth 0.
  EXPECT_EQ(t.spans()[0].name, "spmv");
  EXPECT_EQ(t.spans()[0].depth, 1);
  EXPECT_EQ(t.spans()[2].name, "solve");
  EXPECT_EQ(t.spans()[2].depth, 0);
  // Containment: the outer span brackets the inner ones.
  EXPECT_LE(t.spans()[2].ts_us, t.spans()[0].ts_us);
  EXPECT_GE(t.spans()[2].ts_us + t.spans()[2].dur_us,
            t.spans()[1].ts_us + t.spans()[1].dur_us);
}

TEST(SpanTracer, ScopedGuardTolerantOfNull) {
  {
    SpanTracer::Scoped guard(nullptr, "noop"); // must not crash
  }
  SpanTracer t;
  {
    auto guard = t.scope("outer");
    auto inner = t.scope("inner");
  }
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.open_depth(), 0u);
}

TEST(SpanTracer, EndWithoutBeginIsNoop) {
  SpanTracer t;
  t.end();
  EXPECT_TRUE(t.spans().empty());
}

TEST(SpanTracer, ChromeJsonIsWellFormed) {
  SpanTracer t;
  t.begin("phase \"one\"", "solver");
  t.end();
  t.instant("marker", "solver");
  bool ok = false;
  const auto doc = testjson::parse(t.to_chrome_json(), &ok);
  ASSERT_TRUE(ok) << t.to_chrome_json();
  const auto& events = doc.at("traceEvents").array();
  // process_name metadata + 1 span + 1 instant.
  ASSERT_EQ(events.size(), 3u);
  bool saw_span = false;
  bool saw_instant = false;
  for (const auto& e : events) {
    if (e.at("ph").str() == "X") {
      saw_span = true;
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").number(), 0.0);
    }
    if (e.at("ph").str() == "i") saw_instant = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(TraceAdapter, ConvertsFabricTaskPairsToSlices) {
  wse::Tracer fabric_trace;
  fabric_trace.record(100, 2, 3, wse::TraceEventKind::TaskStart, "spmv");
  fabric_trace.record(150, 2, 3, wse::TraceEventKind::InstrComplete, "MulVV");
  fabric_trace.record(180, 2, 3, wse::TraceEventKind::Stall, "");
  fabric_trace.record(200, 2, 3, wse::TraceEventKind::TaskEnd, "spmv");
  fabric_trace.record(210, 2, 3, wse::TraceEventKind::TaskStart, "open_end");

  SpanTracer host;
  host.begin("solve");
  host.end();

  const double clock_hz = 1e6; // 1 cycle == 1 us for easy numbers
  const std::string text =
      chrome_trace_json(&host, {{&fabric_trace, clock_hz, "sim"}});
  bool ok = false;
  const auto doc = testjson::parse(text, &ok);
  ASSERT_TRUE(ok) << text;

  bool saw_task_slice = false;
  bool saw_stall = false;
  bool saw_instr = false;
  bool saw_unterminated = false;
  bool saw_host = false;
  for (const auto& e : doc.at("traceEvents").array()) {
    const std::string& name = e.at("name").str();
    const std::string& ph = e.at("ph").str();
    if (ph == "X" && name == "spmv") {
      saw_task_slice = true;
      EXPECT_DOUBLE_EQ(e.at("ts").number(), 100.0);
      EXPECT_DOUBLE_EQ(e.at("dur").number(), 100.0);
      EXPECT_DOUBLE_EQ(e.at("pid").number(), 1.0); // fabric pid
    }
    if (ph == "i" && name == "stall") saw_stall = true;
    if (ph == "i" && name == "MulVV") saw_instr = true;
    if (ph == "X" && name == "open_end (unterminated)") {
      saw_unterminated = true;
    }
    if (ph == "X" && name == "solve") {
      saw_host = true;
      EXPECT_DOUBLE_EQ(e.at("pid").number(), 0.0); // host pid
    }
  }
  EXPECT_TRUE(saw_task_slice);
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_instr);
  EXPECT_TRUE(saw_unterminated);
  EXPECT_TRUE(saw_host);
}

TEST(TraceAdapter, EmitsTileThreadMetadata) {
  wse::Tracer fabric_trace;
  fabric_trace.record(0, 4, 5, wse::TraceEventKind::TaskStart, "a");
  fabric_trace.record(1, 4, 5, wse::TraceEventKind::TaskEnd, "a");
  const std::string text =
      chrome_trace_json(nullptr, {{&fabric_trace, 1e9, "sim"}});
  bool ok = false;
  const auto doc = testjson::parse(text, &ok);
  ASSERT_TRUE(ok) << text;
  bool saw_tile_name = false;
  for (const auto& e : doc.at("traceEvents").array()) {
    if (e.at("name").str() == "thread_name" &&
        e.at("args").at("name").str() == "tile (4,5)") {
      saw_tile_name = true;
    }
  }
  EXPECT_TRUE(saw_tile_name);
}

} // namespace
} // namespace wss::telemetry
