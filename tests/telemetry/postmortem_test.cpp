// Post-mortem forensics tests (telemetry/postmortem.hpp): the crafted
// two-tile mutual-block deadlock whose wait-for graph must name the exact
// color cycle, bundle write -> load -> self-check round trips, the
// RunForensics env-driven attachment scope, and first-divergence diffing
// of a fault-injected run against its clean twin.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/flightrec.hpp"
#include "telemetry/postmortem.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"

namespace wss::wse {
namespace {

using telemetry::AnomalyInfo;
using telemetry::Bundle;
using telemetry::Divergence;
using telemetry::FlightRecorder;
using telemetry::PostmortemInputs;
using telemetry::ScalarHistory;
using telemetry::WaitForGraph;

/// Restores one environment variable on scope exit.
class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) {
      had_ = true;
      saved_ = cur;
    }
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }

private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

std::string temp_dir(const std::string& leaf) {
  return ::testing::TempDir() + "wss_postmortem_" + leaf;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// --- program builders (tests/wse/fabric_test.cpp idiom) -----------------

TileProgram sender_program(Color color, int len) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  const int t_src = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_tx = prog.add_fabric({color, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"send", false, false, false, {}};
  Instr s{};
  s.op = OpKind::Send;
  s.src1 = t_src;
  s.fabric = f_tx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, s, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

TileProgram receiver_program(int channel, int len, int* buf_out) {
  TileProgram prog;
  MemAllocator mem(48 * 1024);
  const int buf = mem.allocate(len, DType::F16);
  *buf_out = buf;
  const int t_dst = prog.add_tensor({buf, len, 1, DType::F16, 0});
  const int f_rx = prog.add_fabric({channel, len, DType::F16, 0, kNoTask,
                                    TrigAction::None});
  Task t{"recv", false, false, false, {}};
  Instr r{};
  r.op = OpKind::RecvToMem;
  r.dst = t_dst;
  r.fabric = f_rx;
  t.steps.push_back({TaskStep::Kind::Sync, -1, r, kNoTask});
  t.steps.push_back({TaskStep::Kind::SetDone, -1, {}, kNoTask});
  prog.add_task(std::move(t));
  prog.initial_task = 0;
  prog.memory_halfwords = mem.used_halfwords();
  return prog;
}

/// The crafted mutual block: tile (0,0) waits for color 2, which only
/// (1,0) could send west; tile (1,0) waits for color 1, which only (0,0)
/// could send east. Neither ever sends — a two-tile wait-for loop.
Fabric make_mutual_block_fabric() {
  static const CS1Params arch;
  Fabric fabric(2, 1, arch, SimParams{});
  int buf = 0;
  RoutingTable a;
  a.rule(2).deliver_channels.push_back(2);
  a.rule(1).add_forward(Dir::East);
  fabric.configure_tile(0, 0, receiver_program(2, 4, &buf), a);
  RoutingTable b;
  b.rule(1).deliver_channels.push_back(1);
  b.rule(2).add_forward(Dir::West);
  fabric.configure_tile(1, 0, receiver_program(1, 4, &buf), b);
  return fabric;
}

// --- watchdog + wait-for graph ------------------------------------------

TEST(Watchdog, MutualBlockStopsWithDeadlockForensics) {
  Fabric fabric = make_mutual_block_fabric();
  fabric.set_watchdog(50);
  const StopInfo stop = fabric.run(100000);
  EXPECT_EQ(stop.reason, StopInfo::Reason::Watchdog);
  EXPECT_TRUE(stop.deadlock);
  EXPECT_FALSE(fabric.all_done());
  EXPECT_GE(stop.stalled_cycles, 50u);
  EXPECT_LT(stop.cycles, 100000u) << "watchdog should stop well short of "
                                     "the cycle budget";
  ASSERT_EQ(stop.blocked_tiles.size(), 2u);
  EXPECT_EQ(stop.blocked_tiles[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(stop.blocked_tiles[1], (std::pair<int, int>{1, 0}));
  EXPECT_NE(stop.report.find("watchdog"), std::string::npos) << stop.report;
  EXPECT_NE(stop.report.find("(0,0)"), std::string::npos) << stop.report;
  EXPECT_NE(stop.report.find("(1,0)"), std::string::npos) << stop.report;
}

TEST(WaitForGraph, MutualBlockNamesTheExactColorCycle) {
  Fabric fabric = make_mutual_block_fabric();
  fabric.set_watchdog(50);
  (void)fabric.run(100000);

  const WaitForGraph graph = telemetry::build_wait_for_graph(fabric);
  // Both edges of the loop, with the awaited colors attached.
  bool a_to_b = false;
  bool b_to_a = false;
  for (const auto& e : graph.edges) {
    if (e.from_x == 0 && e.from_y == 0 && e.to_x == 1 && e.to_y == 0 &&
        e.color == 2) {
      a_to_b = true;
    }
    if (e.from_x == 1 && e.from_y == 0 && e.to_x == 0 && e.to_y == 0 &&
        e.color == 1) {
      b_to_a = true;
    }
  }
  EXPECT_TRUE(a_to_b);
  EXPECT_TRUE(b_to_a);
  // Cycle detection names the loop in fabric coordinates.
  ASSERT_FALSE(graph.cycles.empty());
  EXPECT_EQ(graph.cycles[0].name, "(0,0) --c2--> (1,0) --c1--> (0,0)");
  // Every tile in the loop is blocked, with its recv task identified.
  ASSERT_EQ(graph.blocked.size(), 2u);
  for (const auto& t : graph.blocked) {
    EXPECT_EQ(t.task, "recv") << "(" << t.x << "," << t.y << ")";
    EXPECT_FALSE(t.state.empty());
  }
  // A closed loop has no terminal suspects.
  EXPECT_TRUE(graph.terminals.empty());
}

// --- bundle write / load / self-check -----------------------------------

TEST(Bundle, WriteLoadSelfCheckRoundTrip) {
  Fabric fabric = make_mutual_block_fabric();
  FlightRecorder rec(2, 1, 32);
  fabric.set_flight_recorder(&rec);
  fabric.set_watchdog(50);
  const StopInfo stop = fabric.run(100000);
  ASSERT_TRUE(stop.deadlock);

  ScalarHistory scalars;
  scalars.record(0, "rho", 1.5);
  scalars.record(1, "rho", -2.25);

  AnomalyInfo anomaly;
  anomaly.kind = AnomalyInfo::Kind::Deadlock;
  anomaly.cycle = fabric.stats().cycles;
  anomaly.detail = "mutual block fixture";
  PostmortemInputs in;
  in.fabric = &fabric;
  in.recorder = &rec;
  in.scalars = &scalars;
  in.stop = &stop;
  in.program = "mutual-block 2x1";

  std::string path;
  std::string error;
  ASSERT_TRUE(telemetry::write_postmortem(temp_dir("roundtrip"), anomaly, in,
                                          &path, &error))
      << error;
  ASSERT_TRUE(file_exists(path)) << path;
  EXPECT_NE(path.find("postmortem_deadlock"), std::string::npos) << path;

  Bundle bundle;
  ASSERT_TRUE(telemetry::load_bundle(path, &bundle, &error)) << error;
  EXPECT_EQ(bundle.schema, telemetry::kPostmortemSchema);
  EXPECT_EQ(bundle.anomaly_kind, "deadlock");
  EXPECT_EQ(bundle.anomaly_cycle, fabric.stats().cycles);
  EXPECT_EQ(bundle.anomaly_detail, "mutual block fixture");
  EXPECT_EQ(bundle.program, "mutual-block 2x1");
  EXPECT_EQ(bundle.width, 2);
  EXPECT_EQ(bundle.height, 1);
  EXPECT_EQ(bundle.stop_reason, "watchdog");
  EXPECT_TRUE(bundle.deadlock);
  ASSERT_EQ(bundle.blocked_tiles.size(), 2u);
  EXPECT_EQ(bundle.blocked_tiles[0], (std::pair<int, int>{0, 0}));
  ASSERT_FALSE(bundle.wait_cycles.empty());
  EXPECT_EQ(bundle.wait_cycles[0], "(0,0) --c2--> (1,0) --c1--> (0,0)");
  EXPECT_GE(bundle.wait_edges.size(), 2u);
  EXPECT_EQ(bundle.flight_depth, 32u);
  EXPECT_FALSE(bundle.tiles.empty());
  ASSERT_EQ(bundle.scalars.size(), 2u);
  EXPECT_EQ(bundle.scalars[1].name, "rho");
  EXPECT_EQ(bundle.scalars[1].value, -2.25);

  ASSERT_TRUE(telemetry::self_check_bundle(bundle, &error)) << error;

  const std::string pretty = telemetry::pretty_bundle(bundle);
  EXPECT_NE(pretty.find("deadlock"), std::string::npos) << pretty;
  EXPECT_NE(pretty.find("(0,0) --c2--> (1,0) --c1--> (0,0)"),
            std::string::npos)
      << pretty;
  EXPECT_NE(pretty.find("mutual-block 2x1"), std::string::npos) << pretty;
}

TEST(Bundle, LoadRejectsMissingAndMalformedFiles) {
  Bundle bundle;
  std::string error;
  EXPECT_FALSE(telemetry::load_bundle(temp_dir("nope") + "/absent.json",
                                      &bundle, &error));
  EXPECT_FALSE(error.empty());

  const std::string dir = temp_dir("badjson");
  ASSERT_TRUE(telemetry::write_postmortem(dir, AnomalyInfo{},
                                          PostmortemInputs{}, nullptr,
                                          nullptr));
  const std::string bad = dir + "/bad.json";
  { std::ofstream(bad) << "{ not json"; }
  error.clear();
  EXPECT_FALSE(telemetry::load_bundle(bad, &bundle, &error));
  EXPECT_FALSE(error.empty());

  const std::string wrong = dir + "/wrong_schema.json";
  { std::ofstream(wrong) << "{\"schema\": \"other/9\"}"; }
  error.clear();
  EXPECT_FALSE(telemetry::load_bundle(wrong, &bundle, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

TEST(Bundle, SelfCheckCatchesStructuralDrift) {
  Fabric fabric = make_mutual_block_fabric();
  FlightRecorder rec(2, 1, 16);
  fabric.set_flight_recorder(&rec);
  fabric.set_watchdog(50);
  const StopInfo stop = fabric.run(100000);

  AnomalyInfo anomaly;
  anomaly.kind = AnomalyInfo::Kind::Deadlock;
  PostmortemInputs in;
  in.fabric = &fabric;
  in.recorder = &rec;
  in.stop = &stop;
  in.program = "mutual-block 2x1";
  std::string path;
  ASSERT_TRUE(telemetry::write_postmortem(temp_dir("drift"), anomaly, in,
                                          &path, nullptr));
  Bundle good;
  ASSERT_TRUE(telemetry::load_bundle(path, &good));
  ASSERT_TRUE(telemetry::self_check_bundle(good));

  std::string error;
  Bundle b = good;
  b.anomaly_kind = "gremlins";
  EXPECT_FALSE(telemetry::self_check_bundle(b, &error));
  EXPECT_FALSE(error.empty());

  b = good;
  b.width = 0;
  EXPECT_FALSE(telemetry::self_check_bundle(b));

  b = good;
  ASSERT_FALSE(b.tiles.empty());
  b.tiles[0].x = 99; // out of the declared fabric bounds
  EXPECT_FALSE(telemetry::self_check_bundle(b));

  b = good;
  ASSERT_FALSE(b.wait_edges.empty());
  b.wait_edges[0].color = 999; // beyond the fabric's color space
  EXPECT_FALSE(telemetry::self_check_bundle(b));
}

// --- scalar history ------------------------------------------------------

TEST(ScalarHistoryTest, BoundedRecordingCountsDrops) {
  ScalarHistory h;
  for (std::size_t i = 0; i < ScalarHistory::kMaxSamples + 5; ++i) {
    h.record(i, "rho", static_cast<double>(i));
  }
  EXPECT_EQ(h.samples().size(), ScalarHistory::kMaxSamples);
  EXPECT_EQ(h.dropped(), 5u);
  h.clear();
  EXPECT_TRUE(h.samples().empty());
  EXPECT_EQ(h.dropped(), 0u);
}

TEST(AnomalyKind, WireNamesAreStable) {
  EXPECT_STREQ(telemetry::to_string(AnomalyInfo::Kind::Deadlock), "deadlock");
  EXPECT_STREQ(telemetry::to_string(AnomalyInfo::Kind::NanScalar),
               "nan_scalar");
  EXPECT_STREQ(telemetry::to_string(AnomalyInfo::Kind::Breakdown),
               "breakdown");
  EXPECT_STREQ(telemetry::to_string(AnomalyInfo::Kind::FaultStorm),
               "fault_storm");
  EXPECT_STREQ(telemetry::to_string(AnomalyInfo::Kind::Manual), "manual");
}

// --- RunForensics scope --------------------------------------------------

TEST(RunForensics, InertWithoutPostmortemDir) {
  EnvGuard dir("WSS_POSTMORTEM_DIR");
  Fabric fabric = make_mutual_block_fabric();
  {
    telemetry::RunForensics forensics(fabric, "mutual-block 2x1");
    EXPECT_EQ(forensics.recorder(), nullptr);
    EXPECT_EQ(fabric.flight_recorder(), nullptr);
    forensics.finished(); // no dir -> no bundle, no crash
  }
  const std::string msg = [&] {
    telemetry::RunForensics forensics(fabric, "mutual-block 2x1");
    fabric.set_watchdog(50);
    const StopInfo stop = fabric.run(100000);
    return forensics.deadlock(stop, "did not complete");
  }();
  EXPECT_NE(msg.find("did not complete"), std::string::npos) << msg;
  EXPECT_NE(msg.find("watchdog"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("post-mortem bundle:"), std::string::npos) << msg;
}

TEST(RunForensics, AttachesRecorderAndWritesDeadlockBundle) {
  EnvGuard dir("WSS_POSTMORTEM_DIR");
  const std::string out = temp_dir("forensics");
  dir.set(out.c_str());

  Fabric fabric = make_mutual_block_fabric();
  std::string msg;
  {
    telemetry::RunForensics forensics(fabric, "mutual-block 2x1");
    ASSERT_NE(forensics.recorder(), nullptr);
    EXPECT_EQ(fabric.flight_recorder(), forensics.recorder());
    fabric.set_watchdog(50);
    const StopInfo stop = fabric.run(100000);
    ASSERT_TRUE(stop.deadlock);
    msg = forensics.deadlock(stop, "did not complete");
  }
  // Detached on scope exit.
  EXPECT_EQ(fabric.flight_recorder(), nullptr);
  // The message names the bundle it wrote; the bundle loads and passes
  // self-check, and its wait-for graph names the color cycle.
  const std::string marker = "post-mortem bundle: ";
  const std::size_t at = msg.find(marker);
  ASSERT_NE(at, std::string::npos) << msg;
  std::string path = msg.substr(at + marker.size());
  if (const std::size_t nl = path.find('\n'); nl != std::string::npos) {
    path.resize(nl);
  }
  Bundle bundle;
  std::string error;
  ASSERT_TRUE(telemetry::load_bundle(path, &bundle, &error)) << error;
  ASSERT_TRUE(telemetry::self_check_bundle(bundle, &error)) << error;
  EXPECT_EQ(bundle.anomaly_kind, "deadlock");
  ASSERT_FALSE(bundle.wait_cycles.empty());
  EXPECT_EQ(bundle.wait_cycles[0], "(0,0) --c2--> (1,0) --c1--> (0,0)");
}

TEST(RunForensics, RespectsPreAttachedRecorder) {
  EnvGuard dir("WSS_POSTMORTEM_DIR");
  dir.set(temp_dir("preattached").c_str());
  Fabric fabric = make_mutual_block_fabric();
  FlightRecorder mine(2, 1, 8);
  fabric.set_flight_recorder(&mine);
  {
    telemetry::RunForensics forensics(fabric, "mutual-block 2x1");
    EXPECT_EQ(forensics.recorder(), &mine);
    EXPECT_EQ(fabric.flight_recorder(), &mine);
  }
  // A recorder it did not attach is left attached.
  EXPECT_EQ(fabric.flight_recorder(), &mine);
}

TEST(MaybeWritePostmortem, DisabledWithoutDir) {
  EnvGuard dir("WSS_POSTMORTEM_DIR");
  EXPECT_EQ(telemetry::maybe_write_postmortem(AnomalyInfo{},
                                              PostmortemInputs{}),
            "");
}

// --- first divergence: faulted run vs clean twin ------------------------

/// Point-to-point: (0,0) sends `len` words east on `color`, (1,0)
/// receives them.
void configure_p2p(Fabric& fabric, Color color, int len) {
  RoutingTable send_routes;
  send_routes.rule(color).add_forward(Dir::East);
  fabric.configure_tile(0, 0, sender_program(color, len), send_routes);
  RoutingTable recv_routes;
  recv_routes.rule(color).deliver_channels.push_back(color);
  int buf = 0;
  fabric.configure_tile(1, 0, receiver_program(color, len, &buf),
                        recv_routes);
  for (int i = 0; i < len; ++i) {
    fabric.core(0, 0).host_write_f16(i, fp16_t(static_cast<double>(i)));
  }
}

std::string run_p2p_and_snapshot(const std::string& dir,
                                 const FaultPlan* plan) {
  static const CS1Params arch;
  Fabric fabric(2, 1, arch, SimParams{});
  FlightRecorder rec(2, 1, 64);
  fabric.set_flight_recorder(&rec);
  if (plan != nullptr) fabric.set_fault_plan(plan);
  configure_p2p(fabric, /*color=*/3, /*len=*/8);
  (void)fabric.run(1000);
  EXPECT_TRUE(fabric.all_done());

  AnomalyInfo anomaly;
  anomaly.kind = AnomalyInfo::Kind::Manual;
  anomaly.cycle = fabric.stats().cycles;
  anomaly.detail = plan != nullptr ? "faulted run" : "clean twin";
  PostmortemInputs in;
  in.fabric = &fabric;
  in.recorder = &rec;
  in.program = "p2p 2x1";
  std::string path;
  std::string error;
  EXPECT_TRUE(telemetry::write_postmortem(dir, anomaly, in, &path, &error))
      << error;
  return path;
}

// The ISSUE acceptance path end-to-end: a seeded FaultPlan that drops
// every wavelet on the (0,0)->east link starves the receiver into a
// deadlock; the RunForensics-written bundle must name the blocked tile
// and the color it awaits, pointing at the upstream (faulted) tile.
TEST(FaultPlanDeadlock, BundleNamesBlockedTileAndAwaitedColor) {
  EnvGuard dir("WSS_POSTMORTEM_DIR");
  const std::string out = temp_dir("fault_deadlock");
  dir.set(out.c_str());

  static const CS1Params arch;
  Fabric fabric(2, 1, arch, SimParams{});
  FaultPlan plan;
  plan.seed = 42;
  LinkFault drop;
  drop.x = 0;
  drop.y = 0;
  drop.dir = Dir::East;
  drop.kind = FaultKind::DropWavelet;
  drop.probability = 1.0;
  plan.link_faults.push_back(drop);
  fabric.set_fault_plan(&plan);
  configure_p2p(fabric, /*color=*/3, /*len=*/8);
  fabric.set_watchdog(100);

  telemetry::RunForensics forensics(fabric, "p2p 2x1");
  ASSERT_NE(forensics.recorder(), nullptr);
  const StopInfo stop = fabric.run(100000);
  ASSERT_FALSE(fabric.all_done());
  ASSERT_TRUE(stop.deadlock);
  EXPECT_GT(fabric.fault_stats().wavelets_dropped, 0u);

  const std::string msg = forensics.deadlock(stop, "p2p did not complete");
  const std::string marker = "post-mortem bundle: ";
  const std::size_t at = msg.find(marker);
  ASSERT_NE(at, std::string::npos) << msg;
  std::string path = msg.substr(at + marker.size());
  if (const std::size_t nl = path.find('\n'); nl != std::string::npos) {
    path.resize(nl);
  }

  Bundle bundle;
  std::string error;
  ASSERT_TRUE(telemetry::load_bundle(path, &bundle, &error)) << error;
  ASSERT_TRUE(telemetry::self_check_bundle(bundle, &error)) << error;
  EXPECT_EQ(bundle.anomaly_kind, "deadlock");
  EXPECT_GT(bundle.fault_total, 0u);
  // The receiver is the blocked tile...
  ASSERT_FALSE(bundle.blocked_tiles.empty());
  EXPECT_EQ(bundle.blocked_tiles[0], (std::pair<int, int>{1, 0}));
  // ...and the wait-for graph names what it awaits: color 3 from (0,0),
  // the tile whose outgoing link the plan is dropping.
  bool named = false;
  for (const auto& e : bundle.wait_edges) {
    if (e.from_x == 1 && e.from_y == 0 && e.to_x == 0 && e.to_y == 0 &&
        e.color == 3) {
      named = true;
    }
  }
  EXPECT_TRUE(named);
  const std::string pretty = telemetry::pretty_bundle(bundle);
  EXPECT_NE(pretty.find("(1,0)"), std::string::npos) << pretty;
}

TEST(Divergence, FaultedRunDivergesFromCleanTwinAtTheFaultSite) {
  const std::string dir = temp_dir("diff");
  const std::string clean_path = run_p2p_and_snapshot(dir, nullptr);

  // Corrupt every wavelet crossing the (0,0) -> east link; the first
  // divergence must surface as a delivery difference at the receiver.
  FaultPlan plan;
  plan.seed = 7;
  LinkFault corrupt;
  corrupt.x = 0;
  corrupt.y = 0;
  corrupt.dir = Dir::East;
  corrupt.kind = FaultKind::CorruptWavelet;
  corrupt.probability = 1.0;
  plan.link_faults.push_back(corrupt);
  const std::string faulted_path = run_p2p_and_snapshot(dir, &plan);

  Bundle clean;
  Bundle faulted;
  std::string error;
  ASSERT_TRUE(telemetry::load_bundle(clean_path, &clean, &error)) << error;
  ASSERT_TRUE(telemetry::load_bundle(faulted_path, &faulted, &error))
      << error;

  const Divergence d = telemetry::first_divergence(clean, faulted);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.x, 1);
  EXPECT_EQ(d.y, 0);
  EXPECT_GT(d.cycle, 0u);
  EXPECT_NE(d.a_event, d.b_event);
  const std::string pretty = telemetry::pretty_divergence(d);
  EXPECT_NE(pretty.find("(1,0)"), std::string::npos) << pretty;

  // A bundle diffed against itself reports no divergence.
  const Divergence same = telemetry::first_divergence(clean, clean);
  EXPECT_FALSE(same.found);

  // Program mismatch is flagged, not silently compared.
  Bundle other = faulted;
  other.program = "different-program 4x4";
  const Divergence mismatch = telemetry::first_divergence(clean, other);
  EXPECT_FALSE(mismatch.note.empty());
}

} // namespace
} // namespace wss::wse
