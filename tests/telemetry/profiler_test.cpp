// Cycle-attribution profiler (docs/PROFILING.md): conservation invariant
// (every tile-cycle lands in exactly one phase x category bin), agreement
// with the core's stall/idle counters (and therefore the stall/idle
// heatmap layers), phase coverage on a real BiCGStab dataflow run,
// iteration windows, crafted-fabric critical-path recovery, and the
// profiler-category heatmap layers.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "stencil/generators.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/profiler.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::telemetry {
namespace {

struct ProfiledRun {
  Profiler prof;
  std::uint64_t cycles = 0;
  wsekernels::BicgstabSimulation sim;
};

/// Run `iterations` of the BiCGStab dataflow on an nx x ny fabric with a
/// profiler attached for the whole run.
ProfiledRun run_profiled_bicgstab(int nx, int ny, int z, int iterations,
                                  std::uint64_t seed = 7) {
  const Grid3 g(nx, ny, z);
  auto ad = make_momentum_like7(g, 0.5, seed);
  auto bd = make_rhs(ad, make_smooth_solution(g));
  const auto bp = precondition_jacobi(ad, bd);
  const auto a16 = convert_stencil<fp16_t>(ad);
  const auto b16 = convert_field<fp16_t>(bp);
  const wse::CS1Params arch;
  const wse::SimParams sim;
  ProfiledRun r{Profiler(nx, ny), 0,
                wsekernels::BicgstabSimulation(a16, iterations, arch, sim)};
  r.sim.fabric().set_profiler(&r.prof);
  r.cycles = r.sim.run(b16).cycles;
  r.sim.fabric().set_profiler(nullptr);
  return r;
}

TEST(ProfilerConservation, EveryTileCycleAttributedExactlyOnce) {
  ProfiledRun r = run_profiled_bicgstab(5, 4, 12, 3);
  ASSERT_GT(r.prof.observed_cycles(), 0u);
  EXPECT_EQ(r.prof.observed_cycles(), r.cycles);
  ASSERT_EQ(r.prof.configured_tiles(), 5 * 4);

  // Per tile: the phase x category matrix sums to the observed cycles.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      const TileProfile& t = r.prof.tile(x, y);
      ASSERT_TRUE(t.configured);
      EXPECT_EQ(t.total_cycles(), r.prof.observed_cycles())
          << "tile (" << x << "," << y << ")";
      // Per phase: category bins partition the phase's cycles.
      std::uint64_t phases = 0;
      for (int p = 0; p < wse::kNumProgPhases; ++p) {
        phases += t.phase_total(p);
      }
      EXPECT_EQ(phases, t.total_cycles());
    }
  }

  // Aggregate: totals() over tiles conserves too, and to_json agrees.
  const PhaseCatMatrix m = r.prof.totals();
  std::uint64_t grand = 0;
  for (const auto& row : m) {
    for (const std::uint64_t v : row) grand += v;
  }
  EXPECT_EQ(grand, r.prof.observed_cycles() *
                       static_cast<std::uint64_t>(r.prof.configured_tiles()));

  const auto doc = jsonparse::parse(r.prof.to_json());
  ASSERT_TRUE(doc.ok()) << doc.error;
  const jsonparse::Value* conserved = doc.value->find("conserved");
  ASSERT_NE(conserved, nullptr);
  EXPECT_TRUE(conserved->boolean);
}

TEST(ProfilerConservation, CategoriesMatchCoreStallIdleCounters) {
  // On a fault-free run the attribution must reproduce the core's own
  // counters exactly: Compute == instr_cycles, SendBlocked + RecvStarved
  // == stall_cycles, Idle == idle_cycles — which also pins the profiler
  // to the stall/idle heatmap layers harvested from the same counters.
  ProfiledRun r = run_profiled_bicgstab(4, 4, 10, 2);
  const FabricHeatmaps maps = collect_heatmaps(r.sim.fabric());
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const TileProfile& t = r.prof.tile(x, y);
      const wse::CoreStats& cs = r.sim.fabric().core(x, y).stats();
      const std::string at =
          "tile (" + std::to_string(x) + "," + std::to_string(y) + ")";
      EXPECT_EQ(t.cat_total(static_cast<int>(CycleCat::Compute)),
                cs.instr_cycles)
          << at;
      EXPECT_EQ(t.cat_total(static_cast<int>(CycleCat::SendBlocked)) +
                    t.cat_total(static_cast<int>(CycleCat::RecvStarved)),
                cs.stall_cycles)
          << at;
      EXPECT_EQ(t.cat_total(static_cast<int>(CycleCat::Idle)),
                cs.idle_cycles)
          << at;
      EXPECT_EQ(t.cat_total(static_cast<int>(CycleCat::RouterStall)), 0u)
          << at;
      EXPECT_EQ(t.cat_total(static_cast<int>(CycleCat::FaultStall)), 0u)
          << at;
      // ... and the heatmap layers see the same numbers.
      EXPECT_EQ(maps.stall_cycles.at(x, y),
                static_cast<double>(cs.stall_cycles))
          << at;
      EXPECT_EQ(maps.idle_cycles.at(x, y),
                static_cast<double>(cs.idle_cycles))
          << at;
    }
  }
}

TEST(ProfilerPhases, BicgstabRunTouchesEveryProgramPhase) {
  ProfiledRun r = run_profiled_bicgstab(6, 6, 16, 3);
  const PhaseCatMatrix m = r.prof.totals();
  for (const wse::ProgPhase p :
       {wse::ProgPhase::SpMV, wse::ProgPhase::Dot, wse::ProgPhase::Axpy,
        wse::ProgPhase::AllReduce, wse::ProgPhase::Control}) {
    std::uint64_t total = 0;
    for (const std::uint64_t v : m[static_cast<std::size_t>(p)]) total += v;
    EXPECT_GT(total, 0u) << "phase " << wse::to_string(p);
  }
  // The solve phases must also show real compute, not just stalls.
  for (const wse::ProgPhase p : {wse::ProgPhase::SpMV, wse::ProgPhase::Dot,
                                 wse::ProgPhase::Axpy}) {
    EXPECT_GT(m[static_cast<std::size_t>(p)]
               [static_cast<std::size_t>(CycleCat::Compute)],
              0u)
        << "phase " << wse::to_string(p);
  }
}

TEST(ProfilerIterations, WindowsMatchIterationCount) {
  const int iterations = 4;
  ProfiledRun r = run_profiled_bicgstab(4, 4, 8, iterations);
  const auto windows = r.prof.iteration_windows();
  // The program marks each iteration entry plus the final drain window.
  ASSERT_GE(windows.size(), static_cast<std::size_t>(iterations));
  std::uint64_t prev_hi = 0;
  for (const auto& [lo, hi] : windows) {
    EXPECT_LT(lo, hi);
    EXPECT_GE(lo, prev_hi);
    prev_hi = hi;
  }
  EXPECT_LE(windows.back().second, r.prof.observed_cycles());

  // Every completed window yields a critical path inside the window.
  for (const CriticalPath& p : per_iteration_critical_paths(r.prof)) {
    if (p.hops.empty()) continue; // drain window may hold no compute
    EXPECT_GE(p.end_cycle, p.start_cycle);
    EXPECT_FALSE(p.truncated);
    EXPECT_FALSE(p.pretty().empty());
  }
}

// --- crafted-fabric critical path ---------------------------------------

/// Build a 3x1 chain by hand: tile 0 computes [0,9] and its cycle-9 word
/// reaches tile 1 at 12; tile 1 computes [12,19], reaches tile 2 at 22;
/// tile 2 computes [22,29]. The walk must recover exactly this chain.
Profiler crafted_chain() {
  Profiler prof(3, 1);
  for (int x = 0; x < 3; ++x) prof.mark_configured(x, 0);
  auto compute = [&](int x, std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t c = lo; c <= hi; ++c) {
      prof.record_cycle(x, 0, wse::ProgPhase::SpMV, CycleCat::Compute, c);
    }
  };
  auto recv = [&](int x, std::uint64_t at, int src_x, std::uint32_t sent) {
    wse::Flit f;
    f.src_x = static_cast<std::int16_t>(src_x);
    f.src_y = 0;
    f.src_cycle = sent;
    prof.record_recv(x, 0, at, f);
  };
  compute(0, 0, 9);
  recv(1, 12, 0, 9);
  compute(1, 12, 19);
  recv(2, 22, 1, 19);
  compute(2, 22, 29);
  for (std::uint64_t c = 0; c < 30; ++c) prof.add_observed_cycle();
  return prof;
}

TEST(CriticalPath, CraftedChainRecoveredExactly) {
  const Profiler prof = crafted_chain();
  const CriticalPath p = critical_path(prof, 0, 30);
  EXPECT_FALSE(p.truncated);
  EXPECT_EQ(p.start_cycle, 0u);
  EXPECT_EQ(p.end_cycle, 29u);
  EXPECT_EQ(p.length_cycles(), 29u);
  ASSERT_EQ(p.hops.size(), 3u);
  EXPECT_EQ(p.tile_hops(), 2u);
  // Chronological: source tile first.
  EXPECT_EQ(p.hops[0].x, 0);
  EXPECT_EQ(p.hops[0].from_cycle, 0u);
  EXPECT_EQ(p.hops[0].until_cycle, 9u);
  EXPECT_EQ(p.hops[1].x, 1);
  EXPECT_EQ(p.hops[1].from_cycle, 12u);
  EXPECT_EQ(p.hops[1].until_cycle, 19u);
  EXPECT_EQ(p.hops[2].x, 2);
  EXPECT_EQ(p.hops[2].from_cycle, 22u);
  EXPECT_EQ(p.hops[2].until_cycle, 29u);
}

TEST(CriticalPath, WindowRestrictsTheWalk) {
  const Profiler prof = crafted_chain();
  // A window starting after tile 0's send must cut the chain at tile 1.
  const CriticalPath p = critical_path(prof, 10, 30);
  ASSERT_EQ(p.hops.size(), 2u);
  EXPECT_EQ(p.hops[0].x, 1);
  EXPECT_EQ(p.hops[1].x, 2);
  EXPECT_EQ(p.end_cycle, 29u);
  // An empty window yields an empty path.
  EXPECT_TRUE(critical_path(prof, 30, 30).hops.empty());
}

TEST(CriticalPath, HopCapSetsTruncatedFlag) {
  const Profiler prof = crafted_chain();
  const CriticalPath p = critical_path(prof, 0, 30, /*max_hops=*/1);
  EXPECT_TRUE(p.truncated);
  EXPECT_LE(p.hops.size(), 2u);
}

TEST(CriticalPath, RecvLogOverflowSetsTruncatedFlag) {
  Profiler prof(1, 1);
  prof.mark_configured(0, 0);
  wse::Flit f;
  f.src_x = 0;
  f.src_y = 0;
  f.src_cycle = 0;
  for (std::size_t i = 0; i < Profiler::kMaxRecvRecords + 3; ++i) {
    prof.record_recv(0, 0, i + 1, f);
  }
  EXPECT_EQ(prof.tile(0, 0).recvs.size(), Profiler::kMaxRecvRecords);
  EXPECT_EQ(prof.tile(0, 0).recvs_dropped, 3u);
  prof.record_cycle(0, 0, wse::ProgPhase::SpMV, CycleCat::Compute, 5);
  prof.add_observed_cycle();
  const CriticalPath p = critical_path(prof, 0, 10);
  EXPECT_TRUE(p.truncated);
}

// --- profiler-category heatmap layers -----------------------------------

TEST(ProfilerHeatmaps, OneLayerPerCategoryMatchingTotals) {
  ProfiledRun r = run_profiled_bicgstab(4, 3, 8, 2);
  const std::vector<Heatmap> maps = profiler_heatmaps(r.prof);
  ASSERT_EQ(maps.size(), static_cast<std::size_t>(kNumCycleCats));
  for (int c = 0; c < kNumCycleCats; ++c) {
    const Heatmap& m = maps[static_cast<std::size_t>(c)];
    EXPECT_EQ(m.name,
              std::string("prof_") + to_string(static_cast<CycleCat>(c)));
    EXPECT_EQ(m.width, 4);
    EXPECT_EQ(m.height, 3);
    for (int y = 0; y < 3; ++y) {
      for (int x = 0; x < 4; ++x) {
        EXPECT_EQ(m.at(x, y),
                  static_cast<double>(r.prof.tile(x, y).cat_total(c)));
      }
    }
    EXPECT_FALSE(m.to_csv().empty());
    EXPECT_FALSE(m.ascii().empty());
  }
  // The category layers partition the observed cycles tile-by-tile.
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      double sum = 0.0;
      for (const Heatmap& m : maps) sum += m.at(x, y);
      EXPECT_EQ(sum, static_cast<double>(r.prof.observed_cycles()));
    }
  }
}

TEST(ProfilerJson, ReportsShapeAndWindows) {
  ProfiledRun r = run_profiled_bicgstab(4, 4, 8, 2);
  const auto doc = jsonparse::parse(r.prof.to_json());
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_EQ(doc.value->find("width")->number, 4.0);
  EXPECT_EQ(doc.value->find("height")->number, 4.0);
  EXPECT_EQ(doc.value->find("configured_tiles")->number, 16.0);
  const jsonparse::Value* phases = doc.value->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_TRUE(phases->is_object());
  EXPECT_EQ(phases->object->size(),
            static_cast<std::size_t>(wse::kNumProgPhases));
  const jsonparse::Value* windows = doc.value->find("iteration_windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_TRUE(windows->is_array());
  EXPECT_GE(windows->array->size(), 2u);
  EXPECT_FALSE(r.prof.pretty().empty());
}

TEST(ProfilerAttach, DimensionMismatchThrows) {
  const Grid3 g(3, 3, 4);
  auto ad = make_momentum_like7(g, 0.5, 3);
  Field3<double> dummy(g, 1.0);
  (void)precondition_jacobi(ad, dummy); // normalize the diagonal in place
  const auto a16 = convert_stencil<fp16_t>(ad);
  const wse::CS1Params arch;
  const wse::SimParams sim;
  wsekernels::SpMV3DSimulation s(a16, arch, sim);
  Profiler wrong(2, 3);
  EXPECT_THROW(s.fabric().set_profiler(&wrong), std::invalid_argument);
  Profiler right(3, 3);
  EXPECT_NO_THROW(s.fabric().set_profiler(&right));
  s.fabric().set_profiler(nullptr);
}

} // namespace
} // namespace wss::telemetry
