// Time-series sampler tests (telemetry/timeseries.hpp): the acceptance
// suite for continuous observability — sampling must be provably
// non-perturbing (result bits, cycle counts and heatmaps identical
// sampler-on/off), bit-identical at any WSS_SIM_THREADS, and exactly
// conservative (summed per-window profiler deltas == end-of-run profiler
// totals, including the partial final window closed by sample_now). Plus
// the artifact path: write -> load -> self-check round trips, the golden
// schema guard, first-divergent-frame diffing, and a cadence proptest
// over interval-vs-run-length edge cases (K > total cycles, zero-length
// runs, mid-run reset_control).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "support/proptest.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/io.hpp"
#include "telemetry/postmortem.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/fabric.hpp"
#include "wsekernels/bicgstab_program.hpp"

namespace wss::telemetry {
namespace {

using wse::CS1Params;
using wse::Fabric;
using wse::SimParams;
using wsekernels::BicgstabSimResult;
using wsekernels::BicgstabSimulation;

/// Restores one environment variable on scope exit (postmortem_test.cpp
/// idiom) — sampling tests must not inherit WSS_* observability switches.
class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) {
      had_ = true;
      saved_ = cur;
    }
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }

private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

struct CleanEnv {
  EnvGuard sample{"WSS_SAMPLE_CYCLES"};
  EnvGuard ledger{"WSS_LEDGER_DIR"};
  EnvGuard out{"WSS_TIMESERIES_OUT"};
  EnvGuard postmortem{"WSS_POSTMORTEM_DIR"};
};

struct System {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
};

System make_system(Grid3 g, std::uint64_t seed) {
  auto ad = make_momentum_like7(g, 0.5, seed);
  const auto xref = make_smooth_solution(g);
  auto bd = make_rhs(ad, xref);
  Field3<double> bp = precondition_jacobi(ad, bd);
  return {convert_stencil<fp16_t>(ad), convert_field<fp16_t>(bp)};
}

/// One BiCGStab simulator run; optionally sampled (interval > 0) and/or
/// profiled, at a given thread count. Closes the final window.
struct RunOutput {
  BicgstabSimResult result;
  std::uint64_t cycles = 0;
  FabricHeatmaps heatmaps;
  std::vector<TimeSeriesFrame> frames;
  PhaseCatMatrix totals{};
};

RunOutput run_bicgstab(const System& s, int threads, std::uint64_t interval,
                       bool with_profiler) {
  CS1Params arch;
  SimParams sim;
  BicgstabSimulation simulation(s.a, 2, arch, sim);
  simulation.fabric().set_threads(threads);
  Profiler prof(s.a.grid.nx, s.a.grid.ny);
  if (with_profiler) simulation.fabric().set_profiler(&prof);
  TimeSeriesSampler sampler(interval);
  if (interval > 0) simulation.fabric().set_sampler(&sampler);
  RunOutput out;
  out.result = simulation.run(s.b);
  simulation.fabric().sample_now();
  out.cycles = simulation.fabric().stats().cycles;
  out.heatmaps = collect_heatmaps(simulation.fabric());
  out.frames.assign(sampler.frames().begin(), sampler.frames().end());
  if (with_profiler) out.totals = prof.totals();
  simulation.fabric().set_sampler(nullptr);
  simulation.fabric().set_profiler(nullptr);
  return out;
}

void expect_bits_identical(const RunOutput& want, const RunOutput& got) {
  ASSERT_EQ(want.result.x.size(), got.result.x.size());
  for (std::size_t i = 0; i < want.result.x.size(); ++i) {
    ASSERT_EQ(want.result.x[i].bits(), got.result.x[i].bits()) << "x[" << i
                                                               << "]";
    ASSERT_EQ(want.result.r[i].bits(), got.result.r[i].bits()) << "r[" << i
                                                               << "]";
  }
  EXPECT_EQ(want.result.cycles, got.result.cycles);
  EXPECT_EQ(want.cycles, got.cycles);
  const auto want_maps = want.heatmaps.all();
  const auto got_maps = got.heatmaps.all();
  ASSERT_EQ(want_maps.size(), got_maps.size());
  for (std::size_t m = 0; m < want_maps.size(); ++m) {
    EXPECT_EQ(want_maps[m]->cells, got_maps[m]->cells)
        << "heatmap " << want_maps[m]->name;
  }
}

// --- non-perturbation + determinism (acceptance criteria) ---------------

TEST(TimeSeries, SamplerDoesNotPerturbTheRun) {
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 12), 7);
  const RunOutput off = run_bicgstab(s, 1, 0, /*with_profiler=*/false);
  const RunOutput on = run_bicgstab(s, 1, 64, /*with_profiler=*/false);
  EXPECT_GT(on.frames.size(), 2u) << "sampling was supposed to be on";
  expect_bits_identical(off, on);
}

TEST(TimeSeries, FramesBitIdenticalAcrossThreadCounts) {
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 12), 11);
  const RunOutput t1 = run_bicgstab(s, 1, 128, /*with_profiler=*/true);
  ASSERT_GT(t1.frames.size(), 1u);
  for (const int threads : {2, 8}) {
    const RunOutput tn = run_bicgstab(s, threads, 128, /*with_profiler=*/true);
    expect_bits_identical(t1, tn);
    ASSERT_EQ(t1.frames.size(), tn.frames.size()) << threads << " threads";
    for (std::size_t i = 0; i < t1.frames.size(); ++i) {
      TimeSeriesFrame a = t1.frames[i];
      TimeSeriesFrame b = tn.frames[i];
      EXPECT_EQ(a, b) << "frame " << i << " diverged at " << threads
                      << " threads";
    }
  }
}

TEST(TimeSeries, WindowedProfilerDeltasSumToTotalsExactly) {
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 12), 13);
  for (const int threads : {1, 2, 8}) {
    const RunOutput out = run_bicgstab(s, threads, 100, /*with_profiler=*/true);
    ASSERT_GT(out.frames.size(), 1u);
    // The last frame is the partial window closed by sample_now().
    EXPECT_NE(out.frames.back().window_cycles, 0u);
    std::array<std::uint64_t, wse::kNumProgPhases> phase_sum{};
    std::array<std::uint64_t, kNumCycleCats> cat_sum{};
    std::uint64_t window_sum = 0;
    for (const TimeSeriesFrame& f : out.frames) {
      ASSERT_TRUE(f.has_profiler);
      window_sum += f.window_cycles;
      for (std::size_t p = 0; p < phase_sum.size(); ++p) {
        phase_sum[p] += f.prof_phase[p];
      }
      for (std::size_t c = 0; c < cat_sum.size(); ++c) {
        cat_sum[c] += f.prof_cat[c];
      }
    }
    EXPECT_EQ(window_sum, out.cycles) << "windows must tile the run";
    for (int p = 0; p < wse::kNumProgPhases; ++p) {
      std::uint64_t want = 0;
      for (int c = 0; c < kNumCycleCats; ++c) {
        want += out.totals[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(c)];
      }
      EXPECT_EQ(phase_sum[static_cast<std::size_t>(p)], want)
          << "phase " << p << " at " << threads << " threads";
    }
    for (int c = 0; c < kNumCycleCats; ++c) {
      std::uint64_t want = 0;
      for (int p = 0; p < wse::kNumProgPhases; ++p) {
        want += out.totals[static_cast<std::size_t>(p)]
                          [static_cast<std::size_t>(c)];
      }
      EXPECT_EQ(cat_sum[static_cast<std::size_t>(c)], want)
          << "category " << c << " at " << threads << " threads";
    }
  }
}

// --- artifact round trip ------------------------------------------------

TEST(TimeSeries, WriteLoadSelfCheckRoundTrip) {
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 8), 17);
  CS1Params arch;
  SimParams sim;
  BicgstabSimulation simulation(s.a, 2, arch, sim);
  TimeSeriesSampler sampler(64);
  sampler.set_program("roundtrip 4x4x8");
  simulation.fabric().set_sampler(&sampler);
  (void)simulation.run(s.b);
  simulation.fabric().sample_now();
  simulation.fabric().set_sampler(nullptr);

  ScalarHistory scalars;
  scalars.record(0, "residual", 1.0);
  scalars.record(1, "residual", 0.125);
  scalars.record(1, "rho", -3.5);

  const std::string path =
      ::testing::TempDir() + "wss_timeseries_roundtrip/series.json";
  std::string error;
  ASSERT_TRUE(write_timeseries(path, sampler, &scalars, &error)) << error;

  TimeSeries ts;
  ASSERT_TRUE(load_timeseries(path, &ts, &error)) << error;
  EXPECT_TRUE(self_check_timeseries(ts, &error)) << error;
  EXPECT_EQ(ts.schema, kTimeseriesSchema);
  EXPECT_EQ(ts.program, "roundtrip 4x4x8");
  EXPECT_EQ(ts.width, 4);
  EXPECT_EQ(ts.height, 4);
  EXPECT_EQ(ts.sample_cycles, 64u);
  ASSERT_EQ(ts.frames.size(), sampler.frames().size());
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    EXPECT_EQ(ts.frames[i], sampler.frames()[i]) << "frame " << i;
  }
  ASSERT_EQ(ts.scalars.size(), 3u);
  EXPECT_EQ(ts.scalars[1].name, "residual");
  EXPECT_EQ(ts.scalars[1].iteration, 1u);
  EXPECT_EQ(ts.scalars[1].value, 0.125);
  EXPECT_EQ(ts.scalars[2].value, -3.5);
}

TEST(TimeSeries, TornTrailingFrameFailsCleanlyThenRecovers) {
  // The skip-and-retry contract `wss_top --follow` leans on: catching the
  // writer mid-flush (file truncated inside the trailing frame) must come
  // back as a clean load failure — no crash, no half-parsed series — and
  // the very next read of the completed file must succeed. The follow
  // loop keeps its last good display on a failed tick, so cleanly
  // rejecting a torn read IS the tolerance.
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 8), 23);
  CS1Params arch;
  SimParams sim;
  BicgstabSimulation simulation(s.a, 2, arch, sim);
  TimeSeriesSampler sampler(64);
  sampler.set_program("torn 4x4x8");
  simulation.fabric().set_sampler(&sampler);
  (void)simulation.run(s.b);
  simulation.fabric().sample_now();
  simulation.fabric().set_sampler(nullptr);

  const std::string path =
      ::testing::TempDir() + "wss_timeseries_torn/series.json";
  std::string error;
  ASSERT_TRUE(write_timeseries(path, sampler, nullptr, &error)) << error;

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(full.size(), 16u);

  // Tear the file at several depths into its tail — every cut must fail
  // cleanly with a diagnostic, never crash or yield a series.
  for (const double frac : {0.5, 0.9, 0.99}) {
    const std::size_t cut =
        static_cast<std::size_t>(static_cast<double>(full.size()) * frac);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    TimeSeries ts;
    error.clear();
    EXPECT_FALSE(load_timeseries(path, &ts, &error))
        << "torn at " << cut << "/" << full.size() << " bytes parsed";
    EXPECT_FALSE(error.empty());
  }

  // Writer finishes the flush: the next tick loads and self-checks.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  TimeSeries ts;
  ASSERT_TRUE(load_timeseries(path, &ts, &error)) << error;
  EXPECT_TRUE(self_check_timeseries(ts, &error)) << error;
}

TEST(TimeSeries, GoldenFileSelfChecks) {
  TimeSeries ts;
  std::string error;
  ASSERT_TRUE(load_timeseries(WSS_TIMESERIES_GOLDEN, &ts, &error)) << error;
  EXPECT_TRUE(self_check_timeseries(ts, &error)) << error;
  EXPECT_GT(ts.frames.size(), 0u);
  EXPECT_FALSE(pretty_timeseries(ts).empty());
}

TEST(TimeSeries, FirstFrameDivergenceLocalizesTheDifference) {
  TimeSeries a;
  a.schema = kTimeseriesSchema;
  a.program = "diff-test";
  a.sample_cycles = 10;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    TimeSeriesFrame f;
    f.cycle = 10 * i;
    f.window_cycles = 10;
    f.instr_cycles = 100 + i;
    a.frames.push_back(f);
  }
  TimeSeries b = a;
  const FrameDivergence same = first_frame_divergence(a, b);
  EXPECT_FALSE(same.found);

  b.frames[2].instr_cycles += 1;
  const FrameDivergence d = first_frame_divergence(a, b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 2u);
  EXPECT_EQ(d.cycle, 30u);
  EXPECT_NE(d.a_frame, d.b_frame);
  EXPECT_FALSE(pretty_frame_divergence(d).empty());

  // A truncated series diverges at its end, against "-".
  TimeSeries shorter = a;
  shorter.frames.pop_back();
  const FrameDivergence tail = first_frame_divergence(a, shorter);
  ASSERT_TRUE(tail.found);
  EXPECT_EQ(tail.index, 3u);
  EXPECT_EQ(tail.b_frame, "-");
}

TEST(TimeSeries, SparklineScalesToMax) {
  EXPECT_EQ(sparkline({}, 4), "    ");
  const std::string flat = sparkline({1.0, 1.0, 1.0, 1.0}, 4);
  EXPECT_EQ(flat, "@@@@");
  const std::string ramp = sparkline({0.0, 10.0}, 2);
  EXPECT_EQ(ramp.size(), 2u);
  EXPECT_EQ(ramp[1], '@');
  EXPECT_LT(ramp[0], ramp[1]);
}

// --- cadence edge cases (proptest) --------------------------------------

TEST(TimeSeries, CadenceCoversIntervalVsRunLengthEdgeCases) {
  CleanEnv env;
  proptest::check(
      "sampling cadence tiles any run length",
      [](proptest::Case& c) {
        const int width = c.size(2, 4);
        const int height = c.size(2, 4);
        // Interval may far exceed the run length (K > total cycles).
        const std::uint64_t interval =
            static_cast<std::uint64_t>(c.size(1, 400));
        const std::uint64_t steps1 =
            static_cast<std::uint64_t>(c.size(0, 150));
        const std::uint64_t steps2 =
            static_cast<std::uint64_t>(c.size(0, 150));
        static const CS1Params arch;
        Fabric fabric(width, height, arch, SimParams{});
        TimeSeriesSampler sampler(interval);
        fabric.set_sampler(&sampler);
        for (std::uint64_t i = 0; i < steps1; ++i) fabric.step();
        // Mid-run control reset: cumulative core counters shrink; deltas
        // must restart instead of underflowing.
        fabric.reset_control();
        for (std::uint64_t i = 0; i < steps2; ++i) fabric.step();
        fabric.sample_now();
        // A second close is a no-op (no cycles elapsed since the last).
        const std::size_t frames_after_close = sampler.frames().size();
        fabric.sample_now();
        ASSERT_EQ(sampler.frames().size(), frames_after_close);

        const std::uint64_t total = steps1 + steps2;
        if (total == 0) {
          // run(0): no cycles, no frames — never a zero-width frame.
          ASSERT_TRUE(sampler.frames().empty());
        } else {
          ASSERT_FALSE(sampler.frames().empty());
          std::uint64_t window_sum = 0;
          std::uint64_t prev_cycle = 0;
          for (const TimeSeriesFrame& f : sampler.frames()) {
            ASSERT_GT(f.window_cycles, 0u);
            ASSERT_GT(f.cycle, prev_cycle);
            ASSERT_EQ(f.cycle - prev_cycle, f.window_cycles);
            prev_cycle = f.cycle;
            window_sum += f.window_cycles;
          }
          ASSERT_EQ(window_sum, total) << "windows must tile the run";
          ASSERT_EQ(sampler.frames().back().cycle, total);
          if (interval > total) {
            // K > total cycles: only the close produced a frame.
            ASSERT_EQ(sampler.frames().size(), 1u);
          }
        }
        fabric.set_sampler(nullptr);
      },
      {.cases = 10, .seed = 2026});
}

// --- postmortem embedding (satellite) -----------------------------------

TEST(TimeSeries, PostmortemBundleEmbedsTheSeriesTail) {
  CleanEnv env;
  const System s = make_system(Grid3(4, 4, 8), 23);
  CS1Params arch;
  SimParams sim;
  BicgstabSimulation simulation(s.a, 2, arch, sim);
  TimeSeriesSampler sampler(32);
  simulation.fabric().set_sampler(&sampler);
  (void)simulation.run(s.b);
  simulation.fabric().sample_now();
  simulation.fabric().set_sampler(nullptr);
  ASSERT_GT(sampler.frames().size(), 2u);

  AnomalyInfo anomaly;
  anomaly.kind = AnomalyInfo::Kind::Manual;
  anomaly.cycle = simulation.fabric().stats().cycles;
  anomaly.detail = "timeseries tail embedding test";
  PostmortemInputs in;
  in.fabric = &simulation.fabric();
  in.timeseries = &sampler;
  in.program = "bicgstab 4x4x8";
  const std::string dir = ::testing::TempDir() + "wss_timeseries_postmortem";
  reset_output_stem_claims();
  std::string path;
  std::string error;
  ASSERT_TRUE(write_postmortem(dir, anomaly, in, &path, &error)) << error;

  Bundle bundle;
  ASSERT_TRUE(load_bundle(path, &bundle, &error)) << error;
  EXPECT_TRUE(self_check_bundle(bundle, &error)) << error;
  EXPECT_EQ(bundle.ts_sample_cycles, 32u);
  EXPECT_EQ(bundle.ts_frames_total, sampler.frames().size());
  const std::size_t want_tail =
      std::min(sampler.frames().size(), kPostmortemTimeseriesTail);
  ASSERT_EQ(bundle.ts_frames.size(), want_tail);
  // The retained tail is the *last* frames, bit-for-bit.
  const std::size_t skip = sampler.frames().size() - want_tail;
  for (std::size_t i = 0; i < want_tail; ++i) {
    EXPECT_EQ(bundle.ts_frames[i], sampler.frames()[skip + i]) << "tail frame "
                                                               << i;
  }
  const std::string rendered = pretty_bundle(bundle);
  EXPECT_NE(rendered.find("time-series tail"), std::string::npos) << rendered;
}

} // namespace
} // namespace wss::telemetry
