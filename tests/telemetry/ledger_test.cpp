// Run-ledger tests (telemetry/ledger.hpp): run-ID minting, manifest JSON
// round trips through the append-only JSONL file, torn-line tolerance,
// prefix lookup, manifest diffing/trending, and the RunForensics
// integration — two fabrics finishing in one process must land two
// isolated ledger entries with two distinct time-series artifacts (the
// claim_output_stem pattern).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/io.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/timeseries.hpp"
#include "wsekernels/allreduce_program.hpp"

namespace wss::telemetry {
namespace {

/// Restores one environment variable on scope exit (postmortem_test.cpp
/// idiom).
class EnvGuard {
public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* cur = std::getenv(name);
    if (cur != nullptr) {
      had_ = true;
      saved_ = cur;
    }
    ::unsetenv(name);
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }

private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

// Fresh per-test scratch dir: the ledger is append-only by design, so a
// stale dir from a previous test-suite run would accumulate entries.
std::string temp_dir(const std::string& leaf) {
  std::string dir = ::testing::TempDir() + "wss_ledger_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

RunManifest make_manifest(const std::string& id) {
  RunManifest m;
  m.run_id = id;
  m.program = "bicgstab 6x6x64";
  m.width = 6;
  m.height = 6;
  m.threads = 2;
  m.cycles = 12345;
  m.outcome = "all_done";
  m.fault_total = 3;
  m.env.emplace_back("WSS_SAMPLE_CYCLES", "256");
  m.env.emplace_back("WSS_SIM_THREADS", "2");
  m.add_metric("iterations", 4.0);
  m.add_metric("residual", 9.128e-05);
  m.add_artifact("timeseries", "/tmp/x.timeseries.json");
  return m;
}

TEST(Ledger, RunIdsAreSluggedAndUnique) {
  const std::string a = next_run_id("BiCGStab 6x6x64 (fused!)");
  const std::string b = next_run_id("BiCGStab 6x6x64 (fused!)");
  EXPECT_NE(a, b);
  // Slug: lowercased [a-z0-9-], no spaces/punctuation runs.
  EXPECT_EQ(a.find("bicgstab-6x6x64"), 0u) << a;
  EXPECT_EQ(a.find(' '), std::string::npos);
  EXPECT_EQ(a.find('('), std::string::npos);
}

TEST(Ledger, ManifestRoundTripsThroughTheJsonlFile) {
  const std::string dir = temp_dir("roundtrip");
  const RunManifest want = make_manifest("roundtrip-1");
  std::string error;
  ASSERT_TRUE(append_run_manifest(dir, want, &error)) << error;
  ASSERT_TRUE(append_run_manifest(dir, make_manifest("roundtrip-2"), &error))
      << error;

  Ledger ledger;
  ASSERT_TRUE(load_ledger(dir, &ledger, &error)) << error;
  EXPECT_EQ(ledger.skipped_lines, 0u);
  ASSERT_GE(ledger.runs.size(), 2u);
  const RunManifest* got = find_run(ledger, "roundtrip-1", &error);
  ASSERT_NE(got, nullptr) << error;
  EXPECT_EQ(got->program, want.program);
  EXPECT_EQ(got->width, want.width);
  EXPECT_EQ(got->height, want.height);
  EXPECT_EQ(got->threads, want.threads);
  EXPECT_EQ(got->cycles, want.cycles);
  EXPECT_EQ(got->outcome, want.outcome);
  EXPECT_EQ(got->fault_total, want.fault_total);
  ASSERT_EQ(got->env.size(), want.env.size());
  EXPECT_EQ(got->env[0].first, "WSS_SAMPLE_CYCLES");
  EXPECT_EQ(got->env[0].second, "256");
  ASSERT_EQ(got->metrics.size(), 2u);
  EXPECT_EQ(got->metrics[0].name, "iterations");
  EXPECT_EQ(got->metrics[0].value, 4.0);
  EXPECT_EQ(got->metrics[1].value, 9.128e-05);
  ASSERT_EQ(got->artifacts.size(), 1u);
  EXPECT_EQ(got->artifacts[0].kind, "timeseries");
  EXPECT_EQ(got->artifacts[0].path, "/tmp/x.timeseries.json");
}

TEST(Ledger, TornTrailingLinesAreSkippedNotFatal) {
  const std::string dir = temp_dir("torn");
  std::string error;
  ASSERT_TRUE(append_run_manifest(dir, make_manifest("torn-ok"), &error))
      << error;
  {
    std::ofstream out(dir + "/ledger.jsonl", std::ios::app | std::ios::binary);
    out << "{\"schema\":\"wss.runledger/1\",\"run_id\":\"torn-half"; // torn
    out << "\n";
  }
  Ledger ledger;
  ASSERT_TRUE(load_ledger(dir + "/ledger.jsonl", &ledger, &error)) << error;
  ASSERT_EQ(ledger.runs.size(), 1u);
  EXPECT_EQ(ledger.runs[0].run_id, "torn-ok");
  EXPECT_EQ(ledger.skipped_lines, 1u);
}

TEST(Ledger, FindRunResolvesPrefixesAndReportsAmbiguity) {
  Ledger ledger;
  ledger.runs.push_back(make_manifest("alpha-100-1"));
  ledger.runs.push_back(make_manifest("alpha-100-2"));
  ledger.runs.push_back(make_manifest("beta-200-1"));
  std::string error;
  const RunManifest* exact = find_run(ledger, "beta-200-1", &error);
  ASSERT_NE(exact, nullptr) << error;
  const RunManifest* prefix = find_run(ledger, "beta", &error);
  ASSERT_NE(prefix, nullptr) << error;
  EXPECT_EQ(prefix->run_id, "beta-200-1");
  EXPECT_EQ(find_run(ledger, "alpha", &error), nullptr);
  EXPECT_NE(error.find("ambiguous"), std::string::npos) << error;
  EXPECT_EQ(find_run(ledger, "gamma", &error), nullptr);
}

TEST(Ledger, DiffTrendAndTablesRender) {
  Ledger ledger;
  RunManifest a = make_manifest("render-1");
  RunManifest b = make_manifest("render-2");
  b.cycles = 20000;
  b.outcome = "watchdog";
  b.metrics[1].value = 4.5e-03;
  b.env[0].second = "512";
  ledger.runs.push_back(a);
  ledger.runs.push_back(b);

  const std::string table = pretty_ledger_table(ledger);
  EXPECT_NE(table.find("render-1"), std::string::npos) << table;
  EXPECT_NE(table.find("render-2"), std::string::npos) << table;

  const std::string show = pretty_manifest(a);
  EXPECT_NE(show.find("bicgstab 6x6x64"), std::string::npos) << show;
  EXPECT_NE(show.find("WSS_SAMPLE_CYCLES"), std::string::npos) << show;

  const std::string diff = diff_manifests(a, b);
  EXPECT_NE(diff.find("outcome"), std::string::npos) << diff;
  EXPECT_NE(diff.find("cycles"), std::string::npos) << diff;
  EXPECT_NE(diff.find("WSS_SAMPLE_CYCLES"), std::string::npos) << diff;
  const std::string same = diff_manifests(a, a);
  EXPECT_NE(same.find("identical"), std::string::npos) << same;

  const std::string trend = pretty_trend(ledger, "residual");
  EXPECT_NE(trend.find("residual"), std::string::npos) << trend;
  EXPECT_NE(trend.find("render-2"), std::string::npos) << trend;
}

TEST(Ledger, WssEnvironmentSnapshotsOnlyWssVarsSorted) {
  EnvGuard a("WSS_LEDGER_TEST_B");
  EnvGuard b("WSS_LEDGER_TEST_A");
  a.set("2");
  b.set("1");
  const auto env = wss_environment();
  std::vector<std::pair<std::string, std::string>> mine;
  for (const auto& kv : env) {
    EXPECT_EQ(kv.first.rfind("WSS_", 0), 0u) << kv.first;
    if (kv.first.rfind("WSS_LEDGER_TEST_", 0) == 0) mine.push_back(kv);
  }
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].first, "WSS_LEDGER_TEST_A");
  EXPECT_EQ(mine[0].second, "1");
  EXPECT_EQ(mine[1].first, "WSS_LEDGER_TEST_B");
  EXPECT_EQ(mine[1].second, "2");
}

// --- RunForensics integration: two fabrics, one process -----------------

TEST(Ledger, TwoFabricRunsLandIsolatedEntriesAndArtifacts) {
  EnvGuard sample("WSS_SAMPLE_CYCLES");
  EnvGuard ledger_env("WSS_LEDGER_DIR");
  EnvGuard out("WSS_TIMESERIES_OUT");
  EnvGuard postmortem("WSS_POSTMORTEM_DIR");
  const std::string dir = temp_dir("two_fabrics");
  sample.set("64");
  ledger_env.set(dir.c_str());
  reset_output_stem_claims();

  const wse::CS1Params arch;
  const wse::SimParams sim;
  std::vector<float> contributions(9, 1.0f);
  wsekernels::AllReduceSimulation sim_a(3, 3, arch, sim);
  (void)sim_a.run(contributions);
  wsekernels::AllReduceSimulation sim_b(3, 3, arch, sim);
  (void)sim_b.run(contributions);

  Ledger ledger;
  std::string error;
  ASSERT_TRUE(load_ledger(dir, &ledger, &error)) << error;
  EXPECT_EQ(ledger.skipped_lines, 0u);
  ASSERT_EQ(ledger.runs.size(), 2u);
  EXPECT_NE(ledger.runs[0].run_id, ledger.runs[1].run_id);
  std::vector<std::string> series_paths;
  for (const RunManifest& run : ledger.runs) {
    EXPECT_EQ(run.outcome, "all_done");
    EXPECT_EQ(run.width, 3);
    EXPECT_EQ(run.height, 3);
    EXPECT_GT(run.cycles, 0u);
    // The env snapshot preserves the switches that shaped the run.
    bool saw_sample = false;
    for (const auto& kv : run.env) {
      if (kv.first == "WSS_SAMPLE_CYCLES") {
        saw_sample = true;
        EXPECT_EQ(kv.second, "64");
      }
    }
    EXPECT_TRUE(saw_sample);
    for (const RunArtifact& artifact : run.artifacts) {
      if (artifact.kind != "timeseries") continue;
      series_paths.push_back(artifact.path);
    }
  }
  // Two runs -> two distinct series files, each loadable and attributable
  // to its own run (claim_output_stem isolation).
  ASSERT_EQ(series_paths.size(), 2u);
  EXPECT_NE(series_paths[0], series_paths[1]);
  for (const std::string& path : series_paths) {
    TimeSeries ts;
    ASSERT_TRUE(load_timeseries(path, &ts, &error)) << error;
    EXPECT_TRUE(self_check_timeseries(ts, &error)) << error;
    EXPECT_GT(ts.frames.size(), 0u);
  }
}

} // namespace
} // namespace wss::telemetry
