// Health-engine tests (telemetry/health.hpp): per-detector unit tests over
// synthetic frames/scalars, the wss.alerts/1 artifact round trip + golden
// schema guard + first-divergent-alert diff, and the end-to-end acceptance
// matrix — the engine must be non-perturbing (result bits and cycle counts
// identical with WSS_HEALTH on/off), the drift gate must fire on a
// stalled-router slowdown and stay silent on a clean run, and a fault
// storm must yield a critical alert whose auto-captured post-mortem and
// ledger manifest reference the alert. Satellite proptests: clean random
// scenarios raise zero alerts at any thread count; fault-storm scenarios
// raise bit-identical alert streams at WSS_SIM_THREADS 1/2/8.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "perfmodel/health_expectations.hpp"
#include "stencil/generators.hpp"
#include "support/env_guard.hpp"
#include "support/proptest.hpp"
#include "telemetry/health.hpp"
#include "telemetry/io.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/postmortem.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/timeseries.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss::telemetry {
namespace {

using testsupport::CleanSimEnv;
using testsupport::EnvGuard;
using wse::CS1Params;
using wse::Fabric;
using wse::SimParams;

/// Scrub the health knobs on top of the observer scrub: these tests set
/// their own HealthConfig explicitly and must not inherit CI's.
struct CleanHealthEnv {
  CleanSimEnv sim;
  EnvGuard health{"WSS_HEALTH"};
  EnvGuard tol{"WSS_HEALTH_TOL_PCT"};
  EnvGuard warmup{"WSS_HEALTH_WARMUP"};
  EnvGuard queue{"WSS_HEALTH_QUEUE_WINDOWS"};
  EnvGuard burst{"WSS_HEALTH_FAULT_BURST"};
  EnvGuard residual{"WSS_HEALTH_RESIDUAL_ITERS"};
};

TimeSeriesFrame frame(std::uint64_t cycle, std::uint64_t window) {
  TimeSeriesFrame f;
  f.cycle = cycle;
  f.window_cycles = window;
  f.instr_cycles = 100;
  return f;
}

/// A minimal valid series: 2x2 fabric, 100-cycle windows, no rules armed.
TimeSeries synth_series(std::size_t nframes) {
  TimeSeries ts;
  ts.schema = kTimeseriesSchema;
  ts.program = "synthetic";
  ts.width = 2;
  ts.height = 2;
  ts.sample_cycles = 100;
  for (std::size_t i = 0; i < nframes; ++i) {
    ts.frames.push_back(frame(100 * (i + 1), 100));
  }
  return ts;
}

std::vector<std::string> rules_of(const std::vector<HealthAlert>& alerts) {
  std::vector<std::string> out;
  for (const HealthAlert& a : alerts) out.push_back(a.rule);
  return out;
}

const HealthAlert* find_rule(const std::vector<HealthAlert>& alerts,
                             const std::string& rule) {
  for (const HealthAlert& a : alerts) {
    if (a.rule == rule) return &a;
  }
  return nullptr;
}

// --- perfmodel drift -----------------------------------------------------

/// Series with one profiled frame measuring `measured` cycles/tile/iter on
/// SpMV against an expectation of 100.
TimeSeries drift_series(double measured, std::uint64_t iterations) {
  TimeSeries ts = synth_series(3);
  ts.has_expectations = true;
  ts.expectations.model = "unit";
  ts.expectations.phase_cycles[static_cast<std::size_t>(wse::ProgPhase::SpMV)] =
      100.0;
  const double tiles = 4.0;
  TimeSeriesFrame& f = ts.frames[1];
  f.has_profiler = true;
  f.prof_phase[static_cast<std::size_t>(wse::ProgPhase::SpMV)] =
      static_cast<std::uint64_t>(measured * tiles *
                                 static_cast<double>(iterations));
  ts.frames.back().max_iteration = iterations;
  return ts;
}

TEST(Health, DriftGateIsOneSidedWithCriticalAt2x) {
  HealthConfig cfg;
  cfg.tol_pct = 50.0;

  // On the model: silent.
  EXPECT_TRUE(evaluate_health(drift_series(100.0, 4), cfg).empty());
  // +40%: inside tolerance.
  EXPECT_TRUE(evaluate_health(drift_series(140.0, 4), cfg).empty());
  // Faster than the model is not a health problem (one-sided gate).
  EXPECT_TRUE(evaluate_health(drift_series(10.0, 4), cfg).empty());

  // +60%: warn, with the rule inputs a forensics reader needs.
  const auto warn = evaluate_health(drift_series(160.0, 4), cfg);
  ASSERT_EQ(warn.size(), 1u);
  EXPECT_EQ(warn[0].rule, "perfmodel_drift");
  EXPECT_EQ(warn[0].severity, AlertSeverity::Warn);
  EXPECT_EQ(warn[0].first_frame, 1u);
  EXPECT_EQ(warn[0].last_frame, 1u);
  EXPECT_EQ(warn[0].first_cycle, 200u);
  EXPECT_NE(warn[0].detail.find("unit"), std::string::npos) << warn[0].detail;
  bool saw_measured = false;
  for (const AlertInput& in : warn[0].inputs) {
    if (in.name == "measured_cycles_per_tile_iter") {
      saw_measured = true;
      EXPECT_DOUBLE_EQ(in.value, 160.0);
    }
  }
  EXPECT_TRUE(saw_measured);

  // +150% (> 2x tol): critical.
  const auto crit = evaluate_health(drift_series(250.0, 4), cfg);
  ASSERT_EQ(crit.size(), 1u);
  EXPECT_EQ(crit[0].severity, AlertSeverity::Critical);
}

TEST(Health, DriftNeedsIterationsAndExpectations) {
  HealthConfig cfg;
  cfg.tol_pct = 50.0;
  cfg.min_iterations = 2;
  // One iteration: not enough signal for the per-iteration ratio.
  EXPECT_TRUE(evaluate_health(drift_series(500.0, 1), cfg).empty());
  // No expectations block at all: the rule is disarmed.
  TimeSeries ts = drift_series(500.0, 4);
  ts.has_expectations = false;
  EXPECT_TRUE(evaluate_health(ts, cfg).empty());
  // Ungated phase (expectation 0) never fires, however big the counters.
  TimeSeries ungated = drift_series(500.0, 4);
  ungated.expectations.phase_cycles.fill(0.0);
  ungated.expectations.phase_cycles[static_cast<std::size_t>(
      wse::ProgPhase::Dot)] = 0.0;
  EXPECT_FALSE(ungated.expectations.any());
  EXPECT_TRUE(evaluate_health(ungated, cfg).empty());
}

// --- queue / fifo growth -------------------------------------------------

TEST(Health, MonotoneQueueGrowthCoalescesIntoOneAlert) {
  HealthConfig cfg;
  cfg.warmup_frames = 2;
  cfg.queue_windows = 3;
  TimeSeries ts = synth_series(9);
  // Frames 3..8 strictly increasing; warmup frames noisy on purpose.
  ts.frames[0].router_queued_flits = 50;
  ts.frames[1].router_queued_flits = 10;
  ts.frames[2].router_queued_flits = 10;
  for (std::size_t i = 3; i < 9; ++i) {
    ts.frames[i].router_queued_flits = 10 + 5 * i;
  }
  const auto alerts = evaluate_health(ts, cfg);
  ASSERT_EQ(alerts.size(), 1u) << ::testing::PrintToString(rules_of(alerts));
  EXPECT_EQ(alerts[0].rule, "queue_growth");
  EXPECT_EQ(alerts[0].severity, AlertSeverity::Warn);
  EXPECT_EQ(alerts[0].first_frame, 2u); // run starts at the pre-growth frame
  EXPECT_EQ(alerts[0].last_frame, 8u);

  // A plateau resets the run: 2-step climbs never reach the threshold.
  TimeSeries calm = synth_series(9);
  for (std::size_t i = 0; i < 9; ++i) {
    calm.frames[i].router_queued_flits = (i % 3 == 2) ? 10 : 10 + i;
  }
  EXPECT_TRUE(evaluate_health(calm, cfg).empty());
}

TEST(Health, FifoHighwaterGrowthIsItsOwnRule) {
  HealthConfig cfg;
  cfg.warmup_frames = 1;
  cfg.queue_windows = 3;
  TimeSeries ts = synth_series(6);
  for (std::size_t i = 1; i < 6; ++i) {
    ts.frames[i].fifo_highwater = 100 * i;
  }
  const auto alerts = evaluate_health(ts, cfg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "fifo_growth");
}

// --- stall / recv-starvation spikes --------------------------------------

TEST(Health, StallSpikeComparesAgainstRunMedian) {
  HealthConfig cfg;
  cfg.warmup_frames = 2;
  cfg.spike_floor = 0.25;
  TimeSeries ts = synth_series(6);
  for (TimeSeriesFrame& f : ts.frames) {
    f.instr_cycles = 95;
    f.stall_cycles = 5; // typical ratio 0.05
  }
  // Frames 3 and 4 stall hard: ratio 0.6 > max(0.25, 3 * median 0.05).
  ts.frames[3].stall_cycles = 150;
  ts.frames[4].stall_cycles = 150;
  const auto alerts = evaluate_health(ts, cfg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "stall_spike");
  EXPECT_EQ(alerts[0].first_frame, 3u);
  EXPECT_EQ(alerts[0].last_frame, 4u);

  // A uniformly-stalling run is its own median: no window stands out, so
  // steady solver phases that legitimately stall (allreduce waits) never
  // spike against their own ramp-in.
  TimeSeries calm = synth_series(6);
  for (TimeSeriesFrame& f : calm.frames) {
    f.instr_cycles = 95;
    f.stall_cycles = 140; // uniformly high: median ~0.6, threshold ~1.8
  }
  EXPECT_TRUE(evaluate_health(calm, cfg).empty());
}

TEST(Health, RecvStarvationReadsProfiledFramesOnly) {
  HealthConfig cfg;
  cfg.warmup_frames = 2;
  TimeSeries ts = synth_series(6);
  for (std::size_t i = 0; i < 6; ++i) {
    TimeSeriesFrame& f = ts.frames[i];
    f.has_profiler = true;
    f.prof_cat[static_cast<std::size_t>(CycleCat::Compute)] = 90;
    f.prof_cat[static_cast<std::size_t>(CycleCat::RecvStarved)] = 10;
  }
  TimeSeriesFrame& bad = ts.frames[4];
  bad.prof_cat[static_cast<std::size_t>(CycleCat::Compute)] = 10;
  bad.prof_cat[static_cast<std::size_t>(CycleCat::RecvStarved)] = 90;
  const auto alerts = evaluate_health(ts, cfg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "recv_starvation");

  // Unprofiled frames carry no category split: the rule must stay quiet
  // rather than read stale zeros.
  for (TimeSeriesFrame& f : ts.frames) f.has_profiler = false;
  EXPECT_TRUE(evaluate_health(ts, cfg).empty());
}

// --- fault bursts --------------------------------------------------------

TEST(Health, FaultBurstIsCriticalAndZeroDisables) {
  HealthConfig cfg;
  cfg.fault_burst = 16;
  TimeSeries ts = synth_series(4);
  ts.frames[1].faults = 20;
  ts.frames[3].faults = 40;
  const auto alerts = evaluate_health(ts, cfg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "fault_burst");
  EXPECT_EQ(alerts[0].severity, AlertSeverity::Critical);
  EXPECT_EQ(alerts[0].first_frame, 1u);
  EXPECT_EQ(alerts[0].last_frame, 3u);
  const HealthAlert* a = find_rule(alerts, "fault_burst");
  ASSERT_NE(a, nullptr);
  bool saw_worst = false;
  for (const AlertInput& in : a->inputs) {
    if (in.name == "worst_window_faults") {
      saw_worst = true;
      EXPECT_DOUBLE_EQ(in.value, 40.0);
    }
  }
  EXPECT_TRUE(saw_worst);

  cfg.fault_burst = 0; // explicit off-switch
  EXPECT_TRUE(evaluate_health(ts, cfg).empty());
  cfg.fault_burst = 64; // below threshold everywhere
  EXPECT_TRUE(evaluate_health(ts, cfg).empty());
}

// --- residual rules ------------------------------------------------------

std::vector<TimeSeriesScalar> residual_track(
    const std::vector<double>& values) {
  std::vector<TimeSeriesScalar> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(TimeSeriesScalar{i, "residual", values[i]});
  }
  return out;
}

TEST(Health, ResidualStagnationCoversPlateauAndClimb) {
  HealthConfig cfg;
  cfg.residual_iters = 4;

  // Steady convergence: silent.
  std::vector<double> good;
  for (int i = 0; i < 12; ++i) good.push_back(std::pow(10.0, -i));
  EXPECT_TRUE(evaluate_scalar_health(residual_track(good), cfg).empty());

  // Converges, then flatlines for > 4 iterations: warn.
  std::vector<double> flat = {1.0, 0.1, 0.01, 0.01, 0.01,
                              0.01, 0.01, 0.01, 0.01};
  const auto alerts = evaluate_scalar_health(residual_track(flat), cfg);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].rule, "residual_stagnation");
  EXPECT_EQ(alerts[0].severity, AlertSeverity::Warn);
  // Scalar rules carry iteration numbers in the frame fields, cycles 0.
  EXPECT_EQ(alerts[0].first_cycle, 0u);
  EXPECT_EQ(alerts[0].first_frame, 2u); // iteration of the best residual
  EXPECT_NE(summarize_alert(alerts[0]).find("iterations"), std::string::npos);

  // Non-monotone: residual climbs back above its best and stays there —
  // the best--log10 plateau keeps growing, same rule fires.
  std::vector<double> climb = {1.0, 1e-4, 1e-2, 1e-1, 1e-1, 1e-2, 1e-3};
  EXPECT_EQ(evaluate_scalar_health(residual_track(climb), cfg).size(), 1u);
}

TEST(Health, NonFiniteScalarIsCritical) {
  HealthConfig cfg;
  std::vector<TimeSeriesScalar> scalars = {
      {0, "residual", 1.0},
      {1, "rho", std::numeric_limits<double>::quiet_NaN()},
      {2, "residual", std::numeric_limits<double>::infinity()},
  };
  const auto alerts = evaluate_scalar_health(scalars, cfg);
  const HealthAlert* a = find_rule(alerts, "scalar_nonfinite");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->severity, AlertSeverity::Critical);
  EXPECT_EQ(a->first_frame, 1u);
  EXPECT_EQ(a->last_frame, 2u);
  EXPECT_NE(a->detail.find("rho"), std::string::npos) << a->detail;
  EXPECT_TRUE(any_critical(alerts));
}

// --- artifact round trip / golden / diff ---------------------------------

AlertsFile sample_alerts() {
  AlertsFile file;
  file.schema = kAlertsSchema;
  file.program = "roundtrip 2x2";
  file.run_id = "roundtrip-1";
  file.tol_pct = 50.0;
  HealthAlert a;
  a.rule = "fault_burst";
  a.severity = AlertSeverity::Critical;
  a.detail = "20 injected faults in one sample window";
  a.first_frame = 1;
  a.last_frame = 3;
  a.first_cycle = 200;
  a.last_cycle = 400;
  a.inputs = {{"worst_window_faults", 20.0}, {"threshold", 16.0}};
  file.alerts.push_back(a);
  HealthAlert b;
  b.rule = "residual_stagnation";
  b.severity = AlertSeverity::Warn;
  b.detail = "no progress for 6 iterations";
  b.first_frame = 4;
  b.last_frame = 10;
  file.alerts.push_back(b);
  return file;
}

TEST(Health, AlertsFileRoundTripsBitForBit) {
  const AlertsFile want = sample_alerts();
  const std::string path =
      ::testing::TempDir() + "wss_health_roundtrip/alerts.json";
  std::string error;
  ASSERT_TRUE(write_alerts(path, want, &error)) << error;
  AlertsFile got;
  ASSERT_TRUE(load_alerts(path, &got, &error)) << error;
  EXPECT_TRUE(self_check_alerts(got, &error)) << error;
  EXPECT_EQ(got.schema, want.schema);
  EXPECT_EQ(got.program, want.program);
  EXPECT_EQ(got.run_id, want.run_id);
  EXPECT_EQ(got.tol_pct, want.tol_pct);
  ASSERT_EQ(got.alerts.size(), want.alerts.size());
  for (std::size_t i = 0; i < want.alerts.size(); ++i) {
    EXPECT_EQ(got.alerts[i], want.alerts[i]) << "alert " << i;
  }
  // Re-emitting the loaded file reproduces the bytes: the artifact is a
  // fixed point, so goldens stay stable.
  EXPECT_EQ(build_alerts_json(got), build_alerts_json(want));
}

TEST(Health, LoaderAndSelfCheckRejectMalformedFiles) {
  std::string error;
  const std::string dir = ::testing::TempDir() + "wss_health_malformed/";
  ASSERT_TRUE(ensure_directory(::testing::TempDir() + "wss_health_malformed",
                               &error))
      << error;

  // Wrong schema tag (the writer always stamps the current schema, so the
  // bad file has to be forged at the text level).
  std::string forged = build_alerts_json(sample_alerts());
  const std::size_t tag = forged.find(kAlertsSchema);
  ASSERT_NE(tag, std::string::npos);
  forged.replace(tag, std::string(kAlertsSchema).size(), "wss.alerts/999");
  ASSERT_TRUE(write_text_file(dir + "schema.json", forged, &error)) << error;
  AlertsFile out;
  EXPECT_FALSE(load_alerts(dir + "schema.json", &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos) << error;

  // Unknown severity text is a load error (strict parse).
  AlertsFile ok = sample_alerts();
  std::string json = build_alerts_json(ok);
  const std::size_t at = json.find("\"critical\"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 10, "\"severe!!\"");
  ASSERT_TRUE(write_text_file(dir + "severity.json", json, &error)) << error;
  EXPECT_FALSE(load_alerts(dir + "severity.json", &out, &error));
  EXPECT_NE(error.find("severity"), std::string::npos) << error;

  // Structural invariants: unordered ranges, unnamed inputs, empty rule.
  AlertsFile bad = sample_alerts();
  bad.alerts[0].first_cycle = 500; // > last_cycle
  EXPECT_FALSE(self_check_alerts(bad, &error));
  EXPECT_NE(error.find("cycle range"), std::string::npos) << error;
  bad = sample_alerts();
  bad.alerts[0].inputs.push_back({"", 1.0});
  EXPECT_FALSE(self_check_alerts(bad, &error));
  bad = sample_alerts();
  bad.alerts[1].rule.clear();
  EXPECT_FALSE(self_check_alerts(bad, &error));
  bad = sample_alerts();
  bad.tol_pct = -1.0;
  EXPECT_FALSE(self_check_alerts(bad, &error));
}

TEST(Health, GoldenAlertsFileSelfChecks) {
  AlertsFile file;
  std::string error;
  ASSERT_TRUE(load_alerts(WSS_ALERTS_GOLDEN, &file, &error)) << error;
  EXPECT_TRUE(self_check_alerts(file, &error)) << error;
  EXPECT_GT(file.alerts.size(), 0u);
  EXPECT_FALSE(pretty_alerts(file).empty());
}

TEST(Health, FirstAlertDivergenceLocalizesTheDifference) {
  const AlertsFile a = sample_alerts();
  AlertsFile b = a;
  EXPECT_FALSE(first_alert_divergence(a, b).found);

  b.alerts[1].last_frame = 11;
  const AlertDivergence d = first_alert_divergence(a, b);
  ASSERT_TRUE(d.found);
  EXPECT_EQ(d.index, 1u);
  EXPECT_NE(d.a_alert, d.b_alert);
  EXPECT_FALSE(pretty_alert_divergence(d).empty());

  // A shorter stream diverges at its end, against "-".
  AlertsFile shorter = a;
  shorter.alerts.pop_back();
  const AlertDivergence tail = first_alert_divergence(a, shorter);
  ASSERT_TRUE(tail.found);
  EXPECT_EQ(tail.index, 1u);
  EXPECT_EQ(tail.b_alert, "-");

  // Cross-program diffs carry a warning note but still diff.
  AlertsFile other = a;
  other.program = "something else";
  const AlertDivergence warned = first_alert_divergence(a, other);
  EXPECT_FALSE(warned.found);
  EXPECT_NE(warned.note.find("program mismatch"), std::string::npos);
}

TEST(Health, PaneRendersOkAndAlertStates) {
  HealthConfig cfg;
  const TimeSeries calm = synth_series(3);
  const std::string ok = pretty_health_pane(calm, cfg);
  EXPECT_NE(ok.find("health: ok"), std::string::npos) << ok;

  TimeSeries noisy = synth_series(4);
  noisy.frames[2].faults = cfg.fault_burst + 1;
  const std::string bad = pretty_health_pane(noisy, cfg);
  EXPECT_NE(bad.find("fault_burst"), std::string::npos) << bad;
  EXPECT_NE(bad.find("critical"), std::string::npos) << bad;
}

// --- end to end: non-perturbation ----------------------------------------

struct System {
  Stencil7<fp16_t> a;
  Field3<fp16_t> b;
};

System make_system(Grid3 g, std::uint64_t seed) {
  auto ad = make_momentum_like7(g, 0.5, seed);
  const auto xref = make_smooth_solution(g);
  auto bd = make_rhs(ad, xref);
  Field3<double> bp = precondition_jacobi(ad, bd);
  return {convert_stencil<fp16_t>(ad), convert_field<fp16_t>(bp)};
}

TEST(HealthEndToEnd, EngineToggleIsNonPerturbing) {
  // The full forensics pipeline (sampler + ledger + post-mortem dir) with
  // the health engine on vs off: result bits and cycle counts must be
  // identical — evaluation rides recorded frames after the run, never the
  // fabric. A fault storm makes the engine actually fire in the on-run.
  CleanHealthEnv env;
  const Grid3 g(6, 6, 8);
  auto ad = make_random_dominant7(g, 0.5, 99);
  Field3<double> bd(g, 1.0);
  (void)precondition_jacobi(ad, bd);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  wse::FaultPlan plan;
  plan.seed = 7;
  for (int y = 0; y < g.ny; ++y) {
    plan.link_faults.push_back({.x = 2,
                                .y = y,
                                .dir = wse::Dir::East,
                                .kind = wse::FaultKind::CorruptWavelet,
                                .probability = 0.5,
                                .corrupt_mask = 0x0000u});
  }

  const auto run_once = [&](const char* health, const std::string& dir) {
    env.sim.sample.set("64");
    env.sim.ledger.set(dir.c_str());
    env.sim.postmortem.set(dir.c_str());
    env.health.set(health);
    env.burst.set("8");
    static const CS1Params arch;
    wsekernels::SpMV3DSimulation s(a, arch, SimParams{});
    s.fabric().set_fault_plan(&plan);
    struct Out {
      Field3<fp16_t> u;
      std::uint64_t cycles;
    };
    Out out{s.run(v), s.fabric().stats().cycles};
    return out;
  };

  const std::string dir_off =
      ::testing::TempDir() + "wss_health_perturb/off";
  const std::string dir_on = ::testing::TempDir() + "wss_health_perturb/on";
  const auto off = run_once("0", dir_off);
  const auto on = run_once("1", dir_on);

  ASSERT_EQ(off.u.size(), on.u.size());
  for (std::size_t i = 0; i < off.u.size(); ++i) {
    ASSERT_EQ(off.u[i].bits(), on.u[i].bits()) << "u[" << i << "]";
  }
  EXPECT_EQ(off.cycles, on.cycles);

  // The on-run raised alerts; the off-run recorded none in its ledger.
  Ledger on_ledger;
  Ledger off_ledger;
  std::string error;
  ASSERT_TRUE(load_ledger(dir_on, &on_ledger, &error)) << error;
  ASSERT_TRUE(load_ledger(dir_off, &off_ledger, &error)) << error;
  // Append-only ledger: a re-run test process adds lines, so read the last.
  ASSERT_FALSE(on_ledger.runs.empty());
  ASSERT_FALSE(off_ledger.runs.empty());
  EXPECT_FALSE(on_ledger.runs.back().alerts.empty());
  EXPECT_TRUE(off_ledger.runs.back().alerts.empty());
}

// --- end to end: drift gate ----------------------------------------------

struct BicgstabRun {
  std::vector<HealthAlert> alerts;
  std::uint64_t cycles = 0;
};

/// One sampled+profiled bicgstab run with cs1 expectations attached;
/// optionally slowed by a fault plan. Evaluates health on the snapshot.
BicgstabRun run_bicgstab_health(const System& s, const wse::FaultPlan* plan,
                                const HealthConfig& cfg, int threads = 1) {
  static const CS1Params arch;
  SimParams sim;
  wsekernels::BicgstabSimulation simulation(s.a, 2, arch, sim);
  simulation.fabric().set_threads(threads);
  if (plan != nullptr) simulation.fabric().set_fault_plan(plan);
  Profiler prof(s.a.grid.nx, s.a.grid.ny);
  simulation.fabric().set_profiler(&prof);
  TimeSeriesSampler sampler(64);
  sampler.set_expectations(perfmodel::bicgstab_expectations(
      s.a.grid.nz, s.a.grid.nx, s.a.grid.ny));
  simulation.fabric().set_sampler(&sampler);
  (void)simulation.run(s.b);
  simulation.fabric().sample_now();
  BicgstabRun out;
  out.cycles = simulation.fabric().stats().cycles;
  out.alerts = evaluate_health(snapshot_timeseries(sampler, nullptr), cfg);
  simulation.fabric().set_sampler(nullptr);
  simulation.fabric().set_profiler(nullptr);
  return out;
}

TEST(HealthEndToEnd, DriftFiresOnStalledRouterAndStaysSilentClean) {
  CleanHealthEnv env;
  const System s = make_system(Grid3(4, 4, 12), 7);
  HealthConfig cfg; // defaults: tol 50%

  const BicgstabRun clean = run_bicgstab_health(s, nullptr, cfg);
  EXPECT_EQ(find_rule(clean.alerts, "perfmodel_drift"), nullptr)
      << ::testing::PrintToString(rules_of(clean.alerts));

  // Park a stalled router in the middle of the fabric for a window about
  // as long as the whole clean run: every phase crossing it slows far
  // beyond the model projection.
  wse::FaultPlan plan;
  wse::RouterStallFault stall;
  stall.x = 2;
  stall.y = 2;
  stall.from_cycle = 0;
  stall.until_cycle = clean.cycles;
  plan.router_stalls.push_back(stall);
  const BicgstabRun slow = run_bicgstab_health(s, &plan, cfg);
  const HealthAlert* drift = find_rule(slow.alerts, "perfmodel_drift");
  ASSERT_NE(drift, nullptr)
      << "stalled-router run raised: "
      << ::testing::PrintToString(rules_of(slow.alerts));
  EXPECT_GT(slow.cycles, clean.cycles);
}

// --- end to end: fault storm => critical + post-mortem + ledger ----------

TEST(HealthEndToEnd, FaultStormAutoCapturesPostmortemAndLedgerAlerts) {
  CleanHealthEnv env;
  const std::string dir = ::testing::TempDir() + "wss_health_storm";
  env.sim.sample.set("128");
  env.sim.ledger.set(dir.c_str());
  env.sim.postmortem.set(dir.c_str());
  env.burst.set("8");

  const Grid3 g(6, 6, 8);
  auto ad = make_random_dominant7(g, 0.5, 41);
  Field3<double> bd(g, 1.0);
  (void)precondition_jacobi(ad, bd);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(g);
  Rng rng(42);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }
  wse::FaultPlan plan;
  plan.seed = 11;
  for (int y = 0; y < g.ny; ++y) {
    for (int x = 0; x < g.nx; ++x) {
      plan.link_faults.push_back({.x = x,
                                  .y = y,
                                  .dir = wse::Dir::East,
                                  .kind = wse::FaultKind::CorruptWavelet,
                                  .probability = 0.5,
                                  .corrupt_mask = 0x0000u});
    }
  }
  static const CS1Params arch;
  wsekernels::SpMV3DSimulation sim(a, arch, SimParams{});
  sim.fabric().set_fault_plan(&plan);
  (void)sim.run(v);

  // The ledger manifest carries the alert summary and the artifact paths.
  Ledger ledger;
  std::string error;
  ASSERT_TRUE(load_ledger(dir, &ledger, &error)) << error;
  // Append-only ledger: a re-run test process adds lines, so read the last.
  ASSERT_FALSE(ledger.runs.empty());
  const RunManifest& run = ledger.runs.back();
  ASSERT_FALSE(run.alerts.empty());
  bool saw_burst = false;
  for (const RunAlert& ra : run.alerts) {
    if (ra.rule == "fault_burst") {
      saw_burst = true;
      EXPECT_EQ(ra.severity, "critical");
    }
  }
  EXPECT_TRUE(saw_burst);
  std::string alerts_path;
  std::string bundle_path;
  for (const RunArtifact& art : run.artifacts) {
    if (art.kind == "alerts") alerts_path = art.path;
    if (art.kind == "postmortem") bundle_path = art.path;
  }
  ASSERT_FALSE(alerts_path.empty());
  ASSERT_FALSE(bundle_path.empty());

  // The alerts artifact self-checks and contains the critical burst.
  AlertsFile alerts;
  ASSERT_TRUE(load_alerts(alerts_path, &alerts, &error)) << error;
  EXPECT_TRUE(self_check_alerts(alerts, &error)) << error;
  const HealthAlert* burst = find_rule(alerts.alerts, "fault_burst");
  ASSERT_NE(burst, nullptr);
  EXPECT_EQ(burst->severity, AlertSeverity::Critical);
  EXPECT_EQ(alerts.run_id, run.run_id);

  // The auto-captured post-mortem is a health-kind bundle whose anomaly
  // detail quotes the alert and points back at the alerts artifact.
  Bundle bundle;
  ASSERT_TRUE(load_bundle(bundle_path, &bundle, &error)) << error;
  EXPECT_TRUE(self_check_bundle(bundle, &error)) << error;
  EXPECT_EQ(bundle.anomaly_kind, "health");
  EXPECT_NE(bundle.anomaly_detail.find("fault_burst"), std::string::npos)
      << bundle.anomaly_detail;
  EXPECT_NE(bundle.anomaly_detail.find(alerts_path), std::string::npos)
      << bundle.anomaly_detail;
}

// --- satellite: seeded proptest coverage ---------------------------------

/// Run a generated scenario at `threads`, sampled every `interval`, and
/// evaluate health on the snapshot with `cfg`.
std::vector<HealthAlert> scenario_alerts(const proptest::fabricgen::Scenario& sc,
                                         int threads, std::uint64_t interval,
                                         const HealthConfig& cfg,
                                         wse::Backend backend) {
  static const CS1Params arch;
  SimParams sim;
  sim.sim_threads = threads;
  sim.backend = backend;
  Fabric f = sc.instantiate(arch, sim);
  f.set_watchdog(0);
  if (sc.has_faults) f.set_fault_plan(&sc.faults);
  TimeSeriesSampler sampler(interval);
  f.set_sampler(&sampler);
  (void)f.run(sc.budget);
  f.sample_now();
  f.set_sampler(nullptr);
  return evaluate_health(snapshot_timeseries(sampler, nullptr), cfg);
}

TEST(HealthProptest, CleanScenariosRaiseZeroAlerts) {
  CleanHealthEnv env;
  proptest::check(
      "clean scenarios are alert-free at any thread count and backend",
      [](proptest::Case& c) {
        const auto sc = proptest::fabricgen::make_scenario(c, false);
        const std::uint64_t interval =
            static_cast<std::uint64_t>(c.size(16, 200));
        const HealthConfig cfg; // env-free defaults
        for (const wse::Backend backend :
             {wse::Backend::Reference, wse::Backend::Turbo}) {
          for (const int threads : {1, 2, 8}) {
            const auto alerts =
                scenario_alerts(sc, threads, interval, cfg, backend);
            EXPECT_TRUE(alerts.empty())
                << threads << " threads raised "
                << ::testing::PrintToString(rules_of(alerts));
          }
        }
      },
      {.cases = 4, .seed = 2026});
}

TEST(HealthProptest, StormScenariosAlertBitIdenticallyAcrossThreads) {
  CleanHealthEnv env;
  proptest::check(
      "fault-storm alert streams replay bit-identically",
      [](proptest::Case& c) {
        const auto sc = proptest::fabricgen::make_scenario(c, true);
        const std::uint64_t interval =
            static_cast<std::uint64_t>(c.size(16, 200));
        HealthConfig cfg;
        cfg.fault_burst = 1; // any faulted window alerts
        const auto want =
            scenario_alerts(sc, 1, interval, cfg, wse::Backend::Reference);
        for (const int threads : {2, 8}) {
          const auto got = scenario_alerts(sc, threads, interval, cfg,
                                           wse::Backend::Reference);
          ASSERT_EQ(want.size(), got.size()) << threads << " threads";
          for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(want[i], got[i])
                << "alert " << i << " diverged at " << threads << " threads";
          }
        }
      },
      {.cases = 4, .seed = 2027});
}

} // namespace
} // namespace wss::telemetry
