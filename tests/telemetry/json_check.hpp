#pragma once

// Test-only minimal JSON parser: just enough recursive descent to assert
// that exporter output is well-formed and to fish out values by path.
// Deliberately strict (no trailing commas, no NaN tokens) so the tests
// catch exporter bugs a lenient consumer would mask.

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace wss::testjson {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<Object>, std::shared_ptr<Array>>
      v = nullptr;

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] const Object& object() const {
    return *std::get<std::shared_ptr<Object>>(v);
  }
  [[nodiscard]] const Array& array() const {
    return *std::get<std::shared_ptr<Array>>(v);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    return object().at(key);
  }
  [[nodiscard]] const Value& at(std::size_t i) const { return array().at(i); }
};

class Parser {
public:
  explicit Parser(const std::string& text) : s_(text) {}

  /// Parse the full document; `*ok` false on any syntax error or
  /// trailing garbage.
  Value parse(bool* ok) {
    ok_ = true;
    pos_ = 0;
    Value v = value();
    ws();
    if (pos_ != s_.size()) ok_ = false;
    *ok = ok_;
    return v;
  }

private:
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool eat(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool lit(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) == 0) {
      pos_ += w.size();
      return true;
    }
    ok_ = false;
    return false;
  }

  Value value() {
    ws();
    if (pos_ >= s_.size()) {
      ok_ = false;
      return {};
    }
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Value{string()};
    if (c == 't') {
      lit("true");
      return Value{true};
    }
    if (c == 'f') {
      lit("false");
      return Value{false};
    }
    if (c == 'n') {
      lit("null");
      return Value{nullptr};
    }
    return number();
  }

  Value object() {
    auto obj = std::make_shared<Object>();
    if (!eat('{')) {
      ok_ = false;
      return {};
    }
    ws();
    if (eat('}')) return Value{obj};
    while (ok_) {
      ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        ok_ = false;
        break;
      }
      std::string key = string();
      if (!eat(':')) {
        ok_ = false;
        break;
      }
      (*obj)[std::move(key)] = value();
      if (eat(',')) continue;
      if (eat('}')) return Value{obj};
      ok_ = false;
    }
    return {};
  }

  Value array() {
    auto arr = std::make_shared<Array>();
    if (!eat('[')) {
      ok_ = false;
      return {};
    }
    ws();
    if (eat(']')) return Value{arr};
    while (ok_) {
      arr->push_back(value());
      if (eat(',')) continue;
      if (eat(']')) return Value{arr};
      ok_ = false;
    }
    return {};
  }

  std::string string() {
    std::string out;
    ++pos_; // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              ok_ = false;
              return out;
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<std::size_t>(i)]))) {
                ok_ = false;
                return out;
              }
            }
            out += '?'; // tests only check well-formedness here
            pos_ += 4;
            break;
          }
          default:
            ok_ = false;
            return out;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        ok_ = false; // raw control character: invalid JSON
        return out;
      } else {
        out += c;
      }
    }
    ok_ = false; // unterminated
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok_ = false;
      return {};
    }
    try {
      return Value{std::stod(s_.substr(start, pos_ - start))};
    } catch (...) {
      ok_ = false;
      return {};
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Parse-or-fail helper for tests.
inline Value parse(const std::string& text, bool* ok) {
  Parser p(text);
  return p.parse(ok);
}

} // namespace wss::testjson
