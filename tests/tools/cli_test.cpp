// CLI-level tests for the operator tools (tools/wss_inspect.cpp,
// tools/wss_top.cpp), run against the committed goldens in tests/data/.
// The binaries under test come in via compile definitions (WSS_INSPECT_BIN
// / WSS_TOP_BIN, CMake $<TARGET_FILE:...>), so the suite exercises the
// real executables, not relinked objects. Coverage: the documented exit-
// code contract (0 success, 1 usage, 2 unreadable/invalid artifact,
// 3 divergence), self-check over every committed golden, the alerts
// subcommand family, the wss_top health pane, and the --follow torn-frame
// recovery loop (waiting -> torn file skipped -> full file rendered).

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "telemetry/health.hpp"
#include "telemetry/io.hpp"

namespace {

struct CmdResult {
  int exit_code = -1;
  std::string output; ///< stdout + stderr, interleaved
};

/// Run a shell command, capturing combined output and the real exit code.
CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

const std::string kInspect = WSS_INSPECT_BIN;
const std::string kTop = WSS_TOP_BIN;
const std::string kTimeseriesGolden = WSS_TIMESERIES_GOLDEN;
const std::string kAlertsGolden = WSS_ALERTS_GOLDEN;
const std::string kPostmortemGolden = WSS_POSTMORTEM_GOLDEN;

std::string temp_dir() {
  const std::string dir = ::testing::TempDir() + "wss_cli_test";
  std::string error;
  EXPECT_TRUE(wss::telemetry::ensure_directory(dir, &error)) << error;
  return dir + "/";
}

// --- exit-code contract --------------------------------------------------

TEST(InspectCli, UsageErrorsExitOne) {
  EXPECT_EQ(run_cmd(kInspect).exit_code, 1);
  EXPECT_EQ(run_cmd(kInspect + " frobnicate").exit_code, 1);
  EXPECT_EQ(run_cmd(kInspect + " timeseries").exit_code, 1);
  EXPECT_EQ(run_cmd(kInspect + " alerts").exit_code, 1);
  EXPECT_EQ(run_cmd(kInspect + " alerts nosuchsub x.json").exit_code, 1);
  EXPECT_EQ(run_cmd(kInspect + " print " + kPostmortemGolden + " --last 0")
                .exit_code,
            1);
  // --help is answered, not an error.
  EXPECT_EQ(run_cmd(kInspect + " --help").exit_code, 0);
}

TEST(InspectCli, UnreadableOrInvalidArtifactsExitTwo) {
  EXPECT_EQ(run_cmd(kInspect + " print /nonexistent.json").exit_code, 2);
  EXPECT_EQ(run_cmd(kInspect + " timeseries print /nonexistent.json")
                .exit_code,
            2);
  EXPECT_EQ(run_cmd(kInspect + " alerts show /nonexistent.json").exit_code, 2);
  EXPECT_EQ(run_cmd(kInspect + " runs list /nonexistent.jsonl").exit_code, 2);

  const std::string bad = temp_dir() + "not_json.json";
  write_file(bad, "this is not json at all {");
  EXPECT_EQ(run_cmd(kInspect + " alerts self-check " + bad).exit_code, 2);
  EXPECT_EQ(run_cmd(kInspect + " timeseries self-check " + bad).exit_code, 2);
}

// --- self-check over every committed golden ------------------------------

TEST(InspectCli, CommittedGoldensPassSelfCheck) {
  const CmdResult bundle =
      run_cmd(kInspect + " self-check " + kPostmortemGolden);
  EXPECT_EQ(bundle.exit_code, 0) << bundle.output;
  const CmdResult ts =
      run_cmd(kInspect + " timeseries self-check " + kTimeseriesGolden);
  EXPECT_EQ(ts.exit_code, 0) << ts.output;
  const CmdResult alerts =
      run_cmd(kInspect + " alerts self-check " + kAlertsGolden);
  EXPECT_EQ(alerts.exit_code, 0) << alerts.output;
  EXPECT_NE(alerts.output.find("ok"), std::string::npos) << alerts.output;
  // One failing file among many still fails the batch.
  const std::string bad = temp_dir() + "batch_bad.json";
  write_file(bad, "{}");
  EXPECT_EQ(
      run_cmd(kInspect + " alerts self-check " + kAlertsGolden + " " + bad)
          .exit_code,
      2);
}

// --- alerts family -------------------------------------------------------

TEST(InspectCli, AlertsListAndShowRenderTheGolden) {
  const CmdResult list = run_cmd(kInspect + " alerts list " + kAlertsGolden);
  EXPECT_EQ(list.exit_code, 0) << list.output;
  EXPECT_NE(list.output.find("fault_burst"), std::string::npos) << list.output;
  EXPECT_NE(list.output.find("[critical]"), std::string::npos) << list.output;

  const CmdResult show = run_cmd(kInspect + " alerts show " + kAlertsGolden);
  EXPECT_EQ(show.exit_code, 0) << show.output;
  EXPECT_NE(show.output.find("perfmodel_drift"), std::string::npos)
      << show.output;
  // show prints the rule inputs; list does not.
  EXPECT_NE(show.output.find("worst_window_faults"), std::string::npos)
      << show.output;
  EXPECT_EQ(list.output.find("worst_window_faults"), std::string::npos)
      << list.output;
}

TEST(InspectCli, AlertsDiffExitsThreeOnFirstDivergence) {
  // Identical streams: exit 0.
  const CmdResult same = run_cmd(kInspect + " alerts diff " + kAlertsGolden +
                                 " " + kAlertsGolden);
  EXPECT_EQ(same.exit_code, 0) << same.output;
  EXPECT_NE(same.output.find("no divergence"), std::string::npos)
      << same.output;

  // Drop the golden's last alert: divergence at that index, exit 3.
  wss::telemetry::AlertsFile file;
  std::string error;
  ASSERT_TRUE(wss::telemetry::load_alerts(kAlertsGolden, &file, &error))
      << error;
  ASSERT_GT(file.alerts.size(), 1u);
  file.alerts.pop_back();
  const std::string shorter = temp_dir() + "alerts_shorter.json";
  ASSERT_TRUE(wss::telemetry::write_alerts(shorter, file, &error)) << error;
  const CmdResult diff =
      run_cmd(kInspect + " alerts diff " + kAlertsGolden + " " + shorter);
  EXPECT_EQ(diff.exit_code, 3) << diff.output;
  EXPECT_NE(diff.output.find("first divergent alert"), std::string::npos)
      << diff.output;
}

TEST(InspectCli, TimeseriesDiffExitsThreeOnFirstDivergence) {
  const CmdResult same = run_cmd(kInspect + " timeseries diff " +
                                 kTimeseriesGolden + " " + kTimeseriesGolden);
  EXPECT_EQ(same.exit_code, 0) << same.output;

  // Perturb one counter digit in a copy: still valid JSON, one frame off.
  std::string text = read_file(kTimeseriesGolden);
  const std::size_t at = text.find("\"instr\":");
  ASSERT_NE(at, std::string::npos);
  const std::size_t digit = at + std::string("\"instr\":").size();
  text[digit] = text[digit] == '9' ? '8' : '9';
  const std::string perturbed = temp_dir() + "ts_perturbed.json";
  write_file(perturbed, text);
  const CmdResult diff = run_cmd(kInspect + " timeseries diff " +
                                 kTimeseriesGolden + " " + perturbed);
  EXPECT_EQ(diff.exit_code, 3) << diff.output;
}

// --- wss_top -------------------------------------------------------------

TEST(TopCli, ReplayRendersDashboardWithHealthPane) {
  const CmdResult r = run_cmd(kTop + " " + kTimeseriesGolden);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("health:"), std::string::npos) << r.output;
  // The committed golden is a healthy run; the pane must say so.
  EXPECT_NE(r.output.find("health: ok"), std::string::npos) << r.output;
}

TEST(TopCli, UsageAndUnreadableExitCodes) {
  EXPECT_EQ(run_cmd(kTop).exit_code, 1);
  EXPECT_EQ(run_cmd(kTop + " --last 0 x.json").exit_code, 1);
  EXPECT_EQ(run_cmd(kTop + " /nonexistent.json").exit_code, 2);
}

TEST(TopCli, FollowSurvivesTornFramesAndRecovers) {
  // The --follow contract: a missing file is waited for, a torn read keeps
  // the last display (here: the waiting banner) instead of crashing, and
  // the completed file renders on the next tick. Drive a real follower
  // through all three states, then SIGTERM it.
  const std::string dir = temp_dir();
  const std::string series = dir + "follow_series.json";
  const std::string out = dir + "follow_out.txt";
  std::remove(series.c_str());

  const CmdResult spawn = run_cmd("sh -c '" + kTop + " " + series +
                                  " --follow --interval-ms 40 > " + out +
                                  " 2>&1 & echo $!'");
  ASSERT_EQ(spawn.exit_code, 0) << spawn.output;
  const long pid = std::strtol(spawn.output.c_str(), nullptr, 10);
  ASSERT_GT(pid, 0) << spawn.output;

  const auto tick = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  };
  tick(); // follower is polling a missing file: "waiting for"

  const std::string full = read_file(kTimeseriesGolden);
  ASSERT_GT(full.size(), 64u);
  write_file(series, full.substr(0, full.size() / 2)); // torn mid-frame
  tick(); // torn ticks must not kill or blank the follower

  write_file(series, full); // writer finished the flush
  tick();                   // next tick renders the full dashboard

  EXPECT_EQ(::kill(static_cast<pid_t>(pid), SIGTERM), 0)
      << "follower died before SIGTERM";
  tick();

  const std::string rendered = read_file(out);
  EXPECT_NE(rendered.find("waiting for"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("health:"), std::string::npos) << rendered;
}

} // namespace
