// Cross-module integration tests — the full pipelines a user of this
// library would run, crossing every layer boundary:
//   MFIX assembly -> WaferSolver (fp16 wafer numerics) -> fp64 residual
//   distributed cluster solve vs wafer solve on the same system
//   cycle simulator -> performance model -> CFD throughput projection

#include <cmath>
#include <gtest/gtest.h>

#include "cluster/dist_bicgstab.hpp"
#include "mfix/momentum_system.hpp"
#include "mfix/simple.hpp"
#include "perfmodel/simple_model.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/bicgstab_program.hpp"
#include "wsekernels/wafer_solver.hpp"

namespace wss {
namespace {

TEST(EndToEnd, MfixMomentumSystemSolvedOnWafer) {
  // The exact Fig. 9 pipeline at reduced size: MFIX-style momentum
  // assembly feeds the wafer solver; the mixed-precision answer lands at
  // the expected precision floor.
  const mfix::StaggeredGrid g{12, 24, 12, 0.05};
  auto sys = mfix::make_momentum_system(g, 0.01, 11);

  wsekernels::WaferSolveOptions opt;
  opt.controls.max_iterations = 25;
  opt.controls.tolerance = 5e-3;
  wsekernels::WaferSolver solver(sys.a, opt);
  const auto report = solver.solve(sys.rhs);

  EXPECT_EQ(report.solve.reason, StopReason::Converged);
  EXPECT_LT(report.true_relative_residual, 1e-2);
  EXPECT_TRUE(report.fit.fits());
}

TEST(EndToEnd, ClusterAndWaferAgreeToMixedPrecision) {
  // The same system solved by the fp64 distributed cluster baseline and by
  // the wafer's mixed-precision solver: answers agree to the fp16 floor.
  const Grid3 g(12, 12, 16);
  const auto a = make_momentum_like7(g, 0.4, 21);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);

  cluster::World world(4);
  Field3<double> x_cluster(g, 0.0);
  SolveControls c64;
  c64.max_iterations = 200;
  c64.tolerance = 1e-11;
  const auto cluster_result =
      cluster::distributed_bicgstab(world, a, b, x_cluster, c64);
  ASSERT_EQ(cluster_result.solve.reason, StopReason::Converged);

  wsekernels::WaferSolveOptions opt;
  opt.controls.max_iterations = 30;
  opt.controls.tolerance = 4e-3;
  wsekernels::WaferSolver wafer(a, opt);
  const auto report = wafer.solve(b);
  ASSERT_EQ(report.solve.reason, StopReason::Converged);

  double worst = 0.0;
  for (std::size_t i = 0; i < report.x.size(); ++i) {
    worst = std::max(worst, std::abs(report.x[i] - x_cluster[i]));
  }
  EXPECT_LT(worst, 5e-2); // mixed-precision class agreement
}

TEST(EndToEnd, SimulatorModelProjectionChainIsConsistent) {
  // One chain from cycle-level truth to application projection:
  // (1) full BiCGStab iterations on the simulator, (2) the model matches
  // them, (3) the SIMPLE projection built on the model reproduces the
  // paper's throughput window.
  const Grid3 g(6, 6, 96);
  auto ad = make_momentum_like7(g, 0.5, 3);
  auto bd = make_rhs(ad, make_smooth_solution(g));
  const auto bp = precondition_jacobi(ad, bd);
  const auto a16 = convert_stencil<fp16_t>(ad);
  const auto b16 = convert_field<fp16_t>(bp);

  wse::CS1Params arch;
  wse::SimParams sim;
  wsekernels::BicgstabSimulation simulation(a16, 3, arch, sim);
  const auto run = simulation.run(b16);
  const double measured = static_cast<double>(run.cycles) / 3.0;

  const perfmodel::CS1Model model(arch);
  const double predicted = model.iteration_cycles(g);
  EXPECT_NEAR(measured, predicted, 0.15 * predicted);

  const perfmodel::SimpleModel app{model, perfmodel::JouleModel{}};
  const auto projection = app.project(Grid3(600, 600, 600));
  EXPECT_GT(projection.steps_per_second_hi, 80.0);
  EXPECT_LT(projection.steps_per_second_lo, 125.0);
}

TEST(EndToEnd, SimpleSolverFeedsScalarAndWaferConsistently) {
  // Run the CFD loop, then hand one of its own momentum systems to the
  // wafer solver mid-flight — the production integration the paper's
  // Section VI sketches (MFIX forms, the wafer solves).
  const mfix::StaggeredGrid g{8, 8, 8, 0.125};
  const mfix::FluidProps props{1.0, 0.05};
  const mfix::WallMotion walls{1.0};
  mfix::SimpleSolver solver(g, props, walls);
  mfix::FlowState state = mfix::make_cavity_state(g, walls);
  (void)solver.run(state, 4);

  const auto sys = mfix::assemble_momentum(g, state, props,
                                           mfix::Component::U, 0.1, 0.7,
                                           walls);
  wsekernels::WaferSolveOptions opt;
  opt.controls.max_iterations = 20;
  opt.controls.tolerance = 5e-3;
  wsekernels::WaferSolver wafer(sys.a, opt);
  const auto report = wafer.solve(sys.rhs);
  EXPECT_LT(report.true_relative_residual, 2e-2);
}

} // namespace
} // namespace wss
