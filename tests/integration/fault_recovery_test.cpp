// Differential fault-recovery harness: the mixed-precision BiCGStab
// driven by matvecs executed on the *simulated fabric* (the Listing-1
// SpMV program), with seeded faults injected underneath. The contract
// under test, end to end:
//
//   under any injected fault the solver either recovers to the
//   fault-free answer or reports a truthful failure — it never returns
//   a silently wrong "Converged".
//
// A matvec whose dataflow program deadlocks (dropped wavelets, dead
// tile) cannot produce a result; the harness surfaces that to the solver
// as a NaN-filled product, which the breakdown classifier must turn into
// StopReason::Breakdown — and, when the fault is transient, heal through
// the restart path once the fabric delivers clean matvecs again.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "mesh/field.hpp"
#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"
#include "wse/fabric.hpp"
#include "wse/fault.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace wss {
namespace {

struct System {
  Stencil7<fp16_t> a;        ///< unit-diagonal (Jacobi-preconditioned)
  std::vector<fp16_t> b;
  Stencil7<double> ad;       ///< same matrix in fp64 for truth checks
  std::vector<double> bd;
};

System make_system(const Grid3& g, std::uint64_t seed) {
  auto ad = make_momentum_like7(g, 0.6, seed);
  const auto xref = make_smooth_solution(g);
  const auto bd = make_rhs(ad, xref);
  auto bd_copy = bd;
  const Field3<double> b_pre = precondition_jacobi(ad, bd_copy);
  System s;
  s.a = convert_stencil<fp16_t>(ad);
  const auto bh = convert_field<fp16_t>(b_pre);
  s.b.assign(bh.begin(), bh.end());
  s.ad = ad;
  s.bd.assign(b_pre.begin(), b_pre.end());
  return s;
}

/// y = A*v computed by the cycle-accurate fabric simulation. A deadlocked
/// program (the observable face of drop/dead faults) yields a NaN-filled
/// product: the harness never invents data the fabric did not deliver.
class SimulatedOperator {
public:
  SimulatedOperator(const Stencil7<fp16_t>& a, int threads)
      : grid_(a.grid), sim_(a, arch_, make_params(threads)) {}

  void operator()(std::span<const fp16_t> v, std::span<fp16_t> y,
                  FlopCounter* fc) {
    Field3<fp16_t> vf(grid_);
    std::copy(v.begin(), v.end(), vf.begin());
    try {
      const Field3<fp16_t> uf = sim_.run(vf);
      std::copy(uf.begin(), uf.end(), y.begin());
    } catch (const std::runtime_error&) {
      ++deadlocks_;
      for (auto& yi : y) yi = fp16_limits::quiet_nan();
    }
    if (fc != nullptr) {  // census parity with Stencil7Operator (unit diag)
      fc->hp_mul += 6 * grid_.size();
      fc->hp_add += 6 * grid_.size();
    }
  }

  [[nodiscard]] wse::Fabric& fabric() { return sim_.fabric(); }
  [[nodiscard]] int deadlocks() const { return deadlocks_; }

private:
  static wse::SimParams make_params(int threads) {
    wse::SimParams p;
    p.sim_threads = threads;
    return p;
  }

  wse::CS1Params arch_;
  Grid3 grid_;
  wsekernels::SpMV3DSimulation sim_;
  int deadlocks_ = 0;
};

SolveControls controls(int max_restarts) {
  SolveControls c;
  c.max_iterations = 40;
  c.tolerance = 5e-3;
  c.stagnation_window = 8;
  c.max_restarts = max_restarts;
  return c;
}

SolveResult solve_on(SimulatedOperator& op, const System& s,
                     std::vector<fp16_t>& x, const SolveControls& c) {
  return bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(s.b), std::span<fp16_t>(x), c);
}

const Grid3 kGrid(3, 3, 6);

TEST(FaultRecovery, BaselineFabricSolveConverges) {
  const System s = make_system(kGrid, 101);
  SimulatedOperator op(s.a, 1);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const auto r = solve_on(op, s, x, controls(0));
  ASSERT_EQ(r.reason, StopReason::Converged);
  EXPECT_EQ(op.deadlocks(), 0);

  // The converged iterate solves the original fp64 system to the mixed-
  // precision floor.
  Stencil7Operator<double> opd(s.ad);
  std::vector<double> xd(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xd[i] = x[i].to_double();
  EXPECT_LT(true_relative_residual<double>(
                opd, std::span<const double>(s.bd),
                std::span<const double>(xd)),
            5e-2);
}

TEST(FaultRecovery, RouterStallIsInvisibleToTheSolver) {
  // A transient stall loses nothing: the faulted solve must be
  // bit-identical to the fault-free one — iterate, iteration count, and
  // the full residual history.
  const System s = make_system(kGrid, 102);

  SimulatedOperator clean(s.a, 1);
  std::vector<fp16_t> x_ref(s.b.size(), fp16_t(0.0));
  const auto r_ref = solve_on(clean, s, x_ref, controls(0));
  ASSERT_EQ(r_ref.reason, StopReason::Converged);

  SimulatedOperator op(s.a, 1);
  wse::FaultPlan plan;
  plan.router_stalls.push_back(
      {.x = 1, .y = 1, .from_cycle = 0, .until_cycle = 600});
  op.fabric().set_fault_plan(&plan);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const auto r = solve_on(op, s, x, controls(0));

  EXPECT_EQ(r.reason, r_ref.reason);
  EXPECT_EQ(r.iterations, r_ref.iterations);
  ASSERT_EQ(r.relative_residuals.size(), r_ref.relative_residuals.size());
  for (std::size_t i = 0; i < r.relative_residuals.size(); ++i) {
    EXPECT_EQ(r.relative_residuals[i], r_ref.relative_residuals[i]) << i;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].bits(), x_ref[i].bits()) << i;
  }
  EXPECT_EQ(op.fabric().fault_stats().router_stall_cycles, 600u);
}

TEST(FaultRecovery, PermanentLinkDropReportsBreakdownNotConvergence) {
  const System s = make_system(kGrid, 103);
  SimulatedOperator op(s.a, 1);
  wse::FaultPlan plan;
  plan.link_faults.push_back({.x = 0,
                              .y = 0,
                              .dir = wse::Dir::East,
                              .kind = wse::FaultKind::DropWavelet,
                              .probability = 1.0});
  op.fabric().set_fault_plan(&plan);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const auto r = solve_on(op, s, x, controls(3));

  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_NE(r.breakdown, BreakdownKind::None);
  EXPECT_GT(op.deadlocks(), 0);
  // The restart path probed the fabric again and found it still broken —
  // the budget must not be burned on an unhealable fault at x0 = 0.
  EXPECT_EQ(r.restarts, 0);
  // Truthfulness: no residual history entry is NaN, and x was never
  // poisoned into a fake answer.
  for (const double res : r.relative_residuals) {
    EXPECT_TRUE(std::isfinite(res));
  }
}

TEST(FaultRecovery, DeadTileReportsBreakdownNotConvergence) {
  const System s = make_system(kGrid, 104);
  SimulatedOperator op(s.a, 1);
  wse::FaultPlan plan;
  plan.dead_tiles.push_back({.x = 1, .y = 2, .from_cycle = 0});
  op.fabric().set_fault_plan(&plan);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const auto r = solve_on(op, s, x, controls(2));
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_GT(op.fabric().fault_stats().dead_tile_cycles, 0u);
}

TEST(FaultRecovery, TransientLinkOutageHealedByRestart) {
  // The drop window covers exactly the first matvec (the run budget
  // exceeds the window, so the deadlocked first run uses it up). The
  // solver sees one NaN product, classifies the breakdown, restarts —
  // and the restarted trajectory from x0 = 0 is bit-identical to a
  // fault-free solve.
  const System s = make_system(kGrid, 105);

  SimulatedOperator clean(s.a, 1);
  std::vector<fp16_t> x_ref(s.b.size(), fp16_t(0.0));
  const auto r_ref = solve_on(clean, s, x_ref, controls(0));
  ASSERT_EQ(r_ref.reason, StopReason::Converged);

  SimulatedOperator op(s.a, 1);
  wse::FaultPlan plan;
  plan.link_faults.push_back({.x = 0,
                              .y = 0,
                              .dir = wse::Dir::East,
                              .kind = wse::FaultKind::DropWavelet,
                              .probability = 1.0,
                              .from_cycle = 0,
                              .until_cycle = 2000});
  op.fabric().set_fault_plan(&plan);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const auto r = solve_on(op, s, x, controls(2));

  EXPECT_EQ(r.reason, StopReason::Converged);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(op.deadlocks(), 1);
  EXPECT_EQ(r.iterations, r_ref.iterations);
  ASSERT_EQ(r.relative_residuals.size(), r_ref.relative_residuals.size());
  for (std::size_t i = 0; i < r.relative_residuals.size(); ++i) {
    EXPECT_EQ(r.relative_residuals[i], r_ref.relative_residuals[i]) << i;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].bits(), x_ref[i].bits()) << i;
  }
}

TEST(FaultRecovery, PersistentCorruptionNeverConvergesSilentlyWrong) {
  // probability = 1.0 makes the corrupted operator A' consistent across
  // matvecs, so the solve is a legitimate solve of A'. Whatever the
  // outcome, the reported result must be truthful: if the solver claims
  // Converged, the claim must hold against an independent residual
  // evaluation through the same faulted fabric.
  const System s = make_system(kGrid, 106);
  SimulatedOperator op(s.a, 1);
  wse::FaultPlan plan;
  plan.link_faults.push_back({.x = 1,
                              .y = 1,
                              .dir = wse::Dir::East,
                              .kind = wse::FaultKind::CorruptWavelet,
                              .probability = 1.0,
                              .corrupt_mask = 0x0200u});
  op.fabric().set_fault_plan(&plan);
  std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
  const SolveControls c = controls(2);
  const auto r = solve_on(op, s, x, c);

  EXPECT_GT(op.fabric().fault_stats().wavelets_corrupted, 0u);
  for (const double res : r.relative_residuals) {
    EXPECT_TRUE(std::isfinite(res));
  }
  if (r.reason == StopReason::Converged) {
    // Independent check: r = b - A'x through one more faulted matvec.
    std::vector<fp16_t> ax(x.size());
    op(std::span<const fp16_t>(x), std::span<fp16_t>(ax), nullptr);
    double rn = 0.0;
    double bn = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ri = s.b[i].to_double() - ax[i].to_double();
      rn += ri * ri;
      bn += s.b[i].to_double() * s.b[i].to_double();
    }
    EXPECT_LT(std::sqrt(rn / bn), 5e-2)
        << "solver claimed convergence on the faulted operator but the "
           "independently evaluated residual disagrees";
  } else {
    // Truthful failure: a named stop reason, finite history, no fake x.
    EXPECT_NE(r.reason, StopReason::Converged);
  }
}

TEST(FaultRecovery, FaultedSolveBitIdenticalAcrossThreadCounts) {
  // The whole pipeline — faulted fabric matvecs + breakdown-safe solver —
  // is deterministic in the host thread count: identical SolveResult and
  // iterate, serial vs 8 bands.
  const System s = make_system(kGrid, 107);
  wse::FaultPlan plan;
  plan.seed = 99;
  plan.link_faults.push_back({.x = 0,
                              .y = 1,
                              .dir = wse::Dir::South,
                              .kind = wse::FaultKind::CorruptWavelet,
                              .probability = 0.6,
                              .corrupt_mask = 0x0040u});
  plan.router_stalls.push_back(
      {.x = 2, .y = 0, .from_cycle = 100, .until_cycle = 400});

  auto run = [&](int threads) {
    SimulatedOperator op(s.a, threads);
    op.fabric().set_fault_plan(&plan);
    std::vector<fp16_t> x(s.b.size(), fp16_t(0.0));
    const auto r = solve_on(op, s, x, controls(2));
    return std::make_pair(r, x);
  };
  const auto [r1, x1] = run(1);
  const auto [r8, x8] = run(8);

  EXPECT_EQ(r8.reason, r1.reason);
  EXPECT_EQ(r8.breakdown, r1.breakdown);
  EXPECT_EQ(r8.iterations, r1.iterations);
  EXPECT_EQ(r8.restarts, r1.restarts);
  ASSERT_EQ(r8.relative_residuals.size(), r1.relative_residuals.size());
  for (std::size_t i = 0; i < r1.relative_residuals.size(); ++i) {
    EXPECT_EQ(r8.relative_residuals[i], r1.relative_residuals[i]) << i;
  }
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_EQ(x8[i].bits(), x1[i].bits()) << i;
  }
}

} // namespace
} // namespace wss
