// Acceptance suite for the generic stencil front-end (src/stencilfe/,
// docs/STENCILFE.md): transition-spec validation, the tile memory layout,
// the host golden evaluator, and the conformance matrix — every shipped
// workload (heat/hotspot, 2D wave, Conway life, and the stencil9 anchor)
// must be bit-identical between the compiled fabric program and the host
// golden, on both execution backends, at WSS_SIM_THREADS 1/2/8, across
// host-driven generations. The stencil9 anchor is additionally held
// bit-equal to spmv9 on an all-ones Stencil9, tying the front-end to the
// proven backend-conformance halo-exchange program. A seeded property
// test (WSS_PROPTEST_SEED replays) draws random transition functions —
// fields, terms, coefficients, boundary policy, life rule — and demands
// the same equivalences. The calibrated perfmodel projection is asserted
// exactly against measured cycles for every shipped workload.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "perfmodel/stencilfe_model.hpp"
#include "stencil/stencil9.hpp"
#include "stencilfe/executor.hpp"
#include "stencilfe/golden.hpp"
#include "stencilfe/program.hpp"
#include "stencilfe/workloads.hpp"
#include "support/env_guard.hpp"
#include "support/fabric_compare.hpp"
#include "support/proptest.hpp"
#include "wse/fabric.hpp"

namespace wss::stencilfe {
namespace {

using testsupport::CleanSimEnv;
using testsupport::expect_fabric_state_identical;
using testsupport::expect_stop_identical;
using wse::Backend;
using wse::CS1Params;
using wse::SimParams;

// Fabric keeps a pointer to its CS1Params, so the architecture object
// must outlive every fabric built from it.
const CS1Params& arch() {
  static const CS1Params a;
  return a;
}

void expect_state_bits(const std::vector<fp16_t>& want,
                       const std::vector<fp16_t>& got,
                       const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].bits(), got[i].bits())
        << label << " word " << i << " (want " << want[i].to_double()
        << ", got " << got[i].to_double() << ")";
  }
}

void expect_turbo_engaged(const wse::Fabric& f, const std::string& label) {
  EXPECT_EQ(f.turbo_stats().turbo_cycles, f.stats().cycles) << label;
  EXPECT_GE(f.turbo_stats().promotions, 1u) << label;
}

/// The full conformance matrix for one workload: golden as truth, the
/// reference backend at one thread as the observable baseline, then both
/// backends at 1/2/8 threads held bit-identical in result state, stop
/// info, and every fabric/telemetry counter.
void conformance_roundtrip(const TransitionFn& fn, int nx, int ny,
                           const std::vector<fp16_t>& init, int generations) {
  const std::vector<fp16_t> want = golden_run(fn, nx, ny, init, generations);

  SimParams base_sim;
  base_sim.backend = Backend::Reference;
  base_sim.sim_threads = 1;
  StencilExecutor base(fn, nx, ny, arch(), base_sim);
  base.load(init);
  const wse::StopInfo base_stop = base.step(generations);
  expect_state_bits(want, base.read_state(), fn.name + " reference t1");

  for (const Backend backend : {Backend::Reference, Backend::Turbo}) {
    for (const int threads : {1, 2, 8}) {
      if (backend == Backend::Reference && threads == 1) continue;
      const std::string label =
          fn.name + (backend == Backend::Turbo ? " turbo" : " reference") +
          " t" + std::to_string(threads);
      SimParams sim;
      sim.backend = backend;
      sim.sim_threads = threads;
      StencilExecutor ex(fn, nx, ny, arch(), sim);
      ex.load(init);
      const wse::StopInfo stop = ex.step(generations);
      expect_state_bits(want, ex.read_state(), label);
      expect_stop_identical(base_stop, stop, label);
      expect_fabric_state_identical(base.fabric(), ex.fabric(), label);
      if (backend == Backend::Turbo) expect_turbo_engaged(ex.fabric(), label);
    }
  }

  // The calibrated performance model projects this workload's measured
  // per-generation cycle count exactly (perfmodel/stencilfe_model.hpp).
  const auto projection = perfmodel::project_stencilfe_generation(fn, nx, ny);
  EXPECT_EQ(static_cast<std::uint64_t>(projection.total()),
            base.last_generation_cycles())
      << fn.name << " perfmodel projection drifted from measurement";
}

// --- spec validation and layout ----------------------------------------

TEST(StencilFe, ValidateRejectsUnmappableSpecs) {
  TransitionFn ok = heat_fn();
  EXPECT_NO_THROW(validate(ok));

  TransitionFn bad = ok;
  bad.fields = 0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.fields = kMaxFields + 1;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.terms.clear();
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.terms[0].dx = 2;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = ok;
  bad.terms[0].in_field = 1; // fields == 1
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = wave_fn(); // two fields
  bad.life_rule = true;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(StencilFe, ExecutorRejectsPeriodicDegenerateAxes) {
  EXPECT_THROW(
      StencilExecutor(heat_fn(0.125, BoundaryPolicy::Periodic), 1, 4, arch()),
      std::invalid_argument);
  EXPECT_THROW(
      StencilExecutor(heat_fn(0.125, BoundaryPolicy::Periodic), 4, 1, arch()),
      std::invalid_argument);
}

TEST(StencilFe, CellLayoutAddressesTheGhostFrame) {
  for (const int fields : {1, 2}) {
    TransitionFn fn = fields == 1 ? heat_fn() : wave_fn();
    const CellLayout l = cell_layout(fn);
    EXPECT_EQ(l.fields, fields);
    EXPECT_EQ(l.own(), l.row_c + fields);
    // The 3x3 frame: west/center/east of each row, fields words apart.
    EXPECT_EQ(l.neighbor(-1, 0, 0), l.row_c);
    EXPECT_EQ(l.neighbor(0, 0, 0), l.own());
    EXPECT_EQ(l.neighbor(1, -1, fields - 1), l.row_n + 2 * fields + fields - 1);
    EXPECT_EQ(l.neighbor(-1, 1, 0), l.row_s);
    EXPECT_LE(l.used_halfwords,
              static_cast<int>(arch().tile_memory_bytes / 2));
  }
}

// --- golden evaluator sanity -------------------------------------------

TEST(StencilFe, GoldenHeatHoldsUniformInterior) {
  // (1-4a)*u + a*(4u) == u exactly for a = 0.125 and u = 1: a uniform
  // field is a fixed point away from the Dirichlet boundary, and edge
  // cells lose exactly the ghost share.
  const TransitionFn fn = heat_fn();
  const int nx = 5, ny = 5;
  std::vector<fp16_t> state(static_cast<std::size_t>(nx * ny), fp16_t(1.0));
  const auto next = golden_step(fn, nx, ny, state);
  EXPECT_EQ(next[static_cast<std::size_t>(2 * nx + 2)].to_double(), 1.0);
  // An edge-center cell sees one zero ghost: (1-4a) + 3a = 1 - a.
  EXPECT_EQ(next[static_cast<std::size_t>(0 * nx + 2)].to_double(), 0.875);
  // A corner sees two zero ghosts: 1 - 2a.
  EXPECT_EQ(next[0].to_double(), 0.75);
}

TEST(StencilFe, GoldenLifeBlinkerOscillates) {
  const TransitionFn fn = life_fn();
  const int nx = 5, ny = 5;
  std::vector<fp16_t> board(static_cast<std::size_t>(nx * ny), fp16_t(0.0));
  const auto at = [nx](int x, int y) { return static_cast<std::size_t>(y * nx + x); };
  board[at(1, 2)] = fp16_t(1.0);
  board[at(2, 2)] = fp16_t(1.0);
  board[at(3, 2)] = fp16_t(1.0);
  const auto gen1 = golden_step(fn, nx, ny, board);
  EXPECT_EQ(gen1[at(2, 1)].to_double(), 1.0);
  EXPECT_EQ(gen1[at(2, 2)].to_double(), 1.0);
  EXPECT_EQ(gen1[at(2, 3)].to_double(), 1.0);
  EXPECT_EQ(gen1[at(1, 2)].to_double(), 0.0);
  EXPECT_EQ(gen1[at(3, 2)].to_double(), 0.0);
  // Period 2: two generations restore the horizontal bar.
  expect_state_bits(board, golden_step(fn, nx, ny, gen1), "blinker period 2");
}

TEST(StencilFe, GoldenWaveReflectiveKeepsSymmetry) {
  // A left-right symmetric initial bump under reflective walls stays
  // left-right symmetric bit-for-bit.
  const TransitionFn fn = wave_fn();
  const int nx = 6, ny = 4;
  std::vector<fp16_t> state(static_cast<std::size_t>(nx * ny * 2), fp16_t(0.0));
  const auto at = [nx](int x, int y, int f) {
    return static_cast<std::size_t>((y * nx + x) * 2 + f);
  };
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const double bump = (x == 2 || x == 3) && y == 1 ? 0.5 : 0.0;
      state[at(x, y, 0)] = fp16_t(bump);
      state[at(x, y, 1)] = fp16_t(bump);
    }
  }
  const auto evolved = golden_run(fn, nx, ny, state, 4);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      for (int f = 0; f < 2; ++f) {
        EXPECT_EQ(evolved[at(x, y, f)].bits(),
                  evolved[at(nx - 1 - x, y, f)].bits())
            << "asymmetry at (" << x << "," << y << ") field " << f;
      }
    }
  }
}

TEST(StencilFe, Stencil9AnchorMatchesSpmv9AllOnesExactBits) {
  // The anchor's contract: unit-coefficient FMACs (one rounding) agree
  // bit-for-bit with spmv9's mul+add on an all-ones Stencil9, and the
  // ghost-zero FMACs the front-end executes (where spmv9 skips the
  // out-of-range neighbor) are exact no-ops.
  const TransitionFn fn = stencil9_fn();
  const int nx = 7, ny = 6;
  const Grid2 g(nx, ny);
  const std::vector<fp16_t> state = random_state(fn, nx, ny, 2027);

  Stencil9<fp16_t> ones(g);
  for (auto& c : ones.coeff) c.fill(fp16_t(1.0));
  Field2<fp16_t> v(g);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      v(x, y) = state[static_cast<std::size_t>(y * nx + x)];
    }
  }
  Field2<fp16_t> u(g);
  spmv9(ones, v, u);

  const auto got = golden_step(fn, nx, ny, state);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      ASSERT_EQ(got[static_cast<std::size_t>(y * nx + x)].bits(),
                u(x, y).bits())
          << "(" << x << "," << y << ")";
    }
  }
}

// --- fabric conformance: every workload, both backends, 1/2/8 threads ---

TEST(StencilFeConformance, HeatDirichlet) {
  CleanSimEnv env;
  const TransitionFn fn = heat_fn();
  conformance_roundtrip(fn, 6, 5, random_state(fn, 6, 5, 101), 3);
}

TEST(StencilFeConformance, HeatPeriodic) {
  CleanSimEnv env;
  const TransitionFn fn = heat_fn(0.125, BoundaryPolicy::Periodic);
  conformance_roundtrip(fn, 5, 4, random_state(fn, 5, 4, 103), 3);
}

TEST(StencilFeConformance, WaveReflective) {
  CleanSimEnv env;
  const TransitionFn fn = wave_fn();
  conformance_roundtrip(fn, 5, 4, random_state(fn, 5, 4, 107), 3);
}

TEST(StencilFeConformance, LifePeriodic) {
  CleanSimEnv env;
  const TransitionFn fn = life_fn();
  conformance_roundtrip(fn, 6, 6, random_life_state(6, 6, 109), 4);
}

TEST(StencilFeConformance, Stencil9Anchor) {
  CleanSimEnv env;
  const TransitionFn fn = stencil9_fn();
  conformance_roundtrip(fn, 5, 4, random_state(fn, 5, 4, 113), 2);
}

// --- seeded property: random transition functions ----------------------

TEST(StencilFeProperty, RandomTransitionsMatchGoldenOnBothBackends) {
  CleanSimEnv env;
  proptest::check(
      "random transition functions vs host golden, both backends, t1/2/8",
      [](proptest::Case& pc) {
        Rng& rng = pc.rng();
        TransitionFn fn;
        fn.name = "prop";
        fn.fields = pc.size(1, 2);
        fn.boundary = static_cast<BoundaryPolicy>(rng.below(3));
        const int nterms = pc.size(1, 6);
        for (int t = 0; t < nterms; ++t) {
          Term term;
          term.out_field = static_cast<int>(
              rng.below(static_cast<std::uint64_t>(fn.fields)));
          term.in_field = static_cast<int>(
              rng.below(static_cast<std::uint64_t>(fn.fields)));
          term.dx = static_cast<int>(rng.below(3)) - 1;
          term.dy = static_cast<int>(rng.below(3)) - 1;
          term.coeff = fp16_t(pc.uniform(-1.0, 1.0));
          fn.terms.push_back(term);
        }
        if (fn.fields == 1 && rng.below(4) == 0) fn.life_rule = true;
        validate(fn);

        const int nx = pc.size(2, 6);
        const int ny = pc.size(2, 6);
        const int generations = pc.size(1, 3);
        const std::vector<fp16_t> init =
            random_state(fn, nx, ny, pc.seed() ^ 0x51full);
        const std::vector<fp16_t> want =
            golden_run(fn, nx, ny, init, generations);

        for (const Backend backend : {Backend::Reference, Backend::Turbo}) {
          for (const int threads : {1, 2, 8}) {
            SimParams sim;
            sim.backend = backend;
            sim.sim_threads = threads;
            StencilExecutor ex(fn, nx, ny, arch(), sim);
            ex.load(init);
            (void)ex.step(generations);
            expect_state_bits(
                want, ex.read_state(),
                std::string(backend == Backend::Turbo ? "turbo" : "reference") +
                    " t" + std::to_string(threads) + " " + std::to_string(nx) +
                    "x" + std::to_string(ny));
          }
        }
      },
      {.cases = 4, .seed = 977});
}

} // namespace
} // namespace wss::stencilfe
