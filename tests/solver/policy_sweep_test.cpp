// Parameterized sweep: every precision policy against every problem class
// and several sizes. Verifies the qualitative behaviour matrix the paper's
// precision study rests on: fp64/fp32 converge to tight tolerances; the
// mixed mode reaches the ~1e-2 regime; pure fp16 is strictly worse or
// equal to mixed.

#include <cmath>
#include <gtest/gtest.h>

#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss {
namespace {

enum class Problem { Poisson, ConvectionDiffusion, Momentum, Random };

struct SweepCase {
  Problem problem;
  int n; // cubic mesh edge
};

Stencil7<double> build(Problem p, Grid3 g) {
  switch (p) {
    case Problem::Poisson: return make_poisson7(g);
    case Problem::ConvectionDiffusion:
      return make_convection_diffusion7(g, 1.0, -0.8, 0.5);
    case Problem::Momentum: return make_momentum_like7(g, 0.5, 19);
    default: return make_random_dominant7(g, 0.5, 23);
  }
}

const char* name(Problem p) {
  switch (p) {
    case Problem::Poisson: return "poisson";
    case Problem::ConvectionDiffusion: return "convdiff";
    case Problem::Momentum: return "momentum";
    default: return "random";
  }
}

class PolicySweep : public ::testing::TestWithParam<SweepCase> {};

/// Solve in policy P; returns final true fp64 relative residual.
template <typename P>
double solve_residual(const Stencil7<double>& a_pre,
                      const Field3<double>& b_pre, int iters) {
  using T = typename P::storage_t;
  const auto a = convert_stencil<T>(a_pre);
  Stencil7Operator<T> op(a);
  Stencil7Operator<double> op64(a_pre);
  std::vector<T> b = convert<T>(std::span<const double>(b_pre.data(), b_pre.size()));
  std::vector<T> x(b.size(), T{});
  SolveControls c;
  c.max_iterations = iters;
  c.tolerance = 0.0;
  (void)bicgstab<P>(
      [&](std::span<const T> v, std::span<T> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const T>(b), std::span<T>(x), c);
  std::vector<double> xd(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xd[i] = to_double(x[i]);
  std::vector<double> bv(b_pre.begin(), b_pre.end());
  return true_relative_residual<double>(op64, std::span<const double>(bv),
                                        std::span<const double>(xd));
}

TEST_P(PolicySweep, BehaviourMatrix) {
  const SweepCase sc = GetParam();
  const Grid3 g(sc.n, sc.n, sc.n);
  auto a = build(sc.problem, g);
  const auto xref = make_smooth_solution(g);
  auto b = make_rhs(a, xref);
  const Field3<double> bp = precondition_jacobi(a, b);

  const int iters = 60;
  const double r64 = solve_residual<DoublePrecision>(a, bp, iters);
  const double r32 = solve_residual<SinglePrecision>(a, bp, iters);
  const double rmx = solve_residual<MixedPrecision>(a, bp, iters);

  SCOPED_TRACE(name(sc.problem));
  // fp64 converges hard; fp32 close behind.
  EXPECT_LT(r64, 1e-9);
  EXPECT_LT(r32, 1e-4);
  // Mixed reaches the paper's ~1e-2 regime on the diagonally dominant
  // systems the CS-1 experiment solves; the barely-dominant Laplacian is
  // harder for a low-precision Krylov method — it must still make real
  // progress, just not to the same floor.
  EXPECT_LT(rmx, sc.problem == Problem::Poisson ? 0.6 : 6e-2);
  // And fp32 is at least as accurate as mixed.
  EXPECT_LE(r32, rmx * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProblems, PolicySweep,
    ::testing::Values(SweepCase{Problem::Poisson, 6},
                      SweepCase{Problem::Poisson, 10},
                      SweepCase{Problem::ConvectionDiffusion, 6},
                      SweepCase{Problem::ConvectionDiffusion, 8},
                      SweepCase{Problem::Momentum, 6},
                      SweepCase{Problem::Momentum, 10},
                      SweepCase{Problem::Random, 6},
                      SweepCase{Problem::Random, 8}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return std::string(name(param_info.param.problem)) + "_n" +
             std::to_string(param_info.param.n);
    });

// Mesh-shape parameterized sweep of the WSE tier-2 solver: pencil-shaped,
// slab-shaped, and cubic meshes all converge equivalently (the mapping is
// shape-agnostic in exact arithmetic).
class ShapeSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(ShapeSweep, ReferenceSolveConverges) {
  const auto [nx, ny, nz] = GetParam();
  const Grid3 g(nx, ny, nz);
  auto a = make_momentum_like7(g, 0.6, 3);
  const auto xref = make_smooth_solution(g);
  auto b = make_rhs(a, xref);
  const Field3<double> bp = precondition_jacobi(a, b);
  EXPECT_LT(solve_residual<DoublePrecision>(a, bp, 40), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::make_tuple(4, 4, 64), std::make_tuple(16, 16, 2),
                      std::make_tuple(2, 32, 8), std::make_tuple(8, 8, 8),
                      std::make_tuple(1, 1, 128), std::make_tuple(32, 1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& param_info) {
      return std::to_string(std::get<0>(param_info.param)) + "x" +
             std::to_string(std::get<1>(param_info.param)) + "x" +
             std::to_string(std::get<2>(param_info.param));
    });

} // namespace
} // namespace wss
