#include "solver/cg.hpp"

#include <gtest/gtest.h>

#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss {
namespace {

TEST(ConjugateGradient, SolvesSpdPoisson) {
  const Grid3 g(7, 7, 7);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);

  std::vector<double> x(g.size(), 0.0);
  std::vector<double> bvec(b.begin(), b.end());
  SolveControls c;
  c.max_iterations = 300;
  c.tolerance = 1e-11;
  const auto result = conjugate_gradient<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bvec), std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);
  EXPECT_LT(true_relative_residual<double>(op, std::span<const double>(bvec),
                                           std::span<const double>(x)),
            1e-10);
}

TEST(ConjugateGradient, MatchesBicgstabOnSpdSystem) {
  const Grid3 g(5, 5, 5);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);
  std::vector<double> bvec(b.begin(), b.end());

  std::vector<double> x_cg(g.size(), 0.0);
  std::vector<double> x_bi(g.size(), 0.0);
  SolveControls c;
  c.max_iterations = 300;
  c.tolerance = 1e-12;
  auto apply = [&](std::span<const double> v, std::span<double> y,
                   FlopCounter* fc) { op(v, y, fc); };
  conjugate_gradient<DoublePrecision>(apply, std::span<const double>(bvec),
                                      std::span<double>(x_cg), c);
  bicgstab<DoublePrecision>(apply, std::span<const double>(bvec),
                            std::span<double>(x_bi), c);
  for (std::size_t i = 0; i < x_cg.size(); ++i) {
    EXPECT_NEAR(x_cg[i], x_bi[i], 1e-8);
  }
}

TEST(ConjugateGradient, ResidualHistoryDecreasesOverall) {
  const Grid3 g(6, 6, 6);
  auto a = make_poisson7(g);
  Field3<double> b(g, 1.0);
  Stencil7Operator<double> op(a);
  std::vector<double> bvec(b.begin(), b.end());
  std::vector<double> x(g.size(), 0.0);
  SolveControls c;
  c.max_iterations = 50;
  c.tolerance = 1e-12;
  const auto result = conjugate_gradient<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bvec), std::span<double>(x), c);
  ASSERT_GE(result.relative_residuals.size(), 2u);
  EXPECT_LT(result.relative_residuals.back(),
            result.relative_residuals.front());
}

} // namespace
} // namespace wss
