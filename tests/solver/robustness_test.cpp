// Failure-injection tests for the solver layer: breakdown detection,
// fp16 overflow/underflow of the right-hand side, NaN contamination, and
// ill-conditioned inputs. The solver must stop with a meaningful reason,
// never crash or loop forever.

#include <cmath>
#include <gtest/gtest.h>

#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss {
namespace {

TEST(Robustness, RhsAboveFp16RangeOverflowsGracefully) {
  // 1e7 (even after the ~1/6 diagonal scaling of the preconditioner)
  // overflows fp16 to infinity; the solve must terminate (breakdown or
  // stagnation), not hang or crash.
  const Grid3 g(4, 4, 4);
  auto a = make_momentum_like7(g, 0.5, 3);
  Field3<double> b(g, 1e7);
  const auto bp = precondition_jacobi(a, b);
  const auto a16 = convert_stencil<fp16_t>(a);
  Stencil7Operator<fp16_t> op(a16);
  std::vector<fp16_t> bv =
      convert<fp16_t>(std::span<const double>(bp.data(), bp.size()));
  EXPECT_TRUE(bv[0].is_inf() || bv[0].to_double() > 6e4);

  std::vector<fp16_t> x(bv.size(), fp16_t(0.0));
  SolveControls c;
  c.max_iterations = 20;
  c.tolerance = 1e-3;
  c.stagnation_window = 4;
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bv), std::span<fp16_t>(x), c);
  EXPECT_LE(result.iterations, 20); // terminated
}

TEST(Robustness, TinyRhsUnderflowsToZeroSolve) {
  // Below the fp16 subnormal floor everything rounds to zero: the solver
  // sees b = 0 and returns x = 0 immediately.
  const Grid3 g(3, 3, 3);
  auto a = make_momentum_like7(g, 0.5, 5);
  Field3<double> b(g, 1e-9);
  const auto bp = precondition_jacobi(a, b);
  const auto a16 = convert_stencil<fp16_t>(a);
  Stencil7Operator<fp16_t> op(a16);
  std::vector<fp16_t> bv =
      convert<fp16_t>(std::span<const double>(bp.data(), bp.size()));
  std::vector<fp16_t> x(bv.size(), fp16_t(1.0));
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bv), std::span<fp16_t>(x), {});
  EXPECT_EQ(result.reason, StopReason::Converged);
  for (const auto& xi : x) EXPECT_EQ(xi.to_double(), 0.0);
}

TEST(Robustness, NanRhsTerminates) {
  const Grid3 g(3, 3, 3);
  auto a = make_poisson7(g);
  Stencil7Operator<double> op(a);
  std::vector<double> b(g.size(), 1.0);
  b[5] = std::nan("");
  std::vector<double> x(g.size(), 0.0);
  SolveControls c;
  c.max_iterations = 10;
  c.stagnation_window = 3;
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(b), std::span<double>(x), c);
  // NaN propagates into the dots; the solver must stop within the budget.
  EXPECT_LE(result.iterations, 10);
  EXPECT_NE(result.reason, StopReason::Converged);
}

TEST(Robustness, BreakdownDetected) {
  // Engineer (r0, A r0) == 0: a rotation-like 2x2 block operator. Use a
  // custom apply instead of a stencil.
  auto apply = [](std::span<const double> v, std::span<double> y,
                  FlopCounter*) {
    // y = [ -v1, v0 ]: (v, Av) = 0 for every v.
    y[0] = -v[1];
    y[1] = v[0];
  };
  std::vector<double> b = {1.0, 0.0};
  std::vector<double> x = {0.0, 0.0};
  SolveControls c;
  c.max_iterations = 5;
  const auto result =
      bicgstab<DoublePrecision>(apply, std::span<const double>(b),
                                std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Breakdown);
  EXPECT_EQ(result.iterations, 0);
}

TEST(Robustness, StagnationWindowRespectsFactor) {
  // A solve that keeps improving slowly must NOT be cut by a stagnation
  // window with a generous factor.
  const Grid3 g(8, 8, 8);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);
  std::vector<double> bv(b.begin(), b.end());
  std::vector<double> x(g.size(), 0.0);
  SolveControls c;
  c.max_iterations = 200;
  c.tolerance = 1e-10;
  c.stagnation_window = 10;
  c.stagnation_factor = 0.999; // almost no demanded progress
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bv), std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);
}

TEST(Robustness, HugeScaleFp64StillConverges) {
  // Scaling the system by 1e150 must not break the fp64 path (no overflow
  // in intermediate dots for this size).
  const Grid3 g(4, 4, 4);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  auto b = make_rhs(a, xref);
  for (auto& v : b) v *= 1e100;
  Stencil7Operator<double> op(a);
  std::vector<double> bv(b.begin(), b.end());
  std::vector<double> x(g.size(), 0.0);
  SolveControls c;
  c.max_iterations = 100;
  c.tolerance = 1e-10;
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bv), std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);
}

} // namespace
} // namespace wss
