// Breakdown classification and restart-recovery tests for BiCGStab and CG
// (Algorithm 1's failure modes made explicit). Covers:
//   * the crafted fp16 omega == 0 systems: Breakdown/OmegaZero with
//     restarts disabled (never a NaN-poisoned "Converged"), Converged with
//     the restart budget enabled — for both the reference mixed-precision
//     solver and the WSE-mapped solver;
//   * exact classification of rho/(r0,s)/omega/NaN breakdowns on small
//     analytic operators;
//   * the bounded restart budget (a breakdown at iteration 0 from x0 = 0
//     re-seeds an identical Krylov state, so the budget must exhaust
//     deterministically rather than loop);
//   * the CG per-iteration operation census by differencing two runs;
//   * seeded property coverage of the StopReason / BreakdownKind contract
//     across all four precision policies, including NaN/Inf injection.
//
// The crafted systems were found by seeded brute-force search over tiny
// unit-diagonal fp16 tridiagonal systems (Grid3(1,1,2), coefficients in
// {k/8}): the listed values reproduce omega == 0 exactly in fp16/mixed
// arithmetic at iteration >= 1, which the pre-fix solver turned into
// beta = alpha/omega = inf and a silently NaN-poisoned iterate.

#include <cmath>
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "mfix/scalar_transport.hpp"
#include "mfix/simple.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"
#include "stencil/singular.hpp"
#include "stencil/stencil9.hpp"
#include "support/proptest.hpp"
#include "wsekernels/wse_bicgstab.hpp"

namespace wss {
namespace {

template <typename T>
std::vector<T> flat(const Field3<T>& f) {
  return std::vector<T>(f.begin(), f.end());
}

template <typename T>
bool all_finite(std::span<const T> v) {
  for (const T& x : v) {
    if (!std::isfinite(to_double(x))) return false;
  }
  return true;
}

/// The crafted reference-solver system: unit-diagonal fp16 tridiagonal on
/// Grid3(1,1,2) with zp(0) = 1, zm(1) = -0.875, b = (2, -2). In mixed
/// precision the second iteration's (q, y) dot cancels to exactly 0.
struct CraftedOmegaSystem {
  Stencil7<fp16_t> a{Grid3(1, 1, 2)};
  std::vector<fp16_t> b;

  CraftedOmegaSystem() {
    a.unit_diagonal = true;
    a.diag(0, 0, 0) = fp16_t(1.0);
    a.diag(0, 0, 1) = fp16_t(1.0);
    a.zp(0, 0, 0) = fp16_t(1.0);
    a.zm(0, 0, 1) = fp16_t(-0.875);
    b = {fp16_t(2.0), fp16_t(-2.0)};
  }
};

SolveResult solve_crafted(const CraftedOmegaSystem& s, int max_restarts,
                          std::vector<fp16_t>& x) {
  Stencil7Operator<fp16_t> op(s.a);
  SolveControls c;
  c.max_iterations = 30;
  c.tolerance = 1e-3;
  c.max_restarts = max_restarts;
  return bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(s.b), std::span<fp16_t>(x), c);
}

TEST(Breakdown, CraftedOmegaZeroReportedTruthfullyWithoutRestarts) {
  CraftedOmegaSystem s;
  std::vector<fp16_t> x(2, fp16_t(0.0));
  const auto r = solve_crafted(s, /*max_restarts=*/0, x);
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_EQ(r.breakdown, BreakdownKind::OmegaZero);
  EXPECT_GE(r.iterations, 1);
  // The fix's whole point: no NaN ever reaches the iterate or the
  // residual history.
  EXPECT_TRUE(all_finite(std::span<const fp16_t>(x)));
  for (const double res : r.relative_residuals) {
    EXPECT_TRUE(std::isfinite(res));
  }
}

TEST(Breakdown, CraftedOmegaZeroHealedByRestart) {
  CraftedOmegaSystem s;
  std::vector<fp16_t> x(2, fp16_t(0.0));
  const auto r = solve_crafted(s, /*max_restarts=*/3, x);
  EXPECT_EQ(r.reason, StopReason::Converged);
  EXPECT_EQ(r.breakdown, BreakdownKind::None);  // healed, not reported
  EXPECT_GE(r.restarts, 1);
  EXPECT_LE(r.restarts, 3);
  EXPECT_LT(r.final_residual(), 1e-3);
}

/// Same property for the WSE-mapped solver with its own crafted system
/// (zp(0) = 1, zm(1) = 0.625, b = (-2.5, 2.5)): the fabric-ordered
/// reductions cancel differently, so it needs its own coefficients.
TEST(Breakdown, WseSolverCraftedOmegaZeroAndRecovery) {
  const Grid3 g(1, 1, 2);
  Stencil7<fp16_t> a(g);
  a.unit_diagonal = true;
  a.diag(0, 0, 0) = fp16_t(1.0);
  a.diag(0, 0, 1) = fp16_t(1.0);
  a.zp(0, 0, 0) = fp16_t(1.0);
  a.zm(0, 0, 1) = fp16_t(0.625);
  Field3<fp16_t> b(g);
  b(0, 0, 0) = fp16_t(-2.5);
  b(0, 0, 1) = fp16_t(2.5);

  wsekernels::WseBicgstabSolver solver(a);
  SolveControls c;
  c.max_iterations = 30;
  c.tolerance = 1e-3;

  c.max_restarts = 0;
  Field3<fp16_t> x1(g, fp16_t(0.0));
  const auto r1 = solver.solve(b, x1, c);
  EXPECT_EQ(r1.reason, StopReason::Breakdown);
  EXPECT_EQ(r1.breakdown, BreakdownKind::OmegaZero);
  EXPECT_GE(r1.iterations, 1);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_FALSE(x1[i].is_nan());
    EXPECT_FALSE(x1[i].is_inf());
  }

  c.max_restarts = 3;
  Field3<fp16_t> x2(g, fp16_t(0.0));
  const auto r2 = solver.solve(b, x2, c);
  EXPECT_EQ(r2.reason, StopReason::Converged);
  EXPECT_GE(r2.restarts, 1);
  EXPECT_LT(r2.final_residual(), 1e-3);
}

/// Plane rotation y = (-v1, v0): (r0, A r0) = 0 for every r0, so BiCGStab
/// breaks with R0SZero before completing a single iteration, and CG (for
/// which (p, A p) = 0 certifies "not SPD") reports the same kind.
void rotation_apply(std::span<const double> v, std::span<double> y,
                    FlopCounter* fc) {
  y[0] = -v[1];
  y[1] = v[0];
  if (fc != nullptr) fc->dp_add += 2;
}

TEST(Breakdown, RotationOperatorClassifiedR0SZero) {
  const std::vector<double> b = {1.0, 0.0};
  std::vector<double> x(2, 0.0);
  SolveControls c;
  c.max_iterations = 10;
  const auto r = bicgstab<DoublePrecision>(
      rotation_apply, std::span<const double>(b), std::span<double>(x), c);
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_EQ(r.breakdown, BreakdownKind::R0SZero);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.restarts, 0);
}

TEST(Breakdown, RestartBudgetExhaustsDeterministicallyAtIterationZero) {
  // Restarting from x = x0 = 0 regenerates the identical Krylov state, so
  // recovery CANNOT heal an iteration-0 breakdown: each restart succeeds
  // (rho = (b, b) != 0), consumes one iteration slot, and hits the same
  // (r0, s) = 0 again. The budget must drain exactly, then report.
  const std::vector<double> b = {1.0, 0.0};
  std::vector<double> x(2, 0.0);
  SolveControls c;
  c.max_iterations = 20;
  c.max_restarts = 5;
  const auto r = bicgstab<DoublePrecision>(
      rotation_apply, std::span<const double>(b), std::span<double>(x), c);
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_EQ(r.breakdown, BreakdownKind::R0SZero);
  EXPECT_EQ(r.restarts, 5);
  EXPECT_EQ(r.iterations, 0);
}

TEST(Breakdown, NonFiniteRhsReportedBeforeAnyIteration) {
  auto a = make_poisson7(Grid3(3, 3, 3));
  Stencil7Operator<double> op(a);
  std::vector<double> b(a.grid.size(), 1.0);
  b[5] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x(b.size(), 0.0);
  SolveControls c;
  c.max_restarts = 3;  // nothing to restart around: x0 never left zero
  const auto r = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(b), std::span<double>(x), c);
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_EQ(r.breakdown, BreakdownKind::NonFiniteResidual);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(r.restarts, 0);
}

TEST(Breakdown, NaNProducingOperatorCannotBeHealed) {
  // An operator that emits NaN poisons every restart's re-seeded residual
  // too; the solver must report NonFiniteScalar with zero restarts used,
  // not burn the budget or claim convergence.
  auto nan_apply = [](std::span<const double>, std::span<double> y,
                      FlopCounter*) {
    for (double& yi : y) yi = std::numeric_limits<double>::quiet_NaN();
  };
  const std::vector<double> b = {1.0, 2.0};
  std::vector<double> x(2, 0.0);
  SolveControls c;
  c.max_iterations = 10;
  c.max_restarts = 4;
  const auto r = bicgstab<DoublePrecision>(
      nan_apply, std::span<const double>(b), std::span<double>(x), c);
  EXPECT_EQ(r.reason, StopReason::Breakdown);
  EXPECT_EQ(r.breakdown, BreakdownKind::NonFiniteScalar);
  EXPECT_EQ(r.restarts, 0);
  EXPECT_TRUE(all_finite(std::span<const double>(x)));  // x untouched
}

TEST(Breakdown, CgClassifiesNonSpdAndNonFiniteInputs) {
  {
    const std::vector<double> b = {1.0, 0.0};
    std::vector<double> x(2, 0.0);
    const auto r = conjugate_gradient<DoublePrecision>(
        rotation_apply, std::span<const double>(b), std::span<double>(x), {});
    EXPECT_EQ(r.reason, StopReason::Breakdown);
    EXPECT_EQ(r.breakdown, BreakdownKind::R0SZero);
    EXPECT_EQ(r.iterations, 0);
  }
  {
    auto a = make_poisson7(Grid3(3, 3, 3));
    Stencil7Operator<double> op(a);
    std::vector<double> b(a.grid.size(), 1.0);
    b[0] = std::numeric_limits<double>::infinity();
    std::vector<double> x(b.size(), 0.0);
    const auto r = conjugate_gradient<DoublePrecision>(
        [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
          op(v, y, fc);
        },
        std::span<const double>(b), std::span<double>(x), {});
    EXPECT_EQ(r.reason, StopReason::Breakdown);
    EXPECT_EQ(r.breakdown, BreakdownKind::NonFiniteResidual);
    EXPECT_EQ(r.iterations, 0);
  }
}

TEST(Breakdown, CgOperationCensusPerIteration) {
  // Census by differencing: run 1 and 3 full iterations with tolerance 0;
  // the difference is exactly two steady-state iterations, with no setup
  // accounting to subtract. Per meshpoint per CG iteration on a unit
  // diagonal: 1 matvec (6 + 6) + 2 dots (2 + 2) + 2 AXPYs + 1 fused
  // p-update (3 + 3) = 22 ops — exactly half of BiCGStab's Table I 44.
  const Grid3 g(5, 5, 6);
  auto a = make_random_dominant7(g, 0.4, 9);
  Field3<double> b0(g, 1.0);
  auto bp = precondition_jacobi(a, b0);
  auto ah = convert_stencil<fp16_t>(a);
  const auto bh = convert_field<fp16_t>(bp);
  Stencil7Operator<fp16_t> op(ah);
  const auto bvec = flat(bh);

  auto run = [&](int iters) {
    std::vector<fp16_t> x(g.size(), fp16_t(0.0));
    SolveControls c;
    c.max_iterations = iters;
    c.tolerance = 0.0;
    const auto r = conjugate_gradient<MixedPrecision>(
        [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
          op(v, y, fc);
        },
        std::span<const fp16_t>(bvec), std::span<fp16_t>(x), c);
    EXPECT_EQ(r.iterations, iters);
    return r.flops;
  };

  const auto f1 = run(1);
  const auto f3 = run(3);
  const double n = static_cast<double>(g.size());
  EXPECT_DOUBLE_EQ(static_cast<double>(f3.hp_mul - f1.hp_mul) / (2 * n), 11.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(f3.hp_add - f1.hp_add) / (2 * n), 9.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(f3.sp_add - f1.sp_add) / (2 * n), 2.0);
  // 11 + 9 + 2 = 22 ops/meshpoint/iteration.
}

// ---------------------------------------------------------------------------
// Singular-diagonal classification: Jacobi preconditioning with a zero,
// NaN, or Inf diagonal entry used to divide the whole row by it and hand
// BiCGStab a silently poisoned system. The guard in precondition_jacobi
// (stencil/singular.hpp) turns that into SingularDiagonalError before any
// row is scaled, and the solver layers above (SimpleSolver, advance_scalar)
// surface it as BreakdownKind::SingularDiagonal. These assertions fail on
// the unguarded code — it reported NonFiniteResidual at best, or returned
// NaN-contaminated fields — and pass with the classification in place.
// ---------------------------------------------------------------------------

TEST(SingularDiagonal, Stencil7GuardThrowsOnZeroNaNInfDiagonal) {
  const double bads[] = {0.0, std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity()};
  for (const double bad : bads) {
    auto a = make_poisson7(Grid3(3, 3, 3));
    const Field3<double> b(a.grid, 1.0);
    a.diag[13] = bad;
    try {
      (void)precondition_jacobi(a, b);
      FAIL() << "no throw for diagonal " << bad;
    } catch (const SingularDiagonalError& e) {
      EXPECT_EQ(e.index(), 13u);
      if (bad == 0.0) EXPECT_EQ(e.value(), 0.0);
    }
  }
  // A healthy system still preconditions cleanly.
  auto ok = make_poisson7(Grid3(3, 3, 3));
  const Field3<double> b(ok.grid, 1.0);
  EXPECT_NO_THROW((void)precondition_jacobi(ok, b));
  EXPECT_STREQ(to_string(BreakdownKind::SingularDiagonal),
               "singular-diagonal");
}

TEST(SingularDiagonal, Stencil9GuardThrowsWithFailingIndex) {
  const Grid2 g(6, 5);
  auto a = make_random_dominant9(g, 0.4, 31);
  const Field2<double> b(g, 1.0);
  a.coeff[4][7] = 0.0;
  try {
    (void)precondition_jacobi(a, b);
    FAIL() << "no throw for zero stencil9 diagonal";
  } catch (const SingularDiagonalError& e) {
    EXPECT_EQ(e.index(), 7u);
    EXPECT_EQ(e.value(), 0.0);
  }
}

TEST(SingularDiagonal, AdvanceScalarSurfacesClassifiedBreakdown) {
  // Zero diffusivity, infinite dt, fluid at rest: every assembled
  // conductance and the inertia term vanish, so the transport diagonal is
  // exactly zero. The guard must classify — theta untouched, zero
  // iterations, SolveResult says Breakdown/SingularDiagonal — instead of
  // dividing the system by zero and "solving" NaNs.
  const mfix::StaggeredGrid g{4, 4, 4, 0.25};
  const mfix::FluidProps props{1.0, 0.0};
  const mfix::FlowState state(g);
  Field3<double> theta(g.cells(), 0.0);
  theta(1, 1, 1) = 2.5;
  const Field3<double> before = theta;

  mfix::ScalarTransportOptions opt;
  opt.gamma = 0.0;
  opt.dt = std::numeric_limits<double>::infinity();
  SolveResult result;
  const int iters =
      mfix::advance_scalar(g, state, props, theta, nullptr, opt, &result);
  EXPECT_EQ(iters, 0);
  EXPECT_EQ(result.reason, StopReason::Breakdown);
  EXPECT_EQ(result.breakdown, BreakdownKind::SingularDiagonal);
  for (std::size_t i = 0; i < theta.size(); ++i) {
    EXPECT_EQ(theta[i], before[i]) << "theta perturbed at " << i;
  }
}

TEST(SingularDiagonal, SimpleIterationReportsClassifiedBreakdown) {
  // Inviscid fluid, infinite dt, everything at rest: the momentum
  // diagonals assemble to exactly zero, and the SIMPLE iteration must
  // record the classified breakdown in its stats with zero inner
  // iterations spent, rather than crash or spin BiCGStab on a poisoned
  // system.
  const mfix::StaggeredGrid g{4, 4, 4, 0.25};
  const mfix::FluidProps props{1.0, 0.0};
  mfix::SimpleOptions opt;
  opt.dt = std::numeric_limits<double>::infinity();
  mfix::SimpleSolver solver(g, props, mfix::WallMotion{0.0}, opt);
  mfix::FlowState state = mfix::make_cavity_state(g, mfix::WallMotion{0.0});
  const auto stats = solver.iterate(state);
  EXPECT_EQ(stats.breakdown, BreakdownKind::SingularDiagonal);
  EXPECT_EQ(stats.solver_iterations, 0);
}

// ---------------------------------------------------------------------------
// Property coverage: the StopReason / BreakdownKind contract holds for all
// four precision policies on randomized (sometimes NaN/Inf-poisoned)
// diagonally-dominant systems.
// ---------------------------------------------------------------------------

template <typename P>
void check_stop_reason_contract(proptest::Case& pc, bool poison_rhs) {
  using T = typename P::storage_t;
  const int e = pc.size(2, 5);
  const int z = pc.size(2, 7);
  const Grid3 g(e, e, z);
  auto ad = make_random_dominant7(g, pc.uniform(0.2, 0.8), pc.seed() ^ 0x5bd1);
  Field3<double> b0(g);
  for (std::size_t i = 0; i < b0.size(); ++i) b0[i] = pc.uniform(-1.0, 1.0);
  const auto bp = precondition_jacobi(ad, b0);
  const auto a = convert_stencil<T>(ad);
  const auto bf = convert_field<T>(bp);
  std::vector<T> b(bf.begin(), bf.end());
  if (poison_rhs) {
    const auto at = static_cast<std::size_t>(
        pc.rng().below(static_cast<std::uint64_t>(b.size())));
    b[at] = from_double<T>(std::numeric_limits<double>::quiet_NaN());
  }
  Stencil7Operator<T> op(a);

  SolveControls c;
  c.max_iterations = pc.size(1, 25);
  c.tolerance = pc.uniform(1e-12, 1e-2);
  c.max_restarts = pc.size(0, 3);
  c.stagnation_window = pc.size(0, 6);
  std::vector<T> x(b.size(), T{});
  const auto r = bicgstab<P>(
      [&](std::span<const T> v, std::span<T> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const T>(b), std::span<T>(x), c);

  // Budget invariants.
  EXPECT_LE(r.iterations, c.max_iterations);
  EXPECT_GE(r.iterations, 0);
  EXPECT_LE(r.restarts, c.max_restarts);
  EXPECT_EQ(r.relative_residuals.size(),
            static_cast<std::size_t>(r.iterations) +
                (r.reason == StopReason::Converged && r.iterations == 0 ? 1
                                                                        : 0));
  // Classification invariant: Breakdown <=> a named kind.
  EXPECT_EQ(r.reason == StopReason::Breakdown,
            r.breakdown != BreakdownKind::None);
  // Every recorded residual is finite — NaNs stop the solve, they are
  // never logged as history.
  for (const double res : r.relative_residuals) {
    EXPECT_TRUE(std::isfinite(res)) << "policy residual history has NaN/Inf";
  }
  // No silent wrong answer: Converged implies a finite iterate meeting
  // the tolerance.
  if (r.reason == StopReason::Converged) {
    EXPECT_TRUE(all_finite(std::span<const T>(x)));
    EXPECT_LT(r.final_residual(), c.tolerance);
  }
  // A poisoned right-hand side can never be "solved".
  if (poison_rhs) {
    EXPECT_EQ(r.reason, StopReason::Breakdown);
    EXPECT_EQ(r.breakdown, BreakdownKind::NonFiniteResidual);
    EXPECT_EQ(r.iterations, 0);
  }
}

TEST(BreakdownProperty, StopReasonContractAcrossPolicies) {
  proptest::check(
      "StopReason/BreakdownKind contract, all policies",
      [](proptest::Case& pc) {
        const bool poison = pc.uniform(0.0, 1.0) < 0.25;
        check_stop_reason_contract<HalfPrecision>(pc, poison);
        check_stop_reason_contract<MixedPrecision>(pc, poison);
        check_stop_reason_contract<SinglePrecision>(pc, poison);
        check_stop_reason_contract<DoublePrecision>(pc, poison);
      },
      {.cases = 8, .seed = 2026});
}

} // namespace
} // namespace wss
