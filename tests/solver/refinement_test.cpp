#include "solver/refinement.hpp"

#include <gtest/gtest.h>

#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss {
namespace {

TEST(IterativeRefinement, RecoversAccuracyFromMixedInnerSolve) {
  // The paper (Section VI-B) points to iterative refinement as the scheme
  // that recovers accuracy beyond the mixed-precision plateau near 1e-2.
  const Grid3 g(8, 8, 8);
  auto a = make_momentum_like7(g, 0.5, 13);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);

  // Precondition in fp64, then narrow to fp16 for the inner solver.
  auto ap = a;
  Field3<double> b0 = b;
  auto bp = precondition_jacobi(ap, b0);
  const auto ah = convert_stencil<fp16_t>(ap);
  Stencil7Operator<fp16_t> op_lo(ah);
  Stencil7Operator<double> op_hi(ap);

  std::vector<double> bvec(bp.begin(), bp.end());
  std::vector<double> x(g.size(), 0.0);

  SolveControls inner;
  inner.max_iterations = 12;
  inner.tolerance = 1e-3;

  const auto result = iterative_refinement<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op_lo(v, y, fc);
      },
      [&](std::span<const double> v, std::span<double> y) {
        op_hi(v, y, nullptr);
      },
      std::span<const double>(bvec), std::span<double>(x), 1e-8, 20, inner);

  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.outer_residuals.back(), 1e-8);
  // The pure mixed solve alone cannot reach 1e-8 (it plateaus near 1e-2,
  // Fig. 9), so refinement must have taken more than one outer round.
  EXPECT_GE(result.outer_iterations, 2);
}

TEST(IterativeRefinement, OuterResidualsDecrease) {
  const Grid3 g(6, 6, 6);
  auto a = make_momentum_like7(g, 0.8, 31);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  auto ap = a;
  Field3<double> b0 = b;
  auto bp = precondition_jacobi(ap, b0);
  const auto ah = convert_stencil<fp16_t>(ap);
  Stencil7Operator<fp16_t> op_lo(ah);
  Stencil7Operator<double> op_hi(ap);

  std::vector<double> bvec(bp.begin(), bp.end());
  std::vector<double> x(g.size(), 0.0);
  SolveControls inner;
  inner.max_iterations = 10;
  inner.tolerance = 1e-3;
  const auto result = iterative_refinement<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op_lo(v, y, fc);
      },
      [&](std::span<const double> v, std::span<double> y) {
        op_hi(v, y, nullptr);
      },
      std::span<const double>(bvec), std::span<double>(x), 1e-10, 15, inner);
  ASSERT_GE(result.outer_residuals.size(), 2u);
  for (std::size_t i = 1; i < result.outer_residuals.size(); ++i) {
    EXPECT_LT(result.outer_residuals[i], result.outer_residuals[i - 1] * 1.1);
  }
}

TEST(IterativeRefinement, ZeroRhs) {
  const Grid3 g(3, 3, 3);
  auto a = make_poisson7(g);
  Field3<double> b(g, 0.0);
  auto bp = precondition_jacobi(a, b);
  const auto ah = convert_stencil<fp16_t>(a);
  Stencil7Operator<fp16_t> op_lo(ah);
  Stencil7Operator<double> op_hi(a);
  std::vector<double> bvec(bp.begin(), bp.end());
  std::vector<double> x(g.size(), 1.0);
  const auto result = iterative_refinement<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op_lo(v, y, fc);
      },
      [&](std::span<const double> v, std::span<double> y) {
        op_hi(v, y, nullptr);
      },
      std::span<const double>(bvec), std::span<double>(x), 1e-10, 5, {});
  EXPECT_TRUE(result.converged);
  for (const double xi : x) EXPECT_EQ(xi, 0.0);
}

} // namespace
} // namespace wss
