#include "solver/bicgstab.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"

namespace wss {
namespace {

template <typename T>
std::vector<T> flat(const Field3<T>& f) {
  return std::vector<T>(f.begin(), f.end());
}

TEST(Bicgstab, SolvesPoissonDouble) {
  const Grid3 g(8, 8, 8);
  auto a = make_poisson7(g);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);

  std::vector<double> x(g.size(), 0.0);
  const auto bvec = flat(b);
  SolveControls c;
  c.max_iterations = 200;
  c.tolerance = 1e-10;
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bvec), std::span<double>(x), c);

  EXPECT_EQ(result.reason, StopReason::Converged);
  double max_err = 0.0;
  const auto xr = flat(xref);
  for (std::size_t i = 0; i < x.size(); ++i) {
    max_err = std::max(max_err, std::abs(x[i] - xr[i]));
  }
  EXPECT_LT(max_err, 1e-7);
}

TEST(Bicgstab, SolvesNonsymmetricSystem) {
  // The system class BiCGStab exists for: upwinded convection-diffusion.
  const Grid3 g(6, 6, 6);
  auto a = make_convection_diffusion7(g, 3.0, -1.0, 0.5);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);

  std::vector<double> x(g.size(), 0.0);
  const auto bvec = flat(b);
  SolveControls c;
  c.max_iterations = 300;
  c.tolerance = 1e-10;
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bvec), std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);
  EXPECT_LT(true_relative_residual<double>(op, std::span<const double>(bvec),
                                           std::span<const double>(x)),
            1e-9);
}

TEST(Bicgstab, TableIOperationCensus) {
  // Table I: per meshpoint per iteration, with a unit diagonal:
  //   Matvec (x2): 12 mul + 12 add ; Dot (x4): 4 + 4 ; AXPY (x6): 6 + 6
  //   = 22 adds + 22 muls = 44 ops.
  const Grid3 g(6, 6, 6);
  auto a = make_random_dominant7(g, 0.4, 5);
  Field3<double> b0(g, 1.0);
  auto bp = precondition_jacobi(a, b0);
  auto ah = convert_stencil<fp16_t>(a);
  const auto bh = convert_field<fp16_t>(bp);
  Stencil7Operator<fp16_t> op(ah);

  std::vector<fp16_t> x(g.size(), fp16_t(0.0));
  const auto bvec = flat(bh);
  SolveControls c;
  c.max_iterations = 3;
  c.tolerance = 0.0; // run exactly 3 iterations
  const auto result = bicgstab<MixedPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bvec), std::span<fp16_t>(x), c);

  ASSERT_EQ(result.iterations, 3);
  const double n = static_cast<double>(g.size());
  const double iters = 3.0;
  // Subtract setup costs (initial residual: 1 matvec + 1 subtract; ||b||
  // dot; initial (r0, r) dot): measured per-iteration counts.
  FlopCounter setup;
  setup.hp_mul = 6 * g.size();
  setup.hp_add = 7 * g.size();  // matvec adds + residual subtract
  setup.sp_add = 2 * g.size();  // ||b|| and (r0, r) dot accumulates
  setup.hp_mul += 2 * g.size(); // their multiplies

  const double hp_mul =
      static_cast<double>(result.flops.hp_mul - setup.hp_mul) / (n * iters);
  const double hp_add =
      static_cast<double>(result.flops.hp_add - setup.hp_add) / (n * iters);
  const double sp_add =
      static_cast<double>(result.flops.sp_add - setup.sp_add) / (n * iters);

  EXPECT_DOUBLE_EQ(hp_mul, 22.0); // 12 matvec + 4 dot + 6 axpy multiplies
  EXPECT_DOUBLE_EQ(hp_add, 18.0); // 12 matvec + 6 axpy fp16 adds
  EXPECT_DOUBLE_EQ(sp_add, 4.0);  // 4 dot accumulations in fp32
  // Total ops per meshpoint per iteration = 44 (Table I).
  EXPECT_DOUBLE_EQ(hp_mul + hp_add + sp_add, 44.0);
}

TEST(Bicgstab, ZeroRhsGivesZeroSolution) {
  const Grid3 g(4, 4, 4);
  auto a = make_poisson7(g);
  Stencil7Operator<double> op(a);
  std::vector<double> b(g.size(), 0.0);
  std::vector<double> x(g.size(), 3.0);
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(b), std::span<double>(x), {});
  EXPECT_EQ(result.reason, StopReason::Converged);
  for (const double xi : x) EXPECT_EQ(xi, 0.0);
}

TEST(Bicgstab, ResidualsMonotoneForEasySystem) {
  const Grid3 g(5, 5, 5);
  auto a = make_momentum_like7(g, 1.0, 8);
  const auto xref = make_smooth_solution(g);
  const auto b = make_rhs(a, xref);
  Stencil7Operator<double> op(a);
  std::vector<double> x(g.size(), 0.0);
  const auto bvec = flat(b);
  SolveControls c;
  c.max_iterations = 30;
  c.tolerance = 1e-12;
  const auto result = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bvec), std::span<double>(x), c);
  EXPECT_EQ(result.reason, StopReason::Converged);
  // Strongly dominant system: convergence within a handful of iterations.
  EXPECT_LE(result.iterations, 15);
}

TEST(Bicgstab, StagnationDetection) {
  // Half precision on a modest system stagnates well above 1e-8.
  const Grid3 g(6, 6, 6);
  auto a = make_momentum_like7(g, 0.3, 77);
  Field3<double> b0(g);
  for (std::size_t i = 0; i < b0.size(); ++i) b0[i] = std::sin(0.17 * static_cast<double>(i));
  auto bp = precondition_jacobi(a, b0);
  auto ah = convert_stencil<fp16_t>(a);
  const auto bh = convert_field<fp16_t>(bp);
  Stencil7Operator<fp16_t> op(ah);

  std::vector<fp16_t> x(g.size(), fp16_t(0.0));
  const auto bvec = flat(bh);
  SolveControls c;
  c.max_iterations = 100;
  c.tolerance = 1e-10;
  c.stagnation_window = 5;
  const auto result = bicgstab<HalfPrecision>(
      [&](std::span<const fp16_t> v, std::span<fp16_t> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const fp16_t>(bvec), std::span<fp16_t>(x), c);
  EXPECT_NE(result.reason, StopReason::Converged);
  EXPECT_LT(result.iterations, 100); // stopped early, not at the cap
}

} // namespace
} // namespace wss
