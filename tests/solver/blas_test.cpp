#include "solver/blas.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace wss {
namespace {

TEST(Blas, AxpyDouble) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {10.0, 20.0, 30.0};
  FlopCounter fc;
  axpy(2.0, std::span<const double>(x), std::span<double>(y), &fc);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[1], 24.0);
  EXPECT_EQ(y[2], 36.0);
  EXPECT_EQ(fc.dp_add, 3u);
  EXPECT_EQ(fc.dp_mul, 3u);
}

TEST(Blas, AxpyFp16UsesFmacRounding) {
  std::vector<fp16_t> x = {fp16_t(1.0 + std::ldexp(1.0, -10))};
  std::vector<fp16_t> y = {fp16_t(-1.0)};
  const fp16_t a = x[0];
  axpy(a, std::span<const fp16_t>(x), std::span<fp16_t>(y));
  EXPECT_EQ(y[0].bits(), fmac(a, a, fp16_t(-1.0)).bits());
}

TEST(Blas, XpayShape) {
  std::vector<float> x = {1.0f, 2.0f};
  std::vector<float> z = {10.0f, 10.0f};
  std::vector<float> y(2);
  xpay(std::span<const float>(x), -0.5f, std::span<const float>(z),
       std::span<float>(y));
  EXPECT_EQ(y[0], -4.0f);
  EXPECT_EQ(y[1], -3.0f);
}

TEST(Blas, DotMixedCountsWidths) {
  std::vector<fp16_t> a(8, fp16_t(1.0));
  std::vector<fp16_t> b(8, fp16_t(2.0));
  FlopCounter fc;
  const float d = dot<MixedPrecision>(std::span<const fp16_t>(a),
                                      std::span<const fp16_t>(b), &fc);
  EXPECT_EQ(d, 16.0f);
  EXPECT_EQ(fc.hp_mul, 8u); // fp16 multiplies
  EXPECT_EQ(fc.sp_add, 8u); // fp32 adds — exactly Table I's mixed dot row
  EXPECT_EQ(fc.hp_add, 0u);
}

TEST(Blas, DotDoubleMatchesReference) {
  Rng rng(3);
  std::vector<double> a(100), b(100);
  double expected = 0.0;
  for (int i = 0; i < 100; ++i) {
    a[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
    b[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0);
    expected += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(dot<DoublePrecision>(std::span<const double>(a),
                                   std::span<const double>(b)),
              expected, 1e-12);
}

TEST(Blas, Norm2) {
  std::vector<double> v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2<DoublePrecision>(std::span<const double>(v)), 5.0);
}

TEST(Blas, ConvertBetweenTypes) {
  std::vector<double> d = {0.1, 1.0, -3.5};
  const auto h = convert<fp16_t>(std::span<const double>(d));
  EXPECT_EQ(h[0].bits(), fp16_t(0.1).bits());
  EXPECT_EQ(h[1].to_double(), 1.0);
  const auto back = convert<double>(std::span<const fp16_t>(h));
  EXPECT_EQ(back[1], 1.0);
  EXPECT_EQ(back[2], -3.5);
}

TEST(Blas, FlopCounterAggregation) {
  FlopCounter a;
  a.hp_add = 1;
  a.sp_mul = 2;
  FlopCounter b;
  b.hp_add = 10;
  b.dp_add = 5;
  a += b;
  EXPECT_EQ(a.hp_add, 11u);
  EXPECT_EQ(a.sp_mul, 2u);
  EXPECT_EQ(a.dp_add, 5u);
  EXPECT_EQ(a.total(), 18u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

} // namespace
} // namespace wss
