// Wafer explorer: drive the cycle-level fabric simulator directly — the
// lowest layer of the library's API. Compiles the Fig. 5 tessellation and
// the Fig. 6 AllReduce tree onto a small fabric, runs the Listing 1 SpMV
// and a scalar AllReduce, and prints what the hardware did: cycles, link
// transfers, per-core datapath occupancy.
//
//   ./wafer_explorer [fabric_n] [z]
//   ./wafer_explorer --postmortem <bundle.json>
//
// The second form replays a black-box post-mortem bundle (written under
// $WSS_POSTMORTEM_DIR when a run deadlocks or breaks down; see
// docs/POSTMORTEM.md): the bundle summary, then the recorded flight
// events of every tile merged into one chronological timeline — the last
// moments of the run, in fabric order.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stencil/generators.hpp"
#include "telemetry/postmortem.hpp"
#include "wse/route_compiler.hpp"
#include "wse/trace.hpp"
#include "wsekernels/allreduce_program.hpp"
#include "wsekernels/spmv3d_program.hpp"

namespace {

/// Replay mode: pretty-print the bundle, then merge every tile's ring
/// into one cycle-ordered timeline (ties broken row-major, the same order
/// the serial simulator would have executed them).
int replay_postmortem(const char* path) {
  using wss::telemetry::Bundle;
  wss::telemetry::Bundle bundle;
  std::string error;
  if (!wss::telemetry::load_bundle(path, &bundle, &error)) {
    std::fprintf(stderr, "wafer_explorer: %s\n", error.c_str());
    return 2;
  }
  std::fputs(wss::telemetry::pretty_bundle(bundle).c_str(), stdout);

  struct Line {
    std::uint64_t cycle;
    int y, x;
    std::string text;
  };
  std::vector<Line> timeline;
  for (const auto& tile : bundle.tiles) {
    for (const auto& ev : tile.events) {
      std::string text = "(";
      text += std::to_string(tile.x);
      text += ',';
      text += std::to_string(tile.y);
      text += ") ";
      text += ev.summary();
      timeline.push_back({ev.cycle, tile.y, tile.x, std::move(text)});
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Line& a, const Line& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     if (a.y != b.y) return a.y < b.y;
                     return a.x < b.x;
                   });
  constexpr std::size_t kMaxLines = 64;
  const std::size_t start =
      timeline.size() > kMaxLines ? timeline.size() - kMaxLines : 0;
  std::printf("\nmerged replay timeline (last %zu of %zu recorded events):\n",
              timeline.size() - start, timeline.size());
  for (std::size_t i = start; i < timeline.size(); ++i) {
    std::printf("  %s\n", timeline[i].text.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  using namespace wss;

  if (argc >= 2 && std::strcmp(argv[1], "--postmortem") == 0) {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: wafer_explorer --postmortem <bundle.json>\n");
      return 1;
    }
    return replay_postmortem(argv[2]);
  }

  int n = 8;
  int z = 64;
  if (argc >= 2) n = std::atoi(argv[1]);
  if (argc >= 3) z = std::atoi(argv[2]);

  const wse::CS1Params arch;
  const wse::SimParams sim;

  std::printf("fabric %dx%d, Z pencils of %d\n\n", n, n, z);

  // The routing the offline compiler produced (Fig. 5).
  std::printf("tessellation colors (outgoing broadcast channel per tile):\n");
  for (int y = 0; y < n; ++y) {
    std::printf("  ");
    for (int x = 0; x < n; ++x) {
      std::printf("%d ", static_cast<int>(wse::tessellation_color(x, y)));
    }
    std::printf("\n");
  }
  std::printf("five-color property violations: %d\n\n",
              wse::verify_tessellation(n, n));

  // Listing 1's SpMV, executed cycle by cycle.
  const Grid3 grid(n, n, z);
  auto ad = make_random_dominant7(grid, 0.5, 11);
  Field3<double> b(grid, 1.0);
  (void)precondition_jacobi(ad, b);
  const auto a = convert_stencil<fp16_t>(ad);
  Field3<fp16_t> v(grid);
  Rng rng(3);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = fp16_t(rng.uniform(-1.0, 1.0));
  }

  wsekernels::SpMV3DSimulation spmv(a, arch, sim);
  wse::Tracer tracer(1 << 12);
  tracer.focus(n / 2, n / 2); // record the center tile only
  spmv.fabric().set_tracer(&tracer);
  (void)spmv.run(v);
  spmv.fabric().set_tracer(nullptr);
  const auto& fstats = spmv.fabric().stats();
  std::printf("SpMV (u = Av):\n");
  std::printf("  cycles            : %llu (%.2f per Z point)\n",
              static_cast<unsigned long long>(spmv.last_run_cycles()),
              static_cast<double>(spmv.last_run_cycles()) / z);
  std::printf("  link transfers    : %llu\n",
              static_cast<unsigned long long>(fstats.link_transfers));
  std::printf("  wall time @%.3fGHz: %.2f us\n", arch.clock_hz / 1e9,
              static_cast<double>(spmv.last_run_cycles()) / arch.clock_hz *
                  1e6);
  const auto& center = spmv.fabric().core(n / 2, n / 2).stats();
  std::printf("  center tile       : %llu busy / %llu stall / %llu idle "
              "cycles, %llu elements, %llu task runs\n",
              static_cast<unsigned long long>(center.instr_cycles),
              static_cast<unsigned long long>(center.stall_cycles),
              static_cast<unsigned long long>(center.idle_cycles),
              static_cast<unsigned long long>(center.elements_processed),
              static_cast<unsigned long long>(center.task_invocations));
  std::printf("  per-tile program memory: %d bytes of 48 KB\n\n",
              spmv.tile_memory_bytes());

  std::printf("execution trace of the center tile (first 24 events):\n%s\n",
              tracer.render(24).c_str());

  // The Fig. 6 AllReduce.
  wsekernels::AllReduceSimulation allreduce(n, n, arch, sim);
  std::vector<float> contributions(static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < contributions.size(); ++i) {
    contributions[i] = static_cast<float>(i % 7) * 0.25f;
  }
  const auto result = allreduce.run(contributions);
  double exact = 0.0;
  for (const float c : contributions) exact += static_cast<double>(c);
  std::printf("AllReduce of one fp32 scalar per tile:\n");
  std::printf("  result            : %.4f (exact %.4f)\n", result.values[0],
              exact);
  std::printf("  cycles            : %llu (fabric diameter %d)\n",
              static_cast<unsigned long long>(result.cycles), 2 * (n - 1));
  std::printf("  wall time @%.3fGHz: %.3f us (full wafer: <1.5 us, "
              "Sec. IV-3)\n",
              arch.clock_hz / 1e9,
              static_cast<double>(result.cycles) / arch.clock_hz * 1e6);
  return 0;
}
