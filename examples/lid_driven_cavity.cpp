// Lid-driven cavity flow with the MFIX-style SIMPLE solver (Algorithm 2):
// three implicit upwinded momentum equations and a pressure correction per
// iteration, each solved by BiCGStab with the paper's iteration caps (5
// transport / 20 continuity). Prints residual histories and the classic
// centerline velocity profile showing the recirculation vortex.
//
//   ./lid_driven_cavity [n] [simple_iters]

#include <cstdio>
#include <cstdlib>

#include "mfix/simple.hpp"

int main(int argc, char** argv) {
  using namespace wss::mfix;

  int n = 12;
  int iters = 25;
  if (argc >= 2) n = std::atoi(argv[1]);
  if (argc >= 3) iters = std::atoi(argv[2]);

  const StaggeredGrid grid{n, n, n, 1.0 / n};
  const FluidProps props{1.0, 0.05}; // Re = lid_u * L * rho / mu = 20
  const WallMotion walls{1.0};

  std::printf("lid-driven cavity: %d^3 cells, Re = %.0f, %d SIMPLE "
              "iterations\n",
              n, props.rho * walls.lid_u * 1.0 / props.mu, iters);
  std::printf("solver caps: %d momentum / %d continuity BiCGStab "
              "iterations (the paper's limits)\n\n",
              SimpleOptions{}.momentum_solver_iters,
              SimpleOptions{}.continuity_solver_iters);

  SimpleSolver solver(grid, props, walls);
  FlowState state = make_cavity_state(grid, walls);

  std::printf("%6s %18s %18s %10s\n", "iter", "momentum residual",
              "mass residual", "solves");
  for (int i = 0; i < iters; ++i) {
    const auto stats = solver.iterate(state);
    if (i < 5 || (i + 1) % 5 == 0) {
      std::printf("%6d %18.4e %18.4e %10d\n", i + 1,
                  stats.momentum_residual, stats.mass_residual,
                  stats.solver_iterations);
    }
  }

  // Centerline u(z) profile at the cavity midpoint: positive under the
  // lid, negative return flow below — the recirculation signature.
  std::printf("\ncenterline u(z) at (x,y) = center:\n");
  const int ic = n / 2;
  const int jc = n / 2;
  for (int k = n - 1; k >= 0; --k) {
    const double u = state.u(ic, jc, k);
    const int bar = static_cast<int>(u * 40.0);
    std::printf("  z=%2d  u=%+8.4f  |", k, u);
    if (bar >= 0) {
      for (int s = 0; s < bar; ++s) std::printf(">");
    } else {
      for (int s = 0; s < -bar; ++s) std::printf("<");
    }
    std::printf("\n");
  }
  std::printf("\n(the paper's Section VI projects this solver at 600^3 "
              "running 80-125 timesteps per second on the CS-1)\n");
  return 0;
}
