// Real-time CFD sizing study (Section VIII-A): the helicopter/ship-deck
// use case. Oruc's thesis found ~1M cells adequate for ship-airwake
// modeling but real-time performance unreachable on CPU clusters. This
// example runs the SIMPLE solver on a downscaled wake-like problem to
// demonstrate the physics path, then uses the calibrated models to answer
// the sizing question: at 1M cells, how many times faster than real time
// is the wafer, and where does a cluster land?
//
//   ./realtime_wake [n]

#include <cstdio>
#include <cstdlib>

#include "mfix/simple.hpp"
#include "perfmodel/cluster_model.hpp"
#include "perfmodel/simple_model.hpp"

int main(int argc, char** argv) {
  using namespace wss;
  using namespace wss::perfmodel;

  int n = 10;
  if (argc >= 2) n = std::atoi(argv[1]);

  // A shear-driven open box: the lid plays the role of the free stream
  // over the deck; the recirculating wake forms underneath.
  const mfix::StaggeredGrid grid{2 * n, n, n, 1.0 / n};
  const mfix::FluidProps props{1.0, 0.02};
  const mfix::WallMotion wind{1.0};
  mfix::SimpleSolver solver(grid, props, wind);
  mfix::FlowState state = mfix::make_cavity_state(grid, wind);

  std::printf("wake demo on %dx%dx%d cells:\n", 2 * n, n, n);
  double last_mass = 0.0;
  for (int i = 0; i < 10; ++i) {
    last_mass = solver.iterate(state).mass_residual;
  }
  std::printf("  mass residual after 10 SIMPLE iterations: %.3e\n\n",
              last_mass);

  // Sizing the real deployment: ~1M cells (100^3), physical timestep
  // ~1 ms for rotor-downwash scales -> real time needs 1000 steps/s.
  const SimpleModel model{CS1Model{}, JouleModel{}};
  const Grid3 deploy(100, 100, 100);
  const auto p = model.project(deploy);
  const double needed_steps_per_s = 1000.0;

  std::printf("deployment sizing (100^3 = 1M cells, 1 ms physical step):\n");
  std::printf("  CS-1 projected throughput : %.0f - %.0f timesteps/s\n",
              p.steps_per_second_lo, p.steps_per_second_hi);
  std::printf("  real-time factor          : %.2fx - %.2fx\n",
              p.steps_per_second_lo / needed_steps_per_s,
              p.steps_per_second_hi / needed_steps_per_s);

  const JouleModel joule;
  const double iters_per_step = 15.0 * 35.0;
  for (const int cores : {1024, 4096, 16384}) {
    const double step_s =
        iters_per_step * joule.iteration_seconds(deploy, cores) * 1.4;
    std::printf("  Joule @%6d cores        : %.1f timesteps/s (%.3fx real "
                "time)\n",
                cores, 1.0 / step_s, 1.0 / step_s / needed_steps_per_s);
  }
  std::printf("\n'the necessary real-time performance is hard to achieve on "
              "a cluster of multicore CPU systems' — Section VIII-A\n");
  return 0;
}
