// Quickstart: solve a 3D convection-diffusion system the way the paper's
// CS-1 does — diagonal (Jacobi) preconditioning to a unit diagonal, fp16
// storage, mixed-precision BiCGStab with the wafer's summation structure —
// and compare against an fp64 reference solve.
//
//   ./quickstart [nx ny nz]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "solver/bicgstab.hpp"
#include "solver/stencil_operator.hpp"
#include "stencil/generators.hpp"
#include "wsekernels/wse_bicgstab.hpp"

int main(int argc, char** argv) {
  using namespace wss;

  int nx = 24, ny = 24, nz = 48;
  if (argc == 4) {
    nx = std::atoi(argv[1]);
    ny = std::atoi(argv[2]);
    nz = std::atoi(argv[3]);
  }
  const Grid3 grid(nx, ny, nz);
  std::printf("mesh %d x %d x %d (%zu points); fabric %d x %d, Z pencil %d\n",
              nx, ny, nz, grid.size(), nx, ny, nz);

  // 1. Assemble a nonsymmetric 7-point system in fp64 (the host side).
  // A momentum-like implicit-timestep system: upwinded convection plus
  // diffusion plus inertia — the class of systems the paper's CS-1 run
  // solves, diagonally dominant enough for a low-precision Krylov solve.
  auto a = make_momentum_like7(grid, 0.05, 2024);
  const auto x_exact = make_smooth_solution(grid);
  auto b = make_rhs(a, x_exact);

  // 2. Jacobi-precondition: the wafer stores only the six off-diagonals.
  const Field3<double> b_pre = precondition_jacobi(a, b);

  // 3. Narrow to fp16 — this is what would be loaded into tile SRAM.
  const auto a16 = convert_stencil<fp16_t>(a);
  const auto b16 = convert_field<fp16_t>(b_pre);

  const auto mem = wsekernels::bicgstab_tile_memory(nz);
  std::printf("per-tile working set: %d bytes of 48 KB (%s)\n",
              mem.total_bytes, mem.fits ? "fits" : "DOES NOT FIT");

  // 4. Solve with the WSE-mapped mixed-precision BiCGStab.
  wsekernels::WseBicgstabSolver solver(a16);
  Field3<fp16_t> x16(grid, fp16_t(0.0));
  SolveControls controls;
  controls.max_iterations = 40;
  controls.tolerance = 5e-3;
  controls.stagnation_window = 5;
  const SolveResult result = solver.solve(b16, x16, controls);

  std::printf("\nmixed-precision solve: %s after %d iterations\n",
              to_string(result.reason), result.iterations);
  for (std::size_t i = 0; i < result.relative_residuals.size(); ++i) {
    std::printf("  iter %2zu: rel. residual %.3e\n", i + 1,
                result.relative_residuals[i]);
  }

  // 5. Reference fp64 solve for comparison.
  Stencil7Operator<double> op(a);
  std::vector<double> x64(grid.size(), 0.0);
  std::vector<double> bv(b_pre.begin(), b_pre.end());
  SolveControls ref_controls;
  ref_controls.max_iterations = 200;
  ref_controls.tolerance = 1e-12;
  const auto ref = bicgstab<DoublePrecision>(
      [&](std::span<const double> v, std::span<double> y, FlopCounter* fc) {
        op(v, y, fc);
      },
      std::span<const double>(bv), std::span<double>(x64), ref_controls);

  double max_err = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    max_err = std::max(max_err, std::abs(x16[i].to_double() - x64[i]));
  }
  std::printf("\nfp64 reference: %s in %d iterations\n", to_string(ref.reason),
              ref.iterations);
  std::printf("max |x16 - x64| = %.3e (mixed-precision floor ~1e-2 of the "
              "solution scale, per Fig. 9)\n",
              max_err);
  std::printf("flops spent (mixed): %llu fp16 + %llu fp32\n",
              static_cast<unsigned long long>(result.flops.hp_add +
                                              result.flops.hp_mul),
              static_cast<unsigned long long>(result.flops.sp_add +
                                              result.flops.sp_mul));
  return 0;
}
