#pragma once

// Problem generators producing the linear systems studied in the paper.
// All assembly is done in fp64; callers convert to the wafer's fp16
// storage with convert_stencil/convert_field (one rounding per value),
// mirroring how MFIX would hand a system to the CS-1.

#include "common/rng.hpp"
#include "mesh/field.hpp"
#include "stencil/stencil7.hpp"
#include "stencil/stencil9.hpp"

namespace wss {

/// Standard 7-point discrete Laplacian (symmetric positive definite):
/// diag = 6, neighbors = -1, Dirichlet boundary. The model problem.
Stencil7<double> make_poisson7(Grid3 grid);

/// Nonsymmetric convection-diffusion with first-order upwinding of a
/// constant velocity field (vx, vy, vz) scaled by the cell Peclet number.
/// This is the kind of system BiCGStab exists for (CG would fail).
Stencil7<double> make_convection_diffusion7(Grid3 grid, double peclet_x,
                                            double peclet_y, double peclet_z);

/// MFIX-momentum-like system: implicit timestep discretization of a
/// momentum equation, diag = inertia/dt + sum of face coefficients, strongly
/// diagonally dominant (converges in ~10-20 BiCGStab iterations like the
/// Fig. 9 system). `dominance` > 0 adds inertia: diag = (1+dominance)*sum.
Stencil7<double> make_momentum_like7(Grid3 grid, double dominance,
                                     std::uint64_t seed);

/// Random nonsymmetric M-matrix-like stencil with controllable diagonal
/// dominance, for property tests.
Stencil7<double> make_random_dominant7(Grid3 grid, double dominance,
                                       std::uint64_t seed);

/// 9-point 2D version of the Laplacian (compact 9-point scheme).
Stencil9<double> make_poisson9(Grid2 grid);

/// Random diagonally dominant nonsymmetric 9-point stencil.
Stencil9<double> make_random_dominant9(Grid2 grid, double dominance,
                                       std::uint64_t seed);

/// Smooth manufactured solution u(x,y,z) = sin-product scaled to O(1),
/// used to create rhs = A*u with a known answer.
Field3<double> make_smooth_solution(Grid3 grid);
Field2<double> make_smooth_solution(Grid2 grid);

/// rhs = A * x_exact computed in fp64.
Field3<double> make_rhs(const Stencil7<double>& a,
                        const Field3<double>& x_exact);
Field2<double> make_rhs(const Stencil9<double>& a,
                        const Field2<double>& x_exact);

} // namespace wss
