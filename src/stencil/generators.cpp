#include "stencil/generators.hpp"

#include <cmath>
#include <numbers>

namespace wss {

Stencil7<double> make_poisson7(Grid3 grid) {
  Stencil7<double> a(grid);
  a.diag.fill(6.0);
  a.xp.fill(-1.0);
  a.xm.fill(-1.0);
  a.yp.fill(-1.0);
  a.ym.fill(-1.0);
  a.zp.fill(-1.0);
  a.zm.fill(-1.0);
  return a;
}

Stencil7<double> make_convection_diffusion7(Grid3 grid, double peclet_x,
                                            double peclet_y,
                                            double peclet_z) {
  // Finite-volume upwinding: face coefficient = -(diffusion + max(flux, 0))
  // on the upwind side, -(diffusion + max(-flux, 0)) downwind; diagonal
  // balances the row so the matrix is an M-matrix (weakly dominant), plus a
  // small reaction term for strict dominance.
  Stencil7<double> a(grid);
  const double d = 1.0;
  const double react = 1e-2;
  for (int x = 0; x < grid.nx; ++x) {
    for (int y = 0; y < grid.ny; ++y) {
      for (int z = 0; z < grid.nz; ++z) {
        const double cxp = -(d + std::max(-peclet_x, 0.0));
        const double cxm = -(d + std::max(peclet_x, 0.0));
        const double cyp = -(d + std::max(-peclet_y, 0.0));
        const double cym = -(d + std::max(peclet_y, 0.0));
        const double czp = -(d + std::max(-peclet_z, 0.0));
        const double czm = -(d + std::max(peclet_z, 0.0));
        a.xp(x, y, z) = cxp;
        a.xm(x, y, z) = cxm;
        a.yp(x, y, z) = cyp;
        a.ym(x, y, z) = cym;
        a.zp(x, y, z) = czp;
        a.zm(x, y, z) = czm;
        a.diag(x, y, z) = -(cxp + cxm + cyp + cym + czp + czm) + react;
      }
    }
  }
  return a;
}

Stencil7<double> make_momentum_like7(Grid3 grid, double dominance,
                                     std::uint64_t seed) {
  Stencil7<double> a(grid);
  Rng rng(seed);
  for (int x = 0; x < grid.nx; ++x) {
    for (int y = 0; y < grid.ny; ++y) {
      for (int z = 0; z < grid.nz; ++z) {
        // Face coefficients: diffusion plus upwinded convection with a
        // smoothly varying velocity field, as a momentum equation yields.
        const double vx = 0.8 * std::sin(0.05 * x + 0.3) + 0.2;
        const double vy = 0.8 * std::cos(0.07 * y) - 0.1;
        const double vz = 0.6 * std::sin(0.04 * z + 1.1);
        const double jitter = 0.05 * rng.uniform(-1.0, 1.0);
        const double d = 1.0 + jitter;
        const double cxp = -(d + std::max(-vx, 0.0));
        const double cxm = -(d + std::max(vx, 0.0));
        const double cyp = -(d + std::max(-vy, 0.0));
        const double cym = -(d + std::max(vy, 0.0));
        const double czp = -(d + std::max(vz, 0.0));
        const double czm = -(d + std::max(vz, 0.0));
        a.xp(x, y, z) = cxp;
        a.xm(x, y, z) = cxm;
        a.yp(x, y, z) = cyp;
        a.ym(x, y, z) = cym;
        a.zp(x, y, z) = czp;
        a.zm(x, y, z) = czm;
        const double offsum = cxp + cxm + cyp + cym + czp + czm;
        a.diag(x, y, z) = -offsum * (1.0 + dominance);
      }
    }
  }
  return a;
}

Stencil7<double> make_random_dominant7(Grid3 grid, double dominance,
                                       std::uint64_t seed) {
  Stencil7<double> a(grid);
  Rng rng(seed);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double cxp = -rng.uniform(0.1, 1.0);
    const double cxm = -rng.uniform(0.1, 1.0);
    const double cyp = -rng.uniform(0.1, 1.0);
    const double cym = -rng.uniform(0.1, 1.0);
    const double czp = -rng.uniform(0.1, 1.0);
    const double czm = -rng.uniform(0.1, 1.0);
    a.xp[i] = cxp;
    a.xm[i] = cxm;
    a.yp[i] = cyp;
    a.ym[i] = cym;
    a.zp[i] = czp;
    a.zm[i] = czm;
    a.diag[i] = -(cxp + cxm + cyp + cym + czp + czm) * (1.0 + dominance);
  }
  return a;
}

Stencil9<double> make_poisson9(Grid2 grid) {
  // Compact 9-point Laplacian: center 20/6, edge neighbors -4/6, corner
  // neighbors -1/6 (scaled by 6 to keep integers: 20, -4, -1).
  Stencil9<double> a(grid);
  for (int k = 0; k < 9; ++k) {
    const auto [dx, dy] = kStencil9Offsets[static_cast<std::size_t>(k)];
    double c = 0.0;
    if (dx == 0 && dy == 0) {
      c = 20.0 / 6.0;
    } else if (dx == 0 || dy == 0) {
      c = -4.0 / 6.0;
    } else {
      c = -1.0 / 6.0;
    }
    a.coeff[static_cast<std::size_t>(k)].fill(c);
  }
  return a;
}

Stencil9<double> make_random_dominant9(Grid2 grid, double dominance,
                                       std::uint64_t seed) {
  Stencil9<double> a(grid);
  Rng rng(seed);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    double offsum = 0.0;
    for (int k = 0; k < 9; ++k) {
      if (k == 4) continue;
      const double c = -rng.uniform(0.1, 1.0);
      a.coeff[static_cast<std::size_t>(k)][i] = c;
      offsum += c;
    }
    a.coeff[4][i] = -offsum * (1.0 + dominance);
  }
  return a;
}

Field3<double> make_smooth_solution(Grid3 grid) {
  Field3<double> u(grid);
  constexpr double pi = std::numbers::pi;
  for (int x = 0; x < grid.nx; ++x) {
    for (int y = 0; y < grid.ny; ++y) {
      for (int z = 0; z < grid.nz; ++z) {
        u(x, y, z) = std::sin(pi * (x + 1.0) / (grid.nx + 1)) *
                     std::sin(pi * (y + 1.0) / (grid.ny + 1)) *
                     std::sin(pi * (z + 1.0) / (grid.nz + 1));
      }
    }
  }
  return u;
}

Field2<double> make_smooth_solution(Grid2 grid) {
  Field2<double> u(grid);
  constexpr double pi = std::numbers::pi;
  for (int x = 0; x < grid.nx; ++x) {
    for (int y = 0; y < grid.ny; ++y) {
      u(x, y) = std::sin(pi * (x + 1.0) / (grid.nx + 1)) *
                std::sin(pi * (y + 1.0) / (grid.ny + 1));
    }
  }
  return u;
}

Field3<double> make_rhs(const Stencil7<double>& a,
                        const Field3<double>& x_exact) {
  Field3<double> b(a.grid);
  spmv7(a, x_exact, b);
  return b;
}

Field2<double> make_rhs(const Stencil9<double>& a,
                        const Field2<double>& x_exact) {
  Field2<double> b(a.grid);
  spmv9(a, x_exact, b);
  return b;
}

} // namespace wss
