#pragma once

// 9-point stencil matrix on a 2D grid for the Section IV-2 mapping, where a
// rectangular block of the mesh lives on each tile and SpMV is performed
// locally with FMAC followed by an output-halo exchange.

#include <array>
#include <cstddef>

#include "common/precision.hpp"
#include "mesh/field.hpp"
#include "mesh/grid.hpp"
#include "stencil/singular.hpp"

namespace wss {

/// Offsets of the 9-point stencil in (dx, dy), row-major over the 3x3
/// neighborhood; index 4 is the center.
inline constexpr std::array<std::array<int, 2>, 9> kStencil9Offsets = {{
    {-1, -1}, {-1, 0}, {-1, 1},
    {0, -1},  {0, 0},  {0, 1},
    {1, -1},  {1, 0},  {1, 1},
}};

template <typename T>
struct Stencil9 {
  Grid2 grid;
  std::array<Field2<T>, 9> coeff;
  bool unit_diagonal = false;

  Stencil9() = default;
  explicit Stencil9(Grid2 g) : grid(g) {
    for (auto& c : coeff) c = Field2<T>(g);
  }

  [[nodiscard]] std::size_t num_points() const { return grid.size(); }
};

/// y = A * v with Dirichlet-zero closure; reference for the 2D WSE kernel.
template <typename T>
void spmv9(const Stencil9<T>& a, const Field2<T>& v, Field2<T>& y) {
  const Grid2 g = a.grid;
  for (int x = 0; x < g.nx; ++x) {
    for (int yy = 0; yy < g.ny; ++yy) {
      T acc{};
      for (int k = 0; k < 9; ++k) {
        const int xn = x + kStencil9Offsets[static_cast<std::size_t>(k)][0];
        const int yn = yy + kStencil9Offsets[static_cast<std::size_t>(k)][1];
        if (!g.contains(xn, yn)) continue;
        acc = acc + a.coeff[static_cast<std::size_t>(k)](x, yy) * v(xn, yn);
      }
      y(x, yy) = acc;
    }
  }
}

/// Jacobi-precondition the 9-point system; throws SingularDiagonalError
/// on a zero/NaN/Inf diagonal (stencil/singular.hpp).
template <typename T>
Field2<T> precondition_jacobi(Stencil9<T>& a, const Field2<T>& b) {
  Field2<T> scaled_b(a.grid);
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    const T d = a.coeff[4][i];
    if (diagonal_is_singular(to_double(d))) {
      throw SingularDiagonalError(i, to_double(d));
    }
    for (int k = 0; k < 9; ++k) {
      if (k == 4) continue;
      a.coeff[static_cast<std::size_t>(k)][i] =
          a.coeff[static_cast<std::size_t>(k)][i] / d;
    }
    scaled_b[i] = b[i] / d;
    a.coeff[4][i] = from_double<T>(1.0);
  }
  a.unit_diagonal = true;
  return scaled_b;
}

} // namespace wss
