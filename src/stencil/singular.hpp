#pragma once

// Classified failure for Jacobi (diagonal) preconditioning: dividing a
// row by a zero, NaN, or Inf diagonal does not produce a wrong answer —
// it silently poisons every coefficient of the row and the rhs, and the
// solver then limps along on garbage until some dot product goes
// non-finite far from the root cause. precondition_jacobi (stencil7 and
// stencil9) throws this instead, carrying the first offending row; the
// solver layers above classify it as BreakdownKind::SingularDiagonal.

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace wss {

class SingularDiagonalError : public std::runtime_error {
public:
  SingularDiagonalError(std::size_t index, double value)
      : std::runtime_error(
            "jacobi preconditioner: singular diagonal at meshpoint " +
            std::to_string(index) + " (value " + std::to_string(value) + ")"),
        index_(index),
        value_(value) {}

  /// Flat meshpoint index of the first bad row.
  [[nodiscard]] std::size_t index() const { return index_; }
  /// The offending diagonal value (0, NaN, or +/-Inf).
  [[nodiscard]] double value() const { return value_; }

private:
  std::size_t index_;
  double value_;
};

/// True when a diagonal value cannot scale a row: exactly zero (division
/// poisons the row with Inf/NaN) or already non-finite.
[[nodiscard]] inline bool diagonal_is_singular(double d) {
  return d == 0.0 || !std::isfinite(d);
}

} // namespace wss
