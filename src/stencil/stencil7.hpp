#pragma once

// 7-point stencil matrix on a 3D grid, stored as one coefficient field per
// nonzero diagonal — exactly the layout the paper keeps per tile: after
// diagonal (Jacobi) preconditioning the main diagonal is all ones, so only
// the six neighbor diagonals are stored (Section IV).

#include <cstddef>

#include "common/precision.hpp"
#include "mesh/field.hpp"
#include "mesh/grid.hpp"
#include "stencil/singular.hpp"

namespace wss {

/// Neighbor roles of the 7-point stencil, named as in the paper's Listing 1
/// (coordinate direction + p/m for plus/minus).
enum class Stencil7Term { XP, XM, YP, YM, ZP, ZM };

/// A := diag + sum over the six neighbor diagonals. Row (x,y,z) of A*v is
///   diag(x,y,z)*v(x,y,z) + xp*v(x+1,y,z) + xm*v(x-1,y,z)
///   + yp*v(x,y+1,z) + ym*v(x,y-1,z) + zp*v(x,y,z+1) + zm*v(x,y,z-1)
/// with Dirichlet-zero closure outside the grid.
template <typename T>
struct Stencil7 {
  Grid3 grid;
  Field3<T> diag, xp, xm, yp, ym, zp, zm;
  /// True once Jacobi preconditioning has scaled every row so diag == 1;
  /// the WSE kernels require this (they never multiply by the diagonal).
  bool unit_diagonal = false;

  Stencil7() = default;
  explicit Stencil7(Grid3 g)
      : grid(g), diag(g), xp(g), xm(g), yp(g), ym(g), zp(g), zm(g) {}

  [[nodiscard]] std::size_t num_points() const { return grid.size(); }

  /// The stored nonzeros per meshpoint (6 when the diagonal is implicit).
  [[nodiscard]] int stored_diagonals() const { return unit_diagonal ? 6 : 7; }
};

/// y = A * v computed in the arithmetic of T, one rounding per operation.
/// Reference implementation for validating the WSE-mapped SpMV.
template <typename T>
void spmv7(const Stencil7<T>& a, const Field3<T>& v, Field3<T>& y) {
  const Grid3 g = a.grid;
  for (int x = 0; x < g.nx; ++x) {
    for (int yy = 0; yy < g.ny; ++yy) {
      for (int z = 0; z < g.nz; ++z) {
        T acc = a.diag(x, yy, z) * v(x, yy, z);
        if (x + 1 < g.nx) acc = acc + a.xp(x, yy, z) * v(x + 1, yy, z);
        if (x > 0) acc = acc + a.xm(x, yy, z) * v(x - 1, yy, z);
        if (yy + 1 < g.ny) acc = acc + a.yp(x, yy, z) * v(x, yy + 1, z);
        if (yy > 0) acc = acc + a.ym(x, yy, z) * v(x, yy - 1, z);
        if (z + 1 < g.nz) acc = acc + a.zp(x, yy, z) * v(x, yy, z + 1);
        if (z > 0) acc = acc + a.zm(x, yy, z) * v(x, yy, z - 1);
        y(x, yy, z) = acc;
      }
    }
  }
}

/// Scale the system A x = b by the inverse diagonal so diag == 1 (the
/// paper's diagonal preconditioning). Returns the scaled rhs. Throws
/// SingularDiagonalError on a zero/NaN/Inf diagonal — scaling by such a
/// row would silently poison the whole system (stencil/singular.hpp).
template <typename T>
Field3<T> precondition_jacobi(Stencil7<T>& a, const Field3<T>& b) {
  Field3<T> scaled_b(a.grid);
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    const T d = a.diag[i];
    if (diagonal_is_singular(to_double(d))) {
      throw SingularDiagonalError(i, to_double(d));
    }
    a.xp[i] = a.xp[i] / d;
    a.xm[i] = a.xm[i] / d;
    a.yp[i] = a.yp[i] / d;
    a.ym[i] = a.ym[i] / d;
    a.zp[i] = a.zp[i] / d;
    a.zm[i] = a.zm[i] / d;
    scaled_b[i] = b[i] / d;
    a.diag[i] = from_double<T>(1.0);
  }
  a.unit_diagonal = true;
  return scaled_b;
}

/// Convert a stencil between scalar types (e.g. fp64 assembly -> fp16
/// storage on the wafer), rounding each coefficient once.
template <typename Dst, typename Src>
Stencil7<Dst> convert_stencil(const Stencil7<Src>& s) {
  Stencil7<Dst> out(s.grid);
  auto conv = [](const Field3<Src>& f, Field3<Dst>& g) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      g[i] = from_double<Dst>(to_double(f[i]));
    }
  };
  conv(s.diag, out.diag);
  conv(s.xp, out.xp);
  conv(s.xm, out.xm);
  conv(s.yp, out.yp);
  conv(s.ym, out.ym);
  conv(s.zp, out.zp);
  conv(s.zm, out.zm);
  out.unit_diagonal = s.unit_diagonal;
  return out;
}

} // namespace wss
