#pragma once

// Cycle-attribution profiler for the fabric simulator (docs/PROFILING.md).
//
// When a Profiler is attached (Fabric::set_profiler), every cycle of every
// configured tile is attributed to exactly one CycleCat — compute,
// send-blocked, recv-starved, router-stall, fault-stall, or idle — and
// binned by the program phase the tile last declared with a SetPhase marker
// (SpMV, local dots, AXPY, AllReduce, control). The conservation invariant
//   sum over phases and categories of tile (x, y)'s bins
//     == cycles stepped while the profiler was attached
// holds per tile by construction and is asserted by
// tests/telemetry/profiler_test.cpp.
//
// Determinism: all recording methods write only state owned by the tile
// being recorded, and the fabric calls them from the row band that owns
// that tile — the same ownership discipline that makes counters and traces
// bit-identical under WSS_SIM_THREADS (docs/SIMULATOR.md). The profiler
// therefore needs no per-band staging: profiles are bit-identical at any
// thread count (tests/wse/profiler_conformance_test.cpp).
//
// The recording surface is header-only on purpose: wss_wse does not link
// wss_telemetry, so fabric.cpp may include this header and call the inline
// recorders without creating a library cycle. Analysis (critical path,
// JSON/pretty reports) lives in profiler.cpp inside wss_telemetry.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "wse/types.hpp"

namespace wss::telemetry {

/// Where a tile-cycle went. Exactly one per tile per cycle.
enum class CycleCat : std::uint8_t {
  Compute = 0,      ///< the datapath advanced an instruction
  SendBlocked = 1,  ///< work present, blocked on fabric injection /
                    ///< downstream FIFO backpressure
  RecvStarved = 2,  ///< work present, waiting on fabric words
  RouterStall = 3,  ///< an injected router-stall fault froze the tile's
                    ///< router this cycle while the core had stalled work
  FaultStall = 4,   ///< the core is dead (DeadTileFault) — cycles the
                    ///< fault, not the program, is spending
  Idle = 5,         ///< no runnable or in-flight work
};
inline constexpr int kNumCycleCats = 6;

[[nodiscard]] constexpr const char* to_string(CycleCat c) {
  switch (c) {
    case CycleCat::Compute: return "compute";
    case CycleCat::SendBlocked: return "send_blocked";
    case CycleCat::RecvStarved: return "recv_starved";
    case CycleCat::RouterStall: return "router_stall";
    case CycleCat::FaultStall: return "fault_stall";
    case CycleCat::Idle: return "idle";
  }
  return "?";
}

/// One wavelet dependency edge: tile (src_x, src_y) injected a word at
/// send_cycle that reached this tile's core at recv_cycle. The raw material
/// of the critical-path walk.
struct RecvRecord {
  std::uint32_t recv_cycle = 0;
  std::uint32_t send_cycle = 0;
  std::int16_t src_x = -1;
  std::int16_t src_y = -1;
};

/// A tile entered iteration `iteration` at fabric cycle `cycle`.
struct IterMark {
  std::uint64_t iteration = 0;
  std::uint64_t cycle = 0;
};

/// Phase × category cycle matrix plus dependency logs for one tile.
struct TileProfile {
  std::array<std::array<std::uint64_t, kNumCycleCats>, wse::kNumProgPhases>
      cycles{};
  /// Closed [first, last] cycle ranges in which the tile computed,
  /// run-length compressed (consecutive compute cycles share an interval).
  std::vector<std::array<std::uint32_t, 2>> compute_intervals;
  std::vector<RecvRecord> recvs;       ///< ascending recv_cycle
  std::vector<IterMark> iter_marks;    ///< ascending cycle
  std::uint64_t recvs_dropped = 0;     ///< recvs beyond the per-tile cap
  std::uint64_t last_seen_iteration = 0;
  bool configured = false;

  [[nodiscard]] std::uint64_t total_cycles() const {
    std::uint64_t t = 0;
    for (const auto& row : cycles) {
      for (const std::uint64_t v : row) t += v;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t phase_total(int phase) const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : cycles[static_cast<std::size_t>(phase)]) {
      t += v;
    }
    return t;
  }
  [[nodiscard]] std::uint64_t cat_total(int cat) const {
    std::uint64_t t = 0;
    for (const auto& row : cycles) t += row[static_cast<std::size_t>(cat)];
    return t;
  }
};

/// Aggregate phase × category matrix over all tiles.
using PhaseCatMatrix =
    std::array<std::array<std::uint64_t, kNumCycleCats>, wse::kNumProgPhases>;

class Profiler {
public:
  /// Per-tile wavelet-edge log cap. Bounds memory on long runs; the
  /// critical-path walk degrades gracefully (reports truncation) when a
  /// tile overflows. 1<<16 records ≈ 768 KB/tile worst case.
  static constexpr std::size_t kMaxRecvRecords = std::size_t{1} << 16;

  Profiler(int width, int height)
      : width_(width), height_(height),
        tiles_(static_cast<std::size_t>(width) *
               static_cast<std::size_t>(height)) {}

  // --- recording (inline; called by the fabric under band ownership) ---

  void mark_configured(int x, int y) { tile_mut(x, y).configured = true; }

  /// Attribute one cycle of tile (x, y). `cycle` feeds the compute-interval
  /// compression used by the critical-path walk.
  void record_cycle(int x, int y, wse::ProgPhase phase, CycleCat cat,
                    std::uint64_t cycle) {
    TileProfile& t = tile_mut(x, y);
    ++t.cycles[static_cast<std::size_t>(phase)][static_cast<std::size_t>(cat)];
    if (cat == CycleCat::Compute) {
      const auto c32 = static_cast<std::uint32_t>(cycle);
      if (!t.compute_intervals.empty() &&
          t.compute_intervals.back()[1] + 1 == c32) {
        t.compute_intervals.back()[1] = c32;
      } else {
        t.compute_intervals.push_back({c32, c32});
      }
    }
  }

  /// Record a wavelet dependency edge on ramp delivery at tile (x, y).
  /// Flits without provenance (host-preloaded words) are skipped.
  void record_recv(int x, int y, std::uint64_t recv_cycle,
                   const wse::Flit& flit) {
    if (flit.src_x < 0 || flit.src_y < 0) return;
    TileProfile& t = tile_mut(x, y);
    if (t.recvs.size() >= kMaxRecvRecords) {
      ++t.recvs_dropped;
      return;
    }
    t.recvs.push_back(RecvRecord{static_cast<std::uint32_t>(recv_cycle),
                                 flit.src_cycle, flit.src_x, flit.src_y});
  }

  /// Record the tile's iteration counter after a core step; appends a mark
  /// only when the counter changed, so the call is cheap in steady state.
  void record_iteration(int x, int y, std::uint64_t iteration,
                        std::uint64_t cycle) {
    TileProfile& t = tile_mut(x, y);
    if (iteration == t.last_seen_iteration) return;
    t.last_seen_iteration = iteration;
    t.iter_marks.push_back(IterMark{iteration, cycle});
  }

  /// One fabric step elapsed with this profiler attached. Called from the
  /// serial section of Fabric::step().
  void add_observed_cycle() { ++observed_cycles_; }

  // --- inspection ---

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::uint64_t observed_cycles() const {
    return observed_cycles_;
  }
  [[nodiscard]] const TileProfile& tile(int x, int y) const {
    return tiles_[index(x, y)];
  }
  [[nodiscard]] int configured_tiles() const {
    int n = 0;
    for (const TileProfile& t : tiles_) n += t.configured ? 1 : 0;
    return n;
  }

  /// Sum the phase × category matrix over all tiles.
  [[nodiscard]] PhaseCatMatrix totals() const {
    PhaseCatMatrix m{};
    for (const TileProfile& t : tiles_) {
      for (int p = 0; p < wse::kNumProgPhases; ++p) {
        for (int c = 0; c < kNumCycleCats; ++c) {
          m[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)] +=
              t.cycles[static_cast<std::size_t>(p)]
                      [static_cast<std::size_t>(c)];
        }
      }
    }
    return m;
  }

  /// Global iteration windows: iteration k spans
  /// [min over tiles of mark(k).cycle, min over tiles of mark(k+1).cycle).
  /// Implemented in profiler.cpp.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  iteration_windows() const;

  /// Machine-readable profile: observed cycles, per-phase per-category
  /// totals, per-category grand totals, conservation check.
  [[nodiscard]] std::string to_json() const;
  /// Terminal-friendly phase × category table with percentages.
  [[nodiscard]] std::string pretty() const;

private:
  [[nodiscard]] std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] TileProfile& tile_mut(int x, int y) {
    return tiles_[index(x, y)];
  }

  int width_;
  int height_;
  std::vector<TileProfile> tiles_;
  std::uint64_t observed_cycles_ = 0;
};

// --- critical-path analysis (profiler.cpp) ------------------------------

/// One hop of a critical path: the program was at tile (x, y) from cycle
/// `from_cycle` until `until_cycle`, then followed a wavelet edge to the
/// next hop (the previous element in the vector; hops are reported in
/// chronological order, source first).
struct PathHop {
  int x = 0;
  int y = 0;
  std::uint64_t from_cycle = 0;
  std::uint64_t until_cycle = 0;
};

struct CriticalPath {
  std::vector<PathHop> hops;    ///< chronological, earliest first
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;  ///< last compute cycle reached in window
  bool truncated = false;       ///< hit the hop cap or a recv-log overflow
  [[nodiscard]] std::uint64_t length_cycles() const {
    return end_cycle - start_cycle;
  }
  [[nodiscard]] std::size_t tile_hops() const {
    return hops.empty() ? 0 : hops.size() - 1;
  }
  [[nodiscard]] std::string pretty() const;
};

/// Walk the recorded wavelet/compute dependency chain backwards from the
/// latest compute cycle in [window_lo, window_hi) and report the longest
/// tile→tile chain — the simulator's analogue of the paper's diameter-bound
/// AllReduce argument (Fig. 6). Deterministic: ties break row-major.
[[nodiscard]] CriticalPath critical_path(const Profiler& prof,
                                         std::uint64_t window_lo,
                                         std::uint64_t window_hi,
                                         std::size_t max_hops = 4096);

/// Critical path of each completed iteration window.
[[nodiscard]] std::vector<CriticalPath> per_iteration_critical_paths(
    const Profiler& prof, std::size_t max_hops = 4096);

} // namespace wss::telemetry
