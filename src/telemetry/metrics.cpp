#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/json.hpp"

namespace wss::telemetry {

void Histogram::observe(double v) {
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    return std::isfinite(v) ? 0 : kNumBuckets - 1;
  }
  // ilogb(v) = floor(log2(v)); v in [2^e, 2^(e+1)).
  const int e = std::ilogb(v);
  const int idx = e - kMinExp + 1;
  return std::clamp(idx, 0, kNumBuckets - 1);
}

double Histogram::bucket_lower_edge(int i) {
  if (i <= 0) return 0.0;
  return std::ldexp(1.0, kMinExp + i - 1);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target && seen > 0) return bucket_lower_edge(i);
  }
  return bucket_lower_edge(kNumBuckets - 1);
}

Histogram Histogram::minus(const Histogram& earlier) const {
  Histogram out = *this;
  for (int i = 0; i < kNumBuckets; ++i) {
    const auto j = static_cast<std::size_t>(i);
    out.buckets_[j] =
        buckets_[j] >= earlier.buckets_[j] ? buckets_[j] - earlier.buckets_[j]
                                           : 0;
  }
  out.count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
  out.sum_ = sum_ - earlier.sum_;
  // min/max of the difference window are unknowable from totals; keep the
  // later window's observed extremes as the best available bound.
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c.value);
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g.value);
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, h);
  return s;
}

MetricsRegistry::Snapshot MetricsRegistry::diff(const Snapshot& before,
                                                const Snapshot& after) {
  Snapshot d;
  for (const auto& [name, v] : after.counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters.emplace(name, v >= base ? v - base : 0);
  }
  d.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    d.histograms.emplace(
        name, it == before.histograms.end() ? h : h.minus(it->second));
  }
  return d;
}

std::string MetricsRegistry::Snapshot::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.key(name).value(v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("mean").value(h.mean());
    w.key("p50").value(h.quantile(0.5));
    w.key("p99").value(h.quantile(0.99));
    w.key("buckets").begin_array();
    // Sparse encoding: [lower_edge, count] pairs for nonempty buckets.
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      w.begin_array()
          .value(Histogram::bucket_lower_edge(i))
          .value(h.bucket(i))
          .end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsRegistry::Snapshot::pretty() const {
  std::ostringstream out;
  auto line = [&](const std::string& name, const std::string& v) {
    out << "  " << name;
    for (std::size_t i = name.size(); i < 40; ++i) out << ' ';
    out << ' ' << v << '\n';
  };
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, v] : counters) line(name, std::to_string(v));
  }
  if (!gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, v] : gauges) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      line(name, buf);
    }
  }
  if (!histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : histograms) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "n=%llu mean=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
                    static_cast<unsigned long long>(h.count()), h.mean(),
                    h.min(), h.quantile(0.5), h.quantile(0.99), h.max());
      line(name, buf);
    }
  }
  return out.str();
}

} // namespace wss::telemetry
