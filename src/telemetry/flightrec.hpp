#pragma once

// Black-box flight recorder for the fabric simulator (docs/POSTMORTEM.md).
//
// When attached (Fabric::set_flight_recorder), every configured tile keeps
// a bounded ring buffer of its last `depth` forensic events: wavelet
// deliveries off the ramp, task state transitions (activate / block /
// unblock / start / end), software-FIFO high-water advances, ProgPhase
// marks, and iteration marks. On an anomaly (deadlock watchdog, NaN
// scalar, solver breakdown, fault storm) the post-mortem writer
// (telemetry/postmortem.hpp) snapshots these rings into a versioned JSON
// bundle — the last moments before the anomaly, per tile.
//
// Determinism and non-perturbation are both by construction:
//  * every recording call writes only state owned by the tile being
//    recorded, and the fabric/core call it from the row band that owns the
//    tile — the same ownership discipline that makes counters, traces and
//    profiles bit-identical under WSS_SIM_THREADS (docs/SIMULATOR.md), so
//    recorded rings are bit-identical at any host thread count;
//  * the recorder only *observes*: no hook feeds a value back into the
//    simulation, so attaching one cannot change a single simulated bit
//    (tests/telemetry/flightrec_test.cpp proves result bits, cycle counts,
//    heatmaps and traces are identical with the recorder on and off).
//
// Like telemetry/profiler.hpp, the recording surface is header-only on
// purpose: wss_wse does not link wss_telemetry, so fabric.cpp / core.cpp
// may include this header and call the inline recorders without creating a
// library cycle. Analysis and JSON emission live in flightrec.cpp /
// postmortem.cpp inside wss_telemetry.

#include <cstdint>
#include <string>
#include <vector>

#include "wse/types.hpp"

namespace wss::telemetry {

/// What happened. The a/b/c/d payload fields are kind-specific (see each
/// enumerator); unused fields are zero.
enum class FlightEventKind : std::uint8_t {
  /// A wavelet left the router's virtual-channel queue and was delivered
  /// to this tile's core. a = color, b = payload bits (as int32),
  /// c = packed source tile ((src_x << 16) | (src_y & 0xffff), -1 when the
  /// flit has no provenance), d = injection cycle at the source.
  WaveletDelivered = 0,
  /// A task became activated (instruction/FIFO trigger or control step).
  /// a = task id.
  TaskActivate = 1,
  /// A task's blocked flag was cleared. a = task id.
  TaskUnblock = 2,
  /// A task's blocked flag was set (control step). a = task id.
  TaskBlock = 3,
  /// The scheduler picked a task to run. a = task id.
  TaskStart = 4,
  /// A task's step list was exhausted. a = task id.
  TaskEnd = 5,
  /// A software FIFO reached a new per-core occupancy high-water mark.
  /// a = fifo index, b = new high-water occupancy.
  FifoHighwater = 6,
  /// A SetPhase control step executed. a = new ProgPhase.
  PhaseMark = 7,
  /// A MarkIteration control step executed. a = new iteration (low 32).
  IterationMark = 8,
};
inline constexpr int kNumFlightEventKinds = 9;

[[nodiscard]] constexpr const char* to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::WaveletDelivered: return "wavelet";
    case FlightEventKind::TaskActivate: return "activate";
    case FlightEventKind::TaskUnblock: return "unblock";
    case FlightEventKind::TaskBlock: return "block";
    case FlightEventKind::TaskStart: return "task_start";
    case FlightEventKind::TaskEnd: return "task_end";
    case FlightEventKind::FifoHighwater: return "fifo_highwater";
    case FlightEventKind::PhaseMark: return "phase";
    case FlightEventKind::IterationMark: return "iteration";
  }
  return "?";
}

/// Parse the wire name back to a kind (bundle loading); false on unknown.
[[nodiscard]] bool flight_event_kind_from_string(const std::string& name,
                                                 FlightEventKind* out);

struct FlightEvent {
  std::uint64_t cycle = 0;
  FlightEventKind kind = FlightEventKind::WaveletDelivered;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;

  [[nodiscard]] bool operator==(const FlightEvent& o) const {
    return cycle == o.cycle && kind == o.kind && a == o.a && b == o.b &&
           c == o.c && d == o.d;
  }
};

/// Pack / unpack the WaveletDelivered source-tile field.
[[nodiscard]] constexpr std::int32_t pack_tile(int x, int y) {
  return static_cast<std::int32_t>((static_cast<std::uint32_t>(x) << 16) |
                                   (static_cast<std::uint32_t>(y) & 0xffffu));
}
[[nodiscard]] constexpr int packed_tile_x(std::int32_t packed) {
  return static_cast<int>(static_cast<std::uint32_t>(packed) >> 16);
}
[[nodiscard]] constexpr int packed_tile_y(std::int32_t packed) {
  return static_cast<int>(static_cast<std::uint32_t>(packed) & 0xffffu);
}

/// One tile's bounded ring. `ring` has capacity slots; `head` is the next
/// write index; `total` counts every event ever recorded (so
/// total - size() is the number overwritten).
struct TileFlightLog {
  std::vector<FlightEvent> ring;
  std::size_t head = 0;
  std::uint64_t total = 0;
  bool configured = false;

  [[nodiscard]] std::size_t size(std::size_t capacity) const {
    return total < capacity ? static_cast<std::size_t>(total) : capacity;
  }
};

class FlightRecorder {
public:
  static constexpr std::size_t kDefaultDepth = 256;
  static constexpr std::size_t kMaxDepth = std::size_t{1} << 20;

  /// `depth` = events retained per tile (clamped to [1, kMaxDepth]).
  FlightRecorder(int width, int height, std::size_t depth = kDefaultDepth)
      : width_(width), height_(height),
        depth_(depth < 1 ? 1 : (depth > kMaxDepth ? kMaxDepth : depth)),
        tiles_(static_cast<std::size_t>(width) *
               static_cast<std::size_t>(height)) {}

  // --- recording (inline; called by fabric/core under band ownership) ---

  void mark_configured(int x, int y) { tile_mut(x, y).configured = true; }

  void record(int x, int y, std::uint64_t cycle, FlightEventKind kind,
              std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0,
              std::int32_t d = 0) {
    TileFlightLog& t = tile_mut(x, y);
    const FlightEvent ev{cycle, kind, a, b, c, d};
    if (t.ring.size() < depth_) {
      t.ring.push_back(ev);
    } else {
      t.ring[t.head] = ev;
    }
    t.head = (t.head + 1) % depth_;
    ++t.total;
  }

  /// Wavelet-delivery convenience used by the fabric's route phase.
  void record_wavelet(int x, int y, std::uint64_t cycle,
                      const wse::Flit& flit) {
    record(x, y, cycle, FlightEventKind::WaveletDelivered,
           static_cast<std::int32_t>(flit.color),
           static_cast<std::int32_t>(flit.payload),
           flit.src_x < 0 || flit.src_y < 0
               ? std::int32_t{-1}
               : pack_tile(flit.src_x, flit.src_y),
           static_cast<std::int32_t>(flit.src_cycle));
  }

  // --- inspection ---

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] const TileFlightLog& tile(int x, int y) const {
    return tiles_[index(x, y)];
  }
  /// Retained events of tile (x, y) in chronological order.
  [[nodiscard]] std::vector<FlightEvent> events(int x, int y) const {
    const TileFlightLog& t = tiles_[index(x, y)];
    std::vector<FlightEvent> out;
    const std::size_t n = t.size(depth_);
    out.reserve(n);
    // Oldest retained event sits at `head` once the ring has wrapped.
    const std::size_t start = t.total > depth_ ? t.head : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(t.ring[(start + i) % depth_]);
    }
    return out;
  }
  /// Events recorded at (x, y) over the whole run (including overwritten).
  [[nodiscard]] std::uint64_t total_events(int x, int y) const {
    return tiles_[index(x, y)].total;
  }
  /// Events overwritten (lost off the back of the ring) at (x, y).
  [[nodiscard]] std::uint64_t dropped_events(int x, int y) const {
    const TileFlightLog& t = tiles_[index(x, y)];
    return t.total > depth_ ? t.total - depth_ : 0;
  }
  [[nodiscard]] std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const TileFlightLog& t : tiles_) n += t.total;
    return n;
  }
  [[nodiscard]] int configured_tiles() const {
    int n = 0;
    for (const TileFlightLog& t : tiles_) n += t.configured ? 1 : 0;
    return n;
  }

  void clear() {
    for (TileFlightLog& t : tiles_) {
      t.ring.clear();
      t.head = 0;
      t.total = 0;
    }
  }

  /// Human-readable last-K events of one tile (flightrec.cpp).
  [[nodiscard]] std::string pretty_tile(int x, int y,
                                        std::size_t last_k = 16) const;

private:
  [[nodiscard]] std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] TileFlightLog& tile_mut(int x, int y) {
    return tiles_[index(x, y)];
  }

  int width_;
  int height_;
  std::size_t depth_;
  std::vector<TileFlightLog> tiles_;
};

/// One-line rendering of an event ("c123 wavelet color=2 from (0,1)@98").
[[nodiscard]] std::string format_flight_event(const FlightEvent& ev);

} // namespace wss::telemetry
