#pragma once

// Minimal JSON emission used by every telemetry exporter (metrics
// snapshots, Chrome trace events, bench reports). Deliberately tiny: a
// comma-tracking writer over a std::string, correct escaping, and `%.17g`
// round-trippable doubles. No reflection, no DOM — exporters know their
// own shape. (Parsing, needed only by the tests to assert
// well-formedness, lives in the test helper, not here.)

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

namespace wss::telemetry::json {

/// JSON-escape `s` (quotes, backslash, control characters).
inline std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Format a double as a JSON number token (NaN/Inf become null, which
/// JSON cannot represent).
inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Streaming writer with automatic comma insertion. Usage:
///   Writer w;
///   w.begin_object().key("a").value(1.0).key("b").begin_array()
///    .value("x").end_array().end_object();
///   w.str();
class Writer {
public:
  Writer& begin_object() {
    item();
    out_ += '{';
    fresh_.push_back(true);
    return *this;
  }
  Writer& end_object() {
    out_ += '}';
    fresh_.pop_back();
    return *this;
  }
  Writer& begin_array() {
    item();
    out_ += '[';
    fresh_.push_back(true);
    return *this;
  }
  Writer& end_array() {
    out_ += ']';
    fresh_.pop_back();
    return *this;
  }
  Writer& key(std::string_view k) {
    item();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }
  Writer& value(std::string_view v) {
    item();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
  }
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(double v) {
    item();
    out_ += number(v);
    return *this;
  }
  Writer& value(std::uint64_t v) {
    item();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(std::int64_t v) {
    item();
    out_ += std::to_string(v);
    return *this;
  }
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v) {
    item();
    out_ += v ? "true" : "false";
    return *this;
  }
  Writer& null() {
    item();
    out_ += "null";
    return *this;
  }
  /// Splice a pre-rendered JSON fragment (must itself be valid JSON).
  Writer& raw(std::string_view fragment) {
    item();
    out_ += fragment;
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

private:
  void item() {
    if (pending_value_) {
      // value directly after a key: no comma handling
      pending_value_ = false;
      return;
    }
    if (!fresh_.empty()) {
      if (!fresh_.back()) {
        out_ += ',';
      }
      fresh_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> fresh_;
  bool pending_value_ = false;
};

} // namespace wss::telemetry::json
