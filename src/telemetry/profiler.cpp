#include "telemetry/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "telemetry/json.hpp"

namespace wss::telemetry {

std::vector<std::pair<std::uint64_t, std::uint64_t>>
Profiler::iteration_windows() const {
  // A mark (k, c) means "this tile entered iteration k at cycle c". The
  // global window of iteration k opens when the *first* tile enters k and
  // closes when the first tile enters k+1 (the last window closes at the
  // profiler's observation horizon).
  std::map<std::uint64_t, std::uint64_t> entry; // iteration -> min cycle
  for (const TileProfile& t : tiles_) {
    for (const IterMark& m : t.iter_marks) {
      auto [it, inserted] = entry.emplace(m.iteration, m.cycle);
      if (!inserted) it->second = std::min(it->second, m.cycle);
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
  for (auto it = entry.begin(); it != entry.end(); ++it) {
    auto next = std::next(it);
    const std::uint64_t hi =
        next != entry.end() ? next->second : observed_cycles_;
    if (hi > it->second) windows.emplace_back(it->second, hi);
  }
  return windows;
}

namespace {

/// Latest compute cycle of `t` inside [lo, hi], or nullopt.
std::optional<std::uint64_t> last_compute_in(const TileProfile& t,
                                             std::uint64_t lo,
                                             std::uint64_t hi) {
  // Intervals are ascending and disjoint: scan from the back.
  for (auto it = t.compute_intervals.rbegin();
       it != t.compute_intervals.rend(); ++it) {
    const std::uint64_t first = (*it)[0];
    const std::uint64_t last = (*it)[1];
    if (first > hi) continue;
    const std::uint64_t cand = std::min(last, hi);
    if (cand < lo) return std::nullopt; // earlier intervals only get older
    return cand;
  }
  return std::nullopt;
}

/// Start of the compute interval of `t` containing `cycle` (the tile ran
/// continuously from the returned cycle through `cycle`), or `cycle` when
/// no interval contains it.
std::uint64_t interval_start_containing(const TileProfile& t,
                                        std::uint64_t cycle) {
  for (auto it = t.compute_intervals.rbegin();
       it != t.compute_intervals.rend(); ++it) {
    const std::uint64_t first = (*it)[0];
    const std::uint64_t last = (*it)[1];
    if (first > cycle) continue;
    return cycle <= last ? first : cycle;
  }
  return cycle;
}

/// Latest recv record of `t` with recv_cycle <= cycle, or nullptr.
const RecvRecord* last_recv_at_or_before(const TileProfile& t,
                                         std::uint64_t cycle) {
  auto it = std::upper_bound(
      t.recvs.begin(), t.recvs.end(), cycle,
      [](std::uint64_t c, const RecvRecord& r) { return c < r.recv_cycle; });
  if (it == t.recvs.begin()) return nullptr;
  return &*std::prev(it);
}

} // namespace

CriticalPath critical_path(const Profiler& prof, std::uint64_t window_lo,
                           std::uint64_t window_hi, std::size_t max_hops) {
  CriticalPath path;
  if (window_hi <= window_lo) return path;
  const std::uint64_t hi = window_hi - 1;

  // Start at the tile whose last compute cycle in the window is latest —
  // the tile that finished the window's work. Ties break row-major
  // (smallest y, then x), which is what makes the walk deterministic.
  int sx = -1;
  int sy = -1;
  std::uint64_t s_cycle = 0;
  for (int y = 0; y < prof.height(); ++y) {
    for (int x = 0; x < prof.width(); ++x) {
      const TileProfile& t = prof.tile(x, y);
      if (!t.configured) continue;
      const auto c = last_compute_in(t, window_lo, hi);
      if (!c) continue;
      if (sx < 0 || *c > s_cycle) {
        sx = x;
        sy = y;
        s_cycle = *c;
      }
    }
  }
  if (sx < 0) return path; // nothing computed in the window

  path.end_cycle = s_cycle;
  int cx = sx;
  int cy = sy;
  std::uint64_t cursor = s_cycle;
  // Backward walk: the enabling dependency of the work that ended at
  // `cursor` is taken to be the most recent wavelet that arrived at or
  // before it; hop to its sender at the injection cycle. send_cycle <
  // recv_cycle <= cursor makes the cursor strictly decrease, so the walk
  // terminates.
  std::vector<PathHop> rev;
  while (true) {
    const TileProfile& t = prof.tile(cx, cy);
    if (t.recvs_dropped > 0) path.truncated = true;
    if (rev.size() >= max_hops) {
      path.truncated = true;
      rev.push_back(PathHop{cx, cy, cursor, cursor});
      break;
    }
    const RecvRecord* r = last_recv_at_or_before(t, cursor);
    if (r == nullptr || r->recv_cycle < window_lo ||
        r->send_cycle < window_lo || r->send_cycle >= r->recv_cycle) {
      // Chain origin: this tile's segment began with local work. Extend
      // back to the start of the contiguous compute interval that ends
      // the segment, clamped to the window.
      const std::uint64_t last =
          last_compute_in(t, window_lo, cursor).value_or(cursor);
      const std::uint64_t from =
          std::max(window_lo, interval_start_containing(t, last));
      rev.push_back(PathHop{cx, cy, std::min(from, cursor), cursor});
      break;
    }
    rev.push_back(PathHop{cx, cy, r->recv_cycle, cursor});
    cx = r->src_x;
    cy = r->src_y;
    cursor = r->send_cycle;
  }
  path.hops.assign(rev.rbegin(), rev.rend());
  path.start_cycle = path.hops.front().from_cycle;
  return path;
}

std::vector<CriticalPath> per_iteration_critical_paths(const Profiler& prof,
                                                       std::size_t max_hops) {
  std::vector<CriticalPath> out;
  for (const auto& [lo, hi] : prof.iteration_windows()) {
    out.push_back(critical_path(prof, lo, hi, max_hops));
  }
  return out;
}

std::string CriticalPath::pretty() const {
  std::ostringstream os;
  os << "critical path: " << length_cycles() << " cycles over "
     << tile_hops() << " tile hops [" << start_cycle << ", " << end_cycle
     << "]" << (truncated ? " (truncated)" : "") << "\n";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const PathHop& h = hops[i];
    os << "  " << (i == 0 ? "start" : "  -> ") << " (" << h.x << "," << h.y
       << ") cycles " << h.from_cycle << ".." << h.until_cycle << "\n";
  }
  return os.str();
}

std::string Profiler::to_json() const {
  const PhaseCatMatrix m = totals();
  std::uint64_t grand = 0;
  for (const auto& row : m) {
    for (const std::uint64_t v : row) grand += v;
  }
  const auto expected =
      observed_cycles_ * static_cast<std::uint64_t>(configured_tiles());

  json::Writer w;
  w.begin_object();
  w.key("width").value(width_);
  w.key("height").value(height_);
  w.key("configured_tiles").value(configured_tiles());
  w.key("observed_cycles").value(observed_cycles_);
  w.key("attributed_tile_cycles").value(grand);
  w.key("expected_tile_cycles").value(expected);
  w.key("conserved").value(grand == expected);
  w.key("phases").begin_object();
  for (int p = 0; p < wse::kNumProgPhases; ++p) {
    w.key(wse::to_string(static_cast<wse::ProgPhase>(p))).begin_object();
    for (int c = 0; c < kNumCycleCats; ++c) {
      w.key(to_string(static_cast<CycleCat>(c)))
          .value(m[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)]);
    }
    w.end_object();
  }
  w.end_object();
  w.key("categories").begin_object();
  for (int c = 0; c < kNumCycleCats; ++c) {
    std::uint64_t t = 0;
    for (int p = 0; p < wse::kNumProgPhases; ++p) {
      t += m[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)];
    }
    w.key(to_string(static_cast<CycleCat>(c))).value(t);
  }
  w.end_object();
  w.key("iteration_windows").begin_array();
  for (const auto& [lo, hi] : iteration_windows()) {
    w.begin_array().value(lo).value(hi).end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Profiler::pretty() const {
  const PhaseCatMatrix m = totals();
  std::uint64_t grand = 0;
  for (const auto& row : m) {
    for (const std::uint64_t v : row) grand += v;
  }
  std::ostringstream os;
  os << "cycle attribution (" << configured_tiles() << " tiles, "
     << observed_cycles_ << " cycles)\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-10s", "phase");
  os << buf;
  for (int c = 0; c < kNumCycleCats; ++c) {
    std::snprintf(buf, sizeof(buf), " %13s",
                  to_string(static_cast<CycleCat>(c)));
    os << buf;
  }
  os << "\n";
  for (int p = 0; p < wse::kNumProgPhases; ++p) {
    std::snprintf(buf, sizeof(buf), "  %-10s",
                  wse::to_string(static_cast<wse::ProgPhase>(p)));
    os << buf;
    for (int c = 0; c < kNumCycleCats; ++c) {
      const std::uint64_t v =
          m[static_cast<std::size_t>(p)][static_cast<std::size_t>(c)];
      const double pct =
          grand > 0 ? 100.0 * static_cast<double>(v) /
                          static_cast<double>(grand)
                    : 0.0;
      std::snprintf(buf, sizeof(buf), " %7llu %4.1f%%",
                    static_cast<unsigned long long>(v), pct);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

} // namespace wss::telemetry
