#include "telemetry/span_tracer.hpp"

#include "telemetry/json.hpp"

namespace wss::telemetry {

double SpanTracer::now_us() const {
  return std::chrono::duration<double, std::micro>(clock::now() - epoch_)
      .count();
}

void SpanTracer::begin(std::string name, std::string category) {
  open_.push_back({std::move(name), std::move(category), now_us()});
}

void SpanTracer::end() {
  if (open_.empty()) return;
  Open o = std::move(open_.back());
  open_.pop_back();
  spans_.push_back({std::move(o.name), std::move(o.category), o.ts_us,
                    now_us() - o.ts_us, static_cast<int>(open_.size())});
}

void SpanTracer::instant(std::string name, std::string category) {
  instants_.push_back({std::move(name), std::move(category), now_us()});
}

void SpanTracer::clear() {
  open_.clear();
  spans_.clear();
  instants_.clear();
}

std::string SpanTracer::to_chrome_json() const {
  json::Writer w;
  w.begin_object().key("traceEvents").begin_array();
  w.begin_object()
      .key("name").value("process_name")
      .key("ph").value("M")
      .key("pid").value(0)
      .key("args").begin_object().key("name").value("host").end_object()
      .end_object();
  for (const Span& s : spans_) {
    w.begin_object()
        .key("name").value(s.name)
        .key("cat").value(s.category)
        .key("ph").value("X")
        .key("ts").value(s.ts_us)
        .key("dur").value(s.dur_us)
        .key("pid").value(0)
        .key("tid").value(0)
        .end_object();
  }
  for (const Instant& i : instants_) {
    w.begin_object()
        .key("name").value(i.name)
        .key("cat").value(i.category)
        .key("ph").value("i")
        .key("s").value("t")
        .key("ts").value(i.ts_us)
        .key("pid").value(0)
        .key("tid").value(0)
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

} // namespace wss::telemetry
