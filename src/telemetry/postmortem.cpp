// Post-mortem forensics: wait-for graph construction, bundle emission,
// bundle loading, pretty-printing and run diffing. See postmortem.hpp and
// docs/POSTMORTEM.md for the schema and the investigation workflow.

#include "telemetry/postmortem.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/env.hpp"
#include "telemetry/global.hpp"
#include "telemetry/health.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/ledger.hpp"
#include "telemetry/profiler.hpp"
#include "wse/fabric.hpp"

namespace wss::telemetry {

const char* to_string(AnomalyInfo::Kind kind) {
  switch (kind) {
    case AnomalyInfo::Kind::Deadlock: return "deadlock";
    case AnomalyInfo::Kind::NanScalar: return "nan_scalar";
    case AnomalyInfo::Kind::Breakdown: return "breakdown";
    case AnomalyInfo::Kind::FaultStorm: return "fault_storm";
    case AnomalyInfo::Kind::Manual: return "manual";
    case AnomalyInfo::Kind::Health: return "health";
  }
  return "?";
}

namespace {

[[nodiscard]] bool known_anomaly_kind(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(AnomalyInfo::Kind::Health); ++k) {
    if (name == to_string(static_cast<AnomalyInfo::Kind>(k))) return true;
  }
  return false;
}

[[nodiscard]] std::string tile_name(int x, int y) {
  std::string out = "(";
  out += std::to_string(x);
  out += ',';
  out += std::to_string(y);
  out += ')';
  return out;
}

} // namespace

// --- wait-for graph -----------------------------------------------------

namespace {

struct EdgeKey {
  int from_x, from_y, to_x, to_y, color;
  [[nodiscard]] bool operator<(const EdgeKey& o) const {
    return std::tie(from_x, from_y, to_x, to_y, color) <
           std::tie(o.from_x, o.from_y, o.to_x, o.to_y, o.color);
  }
};

/// DFS cycle extraction over the blocked-tile subgraph. Nodes are packed
/// (x, y); adjacency carries the awaited color for naming.
struct CycleFinder {
  static constexpr std::size_t kMaxCycles = 16;

  std::map<std::pair<int, int>, std::vector<std::pair<std::pair<int, int>, int>>>
      adj; ///< node -> [(successor, color)]
  std::set<std::pair<int, int>> done_nodes;
  std::set<std::vector<std::pair<int, int>>> seen; ///< canonical tile loops
  std::vector<WaitForCycle> cycles;

  void emit(const std::vector<std::pair<int, int>>& path,
            const std::vector<int>& colors, std::size_t start) {
    // Rotate the loop so the smallest (y, x) tile leads — a canonical form
    // that dedupes the same loop discovered from different entry points.
    std::vector<std::pair<int, int>> loop(path.begin() +
                                              static_cast<std::ptrdiff_t>(start),
                                          path.end());
    std::vector<int> loop_colors(colors.begin() +
                                     static_cast<std::ptrdiff_t>(start),
                                 colors.end());
    std::size_t best = 0;
    for (std::size_t i = 1; i < loop.size(); ++i) {
      if (std::make_pair(loop[i].second, loop[i].first) <
          std::make_pair(loop[best].second, loop[best].first)) {
        best = i;
      }
    }
    std::rotate(loop.begin(), loop.begin() + static_cast<std::ptrdiff_t>(best),
                loop.end());
    std::rotate(loop_colors.begin(),
                loop_colors.begin() + static_cast<std::ptrdiff_t>(best),
                loop_colors.end());
    if (!seen.insert(loop).second) return;
    if (cycles.size() >= kMaxCycles) return;

    WaitForCycle c;
    c.tiles = loop;
    std::string name;
    for (std::size_t i = 0; i < loop.size(); ++i) {
      name += tile_name(loop[i].first, loop[i].second);
      const int color = loop_colors[i];
      name += color >= 0 ? " --c" + std::to_string(color) + "--> "
                         : " --fifo--> ";
    }
    name += tile_name(loop[0].first, loop[0].second);
    c.name = std::move(name);
    cycles.push_back(std::move(c));
  }

  void dfs(std::pair<int, int> root) {
    // Iterative DFS with an explicit path stack; `on_path` gives O(log n)
    // back-edge detection.
    struct Frame {
      std::pair<int, int> node;
      std::size_t next_edge = 0;
    };
    std::vector<Frame> stack;
    std::vector<std::pair<int, int>> path;
    std::vector<int> path_colors; ///< color of edge leaving path[i]
    std::map<std::pair<int, int>, std::size_t> on_path;

    stack.push_back({root, 0});
    path.push_back(root);
    path_colors.push_back(-1);
    on_path[root] = 0;

    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto it = adj.find(f.node);
      if (it == adj.end() || f.next_edge >= it->second.size()) {
        done_nodes.insert(f.node);
        on_path.erase(f.node);
        path.pop_back();
        path_colors.pop_back();
        stack.pop_back();
        continue;
      }
      const auto [succ, color] = it->second[f.next_edge++];
      path_colors.back() = color;
      const auto hit = on_path.find(succ);
      if (hit != on_path.end()) {
        emit(path, path_colors, hit->second);
        continue;
      }
      if (done_nodes.count(succ) != 0) continue;
      stack.push_back({succ, 0});
      path.push_back(succ);
      path_colors.push_back(-1);
      on_path[succ] = path.size() - 1;
    }
  }
};

} // namespace

WaitForGraph build_wait_for_graph(const wse::Fabric& fabric) {
  using wse::Color;
  using wse::Dir;
  using wse::kMeshDirs;
  using wse::kNumColors;

  WaitForGraph g;
  const auto blocked = fabric.blocked_tiles();
  const int width = fabric.width();
  const int height = fabric.height();
  const auto in_bounds = [&](int x, int y) {
    return x >= 0 && x < width && y >= 0 && y < height;
  };
  const int queue_depth = fabric.sim_params().router_queue_depth;

  std::set<EdgeKey> edge_keys;
  const auto add_edge = [&](const WaitForEdge& e) {
    const EdgeKey key{e.from_x, e.from_y, e.to_x, e.to_y, e.color};
    if (edge_keys.insert(key).second) g.edges.push_back(e);
  };

  for (const auto& [x, y] : blocked) {
    if (!fabric.has_core(x, y)) continue;
    const wse::TileCore& core = fabric.core(x, y);

    // Report row for this tile.
    WaitForGraph::TileState st;
    st.x = x;
    st.y = y;
    const wse::TaskId task = core.current_task();
    st.task = (task >= 0 && static_cast<std::size_t>(task) <
                                core.program().tasks.size())
                  ? core.program().tasks[static_cast<std::size_t>(task)].name
                  : "-";
    st.state = core.debug_state();
    g.blocked.push_back(std::move(st));

    const wse::RouterState& router = fabric.router_state(x, y);
    for (const wse::CoreWait& w : core.waits()) {
      switch (w.kind) {
        case wse::CoreWait::Kind::RecvChannel: {
          // A dry ramp channel: the tile waits on every upstream neighbor
          // whose routing rules can still forward a color that this tile's
          // rules deliver to the channel.
          for (int ci = 0; ci < kNumColors; ++ci) {
            const auto c = static_cast<Color>(ci);
            const wse::RouteRule& rule = router.table.rule(c);
            const bool delivers =
                std::find(rule.deliver_channels.begin(),
                          rule.deliver_channels.end(),
                          w.id) != rule.deliver_channels.end();
            if (!delivers) continue;
            for (const Dir d : kMeshDirs) {
              const auto [dx, dy] = wse::step(d);
              const int ux = x + dx;
              const int uy = y + dy;
              if (!in_bounds(ux, uy) || !fabric.has_core(ux, uy)) continue;
              const wse::RouterState& up = fabric.router_state(ux, uy);
              if (!up.table.rule(c).forwards_to(wse::opposite(d))) continue;
              add_edge({x, y, ux, uy, ci,
                        "recv ch" + std::to_string(w.id) + " starved: awaits c" +
                            std::to_string(ci) + " from " + tile_name(ux, uy)});
            }
            // The tile's own injections can loop back via the ramp (the
            // SpMV iterate loopback); represent that as a self-edge so a
            // wedged self-feeding tile is visibly its own suspect.
            if (rule.forward_mask == 0 && !rule.deliver_channels.empty()) {
              // delivery-only rule: the color originates locally or
              // upstream; upstream case handled above, local = self.
              bool upstream_source = false;
              for (const Dir d : kMeshDirs) {
                const auto [dx, dy] = wse::step(d);
                const int ux = x + dx;
                const int uy = y + dy;
                if (in_bounds(ux, uy) && fabric.has_core(ux, uy) &&
                    fabric.router_state(ux, uy).table.rule(c).forwards_to(
                        wse::opposite(d))) {
                  upstream_source = true;
                  break;
                }
              }
              if (!upstream_source) {
                add_edge({x, y, x, y, ci,
                          "recv ch" + std::to_string(w.id) +
                              " starved: c" + std::to_string(ci) +
                              " only self-injected"});
              }
            }
          }
          break;
        }
        case wse::CoreWait::Kind::SendColor: {
          // Injection blocked: the full output queues point at the
          // downstream tiles that are not draining.
          const auto c = static_cast<Color>(w.id);
          const wse::RouteRule& rule = router.table.rule(c);
          for (const Dir d : kMeshDirs) {
            if (!rule.forwards_to(d)) continue;
            const auto& q =
                router.out_queues[static_cast<std::size_t>(d)]
                                 [static_cast<std::size_t>(w.id)];
            if (static_cast<int>(q.size()) < queue_depth) continue;
            const auto [dx, dy] = wse::step(d);
            const int tx = x + dx;
            const int ty = y + dy;
            if (!in_bounds(tx, ty)) continue;
            add_edge({x, y, tx, ty, w.id,
                      "send c" + std::to_string(w.id) + " blocked: " +
                          wse::to_string(d) + " queue full toward " +
                          tile_name(tx, ty)});
          }
          break;
        }
        case wse::CoreWait::Kind::FifoFull: {
          // A full software FIFO waits on this tile's own drain task.
          add_edge({x, y, x, y, -1,
                    "fifo " + std::to_string(w.id) +
                        " full: awaits local drain task"});
          break;
        }
      }
    }
  }

  // Terminals: blocked tiles with no outgoing edge — where stall chains
  // drain to (e.g. a dead tile that stopped consuming).
  std::set<std::pair<int, int>> has_out;
  for (const WaitForEdge& e : g.edges) has_out.insert({e.from_x, e.from_y});
  for (const auto& t : blocked) {
    if (has_out.count(t) == 0) g.terminals.push_back(t);
  }

  // Deadlock loops.
  CycleFinder finder;
  for (const WaitForEdge& e : g.edges) {
    finder.adj[{e.from_x, e.from_y}].push_back({{e.to_x, e.to_y}, e.color});
  }
  for (const auto& [node, _] : finder.adj) {
    if (finder.done_nodes.count(node) == 0) finder.dfs(node);
  }
  g.cycles = std::move(finder.cycles);
  return g;
}

// --- bundle writing -----------------------------------------------------

namespace {

void emit_heatmap(json::Writer& w, const Heatmap& h) {
  w.begin_object();
  w.key("name").value(h.name);
  w.key("width").value(h.width);
  w.key("height").value(h.height);
  w.key("cells").begin_array();
  for (const double v : h.cells) w.value(v);
  w.end_array();
  w.end_object();
}

void emit_tile_pair_array(json::Writer& w, const char* name,
                          const std::vector<std::pair<int, int>>& tiles) {
  w.key(name).begin_array();
  for (const auto& [x, y] : tiles) {
    w.begin_array().value(x).value(y).end_array();
  }
  w.end_array();
}

} // namespace

std::string build_postmortem_json(const AnomalyInfo& anomaly,
                                  const PostmortemInputs& in) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value(kPostmortemSchema);

  w.key("anomaly").begin_object();
  w.key("kind").value(to_string(anomaly.kind));
  w.key("cycle").value(anomaly.cycle);
  w.key("detail").value(anomaly.detail);
  w.end_object();

  w.key("program").value(in.program);

  if (in.fabric != nullptr) {
    const wse::Fabric& f = *in.fabric;
    w.key("fabric").begin_object();
    w.key("width").value(f.width());
    w.key("height").value(f.height());
    w.key("cycles").value(f.stats().cycles);
    w.key("link_transfers").value(f.stats().link_transfers);
    w.key("threads").value(f.threads());
    w.end_object();
  }

  if (in.stop != nullptr) {
    const wse::StopInfo& s = *in.stop;
    w.key("stop").begin_object();
    w.key("reason").value(wse::StopInfo::to_string(s.reason));
    w.key("cycles").value(s.cycles);
    w.key("deadlock").value(s.deadlock);
    w.key("stalled_cycles").value(s.stalled_cycles);
    emit_tile_pair_array(w, "blocked_tiles", s.blocked_tiles);
    w.key("report").value(s.report);
    w.end_object();
  }

  if (in.fabric != nullptr) {
    const WaitForGraph g = build_wait_for_graph(*in.fabric);
    w.key("wait_for").begin_object();
    w.key("edges").begin_array();
    for (const WaitForEdge& e : g.edges) {
      w.begin_object();
      w.key("from").begin_array().value(e.from_x).value(e.from_y).end_array();
      w.key("to").begin_array().value(e.to_x).value(e.to_y).end_array();
      w.key("color").value(e.color);
      w.key("why").value(e.why);
      w.end_object();
    }
    w.end_array();
    w.key("cycles").begin_array();
    for (const WaitForCycle& c : g.cycles) w.value(c.name);
    w.end_array();
    emit_tile_pair_array(w, "terminals", g.terminals);
    w.key("blocked").begin_array();
    for (const auto& t : g.blocked) {
      w.begin_object();
      w.key("x").value(t.x);
      w.key("y").value(t.y);
      w.key("task").value(t.task);
      w.key("state").value(t.state);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (in.recorder != nullptr) {
    const FlightRecorder& rec = *in.recorder;
    w.key("flight").begin_object();
    w.key("depth").value(static_cast<std::uint64_t>(rec.depth()));
    w.key("tiles").begin_array();
    for (int y = 0; y < rec.height(); ++y) {
      for (int x = 0; x < rec.width(); ++x) {
        if (rec.total_events(x, y) == 0) continue;
        w.begin_object();
        w.key("x").value(x);
        w.key("y").value(y);
        w.key("total").value(rec.total_events(x, y));
        w.key("dropped").value(rec.dropped_events(x, y));
        w.key("events").begin_array();
        for (const FlightEvent& ev : rec.events(x, y)) {
          w.begin_object();
          w.key("cycle").value(ev.cycle);
          w.key("kind").value(to_string(ev.kind));
          w.key("a").value(ev.a);
          w.key("b").value(ev.b);
          w.key("c").value(ev.c);
          w.key("d").value(ev.d);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();
  }

  if (in.fabric != nullptr) {
    const FabricHeatmaps maps = collect_heatmaps(*in.fabric);
    w.key("heatmaps").begin_array();
    for (const Heatmap* h : maps.all()) emit_heatmap(w, *h);
    if (in.profiler != nullptr) {
      for (const Heatmap& h : profiler_heatmaps(*in.profiler)) {
        emit_heatmap(w, h);
      }
    }
    w.end_array();
  }

  if (in.profiler != nullptr) {
    w.key("profiler").raw(in.profiler->to_json());
  }

  if (in.scalars != nullptr) {
    w.key("scalars").begin_array();
    for (const ScalarSample& s : in.scalars->samples()) {
      w.begin_object();
      w.key("iteration").value(s.iteration);
      w.key("name").value(s.name);
      w.key("value").value(s.value);
      w.end_object();
    }
    w.end_array();
    w.key("scalars_dropped").value(in.scalars->dropped());
  }

  if (in.timeseries != nullptr) {
    // The lead-up trajectory: the last frames of the active time series.
    // The full series lives in its own artifact (docs/TIMESERIES.md).
    const TimeSeriesSampler& ts = *in.timeseries;
    w.key("timeseries").begin_object();
    w.key("sample_cycles").value(ts.interval());
    w.key("frames_total")
        .value(static_cast<std::uint64_t>(ts.frames().size()) +
               ts.frames_dropped());
    w.key("frames").begin_array();
    const std::size_t n = ts.frames().size();
    const std::size_t start =
        n > kPostmortemTimeseriesTail ? n - kPostmortemTimeseriesTail : 0;
    for (std::size_t i = start; i < n; ++i) {
      emit_timeseries_frame(w, ts.frames()[i]);
    }
    w.end_array();
    w.end_object();
  }

  if (in.fabric != nullptr) {
    const wse::FaultStats& fs = in.fabric->fault_stats();
    w.key("faults").begin_object();
    w.key("total").value(fs.total());
    w.key("wavelets_dropped").value(fs.wavelets_dropped);
    w.key("wavelets_corrupted").value(fs.wavelets_corrupted);
    w.key("router_stall_cycles").value(fs.router_stall_cycles);
    w.key("dead_tile_cycles").value(fs.dead_tile_cycles);
    w.key("log_dropped")
        .value(static_cast<std::uint64_t>(in.fabric->fault_log_dropped()));
    w.key("log").begin_array();
    for (const wse::FaultEvent& ev : in.fabric->fault_log()) {
      w.begin_object();
      w.key("cycle").value(ev.cycle);
      w.key("x").value(ev.x);
      w.key("y").value(ev.y);
      w.key("dir").value(wse::to_string(ev.dir));
      w.key("kind").value(static_cast<int>(ev.kind));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
  return w.str();
}

bool write_postmortem(const std::string& dir, const AnomalyInfo& anomaly,
                      const PostmortemInputs& in, std::string* path_out,
                      std::string* error) {
  if (!ensure_directory(dir, error)) return false;
  const std::string stem =
      claim_output_stem(dir + "/postmortem_" + to_string(anomaly.kind));
  const std::string path = stem + ".json";
  if (!write_text_file(path, build_postmortem_json(anomaly, in), error)) {
    return false;
  }
  if (path_out != nullptr) *path_out = path;
  return true;
}

std::string postmortem_dir() { return env::parse_string("WSS_POSTMORTEM_DIR"); }

std::string maybe_write_postmortem(const AnomalyInfo& anomaly,
                                   const PostmortemInputs& in) {
  const std::string dir = postmortem_dir();
  if (dir.empty()) return {};
  std::string path;
  std::string error;
  if (!write_postmortem(dir, anomaly, in, &path, &error)) {
    std::fprintf(stderr, "wss: post-mortem bundle write failed: %s\n",
                 error.c_str());
    return {};
  }
  std::fprintf(stderr, "wss: post-mortem bundle written: %s\n", path.c_str());
  return path;
}

std::uint64_t fault_storm_threshold() {
  return env::parse_u64("WSS_FAULT_STORM", 0);
}

std::size_t flightrec_depth() {
  return static_cast<std::size_t>(env::parse_int(
      "WSS_FLIGHTREC_DEPTH",
      static_cast<long long>(FlightRecorder::kDefaultDepth), 1,
      static_cast<long long>(FlightRecorder::kMaxDepth)));
}

// --- env-driven forensic attachment -------------------------------------

RunForensics::RunForensics(wse::Fabric& fabric, std::string program)
    : fabric_(fabric), program_(std::move(program)) {
  if (fabric_.flight_recorder() == nullptr && !postmortem_dir().empty()) {
    owned_ = std::make_unique<FlightRecorder>(
        fabric_.width(), fabric_.height(), flightrec_depth());
    fabric_.set_flight_recorder(owned_.get());
    attached_ = true;
  }
  const std::uint64_t interval = sample_cycles();
  if (fabric_.sampler() == nullptr && interval > 0) {
    owned_sampler_ = std::make_unique<TimeSeriesSampler>(interval);
    owned_sampler_->set_program(program_);
    fabric_.set_sampler(owned_sampler_.get());
    sampler_attached_ = true;
  }
  if (!ledger_dir().empty() || fabric_.sampler() != nullptr) {
    run_id_ = next_run_id(program_);
  }
}

RunForensics::~RunForensics() {
  if (attached_) fabric_.set_flight_recorder(nullptr);
  if (sampler_attached_) fabric_.set_sampler(nullptr);
  if (netmon_attached_) fabric_.set_net_monitor(nullptr);
}

FlightRecorder* RunForensics::recorder() const {
  return fabric_.flight_recorder();
}

TimeSeriesSampler* RunForensics::sampler() const { return fabric_.sampler(); }

NetMonitor* RunForensics::net_monitor() const { return fabric_.net_monitor(); }

void RunForensics::set_net_flows(wse::FlowTable table,
                                 std::vector<NetFlowExpectation> expectations) {
  if (!netflows_enabled() || fabric_.net_monitor() != nullptr) return;
  owned_netmon_ = std::make_unique<NetMonitor>();
  // Flow table first: set_net_monitor snapshots the declared names into
  // any attached sampler at attach time.
  owned_netmon_->set_flow_table(std::move(table));
  fabric_.set_net_monitor(owned_netmon_.get());
  netmon_attached_ = true;
  net_expectations_ = std::move(expectations);
  if (TimeSeriesSampler* ts = fabric_.sampler(); ts != nullptr) {
    ts->set_net_expectations(net_expectations_);
  }
}

void RunForensics::finalize(const std::string& outcome, bool deadlock,
                            const std::string& postmortem_path) {
  if (finalized_) return; // one artifact set + ledger line per run
  finalized_ = true;

  // Close the final (possibly partial) sampling window so the summed
  // per-window deltas equal the end-of-run totals exactly.
  fabric_.sample_now();

  TimeSeriesSampler* ts = fabric_.sampler();
  std::string ts_path;
  if (ts != nullptr) {
    ts_path = timeseries_out();
    if (ts_path.empty() && !ledger_dir().empty() && !run_id_.empty()) {
      ts_path = ledger_dir() + "/" + run_id_ + ".timeseries.json";
    }
    if (!ts_path.empty()) {
      // Claim the stem so two fabrics flushing the same WSS_TIMESERIES_OUT
      // in one process get disjoint files instead of clobbering.
      std::string stem = ts_path;
      constexpr const char* kExt = ".json";
      if (stem.size() > 5 && stem.compare(stem.size() - 5, 5, kExt) == 0) {
        stem.resize(stem.size() - 5);
      }
      ts_path = claim_output_stem(stem) + kExt;
      std::string error;
      if (!write_timeseries(ts_path, *ts, scalars_, &error)) {
        std::fprintf(stderr, "wss: time-series write failed: %s\n",
                     error.c_str());
        ts_path.clear();
      }
    }
  }

  // Health engine (docs/HEALTH.md): evaluate the rule catalog over the
  // recorded frames + scalars. Evaluation reads what the sampler already
  // holds — no fabric hooks — so turning it off changes nothing about the
  // run itself, and the alert stream is bit-identical wherever the frame
  // stream is.
  std::vector<HealthAlert> alerts;
  std::string alerts_path;
  std::string health_bundle_path;
  if (ts != nullptr && health_enabled()) {
    const HealthConfig cfg = health_config();
    alerts = evaluate_health(snapshot_timeseries(*ts, scalars_), cfg);
    if (!alerts.empty()) {
      global_registry().counter("health.alerts").add(alerts.size());
      if (any_critical(alerts)) {
        global_registry().counter("health.alerts.critical").add(1);
      }
      if (!ts_path.empty()) {
        // The alerts artifact rides next to the series it was computed
        // from; ts_path is already claimed, so the stem is process-unique.
        AlertsFile af;
        af.schema = kAlertsSchema;
        af.program = program_;
        af.run_id = run_id_;
        af.tol_pct = cfg.tol_pct;
        af.alerts = alerts;
        std::string stem = ts_path;
        constexpr const char* kExt = ".json";
        if (stem.size() > 5 && stem.compare(stem.size() - 5, 5, kExt) == 0) {
          stem.resize(stem.size() - 5);
        }
        alerts_path = stem + ".alerts.json";
        std::string error;
        if (!write_alerts(alerts_path, af, &error)) {
          std::fprintf(stderr, "wss: alerts write failed: %s\n",
                       error.c_str());
          alerts_path.clear();
        }
      }
      // Critical alerts auto-capture a postmortem bundle through the
      // existing path; the anomaly detail names the rule and the alerts
      // artifact so the bundle points back at what fired.
      const HealthAlert* crit = nullptr;
      for (const HealthAlert& a : alerts) {
        if (a.severity == AlertSeverity::Critical) {
          crit = &a;
          break;
        }
      }
      if (crit != nullptr) {
        AnomalyInfo anomaly;
        anomaly.kind = AnomalyInfo::Kind::Health;
        anomaly.cycle =
            crit->last_cycle != 0 ? crit->last_cycle : fabric_.stats().cycles;
        anomaly.detail = summarize_alert(*crit);
        if (!alerts_path.empty()) {
          anomaly.detail += " (alerts: " + alerts_path + ")";
        }
        PostmortemInputs in;
        in.fabric = &fabric_;
        in.recorder = fabric_.flight_recorder();
        in.profiler = fabric_.profiler();
        in.scalars = scalars_;
        in.timeseries = ts;
        in.program = program_;
        health_bundle_path = maybe_write_postmortem(anomaly, in);
      }
    }
  }

  // Network observatory (docs/NETWORK.md): roll the monitor's counter
  // planes up into the `wss.netflows/1` artifact. Like the series, it is
  // pure analysis over already-recorded state.
  NetFlowsFile netflows;
  std::string netflows_path;
  NetMonitor* mon = fabric_.net_monitor();
  if (mon != nullptr && mon->attached_once()) {
    std::uint64_t iterations = 0;
    if (ts != nullptr && !ts->frames().empty()) {
      iterations = ts->frames().back().max_iteration;
    }
    netflows = build_netflows(*mon, program_, run_id_, fabric_.stats().cycles,
                              fabric_.stats().link_transfers, iterations,
                              net_expectations_, netflows_topk());
    // Word totals also land in the process-wide registry so bench reports
    // (and through them the benchhistory regression gate) carry per-flow
    // traffic without touching the artifact.
    for (const NetFlowTotals& f : netflows.flows) {
      global_registry().counter("netflow." + f.flow + ".words").add(f.words);
    }
    netflows_path = netflows_out();
    if (netflows_path.empty() && !ledger_dir().empty() && !run_id_.empty()) {
      netflows_path = ledger_dir() + "/" + run_id_ + ".netflows.json";
    }
    if (!netflows_path.empty()) {
      std::string stem = netflows_path;
      constexpr const char* kExt = ".json";
      if (stem.size() > 5 && stem.compare(stem.size() - 5, 5, kExt) == 0) {
        stem.resize(stem.size() - 5);
      }
      netflows_path = claim_output_stem(stem) + kExt;
      std::string error;
      if (!write_netflows(netflows_path, netflows, &error)) {
        std::fprintf(stderr, "wss: netflows write failed: %s\n",
                     error.c_str());
        netflows_path.clear();
      }
    }
  }

  if (ledger_dir().empty()) return;
  RunManifest m;
  m.run_id = run_id_.empty() ? next_run_id(program_) : run_id_;
  m.program = program_;
  m.width = fabric_.width();
  m.height = fabric_.height();
  m.threads = fabric_.threads();
  m.cycles = fabric_.stats().cycles;
  m.outcome = outcome;
  m.deadlock = deadlock;
  m.fault_total = fabric_.fault_stats().total();
  m.env = wss_environment();
  m.add_metric("cycles", static_cast<double>(fabric_.stats().cycles));
  m.add_metric("link_transfers",
               static_cast<double>(fabric_.stats().link_transfers));
  if (m.fault_total > 0) {
    m.add_metric("fault_total", static_cast<double>(m.fault_total));
  }
  if (ts != nullptr) {
    m.add_metric("timeseries_frames",
                 static_cast<double>(ts->frames().size()));
  }
  if (!alerts.empty()) {
    m.add_metric("alerts", static_cast<double>(alerts.size()));
    for (const HealthAlert& a : alerts) {
      m.add_alert(a.rule, to_string(a.severity), a.last_cycle);
    }
  }
  // Per-flow word totals ride as metrics so `runs trend netflow.<flow>.words`
  // and the bench-history regression gate can track traffic run over run.
  for (const NetFlowTotals& f : netflows.flows) {
    m.add_metric("netflow." + f.flow + ".words",
                 static_cast<double>(f.words));
  }
  if (!ts_path.empty()) m.add_artifact("timeseries", ts_path);
  if (!alerts_path.empty()) m.add_artifact("alerts", alerts_path);
  if (!netflows_path.empty()) m.add_artifact("netflows", netflows_path);
  if (!postmortem_path.empty()) {
    m.add_artifact("postmortem", postmortem_path);
  }
  if (!health_bundle_path.empty()) {
    m.add_artifact("postmortem", health_bundle_path);
  }
  (void)maybe_append_run_manifest(m);
}

std::string RunForensics::deadlock(const wse::StopInfo& stop,
                                   const std::string& what) {
  // Close the sampling window before snapshotting so the bundle's
  // embedded tail reaches the stop cycle.
  fabric_.sample_now();

  AnomalyInfo anomaly;
  anomaly.kind = AnomalyInfo::Kind::Deadlock;
  anomaly.cycle = fabric_.stats().cycles;
  anomaly.detail = what;

  PostmortemInputs in;
  in.fabric = &fabric_;
  in.recorder = fabric_.flight_recorder();
  in.profiler = fabric_.profiler();
  in.scalars = scalars_;
  in.stop = &stop;
  in.timeseries = fabric_.sampler();
  in.program = program_;
  const std::string path = maybe_write_postmortem(anomaly, in);

  finalize(wse::StopInfo::to_string(stop.reason), stop.deadlock, path);

  std::string msg = what;
  if (!stop.report.empty()) {
    msg += "\n";
    msg += stop.report;
  }
  if (!path.empty()) {
    msg += "\npost-mortem bundle: ";
    msg += path;
  }
  return msg;
}

void RunForensics::finished(const wse::StopInfo* stop) {
  std::string bundle_path;
  const std::uint64_t threshold = fault_storm_threshold();
  const std::uint64_t total = fabric_.fault_stats().total();
  if (threshold != 0 && total >= threshold) {
    fabric_.sample_now(); // bundle tail reaches the final cycle
    AnomalyInfo anomaly;
    anomaly.kind = AnomalyInfo::Kind::FaultStorm;
    anomaly.cycle = fabric_.stats().cycles;
    anomaly.detail = std::to_string(total) + " injected faults >= threshold " +
                     std::to_string(threshold);
    PostmortemInputs in;
    in.fabric = &fabric_;
    in.recorder = fabric_.flight_recorder();
    in.profiler = fabric_.profiler();
    in.scalars = scalars_;
    in.timeseries = fabric_.sampler();
    in.program = program_;
    bundle_path = maybe_write_postmortem(anomaly, in);
  }
  finalize(stop != nullptr ? wse::StopInfo::to_string(stop->reason)
                           : "finished",
           stop != nullptr && stop->deadlock, bundle_path);
}

// --- bundle loading -----------------------------------------------------

namespace {

using jsonparse::Value;

[[nodiscard]] std::string get_string(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_string() ? m->string : std::string{};
}
[[nodiscard]] double get_number(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_number() ? m->number : 0.0;
}
[[nodiscard]] std::uint64_t get_u64(const Value* v, const char* key) {
  return static_cast<std::uint64_t>(get_number(v, key));
}
[[nodiscard]] int get_int(const Value* v, const char* key) {
  return static_cast<int>(get_number(v, key));
}
[[nodiscard]] std::int64_t get_i64(const Value* v, const char* key) {
  return static_cast<std::int64_t>(get_number(v, key));
}
[[nodiscard]] bool get_bool(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->kind == jsonparse::Kind::Bool && m->boolean;
}

[[nodiscard]] std::vector<std::pair<int, int>> get_tile_pairs(
    const Value* v, const char* key) {
  std::vector<std::pair<int, int>> out;
  const Value* arr = v != nullptr ? v->find(key) : nullptr;
  if (arr == nullptr || !arr->is_array()) return out;
  for (const Value& e : *arr->array) {
    if (!e.is_array() || e.array->size() != 2) continue;
    const Value& x = (*e.array)[0];
    const Value& y = (*e.array)[1];
    if (!x.is_number() || !y.is_number()) continue;
    out.emplace_back(static_cast<int>(x.number), static_cast<int>(y.number));
  }
  return out;
}

} // namespace

std::string BundleEvent::summary() const {
  FlightEventKind k;
  if (flight_event_kind_from_string(kind, &k)) {
    FlightEvent ev;
    ev.cycle = cycle;
    ev.kind = k;
    ev.a = static_cast<std::int32_t>(a);
    ev.b = static_cast<std::int32_t>(b);
    ev.c = static_cast<std::int32_t>(c);
    ev.d = static_cast<std::int32_t>(d);
    return format_flight_event(ev);
  }
  return "c" + std::to_string(cycle) + " " + kind + " a=" + std::to_string(a) +
         " b=" + std::to_string(b) + " c=" + std::to_string(c) +
         " d=" + std::to_string(d);
}

bool load_bundle(const std::string& path, Bundle* out, std::string* error) {
  const auto set_error = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error("cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return set_error("read error");
  const std::string text = buf.str();

  const jsonparse::ParseResult parsed = jsonparse::parse(text);
  if (!parsed.ok()) return set_error("JSON error: " + parsed.error);
  const Value& root = *parsed.value;
  if (!root.is_object()) return set_error("top level is not an object");

  Bundle b;
  b.schema = get_string(&root, "schema");
  if (b.schema != kPostmortemSchema) {
    return set_error("schema mismatch: got '" + b.schema + "', want '" +
                     kPostmortemSchema + "'");
  }

  const Value* anomaly = root.find("anomaly");
  b.anomaly_kind = get_string(anomaly, "kind");
  b.anomaly_cycle = get_u64(anomaly, "cycle");
  b.anomaly_detail = get_string(anomaly, "detail");
  b.program = get_string(&root, "program");

  if (const Value* fabric = root.find("fabric"); fabric != nullptr) {
    b.width = get_int(fabric, "width");
    b.height = get_int(fabric, "height");
    b.cycles = get_u64(fabric, "cycles");
    b.threads = get_int(fabric, "threads");
  }

  if (const Value* stop = root.find("stop"); stop != nullptr) {
    b.stop_reason = get_string(stop, "reason");
    b.deadlock = get_bool(stop, "deadlock");
    b.stalled_cycles = get_u64(stop, "stalled_cycles");
    b.blocked_tiles = get_tile_pairs(stop, "blocked_tiles");
    b.stop_report = get_string(stop, "report");
  }

  if (const Value* wf = root.find("wait_for"); wf != nullptr) {
    if (const Value* edges = wf->find("edges");
        edges != nullptr && edges->is_array()) {
      for (const Value& e : *edges->array) {
        WaitForEdge edge;
        const Value* from = e.find("from");
        const Value* to = e.find("to");
        if (from != nullptr && from->is_array() && from->array->size() == 2) {
          edge.from_x = static_cast<int>((*from->array)[0].number);
          edge.from_y = static_cast<int>((*from->array)[1].number);
        }
        if (to != nullptr && to->is_array() && to->array->size() == 2) {
          edge.to_x = static_cast<int>((*to->array)[0].number);
          edge.to_y = static_cast<int>((*to->array)[1].number);
        }
        edge.color = get_int(&e, "color");
        edge.why = get_string(&e, "why");
        b.wait_edges.push_back(std::move(edge));
      }
    }
    if (const Value* cycles = wf->find("cycles");
        cycles != nullptr && cycles->is_array()) {
      for (const Value& c : *cycles->array) {
        if (c.is_string()) b.wait_cycles.push_back(c.string);
      }
    }
    b.wait_terminals = get_tile_pairs(wf, "terminals");
  }

  if (const Value* flight = root.find("flight"); flight != nullptr) {
    b.flight_depth = get_u64(flight, "depth");
    if (const Value* tiles = flight->find("tiles");
        tiles != nullptr && tiles->is_array()) {
      for (const Value& t : *tiles->array) {
        BundleTile tile;
        tile.x = get_int(&t, "x");
        tile.y = get_int(&t, "y");
        tile.total = get_u64(&t, "total");
        tile.dropped = get_u64(&t, "dropped");
        if (const Value* events = t.find("events");
            events != nullptr && events->is_array()) {
          for (const Value& e : *events->array) {
            BundleEvent ev;
            ev.cycle = get_u64(&e, "cycle");
            ev.kind = get_string(&e, "kind");
            ev.a = get_i64(&e, "a");
            ev.b = get_i64(&e, "b");
            ev.c = get_i64(&e, "c");
            ev.d = get_i64(&e, "d");
            tile.events.push_back(std::move(ev));
          }
        }
        b.tiles.push_back(std::move(tile));
      }
    }
  }

  if (const Value* maps = root.find("heatmaps");
      maps != nullptr && maps->is_array()) {
    for (const Value& m : *maps->array) {
      Heatmap h;
      h.name = get_string(&m, "name");
      h.width = get_int(&m, "width");
      h.height = get_int(&m, "height");
      if (const Value* cells = m.find("cells");
          cells != nullptr && cells->is_array()) {
        h.cells.reserve(cells->array->size());
        for (const Value& c : *cells->array) {
          h.cells.push_back(c.is_number() ? c.number : 0.0);
        }
      }
      b.heatmaps.push_back(std::move(h));
    }
  }

  if (const Value* scalars = root.find("scalars");
      scalars != nullptr && scalars->is_array()) {
    for (const Value& s : *scalars->array) {
      ScalarSample sample;
      sample.iteration = get_u64(&s, "iteration");
      sample.name = get_string(&s, "name");
      sample.value = get_number(&s, "value");
      b.scalars.push_back(std::move(sample));
    }
  }

  if (const Value* ts = root.find("timeseries"); ts != nullptr) {
    b.ts_sample_cycles = get_u64(ts, "sample_cycles");
    b.ts_frames_total = get_u64(ts, "frames_total");
    if (const Value* frames = ts->find("frames");
        frames != nullptr && frames->is_array()) {
      for (const Value& fv : *frames->array) {
        TimeSeriesFrame f;
        if (parse_timeseries_frame(fv, &f)) b.ts_frames.push_back(f);
      }
    }
  }

  if (const Value* faults = root.find("faults"); faults != nullptr) {
    b.fault_total = get_u64(faults, "total");
  }

  *out = std::move(b);
  return true;
}

// --- pretty-printing ----------------------------------------------------

std::string pretty_bundle(const Bundle& bundle, std::size_t last_k) {
  std::ostringstream out;
  out << "post-mortem bundle (" << bundle.schema << ")\n";
  out << "  anomaly: " << bundle.anomaly_kind << " at cycle "
      << bundle.anomaly_cycle;
  if (!bundle.anomaly_detail.empty()) out << " — " << bundle.anomaly_detail;
  out << "\n";
  if (!bundle.program.empty()) out << "  program: " << bundle.program << "\n";
  if (bundle.width > 0) {
    out << "  fabric:  " << bundle.width << "x" << bundle.height << ", cycle "
        << bundle.cycles << ", " << bundle.threads << " sim thread(s)\n";
  }
  if (!bundle.stop_reason.empty()) {
    out << "  stop:    " << bundle.stop_reason
        << (bundle.deadlock ? " (deadlock)" : "");
    if (bundle.stalled_cycles > 0) {
      out << ", no progress for " << bundle.stalled_cycles << " cycles";
    }
    out << "\n";
  }
  if (bundle.fault_total > 0) {
    out << "  faults:  " << bundle.fault_total << " injected\n";
  }

  if (!bundle.blocked_tiles.empty()) {
    out << "\nblocked tiles (" << bundle.blocked_tiles.size() << "):";
    const std::size_t shown = std::min<std::size_t>(
        bundle.blocked_tiles.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      out << " " << tile_name(bundle.blocked_tiles[i].first,
                              bundle.blocked_tiles[i].second);
    }
    if (shown < bundle.blocked_tiles.size()) {
      out << " ... " << bundle.blocked_tiles.size() - shown << " more";
    }
    out << "\n";
  }

  if (!bundle.wait_cycles.empty()) {
    out << "\nwait-for cycles (deadlock loops):\n";
    for (const std::string& c : bundle.wait_cycles) {
      out << "  " << c << "\n";
    }
  }
  if (!bundle.wait_terminals.empty()) {
    out << "wait-for terminals (stall chains drain here):";
    for (const auto& [x, y] : bundle.wait_terminals) {
      out << " " << tile_name(x, y);
    }
    out << "\n";
  }
  if (!bundle.wait_edges.empty()) {
    out << "wait-for edges (" << bundle.wait_edges.size() << "):\n";
    const std::size_t shown =
        std::min<std::size_t>(bundle.wait_edges.size(), 16);
    for (std::size_t i = 0; i < shown; ++i) {
      const WaitForEdge& e = bundle.wait_edges[i];
      out << "  " << tile_name(e.from_x, e.from_y) << " -> "
          << tile_name(e.to_x, e.to_y);
      if (e.color >= 0) out << " (c" << e.color << ")";
      if (!e.why.empty()) out << ": " << e.why;
      out << "\n";
    }
    if (shown < bundle.wait_edges.size()) {
      out << "  ... " << bundle.wait_edges.size() - shown << " more\n";
    }
  }

  if (!bundle.tiles.empty()) {
    // Busiest + blocked tiles first: sort by (blocked?, total) descending.
    std::set<std::pair<int, int>> blocked(bundle.blocked_tiles.begin(),
                                          bundle.blocked_tiles.end());
    std::vector<const BundleTile*> order;
    order.reserve(bundle.tiles.size());
    for (const BundleTile& t : bundle.tiles) order.push_back(&t);
    std::stable_sort(order.begin(), order.end(),
                     [&](const BundleTile* a, const BundleTile* c) {
                       const bool ab = blocked.count({a->x, a->y}) != 0;
                       const bool cb = blocked.count({c->x, c->y}) != 0;
                       if (ab != cb) return ab;
                       return a->total > c->total;
                     });
    const std::size_t shown = std::min<std::size_t>(order.size(), 8);
    out << "\nflight rings (" << bundle.tiles.size() << " tiles recorded, depth "
        << bundle.flight_depth << "):\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const BundleTile& t = *order[i];
      out << "tile " << tile_name(t.x, t.y) << ": " << t.total << " events";
      if (t.dropped > 0) out << " (" << t.dropped << " overwritten)";
      if (blocked.count({t.x, t.y}) != 0) out << " [blocked]";
      out << "\n";
      const std::size_t n = t.events.size();
      const std::size_t start = n > last_k ? n - last_k : 0;
      if (start > 0) out << "  ... " << start << " earlier\n";
      for (std::size_t j = start; j < n; ++j) {
        out << "  " << t.events[j].summary() << "\n";
      }
    }
    if (shown < order.size()) {
      out << "... " << order.size() - shown << " more tiles\n";
    }
  }

  if (!bundle.scalars.empty()) {
    out << "\nsolver scalars (last " << std::min<std::size_t>(
        bundle.scalars.size(), last_k) << " of " << bundle.scalars.size()
        << "):\n";
    const std::size_t start =
        bundle.scalars.size() > last_k ? bundle.scalars.size() - last_k : 0;
    for (std::size_t i = start; i < bundle.scalars.size(); ++i) {
      const ScalarSample& s = bundle.scalars[i];
      out << "  it " << s.iteration << " " << s.name << " = " << s.value
          << "\n";
    }
  }

  if (!bundle.ts_frames.empty()) {
    out << "\ntime-series tail (" << bundle.ts_frames.size() << " of "
        << bundle.ts_frames_total << " frames, every "
        << bundle.ts_sample_cycles << " cycles):\n";
    std::vector<double> compute;
    compute.reserve(bundle.ts_frames.size());
    for (const TimeSeriesFrame& f : bundle.ts_frames) {
      compute.push_back(static_cast<double>(f.instr_cycles) /
                        static_cast<double>(f.window_cycles));
    }
    out << "  compute/cyc |" << sparkline(compute, 48) << "|\n";
    const std::size_t shown =
        std::min<std::size_t>(bundle.ts_frames.size(), last_k);
    const std::size_t first = bundle.ts_frames.size() - shown;
    for (std::size_t i = first; i < bundle.ts_frames.size(); ++i) {
      out << "  " << summarize_frame(bundle.ts_frames[i]) << "\n";
    }
  }

  if (!bundle.stop_report.empty()) {
    out << "\nstop report:\n" << bundle.stop_report;
    if (bundle.stop_report.back() != '\n') out << "\n";
  }
  return out.str();
}

// --- diffing ------------------------------------------------------------

Divergence first_divergence(const Bundle& a, const Bundle& b) {
  Divergence best;
  if (a.program != b.program) {
    best.note = "warning: program mismatch ('" + a.program + "' vs '" +
                b.program + "') — divergence below may be meaningless";
  }

  std::map<std::pair<int, int>, const BundleTile*> b_tiles;
  for (const BundleTile& t : b.tiles) b_tiles[{t.x, t.y}] = &t;
  std::set<std::pair<int, int>> coords;
  for (const BundleTile& t : a.tiles) coords.insert({t.x, t.y});
  for (const BundleTile& t : b.tiles) coords.insert({t.x, t.y});

  std::map<std::pair<int, int>, const BundleTile*> a_tiles;
  for (const BundleTile& t : a.tiles) a_tiles[{t.x, t.y}] = &t;

  bool have = false;
  std::uint64_t best_cycle = 0;
  std::pair<int, int> best_tile{0, 0}; ///< (y, x) for ordering

  for (const auto& [x, y] : coords) {
    const auto ai = a_tiles.find({x, y});
    const auto bi = b_tiles.find({x, y});
    const BundleTile* ta = ai != a_tiles.end() ? ai->second : nullptr;
    const BundleTile* tb = bi != b_tiles.end() ? bi->second : nullptr;
    const std::size_t na = ta != nullptr ? ta->events.size() : 0;
    const std::size_t nb = tb != nullptr ? tb->events.size() : 0;

    // Rings may have wrapped differently; compare only from the first
    // retained event both sides share nothing about — a straight pairwise
    // walk is the honest comparison when both rings are complete, and a
    // conservative earliest-difference when one has dropped events.
    const std::size_t n = std::min(na, nb);
    std::size_t i = 0;
    for (; i < n; ++i) {
      if (!(ta->events[i] == tb->events[i])) break;
    }
    if (i == n && na == nb) continue; // identical streams

    const BundleEvent* ea = i < na ? &ta->events[i] : nullptr;
    const BundleEvent* eb = i < nb ? &tb->events[i] : nullptr;
    std::uint64_t cycle = 0;
    if (ea != nullptr && eb != nullptr) {
      cycle = std::min(ea->cycle, eb->cycle);
    } else if (ea != nullptr) {
      cycle = ea->cycle;
    } else if (eb != nullptr) {
      cycle = eb->cycle;
    }

    const std::pair<int, int> yx{y, x};
    if (!have || cycle < best_cycle ||
        (cycle == best_cycle && yx < best_tile)) {
      have = true;
      best_cycle = cycle;
      best_tile = yx;
      best.found = true;
      best.cycle = cycle;
      best.x = x;
      best.y = y;
      best.a_event = ea != nullptr ? ea->summary() : "-";
      best.b_event = eb != nullptr ? eb->summary() : "-";
    }
  }
  return best;
}

std::string pretty_divergence(const Divergence& d) {
  std::ostringstream out;
  if (!d.note.empty()) out << d.note << "\n";
  if (!d.found) {
    out << "no divergence: recorded event streams are identical\n";
    return out.str();
  }
  out << "first divergence at cycle " << d.cycle << ", tile "
      << tile_name(d.x, d.y) << ":\n";
  out << "  A: " << d.a_event << "\n";
  out << "  B: " << d.b_event << "\n";
  return out.str();
}

// --- self-check ---------------------------------------------------------

bool self_check_bundle(const Bundle& bundle, std::string* error) {
  const auto fail_with = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (bundle.schema != kPostmortemSchema) {
    return fail_with("schema mismatch: '" + bundle.schema + "'");
  }
  if (!known_anomaly_kind(bundle.anomaly_kind)) {
    return fail_with("unknown anomaly kind: '" + bundle.anomaly_kind + "'");
  }
  const bool has_fabric = bundle.width > 0 && bundle.height > 0;
  if ((!bundle.tiles.empty() || !bundle.heatmaps.empty()) && !has_fabric) {
    return fail_with("tile/heatmap data without fabric dimensions");
  }
  const auto in_bounds = [&](int x, int y) {
    return x >= 0 && x < bundle.width && y >= 0 && y < bundle.height;
  };
  for (const BundleTile& t : bundle.tiles) {
    if (!in_bounds(t.x, t.y)) {
      return fail_with("flight tile " + tile_name(t.x, t.y) +
                       " out of bounds");
    }
    if (t.events.size() > bundle.flight_depth) {
      return fail_with("flight tile " + tile_name(t.x, t.y) +
                       " holds more events than the ring depth");
    }
    if (static_cast<std::uint64_t>(t.events.size()) + t.dropped != t.total) {
      return fail_with("flight tile " + tile_name(t.x, t.y) +
                       " events+dropped != total");
    }
    for (std::size_t i = 1; i < t.events.size(); ++i) {
      if (t.events[i].cycle < t.events[i - 1].cycle) {
        return fail_with("flight tile " + tile_name(t.x, t.y) +
                         " events not chronological");
      }
    }
    for (const BundleEvent& e : t.events) {
      FlightEventKind k;
      if (!flight_event_kind_from_string(e.kind, &k)) {
        return fail_with("unknown flight event kind: '" + e.kind + "'");
      }
    }
  }
  for (const Heatmap& h : bundle.heatmaps) {
    if (h.width != bundle.width || h.height != bundle.height) {
      return fail_with("heatmap '" + h.name + "' dimensions mismatch fabric");
    }
    if (h.cells.size() != static_cast<std::size_t>(h.width) *
                              static_cast<std::size_t>(h.height)) {
      return fail_with("heatmap '" + h.name + "' cell count mismatch");
    }
  }
  for (const WaitForEdge& e : bundle.wait_edges) {
    if (has_fabric &&
        (!in_bounds(e.from_x, e.from_y) || !in_bounds(e.to_x, e.to_y))) {
      return fail_with("wait-for edge endpoint out of bounds");
    }
    if (e.color < -1 || e.color >= wse::kNumColors) {
      return fail_with("wait-for edge color out of range");
    }
  }
  for (const auto& [x, y] : bundle.blocked_tiles) {
    if (has_fabric && !in_bounds(x, y)) {
      return fail_with("blocked tile " + tile_name(x, y) + " out of bounds");
    }
  }
  if (bundle.ts_frames.size() > kPostmortemTimeseriesTail) {
    return fail_with("time-series tail exceeds the retention cap");
  }
  if (bundle.ts_frames.size() >
      static_cast<std::size_t>(bundle.ts_frames_total)) {
    return fail_with("time-series tail holds more frames than frames_total");
  }
  for (std::size_t i = 0; i < bundle.ts_frames.size(); ++i) {
    const TimeSeriesFrame& f = bundle.ts_frames[i];
    if (f.window_cycles == 0) {
      return fail_with("time-series frame with zero-cycle window");
    }
    if (i > 0 && f.cycle <= bundle.ts_frames[i - 1].cycle) {
      return fail_with("time-series frames not chronological");
    }
  }
  return true;
}

} // namespace wss::telemetry
