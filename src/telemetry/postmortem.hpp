#pragma once

// Post-mortem forensics (docs/POSTMORTEM.md): when a run goes wrong —
// deadlock watchdog, NaN/Inf solver scalar, breakdown restart, fault
// storm — snapshot everything an investigation needs into one versioned
// JSON bundle:
//
//   * the flight-recorder rings (last events per tile, flightrec.hpp),
//   * a blocked-task wait-for graph: tile -> awaited color/FIFO ->
//     upstream tile, with cycle detection that names deadlock loops in
//     fabric (Fig. 5) coordinates,
//   * the per-tile heatmap counters and profiler category layers,
//   * solver scalar history (rho/alpha/omega/residual per iteration),
//   * the fault-injection stats and event log when a plan was attached.
//
// Bundles are written under $WSS_POSTMORTEM_DIR (or an explicit dir),
// emitted with telemetry/json.hpp and loaded back with json_parse.hpp —
// `wss_inspect` pretty-prints one bundle or diffs two from runs of the
// same program to localize the first divergence (earliest differing
// cycle/tile/event triple), e.g. a fault-injected run against its clean
// twin.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/flightrec.hpp"
#include "telemetry/heatmap.hpp"
#include "telemetry/netmon.hpp"
#include "telemetry/timeseries.hpp"

namespace wss::wse {
class Fabric;
struct StopInfo;
}

namespace wss::telemetry {

class Profiler;

/// Bundle schema identifier; bump on breaking layout changes.
inline constexpr const char* kPostmortemSchema = "wss.postmortem/1";

// --- anomaly triggers ---------------------------------------------------

struct AnomalyInfo {
  enum class Kind : std::uint8_t {
    Deadlock = 0,   ///< watchdog / quiescent-with-work stop
    NanScalar = 1,  ///< non-finite scalar observed by a solver probe
    Breakdown = 2,  ///< BiCGStab breakdown / restart (docs/ROBUSTNESS.md)
    FaultStorm = 3, ///< injected-fault count crossed WSS_FAULT_STORM
    Manual = 4,     ///< explicitly requested snapshot (e.g. a clean twin)
    Health = 5,     ///< critical health-engine alert (docs/HEALTH.md)
  };
  Kind kind = Kind::Manual;
  std::uint64_t cycle = 0; ///< fabric cycle (or iteration) at detection
  std::string detail;      ///< human-readable: what tripped, where
};

[[nodiscard]] const char* to_string(AnomalyInfo::Kind kind);

// --- solver scalar history ----------------------------------------------

/// Bounded history of named solver scalars (rho, alpha, omega, residual,
/// ...) per iteration — the "cycles leading up to the NaN" on the host
/// side. Null-tolerant recording mirrors SolverProbe: pass a nullptr and
/// every call is a pointer test.
struct ScalarSample {
  std::uint64_t iteration = 0;
  std::string name;
  double value = 0.0;
};

class ScalarHistory {
public:
  static constexpr std::size_t kMaxSamples = 8192;

  void record(std::uint64_t iteration, std::string name, double value) {
    if (samples_.size() >= kMaxSamples) {
      ++dropped_;
      return;
    }
    samples_.push_back({iteration, std::move(name), value});
  }
  [[nodiscard]] const std::vector<ScalarSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    samples_.clear();
    dropped_ = 0;
  }

private:
  std::vector<ScalarSample> samples_;
  std::uint64_t dropped_ = 0;
};

// --- wait-for graph -----------------------------------------------------

/// One blocked-on relation: tile `from` cannot progress until tile `to`
/// moves (color = the awaited virtual channel; -1 for non-color waits,
/// e.g. a self-edge on a full software FIFO).
struct WaitForEdge {
  int from_x = 0, from_y = 0;
  int to_x = 0, to_y = 0;
  int color = -1;
  std::string why;
};

struct WaitForCycle {
  std::vector<std::pair<int, int>> tiles; ///< loop order, first = entry
  std::string name; ///< "(0,0) --c2--> (1,0) --c1--> (0,0)"
};

struct WaitForGraph {
  std::vector<WaitForEdge> edges;
  std::vector<WaitForCycle> cycles; ///< deadlock loops, Fig. 5 coordinates
  /// Blocked tiles with no outgoing edge — the terminal suspects a stall
  /// chain drains into (e.g. a dead tile that stopped consuming).
  std::vector<std::pair<int, int>> terminals;
  /// Per blocked tile: current task / wait summary for the report.
  struct TileState {
    int x = 0, y = 0;
    std::string task;  ///< current task name ("-" when between tasks)
    std::string state; ///< TileCore::debug_state()
  };
  std::vector<TileState> blocked;
};

/// Build the wait-for graph of a (presumed stuck) fabric: read-only
/// introspection of core waits, routing rules and queue occupancy.
[[nodiscard]] WaitForGraph build_wait_for_graph(const wse::Fabric& fabric);

// --- bundle writing -----------------------------------------------------

/// Everything the writer may snapshot. Only `program` is required; every
/// pointer is optional (host-side solver anomalies have no fabric).
struct PostmortemInputs {
  const wse::Fabric* fabric = nullptr;
  const FlightRecorder* recorder = nullptr;
  const Profiler* profiler = nullptr;
  const ScalarHistory* scalars = nullptr;
  const wse::StopInfo* stop = nullptr;
  /// When set, the bundle embeds the tail of the active time series (last
  /// kPostmortemTimeseriesTail frames) — the lead-up trajectory, not just
  /// the final state.
  const TimeSeriesSampler* timeseries = nullptr;
  /// Program identity (name + shape), used by `wss_inspect diff` to check
  /// two bundles are comparable.
  std::string program;
};

/// Time-series frames a bundle retains (the trajectory leading up to the
/// anomaly; the full series lives in its own artifact).
inline constexpr std::size_t kPostmortemTimeseriesTail = 32;

/// Render the bundle JSON (telemetry/json.hpp emit).
[[nodiscard]] std::string build_postmortem_json(const AnomalyInfo& anomaly,
                                                const PostmortemInputs& in);

/// Write a bundle under `dir` (created if needed) as
/// `<dir>/postmortem_<kind>[ _2, _3, ...].json` (claim_output_stem keeps
/// bundles from clobbering each other in one process). Returns false +
/// `*error` on I/O failure; `*path_out` receives the path written.
bool write_postmortem(const std::string& dir, const AnomalyInfo& anomaly,
                      const PostmortemInputs& in,
                      std::string* path_out = nullptr,
                      std::string* error = nullptr);

/// $WSS_POSTMORTEM_DIR or "" (strict parse; see common/env.hpp).
[[nodiscard]] std::string postmortem_dir();

/// Write a bundle iff WSS_POSTMORTEM_DIR is set. Returns the path written
/// ("" when disabled); I/O failures are reported on stderr, not thrown —
/// forensics must never turn a diagnosed failure into a different one.
std::string maybe_write_postmortem(const AnomalyInfo& anomaly,
                                   const PostmortemInputs& in);

/// WSS_FAULT_STORM threshold (0 = disabled): total injected faults at or
/// above this count trigger a FaultStorm bundle even on a finished run.
[[nodiscard]] std::uint64_t fault_storm_threshold();

/// WSS_FLIGHTREC_DEPTH (default FlightRecorder::kDefaultDepth).
[[nodiscard]] std::size_t flightrec_depth();

/// Env-driven observability attachment shared by every fabric-owning
/// kernel simulation. Three independent env switches compose:
///  * WSS_POSTMORTEM_DIR: when set (and the fabric has no recorder
///    already), construct a FlightRecorder sized to the fabric (depth
///    WSS_FLIGHTREC_DEPTH) and attach it for the scope's lifetime;
///  * WSS_SAMPLE_CYCLES: when nonzero (and the fabric has no sampler
///    already), attach an owned TimeSeriesSampler and, at the end of the
///    run (finished() or deadlock()), close the final window and flush the
///    series to WSS_TIMESERIES_OUT (or `<ledger_dir>/<run_id>.timeseries.
///    json` when only the ledger is configured);
///  * WSS_LEDGER_DIR: when set, mint a run ID and append a RunManifest
///    (outcome, metrics, artifact paths) to the ledger at end of run.
/// Carries the two anomaly triggers every kernel shares:
///  * deadlock(): a failed run — writes a Deadlock bundle and returns the
///    error message enriched with the stop report and bundle path,
///  * finished(): a successful run — writes a FaultStorm bundle when the
///    injected-fault total crossed WSS_FAULT_STORM.
/// With all three unset this is inert (no recorder, no sampler, no
/// bundles, no ledger), and every attachment only observes
/// (flightrec.hpp, timeseries.hpp).
class RunForensics {
public:
  RunForensics(wse::Fabric& fabric, std::string program);
  ~RunForensics();
  RunForensics(const RunForensics&) = delete;
  RunForensics& operator=(const RunForensics&) = delete;

  /// The recorder observing the fabric (ours or a pre-attached one);
  /// nullptr when forensics are disabled.
  [[nodiscard]] FlightRecorder* recorder() const;

  /// The sampler observing the fabric (ours or a pre-attached one);
  /// nullptr when sampling is disabled.
  [[nodiscard]] TimeSeriesSampler* sampler() const;

  /// This run's ledger identity ("" when neither ledger nor sampler is
  /// active).
  [[nodiscard]] const std::string& run_id() const { return run_id_; }

  /// Optional host-side scalar history to embed in the flushed time
  /// series (rho/omega/residual per iteration). Must outlive this scope.
  void set_scalars(const ScalarHistory* scalars) { scalars_ = scalars; }

  /// Arm the network observatory (docs/NETWORK.md) for this run: attach
  /// an owned NetMonitor declared with the program's flow `table`, and
  /// carry the per-flow traffic `expectations` into the sampled series
  /// (the flow_bandwidth_drift gate). No-op unless WSS_NETFLOWS=1, and
  /// never displaces a monitor the caller attached directly. finalize()
  /// then writes the `wss.netflows/1` artifact next to the series (or to
  /// WSS_NETFLOWS_OUT) and records per-flow word metrics in the ledger.
  void set_net_flows(wse::FlowTable table,
                     std::vector<NetFlowExpectation> expectations = {});

  /// The monitor observing the fabric (ours or a pre-attached one);
  /// nullptr when netflow capture is disabled.
  [[nodiscard]] NetMonitor* net_monitor() const;

  /// Failed run: write a Deadlock bundle (if enabled), flush the time
  /// series, append the ledger entry, and return `what` enriched with the
  /// stop report (and bundle path when one was written).
  [[nodiscard]] std::string deadlock(const wse::StopInfo& stop,
                                     const std::string& what);

  /// Successful run: fault-storm trigger (see fault_storm_threshold),
  /// time-series flush and ledger append. Pass the StopInfo when you have
  /// it so the ledger records the real outcome ("finished" otherwise).
  void finished(const wse::StopInfo* stop = nullptr);

private:
  /// Close the sampling window, write the series artifact, append the
  /// ledger manifest. `outcome`/`deadlock` describe the run's end;
  /// `postmortem_path` links the bundle artifact when one was written.
  void finalize(const std::string& outcome, bool deadlock,
                const std::string& postmortem_path);

  wse::Fabric& fabric_;
  std::string program_;
  std::unique_ptr<FlightRecorder> owned_;
  bool attached_ = false;
  std::unique_ptr<TimeSeriesSampler> owned_sampler_;
  bool sampler_attached_ = false;
  std::unique_ptr<NetMonitor> owned_netmon_;
  bool netmon_attached_ = false;
  std::vector<NetFlowExpectation> net_expectations_;
  std::string run_id_;
  const ScalarHistory* scalars_ = nullptr;
  bool finalized_ = false;
};

// --- bundle loading / inspection ----------------------------------------

struct BundleEvent {
  std::uint64_t cycle = 0;
  std::string kind;
  std::int64_t a = 0, b = 0, c = 0, d = 0;

  [[nodiscard]] bool operator==(const BundleEvent& o) const {
    return cycle == o.cycle && kind == o.kind && a == o.a && b == o.b &&
           c == o.c && d == o.d;
  }
  [[nodiscard]] std::string summary() const;
};

struct BundleTile {
  int x = 0, y = 0;
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
  std::vector<BundleEvent> events; ///< chronological
};

struct Bundle {
  std::string schema;
  std::string anomaly_kind;
  std::uint64_t anomaly_cycle = 0;
  std::string anomaly_detail;
  std::string program;
  int width = 0, height = 0;
  std::uint64_t cycles = 0;
  int threads = 0;
  // stop info (absent for host-side bundles)
  std::string stop_reason;
  bool deadlock = false;
  std::uint64_t stalled_cycles = 0;
  std::vector<std::pair<int, int>> blocked_tiles;
  std::string stop_report;
  // wait-for graph
  std::vector<WaitForEdge> wait_edges;
  std::vector<std::string> wait_cycles; ///< rendered names
  std::vector<std::pair<int, int>> wait_terminals;
  // flight rings
  std::uint64_t flight_depth = 0;
  std::vector<BundleTile> tiles;
  // heatmaps
  std::vector<Heatmap> heatmaps;
  // scalar history
  std::vector<ScalarSample> scalars;
  // time-series tail (empty when no sampler was attached)
  std::uint64_t ts_sample_cycles = 0;
  std::uint64_t ts_frames_total = 0; ///< frames the sampler held in all
  std::vector<TimeSeriesFrame> ts_frames; ///< last retained frames
  // fault summary (zero when no plan was attached)
  std::uint64_t fault_total = 0;
};

/// Parse a bundle file. Returns false + `*error` (with context) on
/// unreadable files, JSON errors, or schema mismatch.
bool load_bundle(const std::string& path, Bundle* out,
                 std::string* error = nullptr);

/// Terminal rendering: anomaly, stop reason, top blocked tiles, wait-for
/// cycles, last `last_k` events of the busiest/blocked tiles, scalars.
[[nodiscard]] std::string pretty_bundle(const Bundle& bundle,
                                        std::size_t last_k = 8);

/// First divergence between two bundles of the same program: the earliest
/// (cycle, tile, event) at which the recorded streams differ.
struct Divergence {
  bool found = false;
  std::uint64_t cycle = 0;
  int x = 0, y = 0;
  std::string a_event; ///< what bundle A recorded ("-" when absent)
  std::string b_event; ///< what bundle B recorded
  std::string note;    ///< e.g. program-mismatch warning
};

[[nodiscard]] Divergence first_divergence(const Bundle& a, const Bundle& b);
[[nodiscard]] std::string pretty_divergence(const Divergence& d);

/// Schema guard for CI: checks the schema tag and the structural
/// invariants wss_inspect depends on. Returns false + `*error` on drift.
bool self_check_bundle(const Bundle& bundle, std::string* error = nullptr);

} // namespace wss::telemetry
