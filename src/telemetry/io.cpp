#include "telemetry/io.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace wss::telemetry {

bool ensure_directory(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error != nullptr) *error = "empty directory path";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create directory " + path + ": " + ec.message();
    }
    return false;
  }
  return true;
}

bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "short write to " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

} // namespace wss::telemetry
