#include "telemetry/io.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <unordered_map>

namespace wss::telemetry {

namespace {

std::mutex& stem_mutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, int>& stem_claims() {
  static std::unordered_map<std::string, int> claims;
  return claims;
}

} // namespace

std::string claim_output_stem(const std::string& stem) {
  std::lock_guard<std::mutex> lk(stem_mutex());
  auto& claims = stem_claims();
  if (claims.emplace(stem, 1).second) return stem;
  // Also register the disambiguated name, so an explicit later claim of
  // e.g. "spmv_2" cannot collide with the expansion of "spmv".
  for (int n = claims[stem] + 1;; ++n) {
    const std::string candidate = stem + "_" + std::to_string(n);
    if (claims.emplace(candidate, 1).second) {
      claims[stem] = n;
      return candidate;
    }
  }
}

void reset_output_stem_claims() {
  std::lock_guard<std::mutex> lk(stem_mutex());
  stem_claims().clear();
}

bool ensure_directory(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error != nullptr) *error = "empty directory path";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create directory " + path + ": " + ec.message();
    }
    return false;
  }
  return true;
}

bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "short write to " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

} // namespace wss::telemetry
