#include "telemetry/bench_report.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/env.hpp"
#include "telemetry/global.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace wss::telemetry {

const char* json_out_dir() { return env::parse_cstr("WSS_JSON_OUT"); }

std::string default_report_name(const std::string& fallback) {
  std::string raw;
#ifdef __linux__
  std::ifstream cmdline("/proc/self/cmdline", std::ios::binary);
  if (cmdline) {
    std::getline(cmdline, raw, '\0'); // argv[0]
    const std::size_t slash = raw.find_last_of('/');
    if (slash != std::string::npos) raw = raw.substr(slash + 1);
  }
#endif
  if (raw.empty()) raw = fallback;
  std::string out;
  for (const char ch : raw) {
    const auto u = static_cast<unsigned char>(ch);
    if (std::isalnum(u) || ch == '_' || ch == '-' || ch == '.') {
      out += ch;
    } else if (ch == ' ' || ch == ':') {
      out += '_';
    }
  }
  if (out.empty()) out = "bench";
  return out;
}

std::string BenchReport::to_json(const MetricsRegistry* attach) const {
  json::Writer w;
  w.begin_object();
  w.key("bench").value(name_.empty() ? default_report_name("bench") : name_);
  w.key("experiment").value(experiment_);
  w.key("paper_ref").value(paper_ref_);
  w.key("claim").value(claim_);
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  w.key("generated_unix_ms").value(static_cast<std::int64_t>(now_ms));
  w.key("rows").begin_array();
  for (const Row& r : rows_) {
    w.begin_object();
    w.key("label").value(r.label);
    if (r.has_paper()) {
      w.key("paper").value(r.paper);
      w.key("deviation_pct").value(r.deviation_pct());
    } else {
      w.key("paper").null();
    }
    w.key("measured").value(r.measured);
    w.key("unit").value(r.unit);
    w.end_object();
  }
  w.end_array();
  w.key("notes").begin_array();
  for (const std::string& n : notes_) w.value(n);
  w.end_array();
  if (attach != nullptr && !attach->empty()) {
    w.key("metrics").raw(attach->to_json());
  }
  w.end_object();
  return w.str();
}

bool BenchReport::write(const std::string& dir, const MetricsRegistry* attach,
                        std::string* error) const {
  if (!ensure_directory(dir, error)) return false;
  const std::string base = name_.empty() ? default_report_name("bench") : name_;
  return write_text_file(dir + "/" + base + ".json", to_json(attach), error);
}

namespace {

void flush_global_report() {
  const char* dir = json_out_dir();
  if (dir == nullptr) return;
  BenchReport& report = BenchReport::global();
  if (report.empty()) return;
  std::string error;
  if (!report.write(dir, &global_registry(), &error)) {
    std::fprintf(stderr, "[telemetry: %s]\n", error.c_str());
  } else {
    std::fprintf(stderr, "[telemetry: wrote report %s/%s.json]\n", dir,
                 report.name().empty()
                     ? default_report_name("bench").c_str()
                     : report.name().c_str());
  }
}

} // namespace

BenchReport& BenchReport::global() {
  // Construct the report BEFORE registering the atexit hook so the flush
  // (which runs earlier in the termination sequence than the destructor
  // of anything constructed before it) reads a live object.
  static BenchReport report;
  static const bool registered = [] {
    // Touch the sinks the flush will use so they are also constructed
    // ahead of the hook and therefore outlive it.
    (void)global_registry();
    std::atexit(flush_global_report);
    return true;
  }();
  (void)registered;
  return report;
}

} // namespace wss::telemetry
