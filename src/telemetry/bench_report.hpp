#pragma once

// Machine-readable bench output: every bench binary's paper-vs-measured
// rows collected into one structured JSON document and written to
// $WSS_JSON_OUT/<bench>.json at exit. The bench harness (bench/
// bench_util.hpp) feeds the global report from the same header()/row()
// calls that print the human tables, so no bench needs to change to be
// CI-diffable; the global MetricsRegistry snapshot is attached so solver
// probes and fabric counters land in the same document.

#include <cstdint>
#include <string>
#include <vector>

namespace wss::telemetry {

class MetricsRegistry;

class BenchReport {
public:
  struct Row {
    std::string label;
    double paper = 0.0;    ///< <= 0 means "no paper value"
    double measured = 0.0;
    std::string unit;

    [[nodiscard]] bool has_paper() const { return paper > 0.0; }
    [[nodiscard]] double deviation_pct() const {
      return has_paper() ? 100.0 * (measured - paper) / paper : 0.0;
    }
  };

  void set_name(std::string name) { name_ = std::move(name); }
  void set_experiment(std::string experiment) {
    experiment_ = std::move(experiment);
  }
  void set_paper_ref(std::string r) { paper_ref_ = std::move(r); }
  void set_claim(std::string c) { claim_ = std::move(c); }

  void add_row(std::string label, double paper, double measured,
               std::string unit) {
    rows_.push_back({std::move(label), paper, measured, std::move(unit)});
  }
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] bool empty() const {
    return rows_.empty() && experiment_.empty();
  }

  /// The full document; `attach` (may be null) contributes a "metrics"
  /// section from its current snapshot.
  [[nodiscard]] std::string to_json(const MetricsRegistry* attach) const;

  /// Write `<dir>/<name>.json` (creating `dir`). Returns false + `*error`
  /// on failure.
  bool write(const std::string& dir, const MetricsRegistry* attach,
             std::string* error = nullptr) const;

  /// Process-wide report; first use arms an atexit flush to $WSS_JSON_OUT
  /// (no-op when the variable is unset or the report is empty).
  static BenchReport& global();

private:
  std::string name_;
  std::string experiment_;
  std::string paper_ref_;
  std::string claim_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

/// $WSS_JSON_OUT or nullptr.
const char* json_out_dir();

/// Best-effort bench name: basename of /proc/self/cmdline argv[0], else
/// `fallback` sanitized to [A-Za-z0-9_-].
std::string default_report_name(const std::string& fallback);

} // namespace wss::telemetry
