#pragma once

// The runtime health engine (docs/HEALTH.md): a streaming rule evaluator
// over the cycle-windowed time series (timeseries.hpp) and the solver
// scalar history (postmortem.hpp), turning frames into verdicts.
//
// Rule catalog:
//   perfmodel_drift     measured per-phase cycles/tile/iteration above the
//                       analytic projection carried in HealthExpectations
//                       (WSS_HEALTH_TOL_PCT; one-sided — only slowdowns
//                       alert; >2x tolerance -> critical)
//   flow_bandwidth_drift per-flow words/iteration below the route
//                       compiler's traffic projection carried in
//                       net_expectations (one-sided — only under-delivery
//                       alerts; >2x tolerance -> critical)
//   link_congestion     the most stall-attributed link backpressure-
//                       blocked for more than WSS_HEALTH_CONGESTION_PCT of
//                       the observed cycles; the alert names the link
//   queue_growth        router queue occupancy strictly increasing over
//                       WSS_HEALTH_QUEUE_WINDOWS consecutive frames
//   fifo_growth         software-FIFO high-water strictly increasing over
//                       the same window count
//   stall_spike         windowed stall ratio far above the run's median
//                       post-warmup ratio
//   recv_starvation     windowed recv-starved ratio far above the run's
//                       median post-warmup ratio (profiled runs only)
//   fault_burst         >= WSS_HEALTH_FAULT_BURST injected faults inside a
//                       single sample window (critical)
//   residual_stagnation best -log10 residual fails to improve across
//                       WSS_HEALTH_RESIDUAL_ITERS consecutive iterations
//   scalar_nonfinite    a recorded solver scalar went NaN/Inf (critical)
//
// The engine is evaluation-only: it reads recorded frames/scalars after
// the fact (RunForensics::finalize, wss_top renders, wss_inspect), never
// hooks the fabric, so it is non-perturbing by construction and inherits
// the frames' bit-identity across WSS_SIM_THREADS and backends. Alerts
// are coalesced per rule (first/last offending frame) and emitted in a
// fixed rule order, so a given frame stream always yields the same alert
// stream byte for byte.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace wss::telemetry {

class ScalarHistory; // telemetry/postmortem.hpp

/// Alerts schema identifier; bump on breaking layout changes.
inline constexpr const char* kAlertsSchema = "wss.alerts/1";

enum class AlertSeverity : std::uint8_t {
  Info = 0,
  Warn = 1,
  Critical = 2,
};

[[nodiscard]] const char* to_string(AlertSeverity s);
/// Parse a severity label ("info"/"warn"/"critical"); false on anything
/// else (strict — loaders reject unknown severities).
bool parse_alert_severity(const std::string& text, AlertSeverity* out);

/// One named input the triggering rule evaluated (measured value, model
/// projection, threshold, ...), carried for forensics.
struct AlertInput {
  std::string name;
  double value = 0.0;

  [[nodiscard]] bool operator==(const AlertInput& o) const {
    return name == o.name && value == o.value;
  }
};

/// One coalesced alert: a rule that fired, with the offending frame range.
/// Frame-based rules set first/last frame indices and cycles; scalar-based
/// rules (residual_stagnation, scalar_nonfinite) reuse the frame fields for
/// solver iteration numbers and leave cycles at 0.
struct HealthAlert {
  std::string rule;
  AlertSeverity severity = AlertSeverity::Info;
  std::string detail;
  std::uint64_t first_frame = 0;
  std::uint64_t last_frame = 0;
  std::uint64_t first_cycle = 0;
  std::uint64_t last_cycle = 0;
  std::vector<AlertInput> inputs;

  [[nodiscard]] bool operator==(const HealthAlert& o) const {
    return rule == o.rule && severity == o.severity && detail == o.detail &&
           first_frame == o.first_frame && last_frame == o.last_frame &&
           first_cycle == o.first_cycle && last_cycle == o.last_cycle &&
           inputs == o.inputs;
  }
};

/// Tuning knobs; defaults come from the WSS_HEALTH_* environment variables
/// (docs/OBSERVABILITY.md) via health_config().
struct HealthConfig {
  /// perfmodel drift tolerance, percent: the measured phase may run this
  /// much slower than the model before the rule fires (warn above it,
  /// critical above 2x; faster-than-model never alerts).
  double tol_pct = 50.0;
  /// Leading frames excluded from spike scans/baselines and growth scans
  /// (ramp-up noise).
  std::uint64_t warmup_frames = 2;
  /// Consecutive strictly-increasing windows before queue/FIFO growth fires.
  std::uint64_t queue_windows = 4;
  /// Injected faults inside one sample window that constitute a burst.
  std::uint64_t fault_burst = 16;
  /// Consecutive iterations without a new best -log10 residual.
  std::uint64_t residual_iters = 10;
  /// Minimum solver iterations before the drift gate has enough signal.
  std::uint64_t min_iterations = 2;
  /// Stall/recv-starved ratio must exceed both this absolute floor and 3x
  /// the run's median ratio to spike. The floor filters near-zero-baseline
  /// noise AND normal phase bimodality: allreduce-heavy windows of a
  /// healthy 6x6 BiCGStab solve stall ~0.33 while the rest of the run sits
  /// near zero, so the floor must clear that; a genuinely stalled fabric
  /// pushes windows toward 1.0.
  double spike_floor = 0.5;
  /// Stall-attributed-cycle ratio of the worst link (stall cycles over
  /// observed cycles) above which link_congestion fires. High on purpose:
  /// transient backpressure is routine multiplexing on a healthy fabric —
  /// clean CI runs must stay silent — while a stalled router drives the
  /// links feeding it toward 1.0. (WSS_HEALTH_CONGESTION_PCT / 100.)
  double congestion_floor = 0.5;
};

/// WSS_HEALTH: master switch for the engine (default on).
[[nodiscard]] bool health_enabled();

/// Config assembled from WSS_HEALTH_TOL_PCT, WSS_HEALTH_WARMUP,
/// WSS_HEALTH_QUEUE_WINDOWS, WSS_HEALTH_FAULT_BURST,
/// WSS_HEALTH_RESIDUAL_ITERS and WSS_HEALTH_CONGESTION_PCT (strict parse
/// via common/env.hpp).
[[nodiscard]] HealthConfig health_config();

// --- evaluation ----------------------------------------------------------

/// Evaluate every rule over a recorded series (frames + scalars +
/// expectations). Deterministic: identical inputs yield an identical alert
/// vector, ordered by rule then first offending frame.
[[nodiscard]] std::vector<HealthAlert> evaluate_health(
    const TimeSeries& ts, const HealthConfig& cfg);

/// Scalar-only rules (residual stagnation, non-finite scalars) for hosts
/// without a fabric sampler — the pure host solver path.
[[nodiscard]] std::vector<HealthAlert> evaluate_scalar_health(
    const std::vector<TimeSeriesScalar>& scalars, const HealthConfig& cfg);

/// Convenience overload over the live ScalarHistory ring.
[[nodiscard]] std::vector<HealthAlert> evaluate_scalar_health(
    const ScalarHistory& scalars, const HealthConfig& cfg);

[[nodiscard]] bool any_critical(const std::vector<HealthAlert>& alerts);

// --- the wss.alerts/1 artifact -------------------------------------------

/// A loaded (or to-be-written) `wss.alerts/1` file.
struct AlertsFile {
  std::string schema;
  std::string program;
  std::string run_id;
  double tol_pct = 0.0; ///< drift tolerance the alerts were evaluated with
  std::vector<HealthAlert> alerts;
};

[[nodiscard]] std::string build_alerts_json(const AlertsFile& a);

/// Write the alerts file to `path` (parent directories created). Returns
/// false + `*error` on I/O failure.
bool write_alerts(const std::string& path, const AlertsFile& a,
                  std::string* error = nullptr);

/// Parse an alerts file. Returns false + `*error` (with context) on
/// unreadable files, JSON errors, or schema mismatch.
bool load_alerts(const std::string& path, AlertsFile* out,
                 std::string* error = nullptr);

/// Schema guard for CI: schema tag, known severities, non-empty rule
/// names, ordered frame/cycle ranges. Returns false + `*error` on drift.
bool self_check_alerts(const AlertsFile& a, std::string* error = nullptr);

/// First divergent alert between two alert streams (mirrors the
/// post-mortem / timeseries diff UX; exit 3 in wss_inspect).
struct AlertDivergence {
  bool found = false;
  std::size_t index = 0; ///< alert index of the first difference
  std::string a_alert;   ///< one-line summary ("-" when absent)
  std::string b_alert;
  std::string note; ///< e.g. program mismatch warning
};

[[nodiscard]] AlertDivergence first_alert_divergence(const AlertsFile& a,
                                                     const AlertsFile& b);
[[nodiscard]] std::string pretty_alert_divergence(const AlertDivergence& d);

/// One-line alert summary used by list mode, the diff, and postmortem
/// anomaly details.
[[nodiscard]] std::string summarize_alert(const HealthAlert& a);

/// Full rendering of an alerts file (show mode): every alert with its
/// rule inputs.
[[nodiscard]] std::string pretty_alerts(const AlertsFile& a);

/// The wss_top pane: evaluate a loaded series on the fly and render a
/// compact health section ("health: ok ..." when nothing fired).
[[nodiscard]] std::string pretty_health_pane(const TimeSeries& ts,
                                             const HealthConfig& cfg);

} // namespace wss::telemetry
