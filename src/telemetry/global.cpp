#include "telemetry/global.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/env.hpp"
#include "wse/trace.hpp"

namespace wss::telemetry {

namespace {

std::vector<FabricTraceSource>& fabric_sources() {
  static std::vector<FabricTraceSource> sources;
  return sources;
}

bool& flushed_flag() {
  static bool flushed = false;
  return flushed;
}

void flush_at_exit() { (void)flush_global_trace(); }

void ensure_exit_hook() {
  static const bool registered = [] {
    // Construct everything the flush reads before registering the hook,
    // so the termination sequence destroys them after the flush runs.
    (void)fabric_sources();
    (void)flushed_flag();
    std::atexit(flush_at_exit);
    return true;
  }();
  (void)registered;
}

} // namespace

MetricsRegistry& global_registry() {
  static MetricsRegistry registry;
  return registry;
}

SpanTracer& global_tracer() {
  // Construct the tracer BEFORE registering the atexit hook: statics are
  // destroyed in reverse construction order and atexit callbacks are
  // interleaved into that sequence, so this ordering guarantees the flush
  // still has a live tracer to read.
  static SpanTracer tracer;
  ensure_exit_hook();
  return tracer;
}

const char* trace_json_path() { return env::parse_cstr("WSS_TRACE_JSON"); }

bool trace_requested() {
  static const bool on = trace_json_path() != nullptr;
  return on;
}

void attach_fabric_trace(const wse::Tracer* tracer, double clock_hz,
                         std::string name) {
  (void)global_tracer(); // construct tracer + arm the exit hook, in order
  fabric_sources().push_back({tracer, clock_hz, std::move(name)});
}

wse::Tracer& exit_scoped_fabric_tracer(std::size_t capacity, double clock_hz,
                                       std::string name) {
  // Deliberately leaked: a function-local `static wse::Tracer` at a call
  // site is constructed after the exit hook is armed and therefore
  // destroyed before the flush reads it (use-after-free). Heap storage
  // with no delete sidesteps the static-destruction ordering entirely.
  auto* tracer = new wse::Tracer(capacity);
  attach_fabric_trace(tracer, clock_hz, std::move(name));
  return *tracer;
}

bool flush_global_trace() {
  const char* path = trace_json_path();
  if (path == nullptr || flushed_flag()) return false;
  flushed_flag() = true;
  std::string error;
  if (!write_chrome_trace(path, &global_tracer(), fabric_sources(),
                          &error)) {
    std::fprintf(stderr, "[telemetry: %s]\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "[telemetry: wrote trace %s]\n", path);
  return true;
}

} // namespace wss::telemetry
