#pragma once

// Host-side wall-clock span tracing: nested timed regions (solver phases —
// SpMV, dot, AXPY, AllReduce — bench stages, fabric-simulation epochs)
// recorded against a steady clock and exported as Chrome trace-event JSON
// that loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// The fabric simulator's cycle-stamped wse::Tracer stream is merged into
// the same file by telemetry/trace_adapter.hpp so host spans and per-tile
// task timelines land in one view.
//
// Hot-path cost when tracing is off is one pointer test: every probe site
// holds a `SpanTracer*` that is nullptr unless someone opted in.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace wss::telemetry {

class SpanTracer {
public:
  struct Span {
    std::string name;
    std::string category;
    double ts_us = 0.0;  ///< start, microseconds since tracer construction
    double dur_us = 0.0; ///< duration in microseconds
    int depth = 0;       ///< nesting depth at begin time
  };
  struct Instant {
    std::string name;
    std::string category;
    double ts_us = 0.0;
  };

  SpanTracer() : epoch_(clock::now()) {}

  /// Open a span; close with end(). Spans must nest (LIFO).
  void begin(std::string name, std::string category = "host");
  /// Close the innermost open span. No-op if none is open.
  void end();
  /// Zero-duration marker.
  void instant(std::string name, std::string category = "host");

  /// RAII guard; tolerant of a null tracer so call sites need no branch.
  class Scoped {
  public:
    Scoped(SpanTracer* t, std::string name, std::string category = "host")
        : t_(t) {
      if (t_ != nullptr) t_->begin(std::move(name), std::move(category));
    }
    ~Scoped() {
      if (t_ != nullptr) t_->end();
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    Scoped(Scoped&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
    Scoped& operator=(Scoped&&) = delete;

  private:
    SpanTracer* t_;
  };
  [[nodiscard]] Scoped scope(std::string name, std::string category = "host") {
    return Scoped(this, std::move(name), std::move(category));
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<Instant>& instants() const {
    return instants_;
  }
  [[nodiscard]] std::size_t open_depth() const { return open_.size(); }
  [[nodiscard]] double now_us() const;
  void clear();

  /// Chrome trace-event JSON for the host spans alone. For a combined
  /// host + fabric file use telemetry/trace_adapter.hpp.
  [[nodiscard]] std::string to_chrome_json() const;

private:
  using clock = std::chrono::steady_clock;
  struct Open {
    std::string name;
    std::string category;
    double ts_us;
  };
  clock::time_point epoch_;
  std::vector<Open> open_;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
};

} // namespace wss::telemetry
