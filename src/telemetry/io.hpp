#pragma once

// Filesystem helpers shared by the telemetry exporters and the bench
// harness: create-output-directory-if-missing and write-whole-file, both
// reporting *why* they failed (errno text) instead of failing silently.

#include <string>
#include <string_view>

namespace wss::telemetry {

/// Create `path` (and parents) if missing. Returns false and fills
/// `*error` (if non-null) with a strerror-style message on failure.
bool ensure_directory(const std::string& path, std::string* error = nullptr);

/// Write `content` to `path`, truncating. Returns false and fills
/// `*error` with path + strerror on failure.
bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

/// Per-process claim registry for output stems (a stem is a path or path
/// prefix before any suffix/extension). The first claim of `stem` returns
/// it unchanged; later claims of the same stem return `stem_2`, `stem_3`,
/// ... — so two fabrics (or two benches) writing telemetry with the same
/// name in one process get disjoint files instead of silently clobbering
/// each other. Thread-safe.
std::string claim_output_stem(const std::string& stem);

/// Forget all claims (test isolation).
void reset_output_stem_claims();

} // namespace wss::telemetry
