#pragma once

// Filesystem helpers shared by the telemetry exporters and the bench
// harness: create-output-directory-if-missing and write-whole-file, both
// reporting *why* they failed (errno text) instead of failing silently.

#include <string>
#include <string_view>

namespace wss::telemetry {

/// Create `path` (and parents) if missing. Returns false and fills
/// `*error` (if non-null) with a strerror-style message on failure.
bool ensure_directory(const std::string& path, std::string* error = nullptr);

/// Write `content` to `path`, truncating. Returns false and fills
/// `*error` with path + strerror on failure.
bool write_text_file(const std::string& path, std::string_view content,
                     std::string* error = nullptr);

} // namespace wss::telemetry
