#pragma once

// Process-wide telemetry entry points, driven by environment variables so
// every bench/example gets observability without plumbing:
//
//   WSS_TRACE_JSON=<file>  write a Chrome trace-event JSON (Perfetto) of
//                          the global SpanTracer — plus any fabric tracer
//                          attached via attach_fabric_trace — at exit.
//   WSS_JSON_OUT=<dir>     (consumed by telemetry/bench_report.hpp) write
//                          one structured JSON document per bench.
//
// Everything is opt-in: when the variables are unset the globals are inert
// objects nobody pays for beyond a pointer test at probe sites.

#include <cstddef>

#include "telemetry/metrics.hpp"
#include "telemetry/span_tracer.hpp"
#include "telemetry/trace_adapter.hpp"

namespace wss::telemetry {

/// The process-wide registry bench reports attach to their JSON output.
MetricsRegistry& global_registry();

/// The process-wide span tracer flushed to $WSS_TRACE_JSON at exit.
SpanTracer& global_tracer();

/// True iff WSS_TRACE_JSON is set (cached). Use to skip expensive
/// trace-only work (e.g. attaching a fabric tracer to a large run).
bool trace_requested();

/// $WSS_TRACE_JSON or nullptr.
const char* trace_json_path();

/// Register a simulated-fabric tracer to be merged into the exit flush.
/// The tracer must outlive the flush. CAUTION: a function-local static at
/// the call site does NOT qualify — it is constructed after the exit hook
/// is armed and destroyed before the flush runs. Prefer
/// exit_scoped_fabric_tracer() below.
void attach_fabric_trace(const wse::Tracer* tracer, double clock_hz,
                         std::string name = "fabric");

/// Allocate a tracer that is guaranteed to outlive the exit flush
/// (deliberately leaked) and attach it. The safe one-liner for benches:
///   auto& t = exit_scoped_fabric_tracer(1 << 20, arch.clock_hz, "sim");
///   fabric.set_tracer(&t);
wse::Tracer& exit_scoped_fabric_tracer(std::size_t capacity, double clock_hz,
                                       std::string name = "fabric");

/// Write the combined trace now (idempotent; also runs via atexit once
/// global_tracer()/attach_fabric_trace has been touched). Returns false
/// if disabled or on I/O error.
bool flush_global_trace();

} // namespace wss::telemetry
