#include "telemetry/heatmap.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "telemetry/io.hpp"
#include "telemetry/profiler.hpp"
#include "wse/fabric.hpp"

namespace wss::telemetry {

double Heatmap::max_value() const {
  double m = 0.0;
  for (const double v : cells) m = std::max(m, v);
  return m;
}

double Heatmap::min_value() const {
  if (cells.empty()) return 0.0;
  double m = cells.front();
  for (const double v : cells) m = std::min(m, v);
  return m;
}

std::string Heatmap::to_csv() const {
  std::ostringstream out;
  out << "# " << name << "," << width << "," << height << "\n";
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x > 0) out << ",";
      const double v = at(x, y);
      // Counters are integral in practice; print them without noise.
      if (v == static_cast<double>(static_cast<long long>(v))) {
        out << static_cast<long long>(v);
      } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out << buf;
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string Heatmap::ascii(int max_cols) const {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2; // top index
  std::ostringstream out;
  const double top = max_value();
  const int stride = std::max(1, (width + max_cols - 1) / max_cols);
  out << name << " (max " << top << ", " << width << "x" << height;
  if (stride > 1) out << ", every " << stride << "th column";
  out << ")\n";
  for (int y = 0; y < height; ++y) {
    out << "  ";
    for (int x = 0; x < width; x += stride) {
      if (top <= 0.0) {
        out << kRamp[0];
        continue;
      }
      const int level = std::clamp(
          static_cast<int>(at(x, y) / top * kLevels + 0.5), 0, kLevels);
      out << kRamp[level];
    }
    out << "\n";
  }
  out << "  scale: '" << kRamp[0] << "'=0 .. '" << kRamp[kLevels]
      << "'=" << top << "\n";
  return out.str();
}

std::vector<const Heatmap*> FabricHeatmaps::all() const {
  return {&instr_cycles,   &stall_cycles,   &idle_cycles, &task_invocations,
          &elements,       &words_sent,     &words_received,
          &fifo_highwater, &ramp_highwater, &router_forwards,
          &router_highwater, &fault_events,
          &link_words_n,   &link_words_s,   &link_words_e, &link_words_w};
}

FabricHeatmaps collect_heatmaps(const wse::Fabric& fabric) {
  const int w = fabric.width();
  const int h = fabric.height();
  FabricHeatmaps maps{
      Heatmap("instr_cycles", w, h),    Heatmap("stall_cycles", w, h),
      Heatmap("idle_cycles", w, h),     Heatmap("task_invocations", w, h),
      Heatmap("elements", w, h),        Heatmap("words_sent", w, h),
      Heatmap("words_received", w, h),  Heatmap("fifo_highwater", w, h),
      Heatmap("ramp_highwater", w, h),  Heatmap("router_forwards", w, h),
      Heatmap("router_highwater", w, h), Heatmap("fault_events", w, h),
      Heatmap("link_words_N", w, h),    Heatmap("link_words_S", w, h),
      Heatmap("link_words_E", w, h),    Heatmap("link_words_W", w, h)};
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!fabric.has_core(x, y)) continue;
      const wse::CoreStats& cs = fabric.core(x, y).stats();
      maps.instr_cycles.at(x, y) = static_cast<double>(cs.instr_cycles);
      maps.stall_cycles.at(x, y) = static_cast<double>(cs.stall_cycles);
      maps.idle_cycles.at(x, y) = static_cast<double>(cs.idle_cycles);
      maps.task_invocations.at(x, y) =
          static_cast<double>(cs.task_invocations);
      maps.elements.at(x, y) = static_cast<double>(cs.elements_processed);
      maps.words_sent.at(x, y) = static_cast<double>(cs.words_sent);
      maps.words_received.at(x, y) = static_cast<double>(cs.words_received);
      maps.fifo_highwater.at(x, y) = static_cast<double>(cs.fifo_highwater);
      maps.ramp_highwater.at(x, y) = static_cast<double>(cs.ramp_highwater);
      const wse::RouterStats& rs = fabric.router_stats(x, y);
      maps.router_forwards.at(x, y) =
          static_cast<double>(rs.flits_forwarded);
      maps.router_highwater.at(x, y) =
          static_cast<double>(rs.queue_highwater);
      maps.fault_events.at(x, y) =
          static_cast<double>(fabric.fault_injections(x, y));
      using wse::Dir;
      maps.link_words_n.at(x, y) = static_cast<double>(
          rs.link_words[static_cast<std::size_t>(Dir::North)]);
      maps.link_words_s.at(x, y) = static_cast<double>(
          rs.link_words[static_cast<std::size_t>(Dir::South)]);
      maps.link_words_e.at(x, y) = static_cast<double>(
          rs.link_words[static_cast<std::size_t>(Dir::East)]);
      maps.link_words_w.at(x, y) = static_cast<double>(
          rs.link_words[static_cast<std::size_t>(Dir::West)]);
    }
  }
  return maps;
}

std::vector<Heatmap> profiler_heatmaps(const Profiler& prof) {
  const int w = prof.width();
  const int h = prof.height();
  std::vector<Heatmap> maps;
  maps.reserve(kNumCycleCats);
  for (int c = 0; c < kNumCycleCats; ++c) {
    maps.emplace_back(
        std::string("prof_") + to_string(static_cast<CycleCat>(c)), w, h);
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const TileProfile& t = prof.tile(x, y);
      if (!t.configured) continue;
      for (int c = 0; c < kNumCycleCats; ++c) {
        maps[static_cast<std::size_t>(c)].at(x, y) =
            static_cast<double>(t.cat_total(c));
      }
    }
  }
  return maps;
}

namespace {

bool write_heatmap_list(const std::vector<const Heatmap*>& maps,
                        const std::string& dir, const std::string& prefix,
                        std::string* error, std::string* actual_prefix) {
  if (!ensure_directory(dir, error)) return false;
  // Claim the full stem (dir + prefix) once per fabric, so every CSV of
  // one fabric shares one suffix and a second fabric using the same
  // prefix lands on `<prefix>_2_*` instead of clobbering the first.
  const std::string stem = claim_output_stem(dir + "/" + prefix);
  const std::string used_prefix = stem.substr(dir.size() + 1);
  if (actual_prefix != nullptr) *actual_prefix = used_prefix;
  for (const Heatmap* m : maps) {
    const std::string path = stem + "_" + m->name + ".csv";
    if (!write_text_file(path, m->to_csv(), error)) return false;
  }
  return true;
}

} // namespace

bool write_heatmap_csvs(const FabricHeatmaps& maps, const std::string& dir,
                        const std::string& prefix, std::string* error,
                        std::string* actual_prefix) {
  return write_heatmap_list(maps.all(), dir, prefix, error, actual_prefix);
}

bool write_heatmap_csvs(const std::vector<Heatmap>& maps,
                        const std::string& dir, const std::string& prefix,
                        std::string* error, std::string* actual_prefix) {
  std::vector<const Heatmap*> ptrs;
  ptrs.reserve(maps.size());
  for (const Heatmap& m : maps) ptrs.push_back(&m);
  return write_heatmap_list(ptrs, dir, prefix, error, actual_prefix);
}

} // namespace wss::telemetry
