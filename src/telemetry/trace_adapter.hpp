#pragma once

// Bridges the fabric simulator's cycle-stamped wse::Tracer stream and the
// host-side SpanTracer into one Chrome trace-event JSON file (Perfetto /
// chrome://tracing). Host spans render as pid 0 ("host"); each fabric
// tracer renders as its own pid with one thread track per tile, with
// TaskStart/TaskEnd pairs converted to complete ("X") slices, stalls and
// instruction retirements to instant events. Cycles convert to trace
// microseconds through the architecture clock so the simulator timeline
// and host wall-clock spans share one time axis (they are different
// clocks; the shared axis is for shape, not cross-correlation).

#include <cstdint>
#include <string>
#include <vector>

namespace wss::wse {
class Tracer;
}

namespace wss::telemetry {

class SpanTracer;

/// One simulated-fabric event stream to merge into a trace file.
struct FabricTraceSource {
  const wse::Tracer* tracer = nullptr;
  double clock_hz = 1e9;   ///< cycle -> time conversion
  std::string name = "fabric"; ///< Perfetto process name
};

/// Render a combined Chrome trace-event JSON document. Either side may be
/// null/empty.
[[nodiscard]] std::string chrome_trace_json(
    const SpanTracer* host, const std::vector<FabricTraceSource>& fabrics);

/// Write chrome_trace_json(...) to `path`. Returns false + `*error` on
/// I/O failure.
bool write_chrome_trace(const std::string& path, const SpanTracer* host,
                        const std::vector<FabricTraceSource>& fabrics,
                        std::string* error = nullptr);

} // namespace wss::telemetry
