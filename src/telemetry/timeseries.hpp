#pragma once

// Cycle-windowed time series for the fabric simulator (docs/TIMESERIES.md).
//
// End-of-run telemetry (metrics snapshots, profiler totals, post-mortem
// bundles) describes a run after it finished; the time series describes it
// *while it happens*. A TimeSeriesSampler attached via Fabric::set_sampler
// records, every K cycles (WSS_SAMPLE_CYCLES, default off), one compact
// frame: windowed deltas of the monotone activity counters (link
// transfers, router forwards, core instr/stall/idle cycles, words moved,
// faults) and of the profiler's phase x category matrix, plus
// instantaneous gauges (router queue occupancy, FIFO high-water marks,
// per-phase tile counts, iteration progress). Frames land in a bounded
// in-memory ring flushed to a versioned `wss.timeseries/1` JSON file that
// wss_top renders live and wss_inspect self-checks/diffs in CI.
//
// Determinism and non-perturbation: the fabric collects every sample from
// the *serial tail* of Fabric::step(), after all row bands have merged —
// the same quiescent point where stats_.cycles advances — so frames are
// bit-identical at any WSS_SIM_THREADS by construction, and collection
// only reads simulated state (tests/telemetry/timeseries_test.cpp proves
// result bits, cycle counts and heatmaps are identical sampler-on/off).
//
// Like profiler.hpp and flightrec.hpp, the recording surface is
// header-only on purpose: wss_wse does not link wss_telemetry, so
// fabric.cpp may include this header and call the inline recorder without
// creating a library cycle. Analysis (JSON emit/load, self-check, frame
// diffing, sparkline rendering) lives in timeseries.cpp inside
// wss_telemetry.

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/profiler.hpp"
#include "wse/types.hpp"

namespace wss::telemetry {

namespace json {
class Writer; // telemetry/json.hpp
}
namespace jsonparse {
struct Value; // telemetry/json_parse.hpp
}
class ScalarHistory; // telemetry/postmortem.hpp

/// Timeseries schema identifier; bump on breaking layout changes.
inline constexpr const char* kTimeseriesSchema = "wss.timeseries/1";

/// Analytic-model expectations the health engine (docs/HEALTH.md) gates
/// frames against: expected cycles per tile per solver iteration for each
/// program phase. A phase left at 0 is ungated (e.g. Control, whose fixed
/// per-iteration overhead is too small a denominator for a robust relative
/// gate). Builders live in src/perfmodel/health_expectations.hpp —
/// wss_telemetry cannot link wss_perfmodel, so the model side constructs
/// this struct and hands it to TimeSeriesSampler::set_expectations; the
/// series JSON then carries it, making drift alerts computable from the
/// artifact alone (wss_top replay and --follow need no side channel).
struct HealthExpectations {
  std::string model; ///< provenance label, e.g. "cs1" or "stencilfe"
  std::array<double, wse::kNumProgPhases> phase_cycles{};

  /// True when at least one phase is gated.
  [[nodiscard]] bool any() const {
    for (double v : phase_cycles) {
      if (v > 0.0) return true;
    }
    return false;
  }

  [[nodiscard]] bool operator==(const HealthExpectations& o) const {
    return model == o.model && phase_cycles == o.phase_cycles;
  }
};

/// Modeled traffic for one declared network flow: expected link-word
/// count per solver iteration / stencil generation. Builders live in
/// src/perfmodel/flow_expectations.hpp (same layering as
/// HealthExpectations above); TimeSeriesSampler::set_net_expectations
/// attaches them, the series JSON carries them, and the health engine's
/// flow_bandwidth_drift gate evaluates them offline (docs/NETWORK.md).
struct NetFlowExpectation {
  std::string flow;
  double words_per_iteration = 0.0; ///< <= 0 means ungated
  bool exact = false; ///< analytically exact (stencilfe legs) vs anchored

  [[nodiscard]] bool operator==(const NetFlowExpectation& o) const {
    return flow == o.flow && words_per_iteration == o.words_per_iteration &&
           exact == o.exact;
  }
};

/// Cumulative snapshot of fabric-wide counters and gauges, collected by
/// Fabric::step()'s serial tail (row-major aggregation over tiles). The
/// sampler turns consecutive snapshots into windowed frames.
struct TimeSeriesSample {
  std::uint64_t cycle = 0;
  int threads = 0;
  // Monotone cumulative counters (frame = delta vs the previous sample).
  std::uint64_t link_transfers = 0;
  std::uint64_t flits_forwarded = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t instr_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t idle_cycles = 0;
  std::uint64_t task_invocations = 0;
  std::uint64_t fault_total = 0;
  // Instantaneous gauges (frame copies them).
  std::uint64_t router_queued_flits = 0; ///< sum of queued flits, all tiles
  std::uint64_t router_queue_peak = 0;   ///< max queued flits on one tile
  std::uint64_t fifo_highwater = 0;      ///< max software-FIFO high-water
  std::uint64_t ramp_highwater = 0;      ///< max ramp-queue high-water
  std::uint64_t max_iteration = 0;       ///< max core iteration counter
  std::uint32_t done_tiles = 0;
  std::array<std::uint32_t, wse::kNumProgPhases> phase_tiles{};
  // Profiler phase/category cumulative totals (valid iff has_profiler).
  bool has_profiler = false;
  std::array<std::uint64_t, wse::kNumProgPhases> prof_phase{};
  std::array<std::uint64_t, kNumCycleCats> prof_cat{};
  // Network-observatory rollup (valid iff has_net; filled by an attached
  // telemetry::NetMonitor — see netmon.hpp). Vectors are index-aligned
  // with the monitor's declared flow names ([0] = "control").
  bool has_net = false;
  std::uint64_t net_cycles = 0; ///< cycles observed since monitor attach
  std::vector<std::uint64_t> flow_words;   ///< cumulative per flow
  std::vector<std::uint64_t> flow_blocked; ///< backpressure-blocked cycles
  std::array<std::uint64_t, 4> net_dir_words{}; ///< cumulative per mesh dir
  std::uint64_t net_peak_queue = 0; ///< max link backlog halfwords seen
  // Hottest link by cumulative words, and the most stall-attributed link
  // (first in row-major tile-then-dir scan order on ties).
  std::uint64_t net_hot_words = 0;
  std::int32_t net_hot_x = 0, net_hot_y = 0, net_hot_dir = 0;
  std::uint64_t net_stall_cycles = 0;
  std::int32_t net_stall_x = 0, net_stall_y = 0, net_stall_dir = 0;
};

/// One recorded frame: the window (cycle - window_cycles, cycle]. Counter
/// fields are windowed deltas; gauge fields are the values at `cycle`.
struct TimeSeriesFrame {
  std::uint64_t cycle = 0;
  std::uint64_t window_cycles = 0;
  std::uint64_t link_transfers = 0;
  std::uint64_t flits_forwarded = 0;
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t instr_cycles = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t idle_cycles = 0;
  std::uint64_t task_invocations = 0;
  std::uint64_t faults = 0;
  std::uint64_t router_queued_flits = 0;
  std::uint64_t router_queue_peak = 0;
  std::uint64_t fifo_highwater = 0;
  std::uint64_t ramp_highwater = 0;
  std::uint64_t max_iteration = 0;
  std::uint32_t done_tiles = 0;
  std::array<std::uint32_t, wse::kNumProgPhases> phase_tiles{};
  bool has_profiler = false;
  std::array<std::uint64_t, wse::kNumProgPhases> prof_phase{};
  std::array<std::uint64_t, kNumCycleCats> prof_cat{};
  // Network-observatory block (valid iff has_net): windowed per-flow /
  // per-direction word deltas plus cumulative hotspot gauges.
  bool has_net = false;
  std::uint64_t net_cycles = 0;
  std::vector<std::uint64_t> flow_words;
  std::vector<std::uint64_t> flow_blocked;
  std::array<std::uint64_t, 4> net_dir_words{};
  std::uint64_t net_peak_queue = 0;
  std::uint64_t net_hot_words = 0;
  std::int32_t net_hot_x = 0, net_hot_y = 0, net_hot_dir = 0;
  std::uint64_t net_stall_cycles = 0;
  std::int32_t net_stall_x = 0, net_stall_y = 0, net_stall_dir = 0;

  [[nodiscard]] bool operator==(const TimeSeriesFrame& o) const {
    return cycle == o.cycle && window_cycles == o.window_cycles &&
           link_transfers == o.link_transfers &&
           flits_forwarded == o.flits_forwarded &&
           words_sent == o.words_sent && words_received == o.words_received &&
           instr_cycles == o.instr_cycles && stall_cycles == o.stall_cycles &&
           idle_cycles == o.idle_cycles &&
           task_invocations == o.task_invocations && faults == o.faults &&
           router_queued_flits == o.router_queued_flits &&
           router_queue_peak == o.router_queue_peak &&
           fifo_highwater == o.fifo_highwater &&
           ramp_highwater == o.ramp_highwater &&
           max_iteration == o.max_iteration && done_tiles == o.done_tiles &&
           phase_tiles == o.phase_tiles && has_profiler == o.has_profiler &&
           prof_phase == o.prof_phase && prof_cat == o.prof_cat &&
           has_net == o.has_net && net_cycles == o.net_cycles &&
           flow_words == o.flow_words && flow_blocked == o.flow_blocked &&
           net_dir_words == o.net_dir_words &&
           net_peak_queue == o.net_peak_queue &&
           net_hot_words == o.net_hot_words && net_hot_x == o.net_hot_x &&
           net_hot_y == o.net_hot_y && net_hot_dir == o.net_hot_dir &&
           net_stall_cycles == o.net_stall_cycles &&
           net_stall_x == o.net_stall_x && net_stall_y == o.net_stall_y &&
           net_stall_dir == o.net_stall_dir;
  }
};

/// The sampler: a bounded ring of frames fed by the fabric. Attach with
/// Fabric::set_sampler (which captures the delta baseline), let the fabric
/// tick it every `interval_cycles` cycles, and close the final partial
/// window with Fabric::sample_now() before flushing to disk.
class TimeSeriesSampler {
public:
  /// Frames retained before the ring drops the oldest. 2^16 frames at the
  /// minimum interval of 1 is ~9 MB; at realistic intervals the ring never
  /// wraps and frames_dropped() stays 0 (the conservation tests rely on
  /// that, and self-check only enforces delta/total agreement when it is).
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TimeSeriesSampler(std::uint64_t interval_cycles,
                             std::size_t capacity = kDefaultCapacity)
      : interval_(interval_cycles), capacity_(capacity > 0 ? capacity : 1) {}

  // --- recording (inline; called by the fabric's serial tail) ---

  /// True when the fabric should collect a sample after finishing `cycle`
  /// cycles (called with the already-incremented stats_.cycles).
  [[nodiscard]] bool due(std::uint64_t cycle) const {
    return interval_ != 0 && cycle % interval_ == 0;
  }

  /// Capture the delta baseline at attach time. Frames record activity
  /// *since attachment*, so a profiler attached alongside the sampler sums
  /// exactly: sum over frames of prof deltas == profiler totals.
  void on_attach(int width, int height, const TimeSeriesSample& baseline) {
    width_ = width;
    height_ = height;
    prev_ = baseline;
    baseline_cycle_ = baseline.cycle;
    has_baseline_ = true;
  }

  /// Record one frame from a cumulative snapshot. Counters that shrank
  /// (a mid-run Fabric::reset_control() zeroes core stats) restart the
  /// delta from the new cumulative value instead of underflowing.
  void record(const TimeSeriesSample& s) {
    const auto delta = [](std::uint64_t cur, std::uint64_t prev) {
      return cur >= prev ? cur - prev : cur;
    };
    TimeSeriesFrame f;
    f.cycle = s.cycle;
    f.window_cycles = delta(s.cycle, prev_.cycle);
    if (f.window_cycles == 0) return; // no cycles elapsed: nothing to frame
    f.link_transfers = delta(s.link_transfers, prev_.link_transfers);
    f.flits_forwarded = delta(s.flits_forwarded, prev_.flits_forwarded);
    f.words_sent = delta(s.words_sent, prev_.words_sent);
    f.words_received = delta(s.words_received, prev_.words_received);
    f.instr_cycles = delta(s.instr_cycles, prev_.instr_cycles);
    f.stall_cycles = delta(s.stall_cycles, prev_.stall_cycles);
    f.idle_cycles = delta(s.idle_cycles, prev_.idle_cycles);
    f.task_invocations = delta(s.task_invocations, prev_.task_invocations);
    f.faults = delta(s.fault_total, prev_.fault_total);
    f.router_queued_flits = s.router_queued_flits;
    f.router_queue_peak = s.router_queue_peak;
    f.fifo_highwater = s.fifo_highwater;
    f.ramp_highwater = s.ramp_highwater;
    f.max_iteration = s.max_iteration;
    f.done_tiles = s.done_tiles;
    f.phase_tiles = s.phase_tiles;
    f.has_profiler = s.has_profiler;
    if (s.has_profiler) {
      for (std::size_t p = 0; p < f.prof_phase.size(); ++p) {
        f.prof_phase[p] = delta(s.prof_phase[p], prev_.prof_phase[p]);
      }
      for (std::size_t c = 0; c < f.prof_cat.size(); ++c) {
        f.prof_cat[c] = delta(s.prof_cat[c], prev_.prof_cat[c]);
      }
    }
    f.has_net = s.has_net;
    if (s.has_net) {
      // A monitor attached mid-run makes the previous sample's vectors
      // shorter (or empty) — missing baseline entries delta from zero.
      const auto vec_prev = [](const std::vector<std::uint64_t>& prev,
                               std::size_t i) {
        return i < prev.size() ? prev[i] : std::uint64_t{0};
      };
      f.flow_words.resize(s.flow_words.size());
      for (std::size_t i = 0; i < s.flow_words.size(); ++i) {
        f.flow_words[i] = delta(s.flow_words[i], vec_prev(prev_.flow_words, i));
      }
      f.flow_blocked.resize(s.flow_blocked.size());
      for (std::size_t i = 0; i < s.flow_blocked.size(); ++i) {
        f.flow_blocked[i] =
            delta(s.flow_blocked[i], vec_prev(prev_.flow_blocked, i));
      }
      for (std::size_t d = 0; d < f.net_dir_words.size(); ++d) {
        f.net_dir_words[d] = delta(s.net_dir_words[d], prev_.net_dir_words[d]);
      }
      f.net_cycles = s.net_cycles;
      f.net_peak_queue = s.net_peak_queue;
      f.net_hot_words = s.net_hot_words;
      f.net_hot_x = s.net_hot_x;
      f.net_hot_y = s.net_hot_y;
      f.net_hot_dir = s.net_hot_dir;
      f.net_stall_cycles = s.net_stall_cycles;
      f.net_stall_x = s.net_stall_x;
      f.net_stall_y = s.net_stall_y;
      f.net_stall_dir = s.net_stall_dir;
    }
    prev_ = s;
    threads_ = s.threads;
    if (frames_.size() >= capacity_) {
      frames_.pop_front();
      ++dropped_;
    }
    frames_.push_back(f);
  }

  /// Cycle of the last recorded frame (the baseline cycle before any frame
  /// exists) — Fabric::sample_now() skips duplicate/empty closing frames.
  [[nodiscard]] std::uint64_t last_cycle() const {
    return frames_.empty() ? baseline_cycle_ : frames_.back().cycle;
  }

  // --- host-side configuration / inspection ---

  void set_program(std::string program) { program_ = std::move(program); }
  [[nodiscard]] const std::string& program() const { return program_; }
  /// Attach analytic-model expectations (perfmodel builders); flushed into
  /// the series JSON and consumed by the health engine's drift gate.
  void set_expectations(HealthExpectations e) {
    expectations_ = std::move(e);
    has_expectations_ = true;
  }
  [[nodiscard]] const HealthExpectations* expectations() const {
    return has_expectations_ ? &expectations_ : nullptr;
  }
  /// Declared network-flow names, index-aligned with the frames' net
  /// vectors (Fabric::set_net_monitor snapshots them from the monitor's
  /// flow table at attach time).
  void set_net_flows(std::vector<std::string> names) {
    net_flows_ = std::move(names);
  }
  [[nodiscard]] const std::vector<std::string>& net_flows() const {
    return net_flows_;
  }
  /// Attach per-flow traffic expectations (perfmodel builders); flushed
  /// into the series JSON and consumed by flow_bandwidth_drift.
  void set_net_expectations(std::vector<NetFlowExpectation> e) {
    net_expectations_ = std::move(e);
  }
  [[nodiscard]] const std::vector<NetFlowExpectation>& net_expectations()
      const {
    return net_expectations_;
  }
  [[nodiscard]] std::uint64_t interval() const { return interval_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] bool attached_once() const { return has_baseline_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return dropped_; }
  [[nodiscard]] const std::deque<TimeSeriesFrame>& frames() const {
    return frames_;
  }

  /// Drop every frame and the dropped count; the baseline survives, so
  /// recording can continue for a fresh window set.
  void clear() {
    frames_.clear();
    dropped_ = 0;
  }

private:
  std::uint64_t interval_;
  std::size_t capacity_;
  std::string program_;
  int width_ = 0;
  int height_ = 0;
  int threads_ = 0;
  bool has_expectations_ = false;
  HealthExpectations expectations_;
  std::vector<std::string> net_flows_;
  std::vector<NetFlowExpectation> net_expectations_;
  bool has_baseline_ = false;
  std::uint64_t baseline_cycle_ = 0;
  TimeSeriesSample prev_;
  std::deque<TimeSeriesFrame> frames_;
  std::uint64_t dropped_ = 0;
};

// --- env knobs (timeseries.cpp; strict parse via common/env.hpp) --------

/// WSS_SAMPLE_CYCLES: frame interval in cycles (0 = sampling off).
[[nodiscard]] std::uint64_t sample_cycles();

/// WSS_TIMESERIES_OUT: output file for the flushed series ("" = unset).
[[nodiscard]] std::string timeseries_out();

// --- flushing / loading / analysis (timeseries.cpp) ---------------------

/// Host-side solver scalar to correlate with the cycle windows (residual,
/// rho, omega per iteration — fed from the existing ScalarHistory hook).
struct TimeSeriesScalar {
  std::uint64_t iteration = 0;
  std::string name;
  double value = 0.0;
};

/// A loaded `wss.timeseries/1` file.
struct TimeSeries {
  std::string schema;
  std::string program;
  int width = 0, height = 0, threads = 0;
  std::uint64_t sample_cycles = 0;
  std::uint64_t frames_dropped = 0;
  std::vector<TimeSeriesFrame> frames;
  std::vector<TimeSeriesScalar> scalars;
  std::uint64_t scalars_dropped = 0;
  bool has_expectations = false;
  HealthExpectations expectations;
  /// Network-observatory sidecar (empty when no NetMonitor was attached):
  /// declared flow names aligned with the frames' net vectors, plus any
  /// per-flow traffic expectations.
  std::vector<std::string> net_flows;
  std::vector<NetFlowExpectation> net_expectations;
};

/// In-memory snapshot of a live sampler (+ optional solver scalars) in the
/// loaded-series shape, so the health engine evaluates identical inputs
/// whether fed from a running fabric or a flushed artifact.
[[nodiscard]] TimeSeries snapshot_timeseries(const TimeSeriesSampler& sampler,
                                             const ScalarHistory* scalars);

/// Render the series JSON; `scalars` (may be null) embeds the solver
/// scalar history alongside the frames.
[[nodiscard]] std::string build_timeseries_json(
    const TimeSeriesSampler& sampler, const ScalarHistory* scalars = nullptr);

/// Write the series to `path` (parent directories created). Returns false
/// + `*error` on I/O failure.
bool write_timeseries(const std::string& path, const TimeSeriesSampler& sampler,
                      const ScalarHistory* scalars = nullptr,
                      std::string* error = nullptr);

/// Parse a series file. Returns false + `*error` (with context) on
/// unreadable files, JSON errors, or schema mismatch.
bool load_timeseries(const std::string& path, TimeSeries* out,
                     std::string* error = nullptr);

/// Schema guard for CI: schema tag, chronological frames, positive
/// windows, per-frame profiler phase/category conservation, tile-count
/// bounds. Returns false + `*error` on drift.
bool self_check_timeseries(const TimeSeries& ts, std::string* error = nullptr);

/// First divergent frame between two series of the same program: the
/// earliest frame index at which the two disagree (mirrors the
/// post-mortem diff UX).
struct FrameDivergence {
  bool found = false;
  std::size_t index = 0;    ///< frame index of the first difference
  std::uint64_t cycle = 0;  ///< that frame's cycle (min of the two sides)
  std::string a_frame;      ///< one-line summary ("-" when absent)
  std::string b_frame;
  std::string note;         ///< e.g. program/interval mismatch warning
};

[[nodiscard]] FrameDivergence first_frame_divergence(const TimeSeries& a,
                                                     const TimeSeries& b);
[[nodiscard]] std::string pretty_frame_divergence(const FrameDivergence& d);

/// One-line frame summary used by the diff and the print mode.
[[nodiscard]] std::string summarize_frame(const TimeSeriesFrame& f);

/// ASCII sparkline of `values` resampled to `width` columns (ramp
/// " .:-=+*#%@", scaled to the series max; empty input -> all blanks).
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    std::size_t width);

/// Terminal rendering: header plus per-category utilization, per-phase
/// throughput, queue/FIFO pressure, fault activity and residual
/// convergence sparklines, ending with a table of the last `last_k`
/// frames. Shared by wss_top (replay + follow) and wss_inspect.
[[nodiscard]] std::string pretty_timeseries(const TimeSeries& ts,
                                            std::size_t last_k = 8);

/// Frame emit/parse shared with the post-mortem bundle (which embeds the
/// tail of the active series).
void emit_timeseries_frame(json::Writer& w, const TimeSeriesFrame& f);
bool parse_timeseries_frame(const jsonparse::Value& v, TimeSeriesFrame* out);

} // namespace wss::telemetry
