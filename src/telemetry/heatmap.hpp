#pragma once

// Per-tile fabric heatmaps: 2D grids of per-core / per-router activity
// counters (instructions retired, stall/idle cycles, FIFO and ramp-queue
// high-water marks, link transfers) harvested from a simulated
// wse::Fabric after a run. Exported as CSV grids (one row per fabric row,
// for plotting) and as quick ASCII intensity maps for terminal triage —
// the "which column of tiles is starving?" question should not require
// leaving the shell.

#include <string>
#include <vector>

namespace wss::wse {
class Fabric;
}

namespace wss::telemetry {

struct Heatmap {
  std::string name;
  int width = 0;
  int height = 0;
  std::vector<double> cells; ///< row-major: cells[y*width + x]

  Heatmap() = default;
  Heatmap(std::string n, int w, int h)
      : name(std::move(n)), width(w), height(h),
        cells(static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
              0.0) {}

  [[nodiscard]] double& at(int x, int y) {
    return cells[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] double at(int x, int y) const {
    return cells[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// `height` lines of `width` comma-separated values, with a leading
  /// `# name,width,height` comment line.
  [[nodiscard]] std::string to_csv() const;

  /// Terminal intensity map (10-level ramp, linearly scaled to max) with a
  /// legend; fabrics wider than `max_cols` are column-subsampled.
  [[nodiscard]] std::string ascii(int max_cols = 100) const;
};

/// Everything harvested from one fabric.
struct FabricHeatmaps {
  Heatmap instr_cycles;      ///< datapath-busy cycles per tile
  Heatmap stall_cycles;      ///< blocked-with-work cycles per tile
  Heatmap idle_cycles;       ///< nothing-to-do cycles per tile
  Heatmap task_invocations;  ///< scheduler task starts per tile
  Heatmap elements;          ///< tensor elements processed per tile
  Heatmap words_sent;        ///< fabric words injected per tile
  Heatmap words_received;    ///< fabric words delivered per tile
  Heatmap fifo_highwater;    ///< max software-FIFO occupancy per tile
  Heatmap ramp_highwater;    ///< max ramp-queue occupancy per tile
  Heatmap router_forwards;   ///< flits forwarded through the router
  Heatmap router_highwater;  ///< max router output-queue occupancy
  Heatmap fault_events;      ///< injected faults per tile (fault plans)
  Heatmap link_words_n;      ///< flits moved out the North link per tile
  Heatmap link_words_s;      ///< flits moved out the South link per tile
  Heatmap link_words_e;      ///< flits moved out the East link per tile
  Heatmap link_words_w;      ///< flits moved out the West link per tile

  [[nodiscard]] std::vector<const Heatmap*> all() const;
};

/// Read every per-tile counter out of a fabric (cheap: the counters are
/// maintained during the run regardless; this only copies them).
[[nodiscard]] FabricHeatmaps collect_heatmaps(const wse::Fabric& fabric);

class Profiler;

/// One heatmap per cycle-attribution category of a telemetry::Profiler
/// (docs/PROFILING.md), summed over program phases: `prof_compute`,
/// `prof_send_blocked`, `prof_recv_starved`, `prof_router_stall`,
/// `prof_fault_stall`, `prof_idle`. Unconfigured tiles read 0, so the
/// maps drop straight onto the fabric-counter layers above.
[[nodiscard]] std::vector<Heatmap> profiler_heatmaps(const Profiler& prof);

/// Write one `<dir>/<prefix>_<name>.csv` per heatmap, creating `dir` if
/// needed. Returns false + `*error` on the first failure.
///
/// The prefix is claimed process-wide (telemetry::claim_output_stem): if a
/// previous call in this process already wrote heatmaps under the same
/// `<dir>/<prefix>`, this call transparently writes under `<prefix>_2`
/// (`_3`, ...) instead, so two fabrics simulated in one process never
/// cross-contaminate each other's CSV grids. `*actual_prefix` (if
/// non-null) receives the prefix actually used.
bool write_heatmap_csvs(const FabricHeatmaps& maps, const std::string& dir,
                        const std::string& prefix,
                        std::string* error = nullptr,
                        std::string* actual_prefix = nullptr);

/// Same contract for an ad-hoc list of heatmaps (e.g. profiler_heatmaps).
bool write_heatmap_csvs(const std::vector<Heatmap>& maps,
                        const std::string& dir, const std::string& prefix,
                        std::string* error = nullptr,
                        std::string* actual_prefix = nullptr);

} // namespace wss::telemetry
