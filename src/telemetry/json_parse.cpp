#include "telemetry/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace wss::telemetry::jsonparse {

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParseResult run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return fail();
    }
    ParseResult r;
    r.value = std::move(v);
    return r;
  }

private:
  ParseResult fail() {
    ParseResult r;
    r.error = error_.empty() ? "parse error" : error_;
    r.error += " at byte " + std::to_string(pos_);
    return r;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool literal(const char* word, std::size_t n) {
    if (text_.size() - pos_ < n ||
        std::memcmp(text_.data() + pos_, word, n) != 0) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parse_value(Value& out) {
    if (at_end()) {
      error_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = Kind::String;
        return parse_string(out.string);
      }
      case 't':
        out.kind = Kind::Bool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = Kind::Bool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = Kind::Null;
        return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    bool digits = false;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      digits = true;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        digits = true;
      }
    }
    if (digits && !at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      bool exp_digits = false;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) {
        error_ = "malformed exponent";
        return false;
      }
    }
    if (!digits) {
      error_ = "invalid number";
      pos_ = start;
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = Kind::Number;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_; // opening quote
    out.clear();
    while (true) {
      if (at_end()) {
        error_ = "unterminated string";
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        error_ = "raw control character in string";
        return false;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) {
        error_ = "unterminated escape";
        return false;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) {
              error_ = "truncated \\u escape";
              return false;
            }
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error_ = "bad hex digit in \\u escape";
              return false;
            }
          }
          // Encode as UTF-8 (surrogate pairs are passed through as-is;
          // the telemetry emitters never produce them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          error_ = "invalid escape";
          return false;
      }
    }
  }

  bool parse_array(Value& out) {
    ++pos_; // '['
    out.kind = Kind::Array;
    out.array = std::make_shared<Values>();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.array->push_back(std::move(v));
      skip_ws();
      if (at_end()) {
        error_ = "unterminated array";
        return false;
      }
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        error_ = "expected ',' or ']'";
        return false;
      }
    }
  }

  bool parse_object(Value& out) {
    ++pos_; // '{'
    out.kind = Kind::Object;
    out.object = std::make_shared<Members>();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') {
        error_ = "expected object key";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (at_end() || text_[pos_] != ':') {
        error_ = "expected ':'";
        return false;
      }
      ++pos_;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object->emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) {
        error_ = "unterminated object";
        return false;
      }
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        error_ = "expected ',' or '}'";
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

} // namespace

ParseResult parse(std::string_view text) { return Parser(text).run(); }

} // namespace wss::telemetry::jsonparse
