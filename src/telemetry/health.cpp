// Health-engine evaluation and the wss.alerts/1 artifact (docs/HEALTH.md).
// The rules read recorded frames/scalars only — no fabric hooks — so the
// engine is non-perturbing and bit-identical wherever the frames are.

#include "telemetry/health.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/postmortem.hpp"

namespace wss::telemetry {

const char* to_string(AlertSeverity s) {
  switch (s) {
    case AlertSeverity::Info: return "info";
    case AlertSeverity::Warn: return "warn";
    case AlertSeverity::Critical: return "critical";
  }
  return "unknown";
}

bool parse_alert_severity(const std::string& text, AlertSeverity* out) {
  if (text == "info") {
    *out = AlertSeverity::Info;
  } else if (text == "warn") {
    *out = AlertSeverity::Warn;
  } else if (text == "critical") {
    *out = AlertSeverity::Critical;
  } else {
    return false;
  }
  return true;
}

bool health_enabled() { return env::parse_int("WSS_HEALTH", 1, 0, 1) != 0; }

HealthConfig health_config() {
  HealthConfig cfg;
  cfg.tol_pct =
      static_cast<double>(env::parse_int("WSS_HEALTH_TOL_PCT", 50, 1, 10000));
  cfg.warmup_frames = env::parse_u64("WSS_HEALTH_WARMUP", 2);
  cfg.queue_windows = env::parse_u64("WSS_HEALTH_QUEUE_WINDOWS", 4);
  cfg.fault_burst = env::parse_u64("WSS_HEALTH_FAULT_BURST", 16);
  cfg.residual_iters = env::parse_u64("WSS_HEALTH_RESIDUAL_ITERS", 10);
  cfg.congestion_floor =
      static_cast<double>(
          env::parse_int("WSS_HEALTH_CONGESTION_PCT", 50, 1, 100)) /
      100.0;
  return cfg;
}

// --- detectors -----------------------------------------------------------

namespace {

void push_input(HealthAlert* a, const char* name, double value) {
  a->inputs.push_back(AlertInput{name, value});
}

/// (a) perfmodel expectation gates: cumulative per-phase cycle attribution
/// divided by tiles x iterations, against the analytic projection carried
/// in the series. Only phases the builder gated (expectation > 0) and only
/// once the run has enough iterations for the ratio to be meaningful.
void check_perfmodel_drift(const TimeSeries& ts, const HealthConfig& cfg,
                           std::vector<HealthAlert>* out) {
  if (!ts.has_expectations || !ts.expectations.any()) return;
  const std::uint64_t tiles = static_cast<std::uint64_t>(ts.width) *
                              static_cast<std::uint64_t>(ts.height);
  if (tiles == 0 || ts.frames.empty()) return;
  const std::uint64_t iters = ts.frames.back().max_iteration;
  if (iters < cfg.min_iterations) return;

  std::array<std::uint64_t, wse::kNumProgPhases> phase_cycles{};
  std::size_t first_prof = ts.frames.size();
  std::size_t last_prof = 0;
  bool any_prof = false;
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    const TimeSeriesFrame& f = ts.frames[i];
    if (!f.has_profiler) continue;
    if (!any_prof) first_prof = i;
    any_prof = true;
    last_prof = i;
    for (std::size_t p = 0; p < phase_cycles.size(); ++p) {
      phase_cycles[p] += f.prof_phase[p];
    }
  }
  if (!any_prof) return;

  const double denom = static_cast<double>(tiles) * static_cast<double>(iters);
  for (int p = 0; p < wse::kNumProgPhases; ++p) {
    const double expect =
        ts.expectations.phase_cycles[static_cast<std::size_t>(p)];
    if (expect <= 0.0) continue; // ungated phase
    const double measured =
        static_cast<double>(phase_cycles[static_cast<std::size_t>(p)]) / denom;
    const double delta_pct = (measured - expect) / expect * 100.0;
    // One-sided gate: only slowdowns are a health problem. The analytic
    // models overshoot some phases on small fabrics (allreduce runs ~+34%
    // of model on the 6x6 Section-V anchor), so the default tolerance must
    // clear that; a run *faster* than the model never alerts.
    if (delta_pct <= cfg.tol_pct) continue;
    HealthAlert a;
    a.rule = "perfmodel_drift";
    a.severity = delta_pct > 2.0 * cfg.tol_pct ? AlertSeverity::Critical
                                               : AlertSeverity::Warn;
    std::ostringstream d;
    d << wse::to_string(static_cast<wse::ProgPhase>(p)) << ": measured "
      << json::number(measured) << " cycles/tile/iter vs "
      << (ts.expectations.model.empty() ? "model" : ts.expectations.model)
      << " projection " << json::number(expect) << " ("
      << (delta_pct >= 0.0 ? "+" : "") << json::number(delta_pct)
      << "% beyond tol " << json::number(cfg.tol_pct) << "%)";
    a.detail = d.str();
    a.first_frame = first_prof;
    a.last_frame = last_prof;
    a.first_cycle = ts.frames[first_prof].cycle;
    a.last_cycle = ts.frames[last_prof].cycle;
    push_input(&a, "phase", static_cast<double>(p));
    push_input(&a, "measured_cycles_per_tile_iter", measured);
    push_input(&a, "model_cycles_per_tile_iter", expect);
    push_input(&a, "delta_pct", delta_pct);
    push_input(&a, "iterations", static_cast<double>(iters));
    out->push_back(std::move(a));
  }
}

/// (a2) per-flow bandwidth gates: cumulative per-flow link words divided
/// by solver iterations, against the traffic projection carried in the
/// series' net_expectations. One-sided like perfmodel_drift, but in the
/// opposite direction: only *under-delivery* is a health problem — a flow
/// moving fewer words per iteration than the route compiler declared means
/// traffic is being starved or dropped, while extra words (retries, wider
/// windows) are routine. Anchored (non-exact) projections use the same
/// tolerance; exact ones too, because even they see partial leading/
/// trailing iterations at the observation edges.
void check_flow_bandwidth_drift(const TimeSeries& ts, const HealthConfig& cfg,
                                std::vector<HealthAlert>* out) {
  if (ts.net_expectations.empty() || ts.net_flows.empty()) return;
  if (ts.frames.empty()) return;
  const std::uint64_t iters = ts.frames.back().max_iteration;
  if (iters < cfg.min_iterations) return;

  std::vector<std::uint64_t> totals(ts.net_flows.size(), 0);
  std::size_t first_net = ts.frames.size();
  std::size_t last_net = 0;
  bool any_net = false;
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    const TimeSeriesFrame& f = ts.frames[i];
    if (!f.has_net) continue;
    if (!any_net) first_net = i;
    any_net = true;
    last_net = i;
    for (std::size_t j = 0; j < totals.size() && j < f.flow_words.size();
         ++j) {
      totals[j] += f.flow_words[j];
    }
  }
  if (!any_net) return;

  for (const NetFlowExpectation& e : ts.net_expectations) {
    if (e.words_per_iteration <= 0.0) continue; // ungated flow
    std::size_t idx = ts.net_flows.size();
    for (std::size_t j = 0; j < ts.net_flows.size(); ++j) {
      if (ts.net_flows[j] == e.flow) {
        idx = j;
        break;
      }
    }
    if (idx == ts.net_flows.size()) continue; // projection for unknown flow
    const double measured = static_cast<double>(totals[idx]) /
                            static_cast<double>(iters);
    const double shortfall_pct =
        (e.words_per_iteration - measured) / e.words_per_iteration * 100.0;
    if (shortfall_pct <= cfg.tol_pct) continue;
    HealthAlert a;
    a.rule = "flow_bandwidth_drift";
    a.severity = shortfall_pct > 2.0 * cfg.tol_pct ? AlertSeverity::Critical
                                                   : AlertSeverity::Warn;
    std::ostringstream d;
    d << "flow '" << e.flow << "': measured " << json::number(measured)
      << " words/iter vs " << (e.exact ? "exact" : "anchored")
      << " projection " << json::number(e.words_per_iteration) << " (-"
      << json::number(shortfall_pct) << "% below, tol "
      << json::number(cfg.tol_pct) << "%)";
    a.detail = d.str();
    a.first_frame = first_net;
    a.last_frame = last_net;
    a.first_cycle = ts.frames[first_net].cycle;
    a.last_cycle = ts.frames[last_net].cycle;
    push_input(&a, "measured_words_per_iter", measured);
    push_input(&a, "model_words_per_iter", e.words_per_iteration);
    push_input(&a, "shortfall_pct", shortfall_pct);
    push_input(&a, "iterations", static_cast<double>(iters));
    out->push_back(std::move(a));
  }
}

/// (a3) link congestion: the most stall-attributed link spent more than
/// cfg.congestion_floor of the observed cycles with a backpressure-blocked
/// head flit. The floor is high on purpose (0.5): transient backpressure
/// is routine multiplexing on a healthy fabric, while a stalled router
/// pushes the links feeding it toward a ratio of 1.0. The alert names the
/// link — "(x,y)->D" is the out-link of tile (x,y) toward mesh dir D, so
/// the faulted/overloaded *destination* is one `step(D)` away.
void check_link_congestion(const TimeSeries& ts, const HealthConfig& cfg,
                           std::vector<HealthAlert>* out) {
  std::size_t first_net = ts.frames.size();
  std::size_t last_net = 0;
  bool any_net = false;
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    if (!ts.frames[i].has_net) continue;
    if (!any_net) first_net = i;
    any_net = true;
    last_net = i;
  }
  if (!any_net) return;
  // The hotspot gauges are cumulative, so the last net-bearing frame holds
  // the whole observation's worst link.
  const TimeSeriesFrame& f = ts.frames[last_net];
  if (f.net_cycles == 0 || f.net_stall_cycles == 0) return;
  const double ratio = static_cast<double>(f.net_stall_cycles) /
                       static_cast<double>(f.net_cycles);
  if (ratio <= cfg.congestion_floor) return;
  HealthAlert a;
  a.rule = "link_congestion";
  a.severity = ratio > 2.0 * cfg.congestion_floor ? AlertSeverity::Critical
                                                  : AlertSeverity::Warn;
  std::ostringstream d;
  d << "link (" << f.net_stall_x << "," << f.net_stall_y << ")->"
    << wse::to_string(static_cast<wse::Dir>(f.net_stall_dir))
    << " backpressure-blocked for " << f.net_stall_cycles << " of "
    << f.net_cycles << " observed cycles (ratio " << json::number(ratio)
    << " over floor " << json::number(cfg.congestion_floor)
    << "), peak backlog " << f.net_peak_queue << " halfwords";
  a.detail = d.str();
  a.first_frame = first_net;
  a.last_frame = last_net;
  a.first_cycle = ts.frames[first_net].cycle;
  a.last_cycle = ts.frames[last_net].cycle;
  push_input(&a, "stall_cycles", static_cast<double>(f.net_stall_cycles));
  push_input(&a, "observed_cycles", static_cast<double>(f.net_cycles));
  push_input(&a, "ratio", ratio);
  push_input(&a, "floor", cfg.congestion_floor);
  push_input(&a, "link_x", static_cast<double>(f.net_stall_x));
  push_input(&a, "link_y", static_cast<double>(f.net_stall_y));
  push_input(&a, "link_dir", static_cast<double>(f.net_stall_dir));
  out->push_back(std::move(a));
}

/// (b) monotone growth of a gauge over >= cfg.queue_windows consecutive
/// strictly-increasing windows after warmup. One coalesced alert spanning
/// the first and last offending run.
template <typename Field>
void check_monotone_growth(const TimeSeries& ts, const HealthConfig& cfg,
                           const char* rule, const char* what, Field field,
                           std::vector<HealthAlert>* out) {
  if (cfg.queue_windows == 0) return;
  const std::size_t warmup = static_cast<std::size_t>(cfg.warmup_frames);
  if (ts.frames.size() <= warmup + cfg.queue_windows) return;
  std::size_t run_start = warmup; // index of the run's first frame
  std::uint64_t steps = 0;        // increasing transitions in the run
  std::uint64_t best_steps = 0;
  std::size_t first_bad = 0;
  std::size_t last_bad = 0;
  bool found = false;
  for (std::size_t i = warmup + 1; i < ts.frames.size(); ++i) {
    if (field(ts.frames[i]) > field(ts.frames[i - 1])) {
      if (steps == 0) run_start = i - 1;
      ++steps;
      if (steps >= cfg.queue_windows) {
        if (!found) first_bad = run_start;
        found = true;
        last_bad = i;
        best_steps = std::max(best_steps, steps);
      }
    } else {
      steps = 0;
    }
  }
  if (!found) return;
  HealthAlert a;
  a.rule = rule;
  a.severity = AlertSeverity::Warn;
  std::ostringstream d;
  d << what << " grew monotonically for " << best_steps
    << " consecutive windows (threshold " << cfg.queue_windows << "), "
    << field(ts.frames[first_bad]) << " -> " << field(ts.frames[last_bad]);
  a.detail = d.str();
  a.first_frame = first_bad;
  a.last_frame = last_bad;
  a.first_cycle = ts.frames[first_bad].cycle;
  a.last_cycle = ts.frames[last_bad].cycle;
  push_input(&a, "windows", static_cast<double>(best_steps));
  push_input(&a, "start_value",
             static_cast<double>(field(ts.frames[first_bad])));
  push_input(&a, "end_value", static_cast<double>(field(ts.frames[last_bad])));
  out->push_back(std::move(a));
}

/// (c) ratio spikes vs the run's own typical window: the frame ratio must
/// exceed both an absolute floor and 3x the (lower-)median post-warmup
/// ratio. The median — not the warmup mean — is the baseline on purpose:
/// ramp-in frames are mostly idle, so a solver whose steady state
/// legitimately stalls (dot/allreduce waits) would read as a "spike"
/// against its own warmup, while a sustained-high run is its own median
/// and stays quiet. Warmup frames are excluded from baseline and scan.
/// One coalesced alert.
template <typename Ratio>
void check_ratio_spike(const TimeSeries& ts, const HealthConfig& cfg,
                       const char* rule, const char* what, Ratio ratio,
                       std::vector<HealthAlert>* out) {
  const std::size_t warmup = static_cast<std::size_t>(cfg.warmup_frames);
  if (warmup == 0 || ts.frames.size() <= warmup) return;
  std::vector<double> ratios;
  for (std::size_t i = warmup; i < ts.frames.size(); ++i) {
    double r = 0.0;
    if (ratio(ts.frames[i], &r)) ratios.push_back(r);
  }
  if (ratios.empty()) return;
  // Lower median: biased toward the quiet half, so a spike covering up to
  // half the windows still registers against the calm remainder.
  std::sort(ratios.begin(), ratios.end());
  const double baseline = ratios[(ratios.size() - 1) / 2];
  const double threshold = std::max(cfg.spike_floor, 3.0 * baseline);
  std::size_t first_bad = 0;
  std::size_t last_bad = 0;
  std::uint64_t bad_windows = 0;
  double worst = 0.0;
  for (std::size_t i = warmup; i < ts.frames.size(); ++i) {
    double r = 0.0;
    if (!ratio(ts.frames[i], &r)) continue;
    if (r <= threshold) continue;
    if (bad_windows == 0) first_bad = i;
    last_bad = i;
    ++bad_windows;
    worst = std::max(worst, r);
  }
  if (bad_windows == 0) return;
  HealthAlert a;
  a.rule = rule;
  a.severity = AlertSeverity::Warn;
  std::ostringstream d;
  d << what << " ratio peaked at " << json::number(worst) << " across "
    << bad_windows << " window(s), vs run median "
    << json::number(baseline) << " (threshold " << json::number(threshold)
    << ")";
  a.detail = d.str();
  a.first_frame = first_bad;
  a.last_frame = last_bad;
  a.first_cycle = ts.frames[first_bad].cycle;
  a.last_cycle = ts.frames[last_bad].cycle;
  push_input(&a, "worst_ratio", worst);
  push_input(&a, "baseline_ratio", baseline);
  push_input(&a, "threshold", threshold);
  push_input(&a, "windows", static_cast<double>(bad_windows));
  out->push_back(std::move(a));
}

/// (d) fault bursts: any single window with >= cfg.fault_burst injected
/// faults is critical. One coalesced alert.
void check_fault_burst(const TimeSeries& ts, const HealthConfig& cfg,
                       std::vector<HealthAlert>* out) {
  if (cfg.fault_burst == 0) return; // 0 disables the rule
  std::size_t first_bad = 0;
  std::size_t last_bad = 0;
  std::uint64_t bad_windows = 0;
  std::uint64_t worst = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    total += ts.frames[i].faults;
    if (ts.frames[i].faults < cfg.fault_burst) continue;
    if (bad_windows == 0) first_bad = i;
    last_bad = i;
    ++bad_windows;
    worst = std::max(worst, ts.frames[i].faults);
  }
  if (bad_windows == 0) return;
  HealthAlert a;
  a.rule = "fault_burst";
  a.severity = AlertSeverity::Critical;
  std::ostringstream d;
  d << worst << " injected faults in one sample window (threshold "
    << cfg.fault_burst << "), " << bad_windows << " burst window(s), "
    << total << " faults over the run";
  a.detail = d.str();
  a.first_frame = first_bad;
  a.last_frame = last_bad;
  a.first_cycle = ts.frames[first_bad].cycle;
  a.last_cycle = ts.frames[last_bad].cycle;
  push_input(&a, "worst_window_faults", static_cast<double>(worst));
  push_input(&a, "threshold", static_cast<double>(cfg.fault_burst));
  push_input(&a, "total_faults", static_cast<double>(total));
  out->push_back(std::move(a));
}

/// (e) residual stagnation: the best -log10(residual) seen so far fails to
/// improve for >= cfg.residual_iters consecutive recorded iterations. A
/// residual that climbs back up keeps the plateau growing, so non-monotone
/// convergence is covered by the same counter.
void check_residual_stagnation(const std::vector<TimeSeriesScalar>& scalars,
                               const HealthConfig& cfg,
                               std::vector<HealthAlert>* out) {
  if (cfg.residual_iters == 0) return;
  double best = -1.0e300;
  std::uint64_t best_iteration = 0;
  std::uint64_t plateau = 0;
  bool seeded = false;
  bool found = false;
  std::uint64_t first_bad = 0;
  std::uint64_t last_bad = 0;
  std::uint64_t worst_plateau = 0;
  double last_residual = 0.0;
  for (const TimeSeriesScalar& s : scalars) {
    if (s.name != "residual") continue;
    if (!std::isfinite(s.value) || s.value <= 0.0) continue;
    const double neglog = -std::log10(s.value);
    last_residual = s.value;
    if (!seeded || neglog > best) {
      best = neglog;
      best_iteration = s.iteration;
      seeded = true;
      plateau = 0;
      continue;
    }
    ++plateau;
    if (plateau >= cfg.residual_iters) {
      if (!found) first_bad = best_iteration;
      found = true;
      last_bad = s.iteration;
      worst_plateau = std::max(worst_plateau, plateau);
    }
  }
  if (!found) return;
  HealthAlert a;
  a.rule = "residual_stagnation";
  a.severity = AlertSeverity::Warn;
  std::ostringstream d;
  d << "-log10 residual made no progress for " << worst_plateau
    << " consecutive iterations (threshold " << cfg.residual_iters
    << "); best " << json::number(best) << " at iteration " << best_iteration
    << ", last residual " << json::number(last_residual);
  a.detail = d.str();
  a.first_frame = first_bad; // solver iterations, not frame indices
  a.last_frame = last_bad;
  push_input(&a, "stalled_iterations", static_cast<double>(worst_plateau));
  push_input(&a, "threshold", static_cast<double>(cfg.residual_iters));
  push_input(&a, "best_neg_log10", best);
  push_input(&a, "last_residual", last_residual);
  out->push_back(std::move(a));
}

/// Any recorded scalar going NaN/Inf is critical: the solver state is
/// poisoned even if the run later "finishes".
void check_scalar_nonfinite(const std::vector<TimeSeriesScalar>& scalars,
                            std::vector<HealthAlert>* out) {
  bool found = false;
  std::uint64_t first_bad = 0;
  std::uint64_t last_bad = 0;
  std::uint64_t count = 0;
  std::string first_name;
  for (const TimeSeriesScalar& s : scalars) {
    if (std::isfinite(s.value)) continue;
    if (!found) {
      first_bad = s.iteration;
      first_name = s.name;
    }
    found = true;
    last_bad = s.iteration;
    ++count;
  }
  if (!found) return;
  HealthAlert a;
  a.rule = "scalar_nonfinite";
  a.severity = AlertSeverity::Critical;
  std::ostringstream d;
  d << count << " non-finite solver scalar(s), first '" << first_name
    << "' at iteration " << first_bad;
  a.detail = d.str();
  a.first_frame = first_bad; // solver iterations, not frame indices
  a.last_frame = last_bad;
  push_input(&a, "count", static_cast<double>(count));
  out->push_back(std::move(a));
}

} // namespace

std::vector<HealthAlert> evaluate_scalar_health(
    const std::vector<TimeSeriesScalar>& scalars, const HealthConfig& cfg) {
  std::vector<HealthAlert> alerts;
  check_residual_stagnation(scalars, cfg, &alerts);
  check_scalar_nonfinite(scalars, &alerts);
  return alerts;
}

std::vector<HealthAlert> evaluate_scalar_health(const ScalarHistory& scalars,
                                                const HealthConfig& cfg) {
  std::vector<TimeSeriesScalar> copy;
  copy.reserve(scalars.samples().size());
  for (const ScalarSample& s : scalars.samples()) {
    copy.push_back(TimeSeriesScalar{s.iteration, s.name, s.value});
  }
  return evaluate_scalar_health(copy, cfg);
}

std::vector<HealthAlert> evaluate_health(const TimeSeries& ts,
                                         const HealthConfig& cfg) {
  std::vector<HealthAlert> alerts;
  check_perfmodel_drift(ts, cfg, &alerts);
  check_flow_bandwidth_drift(ts, cfg, &alerts);
  check_link_congestion(ts, cfg, &alerts);
  check_monotone_growth(
      ts, cfg, "queue_growth", "router queue occupancy",
      [](const TimeSeriesFrame& f) { return f.router_queued_flits; }, &alerts);
  check_monotone_growth(
      ts, cfg, "fifo_growth", "software-FIFO high-water",
      [](const TimeSeriesFrame& f) { return f.fifo_highwater; }, &alerts);
  check_ratio_spike(
      ts, cfg, "stall_spike", "stall",
      [](const TimeSeriesFrame& f, double* r) {
        const std::uint64_t denom =
            f.instr_cycles + f.stall_cycles + f.idle_cycles;
        if (denom == 0) return false;
        *r = static_cast<double>(f.stall_cycles) / static_cast<double>(denom);
        return true;
      },
      &alerts);
  check_ratio_spike(
      ts, cfg, "recv_starvation", "recv-starved",
      [](const TimeSeriesFrame& f, double* r) {
        if (!f.has_profiler) return false;
        std::uint64_t denom = 0;
        for (const std::uint64_t n : f.prof_cat) denom += n;
        if (denom == 0) return false;
        *r = static_cast<double>(
                 f.prof_cat[static_cast<std::size_t>(CycleCat::RecvStarved)]) /
             static_cast<double>(denom);
        return true;
      },
      &alerts);
  check_fault_burst(ts, cfg, &alerts);
  std::vector<HealthAlert> scalar_alerts = evaluate_scalar_health(ts.scalars, cfg);
  for (HealthAlert& a : scalar_alerts) alerts.push_back(std::move(a));
  return alerts;
}

bool any_critical(const std::vector<HealthAlert>& alerts) {
  return std::any_of(alerts.begin(), alerts.end(), [](const HealthAlert& a) {
    return a.severity == AlertSeverity::Critical;
  });
}

// --- wss.alerts/1 emission -----------------------------------------------

std::string build_alerts_json(const AlertsFile& a) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value(kAlertsSchema);
  w.key("program").value(a.program);
  w.key("run_id").value(a.run_id);
  w.key("tol_pct").value(a.tol_pct);
  w.key("alerts").begin_array();
  for (const HealthAlert& al : a.alerts) {
    w.begin_object();
    w.key("rule").value(al.rule);
    w.key("severity").value(to_string(al.severity));
    w.key("detail").value(al.detail);
    w.key("first_frame").value(al.first_frame);
    w.key("last_frame").value(al.last_frame);
    w.key("first_cycle").value(al.first_cycle);
    w.key("last_cycle").value(al.last_cycle);
    w.key("inputs").begin_array();
    for (const AlertInput& in : al.inputs) {
      w.begin_object();
      w.key("name").value(in.name);
      w.key("value").value(in.value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool write_alerts(const std::string& path, const AlertsFile& a,
                  std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    if (!ensure_directory(path.substr(0, slash), error)) return false;
  }
  return write_text_file(path, build_alerts_json(a), error);
}

// --- loading -------------------------------------------------------------

namespace {

using jsonparse::Value;

[[nodiscard]] std::string get_string(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_string() ? m->string : std::string{};
}
[[nodiscard]] double get_number(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_number() ? m->number : 0.0;
}
[[nodiscard]] std::uint64_t get_u64(const Value* v, const char* key) {
  return static_cast<std::uint64_t>(get_number(v, key));
}

} // namespace

bool load_alerts(const std::string& path, AlertsFile* out,
                 std::string* error) {
  const auto set_error = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };

  std::ifstream file(path, std::ios::binary);
  if (!file) return set_error("cannot open file");
  std::ostringstream buf;
  buf << file.rdbuf();
  if (file.bad()) return set_error("read error");

  const jsonparse::ParseResult parsed = jsonparse::parse(buf.str());
  if (!parsed.ok()) return set_error("JSON error: " + parsed.error);
  const Value& root = *parsed.value;
  if (!root.is_object()) return set_error("top level is not an object");

  AlertsFile a;
  a.schema = get_string(&root, "schema");
  if (a.schema != kAlertsSchema) {
    return set_error("schema mismatch: got '" + a.schema + "', want '" +
                     kAlertsSchema + "'");
  }
  a.program = get_string(&root, "program");
  a.run_id = get_string(&root, "run_id");
  a.tol_pct = get_number(&root, "tol_pct");
  if (const Value* alerts = root.find("alerts");
      alerts != nullptr && alerts->is_array()) {
    for (const Value& av : *alerts->array) {
      if (!av.is_object()) return set_error("alert is not an object");
      HealthAlert al;
      al.rule = get_string(&av, "rule");
      if (!parse_alert_severity(get_string(&av, "severity"), &al.severity)) {
        return set_error("alert '" + al.rule + "': unknown severity '" +
                         get_string(&av, "severity") + "'");
      }
      al.detail = get_string(&av, "detail");
      al.first_frame = get_u64(&av, "first_frame");
      al.last_frame = get_u64(&av, "last_frame");
      al.first_cycle = get_u64(&av, "first_cycle");
      al.last_cycle = get_u64(&av, "last_cycle");
      if (const Value* inputs = av.find("inputs");
          inputs != nullptr && inputs->is_array()) {
        for (const Value& iv : *inputs->array) {
          AlertInput in;
          in.name = get_string(&iv, "name");
          in.value = get_number(&iv, "value");
          al.inputs.push_back(std::move(in));
        }
      }
      a.alerts.push_back(std::move(al));
    }
  }
  *out = std::move(a);
  return true;
}

// --- self-check ----------------------------------------------------------

bool self_check_alerts(const AlertsFile& a, std::string* error) {
  const auto fail_with = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (a.schema != kAlertsSchema) {
    return fail_with("schema mismatch: '" + a.schema + "'");
  }
  if (!std::isfinite(a.tol_pct) || a.tol_pct < 0.0) {
    return fail_with("negative or non-finite tolerance");
  }
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    const HealthAlert& al = a.alerts[i];
    const std::string at = "alert " + std::to_string(i);
    if (al.rule.empty()) return fail_with(at + ": empty rule name");
    if (al.first_frame > al.last_frame) {
      return fail_with(at + ": frame range not ordered");
    }
    if (al.first_cycle > al.last_cycle) {
      return fail_with(at + ": cycle range not ordered");
    }
    for (const AlertInput& in : al.inputs) {
      if (in.name.empty()) return fail_with(at + ": unnamed rule input");
    }
  }
  return true;
}

// --- diffing -------------------------------------------------------------

std::string summarize_alert(const HealthAlert& a) {
  std::ostringstream out;
  out << "[" << to_string(a.severity) << "] " << a.rule;
  if (a.first_cycle != 0 || a.last_cycle != 0) {
    out << " frames " << a.first_frame << ".." << a.last_frame << " cycles "
        << a.first_cycle << ".." << a.last_cycle;
  } else {
    out << " iterations " << a.first_frame << ".." << a.last_frame;
  }
  out << ": " << a.detail;
  return out.str();
}

AlertDivergence first_alert_divergence(const AlertsFile& a,
                                       const AlertsFile& b) {
  AlertDivergence d;
  if (a.program != b.program) {
    d.note = "warning: program mismatch ('" + a.program + "' vs '" +
             b.program + "') — divergence below may be meaningless";
  } else if (a.tol_pct != b.tol_pct) {
    d.note = "warning: tolerance mismatch (" + json::number(a.tol_pct) +
             " vs " + json::number(b.tol_pct) +
             ") — rules fired against different gates";
  }
  const std::size_t n = std::min(a.alerts.size(), b.alerts.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.alerts[i] == b.alerts[i]) continue;
    d.found = true;
    d.index = i;
    d.a_alert = summarize_alert(a.alerts[i]);
    d.b_alert = summarize_alert(b.alerts[i]);
    return d;
  }
  if (a.alerts.size() != b.alerts.size()) {
    d.found = true;
    d.index = n;
    const bool a_longer = a.alerts.size() > n;
    d.a_alert = a_longer ? summarize_alert(a.alerts[n]) : "-";
    d.b_alert = a_longer ? "-" : summarize_alert(b.alerts[n]);
  }
  return d;
}

std::string pretty_alert_divergence(const AlertDivergence& d) {
  std::ostringstream out;
  if (!d.note.empty()) out << d.note << "\n";
  if (!d.found) {
    out << "no divergence: alert streams are identical\n";
    return out.str();
  }
  out << "first divergent alert at index " << d.index << ":\n";
  out << "  A: " << d.a_alert << "\n";
  out << "  B: " << d.b_alert << "\n";
  return out.str();
}

// --- rendering -----------------------------------------------------------

namespace {

[[nodiscard]] std::string severity_tally(
    const std::vector<HealthAlert>& alerts) {
  std::size_t crit = 0;
  std::size_t warn = 0;
  std::size_t info = 0;
  for (const HealthAlert& a : alerts) {
    switch (a.severity) {
      case AlertSeverity::Critical: ++crit; break;
      case AlertSeverity::Warn: ++warn; break;
      case AlertSeverity::Info: ++info; break;
    }
  }
  std::ostringstream out;
  out << alerts.size() << " alert(s)";
  if (!alerts.empty()) {
    out << " [";
    bool first = true;
    const auto item = [&](std::size_t n, const char* label) {
      if (n == 0) return;
      if (!first) out << ", ";
      first = false;
      out << n << " " << label;
    };
    item(crit, "critical");
    item(warn, "warn");
    item(info, "info");
    out << "]";
  }
  return out.str();
}

} // namespace

std::string pretty_alerts(const AlertsFile& a) {
  std::ostringstream out;
  out << "alerts (" << a.schema << ")\n";
  if (!a.program.empty()) out << "  program: " << a.program << "\n";
  if (!a.run_id.empty()) out << "  run:     " << a.run_id << "\n";
  out << "  drift tolerance: " << json::number(a.tol_pct) << "%\n";
  out << "  " << severity_tally(a.alerts) << "\n";
  for (const HealthAlert& al : a.alerts) {
    out << "\n  " << summarize_alert(al) << "\n";
    for (const AlertInput& in : al.inputs) {
      out << "      " << in.name << " = " << json::number(in.value) << "\n";
    }
  }
  return out.str();
}

std::string pretty_health_pane(const TimeSeries& ts, const HealthConfig& cfg) {
  const std::vector<HealthAlert> alerts = evaluate_health(ts, cfg);
  std::ostringstream out;
  if (alerts.empty()) {
    out << "health: ok — no alerts (tol " << json::number(cfg.tol_pct)
        << "%)\n";
    return out.str();
  }
  out << "health: " << severity_tally(alerts) << ", tol "
      << json::number(cfg.tol_pct) << "%\n";
  for (const HealthAlert& a : alerts) {
    out << "  " << summarize_alert(a) << "\n";
  }
  return out.str();
}

} // namespace wss::telemetry
