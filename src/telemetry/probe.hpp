#pragma once

// Solver-side telemetry probe: one object per solve that feeds the
// MetricsRegistry (per-iteration residual gauge + histogram, flop counter,
// breakdown/stagnation/convergence events) and the SpanTracer (nested
// solver-phase spans: spmv, dot, axpy, allreduce, iteration). Header-only
// and null-tolerant: with both sinks nullptr every call collapses to a
// pointer test, so instrumented solvers cost nothing unless a caller
// opts in via SolveControls.

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/span_tracer.hpp"

namespace wss::telemetry {

class SolverProbe {
public:
  SolverProbe(MetricsRegistry* metrics, SpanTracer* spans, const char* name)
      : spans_(spans), name_(name != nullptr ? name : "solver") {
    if (metrics != nullptr) {
      iterations_ = &metrics->counter(name_ + ".iterations");
      flops_ = &metrics->counter(name_ + ".flops");
      residual_ = &metrics->gauge(name_ + ".residual");
      residual_hist_ = &metrics->histogram(name_ + ".residual");
      metrics_ = metrics;
    }
  }

  [[nodiscard]] bool active() const {
    return metrics_ != nullptr || spans_ != nullptr;
  }

  /// RAII span for one solver phase; no-op without a tracer.
  [[nodiscard]] SpanTracer::Scoped phase(const char* phase_name) const {
    return SpanTracer::Scoped(spans_, phase_name, "solver");
  }

  /// Record the end of iteration `it` (1-based): recurrence relative
  /// residual and cumulative flop count so far.
  void iteration(int it, double relative_residual,
                 std::uint64_t flops_total) {
    if (metrics_ == nullptr) return;
    iterations_->add(1);
    residual_->set(relative_residual);
    residual_hist_->observe(relative_residual);
    flops_->add(flops_total >= last_flops_ ? flops_total - last_flops_ : 0);
    last_flops_ = flops_total;
    (void)it;
  }

  /// Record why the solve stopped ("converged", "breakdown", ...) plus the
  /// final state. Safe to call once at the end of the solve.
  void finish(const char* reason, int iterations, double final_residual) {
    if (spans_ != nullptr) {
      spans_->instant(name_ + ".stop." + reason, "solver");
    }
    if (metrics_ == nullptr) return;
    metrics_->counter(name_ + ".stop." + reason).add(1);
    metrics_->gauge(name_ + ".final_iterations")
        .set(static_cast<double>(iterations));
    metrics_->gauge(name_ + ".final_residual").set(final_residual);
  }

private:
  MetricsRegistry* metrics_ = nullptr;
  SpanTracer* spans_ = nullptr;
  std::string name_;
  Counter* iterations_ = nullptr;
  Counter* flops_ = nullptr;
  Gauge* residual_ = nullptr;
  Histogram* residual_hist_ = nullptr;
  std::uint64_t last_flops_ = 0;
};

} // namespace wss::telemetry
