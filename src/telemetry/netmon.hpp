#pragma once

// The network observatory's recording surface (docs/NETWORK.md): per-link
// × per-color wavelet accounting for the fabric, attributed to the logical
// flows a wse::FlowTable declares (halo legs, wrap lanes, allreduce
// reduce/broadcast, SpMV rounds, control).
//
// A NetMonitor attached via Fabric::set_net_monitor is fed from the link
// phase only, and every counter cell is owned by the *source* tile of the
// link it describes — exactly the ownership the banded determinism
// contract already guarantees for router out-queues — so streams are
// bit-identical at any WSS_SIM_THREADS on both backends (attachment
// demotes turbo to the reference phases, like every other observer; what
// the monitor records is therefore reference behaviour by construction).
//
// Three things are counted per outgoing link (tile, mesh dir):
//   words        — flits that actually traversed the link (the same event
//                  FabricStats.link_transfers counts, so conservation is
//                  exact: Σ over flows == link_transfers, even under
//                  injected link faults, because a dropped flit increments
//                  neither),
//   blocked      — cycles a color's head flit sat ready but could not move
//                  because the destination virtual-channel queue was full
//                  (downstream backpressure — the congestion signal; plain
//                  budget multiplexing across colors is *not* a block),
//   backlog peak — high-water of queued halfwords left after the phase.
//
// Like profiler.hpp / flightrec.hpp / timeseries.hpp, recording is
// header-only on purpose: wss_wse does not link wss_telemetry, so
// fabric.cpp includes this header and calls the inline hooks without a
// library cycle. Analysis — the `wss.netflows/1` artifact, self-check,
// diff, rendering — lives in netmon.cpp inside wss_telemetry.

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/timeseries.hpp"
#include "wse/flow_table.hpp"
#include "wse/types.hpp"

namespace wss::telemetry {

namespace json {
class Writer; // telemetry/json.hpp
}
namespace jsonparse {
struct Value; // telemetry/json_parse.hpp
}

/// Netflows schema identifier; bump on breaking layout changes.
inline constexpr const char* kNetFlowsSchema = "wss.netflows/1";

class NetMonitor {
public:
  /// Install the flow declaration. Set this *before* Fabric::
  /// set_net_monitor — the fabric snapshots the flow names into an
  /// attached sampler at attach time. Pairs the table leaves undeclared
  /// fall back to flow 0 ("control").
  void set_flow_table(wse::FlowTable table) { flows_ = std::move(table); }
  [[nodiscard]] const wse::FlowTable& flow_table() const { return flows_; }

  // --- fabric hooks (inline; link phase + serial tail only) ---------------

  /// Size the counter planes and capture the observation baseline
  /// (called by Fabric::set_net_monitor).
  void on_attach(int width, int height, std::uint64_t cycle,
                 std::uint64_t link_transfers) {
    width_ = width;
    height_ = height;
    attach_cycle_ = cycle;
    attach_transfers_ = link_transfers;
    const std::size_t cells = static_cast<std::size_t>(width) *
                              static_cast<std::size_t>(height) * 4 *
                              wse::kNumColors;
    const std::size_t links = static_cast<std::size_t>(width) *
                              static_cast<std::size_t>(height) * 4;
    words_.assign(cells, 0);
    blocked_.assign(cells, 0);
    cell_peak_.assign(cells, 0);
    link_stall_cycles_.assign(links, 0);
    link_peak_.assign(links, 0);
    attached_once_ = true;
  }

  /// A flit traversed the link (source `tile`, mesh dir `d`, color `c`).
  /// Same event as the fabric's ++transfers — the conservation anchor.
  void record_move(std::size_t tile, int d, int c) {
    ++words_[cell(tile, d, c)];
  }
  /// Color `c`'s head flit was left blocked by downstream backpressure at
  /// the end of the link phase.
  void record_blocked(std::size_t tile, int d, int c) {
    ++blocked_[cell(tile, d, c)];
  }
  /// Color `c` ended the link phase with `halfwords` still queued.
  void record_backlog(std::size_t tile, int d, int c, std::uint64_t halfwords) {
    auto& peak = cell_peak_[cell(tile, d, c)];
    peak = std::max(peak, halfwords);
  }
  /// The whole link ended the phase with `halfwords` queued across colors;
  /// `any_blocked` says at least one color was backpressure-blocked (a
  /// stall-attributed cycle for the link).
  void record_link_cycle(std::size_t tile, int d, std::uint64_t halfwords,
                         bool any_blocked) {
    const std::size_t l = link(tile, d);
    auto& peak = link_peak_[l];
    peak = std::max(peak, halfwords);
    if (any_blocked) ++link_stall_cycles_[l];
  }

  // --- serial-tail rollup (Fabric::collect_sample) ------------------------

  /// Fold the counter planes through the flow table into a cumulative
  /// sample (per-flow words/blocked, per-direction words, hottest and
  /// most-congested link, global backlog peak). Serial code only.
  void collect(TimeSeriesSample* s) const;

  // --- inspection (analysis side; tests and the artifact builder) ---------

  [[nodiscard]] bool attached_once() const { return attached_once_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::uint64_t attach_cycle() const { return attach_cycle_; }
  [[nodiscard]] std::uint64_t attach_transfers() const {
    return attach_transfers_;
  }
  [[nodiscard]] std::uint64_t words_at(int x, int y, wse::Dir d,
                                       int color) const {
    return words_[cell(tile_index(x, y), static_cast<int>(d), color)];
  }
  [[nodiscard]] std::uint64_t blocked_at(int x, int y, wse::Dir d,
                                         int color) const {
    return blocked_[cell(tile_index(x, y), static_cast<int>(d), color)];
  }
  /// Backlog high-water (halfwords) of one (link, color) cell.
  [[nodiscard]] std::uint64_t peak_queue_at(int x, int y, wse::Dir d,
                                            int color) const {
    return cell_peak_[cell(tile_index(x, y), static_cast<int>(d), color)];
  }
  /// Total flits that left (x, y) over mesh dir `d` (Σ over colors).
  [[nodiscard]] std::uint64_t link_words(int x, int y, wse::Dir d) const {
    const std::size_t base = cell(tile_index(x, y), static_cast<int>(d), 0);
    std::uint64_t sum = 0;
    for (int c = 0; c < wse::kNumColors; ++c) sum += words_[base + static_cast<std::size_t>(c)];
    return sum;
  }
  [[nodiscard]] std::uint64_t link_stall_cycles(int x, int y,
                                                wse::Dir d) const {
    return link_stall_cycles_[link(tile_index(x, y), static_cast<int>(d))];
  }
  [[nodiscard]] std::uint64_t link_peak_queue(int x, int y, wse::Dir d) const {
    return link_peak_[link(tile_index(x, y), static_cast<int>(d))];
  }

private:
  [[nodiscard]] std::size_t tile_index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  [[nodiscard]] static std::size_t cell(std::size_t tile, int d, int c) {
    return (tile * 4 + static_cast<std::size_t>(d)) * wse::kNumColors +
           static_cast<std::size_t>(c);
  }
  [[nodiscard]] static std::size_t link(std::size_t tile, int d) {
    return tile * 4 + static_cast<std::size_t>(d);
  }

  wse::FlowTable flows_;
  int width_ = 0;
  int height_ = 0;
  bool attached_once_ = false;
  std::uint64_t attach_cycle_ = 0;
  std::uint64_t attach_transfers_ = 0;
  // Counter planes, indexed (tile, outgoing mesh dir, color) — every cell
  // single-writer under the band that owns the source tile.
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> blocked_;
  std::vector<std::uint64_t> cell_peak_;
  // Per-link (tile, dir) planes.
  std::vector<std::uint64_t> link_stall_cycles_;
  std::vector<std::uint64_t> link_peak_;
};

inline void NetMonitor::collect(TimeSeriesSample* s) const {
  if (!attached_once_) return;
  s->has_net = true;
  s->net_cycles = s->cycle >= attach_cycle_ ? s->cycle - attach_cycle_ : 0;
  const std::size_t nflows = static_cast<std::size_t>(flows_.flow_count());
  s->flow_words.assign(nflows, 0);
  s->flow_blocked.assign(nflows, 0);
  // Flow lookup per (dir, color), hoisted out of the tile scan.
  std::array<int, 4 * wse::kNumColors> fmap{};
  for (int d = 0; d < 4; ++d) {
    for (int c = 0; c < wse::kNumColors; ++c) {
      fmap[static_cast<std::size_t>(d * wse::kNumColors + c)] =
          flows_.flow_at(static_cast<wse::Dir>(d), static_cast<wse::Color>(c));
    }
  }
  const std::size_t tiles = static_cast<std::size_t>(width_) *
                            static_cast<std::size_t>(height_);
  for (std::size_t t = 0; t < tiles; ++t) {
    for (int d = 0; d < 4; ++d) {
      const std::size_t base = cell(t, d, 0);
      std::uint64_t lw = 0;
      for (int c = 0; c < wse::kNumColors; ++c) {
        const std::uint64_t w = words_[base + static_cast<std::size_t>(c)];
        lw += w;
        const auto f = static_cast<std::size_t>(
            fmap[static_cast<std::size_t>(d * wse::kNumColors + c)]);
        s->flow_words[f] += w;
        s->flow_blocked[f] += blocked_[base + static_cast<std::size_t>(c)];
      }
      s->net_dir_words[static_cast<std::size_t>(d)] += lw;
      const std::size_t l = link(t, d);
      // Strict > keeps the first maximum in (tile, dir) scan order — a
      // deterministic tie-break at any thread count (the scan is serial).
      if (lw > s->net_hot_words) {
        s->net_hot_words = lw;
        s->net_hot_x = static_cast<std::int32_t>(t % static_cast<std::size_t>(width_));
        s->net_hot_y = static_cast<std::int32_t>(t / static_cast<std::size_t>(width_));
        s->net_hot_dir = d;
      }
      if (link_stall_cycles_[l] > s->net_stall_cycles) {
        s->net_stall_cycles = link_stall_cycles_[l];
        s->net_stall_x = static_cast<std::int32_t>(t % static_cast<std::size_t>(width_));
        s->net_stall_y = static_cast<std::int32_t>(t / static_cast<std::size_t>(width_));
        s->net_stall_dir = d;
      }
      s->net_peak_queue = std::max(s->net_peak_queue, link_peak_[l]);
    }
  }
}

// --- the wss.netflows/1 artifact (netmon.cpp) -----------------------------
// (Per-flow model expectations — NetFlowExpectation — live in
// timeseries.hpp, because the series carries them like HealthExpectations.)

/// Per-flow rollup row of a finished observation.
struct NetFlowTotals {
  std::string flow;
  std::uint64_t words = 0;
  std::uint64_t blocked = 0;    ///< backpressure-blocked color-cycles
  std::uint64_t peak_queue = 0; ///< max backlog halfwords on a carrying cell
  double expected_words_per_iteration = 0.0; ///< <= 0 ungated
  bool exact = false;

  [[nodiscard]] bool operator==(const NetFlowTotals& o) const {
    return flow == o.flow && words == o.words && blocked == o.blocked &&
           peak_queue == o.peak_queue &&
           expected_words_per_iteration == o.expected_words_per_iteration &&
           exact == o.exact;
  }
};

/// One link's totals (hotspot / congestion tables).
struct NetLinkStat {
  int x = 0;
  int y = 0;
  wse::Dir dir = wse::Dir::North;
  std::uint64_t words = 0;
  std::uint64_t blocked = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t peak_queue = 0;

  [[nodiscard]] bool operator==(const NetLinkStat& o) const {
    return x == o.x && y == o.y && dir == o.dir && words == o.words &&
           blocked == o.blocked && stall_cycles == o.stall_cycles &&
           peak_queue == o.peak_queue;
  }
};

/// A loaded (or to-be-written) `wss.netflows/1` file.
struct NetFlowsFile {
  std::string schema;
  std::string program;
  std::string run_id;
  int width = 0, height = 0;
  std::uint64_t cycles = 0;         ///< cycles observed (attach -> capture)
  std::uint64_t iterations = 0;     ///< solver iterations / generations seen
  std::uint64_t link_transfers = 0; ///< FabricStats delta over the window
  wse::FlowTable flow_table;
  std::vector<NetFlowTotals> flows;      ///< index-aligned with flow_table
  std::vector<NetLinkStat> hot_links;    ///< top-k by words (row-major ties)
  std::vector<NetLinkStat> congested_links; ///< top-k by stall cycles (> 0)
  std::uint64_t bisection_x_words = 0; ///< words crossing the vertical mid-cut
  std::uint64_t bisection_y_words = 0; ///< words crossing the horizontal cut
};

/// Number of hot/congested links retained (WSS_NETFLOWS_TOPK, default 8).
[[nodiscard]] int netflows_topk();
/// WSS_NETFLOWS: master switch for forensics-wired netflow capture.
[[nodiscard]] bool netflows_enabled();
/// WSS_NETFLOWS_OUT: explicit artifact path ("" = unset -> ledger default).
[[nodiscard]] std::string netflows_out();

/// Roll a finished observation up into the artifact shape. `cycles_now` /
/// `link_transfers_now` are the fabric's current totals (the builder
/// subtracts the attach baselines); `iterations` is the solver-iteration
/// count the expectations normalize by (0 = ungated).
[[nodiscard]] NetFlowsFile build_netflows(
    const NetMonitor& mon, const std::string& program,
    const std::string& run_id, std::uint64_t cycles_now,
    std::uint64_t link_transfers_now, std::uint64_t iterations,
    const std::vector<NetFlowExpectation>& expectations, int top_k);

[[nodiscard]] std::string build_netflows_json(const NetFlowsFile& f);

/// Write the artifact to `path` (parent directories created). Returns
/// false + `*error` on I/O failure.
bool write_netflows(const std::string& path, const NetFlowsFile& f,
                    std::string* error = nullptr);

/// Parse an artifact. Returns false + `*error` (with context) on
/// unreadable files, JSON errors, or schema mismatch.
bool load_netflows(const std::string& path, NetFlowsFile* out,
                   std::string* error = nullptr);

/// Schema guard + conservation gate: schema tag, flow-table/rollup
/// alignment, and Σ per-flow words == link_transfers exactly. Returns
/// false + `*error` on drift.
bool self_check_netflows(const NetFlowsFile& f, std::string* error = nullptr);

/// FlowTable <-> JSON (embedded in the artifact; also the round-trip the
/// invariant tests exercise).
void emit_flow_table(json::Writer& w, const wse::FlowTable& t);
bool parse_flow_table(const jsonparse::Value& v, wse::FlowTable* out);

/// First divergent flow row between two artifacts (exit 3 in wss_inspect).
struct NetFlowsDivergence {
  bool found = false;
  std::size_t index = 0; ///< flow index of the first difference
  std::string a_flow;    ///< one-line summary ("-" when absent)
  std::string b_flow;
  std::string note; ///< e.g. program/fabric mismatch warning
};

[[nodiscard]] NetFlowsDivergence first_netflows_divergence(
    const NetFlowsFile& a, const NetFlowsFile& b);
[[nodiscard]] std::string pretty_netflows_divergence(
    const NetFlowsDivergence& d);

/// One-line flow summary used by list mode and the diff.
[[nodiscard]] std::string summarize_flow(const NetFlowTotals& f);

/// Full rendering of an artifact (show mode): flow rollups, hot links,
/// congested links, bisection summary.
[[nodiscard]] std::string pretty_netflows(const NetFlowsFile& f);

/// The wss_top network pane: per-direction utilization sparklines and the
/// hottest links, from a loaded series' net block ("" when the series
/// carries none).
[[nodiscard]] std::string pretty_net_pane(const TimeSeries& ts);

} // namespace wss::telemetry
