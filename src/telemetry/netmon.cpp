// Network-observatory analysis: the `wss.netflows/1` artifact (build /
// emit / load / self-check / diff), the FlowTable JSON embedding, and the
// terminal renderings (wss_inspect flows, the wss_top network pane). The
// recording half lives in netmon.hpp (header-only, included by the
// fabric); see docs/NETWORK.md for the schema and the workflow.

#include "telemetry/netmon.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"

namespace wss::telemetry {

int netflows_topk() {
  return static_cast<int>(env::parse_int("WSS_NETFLOWS_TOPK", 8, 1, 4096));
}

bool netflows_enabled() {
  return env::parse_int("WSS_NETFLOWS", 0, 0, 1) != 0;
}

std::string netflows_out() { return env::parse_string("WSS_NETFLOWS_OUT"); }

// --- building ------------------------------------------------------------

NetFlowsFile build_netflows(const NetMonitor& mon, const std::string& program,
                            const std::string& run_id,
                            std::uint64_t cycles_now,
                            std::uint64_t link_transfers_now,
                            std::uint64_t iterations,
                            const std::vector<NetFlowExpectation>& expectations,
                            int top_k) {
  NetFlowsFile f;
  f.schema = kNetFlowsSchema;
  f.program = program;
  f.run_id = run_id;
  f.width = mon.width();
  f.height = mon.height();
  f.cycles = cycles_now >= mon.attach_cycle()
                 ? cycles_now - mon.attach_cycle()
                 : 0;
  f.iterations = iterations;
  f.link_transfers = link_transfers_now >= mon.attach_transfers()
                         ? link_transfers_now - mon.attach_transfers()
                         : 0;
  f.flow_table = mon.flow_table();

  const int nflows = f.flow_table.flow_count();
  f.flows.resize(static_cast<std::size_t>(nflows));
  for (int i = 0; i < nflows; ++i) {
    f.flows[static_cast<std::size_t>(i)].flow = f.flow_table.flow_name(i);
  }
  for (const NetFlowExpectation& e : expectations) {
    for (NetFlowTotals& row : f.flows) {
      if (row.flow == e.flow) {
        row.expected_words_per_iteration = e.words_per_iteration;
        row.exact = e.exact;
      }
    }
  }

  // One serial row-major (y, x, dir) scan folds the counter planes into
  // the per-flow rollups and per-link totals — the same deterministic
  // order NetMonitor::collect uses, so ties break identically.
  std::vector<NetLinkStat> links;
  links.reserve(static_cast<std::size_t>(f.width) *
                static_cast<std::size_t>(f.height) * 4);
  for (int y = 0; y < f.height; ++y) {
    for (int x = 0; x < f.width; ++x) {
      for (int d = 0; d < 4; ++d) {
        const auto dir = static_cast<wse::Dir>(d);
        NetLinkStat ls;
        ls.x = x;
        ls.y = y;
        ls.dir = dir;
        ls.stall_cycles = mon.link_stall_cycles(x, y, dir);
        ls.peak_queue = mon.link_peak_queue(x, y, dir);
        for (int c = 0; c < wse::kNumColors; ++c) {
          const std::uint64_t w = mon.words_at(x, y, dir, c);
          const std::uint64_t b = mon.blocked_at(x, y, dir, c);
          ls.words += w;
          ls.blocked += b;
          const auto fi = static_cast<std::size_t>(
              f.flow_table.flow_at(dir, static_cast<wse::Color>(c)));
          NetFlowTotals& row = f.flows[fi];
          row.words += w;
          row.blocked += b;
          row.peak_queue =
              std::max(row.peak_queue, mon.peak_queue_at(x, y, dir, c));
        }
        if (ls.words > 0 || ls.stall_cycles > 0) links.push_back(ls);
      }
    }
  }

  // Bisection traffic: words crossing the vertical mid-cut (between
  // columns w/2-1 and w/2) and the horizontal mid-cut, both directions.
  const int xcut = f.width / 2;
  const int ycut = f.height / 2;
  if (xcut > 0) {
    for (int y = 0; y < f.height; ++y) {
      f.bisection_x_words += mon.link_words(xcut - 1, y, wse::Dir::East);
      f.bisection_x_words += mon.link_words(xcut, y, wse::Dir::West);
    }
  }
  if (ycut > 0) {
    for (int x = 0; x < f.width; ++x) {
      f.bisection_y_words += mon.link_words(x, ycut - 1, wse::Dir::South);
      f.bisection_y_words += mon.link_words(x, ycut, wse::Dir::North);
    }
  }

  // Top-k tables. stable_sort keeps the row-major scan order on ties, so
  // the tables are deterministic byte for byte.
  const std::size_t k =
      std::min<std::size_t>(links.size(),
                            top_k > 0 ? static_cast<std::size_t>(top_k) : 0);
  std::vector<NetLinkStat> by_words = links;
  std::stable_sort(by_words.begin(), by_words.end(),
                   [](const NetLinkStat& a, const NetLinkStat& b) {
                     return a.words > b.words;
                   });
  for (std::size_t i = 0; i < k && by_words[i].words > 0; ++i) {
    f.hot_links.push_back(by_words[i]);
  }
  std::vector<NetLinkStat> by_stall = links;
  std::stable_sort(by_stall.begin(), by_stall.end(),
                   [](const NetLinkStat& a, const NetLinkStat& b) {
                     return a.stall_cycles > b.stall_cycles;
                   });
  for (std::size_t i = 0; i < k && by_stall[i].stall_cycles > 0; ++i) {
    f.congested_links.push_back(by_stall[i]);
  }
  return f;
}

// --- emission ------------------------------------------------------------

void emit_flow_table(json::Writer& w, const wse::FlowTable& t) {
  w.begin_object();
  w.key("flows").begin_array();
  for (const std::string& name : t.flows()) w.value(name);
  w.end_array();
  // Total (dir, color) -> flow-index map, one row of kNumColors ints per
  // mesh direction in N/S/E/W order.
  w.key("map").begin_array();
  for (int d = 0; d < 4; ++d) {
    w.begin_array();
    for (int c = 0; c < wse::kNumColors; ++c) {
      w.value(static_cast<std::int64_t>(
          t.flow_at(static_cast<wse::Dir>(d), static_cast<wse::Color>(c))));
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

namespace {

void emit_link_stat(json::Writer& w, const NetLinkStat& l) {
  w.begin_object();
  w.key("x").value(static_cast<std::int64_t>(l.x));
  w.key("y").value(static_cast<std::int64_t>(l.y));
  w.key("dir").value(wse::to_string(l.dir));
  w.key("words").value(l.words);
  w.key("blocked").value(l.blocked);
  w.key("stall_cycles").value(l.stall_cycles);
  w.key("peak_queue").value(l.peak_queue);
  w.end_object();
}

} // namespace

std::string build_netflows_json(const NetFlowsFile& f) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value(f.schema);
  w.key("program").value(f.program);
  w.key("run_id").value(f.run_id);
  w.key("width").value(static_cast<std::int64_t>(f.width));
  w.key("height").value(static_cast<std::int64_t>(f.height));
  w.key("cycles").value(f.cycles);
  w.key("iterations").value(f.iterations);
  w.key("link_transfers").value(f.link_transfers);
  w.key("flow_table");
  emit_flow_table(w, f.flow_table);
  w.key("flows").begin_array();
  for (const NetFlowTotals& row : f.flows) {
    w.begin_object();
    w.key("flow").value(row.flow);
    w.key("words").value(row.words);
    w.key("blocked").value(row.blocked);
    w.key("peak_queue").value(row.peak_queue);
    if (row.expected_words_per_iteration > 0.0) {
      w.key("expected_words_per_iteration")
          .value(row.expected_words_per_iteration);
      w.key("exact").value(row.exact);
    }
    w.end_object();
  }
  w.end_array();
  w.key("hot_links").begin_array();
  for (const NetLinkStat& l : f.hot_links) emit_link_stat(w, l);
  w.end_array();
  w.key("congested_links").begin_array();
  for (const NetLinkStat& l : f.congested_links) emit_link_stat(w, l);
  w.end_array();
  w.key("bisection_x_words").value(f.bisection_x_words);
  w.key("bisection_y_words").value(f.bisection_y_words);
  w.end_object();
  return w.str();
}

bool write_netflows(const std::string& path, const NetFlowsFile& f,
                    std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    if (!ensure_directory(path.substr(0, slash), error)) return false;
  }
  return write_text_file(path, build_netflows_json(f), error);
}

// --- loading -------------------------------------------------------------

namespace {

using jsonparse::Value;

[[nodiscard]] std::string get_string(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_string() ? m->string : std::string{};
}
[[nodiscard]] double get_number(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_number() ? m->number : 0.0;
}
[[nodiscard]] std::uint64_t get_u64(const Value* v, const char* key) {
  return static_cast<std::uint64_t>(get_number(v, key));
}
[[nodiscard]] bool get_bool(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->kind == jsonparse::Kind::Bool && m->boolean;
}

bool parse_dir(const std::string& text, wse::Dir* out) {
  if (text == "N") *out = wse::Dir::North;
  else if (text == "S") *out = wse::Dir::South;
  else if (text == "E") *out = wse::Dir::East;
  else if (text == "W") *out = wse::Dir::West;
  else return false;
  return true;
}

bool parse_link_stat(const Value& v, NetLinkStat* out) {
  if (!v.is_object()) return false;
  NetLinkStat l;
  l.x = static_cast<int>(get_number(&v, "x"));
  l.y = static_cast<int>(get_number(&v, "y"));
  if (!parse_dir(get_string(&v, "dir"), &l.dir)) return false;
  l.words = get_u64(&v, "words");
  l.blocked = get_u64(&v, "blocked");
  l.stall_cycles = get_u64(&v, "stall_cycles");
  l.peak_queue = get_u64(&v, "peak_queue");
  *out = l;
  return true;
}

} // namespace

bool parse_flow_table(const jsonparse::Value& v, wse::FlowTable* out) {
  if (!v.is_object()) return false;
  const Value* flows = v.find("flows");
  const Value* map = v.find("map");
  if (flows == nullptr || !flows->is_array() || map == nullptr ||
      !map->is_array() || map->array->size() != 4) {
    return false;
  }
  std::vector<std::string> names;
  names.reserve(flows->array->size());
  for (const Value& n : *flows->array) {
    if (!n.is_string()) return false;
    names.push_back(n.string);
  }
  if (names.empty() || names[0] != "control") return false;
  wse::FlowTable t;
  // declare() interns in first-seen order, so re-declaring the serialized
  // names in order reproduces the original indexing exactly.
  for (const std::string& n : names) (void)t.declare(n);
  for (int d = 0; d < 4; ++d) {
    const Value& row = (*map->array)[static_cast<std::size_t>(d)];
    if (!row.is_array() ||
        row.array->size() != static_cast<std::size_t>(wse::kNumColors)) {
      return false;
    }
    for (int c = 0; c < wse::kNumColors; ++c) {
      const Value& e = (*row.array)[static_cast<std::size_t>(c)];
      if (!e.is_number()) return false;
      const int idx = static_cast<int>(e.number);
      if (idx < 0 || idx >= static_cast<int>(names.size())) return false;
      if (idx == wse::kFlowControl) continue;
      if (!t.bind(static_cast<wse::Dir>(d), static_cast<wse::Color>(c),
                  names[static_cast<std::size_t>(idx)])) {
        return false;
      }
    }
  }
  *out = std::move(t);
  return true;
}

bool load_netflows(const std::string& path, NetFlowsFile* out,
                   std::string* error) {
  const auto set_error = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error("cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return set_error("read error");
  const std::string text = buf.str();
  const jsonparse::ParseResult parsed = jsonparse::parse(text);
  if (!parsed.ok()) return set_error("JSON error: " + parsed.error);
  const Value& root = *parsed.value;
  if (!root.is_object()) return set_error("top level is not an object");

  NetFlowsFile f;
  f.schema = get_string(&root, "schema");
  if (f.schema != kNetFlowsSchema) {
    return set_error("schema mismatch: got '" + f.schema + "', want '" +
                     kNetFlowsSchema + "'");
  }
  f.program = get_string(&root, "program");
  f.run_id = get_string(&root, "run_id");
  f.width = static_cast<int>(get_number(&root, "width"));
  f.height = static_cast<int>(get_number(&root, "height"));
  f.cycles = get_u64(&root, "cycles");
  f.iterations = get_u64(&root, "iterations");
  f.link_transfers = get_u64(&root, "link_transfers");
  const Value* table = root.find("flow_table");
  if (table == nullptr || !parse_flow_table(*table, &f.flow_table)) {
    return set_error("invalid flow_table");
  }
  if (const Value* flows = root.find("flows");
      flows != nullptr && flows->is_array()) {
    for (const Value& rv : *flows->array) {
      if (!rv.is_object()) return set_error("flow row is not an object");
      NetFlowTotals row;
      row.flow = get_string(&rv, "flow");
      row.words = get_u64(&rv, "words");
      row.blocked = get_u64(&rv, "blocked");
      row.peak_queue = get_u64(&rv, "peak_queue");
      row.expected_words_per_iteration =
          get_number(&rv, "expected_words_per_iteration");
      row.exact = get_bool(&rv, "exact");
      f.flows.push_back(std::move(row));
    }
  }
  if (const Value* hot = root.find("hot_links");
      hot != nullptr && hot->is_array()) {
    for (const Value& lv : *hot->array) {
      NetLinkStat l;
      if (!parse_link_stat(lv, &l)) return set_error("invalid hot link");
      f.hot_links.push_back(l);
    }
  }
  if (const Value* cong = root.find("congested_links");
      cong != nullptr && cong->is_array()) {
    for (const Value& lv : *cong->array) {
      NetLinkStat l;
      if (!parse_link_stat(lv, &l)) return set_error("invalid congested link");
      f.congested_links.push_back(l);
    }
  }
  f.bisection_x_words = get_u64(&root, "bisection_x_words");
  f.bisection_y_words = get_u64(&root, "bisection_y_words");
  *out = std::move(f);
  return true;
}

// --- self-check ----------------------------------------------------------

bool self_check_netflows(const NetFlowsFile& f, std::string* error) {
  const auto fail_with = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (f.schema != kNetFlowsSchema) {
    return fail_with("schema mismatch: '" + f.schema + "'");
  }
  if (f.width <= 0 || f.height <= 0) {
    return fail_with("non-positive fabric dimensions");
  }
  const int nflows = f.flow_table.flow_count();
  if (static_cast<int>(f.flows.size()) != nflows) {
    return fail_with("flow rollup count (" + std::to_string(f.flows.size()) +
                     ") disagrees with the flow table (" +
                     std::to_string(nflows) + ")");
  }
  std::uint64_t total = 0;
  for (int i = 0; i < nflows; ++i) {
    const NetFlowTotals& row = f.flows[static_cast<std::size_t>(i)];
    if (row.flow != f.flow_table.flow_name(i)) {
      return fail_with("flow row " + std::to_string(i) + " named '" +
                       row.flow + "', flow table says '" +
                       f.flow_table.flow_name(i) + "'");
    }
    total += row.words;
  }
  // The conservation gate: the flow map is total, a traversal increments
  // exactly one (link, color) cell, and dropped flits increment neither
  // side — so the rollup must reproduce the fabric's transfer count
  // *exactly*, fault runs included.
  if (total != f.link_transfers) {
    return fail_with("flow words not conserved: sum over flows is " +
                     std::to_string(total) + ", fabric counted " +
                     std::to_string(f.link_transfers) + " link transfers");
  }
  for (const NetLinkStat& l : f.hot_links) {
    if (l.x < 0 || l.x >= f.width || l.y < 0 || l.y >= f.height) {
      return fail_with("hot link outside the fabric");
    }
  }
  for (const NetLinkStat& l : f.congested_links) {
    if (l.x < 0 || l.x >= f.width || l.y < 0 || l.y >= f.height) {
      return fail_with("congested link outside the fabric");
    }
    if (l.stall_cycles > f.cycles && f.cycles > 0) {
      return fail_with("congested link stalled longer than the observation");
    }
  }
  return true;
}

// --- diffing -------------------------------------------------------------

std::string summarize_flow(const NetFlowTotals& f) {
  std::ostringstream out;
  out << f.flow << " words=" << f.words << " blocked=" << f.blocked
      << " peak=" << f.peak_queue;
  if (f.expected_words_per_iteration > 0.0) {
    out << " expect=" << json::number(f.expected_words_per_iteration)
        << "/it" << (f.exact ? " exact" : "");
  }
  return out.str();
}

NetFlowsDivergence first_netflows_divergence(const NetFlowsFile& a,
                                             const NetFlowsFile& b) {
  NetFlowsDivergence d;
  if (a.program != b.program) {
    d.note = "warning: program mismatch ('" + a.program + "' vs '" +
             b.program + "') — divergence below may be meaningless";
  } else if (a.width != b.width || a.height != b.height) {
    d.note = "warning: fabric mismatch (" + std::to_string(a.width) + "x" +
             std::to_string(a.height) + " vs " + std::to_string(b.width) +
             "x" + std::to_string(b.height) + ")";
  }
  const std::size_t n = std::min(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.flows[i] == b.flows[i]) continue;
    d.found = true;
    d.index = i;
    d.a_flow = summarize_flow(a.flows[i]);
    d.b_flow = summarize_flow(b.flows[i]);
    return d;
  }
  if (a.flows.size() != b.flows.size()) {
    d.found = true;
    d.index = n;
    const bool a_longer = a.flows.size() > n;
    d.a_flow = a_longer ? summarize_flow(a.flows[n]) : "-";
    d.b_flow = a_longer ? "-" : summarize_flow(b.flows[n]);
  }
  return d;
}

std::string pretty_netflows_divergence(const NetFlowsDivergence& d) {
  std::ostringstream out;
  if (!d.note.empty()) out << d.note << "\n";
  if (!d.found) {
    out << "no divergence: per-flow rollups are identical\n";
    return out.str();
  }
  out << "first divergent flow at index " << d.index << ":\n";
  out << "  A: " << d.a_flow << "\n";
  out << "  B: " << d.b_flow << "\n";
  return out.str();
}

// --- rendering -----------------------------------------------------------

namespace {

std::string link_label(const NetLinkStat& l) {
  std::ostringstream out;
  out << "(" << l.x << "," << l.y << ")->" << wse::to_string(l.dir);
  return out.str();
}

} // namespace

std::string pretty_netflows(const NetFlowsFile& f) {
  std::ostringstream out;
  out << "network flows (" << f.schema << ")\n";
  if (!f.program.empty()) out << "  program: " << f.program << "\n";
  if (!f.run_id.empty()) out << "  run:     " << f.run_id << "\n";
  out << "  fabric:  " << f.width << "x" << f.height << ", " << f.cycles
      << " cycles observed";
  if (f.iterations > 0) out << ", " << f.iterations << " iterations";
  out << "\n";
  out << "  words:   " << f.link_transfers
      << " link transfers, bisection x/y " << f.bisection_x_words << "/"
      << f.bisection_y_words << "\n";
  out << "\nper-flow rollup:\n";
  for (const NetFlowTotals& row : f.flows) {
    out << "  " << summarize_flow(row);
    if (row.expected_words_per_iteration > 0.0 && f.iterations > 0) {
      const double measured = static_cast<double>(row.words) /
                              static_cast<double>(f.iterations);
      out << " measured=" << json::number(measured) << "/it";
    }
    out << "\n";
  }
  if (!f.hot_links.empty()) {
    out << "\nhottest links (by words):\n";
    for (const NetLinkStat& l : f.hot_links) {
      out << "  " << link_label(l) << " words=" << l.words
          << " stall=" << l.stall_cycles << " peak=" << l.peak_queue << "\n";
    }
  }
  if (!f.congested_links.empty()) {
    out << "\ncongested links (by stall-attributed cycles):\n";
    for (const NetLinkStat& l : f.congested_links) {
      out << "  " << link_label(l) << " stall=" << l.stall_cycles
          << " blocked=" << l.blocked << " words=" << l.words << "\n";
    }
  }
  return out.str();
}

std::string pretty_net_pane(const TimeSeries& ts) {
  bool any_net = false;
  for (const TimeSeriesFrame& f : ts.frames) any_net |= f.has_net;
  if (!any_net) return {};
  constexpr std::size_t kSparkWidth = 60;
  std::ostringstream out;
  out << "network (" << ts.net_flows.size() << " declared flows)\n";

  // Per-direction link utilization: windowed words per cycle.
  static constexpr const char* kDirLabel[4] = {"north", "south", "east",
                                              "west"};
  for (int d = 0; d < 4; ++d) {
    std::vector<double> vs;
    vs.reserve(ts.frames.size());
    double maxv = 0.0;
    for (const TimeSeriesFrame& f : ts.frames) {
      const double v =
          f.has_net && f.window_cycles > 0
              ? static_cast<double>(
                    f.net_dir_words[static_cast<std::size_t>(d)]) /
                    static_cast<double>(f.window_cycles)
              : 0.0;
      vs.push_back(v);
      maxv = std::max(maxv, v);
    }
    if (maxv <= 0.0) continue;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%-6s", kDirLabel[d]);
    out << "  " << buf << "|" << sparkline(vs, kSparkWidth) << "| max "
        << json::number(maxv) << " words/cycle\n";
  }

  // Per-flow totals (frames carry windowed deltas; sum them back up).
  std::vector<std::uint64_t> words(ts.net_flows.size(), 0);
  std::vector<std::uint64_t> blocked(ts.net_flows.size(), 0);
  for (const TimeSeriesFrame& f : ts.frames) {
    if (!f.has_net) continue;
    for (std::size_t i = 0; i < words.size() && i < f.flow_words.size();
         ++i) {
      words[i] += f.flow_words[i];
    }
    for (std::size_t i = 0; i < blocked.size() && i < f.flow_blocked.size();
         ++i) {
      blocked[i] += f.flow_blocked[i];
    }
  }
  if (!ts.net_flows.empty()) {
    out << "  flows:\n";
    for (std::size_t i = 0; i < ts.net_flows.size(); ++i) {
      out << "    " << ts.net_flows[i] << " words=" << words[i];
      if (blocked[i] > 0) out << " blocked=" << blocked[i];
      out << "\n";
    }
  }

  // Hotspot gauges from the last net-bearing frame (they are cumulative).
  for (std::size_t i = ts.frames.size(); i-- > 0;) {
    const TimeSeriesFrame& f = ts.frames[i];
    if (!f.has_net) continue;
    if (f.net_hot_words > 0) {
      out << "  hot link: (" << f.net_hot_x << "," << f.net_hot_y << ")->"
          << wse::to_string(static_cast<wse::Dir>(f.net_hot_dir))
          << " words=" << f.net_hot_words << "\n";
    }
    if (f.net_stall_cycles > 0) {
      out << "  most stalled: (" << f.net_stall_x << "," << f.net_stall_y
          << ")->" << wse::to_string(static_cast<wse::Dir>(f.net_stall_dir))
          << " stall=" << f.net_stall_cycles << " cycles, peak queue "
          << f.net_peak_queue << " halfwords\n";
    }
    break;
  }
  return out.str();
}

} // namespace wss::telemetry
