#include "telemetry/flightrec.hpp"

#include <cmath>
#include <cstdio>

namespace wss::telemetry {

bool flight_event_kind_from_string(const std::string& name,
                                   FlightEventKind* out) {
  for (int k = 0; k < kNumFlightEventKinds; ++k) {
    const auto kind = static_cast<FlightEventKind>(k);
    if (name == to_string(kind)) {
      if (out != nullptr) *out = kind;
      return true;
    }
  }
  return false;
}

std::string format_flight_event(const FlightEvent& ev) {
  std::string out = "c";
  out += std::to_string(ev.cycle);
  out += ' ';
  out += to_string(ev.kind);
  switch (ev.kind) {
    case FlightEventKind::WaveletDelivered: {
      out += " color=" + std::to_string(ev.a);
      char hex[16];
      std::snprintf(hex, sizeof(hex), "0x%08x",
                    static_cast<unsigned>(ev.b));
      out += " payload=" + std::string(hex);
      if (ev.c >= 0) {
        out += " from (" + std::to_string(packed_tile_x(ev.c)) + "," +
               std::to_string(packed_tile_y(ev.c)) + ")@" +
               std::to_string(ev.d);
      }
      break;
    }
    case FlightEventKind::TaskActivate:
    case FlightEventKind::TaskUnblock:
    case FlightEventKind::TaskBlock:
    case FlightEventKind::TaskStart:
    case FlightEventKind::TaskEnd:
      out += " task=" + std::to_string(ev.a);
      break;
    case FlightEventKind::FifoHighwater:
      out += " fifo=" + std::to_string(ev.a) +
             " occupancy=" + std::to_string(ev.b);
      break;
    case FlightEventKind::PhaseMark:
      out += " ";
      out += wse::to_string(static_cast<wse::ProgPhase>(ev.a));
      break;
    case FlightEventKind::IterationMark:
      out += " iter=" + std::to_string(ev.a);
      break;
  }
  return out;
}

std::string FlightRecorder::pretty_tile(int x, int y,
                                        std::size_t last_k) const {
  const auto evs = events(x, y);
  const std::uint64_t lost = dropped_events(x, y);
  std::string out = "tile (" + std::to_string(x) + "," + std::to_string(y) +
                    "): " + std::to_string(total_events(x, y)) + " events";
  if (lost > 0) out += " (" + std::to_string(lost) + " overwritten)";
  out += "\n";
  const std::size_t n = evs.size();
  const std::size_t first = n > last_k ? n - last_k : 0;
  if (first > 0) out += "  ... " + std::to_string(first) + " earlier\n";
  for (std::size_t i = first; i < n; ++i) {
    out += "  " + format_flight_event(evs[i]) + "\n";
  }
  return out;
}

} // namespace wss::telemetry
