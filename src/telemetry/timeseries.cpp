// Time-series analysis: JSON emission/loading, the CI self-check, frame
// diffing and terminal rendering (sparklines). The recording half lives in
// timeseries.hpp (header-only, included by the fabric); see
// docs/TIMESERIES.md for the schema and the monitoring workflow.

#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/env.hpp"
#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/postmortem.hpp"

namespace wss::telemetry {

std::uint64_t sample_cycles() {
  return env::parse_u64("WSS_SAMPLE_CYCLES", 0);
}

std::string timeseries_out() {
  return env::parse_string("WSS_TIMESERIES_OUT");
}

// --- emission ------------------------------------------------------------

void emit_timeseries_frame(json::Writer& w, const TimeSeriesFrame& f) {
  w.begin_object();
  w.key("cycle").value(f.cycle);
  w.key("window").value(f.window_cycles);
  w.key("link_transfers").value(f.link_transfers);
  w.key("flits_forwarded").value(f.flits_forwarded);
  w.key("words_sent").value(f.words_sent);
  w.key("words_received").value(f.words_received);
  w.key("instr").value(f.instr_cycles);
  w.key("stall").value(f.stall_cycles);
  w.key("idle").value(f.idle_cycles);
  w.key("tasks").value(f.task_invocations);
  w.key("faults").value(f.faults);
  w.key("queued").value(f.router_queued_flits);
  w.key("queue_peak").value(f.router_queue_peak);
  w.key("fifo_hw").value(f.fifo_highwater);
  w.key("ramp_hw").value(f.ramp_highwater);
  w.key("iteration").value(f.max_iteration);
  w.key("done_tiles").value(static_cast<std::uint64_t>(f.done_tiles));
  w.key("phase_tiles").begin_array();
  for (const std::uint32_t n : f.phase_tiles) {
    w.value(static_cast<std::uint64_t>(n));
  }
  w.end_array();
  if (f.has_profiler) {
    w.key("prof_phase").begin_array();
    for (const std::uint64_t n : f.prof_phase) w.value(n);
    w.end_array();
    w.key("prof_cat").begin_array();
    for (const std::uint64_t n : f.prof_cat) w.value(n);
    w.end_array();
  }
  if (f.has_net) {
    // Additive network-observatory block (netmon.hpp): per-flow /
    // per-direction windowed word deltas plus cumulative hotspot gauges.
    w.key("net_cycles").value(f.net_cycles);
    w.key("flow_words").begin_array();
    for (const std::uint64_t n : f.flow_words) w.value(n);
    w.end_array();
    w.key("flow_blocked").begin_array();
    for (const std::uint64_t n : f.flow_blocked) w.value(n);
    w.end_array();
    w.key("net_dir_words").begin_array();
    for (const std::uint64_t n : f.net_dir_words) w.value(n);
    w.end_array();
    w.key("net_peak_queue").value(f.net_peak_queue);
    w.key("net_hot").begin_array();
    w.value(f.net_hot_words);
    w.value(static_cast<std::int64_t>(f.net_hot_x));
    w.value(static_cast<std::int64_t>(f.net_hot_y));
    w.value(static_cast<std::int64_t>(f.net_hot_dir));
    w.end_array();
    w.key("net_stall").begin_array();
    w.value(f.net_stall_cycles);
    w.value(static_cast<std::int64_t>(f.net_stall_x));
    w.value(static_cast<std::int64_t>(f.net_stall_y));
    w.value(static_cast<std::int64_t>(f.net_stall_dir));
    w.end_array();
  }
  w.end_object();
}

std::string build_timeseries_json(const TimeSeriesSampler& sampler,
                                  const ScalarHistory* scalars) {
  json::Writer w;
  w.begin_object();
  w.key("schema").value(kTimeseriesSchema);
  w.key("program").value(sampler.program());
  w.key("width").value(sampler.width());
  w.key("height").value(sampler.height());
  w.key("threads").value(sampler.threads());
  w.key("sample_cycles").value(sampler.interval());
  w.key("frames_dropped").value(sampler.frames_dropped());
  w.key("frames").begin_array();
  for (const TimeSeriesFrame& f : sampler.frames()) {
    emit_timeseries_frame(w, f);
  }
  w.end_array();
  if (scalars != nullptr) {
    w.key("scalars").begin_array();
    for (const ScalarSample& s : scalars->samples()) {
      w.begin_object();
      w.key("iteration").value(s.iteration);
      w.key("name").value(s.name);
      w.key("value").value(s.value);
      w.end_object();
    }
    w.end_array();
    w.key("scalars_dropped").value(scalars->dropped());
  }
  if (const HealthExpectations* e = sampler.expectations(); e != nullptr) {
    // Additive block: older readers ignore it, so the schema tag stays
    // wss.timeseries/1. Carrying the model projection in the artifact lets
    // wss_top / wss_inspect recompute drift alerts offline.
    w.key("health_expectations").begin_object();
    w.key("model").value(e->model);
    w.key("phase_cycles").begin_array();
    for (const double v : e->phase_cycles) w.value(v);
    w.end_array();
    w.end_object();
  }
  if (!sampler.net_flows().empty()) {
    // Additive network sidecar: flow names index-aligned with the frames'
    // net vectors, plus any per-flow traffic projections (docs/NETWORK.md).
    w.key("net_flows").begin_array();
    for (const std::string& name : sampler.net_flows()) w.value(name);
    w.end_array();
  }
  if (!sampler.net_expectations().empty()) {
    w.key("net_expectations").begin_array();
    for (const NetFlowExpectation& e : sampler.net_expectations()) {
      w.begin_object();
      w.key("flow").value(e.flow);
      w.key("words_per_iteration").value(e.words_per_iteration);
      w.key("exact").value(e.exact);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

TimeSeries snapshot_timeseries(const TimeSeriesSampler& sampler,
                               const ScalarHistory* scalars) {
  TimeSeries ts;
  ts.schema = kTimeseriesSchema;
  ts.program = sampler.program();
  ts.width = sampler.width();
  ts.height = sampler.height();
  ts.threads = sampler.threads();
  ts.sample_cycles = sampler.interval();
  ts.frames_dropped = sampler.frames_dropped();
  ts.frames.assign(sampler.frames().begin(), sampler.frames().end());
  if (scalars != nullptr) {
    ts.scalars.reserve(scalars->samples().size());
    for (const ScalarSample& s : scalars->samples()) {
      ts.scalars.push_back(TimeSeriesScalar{s.iteration, s.name, s.value});
    }
    ts.scalars_dropped = scalars->dropped();
  }
  if (const HealthExpectations* e = sampler.expectations(); e != nullptr) {
    ts.has_expectations = true;
    ts.expectations = *e;
  }
  ts.net_flows = sampler.net_flows();
  ts.net_expectations = sampler.net_expectations();
  return ts;
}

bool write_timeseries(const std::string& path,
                      const TimeSeriesSampler& sampler,
                      const ScalarHistory* scalars, std::string* error) {
  const std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    if (!ensure_directory(path.substr(0, slash), error)) return false;
  }
  return write_text_file(path, build_timeseries_json(sampler, scalars),
                         error);
}

// --- loading -------------------------------------------------------------

namespace {

using jsonparse::Value;

[[nodiscard]] std::string get_string(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_string() ? m->string : std::string{};
}
[[nodiscard]] double get_number(const Value* v, const char* key) {
  const Value* m = v != nullptr ? v->find(key) : nullptr;
  return m != nullptr && m->is_number() ? m->number : 0.0;
}
[[nodiscard]] std::uint64_t get_u64(const Value* v, const char* key) {
  return static_cast<std::uint64_t>(get_number(v, key));
}
[[nodiscard]] int get_int(const Value* v, const char* key) {
  return static_cast<int>(get_number(v, key));
}

template <typename T, std::size_t N>
void get_u64_array(const Value* v, const char* key, std::array<T, N>* out) {
  const Value* arr = v != nullptr ? v->find(key) : nullptr;
  if (arr == nullptr || !arr->is_array()) return;
  const std::size_t n = std::min(N, arr->array->size());
  for (std::size_t i = 0; i < n; ++i) {
    const Value& e = (*arr->array)[i];
    if (e.is_number()) (*out)[i] = static_cast<T>(e.number);
  }
}

void get_u64_vector(const Value* v, const char* key,
                    std::vector<std::uint64_t>* out) {
  const Value* arr = v != nullptr ? v->find(key) : nullptr;
  if (arr == nullptr || !arr->is_array()) return;
  out->clear();
  out->reserve(arr->array->size());
  for (const Value& e : *arr->array) {
    out->push_back(e.is_number() ? static_cast<std::uint64_t>(e.number)
                                 : std::uint64_t{0});
  }
}

} // namespace

bool parse_timeseries_frame(const jsonparse::Value& v, TimeSeriesFrame* out) {
  if (!v.is_object()) return false;
  TimeSeriesFrame f;
  f.cycle = get_u64(&v, "cycle");
  f.window_cycles = get_u64(&v, "window");
  f.link_transfers = get_u64(&v, "link_transfers");
  f.flits_forwarded = get_u64(&v, "flits_forwarded");
  f.words_sent = get_u64(&v, "words_sent");
  f.words_received = get_u64(&v, "words_received");
  f.instr_cycles = get_u64(&v, "instr");
  f.stall_cycles = get_u64(&v, "stall");
  f.idle_cycles = get_u64(&v, "idle");
  f.task_invocations = get_u64(&v, "tasks");
  f.faults = get_u64(&v, "faults");
  f.router_queued_flits = get_u64(&v, "queued");
  f.router_queue_peak = get_u64(&v, "queue_peak");
  f.fifo_highwater = get_u64(&v, "fifo_hw");
  f.ramp_highwater = get_u64(&v, "ramp_hw");
  f.max_iteration = get_u64(&v, "iteration");
  f.done_tiles = static_cast<std::uint32_t>(get_u64(&v, "done_tiles"));
  get_u64_array(&v, "phase_tiles", &f.phase_tiles);
  f.has_profiler = v.find("prof_phase") != nullptr;
  if (f.has_profiler) {
    get_u64_array(&v, "prof_phase", &f.prof_phase);
    get_u64_array(&v, "prof_cat", &f.prof_cat);
  }
  f.has_net = v.find("net_cycles") != nullptr;
  if (f.has_net) {
    f.net_cycles = get_u64(&v, "net_cycles");
    get_u64_vector(&v, "flow_words", &f.flow_words);
    get_u64_vector(&v, "flow_blocked", &f.flow_blocked);
    get_u64_array(&v, "net_dir_words", &f.net_dir_words);
    f.net_peak_queue = get_u64(&v, "net_peak_queue");
    std::array<std::uint64_t, 4> hot{};
    get_u64_array(&v, "net_hot", &hot);
    f.net_hot_words = hot[0];
    f.net_hot_x = static_cast<std::int32_t>(hot[1]);
    f.net_hot_y = static_cast<std::int32_t>(hot[2]);
    f.net_hot_dir = static_cast<std::int32_t>(hot[3]);
    std::array<std::uint64_t, 4> stall{};
    get_u64_array(&v, "net_stall", &stall);
    f.net_stall_cycles = stall[0];
    f.net_stall_x = static_cast<std::int32_t>(stall[1]);
    f.net_stall_y = static_cast<std::int32_t>(stall[2]);
    f.net_stall_dir = static_cast<std::int32_t>(stall[3]);
  }
  *out = f;
  return true;
}

bool load_timeseries(const std::string& path, TimeSeries* out,
                     std::string* error) {
  const auto set_error = [&](const std::string& why) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return set_error("cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return set_error("read error");
  const std::string text = buf.str();

  const jsonparse::ParseResult parsed = jsonparse::parse(text);
  if (!parsed.ok()) return set_error("JSON error: " + parsed.error);
  const Value& root = *parsed.value;
  if (!root.is_object()) return set_error("top level is not an object");

  TimeSeries ts;
  ts.schema = get_string(&root, "schema");
  if (ts.schema != kTimeseriesSchema) {
    return set_error("schema mismatch: got '" + ts.schema + "', want '" +
                     kTimeseriesSchema + "'");
  }
  ts.program = get_string(&root, "program");
  ts.width = get_int(&root, "width");
  ts.height = get_int(&root, "height");
  ts.threads = get_int(&root, "threads");
  ts.sample_cycles = get_u64(&root, "sample_cycles");
  ts.frames_dropped = get_u64(&root, "frames_dropped");

  if (const Value* frames = root.find("frames");
      frames != nullptr && frames->is_array()) {
    ts.frames.reserve(frames->array->size());
    for (const Value& fv : *frames->array) {
      TimeSeriesFrame f;
      if (!parse_timeseries_frame(fv, &f)) {
        return set_error("frame is not an object");
      }
      ts.frames.push_back(f);
    }
  }
  if (const Value* scalars = root.find("scalars");
      scalars != nullptr && scalars->is_array()) {
    for (const Value& sv : *scalars->array) {
      TimeSeriesScalar s;
      s.iteration = get_u64(&sv, "iteration");
      s.name = get_string(&sv, "name");
      s.value = get_number(&sv, "value");
      ts.scalars.push_back(std::move(s));
    }
  }
  ts.scalars_dropped = get_u64(&root, "scalars_dropped");
  if (const Value* e = root.find("health_expectations");
      e != nullptr && e->is_object()) {
    ts.has_expectations = true;
    ts.expectations.model = get_string(e, "model");
    std::array<double, wse::kNumProgPhases> cycles{};
    get_u64_array(e, "phase_cycles", &cycles);
    ts.expectations.phase_cycles = cycles;
  }
  if (const Value* nf = root.find("net_flows");
      nf != nullptr && nf->is_array()) {
    for (const Value& n : *nf->array) {
      if (n.is_string()) ts.net_flows.push_back(n.string);
    }
  }
  if (const Value* ne = root.find("net_expectations");
      ne != nullptr && ne->is_array()) {
    for (const Value& ev : *ne->array) {
      NetFlowExpectation e;
      e.flow = get_string(&ev, "flow");
      e.words_per_iteration = get_number(&ev, "words_per_iteration");
      const Value* exact = ev.find("exact");
      e.exact = exact != nullptr && exact->kind == jsonparse::Kind::Bool &&
                exact->boolean;
      ts.net_expectations.push_back(std::move(e));
    }
  }

  *out = std::move(ts);
  return true;
}

// --- self-check ----------------------------------------------------------

bool self_check_timeseries(const TimeSeries& ts, std::string* error) {
  const auto fail_with = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (ts.schema != kTimeseriesSchema) {
    return fail_with("schema mismatch: '" + ts.schema + "'");
  }
  if (ts.width < 0 || ts.height < 0) {
    return fail_with("negative fabric dimensions");
  }
  const std::uint64_t tiles = static_cast<std::uint64_t>(ts.width) *
                              static_cast<std::uint64_t>(ts.height);
  std::uint64_t prev_cycle = 0;
  for (std::size_t i = 0; i < ts.frames.size(); ++i) {
    const TimeSeriesFrame& f = ts.frames[i];
    const std::string at = "frame " + std::to_string(i);
    if (f.window_cycles == 0) return fail_with(at + ": zero-cycle window");
    if (i > 0 && f.cycle <= prev_cycle) {
      return fail_with(at + ": cycles not strictly increasing");
    }
    prev_cycle = f.cycle;
    if (tiles > 0) {
      std::uint64_t phase_sum = 0;
      for (const std::uint32_t n : f.phase_tiles) phase_sum += n;
      if (phase_sum > tiles) {
        return fail_with(at + ": phase tile counts exceed the fabric");
      }
      if (f.done_tiles > tiles) {
        return fail_with(at + ": done tile count exceeds the fabric");
      }
    }
    if (f.has_profiler) {
      // The profiler's conservation invariant, per window: every
      // attributed cycle has exactly one phase and one category, so the
      // two delta breakdowns sum to the same total.
      std::uint64_t by_phase = 0;
      std::uint64_t by_cat = 0;
      for (const std::uint64_t n : f.prof_phase) by_phase += n;
      for (const std::uint64_t n : f.prof_cat) by_cat += n;
      if (by_phase != by_cat) {
        return fail_with(at + ": profiler phase/category sums disagree (" +
                         std::to_string(by_phase) + " vs " +
                         std::to_string(by_cat) + ")");
      }
    }
    if (f.has_net) {
      // The network observatory's conservation invariant, per window: the
      // flow map and the direction split each count every traversed flit
      // exactly once, so the two delta breakdowns sum to the same total.
      if (!ts.net_flows.empty() &&
          f.flow_words.size() != ts.net_flows.size()) {
        return fail_with(at + ": flow vector length (" +
                         std::to_string(f.flow_words.size()) +
                         ") disagrees with the declared flows (" +
                         std::to_string(ts.net_flows.size()) + ")");
      }
      std::uint64_t by_flow = 0;
      std::uint64_t by_dir = 0;
      for (const std::uint64_t n : f.flow_words) by_flow += n;
      for (const std::uint64_t n : f.net_dir_words) by_dir += n;
      if (by_flow != by_dir) {
        return fail_with(at + ": flow/direction word sums disagree (" +
                         std::to_string(by_flow) + " vs " +
                         std::to_string(by_dir) + ")");
      }
    }
  }
  for (std::size_t i = 1; i < ts.scalars.size(); ++i) {
    if (ts.scalars[i].iteration < ts.scalars[i - 1].iteration) {
      return fail_with("scalar samples not iteration-ordered");
    }
  }
  if (ts.has_expectations) {
    for (const double v : ts.expectations.phase_cycles) {
      if (!std::isfinite(v) || v < 0.0) {
        return fail_with("health expectations: non-finite or negative "
                         "phase cycles");
      }
    }
  }
  for (const NetFlowExpectation& e : ts.net_expectations) {
    if (!std::isfinite(e.words_per_iteration)) {
      return fail_with("net expectations: non-finite words per iteration "
                       "for flow '" + e.flow + "'");
    }
  }
  return true;
}

// --- diffing -------------------------------------------------------------

std::string summarize_frame(const TimeSeriesFrame& f) {
  std::ostringstream out;
  out << "c" << f.cycle << " w" << f.window_cycles << " instr="
      << f.instr_cycles << " stall=" << f.stall_cycles << " idle="
      << f.idle_cycles << " links=" << f.link_transfers << " queued="
      << f.router_queued_flits << " it=" << f.max_iteration << " done="
      << f.done_tiles;
  if (f.faults > 0) out << " faults=" << f.faults;
  if (f.has_net) {
    std::uint64_t net = 0;
    for (const std::uint64_t n : f.flow_words) net += n;
    out << " net=" << net;
  }
  return out.str();
}

FrameDivergence first_frame_divergence(const TimeSeries& a,
                                       const TimeSeries& b) {
  FrameDivergence d;
  if (a.program != b.program) {
    d.note = "warning: program mismatch ('" + a.program + "' vs '" +
             b.program + "') — divergence below may be meaningless";
  } else if (a.sample_cycles != b.sample_cycles) {
    d.note = "warning: sample interval mismatch (" +
             std::to_string(a.sample_cycles) + " vs " +
             std::to_string(b.sample_cycles) +
             ") — frames cover different windows";
  }
  const std::size_t n = std::min(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.frames[i] == b.frames[i]) continue;
    d.found = true;
    d.index = i;
    d.cycle = std::min(a.frames[i].cycle, b.frames[i].cycle);
    d.a_frame = summarize_frame(a.frames[i]);
    d.b_frame = summarize_frame(b.frames[i]);
    return d;
  }
  if (a.frames.size() != b.frames.size()) {
    d.found = true;
    d.index = n;
    const bool a_longer = a.frames.size() > n;
    d.cycle = a_longer ? a.frames[n].cycle : b.frames[n].cycle;
    d.a_frame = a_longer ? summarize_frame(a.frames[n]) : "-";
    d.b_frame = a_longer ? "-" : summarize_frame(b.frames[n]);
  }
  return d;
}

std::string pretty_frame_divergence(const FrameDivergence& d) {
  std::ostringstream out;
  if (!d.note.empty()) out << d.note << "\n";
  if (!d.found) {
    out << "no divergence: recorded frame streams are identical\n";
    return out.str();
  }
  out << "first divergent frame at index " << d.index << " (cycle " << d.cycle
      << "):\n";
  out << "  A: " << d.a_frame << "\n";
  out << "  B: " << d.b_frame << "\n";
  return out.str();
}

// --- rendering -----------------------------------------------------------

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static constexpr const char kRamp[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 2; // top index
  if (width == 0) return {};
  if (values.empty()) return std::string(width, ' ');
  // Resample to `width` columns (bucket means), scale to the series max.
  std::vector<double> cols(width, 0.0);
  const std::size_t shown = std::min(width, values.size());
  for (std::size_t col = 0; col < shown; ++col) {
    const std::size_t lo = col * values.size() / shown;
    const std::size_t hi =
        std::max(lo + 1, (col + 1) * values.size() / shown);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < values.size(); ++i) {
      sum += values[i];
    }
    cols[col] = sum / static_cast<double>(hi - lo);
  }
  double maxv = 0.0;
  for (std::size_t col = 0; col < shown; ++col) {
    if (std::isfinite(cols[col])) maxv = std::max(maxv, cols[col]);
  }
  std::string out(width, ' ');
  for (std::size_t col = 0; col < shown; ++col) {
    const double v = std::isfinite(cols[col]) ? std::max(0.0, cols[col]) : 0.0;
    std::size_t level = 0;
    if (maxv > 0.0 && v > 0.0) {
      level = 1 + static_cast<std::size_t>(v / maxv *
                                           static_cast<double>(kLevels - 1));
      level = std::min(level, kLevels);
    }
    out[col] = kRamp[level];
  }
  return out;
}

namespace {

constexpr std::size_t kSparkWidth = 60;

void spark_row(std::ostringstream& out, const char* label,
               const std::vector<double>& values) {
  double maxv = 0.0;
  for (const double v : values) {
    if (std::isfinite(v)) maxv = std::max(maxv, v);
  }
  if (maxv <= 0.0) return; // nothing happened on this axis: skip the row
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%-12s", label);
  out << "  " << buf << "|" << sparkline(values, kSparkWidth) << "| max "
      << json::number(maxv) << "\n";
}

} // namespace

std::string pretty_timeseries(const TimeSeries& ts, std::size_t last_k) {
  std::ostringstream out;
  out << "time series (" << ts.schema << ")\n";
  if (!ts.program.empty()) out << "  program: " << ts.program << "\n";
  if (ts.width > 0) {
    out << "  fabric:  " << ts.width << "x" << ts.height << ", "
        << ts.threads << " sim thread(s)\n";
  }
  out << "  frames:  " << ts.frames.size() << " (every " << ts.sample_cycles
      << " cycles";
  if (ts.frames_dropped > 0) out << ", " << ts.frames_dropped << " dropped";
  out << ")";
  if (!ts.frames.empty()) {
    out << ", cycles " << ts.frames.front().cycle << ".."
        << ts.frames.back().cycle;
  }
  out << "\n";
  if (ts.frames.empty()) return out.str();

  const auto column = [&](auto&& field) {
    std::vector<double> vs;
    vs.reserve(ts.frames.size());
    for (const TimeSeriesFrame& f : ts.frames) {
      vs.push_back(static_cast<double>(field(f)) /
                   static_cast<double>(f.window_cycles));
    }
    return vs;
  };

  out << "\nper-cycle rates over the run:\n";
  spark_row(out, "compute", column([](const TimeSeriesFrame& f) {
              return f.instr_cycles;
            }));
  spark_row(out, "stall", column([](const TimeSeriesFrame& f) {
              return f.stall_cycles;
            }));
  spark_row(out, "idle", column([](const TimeSeriesFrame& f) {
              return f.idle_cycles;
            }));
  spark_row(out, "links", column([](const TimeSeriesFrame& f) {
              return f.link_transfers;
            }));
  spark_row(out, "tasks", column([](const TimeSeriesFrame& f) {
              return f.task_invocations;
            }));
  spark_row(out, "faults", column([](const TimeSeriesFrame& f) {
              return f.faults;
            }));

  // Gauges render raw (they are already instantaneous).
  const auto gauge = [&](auto&& field) {
    std::vector<double> vs;
    vs.reserve(ts.frames.size());
    for (const TimeSeriesFrame& f : ts.frames) {
      vs.push_back(static_cast<double>(field(f)));
    }
    return vs;
  };
  out << "\nqueue / FIFO pressure (instantaneous):\n";
  spark_row(out, "queued", gauge([](const TimeSeriesFrame& f) {
              return f.router_queued_flits;
            }));
  spark_row(out, "queue peak", gauge([](const TimeSeriesFrame& f) {
              return f.router_queue_peak;
            }));
  spark_row(out, "fifo hw", gauge([](const TimeSeriesFrame& f) {
              return f.fifo_highwater;
            }));
  spark_row(out, "ramp hw", gauge([](const TimeSeriesFrame& f) {
              return f.ramp_highwater;
            }));

  bool any_profiler = false;
  for (const TimeSeriesFrame& f : ts.frames) any_profiler |= f.has_profiler;
  if (any_profiler) {
    out << "\nprofiler cycles per simulated cycle, by program phase:\n";
    for (int p = 0; p < wse::kNumProgPhases; ++p) {
      spark_row(out, wse::to_string(static_cast<wse::ProgPhase>(p)),
                column([p](const TimeSeriesFrame& f) {
                  return f.prof_phase[static_cast<std::size_t>(p)];
                }));
    }
  } else {
    out << "\ntiles per program phase:\n";
    for (int p = 0; p < wse::kNumProgPhases; ++p) {
      spark_row(out, wse::to_string(static_cast<wse::ProgPhase>(p)),
                gauge([p](const TimeSeriesFrame& f) {
                  return f.phase_tiles[static_cast<std::size_t>(p)];
                }));
    }
  }

  if (!ts.scalars.empty()) {
    std::vector<double> residuals;
    for (const TimeSeriesScalar& s : ts.scalars) {
      if (s.name == "residual") residuals.push_back(s.value);
    }
    if (!residuals.empty()) {
      // Convergence spans orders of magnitude; sparkline -log10 so the
      // ramp rises as the residual falls.
      std::vector<double> logs;
      logs.reserve(residuals.size());
      for (const double r : residuals) {
        logs.push_back(r > 0.0 && std::isfinite(r) ? -std::log10(r) : 0.0);
      }
      const double shift =
          *std::min_element(logs.begin(), logs.end());
      for (double& v : logs) v -= shift;
      out << "\nresidual convergence (-log10, " << residuals.size()
          << " iterations, last " << json::number(residuals.back()) << "):\n";
      out << "  residual    |" << sparkline(logs, kSparkWidth) << "|\n";
    }
  }

  const std::size_t n = ts.frames.size();
  const std::size_t start = n > last_k ? n - last_k : 0;
  out << "\nlast " << (n - start) << " of " << n << " frames:\n";
  for (std::size_t i = start; i < n; ++i) {
    out << "  " << summarize_frame(ts.frames[i]) << "\n";
  }
  return out.str();
}

} // namespace wss::telemetry
