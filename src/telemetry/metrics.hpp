#pragma once

// The metrics registry: named counters, gauges, and log-scale histograms
// shared by the solver probes, the fabric heatmap collector, and the bench
// reporter. Designed for cheap hot paths: callers resolve a metric once
// (`registry.counter("solver.iterations")` returns a stable reference —
// std::map nodes never move) and then increment a plain integer. Snapshots
// are value copies; diffing two snapshots isolates one phase of a run.
// Export is JSON (machines) or aligned text (humans). Instances are not
// thread-safe — one registry per thread of control, merge snapshots if
// needed.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wss::telemetry {

/// Monotone event count.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
};

/// Last-write-wins instantaneous value.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Log2-bucketed histogram over positive doubles, spanning 2^-32 .. 2^64.
///
/// Bucket 0 collects non-positive values and underflow (< 2^kMinExp);
/// bucket i >= 1 covers [2^(kMinExp+i-1), 2^(kMinExp+i)) — an exact power
/// of two lands in the bucket whose *lower* edge it is. The last bucket
/// additionally absorbs overflow. Exact min/max/sum/count ride along so
/// the mean is not quantized.
class Histogram {
public:
  static constexpr int kMinExp = -32;
  static constexpr int kNumBuckets = 98; // underflow + exponents -32..64

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }

  /// Bucket index `v` falls into (see class comment for edge semantics).
  [[nodiscard]] static int bucket_index(double v);
  /// Inclusive lower edge of bucket i (i >= 1); bucket 0 has none.
  [[nodiscard]] static double bucket_lower_edge(int i);

  /// Approximate quantile (q in [0,1]) from the bucket boundaries:
  /// returns the lower edge of the bucket containing the q-th sample.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket-wise subtraction (for snapshot diffs); saturates at zero.
  [[nodiscard]] Histogram minus(const Histogram& earlier) const;

private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
public:
  /// Find-or-create. References remain valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  /// Point-in-time value copy of every metric.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;

    [[nodiscard]] std::string to_json() const;
    [[nodiscard]] std::string pretty() const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// after - before: counters/histograms subtract (absent-in-before means
  /// the full after value), gauges keep their `after` reading.
  [[nodiscard]] static Snapshot diff(const Snapshot& before,
                                     const Snapshot& after);

  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }
  [[nodiscard]] std::string pretty() const { return snapshot().pretty(); }

private:
  // std::less<> enables lookup by string_view without allocating.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

} // namespace wss::telemetry
