#pragma once

// The run ledger (docs/TIMESERIES.md): a durable, append-only JSONL index
// of every solve/bench run. Each run gets a process-unique run ID and a
// one-line manifest — program identity, fabric dims, thread count, the
// WSS_* environment that shaped the run, outcome (StopInfo reason), key
// metrics, and the paths of every artifact the run produced (time series,
// post-mortem bundles, bench reports) — appended to
// `$WSS_LEDGER_DIR/ledger.jsonl`. `wss_inspect runs` lists, shows, diffs
// and trends the entries; the future serving layer writes one per request.
//
// Appending is crash-tolerant by construction: one line per run, written
// with a single append, so a torn write corrupts at most the final line
// (and load_ledger skips unparseable lines, counting them).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wss::telemetry {

/// Ledger schema identifier; bump on breaking layout changes.
inline constexpr const char* kLedgerSchema = "wss.runledger/1";

struct RunMetric {
  std::string name;
  double value = 0.0;
};

struct RunArtifact {
  std::string kind; ///< "timeseries", "postmortem", "report", ...
  std::string path;
};

/// One health-engine alert summarized into the manifest (docs/HEALTH.md);
/// the full alert (inputs, frame ranges) lives in the `alerts` artifact.
struct RunAlert {
  std::string rule;
  std::string severity; ///< "info" / "warn" / "critical"
  std::uint64_t cycle = 0; ///< last offending cycle (0 for scalar rules)
};

/// One ledger entry. Everything except run_id/program is optional — a
/// host-side solver run has no fabric dims, a bench run has no outcome.
struct RunManifest {
  std::string run_id;
  std::string program;
  int width = 0, height = 0;
  int threads = 0;
  std::uint64_t cycles = 0;
  std::string outcome; ///< StopInfo reason ("all_done", ...) or free-form
  bool deadlock = false;
  std::uint64_t fault_total = 0;
  /// WSS_* environment snapshot (name-sorted; see wss_environment()).
  std::vector<std::pair<std::string, std::string>> env;
  std::vector<RunMetric> metrics;
  std::vector<RunArtifact> artifacts;
  /// Health-engine alerts raised on the run (empty on healthy runs; the
  /// JSON field is omitted entirely then, keeping old lines byte-stable).
  std::vector<RunAlert> alerts;

  void add_metric(std::string name, double value) {
    metrics.push_back({std::move(name), value});
  }
  void add_artifact(std::string kind, std::string path) {
    artifacts.push_back({std::move(kind), std::move(path)});
  }
  void add_alert(std::string rule, std::string severity, std::uint64_t cycle) {
    alerts.push_back({std::move(rule), std::move(severity), cycle});
  }
  /// First metric with `name`, or nullptr.
  [[nodiscard]] const RunMetric* metric(const std::string& name) const {
    for (const RunMetric& m : metrics) {
      if (m.name == name) return &m;
    }
    return nullptr;
  }
};

/// Mint a unique run ID: `<program-slug>-<epoch>-<pid>-<seq>`. The slug
/// keeps [a-z0-9-] of the program name; epoch seconds order runs across
/// processes, pid + an atomic per-process sequence disambiguate within a
/// second.
[[nodiscard]] std::string next_run_id(const std::string& program);

/// Name-sorted snapshot of every WSS_*-prefixed environment variable —
/// the knobs that shaped the run, recorded so a ledger entry can be
/// reproduced.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
wss_environment();

/// Render one manifest as a single JSON line (no trailing newline).
[[nodiscard]] std::string manifest_json(const RunManifest& m);

/// $WSS_LEDGER_DIR or "" (strict parse; see common/env.hpp).
[[nodiscard]] std::string ledger_dir();

/// Append `m` to `<dir>/ledger.jsonl` (dir created if missing). Returns
/// false + `*error` on I/O failure.
bool append_run_manifest(const std::string& dir, const RunManifest& m,
                         std::string* error = nullptr);

/// Append iff WSS_LEDGER_DIR is set. Returns the ledger path appended to
/// ("" when disabled); I/O failures go to stderr, never thrown — the
/// ledger must not turn a finished run into a failed one.
std::string maybe_append_run_manifest(const RunManifest& m);

/// A loaded ledger: parsed entries plus how many lines were skipped
/// (wrong schema or torn/unparseable trailing writes).
struct Ledger {
  std::vector<RunManifest> runs;
  std::size_t skipped_lines = 0;
};

/// Load `path`, which may be a ledger.jsonl file or a directory containing
/// one. Returns false + `*error` when the file cannot be read at all.
bool load_ledger(const std::string& path, Ledger* out,
                 std::string* error = nullptr);

/// Find a run by exact ID or unique prefix; nullptr when absent or
/// ambiguous (`*error` says which).
[[nodiscard]] const RunManifest* find_run(const Ledger& ledger,
                                          const std::string& id_or_prefix,
                                          std::string* error = nullptr);

/// One-run detail rendering (`wss_inspect runs show`).
[[nodiscard]] std::string pretty_manifest(const RunManifest& m);

/// Tabular listing, newest last (`wss_inspect runs list`).
[[nodiscard]] std::string pretty_ledger_table(const Ledger& ledger);

/// Field-by-field comparison of two runs: differing outcome, metrics
/// (with deltas), and env vars (`wss_inspect runs diff`).
[[nodiscard]] std::string diff_manifests(const RunManifest& a,
                                         const RunManifest& b);

/// Trend `metric` across every run that carries it, oldest first, as a
/// sparkline plus min/max/latest (`wss_inspect runs trend`).
[[nodiscard]] std::string pretty_trend(const Ledger& ledger,
                                       const std::string& metric);

} // namespace wss::telemetry
