#include "telemetry/trace_adapter.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "telemetry/io.hpp"
#include "telemetry/json.hpp"
#include "telemetry/span_tracer.hpp"
#include "wse/trace.hpp"

namespace wss::telemetry {

namespace {

void emit_process_meta(json::Writer& w, int pid, const std::string& name) {
  w.begin_object()
      .key("name").value("process_name")
      .key("ph").value("M")
      .key("pid").value(pid)
      .key("args").begin_object().key("name").value(name).end_object()
      .end_object();
}

void emit_thread_meta(json::Writer& w, int pid, int tid,
                      const std::string& name) {
  w.begin_object()
      .key("name").value("thread_name")
      .key("ph").value("M")
      .key("pid").value(pid)
      .key("tid").value(tid)
      .key("args").begin_object().key("name").value(name).end_object()
      .end_object();
}

void emit_complete(json::Writer& w, const std::string& name,
                   const char* category, double ts_us, double dur_us, int pid,
                   int tid) {
  w.begin_object()
      .key("name").value(name)
      .key("cat").value(category)
      .key("ph").value("X")
      .key("ts").value(ts_us)
      .key("dur").value(dur_us)
      .key("pid").value(pid)
      .key("tid").value(tid)
      .end_object();
}

void emit_instant(json::Writer& w, const std::string& name,
                  const char* category, double ts_us, int pid, int tid) {
  w.begin_object()
      .key("name").value(name)
      .key("cat").value(category)
      .key("ph").value("i")
      .key("s").value("t")
      .key("ts").value(ts_us)
      .key("pid").value(pid)
      .key("tid").value(tid)
      .end_object();
}

void emit_fabric(json::Writer& w, const FabricTraceSource& src, int pid) {
  emit_process_meta(w, pid, src.name);
  const double us_per_cycle = 1e6 / src.clock_hz;

  // Stable per-tile thread ids in first-appearance order.
  std::map<std::pair<int, int>, int> tids;
  auto tid_of = [&](int x, int y) {
    const auto key = std::make_pair(y, x);
    auto it = tids.find(key);
    if (it == tids.end()) {
      const int tid = static_cast<int>(tids.size());
      it = tids.emplace(key, tid).first;
      emit_thread_meta(w, pid, tid,
                       "tile (" + std::to_string(x) + "," +
                           std::to_string(y) + ")");
    }
    return it->second;
  };

  // Per-tile stack of open tasks (TaskStart without a TaskEnd yet).
  std::map<std::pair<int, int>, std::vector<wse::TraceEvent>> open;
  std::uint64_t last_cycle = 0;
  for (const wse::TraceEvent& e : src.tracer->events()) {
    last_cycle = std::max(last_cycle, e.cycle);
    const int tid = tid_of(e.tile_x, e.tile_y);
    const double ts = static_cast<double>(e.cycle) * us_per_cycle;
    switch (e.kind) {
      case wse::TraceEventKind::TaskStart:
        open[{e.tile_x, e.tile_y}].push_back(e);
        break;
      case wse::TraceEventKind::TaskEnd: {
        auto& stack = open[{e.tile_x, e.tile_y}];
        if (!stack.empty()) {
          const wse::TraceEvent b = stack.back();
          stack.pop_back();
          const double ts0 = static_cast<double>(b.cycle) * us_per_cycle;
          emit_complete(w, b.label, "task", ts0, ts - ts0, pid, tid);
        } else {
          emit_instant(w, e.label + " (end)", "task", ts, pid, tid);
        }
        break;
      }
      case wse::TraceEventKind::InstrComplete:
        emit_instant(w, e.label, "instr", ts, pid, tid);
        break;
      case wse::TraceEventKind::Stall:
        emit_instant(w, "stall", "stall", ts, pid, tid);
        break;
      case wse::TraceEventKind::Fault:
        emit_instant(w, e.label.empty() ? "fault" : e.label, "fault", ts,
                     pid, tid);
        break;
    }
  }
  // Tasks still open when the trace ended (e.g. a bounded tracer filled
  // up): close them at the last observed cycle so the slice is visible.
  const double end_ts = static_cast<double>(last_cycle) * us_per_cycle;
  for (auto& [tile, stack] : open) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const double ts0 = static_cast<double>(it->cycle) * us_per_cycle;
      emit_complete(w, it->label + " (unterminated)", "task", ts0,
                    end_ts - ts0, pid, tid_of(tile.first, tile.second));
    }
  }
}

} // namespace

std::string chrome_trace_json(const SpanTracer* host,
                              const std::vector<FabricTraceSource>& fabrics) {
  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  if (host != nullptr) {
    emit_process_meta(w, 0, "host");
    emit_thread_meta(w, 0, 0, "solver");
    for (const SpanTracer::Span& s : host->spans()) {
      emit_complete(w, s.name, s.category.c_str(), s.ts_us, s.dur_us, 0, 0);
    }
    for (const SpanTracer::Instant& i : host->instants()) {
      emit_instant(w, i.name, i.category.c_str(), i.ts_us, 0, 0);
    }
  }
  int pid = 1;
  for (const FabricTraceSource& src : fabrics) {
    if (src.tracer == nullptr) continue;
    emit_fabric(w, src, pid++);
  }
  w.end_array().end_object();
  return w.str();
}

bool write_chrome_trace(const std::string& path, const SpanTracer* host,
                        const std::vector<FabricTraceSource>& fabrics,
                        std::string* error) {
  return write_text_file(path, chrome_trace_json(host, fabrics), error);
}

} // namespace wss::telemetry
